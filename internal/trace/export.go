package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Spans returns a copy of the buffered spans in the deterministic export
// order: (Epoch, Rank, Index). Each rank's spans appear in its program
// order, so the same workload exports the same ordering on every run.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Index < b.Index
	})
	return out
}

// WriteJSONL writes one canonical JSON object per span in export order —
// the recorded-trace format the roadmap's replay validator consumes.
// encoding/json sorts the Args map keys, so the byte layout of each record
// is a pure function of the span.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range r.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace-event-format entry ("X" complete events
// plus "M" process-name metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromePid maps a rank to a Chrome process id (the coordinator
// pseudo-rank gets its own process lane).
func chromePid(rank int) int {
	if rank == CoordinatorRank {
		return 1000
	}
	return rank
}

// WriteChromeTrace writes the spans as Chrome trace-event-format JSON
// (load it at chrome://tracing or ui.perfetto.dev). One process per rank,
// timestamps in microseconds relative to the earliest span.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	var base int64
	ranks := map[int]bool{}
	for i, s := range spans {
		if i == 0 || s.Start < base {
			base = s.Start
		}
		ranks[s.Rank] = true
	}
	rankList := make([]int, 0, len(ranks))
	for rk := range ranks {
		rankList = append(rankList, rk)
	}
	sort.Ints(rankList)
	events := make([]chromeEvent, 0, len(spans)+len(rankList))
	for _, rk := range rankList {
		name := fmt.Sprintf("rank %d", rk)
		if rk == CoordinatorRank {
			name = "coordinator"
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: chromePid(rk), Tid: 0,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		args := map[string]any{"epoch": s.Epoch, "index": s.Index}
		if s.Seq != NoSeq {
			args["seq"] = s.Seq
		}
		for k, v := range s.Args {
			args[k] = v
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", Pid: chromePid(s.Rank), Tid: 1,
			Ts: float64(s.Start-base) / 1e3, Dur: float64(s.Dur) / 1e3, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChromeTrace checks data against the Chrome trace event schema:
// a top-level traceEvents array whose entries carry name/ph/pid/tid with
// the right types, ts (and dur for "X" events) as numbers. Used by tests
// and the CI smoke step.
func ValidateChromeTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("chrome trace: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("chrome trace: missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		var name, ph string
		if err := requireJSON(ev, "name", &name); err != nil {
			return fmt.Errorf("chrome trace: event %d: %w", i, err)
		}
		if err := requireJSON(ev, "ph", &ph); err != nil {
			return fmt.Errorf("chrome trace: event %d: %w", i, err)
		}
		var pid, tid float64
		if err := requireJSON(ev, "pid", &pid); err != nil {
			return fmt.Errorf("chrome trace: event %d: %w", i, err)
		}
		if err := requireJSON(ev, "tid", &tid); err != nil {
			return fmt.Errorf("chrome trace: event %d: %w", i, err)
		}
		if ph == "X" {
			var ts, dur float64
			if err := requireJSON(ev, "ts", &ts); err != nil {
				return fmt.Errorf("chrome trace: event %d: %w", i, err)
			}
			if raw, ok := ev["dur"]; ok {
				if err := json.Unmarshal(raw, &dur); err != nil {
					return fmt.Errorf("chrome trace: event %d: dur: %w", i, err)
				}
				if dur < 0 {
					return fmt.Errorf("chrome trace: event %d: negative dur", i)
				}
			}
		}
	}
	return nil
}

func requireJSON(ev map[string]json.RawMessage, key string, into any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	return nil
}
