package trace

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

var testCohorts = []string{"chat", "code", "summarization", "agentic", "rag"}

func randomLabeledSnaps(rng *rand.Rand) []SeriesSnap {
	var out []SeriesSnap
	for _, c := range testCohorts {
		sn := SeriesSnap{
			Name: "cp_cohort_ttft_seconds", Kind: KindHistogram,
			Labels: []Label{L("cohort", c)},
			Counts: make([]uint64, len(BucketBounds)+1),
		}
		for i := range sn.Counts {
			sn.Counts[i] = uint64(rng.Intn(5))
			sn.Count += sn.Counts[i]
			sn.Sum += float64(rng.Intn(50)) // integer sums: float addition exact
		}
		out = append(out, sn)
	}
	return out
}

// Labeled-family merge associativity AND commutativity: per cohort label,
// folding three ranks' deltas in any grouping or order yields the same
// exposition — the property that makes cross-rank per-cohort histograms
// trustworthy.
func TestLabeledMergeAssociativityCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prom := func(batches ...[]SeriesSnap) string {
		r := New()
		for _, b := range batches {
			r.MergeSeries(b)
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	for trial := 0; trial < 30; trial++ {
		a := randomLabeledSnaps(rng)
		b := randomLabeledSnaps(rng)
		c := randomLabeledSnaps(rng)

		// Associativity: (a+b)+c == a+(b+c).
		left := New()
		left.MergeSeries(a)
		left.MergeSeries(b)
		_, ab := left.Drain()
		right := New()
		right.MergeSeries(b)
		right.MergeSeries(c)
		_, bc := right.Drain()
		if got, want := prom(ab, c), prom(a, bc); got != want {
			t.Fatalf("labeled merge not associative:\n%s\nvs\n%s", got, want)
		}
		// Commutativity: any rank arrival order.
		if got, want := prom(a, b, c), prom(c, a, b); got != want {
			t.Fatalf("labeled merge not commutative:\n%s\nvs\n%s", got, want)
		}
	}
}

// Per-cohort quantile-vs-sorted-oracle: each cohort's labeled histogram
// reports exactly the smallest bucket bound reaching q·n over that cohort's
// own samples, unaffected by the other cohorts sharing the family.
func TestLabeledQuantileMatchesSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := New()
	samples := map[string][]float64{}
	for _, c := range testCohorts {
		h := r.Hist("cp_cohort_itl_seconds", L("cohort", c))
		n := 50 + rng.Intn(300)
		for i := 0; i < n; i++ {
			v := math.Exp(rng.Float64()*math.Log(1e9)) * 1e-7
			samples[c] = append(samples[c], v)
			h.Observe(v)
		}
		sort.Float64s(samples[c])
	}
	for _, c := range testCohorts {
		s := samples[c]
		n := len(s)
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			target := q * float64(n)
			oracle := BucketBounds[len(BucketBounds)-1]
			for _, b := range BucketBounds {
				cnt := sort.SearchFloat64s(s, b)
				for cnt < n && s[cnt] <= b {
					cnt++
				}
				if float64(cnt) >= target {
					oracle = b
					break
				}
			}
			if got := r.Hist("cp_cohort_itl_seconds", L("cohort", c)).Quantile(q); got != oracle {
				t.Fatalf("cohort %s q=%v: got %v want %v", c, q, got, oracle)
			}
		}
	}
}

func TestLabelPoolBasics(t *testing.T) {
	p := NewLabelPool(8, "chat", "rag")
	if got := p.Canon("chat"); got != "chat" {
		t.Fatalf("pre-registered chat canonicalized to %q", got)
	}
	if got := p.Canon(""); got != OverflowLabel {
		t.Fatalf("empty label canonicalized to %q", got)
	}
	if p.ID(OverflowLabel) != 0 {
		t.Fatalf("overflow id %d, want 0", p.ID(OverflowLabel))
	}
	// Ids are stable across calls.
	a, b := p.ID("rag"), p.ID("rag")
	if a != b || a == 0 {
		t.Fatalf("rag ids %d, %d", a, b)
	}
	names := p.Names()
	if names[0] != OverflowLabel || len(names) != 3 {
		t.Fatalf("names %v", names)
	}
	var nilPool *LabelPool
	if nilPool.Canon("x") != OverflowLabel || nilPool.ID("x") != 0 || nilPool.Len() != 0 {
		t.Fatal("nil pool not safe")
	}
}

// Unknown-label hygiene: a client spraying fresh label values mints at most
// cap new series; everything else lands on "other". The recorder's series
// count stays bounded no matter how many distinct values arrive.
func TestLabelPoolBoundedCardinality(t *testing.T) {
	const cap = 4
	p := NewLabelPool(cap, "chat")
	r := New()
	for i := 0; i < 200; i++ {
		c := p.Canon(fmt.Sprintf("adversarial-%d", i))
		r.Hist("cp_cohort_ttft_seconds", L("cohort", c)).Observe(0.001)
	}
	if p.Len() > cap+1 { // +1 for OverflowLabel
		t.Fatalf("pool grew to %d values (cap %d)", p.Len(), cap)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	series := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "cp_cohort_ttft_seconds_count") {
			series++
		}
	}
	if series > cap+1 {
		t.Fatalf("%d labeled series in exposition (cap %d)", series, cap)
	}
	if !strings.Contains(buf.String(), `cohort="`+OverflowLabel+`"`) {
		t.Fatal("overflow label absent from exposition")
	}
	// The overflow series absorbed the tail: total observations preserved.
	total := uint64(0)
	for _, c := range p.Names() {
		total += r.Hist("cp_cohort_ttft_seconds", L("cohort", c)).HistCount()
	}
	if total != 200 {
		t.Fatalf("observations lost under overflow: %d/200", total)
	}
}
