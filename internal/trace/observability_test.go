package trace

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// Property: Quantile returns exactly the smallest bucket bound whose
// cumulative sample count reaches q·n, recomputed here independently from
// the sorted raw samples.
func TestHistogramQuantileMatchesSortedOracle(t *testing.T) {
	f := func(seed int64, rawN uint16, rawQ uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%500) + 1
		q := float64(rawQ%1001) / 1000.0
		r := New()
		h := r.Hist("oracle_seconds")
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over the bucket range plus outliers past both ends.
			samples[i] = math.Exp(rng.Float64()*math.Log(1e9)) * 1e-7
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		// Oracle: smallest bound with #(samples <= bound) >= q*n; the +Inf
		// overflow saturates at the last finite bound, like Quantile.
		target := q * float64(n)
		oracle := BucketBounds[len(BucketBounds)-1]
		for _, b := range BucketBounds {
			cnt := sort.SearchFloat64s(samples, b)
			// SearchFloat64s gives #(samples < b); extend over equal values.
			for cnt < n && samples[cnt] <= b {
				cnt++
			}
			if float64(cnt) >= target {
				oracle = b
				break
			}
		}
		got := h.Quantile(q)
		if got != oracle {
			t.Logf("seed=%d n=%d q=%v: got %v want %v", seed, n, q, got, oracle)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomSnap(rng *rand.Rand, name string) SeriesSnap {
	sn := SeriesSnap{
		Name: name, Kind: KindHistogram,
		Labels: []Label{L("rank", "0")},
		Counts: make([]uint64, len(BucketBounds)+1),
	}
	for i := range sn.Counts {
		sn.Counts[i] = uint64(rng.Intn(10))
		sn.Count += sn.Counts[i]
		// Integer sums keep float addition exact, so associativity is
		// checked at full equality.
		sn.Sum += float64(rng.Intn(100))
	}
	return sn
}

// Cross-rank merge associativity: (a+b)+c == a+(b+c) for histogram
// bucket counts, counts, and (integer-valued) sums.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomSnap(rng, "m_seconds")
		b := randomSnap(rng, "m_seconds")
		c := randomSnap(rng, "m_seconds")

		left := New()
		left.MergeSeries([]SeriesSnap{a, b})
		ab, _ := leftDrainAll(left)
		leftTotal := New()
		leftTotal.MergeSeries(ab)
		leftTotal.MergeSeries([]SeriesSnap{c})

		rightInner := New()
		rightInner.MergeSeries([]SeriesSnap{b, c})
		bc, _ := leftDrainAll(rightInner)
		rightTotal := New()
		rightTotal.MergeSeries([]SeriesSnap{a})
		rightTotal.MergeSeries(bc)

		var lb, rb bytes.Buffer
		if err := leftTotal.WriteProm(&lb); err != nil {
			t.Fatal(err)
		}
		if err := rightTotal.WriteProm(&rb); err != nil {
			t.Fatal(err)
		}
		if lb.String() != rb.String() {
			t.Fatalf("merge not associative:\n%s\nvs\n%s", lb.String(), rb.String())
		}
	}
}

func leftDrainAll(r *Recorder) ([]SeriesSnap, []Span) {
	spans, series := r.Drain()
	return series, spans
}

func TestPromEncodeParseRoundTrip(t *testing.T) {
	r := New()
	r.Hist("cp_request_ttft_seconds").Observe(0.012)
	r.Hist("cp_request_ttft_seconds").Observe(3.5)
	r.Hist("cp_ring_phase_seconds", L("rank", "0"), L("op", "prefill"), L("phase", "compute")).Observe(0.001)
	r.CounterSeries("cp_ring_sweeps_total", L("rank", "0"), L("op", "prefill")).Inc(4)
	r.Gauge("cp_uptime_seconds").Set(12.5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse of own output failed: %v\n%s", err, text)
	}
	find := func(name string, labels map[string]string) *PromSample {
		for i := range samples {
			s := &samples[i]
			if s.Name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.Labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return s
			}
		}
		return nil
	}
	if s := find("cp_request_ttft_seconds_count", nil); s == nil || s.Value != 2 {
		t.Fatalf("ttft count sample = %+v", s)
	}
	if s := find("cp_ring_sweeps_total", map[string]string{"rank": "0", "op": "prefill"}); s == nil || s.Value != 4 {
		t.Fatalf("sweeps sample = %+v", s)
	}
	if s := find("cp_uptime_seconds", nil); s == nil || s.Value != 12.5 {
		t.Fatalf("uptime sample = %+v", s)
	}
	if s := find("cp_request_ttft_seconds_bucket", map[string]string{"le": "+Inf"}); s == nil || s.Value != 2 {
		t.Fatalf("+Inf bucket = %+v", s)
	}
	// Output is deterministic.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != text {
		t.Fatal("WriteProm not deterministic")
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	cases := []string{
		"cp_x 1",                         // no TYPE
		"# TYPE cp_x counter\ncp_x{a=1",  // unterminated labels
		"# TYPE cp_x wat\ncp_x 1",        // unknown type
		"# TYPE cp_x counter\ncp_x nope", // bad value
		"# TYPE cp_h histogram\ncp_h_bucket{le=\"1\"} 5\ncp_h_bucket{le=\"2\"} 3\ncp_h_bucket{le=\"+Inf\"} 5\ncp_h_sum 1\ncp_h_count 5", // non-monotone
		"# TYPE cp_h histogram\ncp_h_bucket{le=\"1\"} 5\ncp_h_sum 1\ncp_h_count 5",                                                      // no +Inf
	}
	for _, c := range cases {
		if _, err := ParseProm(strings.NewReader(c)); err == nil {
			t.Fatalf("ParseProm accepted %q", c)
		}
	}
}

func TestChromeTraceExportValidates(t *testing.T) {
	r := New()
	st := r.Sweep(0, 1, "prefill")
	t0 := st.Clock()
	st.Compute(t0)
	st.Comm(st.Clock())
	st.Finish(3)
	r.RecordSpan(Span{Name: "request", Rank: CoordinatorRank, Seq: 7, Epoch: 1,
		Start: time.Now().UnixNano(), Dur: 1000, Args: map[string]int64{"tokens": 8}})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("own chrome trace invalid: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `"ring.sweep"`) || !strings.Contains(buf.String(), "coordinator") {
		t.Fatalf("chrome trace missing expected events:\n%s", buf.String())
	}
	if err := ValidateChromeTrace([]byte(`{"foo":1}`)); err == nil {
		t.Fatal("validator accepted JSON without traceEvents")
	}
	if err := ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"X"}]}`)); err == nil {
		t.Fatal("validator accepted event without name/pid/tid")
	}
}

// Export order is (Epoch, Rank, Index) — each rank's program order —
// regardless of the interleaving in which ranks recorded.
func TestSpanExportOrderingDeterministic(t *testing.T) {
	r := New()
	// Interleave two ranks' recordings "racily".
	for i := 0; i < 5; i++ {
		r.RecordSpan(Span{Name: "b", Rank: 1, Epoch: 1, Start: int64(100 - i)})
		r.RecordSpan(Span{Name: "a", Rank: 0, Epoch: 1, Start: int64(50 + i)})
	}
	r.RecordSpan(Span{Name: "late", Rank: 0, Epoch: 2, Start: 1})
	spans := r.Spans()
	if len(spans) != 11 {
		t.Fatalf("span count = %d", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Epoch > b.Epoch || (a.Epoch == b.Epoch && a.Rank > b.Rank) ||
			(a.Epoch == b.Epoch && a.Rank == b.Rank && a.Index >= b.Index) {
			t.Fatalf("order violated at %d: %+v then %+v", i, a, b)
		}
	}
	var j1, j2 bytes.Buffer
	if err := r.WriteJSONL(&j1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&j2); err != nil {
		t.Fatal(err)
	}
	if j1.String() != j2.String() || j1.Len() == 0 {
		t.Fatal("JSONL export not deterministic")
	}
}

// Drain ships deltas: a second drain is empty, and merging drains into a
// fresh recorder reproduces the cumulative state.
func TestDrainMergeRoundTrip(t *testing.T) {
	worker := New()
	worker.Hist("cp_step_seconds").Observe(0.25)
	worker.CounterSeries("cp_ring_sweeps_total", L("rank", "1"), L("op", "decode")).Inc(2)
	worker.RecordSpan(Span{Name: "ring.sweep", Rank: 1, Epoch: 3, Start: 10, Dur: 5})

	coord := New()
	spans, series := worker.Drain()
	coord.MergeSpans(spans)
	coord.MergeSeries(series)

	spans2, series2 := worker.Drain()
	if len(spans2) != 0 {
		t.Fatalf("second drain returned %d spans", len(spans2))
	}
	for _, sn := range series2 {
		if sn.Count != 0 || sn.Value != 0 {
			t.Fatalf("second drain returned non-empty delta %+v", sn)
		}
	}
	if got := coord.Spans(); len(got) != 1 || got[0].Epoch != 3 || got[0].Rank != 1 || got[0].Index != 1 {
		t.Fatalf("merged spans = %+v", got)
	}
	if v := coord.CounterSeries("cp_ring_sweeps_total", L("op", "decode"), L("rank", "1")).Value(); v != 2 {
		t.Fatalf("merged counter = %v", v)
	}
	if c := coord.Hist("cp_step_seconds").HistCount(); c != 1 {
		t.Fatalf("merged hist count = %d", c)
	}
	// Worker keeps observing after the drain; next drain ships only the new delta.
	worker.Hist("cp_step_seconds").Observe(0.5)
	_, series3 := worker.Drain()
	coord.MergeSeries(series3)
	if c := coord.Hist("cp_step_seconds").HistCount(); c != 2 {
		t.Fatalf("cumulative hist count = %d", c)
	}
}

func TestSpanBufferCapDrops(t *testing.T) {
	r := New()
	r.SetMaxSpans(4)
	for i := 0; i < 10; i++ {
		r.RecordSpan(Span{Name: "s", Rank: 0, Epoch: 1})
	}
	if got := r.SpanCount(); got != 4 {
		t.Fatalf("buffered = %d, want 4", got)
	}
	if v := r.CounterSeries("cp_trace_spans_dropped_total", L("rank", "0")).Value(); v != 6 {
		t.Fatalf("dropped counter = %v", v)
	}
	// Aggregates still counted every span.
	if s := r.Stat("s"); s.Count != 10 {
		t.Fatalf("aggregate count = %d", s.Count)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.RecordSpan(Span{Name: "x"})
	r.Record("x", time.Second)
	r.Time("x")()
	r.Add("c", 1)
	st := r.Sweep(0, 1, "prefill")
	st.Compute(st.Clock())
	st.Comm(st.Clock())
	st.A2A(st.Clock())
	st.Finish(2)
	r.Hist("h").Observe(1)
	r.CounterSeries("c").Inc(1)
	r.Gauge("g").Set(1)
	if r.Hist("h").Quantile(0.5) != 0 || r.Counter("c") != 0 || r.SpanCount() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	r.Reset()
}
