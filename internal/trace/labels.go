package trace

import "sync"

// OverflowLabel is the value a LabelPool maps every unknown label to once
// it is full. Keeping overflow on one shared value bounds the exposition:
// a client sending a new cohort name per request grows zero new series.
const OverflowLabel = "other"

// DefaultLabelCap bounds a LabelPool when the caller passes no cap.
const DefaultLabelCap = 16

// LabelPool guards a labeled metric family against unbounded cardinality.
// Values registered up front (or the first few observed) get their own
// series and a stable numeric id usable in span args (Span.Args is
// int64-valued, so spans carry the id where the exposition carries the
// name); everything past the cap folds into OverflowLabel.
type LabelPool struct {
	mu    sync.Mutex
	cap   int
	ids   map[string]int64
	names []string
}

// NewLabelPool builds a pool with the given cap (0 = DefaultLabelCap) and
// pre-registers the given values. OverflowLabel is always registered and
// does not count against the cap of the pre-registered values.
func NewLabelPool(cap int, pre ...string) *LabelPool {
	if cap <= 0 {
		cap = DefaultLabelCap
	}
	p := &LabelPool{cap: cap, ids: make(map[string]int64)}
	p.register(OverflowLabel)
	for _, v := range pre {
		p.Canon(v)
	}
	return p
}

// register adds a value unconditionally; caller holds no lock contract
// (only used from constructor and under mu).
func (p *LabelPool) register(v string) int64 {
	id := int64(len(p.names))
	p.ids[v] = id
	p.names = append(p.names, v)
	return id
}

// Canon maps a value to the label it should be recorded under: itself when
// registered or when the pool still has room, OverflowLabel otherwise.
// Empty values canonicalize to OverflowLabel too.
func (p *LabelPool) Canon(v string) string {
	if p == nil || v == "" {
		return OverflowLabel
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.ids[v]; ok {
		return v
	}
	// names includes OverflowLabel, so the distinct-value budget is cap+1.
	if len(p.names) <= p.cap {
		p.register(v)
		return v
	}
	return OverflowLabel
}

// ID returns the canonical value's stable numeric id (OverflowLabel is 0).
func (p *LabelPool) ID(v string) int64 {
	if p == nil {
		return 0
	}
	c := p.Canon(v)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ids[c]
}

// Names snapshots the registered values in registration order,
// OverflowLabel first.
func (p *LabelPool) Names() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.names...)
}

// Len returns the registered value count (OverflowLabel included).
func (p *LabelPool) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.names)
}
