package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// metricHelp documents the engine's metric families for the # HELP line.
var metricHelp = map[string]string{
	"cp_request_ttft_seconds":            "Time to first token per generate request.",
	"cp_request_itl_seconds":             "Inter-token latency per decoded token.",
	"cp_step_seconds":                    "Scheduler step-loop iteration latency.",
	"cp_queue_wait_seconds":              "Admission-queue wait per scheduled job, by class.",
	"cp_ring_phase_seconds":              "Per-rank ring sweep phase time (compute, comm, all2all) per layer pass.",
	"cp_ring_sweeps_total":               "Ring sweeps (layer passes) executed per rank and op.",
	"cp_requests_total":                  "Generate requests admitted, by class.",
	"cp_cohort_ttft_seconds":             "Time to first token per generate request, by workload cohort.",
	"cp_cohort_itl_seconds":              "Inter-token latency per decoded token, by workload cohort.",
	"cp_cohort_e2e_seconds":              "End-to-end request latency, by workload cohort.",
	"cp_cohort_requests_total":           "Requests admitted, by workload cohort.",
	"cp_prefill_chunks_total":            "Prefill chunks executed.",
	"cp_prefix_adopt_total":              "Prefix-cache adoptions (warm prefill starts).",
	"cp_prefix_detach_total":             "Session prefixes detached into the reuse tree.",
	"cp_recovery_replays_total":          "Sessions replayed after a cluster rebuild.",
	"cp_trace_spans_dropped_total":       "Spans dropped at the buffer cap, by rank.",
	"cp_uptime_seconds":                  "Seconds since the server started.",
	"cp_stats_sequence":                  "Monotonic stats snapshot sequence number.",
	"cp_sessions_resident":               "Sessions currently resident in the scheduler.",
	"cp_cluster_epoch":                   "Current cluster incarnation epoch.",
	"cp_overload_shed_total":             "Admissions refused by the overload controller, by class.",
	"cp_overload_retry_after_total":      "Overload refusals that carried a retry-after hint, by class.",
	"cp_overload_deadline_expired_total": "Queued jobs dropped because their deadline expired before scheduling, by class.",
	"cp_integrity_checked_total":         "Wire frames whose CRC trailer was verified, by direction.",
	"cp_integrity_rejected_total":        "Wire frames rejected for CRC mismatch, by direction.",
	"cp_chaos_faults_total":              "Chaos faults injected, by kind.",
}

// WriteProm renders every series in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series within a family sorted
// by label signature, histograms as cumulative _bucket/_sum/_count. The
// output is deterministic for a given recorder state.
func (r *Recorder) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*Series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].id < all[j].id
	})
	bw := bufio.NewWriter(w)
	lastFamily := ""
	for _, s := range all {
		sn := s.snapshot()
		if s.name != lastFamily {
			lastFamily = s.name
			help := metricHelp[s.name]
			if help == "" {
				help = "No help."
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
		}
		switch s.kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(bw, "%s %s\n", s.id, formatFloat(sn.Value))
		case KindHistogram:
			cum := uint64(0)
			for i, b := range BucketBounds {
				cum += sn.Counts[i]
				fmt.Fprintf(bw, "%s %d\n", bucketID(s.name, s.labels, formatFloat(b)), cum)
			}
			cum += sn.Counts[len(BucketBounds)]
			fmt.Fprintf(bw, "%s %d\n", bucketID(s.name, s.labels, "+Inf"), cum)
			fmt.Fprintf(bw, "%s %s\n", seriesID(s.name+"_sum", s.labels), formatFloat(sn.Sum))
			fmt.Fprintf(bw, "%s %d\n", seriesID(s.name+"_count", s.labels), sn.Count)
		}
	}
	return bw.Flush()
}

// bucketID renders a _bucket sample id with the le label appended in
// sorted position.
func bucketID(name string, labels []Label, le string) string {
	ls := append([]Label(nil), labels...)
	ls = append(ls, L("le", le))
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return seriesID(name+"_bucket", ls)
}

// PromSample is one parsed exposition sample.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseProm is the tiny in-tree exposition parser used by tests and the CI
// smoke check. It validates the basics of the text format — every sample
// line parses, TYPE lines precede their family's samples, histogram bucket
// series are cumulative-monotone and agree with _count — and returns the
// samples.
func ParseProm(r io.Reader) ([]PromSample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var samples []PromSample
	types := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom line %d: unknown TYPE %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom line %d: %w", lineNo, err)
		}
		base := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := types[strings.TrimSuffix(s.Name, suf)]; ok && t == "histogram" && strings.HasSuffix(s.Name, suf) {
				base = strings.TrimSuffix(s.Name, suf)
				break
			}
		}
		if _, ok := types[base]; !ok {
			return nil, fmt.Errorf("prom line %d: sample %s has no preceding TYPE", lineNo, s.Name)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(samples, types); err != nil {
		return nil, err
	}
	return samples, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("unterminated label set")
		}
		if err := parsePromLabels(rest[i+1:j], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = fields[0]
		rest = fields[1]
	}
	if s.Name == "" || !isPromName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample %s has no value", s.Name)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string, into map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		key := strings.TrimSpace(body[i : i+eq])
		if !isPromName(key) {
			return fmt.Errorf("bad label name %q", key)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %s: unquoted value", key)
		}
		i++
		var val strings.Builder
		for i < len(body) && body[i] != '"' {
			if body[i] == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
			} else {
				val.WriteByte(body[i])
			}
			i++
		}
		if i >= len(body) {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		i++ // closing quote
		into[key] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
		for i < len(body) && body[i] == ' ' {
			i++
		}
	}
	return nil
}

func isPromName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// checkHistograms verifies bucket monotonicity, that every histogram has a
// +Inf bucket, and that the +Inf cumulative count equals _count.
func checkHistograms(samples []PromSample, types map[string]string) error {
	type hist struct {
		buckets map[float64]float64 // le -> cumulative
		hasInf  bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	hists := map[string]*hist{}
	sig := func(base string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(base)
		for _, k := range keys {
			fmt.Fprintf(&b, ",%s=%s", k, labels[k])
		}
		return b.String()
	}
	get := func(key string) *hist {
		h := hists[key]
		if h == nil {
			h = &hist{buckets: map[float64]float64{}}
			hists[key] = h
		}
		return h
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && types[strings.TrimSuffix(s.Name, "_bucket")] == "histogram":
			base := strings.TrimSuffix(s.Name, "_bucket")
			h := get(sig(base, s.Labels))
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le", base)
			}
			if le == "+Inf" {
				h.hasInf = true
				h.inf = s.Value
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", base, le)
				}
				h.buckets[b] = s.Value
			}
		case strings.HasSuffix(s.Name, "_count") && types[strings.TrimSuffix(s.Name, "_count")] == "histogram":
			base := strings.TrimSuffix(s.Name, "_count")
			h := get(sig(base, s.Labels))
			h.count = s.Value
			h.hasCnt = true
		}
	}
	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		bounds := make([]float64, 0, len(h.buckets))
		for b := range h.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		last := 0.0
		for _, b := range bounds {
			if h.buckets[b] < last {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", key, b)
			}
			last = h.buckets[b]
		}
		if h.inf < last {
			return fmt.Errorf("histogram %s: +Inf bucket below le=%v bucket", key, last)
		}
		if h.hasCnt && h.inf != h.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", key, h.inf, h.count)
		}
	}
	return nil
}
