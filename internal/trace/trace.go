// Package trace collects named timing spans and counters from the inference
// engine. It backs the per-phase breakdowns the paper reports (SendRecv /
// ATTN / All2All in Tables 5 and 8) for the functional layer, where wall
// times come from actually running the simulated cluster.
//
// Recorders are safe for concurrent use: every CP rank goroutine records
// into the same recorder during a distributed call.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stat aggregates one span name.
type Stat struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s Stat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Recorder accumulates spans and counters.
type Recorder struct {
	mu       sync.Mutex
	spans    map[string]Stat
	counters map[string]int64
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{spans: make(map[string]Stat), counters: make(map[string]int64)}
}

// Record adds one span observation.
func (r *Recorder) Record(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.spans[name]
	s.Count++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	r.spans[name] = s
}

// Time starts a span and returns a stop function; idiomatic use is
// defer r.Time("attn")().
func (r *Recorder) Time(name string) func() {
	start := time.Now()
	return func() { r.Record(name, time.Since(start)) }
}

// Add increments a named counter.
func (r *Recorder) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Counter returns a counter's value.
func (r *Recorder) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Span returns the aggregate for one span name.
func (r *Recorder) Span(name string) Stat {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans[name]
}

// Names returns all span names in sorted order.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.spans))
	for n := range r.spans {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Reset clears all spans and counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = make(map[string]Stat)
	r.counters = make(map[string]int64)
}

// String renders a one-line-per-span summary, useful in examples and CLIs.
func (r *Recorder) String() string {
	var b strings.Builder
	for _, n := range r.Names() {
		s := r.Span(n)
		fmt.Fprintf(&b, "%-24s count=%-6d total=%-12s mean=%s\n", n, s.Count, s.Total, s.Mean())
	}
	return b.String()
}
