// Package trace is the engine's observability layer: distributed spans,
// streaming latency histograms, and labeled counters/gauges, exported as
// Chrome-trace JSON, deterministic JSONL, and Prometheus text exposition.
//
// It backs the per-phase breakdowns the paper reports (SendRecv / ATTN /
// All2All in Tables 5 and 8): every ring sweep records its compute, comm,
// and All2All time per rank, and the serving layer records TTFT / ITL /
// step-latency histograms plus per-request spans (queue wait, prefill
// chunks, decode iterations, prefix adopt/detach, recovery replay).
//
// Recorders are safe for concurrent use: every CP rank goroutine records
// into the same recorder during an in-process distributed call. In
// multi-process mode each worker records into its own recorder and the
// coordinator drains deltas over the wire (wire.TraceCmd / TraceResult),
// merging them into its cumulative store — so counters stay monotonic
// across epochs and histogram merge is plain bucket addition.
//
// Every recording entry point is nil-safe on a nil *Recorder: tracing off
// is a nil handle, costs no time.Now() calls, and cannot perturb compute.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed activity on one rank. Start is Unix nanoseconds; Index
// is a per-(rank, epoch) monotonic sequence number assigned at record time,
// so sorting by (Epoch, Rank, Index) reproduces each rank's program order
// exactly — the deterministic export ordering.
type Span struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat,omitempty"`
	Rank  int              `json:"rank"`
	Seq   int              `json:"seq"`
	Epoch uint64           `json:"epoch"`
	Index uint64           `json:"index"`
	Start int64            `json:"start_ns"`
	Dur   int64            `json:"dur_ns"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// CoordinatorRank tags spans recorded by the coordinator / scheduler rather
// than a CP rank.
const CoordinatorRank = -1

// NoSeq tags spans not attributable to one sequence.
const NoSeq = -1

// Stat aggregates one span name (count / total / max), the summary surface
// the core engine and cpsim print.
type Stat struct {
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (s Stat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// DefaultMaxSpans bounds the in-memory span buffer; past it, new spans are
// dropped and counted in cp_trace_spans_dropped_total.
const DefaultMaxSpans = 1 << 16

type rankKey struct {
	rank  int
	epoch uint64
}

// Recorder accumulates spans, aggregate per-name stats, and labeled metric
// series. The zero value is not usable; call New. A nil *Recorder is a
// valid "tracing off" handle for every recording method.
type Recorder struct {
	mu       sync.Mutex
	maxSpans int
	spans    []Span
	nextIdx  map[rankKey]uint64
	agg      map[string]Stat
	counters map[string]int64
	series   map[string]*Series
	order    []string // series ids in creation order (sorted at export)
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{
		maxSpans: DefaultMaxSpans,
		nextIdx:  make(map[rankKey]uint64),
		agg:      make(map[string]Stat),
		counters: make(map[string]int64),
		series:   make(map[string]*Series),
	}
}

// SetMaxSpans bounds the span buffer (<= 0 keeps the current bound).
func (r *Recorder) SetMaxSpans(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxSpans = n
	r.mu.Unlock()
}

// RecordSpan appends one span, assigning its per-(rank, epoch) Index. The
// aggregate Stat for s.Name is updated even when the buffer is full.
func (r *Recorder) RecordSpan(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	k := rankKey{s.Rank, s.Epoch}
	r.nextIdx[k]++
	s.Index = r.nextIdx[k]
	st := r.agg[s.Name]
	st.Count++
	st.Total += time.Duration(s.Dur)
	if time.Duration(s.Dur) > st.Max {
		st.Max = time.Duration(s.Dur)
	}
	r.agg[s.Name] = st
	dropped := len(r.spans) >= r.maxSpans
	if !dropped {
		r.spans = append(r.spans, s)
	}
	var dropCtr *Series
	if dropped {
		dropCtr = r.seriesLocked(KindCounter, "cp_trace_spans_dropped_total", L("rank", rankLabel(s.Rank)))
	}
	r.mu.Unlock()
	if dropCtr != nil {
		dropCtr.Inc(1)
	}
}

// Record adds one aggregate span observation without buffering a full span
// (the seed recorder's surface, kept for cheap unattributed timings).
func (r *Recorder) Record(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	s := r.agg[name]
	s.Count++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	r.agg[name] = s
	r.mu.Unlock()
}

// Time starts a coordinator-rank span and returns a stop function that
// records it; idiomatic use is defer r.Time("engine.prefill")().
func (r *Recorder) Time(name string) func() {
	if r == nil {
		return func() {}
	}
	start := time.Now() //cplint:allow determinism span timing is this layer's purpose; never feeds the decode path
	return func() {
		r.RecordSpan(Span{
			Name: name, Rank: CoordinatorRank, Seq: NoSeq,
			Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(), //cplint:allow determinism span duration, observability only
		})
	}
}

// Add increments a named (unlabeled, process-local) counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns an unlabeled counter's value.
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Stat returns the aggregate for one span name.
func (r *Recorder) Stat(name string) Stat {
	if r == nil {
		return Stat{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.agg[name]
}

// Names returns all aggregate span names in sorted order.
func (r *Recorder) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.agg))
	for n := range r.agg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SpanCount returns the number of buffered spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Reset clears spans, aggregates, and every series' contents (registry and
// label sets survive so pre-resolved handles stay valid).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = nil
	r.nextIdx = make(map[rankKey]uint64)
	r.agg = make(map[string]Stat)
	r.counters = make(map[string]int64)
	series := make([]*Series, 0, len(r.order))
	for _, id := range r.order {
		series = append(series, r.series[id])
	}
	r.mu.Unlock()
	for _, s := range series {
		s.reset()
	}
}

// String renders a one-line-per-name summary of the aggregate stats,
// useful in examples and CLIs.
func (r *Recorder) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for _, n := range r.Names() {
		s := r.Stat(n)
		fmt.Fprintf(&b, "%-24s count=%-6d total=%-12s mean=%s\n", n, s.Count, s.Total, s.Mean())
	}
	return b.String()
}

// rankLabel renders a rank id as a label value ("coord" for the
// coordinator pseudo-rank).
func rankLabel(rank int) string {
	if rank == CoordinatorRank {
		return "coord"
	}
	return fmt.Sprintf("%d", rank)
}

// RankLabel is the exported form used by callers building label sets.
func RankLabel(rank int) string { return rankLabel(rank) }

// --- ring sweep timing -----------------------------------------------------

// SweepTimer accumulates one ring sweep's (one layer pass on one rank)
// per-phase wall time: attention compute, ring SendRecv issue+wait, and the
// trailing All2All — the paper's Table 5/8 axes. Created per sweep via
// Recorder.Sweep; all methods are nil-safe so the ring hot path stays
// branch-light when tracing is off.
type SweepTimer struct {
	rec       *Recorder
	rank      int
	epoch     uint64
	op        string
	seq       int
	computeNs int64
	commNs    int64
	a2aNs     int64
	steps     int
	hasA2A    bool
	start     time.Time
	hc, hm    *Series
	ha        *Series
	sweeps    *Series
}

// Sweep opens a sweep timer for one rank and op ("prefill" or "decode").
// Returns nil (a valid no-op timer) on a nil recorder.
func (r *Recorder) Sweep(rank int, epoch uint64, op string) *SweepTimer {
	if r == nil {
		return nil
	}
	rl := rankLabel(rank)
	return &SweepTimer{
		rec: r, rank: rank, epoch: epoch, op: op, seq: NoSeq,
		start:  time.Now(), //cplint:allow determinism sweep wall-clock start, observability only
		hc:     r.Hist("cp_ring_phase_seconds", L("op", op), L("phase", "compute"), L("rank", rl)),
		hm:     r.Hist("cp_ring_phase_seconds", L("op", op), L("phase", "comm"), L("rank", rl)),
		ha:     r.Hist("cp_ring_phase_seconds", L("op", op), L("phase", "all2all"), L("rank", rl)),
		sweeps: r.CounterSeries("cp_ring_sweeps_total", L("op", op), L("rank", rl)),
	}
}

// Clock returns the current time, or the zero time on a nil timer (so
// callers can write t0 := tr.Clock(); ...; tr.Compute(t0) untraced for
// free).
func (t *SweepTimer) Clock() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now() //cplint:allow determinism phase-timer clock read, observability only
}

// Compute charges the time since t0 to the attention-compute phase.
func (t *SweepTimer) Compute(t0 time.Time) {
	if t == nil {
		return
	}
	t.computeNs += time.Since(t0).Nanoseconds() //cplint:allow determinism phase duration, observability only
}

// Comm charges the time since t0 to the ring SendRecv phase (transfer
// issue and exposed wait both land here, so the sum is comparable across
// the overlapped and synchronous ring paths).
func (t *SweepTimer) Comm(t0 time.Time) {
	if t == nil {
		return
	}
	t.commNs += time.Since(t0).Nanoseconds() //cplint:allow determinism phase duration, observability only
}

// A2A charges the time since t0 to the trailing All2All.
func (t *SweepTimer) A2A(t0 time.Time) {
	if t == nil {
		return
	}
	t.a2aNs += time.Since(t0).Nanoseconds() //cplint:allow determinism phase duration, observability only
	t.hasA2A = true
}

// Finish records the sweep: one observation per phase histogram, the sweep
// counter, and one ring.sweep span carrying the phase breakdown.
func (t *SweepTimer) Finish(steps int) {
	if t == nil {
		return
	}
	t.steps = steps
	t.hc.Observe(float64(t.computeNs) / 1e9)
	t.hm.Observe(float64(t.commNs) / 1e9)
	if t.hasA2A {
		t.ha.Observe(float64(t.a2aNs) / 1e9)
	}
	t.sweeps.Inc(1)
	args := map[string]int64{
		"compute_ns": t.computeNs,
		"comm_ns":    t.commNs,
		"steps":      int64(steps),
	}
	if t.hasA2A {
		args["all2all_ns"] = t.a2aNs
	}
	t.rec.RecordSpan(Span{
		Name: "ring.sweep", Cat: t.op, Rank: t.rank, Seq: t.seq, Epoch: t.epoch,
		Start: t.start.UnixNano(), Dur: time.Since(t.start).Nanoseconds(), Args: args, //cplint:allow determinism sweep span duration, observability only
	})
}

// --- drain / merge (the wire-shipping surface) -----------------------------

// SeriesSnap is one series' drained delta (or gauge value): the unit the
// coordinator merges after shipping it over a wire.TraceResult.
type SeriesSnap struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64  // counter delta or gauge value
	Count  uint64   // histogram observation count delta
	Sum    float64  // histogram sum delta
	Counts []uint64 // histogram bucket count deltas (len == len(BucketBounds))
}

// Drain atomically removes and returns all buffered spans plus every
// series' delta since the previous drain, resetting counters and histogram
// contents (gauges keep their value — they are levels, not flows). Worker
// recorders are staging buffers: the coordinator's merged store is the
// cumulative source of truth.
func (r *Recorder) Drain() ([]Span, []SeriesSnap) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	spans := r.spans
	r.spans = nil
	ids := append([]string(nil), r.order...)
	series := make([]*Series, len(ids))
	for i, id := range ids {
		series[i] = r.series[id]
	}
	r.mu.Unlock()
	sort.Strings(ids)
	sort.Slice(series, func(i, j int) bool { return series[i].id < series[j].id })
	snaps := make([]SeriesSnap, 0, len(series))
	for _, s := range series {
		snaps = append(snaps, s.drain())
	}
	return spans, snaps
}

// MergeSpans appends drained spans from another recorder verbatim (their
// Index values are already per-(rank, epoch) and must be preserved for the
// deterministic export ordering).
func (r *Recorder) MergeSpans(spans []Span) {
	if r == nil || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	var droppedBy map[int]int64
	for _, s := range spans {
		if len(r.spans) >= r.maxSpans {
			if droppedBy == nil {
				droppedBy = make(map[int]int64)
			}
			droppedBy[s.Rank]++
			continue
		}
		r.spans = append(r.spans, s)
		k := rankKey{s.Rank, s.Epoch}
		if s.Index > r.nextIdx[k] {
			r.nextIdx[k] = s.Index
		}
	}
	ranks := make([]int, 0, len(droppedBy))
	for rank := range droppedBy {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks) // fixed series-creation order regardless of map iteration
	drops := make([]*Series, 0, len(ranks))
	counts := make([]int64, 0, len(ranks))
	for _, rank := range ranks {
		drops = append(drops, r.seriesLocked(KindCounter, "cp_trace_spans_dropped_total", L("rank", rankLabel(rank))))
		counts = append(counts, droppedBy[rank])
	}
	r.mu.Unlock()
	for i, s := range drops {
		s.Inc(float64(counts[i]))
	}
}

// MergeSeries folds drained series deltas into this recorder: counters and
// histograms add, gauges take the incoming value. Series are created on
// first sight, so a fresh coordinator can absorb any worker's registry.
func (r *Recorder) MergeSeries(snaps []SeriesSnap) {
	if r == nil {
		return
	}
	for _, sn := range snaps {
		s := r.getSeries(sn.Kind, sn.Name, sn.Labels...)
		s.merge(sn)
	}
}
