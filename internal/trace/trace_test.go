package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAggregates(t *testing.T) {
	r := New()
	r.Record("attn", 10*time.Millisecond)
	r.Record("attn", 30*time.Millisecond)
	s := r.Stat("attn")
	if s.Count != 2 || s.Total != 40*time.Millisecond || s.Max != 30*time.Millisecond {
		t.Fatalf("stat = %+v", s)
	}
	if s.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestMeanOfEmpty(t *testing.T) {
	var s Stat
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestTimeHelper(t *testing.T) {
	r := New()
	stop := r.Time("op")
	time.Sleep(2 * time.Millisecond)
	stop()
	if s := r.Stat("op"); s.Count != 1 || s.Total < time.Millisecond {
		t.Fatalf("Time recorded %+v", s)
	}
}

func TestCounters(t *testing.T) {
	r := New()
	r.Add("prefill.pass-kv", 1)
	r.Add("prefill.pass-kv", 2)
	if got := r.Counter("prefill.pass-kv"); got != 3 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d", got)
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	r.Record("z", 1)
	r.Record("a", 1)
	r.Record("m", 1)
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Record("x", 1)
	r.Add("c", 1)
	r.Reset()
	if len(r.Names()) != 0 || r.Counter("c") != 0 {
		t.Fatal("reset left residue")
	}
}

func TestStringContainsSpans(t *testing.T) {
	r := New()
	r.Record("ring.sendrecv", 5*time.Microsecond)
	if !strings.Contains(r.String(), "ring.sendrecv") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Record("op", time.Microsecond)
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if s := r.Stat("op"); s.Count != 800 {
		t.Fatalf("concurrent count = %d, want 800", s.Count)
	}
	if r.Counter("n") != 800 {
		t.Fatalf("concurrent counter = %d, want 800", r.Counter("n"))
	}
}
