package trace

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind distinguishes the three Prometheus metric families the recorder can
// hold.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one metric dimension. Label sets are sorted by key when a series
// is resolved, so any argument order names the same series.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// BucketBounds is the shared fixed log-scale bucket layout of every
// histogram: upper bounds doubling from 1µs to ~134s (28 buckets plus the
// implicit +Inf). One fixed layout keeps cross-rank merge a plain
// element-wise addition.
var BucketBounds = func() []float64 {
	b := make([]float64, 28)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Series is one labeled metric: a counter, a gauge, or a fixed-bucket
// histogram. Safe for concurrent use; all methods are nil-safe so an
// untraced caller can hold a nil handle.
type Series struct {
	id     string // name{k="v",...} — the registry key and sort key
	name   string
	labels []Label
	kind   Kind

	mu     sync.Mutex
	value  float64  // counter / gauge
	count  uint64   // histogram observations
	sum    float64  // histogram sum
	counts []uint64 // histogram per-bucket counts, len == len(BucketBounds)+1 (+Inf last)
}

// Name returns the metric family name.
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// seriesID renders the canonical registry key.
func seriesID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getSeries resolves (creating if absent) a series by kind, name, labels.
func (r *Recorder) getSeries(kind Kind, name string, labels ...Label) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	s := r.seriesLocked(kind, name, labels...)
	r.mu.Unlock()
	return s
}

func (r *Recorder) seriesLocked(kind Kind, name string, labels ...Label) *Series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	id := seriesID(name, ls)
	if s, ok := r.series[id]; ok {
		return s
	}
	s := &Series{id: id, name: name, labels: ls, kind: kind}
	if kind == KindHistogram {
		s.counts = make([]uint64, len(BucketBounds)+1)
	}
	r.series[id] = s
	r.order = append(r.order, id)
	return s
}

// Hist resolves a histogram handle. Resolve once, observe many times.
func (r *Recorder) Hist(name string, labels ...Label) *Series {
	return r.getSeries(KindHistogram, name, labels...)
}

// CounterSeries resolves a labeled counter handle.
func (r *Recorder) CounterSeries(name string, labels ...Label) *Series {
	return r.getSeries(KindCounter, name, labels...)
}

// Gauge resolves a gauge handle.
func (r *Recorder) Gauge(name string, labels ...Label) *Series {
	return r.getSeries(KindGauge, name, labels...)
}

// Observe adds one sample to a histogram (seconds for latency series).
func (s *Series) Observe(v float64) {
	if s == nil || s.kind != KindHistogram {
		return
	}
	i := bucketFor(v)
	s.mu.Lock()
	s.counts[i]++
	s.count++
	s.sum += v
	s.mu.Unlock()
}

func bucketFor(v float64) int {
	// Linear scan: 28 bounds, called once per phase per sweep — not hot.
	for i, b := range BucketBounds {
		if v <= b {
			return i
		}
	}
	return len(BucketBounds)
}

// Inc adds to a counter.
func (s *Series) Inc(d float64) {
	if s == nil || s.kind != KindCounter {
		return
	}
	s.mu.Lock()
	s.value += d
	s.mu.Unlock()
}

// Set sets a gauge.
func (s *Series) Set(v float64) {
	if s == nil || s.kind != KindGauge {
		return
	}
	s.mu.Lock()
	s.value = v
	s.mu.Unlock()
}

// Value returns a counter/gauge value or a histogram's observation count.
func (s *Series) Value() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.kind == KindHistogram {
		return float64(s.count)
	}
	return s.value
}

// HistCount returns a histogram's observation count.
func (s *Series) HistCount() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile estimates the q-quantile (q in [0,1]) of a histogram as the
// smallest bucket upper bound whose cumulative count reaches q·total —
// deterministic, and within one bucket width of the true sample quantile by
// construction. Returns 0 on an empty histogram; saturates at the last
// finite bound for samples in the +Inf bucket.
func (s *Series) Quantile(q float64) float64 {
	if s == nil || s.kind != KindHistogram {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return 0
	}
	target := q * float64(s.count)
	cum := uint64(0)
	for i, c := range s.counts {
		cum += c
		if float64(cum) >= target {
			if i >= len(BucketBounds) {
				return BucketBounds[len(BucketBounds)-1]
			}
			return BucketBounds[i]
		}
	}
	return BucketBounds[len(BucketBounds)-1]
}

// Snap returns the series' current contents without resetting — the public
// snapshot used by windowed consumers (e.g. the scheduler's brownout
// detector diffing queue-wait histograms between admission checks).
func (s *Series) Snap() SeriesSnap {
	if s == nil {
		return SeriesSnap{}
	}
	return s.snapshot()
}

// DeltaQuantile estimates the q-quantile of the observations a histogram
// gained between two snapshots (prev taken before cur), with the same
// bucket-upper-bound estimate as Series.Quantile. A cumulative histogram's
// quantile is dominated by its history; the delta form answers "how slow is
// it right now". Returns (0, false) when the window holds no observations
// or the snapshots are not histograms.
func DeltaQuantile(cur, prev SeriesSnap, q float64) (float64, bool) {
	if cur.Kind != KindHistogram || cur.Count <= prev.Count || len(cur.Counts) == 0 {
		return 0, false
	}
	total := cur.Count - prev.Count
	target := q * float64(total)
	cum := uint64(0)
	for i, c := range cur.Counts {
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		cum += c
		if float64(cum) >= target {
			if i >= len(BucketBounds) {
				return BucketBounds[len(BucketBounds)-1], true
			}
			return BucketBounds[i], true
		}
	}
	return BucketBounds[len(BucketBounds)-1], true
}

// snapshot returns the series' current contents without resetting.
func (s *Series) snapshot() SeriesSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := SeriesSnap{
		Name:   s.name,
		Labels: append([]Label(nil), s.labels...),
		Kind:   s.kind,
		Value:  s.value,
		Count:  s.count,
		Sum:    s.sum,
	}
	if s.kind == KindHistogram {
		sn.Counts = append([]uint64(nil), s.counts...)
	}
	return sn
}

// drain returns the series' delta since the last drain and resets flows
// (counters, histograms); gauges are levels and keep their value.
func (s *Series) drain() SeriesSnap {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := SeriesSnap{
		Name:   s.name,
		Labels: append([]Label(nil), s.labels...),
		Kind:   s.kind,
		Value:  s.value,
		Count:  s.count,
		Sum:    s.sum,
	}
	switch s.kind {
	case KindHistogram:
		sn.Counts = append([]uint64(nil), s.counts...)
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.count = 0
		s.sum = 0
	case KindCounter:
		s.value = 0
	}
	return sn
}

// merge folds a drained delta in: counters and histograms add, gauges take
// the incoming value.
func (s *Series) merge(sn SeriesSnap) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.kind {
	case KindCounter:
		s.value += sn.Value
	case KindGauge:
		s.value = sn.Value
	case KindHistogram:
		s.count += sn.Count
		s.sum += sn.Sum
		for i := 0; i < len(s.counts) && i < len(sn.Counts); i++ {
			s.counts[i] += sn.Counts[i]
		}
	}
}

// reset zeroes a series' contents (all kinds).
func (s *Series) reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.value = 0
	s.count = 0
	s.sum = 0
	for i := range s.counts {
		s.counts[i] = 0
	}
}

// formatFloat renders a float the way the Prometheus text format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
