// Package tp implements the tensor-parallel attention baseline the paper
// compares context parallelism against (§3.2, §4.2.2). Query heads are
// sharded across ranks; each rank holds the KV heads its query slice reads
// (replicating KV heads when the group is wider than NKV, exactly as the
// paper describes for TP16/TP32: "we replicate each KV head over NTP/NKV
// GPUs"). Partial head outputs are assembled with a gather standing in for
// the row-parallel output projection's AllReduce, and the traffic is
// accounted so tests can verify Table 2's communication comparison on the
// simulated transport.
package tp

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/tensor"
)

// HeadRange returns the query-head interval [lo, hi) owned by a rank. NH
// must be divisible by n.
func HeadRange(nh, n, rank int) (lo, hi int, err error) {
	if n <= 0 || nh%n != 0 {
		return 0, 0, fmt.Errorf("tp: %d heads not divisible by %d ranks", nh, n)
	}
	if rank < 0 || rank >= n {
		return 0, 0, fmt.Errorf("tp: rank %d out of range", rank)
	}
	per := nh / n
	return rank * per, (rank + 1) * per, nil
}

// KVRange returns the KV-head interval a query-head slice [qlo, qhi) reads
// under GQA grouping.
func KVRange(qlo, qhi, group int) (lo, hi int) {
	return qlo / group, (qhi-1)/group + 1
}

// Attention computes exact GQA under tensor parallelism on one rank: the
// rank computes its query-head slice against its (possibly replicated) KV
// heads, then all ranks exchange head outputs so every rank holds the full
// result — the data movement of the attention block's row-parallel output
// projection. Inputs q [T, NH, DH] and k/v [ctx, NKV, DH] are the full
// tensors (replicated activations, as TP maintains between AllReduces).
func Attention(r *comm.Rank, q, k, v *tensor.Tensor, m attention.Mask, elem float64) (*attention.Output, error) {
	n := r.N()
	qlo, qhi, err := HeadRange(q.Heads, n, r.ID)
	if err != nil {
		return nil, err
	}
	if k.Heads == 0 || q.Heads%k.Heads != 0 {
		return nil, fmt.Errorf("tp: NH=%d not divisible by NKV=%d", q.Heads, k.Heads)
	}
	group := q.Heads / k.Heads
	kvlo, kvhi := KVRange(qlo, qhi, group)

	localQ := q.SliceHeads(qlo, qhi)
	localK := k.SliceHeads(kvlo, kvhi)
	localV := v.SliceHeads(kvlo, kvhi)
	partial, err := attention.GQA(localQ, localK, localV, m)
	if err != nil {
		return nil, err
	}
	// Exchange head slices; the accounted payload per peer is this rank's
	// output slice (T * NH/n * DH * e), the per-rank share of the
	// post-attention AllReduce in Table 2.
	gathered, err := r.AllGather(partial, partial.O.Bytes(elem))
	if err != nil {
		return nil, err
	}
	outs := make([]*tensor.Tensor, n)
	lses := make([][]float64, n)
	for src := 0; src < n; src++ {
		p, ok := gathered[src].(*attention.Output)
		if !ok {
			return nil, fmt.Errorf("tp: rank %d gathered unexpected payload", r.ID)
		}
		outs[src] = p.O
		lses[src] = p.LSE
	}
	full := &attention.Output{O: tensor.ConcatHeads(outs...), LSE: concatLSE(lses, q.Tokens)}
	return full, nil
}

// concatLSE reassembles per-(token, head) LSEs from per-rank head slices.
func concatLSE(parts [][]float64, tokens int) []float64 {
	headsPer := 0
	if tokens > 0 && len(parts) > 0 {
		headsPer = len(parts[0]) / tokens
	}
	total := headsPer * len(parts)
	out := make([]float64, tokens*total)
	for src, lse := range parts {
		for t := 0; t < tokens; t++ {
			copy(out[t*total+src*headsPer:t*total+(src+1)*headsPer],
				lse[t*headsPer:(t+1)*headsPer])
		}
	}
	return out
}

// LinearAllReduceBytes returns the per-rank accounted traffic of the two
// activation AllReduces a transformer block performs under TP (Table 2's
// 2·T·NH·DH·e), so callers can book linear-layer communication without
// simulating the GEMMs.
func LinearAllReduceBytes(tokens, modelDim int, elem float64) float64 {
	return 2 * float64(tokens) * float64(modelDim) * elem
}
