package tp

import (
	"math/rand"
	"testing"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/ring"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

const (
	nh   = 8
	nkv  = 2
	dh   = 4
	elem = 2.0
	tol  = 1e-5
)

func TestHeadRange(t *testing.T) {
	lo, hi, err := HeadRange(8, 4, 2)
	if err != nil || lo != 4 || hi != 6 {
		t.Fatalf("HeadRange = [%d,%d) err=%v", lo, hi, err)
	}
	if _, _, err := HeadRange(8, 3, 0); err == nil {
		t.Fatal("non-divisible head count accepted")
	}
	if _, _, err := HeadRange(8, 4, 9); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestKVRangeReplication(t *testing.T) {
	// group=4 (8 q heads, 2 kv heads): ranks of 1 q head each share kv heads.
	lo, hi := KVRange(0, 1, 4)
	if lo != 0 || hi != 1 {
		t.Fatalf("KVRange(0,1) = [%d,%d)", lo, hi)
	}
	lo, hi = KVRange(4, 8, 4)
	if lo != 1 || hi != 2 {
		t.Fatalf("KVRange(4,8) = [%d,%d)", lo, hi)
	}
	lo, hi = KVRange(0, 8, 4)
	if lo != 0 || hi != 2 {
		t.Fatalf("KVRange(0,8) = [%d,%d)", lo, hi)
	}
}

func TestTPAttentionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	T := 12
	q := tensor.RandN(rng, T, nh, dh)
	k := tensor.RandN(rng, T, nkv, dh)
	v := tensor.RandN(rng, T, nkv, dh)
	m := attention.FullCausal(T)
	ref, err := attention.GQA(q, k, v, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 8} { // 8 ranks > NKV forces replication
		w := comm.NewWorld(n)
		outs, err := comm.RunCollect(w, func(r *comm.Rank) (*attention.Output, error) {
			return Attention(r, q, k, v, m, elem)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for rank, o := range outs {
			if d := tensor.MaxAbsDiff(ref.O, o.O); d > tol {
				t.Fatalf("n=%d rank %d deviates by %v", n, rank, d)
			}
			for i := range ref.LSE {
				if diff := ref.LSE[i] - o.LSE[i]; diff > tol || diff < -tol {
					t.Fatalf("n=%d rank %d LSE[%d] = %v, want %v", n, rank, i, o.LSE[i], ref.LSE[i])
				}
			}
		}
	}
}

func TestTPAttentionPartialPrefill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	T, P := 5, 9
	q := tensor.RandN(rng, T, nh, dh)
	k := tensor.RandN(rng, T+P, nkv, dh)
	v := tensor.RandN(rng, T+P, nkv, dh)
	m := attention.PartialCausal(T, P)
	ref, err := attention.GQA(q, k, v, m)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(4)
	outs, err := comm.RunCollect(w, func(r *comm.Rank) (*attention.Output, error) {
		return Attention(r, q, k, v, m, elem)
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(ref.O, outs[0].O); d > tol {
		t.Fatalf("TP partial prefill deviates by %v", d)
	}
}

// The functional Table 2 comparison: for the same full prefill, TP moves
// more bytes per rank than CP pass-KV by roughly 2*NH/NKV (once the two
// per-block linear AllReduces are accounted).
func TestTable2FunctionalComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const T, n = 32, 2
	q := tensor.RandN(rng, T, nh, dh)
	k := tensor.RandN(rng, T, nkv, dh)
	v := tensor.RandN(rng, T, nkv, dh)
	m := attention.FullCausal(T)

	wTP := comm.NewWorld(n)
	if err := wTP.Run(func(r *comm.Rank) error {
		_, err := Attention(r, q, k, v, m, elem)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tpAttnBytes := wTP.TotalStats().TotalBytes() / n // per rank
	tpTotal := tpAttnBytes + LinearAllReduceBytes(T, nh*dh, elem)

	plan, err := sharding.NewBatchShard([]int{T}, n)
	if err != nil {
		t.Fatal(err)
	}
	wCP := comm.NewWorld(n)
	caches := make([]*kvcache.Cache, n)
	for r := range caches {
		caches[r], _ = kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh})
	}
	if err := wCP.Run(func(r *comm.Rank) error {
		_, err := ring.PassKVPrefill(&ring.PrefillInput{
			Rank: r, Plan: plan, P: []int{0},
			Q: plan.Shard(q, r.ID), K: plan.Shard(k, r.ID), V: plan.Shard(v, r.ID),
			Cache: caches[r.ID], Elem: elem,
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cpBytes := wCP.TotalStats().Bytes[comm.KindSendRecv] / n

	if tpTotal <= cpBytes {
		t.Fatalf("TP per-rank bytes %v should exceed CP %v", tpTotal, cpBytes)
	}
	// Table 2 ratio 2*NH/NKV = 8 for this config; allow wide tolerance since
	// the functional gather pattern approximates a ring AllReduce.
	ratio := tpTotal / cpBytes
	if ratio < 3 || ratio > 16 {
		t.Fatalf("TP/CP byte ratio = %.2f, want O(2*NH/NKV = %d)", ratio, 2*nh/nkv)
	}
}

func TestTPAttentionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := tensor.RandN(rng, 4, 6, dh) // 6 heads not divisible by 4 ranks
	k := tensor.RandN(rng, 4, 2, dh)
	v := tensor.RandN(rng, 4, 2, dh)
	w := comm.NewWorld(4)
	err := w.Run(func(r *comm.Rank) error {
		_, err := Attention(r, q, k, v, attention.FullCausal(4), elem)
		if err == nil {
			return nil
		}
		return nil // errors expected on every rank; just don't hang
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearAllReduceBytes(t *testing.T) {
	// Table 2: 2 * T * NH * DH * e.
	if got := LinearAllReduceBytes(8192, 16384, 2); got != 2*8192*16384*2 {
		t.Fatalf("LinearAllReduceBytes = %v", got)
	}
}
