package lint

// Policy maps each rule to the module-relative directory trees it covers.
// A pattern matches a package whose Rel dir equals it or lives under it;
// the empty pattern "" matches every package. Policy is the per-package
// configuration surface: determinism applies only to the packages whose
// outputs must be pure functions of their inputs, while the trace layer —
// whose whole job is reading the wall clock — carries per-line
// //cplint:allow annotations instead of a blanket exemption, so every
// clock read there is visibly justified.
type Policy map[string][]string

// Applies reports whether rule covers the package at rel.
func (pol Policy) Applies(rule, rel string) bool {
	pats, ok := pol[rule]
	if !ok {
		return false
	}
	for _, pat := range pats {
		if pat == "" || pat == rel {
			return true
		}
		if len(rel) > len(pat) && rel[:len(pat)] == pat && rel[len(pat)] == '/' {
			return true
		}
	}
	return false
}

// DefaultPolicy is the repo's enforcement map (documented in README
// "Static analysis").
func DefaultPolicy() Policy {
	return Policy{
		// Deterministic packages: bit-identity and replay reproducibility
		// rest on these being pure functions of their inputs. The trace
		// layer is included deliberately — its legitimate wall-clock reads
		// are annotated in place rather than exempted wholesale.
		"determinism": {
			"internal/comm/wire",
			"internal/workload",
			"internal/eventsim",
			"internal/chaos",
			"internal/quantize",
			"internal/sharding",
			"internal/trace",
		},
		// Map-iteration order must never reach an encoder, a hash, a float
		// accumulator, or an unsorted slice anywhere in the tree.
		"map-order": {""},
		// Every switch over an iota kind enum in the wire codec and its
		// readers must cover all kinds or fail loudly in a default.
		"wire-exhaustive": {
			"internal/comm",
			"internal/transformer",
			"internal/chaos",
		},
		// No mutex held across a channel send or net.Conn write in the
		// transport or serving layers.
		"lock-send": {
			"internal/comm",
			"internal/server",
		},
		// Every cp_* series the engines record must be in the trace
		// package's registration set (the /metrics zero-state contract).
		"metric-reg": {
			"internal/server",
			"internal/transformer",
			"internal/trace",
		},
	}
}
