package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// constGroup is one iota-style enum: every constant declared in a single
// `const (...)` block that uses iota. The wire frame-kind ids are the
// motivating instance.
type constGroup struct {
	pkgPath string
	names   []string // declaration order
	objs    map[types.Object]bool
}

// constGroups indexes every iota const-block across the module, keyed by
// member object. Built once per Module.
func (m *Module) constGroups() map[types.Object]*constGroup {
	m.groupsOnce.Do(func() {
		m.groups = map[types.Object]*constGroup{}
		for _, p := range m.Pkgs {
			for _, f := range p.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.CONST {
						continue
					}
					g := &constGroup{pkgPath: p.ImportPath, objs: map[types.Object]bool{}}
					usesIota := false
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							ast.Inspect(v, func(n ast.Node) bool {
								if id, ok := n.(*ast.Ident); ok && id.Name == "iota" {
									usesIota = true
								}
								return true
							})
						}
						for _, name := range vs.Names {
							if name.Name == "_" {
								continue
							}
							if obj := p.Info.Defs[name]; obj != nil {
								g.names = append(g.names, name.Name)
								g.objs[obj] = true
							}
						}
					}
					if !usesIota || len(g.names) < 2 {
						continue
					}
					for obj := range g.objs {
						m.groups[obj] = g
					}
				}
			}
		}
	})
	return m.groups
}

// wireExhaustiveAnalyzer enforces that every switch whose cases name
// constants from an iota enum block (the wire frame-kind ids, transport
// reply kinds, chaos fault kinds) either covers every constant in the
// block or carries a non-empty default — so adding a frame kind without
// handling it everywhere fails analysis instead of silently dropping
// frames at run time.
func wireExhaustiveAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "wire-exhaustive",
		Doc:  "switches over iota kind enums must cover every constant or default loudly",
		Run: func(p *Package, m *Module) []posFinding {
			groups := m.constGroups()
			var out []posFinding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok || sw.Tag == nil {
						return true
					}
					var g *constGroup
					covered := map[types.Object]bool{}
					mixed := false
					var defaultClause *ast.CaseClause
					for _, stmt := range sw.Body.List {
						cc := stmt.(*ast.CaseClause)
						if cc.List == nil {
							defaultClause = cc
							continue
						}
						for _, expr := range cc.List {
							obj := constObjOf(p.Info, expr)
							if obj == nil {
								continue
							}
							cg := groups[obj]
							if cg == nil {
								continue
							}
							if g == nil {
								g = cg
							} else if g != cg {
								mixed = true
							}
							covered[obj] = true
						}
					}
					if g == nil || mixed {
						return true
					}
					if defaultClause != nil {
						if len(defaultClause.Body) == 0 {
							out = append(out, posFinding{
								Pos:     defaultClause.Pos(),
								Message: "empty default in a switch over the " + groupLabel(g) + " enum silently drops unhandled kinds; return an error or panic",
							})
						}
						return true
					}
					var missing []string
					for _, name := range g.names {
						found := false
						for obj := range covered {
							if obj.Name() == name {
								found = true
								break
							}
						}
						if !found {
							missing = append(missing, name)
						}
					}
					if len(missing) > 0 {
						out = append(out, posFinding{
							Pos: sw.Pos(),
							Message: "switch over the " + groupLabel(g) + " enum misses " +
								strings.Join(missing, ", ") + " and has no default; new kinds would be silently dropped",
						})
					}
					return true
				})
			}
			return out
		},
	}
}

// groupLabel names a const group for messages: its first member and
// package.
func groupLabel(g *constGroup) string {
	short := g.pkgPath
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	return short + "." + g.names[0]
}
