package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// seriesCtors are the trace.Recorder entry points that create or resolve a
// metric series from a family name.
var seriesCtors = map[string]bool{
	"Hist": true, "CounterSeries": true, "Gauge": true,
	"seriesLocked": true, "getSeries": true,
}

// metricRegAnalyzer enforces the /metrics zero-state contract: every cp_*
// series family the engines record must appear in the trace package's
// registration set (the metricHelp map), so a fresh server exposes every
// family — documented, typed, and at zero — before the first request ever
// lands, and CI -want checks can't race a quiet series.
func metricRegAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "metric-reg",
		Doc:  "every cp_* series used must be in the trace registration set (metricHelp)",
		Run: func(p *Package, m *Module) []posFinding {
			reg := m.metricRegistry()
			var out []posFinding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) == 0 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || !seriesCtors[sel.Sel.Name] {
						return true
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok {
						return true
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil || !strings.HasPrefix(name, "cp_") {
						return true
					}
					if reg == nil {
						out = append(out, posFinding{
							Pos:     lit.Pos(),
							Message: "series " + name + " used but no metricHelp registration set was found in the module",
						})
						return true
					}
					if !reg[name] {
						out = append(out, posFinding{
							Pos:     lit.Pos(),
							Message: "series " + name + " is not in the trace registration set (metricHelp); /metrics would expose it without HELP and zero-state checks would miss it",
						})
					}
					return true
				})
			}
			return out
		},
	}
}

// metricRegistry extracts the set of registered family names: the string
// keys of a package-level `metricHelp` map literal, wherever one is
// declared in the module (internal/trace in the real repo; fixtures
// declare their own).
func (m *Module) metricRegistry() map[string]bool {
	m.regOnce.Do(func() { m.reg = scanMetricRegistry(m) })
	return m.reg
}

func scanMetricRegistry(m *Module) map[string]bool {
	var reg map[string]bool
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name != "metricHelp" || i >= len(vs.Values) {
							continue
						}
						cl, ok := vs.Values[i].(*ast.CompositeLit)
						if !ok {
							continue
						}
						if reg == nil {
							reg = map[string]bool{}
						}
						for _, elt := range cl.Elts {
							kv, ok := elt.(*ast.KeyValueExpr)
							if !ok {
								continue
							}
							lit, ok := kv.Key.(*ast.BasicLit)
							if !ok {
								continue
							}
							if key, err := strconv.Unquote(lit.Value); err == nil {
								reg[key] = true
							}
						}
					}
				}
			}
		}
	}
	return reg
}
