package lint

import (
	"testing"
)

// TestRepoIsClean is the enforcement test behind `cplint ./...` exiting 0:
// the whole module under the default policy must produce zero findings.
// Every deliberate exception in the tree carries a //cplint:allow with a
// reason, so a new wall-clock read, unsorted map fold, missed switch arm,
// locked send, or unregistered cp_* series fails this test.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; skipped in -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	findings := m.Run(DefaultPolicy())
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) == 0 && len(m.Pkgs) < 10 {
		t.Errorf("suspiciously few packages loaded: %d", len(m.Pkgs))
	}
}

// TestDefaultPolicyRules asserts the default policy only names real rules
// and that every rule has at least one covered path.
func TestDefaultPolicyRules(t *testing.T) {
	valid := map[string]bool{}
	for _, r := range RuleNames() {
		valid[r] = true
	}
	pol := DefaultPolicy()
	for rule, paths := range pol {
		if !valid[rule] {
			t.Errorf("default policy names unknown rule %q", rule)
		}
		if len(paths) == 0 {
			t.Errorf("default policy rule %q covers no paths", rule)
		}
	}
	for _, r := range RuleNames() {
		if _, ok := pol[r]; !ok {
			t.Errorf("rule %q missing from the default policy", r)
		}
	}
}

// TestPolicyApplies pins the path-matching semantics: exact dir, prefix
// with a slash boundary, and the "" wildcard.
func TestPolicyApplies(t *testing.T) {
	pol := Policy{
		"a": {"internal/comm"},
		"b": {""},
	}
	cases := []struct {
		rule, rel string
		want      bool
	}{
		{"a", "internal/comm", true},
		{"a", "internal/comm/wire", true},
		{"a", "internal/commx", false},
		{"a", "internal", false},
		{"b", "anything/at/all", true},
		{"b", "", true},
		{"c", "internal/comm", false},
	}
	for _, c := range cases {
		if got := pol.Applies(c.rule, c.rel); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.rule, c.rel, got, c.want)
		}
	}
}
