package lint

import (
	"go/ast"
	"go/types"
)

// lockSendAnalyzer flags blocking communication — a channel send or a
// net.Conn write — performed while a sync.Mutex/RWMutex is held in the
// same function. A send under a lock is the classic distributed-engine
// deadlock: the peer needed to drain the channel or socket may be blocked
// on the same lock. The per-function scan is linear and heuristic (lock
// state is tracked in source order, not across calls), which is exactly
// the granularity at which the transport's deliberate write-serialization
// mutexes get an in-place //cplint:allow.
func lockSendAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lock-send",
		Doc:  "no mutex held across a channel send or net.Conn write",
		Run: func(p *Package, m *Module) []posFinding {
			var out []posFinding
			for _, f := range p.Files {
				for _, body := range enclosingFuncBodies(f) {
					out = append(out, lockSendInFunc(p, body)...)
				}
			}
			return out
		},
	}
}

// nonBlockingSends collects send statements that cannot block: a send
// clause of a select statement that also has a default clause. Those are
// safe under a lock — the goroutine never waits on a peer.
func nonBlockingSends(fn *ast.BlockStmt) map[*ast.SendStmt]bool {
	out := map[*ast.SendStmt]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cl := range sel.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cl := range sel.Body.List {
			if send, ok := cl.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
				out[send] = true
			}
		}
		return true
	})
	return out
}

// mutexMethod classifies a call as Lock/RLock (+1), Unlock/RUnlock (-1) on
// a sync mutex receiver, returning the receiver's object for matching.
func mutexMethod(p *Package, call *ast.CallExpr) (recv types.Object, delta int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return nil, 0, false
	}
	t := p.Info.TypeOf(sel.X)
	if t == nil || !isSyncLocker(t) {
		return nil, 0, false
	}
	return rootIdentObj(p.Info, sel.X), delta, true
}

// isSyncLocker reports whether t is sync.Mutex/sync.RWMutex (possibly via
// pointer).
func isSyncLocker(t types.Type) bool {
	if pt, ok := t.Underlying().(*types.Pointer); ok {
		t = pt.Elem()
	}
	nt, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := nt.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isNetConn reports whether t is the net.Conn interface or a type from
// package net implementing it.
func isNetConn(t types.Type) bool {
	if t == nil {
		return false
	}
	nt, ok := t.(*types.Named)
	if !ok {
		if pt, isPtr := t.(*types.Pointer); isPtr {
			nt, ok = pt.Elem().(*types.Named)
		}
		if !ok {
			return false
		}
	}
	obj := nt.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net" &&
		(obj.Name() == "Conn" || obj.Name() == "TCPConn" || obj.Name() == "UnixConn")
}

func lockSendInFunc(p *Package, fn *ast.BlockStmt) []posFinding {
	var out []posFinding
	held := 0 // active lock count in source order
	nonBlocking := nonBlockingSends(fn)
	ast.Inspect(fn, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			if nn.Body != fn {
				return false // separate scope, analyzed on its own
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remainder of
			// the function — do not decrement.
			if _, delta, ok := mutexMethod(p, nn.Call); ok && delta < 0 {
				return false
			}
		case *ast.SendStmt:
			if held > 0 && !nonBlocking[nn] {
				out = append(out, posFinding{
					Pos:     nn.Pos(),
					Message: "channel send while a mutex is held; the receiver may need the same lock to drain it",
				})
			}
		case *ast.CallExpr:
			if _, delta, ok := mutexMethod(p, nn); ok {
				held += delta
				if held < 0 {
					held = 0
				}
				return true
			}
			if held == 0 {
				return true
			}
			// Direct conn method write: c.Write(...) on a net.Conn.
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Write" && isNetConn(p.Info.TypeOf(sel.X)) {
				out = append(out, posFinding{
					Pos:     nn.Pos(),
					Message: "net.Conn write while a mutex is held; a stalled peer blocks everyone waiting on the lock",
				})
				return true
			}
			// Indirect write: a call receiving a net.Conn argument (e.g.
			// wire.WriteFrame(conn, v)).
			for _, a := range nn.Args {
				if isNetConn(p.Info.TypeOf(a)) {
					out = append(out, posFinding{
						Pos:     nn.Pos(),
						Message: "call passing a net.Conn while a mutex is held; a stalled peer blocks everyone waiting on the lock",
					})
					break
				}
			}
		}
		return true
	})
	return out
}
