package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed, type-checked package of the module under
// analysis.
type Package struct {
	ImportPath string
	Dir        string // absolute
	Rel        string // module-relative dir ("" for the module root package)
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects soft type-check errors. Analyzers still run on a
	// package with type errors (syntactic rules don't need types), but
	// rules degrade gracefully when Info lacks an answer.
	TypeErrors []error
}

// Module is the full analysis unit: every buildable package under one
// module root, sharing a FileSet so positions are comparable.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Pkgs []*Package
	Fset *token.FileSet

	groupsOnce sync.Once
	groups     map[types.Object]*constGroup
	regOnce    sync.Once
	reg        map[string]bool
}

// Position resolves a node to a module-relative file path and line.
func (m *Module) Position(pos token.Pos) (file string, line int) {
	p := m.Fset.Position(pos)
	file = p.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file, p.Line
}

// PackageAt returns the loaded package at the module-relative dir, or nil.
func (m *Module) PackageAt(rel string) *Package {
	for _, p := range m.Pkgs {
		if p.Rel == rel {
			return p
		}
	}
	return nil
}

// The source importer type-checks stdlib dependencies from $GOROOT/src; it
// is shared process-wide so repeated loads (fixture tests) pay for each
// stdlib package once. Type-checking runs with cgo disabled so packages
// like net resolve to their pure-Go variants instead of invoking the cgo
// tool.
var (
	sharedFset    = token.NewFileSet()
	stdOnce       sync.Once
	stdImporter   types.Importer
	sharedBuildMu sync.Mutex
)

func stdlibImporter() types.Importer {
	stdOnce.Do(func() {
		build.Default.CgoEnabled = false
		stdImporter = importer.ForCompiler(sharedFset, "source", nil)
	})
	return stdImporter
}

type checker struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.Importer
	memo    map[string]*Package
	loading map[string]bool
}

func newChecker(root, modpath string) *checker {
	return &checker{
		root:    root,
		modpath: modpath,
		fset:    sharedFset,
		std:     stdlibImporter(),
		memo:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer: module-internal paths recurse into the
// checker, everything else goes to the stdlib source importer.
func (c *checker) Import(path string) (*types.Package, error) {
	if path == c.modpath || strings.HasPrefix(path, c.modpath+"/") {
		p, err := c.check(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return c.std.Import(path)
}

func (c *checker) check(importPath string) (*Package, error) {
	if p, ok := c.memo[importPath]; ok {
		return p, nil
	}
	if c.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	c.loading[importPath] = true
	defer delete(c.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, c.modpath), "/")
	dir := filepath.Join(c.root, filepath.FromSlash(rel))
	sharedBuildMu.Lock()
	bp, err := build.Default.ImportDir(dir, 0)
	sharedBuildMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Rel:        filepath.ToSlash(rel),
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer:    c,
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	tp, err := conf.Check(importPath, c.fset, files, p.Info)
	p.Types = tp
	if err != nil && tp == nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	c.memo[importPath] = p
	return p, nil
}

// moduleDirs walks root for buildable package directories, skipping
// testdata, hidden, and underscore-prefixed trees.
func moduleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// modPath extracts the module path from root/go.mod.
func modPath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every buildable package under the
// module rooted at root (the directory holding go.mod). Test files are
// excluded — the analyzers enforce production-path invariants, and tests
// legitimately use wall clocks and global randomness.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mp, err := modPath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := moduleDirs(root)
	if err != nil {
		return nil, err
	}
	c := newChecker(root, mp)
	m := &Module{Root: root, Path: mp, Fset: c.fset}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		ip := mp
		if rel != "." {
			ip = mp + "/" + filepath.ToSlash(rel)
		}
		p, err := c.check(ip)
		if err != nil {
			// A directory that fails build-level import (e.g. no buildable
			// files for this GOOS) is skipped, not fatal.
			if strings.Contains(err.Error(), "no buildable Go source files") {
				continue
			}
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Rel < m.Pkgs[j].Rel })
	return m, nil
}

// LoadPackage loads the single package at the module-relative dir rel
// (module deps are type-checked as needed but only the target is listed in
// the returned Module). Used by tests that lint one package in isolation.
func LoadPackage(root, rel string) (*Module, *Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, nil, err
	}
	mp, err := modPath(root)
	if err != nil {
		return nil, nil, err
	}
	c := newChecker(root, mp)
	ip := mp
	if rel != "" && rel != "." {
		ip = mp + "/" + filepath.ToSlash(rel)
	}
	p, err := c.check(ip)
	if err != nil {
		return nil, nil, err
	}
	m := &Module{Root: root, Path: mp, Fset: c.fset, Pkgs: []*Package{p}}
	return m, p, nil
}

// LoadDir loads a standalone directory of Go files as a single-package
// module with import path "fixture/<base>" — the fixture-test loader.
// Fixtures may import only the standard library.
func LoadDir(dir string) (*Module, *Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	mp := "fixture/" + filepath.Base(dir)
	c := newChecker(dir, mp)
	p, err := c.check(mp)
	if err != nil {
		return nil, nil, err
	}
	m := &Module{Root: dir, Path: mp, Fset: c.fset, Pkgs: []*Package{p}}
	return m, p, nil
}
