package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderSensitiveWrites are method names whose call inside a map-range body
// serializes data in iteration order: byte/string sinks (strings.Builder,
// bytes.Buffer, bufio.Writer, net conns), hashes, and streaming encoders.
// No after-the-loop sort can repair these, so they are flagged
// unconditionally.
var orderSensitiveWrites = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "EncodeToken": true, "Sum": true,
}

// fprintFuncs are fmt's writer-directed print functions — same class of
// sink when called in a map-range body.
var fprintFuncs = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// mapOrderAnalyzer flags range statements over maps whose bodies are
// order-sensitive: appending to a slice that is never sorted afterwards,
// writing to an encoder or hash, or accumulating floats — the
// bit-identity killer, because Go randomizes map iteration order per run.
//
// The canonical collect-keys-then-sort idiom stays legal: an append inside
// the loop is fine when the same slice is passed to a sort.*/slices.* call
// (or a .Sort method) later in the enclosing function. Per-key updates
// (dst[k] += v, out[k] = v) are order-insensitive and never flagged.
func mapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "map-order",
		Doc:  "flag order-sensitive work inside range-over-map bodies",
		Run: func(p *Package, m *Module) []posFinding {
			var out []posFinding
			for _, f := range p.Files {
				for _, body := range enclosingFuncBodies(f) {
					out = append(out, mapOrderInFunc(p, body)...)
				}
			}
			return out
		},
	}
}

func mapOrderInFunc(p *Package, fn *ast.BlockStmt) []posFinding {
	var out []posFinding
	ast.Inspect(fn, func(n ast.Node) bool {
		// Nested function literals are their own scopes (they appear in
		// enclosingFuncBodies independently) — don't double-visit.
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != fn {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		out = append(out, checkMapRange(p, fn, rs)...)
		return true
	})
	return out
}

func checkMapRange(p *Package, fn *ast.BlockStmt, rs *ast.RangeStmt) []posFinding {
	var out []posFinding
	keyObj := rangeVarObj(p.Info, rs.Key)
	valObj := rangeVarObj(p.Info, rs.Value)
	inBody := func(pos token.Pos) bool { return pos >= rs.Body.Pos() && pos <= rs.Body.End() }

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return false // a deferred/launched closure runs outside iteration order
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			if id, ok := nn.Fun.(*ast.Ident); ok && id.Name == "append" && len(nn.Args) > 0 {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					target := rootIdentObj(p.Info, nn.Args[0])
					// A slice created inside the body is per-iteration
					// scratch; only accumulation across iterations leaks
					// map order.
					if target != nil && !inBody(target.Pos()) && !sortedAfter(p, fn, rs, target) {
						out = append(out, posFinding{
							Pos:     nn.Pos(),
							Message: "append to " + target.Name() + " inside range over map without a sort afterwards; map iteration order leaks into the slice",
						})
					}
				}
				return true
			}
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if pkg := importedPkgPath(p.Info, sel.X); pkg == "fmt" && fprintFuncs[name] {
					out = append(out, posFinding{
						Pos:     nn.Pos(),
						Message: "fmt." + name + " inside range over map writes in iteration order; collect and sort first",
					})
					return true
				}
				if orderSensitiveWrites[name] && p.Info.Selections[sel] != nil {
					out = append(out, posFinding{
						Pos:     nn.Pos(),
						Message: "." + name + " call inside range over map feeds an encoder/hash in iteration order; collect and sort first",
					})
				}
			}
		case *ast.AssignStmt:
			switch nn.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			lhs := nn.Lhs[0]
			if !isFloat(p.Info.TypeOf(lhs)) {
				return true
			}
			// dst[k] op= v with the range key as index hits a distinct slot
			// per iteration — order-insensitive.
			if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
				if idxObj := rootIdentObj(p.Info, ix.Index); idxObj == keyObj {
					return true
				}
			}
			target := rootIdentObj(p.Info, lhs)
			if target != nil && inBody(target.Pos()) {
				return true // per-iteration local
			}
			if target == valObj || target == keyObj {
				return true
			}
			out = append(out, posFinding{
				Pos:     nn.Pos(),
				Message: "float accumulation inside range over map is order-sensitive; iterate sorted keys instead",
			})
		}
		return true
	})
	return out
}

// rangeVarObj resolves a range clause variable (key or value) to its
// object, or nil.
func rangeVarObj(info *types.Info, expr ast.Expr) types.Object {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// sortedAfter reports whether target is passed to a sort call after the
// range statement, anywhere later in the enclosing function body: a
// sort.*/slices.* package call or a method named Sort with target among
// the arguments (or as the method receiver).
func sortedAfter(p *Package, fn *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := importedPkgPath(p.Info, sel.X)
		isSortCall := pkg == "sort" || pkg == "slices" || sel.Sel.Name == "Sort"
		if !isSortCall {
			return true
		}
		args := call.Args
		if pkg == "" {
			args = append(args[:len(args):len(args)], sel.X) // method form: receiver counts
		}
		for _, a := range args {
			if rootIdentObj(p.Info, a) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
