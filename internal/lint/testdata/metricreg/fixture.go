// Package fixture exercises the metric-reg analyzer against its own
// registration set: a cp_* family missing from metricHelp is a finding;
// registered families and non-cp_ names are not.
package fixture

// metricHelp is the fixture's registration set.
var metricHelp = map[string]string{
	"cp_fixture_good_total": "Registered fixture counter.",
}

type recorder struct{}

func (recorder) CounterSeries(name string, labels ...string) int { return len(name) + len(labels) }
func (recorder) Hist(name string) int                            { return len(name) }

// OK: registered family.
func good(r recorder) int {
	return r.CounterSeries("cp_fixture_good_total")
}

// Bad: this family is never registered.
func bad(r recorder) int {
	return r.Hist("cp_fixture_missing_seconds")
}

// OK: not a cp_ series.
func other(r recorder) int {
	return r.Hist("fixture_other")
}
