// Package fixture exercises the map-order analyzer: order-sensitive work
// inside range-over-map bodies is a finding; the collect-then-sort idiom
// and per-key slot updates are not.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

// Bad: map iteration order leaks into the slice.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// OK: the canonical collect-keys-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Bad: float accumulation across iterations is order-sensitive.
func sum(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// OK: per-key slot updates hit a distinct slot per iteration.
func fold(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// Bad: the builder serializes samples in iteration order.
func render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

// Bad: direct writer method call in the loop body.
func write(b *strings.Builder, m map[string]int) {
	for k := range m {
		b.WriteString(k)
	}
}
