// Package fixture is the regression case the wire-exhaustive rule exists
// for: the full real frame-kind set plus one NEW kind (tFutureKind) whose
// switch arm was forgotten. The analyzer must report the missing name.
package fixture

import "errors"

const (
	tNil byte = iota
	tIntVec
	tFloatVec
	tKVBlock
	tQBlock
	tOBlock
	tHello
	tHeartbeat
	tPrefillCmd
	tDecodeCmd
	tDropCmd
	tDetachCmd
	tAdoptCmd
	tReleasePrefixCmd
	tCapQueryCmd
	tStatsCmd
	tShutdownCmd
	tPrefillResult
	tDecodeResult
	tAck
	tDetachResult
	tCapResult
	tStatsResult
	tFailureNote
	tTraceCmd
	tTraceResult
	tFutureKind // the newly added kind nobody wired up
)

var errBadKind = errors.New("bad kind")

// dispatch was not updated for tFutureKind and has no default.
func dispatch(k byte) error {
	switch k {
	case tNil, tIntVec, tFloatVec:
		return nil
	case tKVBlock, tQBlock, tOBlock:
		return nil
	case tHello, tHeartbeat:
		return nil
	case tPrefillCmd, tDecodeCmd, tDropCmd, tDetachCmd, tAdoptCmd,
		tReleasePrefixCmd, tCapQueryCmd, tStatsCmd, tShutdownCmd, tTraceCmd:
		return nil
	case tPrefillResult, tDecodeResult, tAck, tDetachResult, tCapResult,
		tStatsResult, tFailureNote, tTraceResult:
		return nil
	}
	return errBadKind
}
