// Package fixture exercises the lock-send analyzer: a blocking channel
// send or net.Conn write with a mutex held is a finding; releasing first,
// non-blocking selects, and annotated write-serialization mutexes are not.
package fixture

import (
	"net"
	"sync"
)

type q struct {
	mu sync.Mutex
	ch chan int
	ev chan int
}

// Bad: blocking send with the lock held.
func (s *q) bad(v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// OK: the lock is released before the send.
func (s *q) ok(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// OK: a non-blocking send cannot stall the lock holder.
func (s *q) publish(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ev <- v:
	default:
	}
}

type link struct {
	mu   sync.Mutex
	conn net.Conn
}

// Bad: direct conn write under the lock.
func (l *link) write(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.conn.Write(b)
	return err
}

// Bad: the conn escapes into a helper while locked.
func (l *link) frame(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return writeFrame(l.conn, b)
}

// OK: an annotated, deliberate write-serialization mutex.
func (l *link) serialized(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.conn.Write(b) //cplint:allow lock-send fixture demonstrates a deliberate write-serialization mutex
	return err
}

func writeFrame(c net.Conn, b []byte) error {
	_, err := c.Write(b)
	return err
}
