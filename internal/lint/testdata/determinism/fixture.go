// Package fixture exercises the determinism analyzer: wall-clock reads,
// timers, and global math/rand draws are findings; explicitly seeded
// generators, pure duration arithmetic, and annotated reads are not.
package fixture

import (
	"math/rand"
	"time"
)

// Bad: wall-clock reads and a timer wait.
func clocks() (time.Time, time.Duration) {
	now := time.Now()
	d := time.Since(now)
	time.Sleep(time.Millisecond)
	return now, d
}

// Bad: draws from the global source.
func globalRand() int {
	f := rand.Float64()
	_ = f
	return rand.Intn(10)
}

// OK: an explicitly seeded generator.
func seeded() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(10)
}

// OK: pure duration arithmetic never consults the clock.
func pure() time.Duration {
	d, _ := time.ParseDuration("5ms")
	return d * 2
}

// OK: a justified, annotated read is suppressed.
func annotated() time.Time {
	return time.Now() //cplint:allow determinism fixture demonstrates suppression
}
