// Package fixture exercises the wire-exhaustive analyzer on a tiny iota
// kind enum: a switch missing a constant with no default is a finding, an
// empty default is a finding, full coverage or a loud default is not.
package fixture

import "errors"

const (
	kindA byte = iota
	kindB
	kindC
)

var errUnknown = errors.New("unknown kind")

// Bad: kindC is missing and there is no default.
func missing(k byte) error {
	switch k {
	case kindA:
		return nil
	case kindB:
		return nil
	}
	return errUnknown
}

// Bad: the empty default silently drops unhandled kinds.
func silent(k byte) {
	switch k {
	case kindA:
	case kindB:
	default:
	}
}

// OK: every kind covered.
func full(k byte) error {
	switch k {
	case kindA, kindB:
		return nil
	case kindC:
		return nil
	}
	return nil
}

// OK: the default errors loudly.
func loud(k byte) error {
	switch k {
	case kindA:
		return nil
	default:
		return errUnknown
	}
}
