// Package fixture exercises the //cplint:allow grammar: an unknown rule
// name or a missing reason is itself a finding, and a malformed allow
// suppresses nothing — the underlying finding still fires.
package fixture

import "time"

// Bad twice: the rule name is a typo, so the determinism finding survives.
func unknown() time.Time {
	return time.Now() //cplint:allow determinsm typo in the rule name
}

// Bad twice: no reason given, so the determinism finding survives.
func bare() time.Time {
	return time.Now() //cplint:allow determinism
}

// OK: rule plus mandatory reason.
func justified() time.Time {
	return time.Now() //cplint:allow determinism fixture demonstrates a justified read
}
