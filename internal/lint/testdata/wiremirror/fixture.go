// Package fixture mirrors the real internal/comm/wire frame-kind enum —
// the constant names below are asserted (by TestWireMirrorMatchesRealKinds)
// to match wire.go exactly, so adding a kind to the codec forces this
// fixture to grow too. The dispatch switch covers every kind, so the
// wire-exhaustive analyzer reports nothing here.
package fixture

import "errors"

const (
	tNil byte = iota
	tIntVec
	tFloatVec
	tKVBlock
	tQBlock
	tOBlock
	tHello
	tHeartbeat
	tPrefillCmd
	tDecodeCmd
	tDropCmd
	tDetachCmd
	tAdoptCmd
	tReleasePrefixCmd
	tCapQueryCmd
	tStatsCmd
	tShutdownCmd
	tPrefillResult
	tDecodeResult
	tAck
	tDetachResult
	tCapResult
	tStatsResult
	tFailureNote
	tTraceCmd
	tTraceResult
)

var errBadKind = errors.New("bad kind")

// dispatch covers every frame kind the codec defines.
func dispatch(k byte) error {
	switch k {
	case tNil, tIntVec, tFloatVec:
		return nil
	case tKVBlock, tQBlock, tOBlock:
		return nil
	case tHello, tHeartbeat:
		return nil
	case tPrefillCmd, tDecodeCmd, tDropCmd, tDetachCmd, tAdoptCmd,
		tReleasePrefixCmd, tCapQueryCmd, tStatsCmd, tShutdownCmd, tTraceCmd:
		return nil
	case tPrefillResult, tDecodeResult, tAck, tDetachResult, tCapResult,
		tStatsResult, tFailureNote, tTraceResult:
		return nil
	}
	return errBadKind
}
