package lint

import (
	"go/ast"
)

// clockCalls are the time-package functions that read or wait on the wall
// clock or a runtime timer. time.Duration arithmetic and time.ParseDuration
// are pure and stay legal.
var clockCalls = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

// globalRandOK are the math/rand(/v2) functions that are constructors for
// explicitly-seeded generators rather than draws from the global source.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

// determinismAnalyzer forbids wall-clock reads and global math/rand draws
// in packages whose outputs must be pure functions of their inputs — the
// paper's bit-identity claim and the trace/chaos replay contracts both die
// the moment a deterministic path consults the clock or an unseeded RNG.
func determinismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid time.Now/time.Since/timers and global math/rand in deterministic packages",
		Run: func(p *Package, m *Module) []posFinding {
			var out []posFinding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch importedPkgPath(p.Info, sel.X) {
					case "time":
						if clockCalls[sel.Sel.Name] {
							out = append(out, posFinding{
								Pos:     call.Pos(),
								Message: "wall-clock/timer call time." + sel.Sel.Name + " in a deterministic package",
							})
						}
					case "math/rand", "math/rand/v2":
						if !globalRandOK[sel.Sel.Name] {
							out = append(out, posFinding{
								Pos:     call.Pos(),
								Message: "global math/rand call rand." + sel.Sel.Name + "; draw from an explicitly seeded *rand.Rand instead",
							})
						}
					}
					return true
				})
			}
			return out
		},
	}
}
