// Package lint is the repo's invariant analyzer suite: repo-specific
// static-analysis rules that enforce at analysis time the properties every
// soak and bit-identity test defends at run time — no wall clocks or global
// randomness in deterministic paths, no map-iteration order leaking into
// encoders or float accumulation, exhaustive wire frame-kind switches, no
// mutex held across a channel send or conn write, and every cp_* metric
// series pre-registered.
//
// The suite is stdlib-only (go/parser, go/ast, go/types via the source
// importer) and driven by cmd/cplint. A finding can be suppressed in place
// with an annotation on the offending line or the line above:
//
//	//cplint:allow <rule>[,<rule>...] <reason>
//
// The reason is mandatory — an allow without one is itself a finding.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/report"
)

// Finding is the shared diagnostic shape (see internal/report).
type Finding = report.Finding

// An Analyzer is one rule: it inspects a package and reports findings.
// Returned positions are token.Pos values resolved by the driver.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package, m *Module) []posFinding
}

// posFinding is an analyzer-internal finding carrying a position instead of
// a resolved file:line (the driver resolves and filters it).
type posFinding struct {
	Pos     token.Pos
	Message string
}

// Analyzers returns the full rule suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer(),
		mapOrderAnalyzer(),
		wireExhaustiveAnalyzer(),
		lockSendAnalyzer(),
		metricRegAnalyzer(),
	}
}

// RuleNames returns the valid rule ids (used to validate allow
// annotations).
func RuleNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// allowSet maps file -> line -> rules allowed on that line.
type allowSet map[string]map[int]map[string]bool

const allowPrefix = "//cplint:allow"

// collectAllows scans a package's comments for //cplint:allow annotations.
// Malformed annotations (no rule, unknown rule, missing reason) are
// reported as findings under the "allow" pseudo-rule.
func collectAllows(p *Package, m *Module, valid map[string]bool) (allowSet, []Finding) {
	allows := allowSet{}
	var bad []Finding
	addBad := func(pos token.Pos, msg string) {
		file, line := m.Position(pos)
		bad = append(bad, Finding{File: file, Line: line, Rule: "allow", Message: msg})
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //cplint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					addBad(c.Pos(), "allow annotation names no rule: want //cplint:allow <rule>[,<rule>] <reason>")
					continue
				}
				rules := strings.Split(fields[0], ",")
				ok := true
				for _, r := range rules {
					if !valid[r] {
						addBad(c.Pos(), "allow annotation names unknown rule \""+r+"\"")
						ok = false
					}
				}
				if len(fields) < 2 {
					addBad(c.Pos(), "allow annotation for "+fields[0]+" has no reason: a justification is mandatory")
					ok = false
				}
				if !ok {
					continue
				}
				file, line := m.Position(c.Pos())
				if allows[file] == nil {
					allows[file] = map[int]map[string]bool{}
				}
				if allows[file][line] == nil {
					allows[file][line] = map[string]bool{}
				}
				for _, r := range rules {
					allows[file][line][r] = true
				}
			}
		}
	}
	return allows, bad
}

// allowed reports whether a finding for rule at (file, line) is suppressed
// by an annotation on the same line or the line above.
func (a allowSet) allowed(rule, file string, line int) bool {
	byLine := a[file]
	if byLine == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		if rules := byLine[l]; rules != nil && rules[rule] {
			return true
		}
	}
	return false
}

// Run executes every analyzer against the packages its policy selects and
// returns the surviving findings sorted by position. Malformed allow
// annotations are reported for every package any rule covers.
func (m *Module) Run(pol Policy) []Finding {
	valid := map[string]bool{}
	for _, name := range RuleNames() {
		valid[name] = true
	}
	var out []Finding
	allowsByPkg := map[*Package]allowSet{}
	badReported := map[*Package]bool{}
	for _, a := range Analyzers() {
		for _, p := range m.Pkgs {
			if !pol.Applies(a.Name, p.Rel) {
				continue
			}
			allows, ok := allowsByPkg[p]
			if !ok {
				var bad []Finding
				allows, bad = collectAllows(p, m, valid)
				allowsByPkg[p] = allows
				if !badReported[p] {
					out = append(out, bad...)
					badReported[p] = true
				}
			}
			for _, pf := range a.Run(p, m) {
				file, line := m.Position(pf.Pos)
				if allows.allowed(a.Name, file, line) {
					continue
				}
				out = append(out, Finding{File: file, Line: line, Rule: a.Name, Message: pf.Message})
			}
		}
	}
	rep := report.Report{Findings: out}
	rep.Sort()
	return rep.Findings
}

// --- shared AST/type helpers ------------------------------------------------

// importedPkgPath resolves expr to an imported package path when expr is a
// plain package-qualifier identifier ("time" in time.Now).
func importedPkgPath(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// constObjOf resolves a case expression to the constant object it names,
// or nil for literals and non-constants.
func constObjOf(info *types.Info, expr ast.Expr) types.Object {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	if obj, ok := info.Uses[id].(*types.Const); ok {
		return obj
	}
	return nil
}

// rootIdentObj resolves the base identifier object of expr (x in x, x.f,
// x[i], *x, &x), or nil.
func rootIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isFloat reports whether t's underlying type is a floating-point basic.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// enclosingFuncBodies returns, for every function (decl or literal) in the
// file, its body block — each analyzed as its own lock/escape scope.
func enclosingFuncBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		}
		return true
	})
	return out
}
