package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata want.txt goldens")

// allRulesPolicy applies every rule to every package — the fixture policy.
func allRulesPolicy() Policy {
	pol := Policy{}
	for _, r := range RuleNames() {
		pol[r] = []string{""}
	}
	return pol
}

// TestFixtures runs the full suite over every testdata fixture package and
// compares the findings against the fixture's want.txt golden. Fixtures
// with a non-empty golden are the "must fail" cases: the golden pins the
// exact file:line, rule, and message of each expected finding.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			m, _, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, f := range m.Run(allRulesPolicy()) {
				sb.WriteString(f.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			wantPath := filepath.Join(dir, "want.txt")
			if *update {
				if err := os.WriteFile(wantPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(wantPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch for %s\n--- got ---\n%s--- want ---\n%s", dir, got, want)
			}
		})
	}
}

// TestEachRuleHasFailingFixture asserts every analyzer (and the allow
// pseudo-rule) is exercised by at least one fixture finding — so a rule
// that silently stops firing breaks the suite's own tests.
func TestEachRuleHasFailingFixture(t *testing.T) {
	goldens, err := filepath.Glob(filepath.Join("testdata", "*", "want.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var all strings.Builder
	for _, g := range goldens {
		b, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	for _, rule := range append(RuleNames(), "allow") {
		if !strings.Contains(all.String(), "["+rule+"]") {
			t.Errorf("no fixture golden contains a [%s] finding", rule)
		}
	}
}

// TestWireMirrorMatchesRealKinds pins the wiremirror fixture to the real
// codec: the constant names in testdata/wiremirror must equal the frame-kind
// enum in internal/comm/wire, in order. Adding a kind to wire.go therefore
// forces the mirror (and its exhaustive switch) to grow with it.
func TestWireMirrorMatchesRealKinds(t *testing.T) {
	real := iotaConstNames(t, filepath.Join("..", "comm", "wire", "wire.go"), "tNil")
	mirror := iotaConstNames(t, filepath.Join("testdata", "wiremirror", "fixture.go"), "tNil")
	if len(real) == 0 {
		t.Fatal("no tNil iota const block found in wire.go")
	}
	if strings.Join(real, ",") != strings.Join(mirror, ",") {
		t.Errorf("wiremirror fixture out of sync with wire.go frame kinds\nwire.go: %v\nmirror:  %v", real, mirror)
	}
}

// iotaConstNames returns the names of the const block whose first constant
// is firstName, in declaration order.
func iotaConstNames(t *testing.T, path, firstName string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		var names []string
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if n.Name != "_" {
					names = append(names, n.Name)
				}
			}
		}
		if len(names) > 0 && names[0] == firstName {
			return names
		}
	}
	return nil
}
