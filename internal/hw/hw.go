// Package hw describes the hardware platforms of the paper's evaluation and
// the calibration constants of the analytical performance model.
//
// The paper benchmarks two Grand Teton H100 platforms (§4.1):
//
//   - GTT (Grand Teton Training): hosts of 8 NVLink-connected H100s with a
//     backend RDMA network at 400 Gb/s per GPU.
//   - GTI (Grand Teton Inference): the same hosts on a frontend TCP/IP
//     network at 100 Gb/s per GPU, with an achieved bandwidth of roughly
//     3 GB/s per rank observed in the paper's traces.
//
// The H100s are power-limited (500 W) with 96 GB HBM2e at 2.4 TB/s and a
// BF16 peak of 800 TF/s (Appendix A), i.e. an FP8 peak of 1.6 PF/s.
//
// Efficiency factors translate peaks into achieved rates. They are
// calibrated once against the paper's anchor measurements (CP1 TTFT at 128K
// = 42 s, standalone FlashAttention-3 at 540 TF/s, Table 8 decode
// micro-latencies) and then used unchanged for every experiment; see
// EXPERIMENTS.md for the calibration notes.
package hw

// GPU describes one accelerator.
type GPU struct {
	Name     string
	PeakBF16 float64 // FLOP/s, dense
	PeakFP8  float64 // FLOP/s, dense
	HBMBytes float64 // bytes of device memory
	HBMBW    float64 // bytes/s of device memory bandwidth
}

// Platform describes a cluster configuration: hosts of GPUsPerHost
// accelerators, NVLink within a host, a network across hosts.
type Platform struct {
	Name        string
	GPU         GPU
	GPUsPerHost int
	IntraBW     float64 // bytes/s per GPU over NVLink within a host
	InterBW     float64 // bytes/s per GPU across hosts (link peak)
	NetEff      float64 // achieved fraction of InterBW for large transfers
	HopLatency  float64 // seconds of fixed latency per cross-host message

	// Calibrated efficiency factors (fractions of the corresponding peak).
	GEMMEff float64 // achieved fraction of PeakFP8 on linear layers
	AttnEff float64 // achieved fraction of PeakBF16 on attention kernels

	// Fixed decode-path overheads, calibrated against Table 8.
	KernelOverhead  float64 // seconds per attention kernel launch (decode)
	All2AllBase     float64 // seconds of fixed latency per All2All (decode)
	A2ABWBoost      float64 // All2All link utilization gain over single-peer SendRecv
	ARLatencyBase   float64 // seconds base latency per AllReduce
	ARLatencyPerHop float64 // seconds added per extra node in the AR group
	StepOverhead    float64 // seconds of fixed per-forward-pass overhead
}

// EffectiveInterBW returns the achieved per-GPU cross-host bandwidth.
func (p Platform) EffectiveInterBW() float64 { return p.InterBW * p.NetEff }

// GEMMRate returns the achieved FLOP/s per GPU on linear layers.
func (p Platform) GEMMRate() float64 { return p.GPU.PeakFP8 * p.GEMMEff }

// AttnRate returns the achieved FLOP/s per GPU on attention kernels.
func (p Platform) AttnRate() float64 { return p.GPU.PeakBF16 * p.AttnEff }

// H100PowerLimited is the 500 W, HBM2e-equipped H100 of the Grand Teton
// platforms (Appendix A).
func H100PowerLimited() GPU {
	return GPU{
		Name:     "h100-500w-hbm2e",
		PeakBF16: 800e12,
		PeakFP8:  1600e12,
		HBMBytes: 96e9,
		HBMBW:    2.4e12,
	}
}

// GTT returns the Grand Teton Training platform: RDMA backend at 400 Gb/s
// per GPU.
func GTT() Platform {
	return Platform{
		Name:        "gtt",
		GPU:         H100PowerLimited(),
		GPUsPerHost: 8,
		IntraBW:     450e9,
		InterBW:     50e9, // 400 Gb/s
		NetEff:      0.55, // calibrated: ~27 GB/s achieved (Table 5 SendRecv)
		HopLatency:  33e-6,

		GEMMEff: 0.367, // calibrated: CP1 TTFT(128K) = 42 s (Table 7)
		AttnEff: 0.675, // 540 TF/s standalone FA3 / 800 TF/s peak (Appendix A)

		KernelOverhead:  9e-6,
		All2AllBase:     50e-6,
		A2ABWBoost:      1.4, // multi-stream All2All drives the NIC harder than one peer
		ARLatencyBase:   50e-6,
		ARLatencyPerHop: 30e-6,
		StepOverhead:    2e-3,
	}
}

// GTI returns the Grand Teton Inference platform: frontend TCP/IP at
// 100 Gb/s per GPU with ~3 GB/s achieved per GPU (§4.2.1).
func GTI() Platform {
	p := GTT()
	p.Name = "gti"
	p.InterBW = 12.5e9 // 100 Gb/s
	p.NetEff = 0.24    // ~3 GB/s achieved, per the paper's GPU traces
	p.HopLatency = 120e-6
	p.ARLatencyBase = 100e-6
	p.ARLatencyPerHop = 100e-6
	return p
}

// GB200Like returns a hypothetical NVLink-connected multi-host platform in
// the spirit of the paper's GB200 remark (§4.2.2): cross-host bandwidth
// close to intra-host, where multi-node TP regains viability. Used by the
// ablation benches only.
func GB200Like() Platform {
	p := GTT()
	p.Name = "gb200-like"
	p.InterBW = 450e9
	p.NetEff = 0.8
	p.HopLatency = 5e-6
	p.ARLatencyBase = 15e-6
	p.ARLatencyPerHop = 10e-6
	return p
}

// Platforms returns the built-in platforms keyed by name.
func Platforms() map[string]Platform {
	out := map[string]Platform{}
	for _, p := range []Platform{GTT(), GTI(), GB200Like()} {
		out[p.Name] = p
	}
	return out
}
