package hw

import "testing"

func TestPlatformsRegistry(t *testing.T) {
	ps := Platforms()
	for _, name := range []string{"gtt", "gti", "gb200-like"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("platform %q missing", name)
		}
		if p.Name != name {
			t.Fatalf("platform %q has name %q", name, p.Name)
		}
	}
}

func TestGTTSpecsMatchPaper(t *testing.T) {
	p := GTT()
	// §4.1: 8 H100s per host, RDMA 400 Gb/s per GPU.
	if p.GPUsPerHost != 8 {
		t.Fatalf("GPUsPerHost = %d", p.GPUsPerHost)
	}
	if p.InterBW != 50e9 {
		t.Fatalf("InterBW = %v, want 50e9 (400 Gb/s)", p.InterBW)
	}
	// Appendix A: power-limited H100, BF16 peak 800 TF/s, 96 GB HBM2e at
	// 2.4 TB/s.
	if p.GPU.PeakBF16 != 800e12 || p.GPU.HBMBytes != 96e9 || p.GPU.HBMBW != 2.4e12 {
		t.Fatalf("GPU spec deviates from Appendix A: %+v", p.GPU)
	}
}

func TestGTISpecsMatchPaper(t *testing.T) {
	p := GTI()
	// §4.1: frontend TCP at 100 Gb/s per GPU; §4.2.1: ~3 GB/s achieved.
	if p.InterBW != 12.5e9 {
		t.Fatalf("InterBW = %v, want 12.5e9 (100 Gb/s)", p.InterBW)
	}
	achieved := p.EffectiveInterBW()
	if achieved < 2.5e9 || achieved > 3.5e9 {
		t.Fatalf("achieved BW = %v, want ~3 GB/s per the paper's traces", achieved)
	}
}

func TestEffectiveRates(t *testing.T) {
	p := GTT()
	if p.GEMMRate() != p.GPU.PeakFP8*p.GEMMEff {
		t.Fatal("GEMMRate inconsistent")
	}
	if p.AttnRate() != p.GPU.PeakBF16*p.AttnEff {
		t.Fatal("AttnRate inconsistent")
	}
	// The paper's standalone FA3 measurement: 540 TF/s on this GPU.
	if r := p.AttnRate(); r < 530e12 || r > 550e12 {
		t.Fatalf("AttnRate = %v, want ~540e12 (Appendix A)", r)
	}
}

func TestGB200LikeFasterFabric(t *testing.T) {
	gb := GB200Like()
	if gb.EffectiveInterBW() <= GTT().EffectiveInterBW() {
		t.Fatal("GB200-like fabric should beat RDMA")
	}
	if gb.HopLatency >= GTT().HopLatency {
		t.Fatal("GB200-like latency should beat RDMA")
	}
}
