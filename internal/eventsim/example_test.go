package eventsim_test

import (
	"fmt"

	"repro/internal/eventsim"
)

// A comm-bound uniform ring exposes (N-1)*(xfer-compute) of SendRecv per
// rank; the event-driven makespan agrees with the closed-form overlap
// expression the perf model uses.
func ExampleSimulate() {
	spec := eventsim.Uniform(4, 1.0, 1.5, 0) // compute 1s, transfer 1.5s
	res, err := eventsim.Simulate(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan: %.1fs\n", res.Makespan)
	fmt.Printf("closed form: %.1fs\n", eventsim.ClosedForm(4, 1.0, 1.5, 0))
	fmt.Printf("exposed comm per rank: %.1fs\n", res.ExposedComm[0])
	// Output:
	// makespan: 5.5s
	// closed form: 5.5s
	// exposed comm per rank: 1.5s
}
