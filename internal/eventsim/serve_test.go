package eventsim

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

func simTrace(t *testing.T, seed int64) *workload.Trace {
	t.Helper()
	spec := workload.DefaultTraceSpec(seed, 64, 300, 400_000)
	spec.MaxSessions = 50
	tr, err := workload.GenerateTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSimulateServeDeterministic is the simulator's replay contract: the
// same trace through the same model yields element-for-element identical
// results — no wall clock, no randomness.
func TestSimulateServeDeterministic(t *testing.T) {
	tr := simTrace(t, 3)
	a, err := SimulateServe(tr, DefaultServeModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateServe(tr, DefaultServeModel())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two simulations of the same trace differ")
	}
	if a.Steps == 0 || a.DurationMs <= 0 {
		t.Fatalf("degenerate simulation: %d steps, %.3f ms", a.Steps, a.DurationMs)
	}
}

// TestSimulateServeInvariants checks the schedule makes physical sense for
// every request: all complete, TTFT covers queueing, one ITL per decoded
// token past the first, e2e at least TTFT, multi-turn ordering respected.
func TestSimulateServeInvariants(t *testing.T) {
	tr := simTrace(t, 9)
	res, err := SimulateServe(tr, DefaultServeModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != len(tr.Events) {
		t.Fatalf("%d results for %d events", len(res.Results), len(tr.Events))
	}
	for i, r := range res.Results {
		ev := tr.Events[i]
		if r.ID != ev.ID || r.Cohort != ev.Cohort {
			t.Fatalf("result %d identity mismatch: %+v vs event %+v", i, r, ev)
		}
		if r.Status != 200 {
			t.Fatalf("request %d status %d", i, r.Status)
		}
		if r.TTFTMs <= 0 || r.E2EMs < r.TTFTMs {
			t.Fatalf("request %d ttft %.4f e2e %.4f", i, r.TTFTMs, r.E2EMs)
		}
		if len(r.ITLMs) != ev.MaxTokens-1 {
			t.Fatalf("request %d: %d itl samples for %d max_tokens", i, len(r.ITLMs), ev.MaxTokens)
		}
		if r.OutputTokens != ev.MaxTokens {
			t.Fatalf("request %d output %d want %d", i, r.OutputTokens, ev.MaxTokens)
		}
	}
	// The simulated results must build a valid serving report — the same
	// schema the live replay emits.
	rep := workload.BuildServingReport(tr, res.Results, res.DurationMs, 1)
	if err := workload.ValidateServingReport(rep); err != nil {
		t.Fatalf("simulated report invalid: %v", err)
	}
	if rep.Totals.Completed != len(tr.Events) {
		t.Fatalf("completed %d want %d", rep.Totals.Completed, len(tr.Events))
	}
}

// TestSimulateServeCapacity sanity-checks that the model responds to
// resources the way a real scheduler does: halving the token budget cannot
// speed the run up.
func TestSimulateServeCapacity(t *testing.T) {
	tr := simTrace(t, 5)
	fast, err := SimulateServe(tr, DefaultServeModel())
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultServeModel()
	slow.TokenBudget = 4
	constrained, err := SimulateServe(tr, slow)
	if err != nil {
		t.Fatal(err)
	}
	if constrained.DurationMs < fast.DurationMs {
		t.Fatalf("budget 4 finished in %.3f ms, budget 32 in %.3f ms",
			constrained.DurationMs, fast.DurationMs)
	}
}
