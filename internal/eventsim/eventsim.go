// Package eventsim is a discrete-event simulator of the ring-attention
// pipeline. Where the perf package predicts latency with the closed-form
// overlap expression (compute + (N−1)·max(compute, transfer)), eventsim
// derives the same schedule from first principles — per-rank compute
// serialization, block-forwarding dependencies, and NIC occupancy — so the
// two can cross-validate, and so non-uniform conditions the closed form
// cannot express (stragglers, slow links, jitter) can be studied.
//
// The model: N ranks run N iterations each. At iteration j, rank r computes
// attention on the block it currently holds while forwarding that block to
// rank r+1. A block can be forwarded as soon as it is held (forwarding does
// not wait for compute — the overlap the paper relies on), but a rank's NIC
// sends serially and compute is serial per rank. pass-Q adds a trailing
// All2All that starts when every rank has finished its partials.
package eventsim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Timeline entries are trace.Span records — the same span type the serving
// engine's recorder buffers and exports — with simulated time mapped onto
// nanoseconds (Start/Dur) and the iteration index in Args["iter"]. Span
// names label the activity:
const (
	SpanCompute = "compute"
	SpanXfer    = "xfer"
	SpanAll2All = "all2all"
)

// simSpan builds a timeline entry from simulated seconds.
func simSpan(rank, iter int, name string, start, end float64) trace.Span {
	return trace.Span{
		Name: name, Cat: "eventsim", Rank: rank, Seq: trace.NoSeq, Epoch: 1,
		Start: int64(math.Round(start * 1e9)),
		Dur:   int64(math.Round((end - start) * 1e9)),
		Args:  map[string]int64{"iter": int64(iter)},
	}
}

// spanEnd returns a timeline entry's end in simulated seconds.
func spanEnd(s trace.Span) float64 { return float64(s.Start+s.Dur) / 1e9 }

// RingSpec parameterizes one simulated ring pass (one layer's attention).
type RingSpec struct {
	N int
	// Compute[r][j]: seconds rank r spends computing its j-th partial.
	Compute [][]float64
	// Xfer[r][j]: seconds for the block rank r forwards at iteration j to
	// cross the link r -> r+1. Iteration N-1 sends nothing.
	Xfer [][]float64
	// A2A[r]: rank r's share of the trailing All2All (0 = pass-KV).
	A2A []float64
}

// Validate checks shape consistency.
func (s RingSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("eventsim: non-positive ring size %d", s.N)
	}
	if len(s.Compute) != s.N || len(s.Xfer) != s.N {
		return fmt.Errorf("eventsim: compute/xfer rows %d/%d for %d ranks", len(s.Compute), len(s.Xfer), s.N)
	}
	for r := 0; r < s.N; r++ {
		if len(s.Compute[r]) != s.N || len(s.Xfer[r]) != s.N {
			return fmt.Errorf("eventsim: rank %d has %d/%d iters, want %d",
				r, len(s.Compute[r]), len(s.Xfer[r]), s.N)
		}
		for j := 0; j < s.N; j++ {
			if s.Compute[r][j] < 0 || s.Xfer[r][j] < 0 {
				return fmt.Errorf("eventsim: negative duration at rank %d iter %d", r, j)
			}
		}
	}
	if s.A2A != nil && len(s.A2A) != s.N {
		return fmt.Errorf("eventsim: %d a2a entries for %d ranks", len(s.A2A), s.N)
	}
	return nil
}

// Uniform builds a spec where every iteration computes and transfers in the
// same time — the regime of the closed-form perf model.
func Uniform(n int, compute, xfer, a2a float64) RingSpec {
	s := RingSpec{N: n, Compute: make([][]float64, n), Xfer: make([][]float64, n)}
	if a2a > 0 {
		s.A2A = make([]float64, n)
	}
	for r := 0; r < n; r++ {
		s.Compute[r] = make([]float64, n)
		s.Xfer[r] = make([]float64, n)
		for j := 0; j < n; j++ {
			s.Compute[r][j] = compute
			if j < n-1 {
				s.Xfer[r][j] = xfer
			}
		}
		if a2a > 0 {
			s.A2A[r] = a2a
		}
	}
	return s
}

// ScaleRankCompute multiplies one rank's compute times by f (a compute
// straggler).
func (s *RingSpec) ScaleRankCompute(rank int, f float64) {
	for j := range s.Compute[rank] {
		s.Compute[rank][j] *= f
	}
}

// ScaleLinkXfer multiplies the transfer times of the link rank -> rank+1 by
// f (a slow or jittery link).
func (s *RingSpec) ScaleLinkXfer(rank int, f float64) {
	for j := range s.Xfer[rank] {
		s.Xfer[rank][j] *= f
	}
}

// Result is the simulated schedule.
type Result struct {
	Makespan   float64
	RankFinish []float64
	Timeline   []trace.Span
	// ExposedComm[r]: idle time on rank r attributable to waiting for
	// blocks, makespan accounting's analogue of the paper's "exposed"
	// SendRecv time.
	ExposedComm []float64
}

// Simulate derives the full schedule of one ring pass.
func Simulate(spec RingSpec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.N
	avail := make([][]float64, n) // avail[r][j]: when rank r holds block j
	computeEnd := make([][]float64, n)
	sendEnd := make([]float64, n) // NIC busy-until per rank
	for r := 0; r < n; r++ {
		avail[r] = make([]float64, n)
		computeEnd[r] = make([]float64, n)
	}
	res := &Result{RankFinish: make([]float64, n), ExposedComm: make([]float64, n)}

	// Iterations advance in lockstep dependency order: block availability at
	// iteration j+1 depends only on sends issued at iteration j.
	for j := 0; j < n; j++ {
		for r := 0; r < n; r++ {
			prevEnd := 0.0
			if j > 0 {
				prevEnd = computeEnd[r][j-1]
			}
			start := math.Max(prevEnd, avail[r][j])
			end := start + spec.Compute[r][j]
			computeEnd[r][j] = end
			res.Timeline = append(res.Timeline, simSpan(r, j, SpanCompute, start, end))
			if start > prevEnd {
				res.ExposedComm[r] += start - prevEnd
			}
			if j < n-1 {
				sendStart := math.Max(avail[r][j], sendEnd[r])
				sendFinish := sendStart + spec.Xfer[r][j]
				sendEnd[r] = sendFinish
				next := (r + 1) % n
				avail[next][j+1] = sendFinish
				res.Timeline = append(res.Timeline, simSpan(r, j, SpanXfer, sendStart, sendFinish))
			}
		}
	}
	allDone := 0.0
	for r := 0; r < n; r++ {
		res.RankFinish[r] = computeEnd[r][n-1]
		if res.RankFinish[r] > allDone {
			allDone = res.RankFinish[r]
		}
	}
	if spec.A2A != nil {
		// The All2All is a collective: it begins once every rank has its
		// partials and ends after the slowest share.
		maxA2A := 0.0
		for r := 0; r < n; r++ {
			if spec.A2A[r] > maxA2A {
				maxA2A = spec.A2A[r]
			}
			res.Timeline = append(res.Timeline, simSpan(r, n, SpanAll2All, allDone, allDone+spec.A2A[r]))
		}
		for r := 0; r < n; r++ {
			res.RankFinish[r] = allDone + maxA2A
		}
		allDone += maxA2A
	}
	res.Makespan = allDone
	sort.Slice(res.Timeline, func(i, k int) bool {
		if res.Timeline[i].Start != res.Timeline[k].Start {
			return res.Timeline[i].Start < res.Timeline[k].Start
		}
		return res.Timeline[i].Rank < res.Timeline[k].Rank
	})
	return res, nil
}

// ClosedForm returns the perf package's overlap expression for a uniform
// ring — compute + (N−1)·max(compute, xfer) + a2a — for cross-validation.
func ClosedForm(n int, compute, xfer, a2a float64) float64 {
	if n == 1 {
		return compute + a2a
	}
	return compute + float64(n-1)*math.Max(compute, xfer) + a2a
}

// Record replays the simulated timeline into a trace recorder, so a
// simulated schedule exports through the same Chrome-trace / JSONL surface
// as a real serving run.
func (r *Result) Record(rec *trace.Recorder) {
	for _, s := range r.Timeline {
		rec.RecordSpan(s)
	}
}

// Gantt renders an ASCII timeline with the given horizontal resolution
// (seconds per character). Compute is '#', transfer '-', All2All '='.
func (r *Result) Gantt(secPerChar float64) string {
	if secPerChar <= 0 || r.Makespan == 0 {
		return ""
	}
	width := int(r.Makespan/secPerChar) + 1
	ranks := 0
	for _, s := range r.Timeline {
		if s.Rank+1 > ranks {
			ranks = s.Rank + 1
		}
	}
	rows := make([][]byte, ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	glyph := map[string]byte{SpanCompute: '#', SpanXfer: '-', SpanAll2All: '='}
	for _, s := range r.Timeline {
		lo := int(float64(s.Start) / 1e9 / secPerChar)
		hi := int(spanEnd(s) / secPerChar)
		for i := lo; i <= hi && i < width; i++ {
			// Compute wins over transfer when they overlap on screen.
			if rows[s.Rank][i] == '.' || s.Name == SpanCompute {
				rows[s.Rank][i] = glyph[s.Name]
			}
		}
	}
	var b strings.Builder
	for i, row := range rows {
		fmt.Fprintf(&b, "rank %d |%s|\n", i, row)
	}
	return b.String()
}
