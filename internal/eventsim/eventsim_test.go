package eventsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func TestValidate(t *testing.T) {
	if err := Uniform(4, 1, 0.5, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Uniform(2, 1, 1, 0)
	bad.Compute = bad.Compute[:1]
	if bad.Validate() == nil {
		t.Fatal("short compute accepted")
	}
	neg := Uniform(2, 1, 1, 0)
	neg.Compute[0][0] = -1
	if neg.Validate() == nil {
		t.Fatal("negative duration accepted")
	}
	if (RingSpec{N: 0}).Validate() == nil {
		t.Fatal("zero ranks accepted")
	}
}

// The cross-validation at the heart of this package: for uniform rings the
// event-driven makespan must equal the perf model's closed form exactly.
func TestUniformMatchesClosedForm(t *testing.T) {
	cases := []struct {
		n                  int
		compute, xfer, a2a float64
	}{
		{1, 3, 0, 0},
		{2, 1, 0.5, 0},     // compute-bound: comm fully hidden
		{4, 1, 0.5, 0},     // compute-bound
		{4, 0.5, 2, 0},     // comm-bound: SendRecv exposed
		{8, 1, 1, 0},       // balanced
		{4, 1, 0.25, 0.75}, // pass-Q with All2All tail
		{3, 0.2, 1.5, 0.3}, // comm-bound pass-Q
	}
	for _, c := range cases {
		res, err := Simulate(Uniform(c.n, c.compute, c.xfer, c.a2a))
		if err != nil {
			t.Fatal(err)
		}
		want := ClosedForm(c.n, c.compute, c.xfer, c.a2a)
		if math.Abs(res.Makespan-want) > tol {
			t.Errorf("n=%d compute=%v xfer=%v a2a=%v: makespan %v, closed form %v",
				c.n, c.compute, c.xfer, c.a2a, res.Makespan, want)
		}
	}
}

func TestExposedCommMatchesDefinition(t *testing.T) {
	// Comm-bound uniform ring: per iteration the rank waits xfer-compute.
	res, err := Simulate(Uniform(4, 0.5, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	wantExposed := 3 * (2 - 0.5) // (N-1) * (xfer - compute)
	for r, e := range res.ExposedComm {
		if math.Abs(e-wantExposed) > tol {
			t.Errorf("rank %d exposed %v, want %v", r, e, wantExposed)
		}
	}
	// Compute-bound: nothing exposed.
	res2, _ := Simulate(Uniform(4, 2, 0.5, 0))
	for r, e := range res2.ExposedComm {
		if e > tol {
			t.Errorf("rank %d exposed %v in compute-bound ring", r, e)
		}
	}
}

// A compute straggler does not delay other ranks: forwarding never waits
// for compute, so only the slow rank's own finish time grows.
func TestComputeStragglerLocalized(t *testing.T) {
	spec := Uniform(4, 1, 0.25, 0)
	spec.ScaleRankCompute(2, 1.5)
	res, err := Simulate(spec)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := Simulate(Uniform(4, 1, 0.25, 0))
	for r := 0; r < 4; r++ {
		if r == 2 {
			if math.Abs(res.RankFinish[r]-1.5*base.RankFinish[r]) > tol {
				t.Errorf("straggler rank finish %v, want %v", res.RankFinish[r], 1.5*base.RankFinish[r])
			}
			continue
		}
		if math.Abs(res.RankFinish[r]-base.RankFinish[r]) > tol {
			t.Errorf("rank %d delayed by a compute straggler: %v vs %v", r, res.RankFinish[r], base.RankFinish[r])
		}
	}
}

// A slow link is absorbed while its transfer stays under the per-iteration
// compute, and only surfaces beyond that — the paper's GTI robustness story
// in discrete-event form.
func TestSlowLinkAbsorption(t *testing.T) {
	base, _ := Simulate(Uniform(4, 1, 0.25, 0))
	absorbed := Uniform(4, 1, 0.25, 0)
	absorbed.ScaleLinkXfer(1, 3) // 0.75 < compute 1.0: still hidden
	resA, err := Simulate(absorbed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resA.Makespan-base.Makespan) > tol {
		t.Errorf("slow-but-hidden link changed makespan: %v vs %v", resA.Makespan, base.Makespan)
	}
	exposed := Uniform(4, 1, 0.25, 0)
	exposed.ScaleLinkXfer(1, 8) // 2.0 > compute: must surface
	resE, _ := Simulate(exposed)
	if resE.Makespan <= base.Makespan {
		t.Errorf("slow link did not surface: %v vs %v", resE.Makespan, base.Makespan)
	}
}

func TestAll2AllWaitsForSlowestRank(t *testing.T) {
	spec := Uniform(3, 1, 0.1, 0.5)
	spec.ScaleRankCompute(0, 2)
	res, err := Simulate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 finishes its partials at 6 (3 iterations x 2s); All2All starts
	// there for everyone and ends 0.5 later.
	if math.Abs(res.Makespan-6.5) > tol {
		t.Fatalf("makespan %v, want 6.5", res.Makespan)
	}
	for r, f := range res.RankFinish {
		if math.Abs(f-6.5) > tol {
			t.Fatalf("rank %d finish %v, want 6.5 (collective exit)", r, f)
		}
	}
}

func TestTimelineWellFormed(t *testing.T) {
	res, err := Simulate(Uniform(3, 1, 0.5, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	computeCount := 0
	for _, s := range res.Timeline {
		if s.Dur < 0 {
			t.Fatalf("span ends before start: %+v", s)
		}
		if s.Name == SpanCompute {
			computeCount++
		}
	}
	if computeCount != 9 {
		t.Fatalf("compute spans = %d, want 9 (3 ranks x 3 iters)", computeCount)
	}
	// Sorted by start time.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Start < res.Timeline[i-1].Start {
			t.Fatal("timeline not sorted")
		}
	}
}

func TestGanttRenders(t *testing.T) {
	res, _ := Simulate(Uniform(2, 1, 0.5, 0.25))
	g := res.Gantt(0.25)
	if !strings.Contains(g, "rank 0") || !strings.Contains(g, "#") || !strings.Contains(g, "=") {
		t.Fatalf("gantt output missing elements:\n%s", g)
	}
	if (&Result{}).Gantt(0.1) != "" {
		t.Fatal("empty result should render empty")
	}
}

// Property: the makespan is bounded below by every rank's total compute and
// is monotone under inflating any single duration.
func TestPropertyMakespanBounds(t *testing.T) {
	f := func(seed int64, rawN, rawR, rawJ uint8) bool {
		n := int(rawN%4) + 2
		rng := newRng(seed)
		spec := Uniform(n, 0, 0, 0)
		for r := 0; r < n; r++ {
			for j := 0; j < n; j++ {
				spec.Compute[r][j] = rng.f()
				if j < n-1 {
					spec.Xfer[r][j] = rng.f()
				}
			}
		}
		res, err := Simulate(spec)
		if err != nil {
			return false
		}
		for r := 0; r < n; r++ {
			var tot float64
			for j := 0; j < n; j++ {
				tot += spec.Compute[r][j]
			}
			if res.Makespan < tot-tol {
				return false
			}
		}
		// Inflate one random duration; makespan must not shrink.
		r := int(rawR) % n
		j := int(rawJ) % n
		spec.Compute[r][j] += 1
		res2, err := Simulate(spec)
		if err != nil {
			return false
		}
		return res2.Makespan >= res.Makespan-tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Tiny xorshift so the property test controls its own randomness cheaply.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)*2654435761 + 1} }
func (r *rng) f() float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return float64(r.s%1000) / 500.0
}
