package eventsim

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// ServeModel parameterizes the discrete-event serving simulation: a
// continuous-batching scheduler loop in virtual time, costed per step. Where
// cploadgen replays a tracev2 against the real engine (wall-clock truth),
// SimulateServe replays the same trace through this model — deterministic,
// instant, and independent of the host — so capacity questions ("does this
// arrival pattern meet the chat SLO at half the budget?") can be answered
// without a serving run, then cross-checked against the real replay.
type ServeModel struct {
	// TokenBudget is the prompt tokens prefilled per scheduler step
	// (chunked prefill, FIFO across waiting requests).
	TokenBudget int
	// MaxBatch caps the sessions decoded per step (one token each).
	MaxBatch int
	// StepOverheadUs is the fixed per-step cost.
	StepOverheadUs float64
	// PrefillUsPerTok and DecodeUsPerTok are the marginal costs of one
	// prefilled prompt token and one decoded session-step.
	PrefillUsPerTok float64
	DecodeUsPerTok  float64
}

// DefaultServeModel returns costs in the ballpark of the tiny in-process
// engine — close enough for the simulated and replayed reports to be
// comparable order-of-magnitude, which is all the cross-check needs.
func DefaultServeModel() ServeModel {
	return ServeModel{
		TokenBudget:     32,
		MaxBatch:        64,
		StepOverheadUs:  200,
		PrefillUsPerTok: 50,
		DecodeUsPerTok:  100,
	}
}

// Validate checks the model.
func (m ServeModel) Validate() error {
	if m.TokenBudget <= 0 || m.MaxBatch <= 0 {
		return fmt.Errorf("eventsim: serve model needs positive token budget and batch cap")
	}
	if m.StepOverheadUs < 0 || m.PrefillUsPerTok < 0 || m.DecodeUsPerTok < 0 {
		return fmt.Errorf("eventsim: negative serve model cost")
	}
	if m.StepOverheadUs == 0 && m.PrefillUsPerTok == 0 && m.DecodeUsPerTok == 0 {
		return fmt.Errorf("eventsim: serve model with all-zero costs has no timeline")
	}
	return nil
}

// ServeResult is the simulated run: one result per trace event (indexed by
// event id) plus the virtual makespan.
type ServeResult struct {
	Results    []workload.RequestResult
	DurationMs float64
	Steps      int
}

// simReq is one in-flight simulated request.
type simReq struct {
	ev        workload.TraceEvent
	arriveUs  float64
	remaining int // prompt tokens not yet prefilled
	pending   int // decode tokens still to emit after the first
	lastTokUs float64
	res       workload.RequestResult
}

// SimulateServe replays a tracev2 through the serving model. Determinism
// contract: the schedule is a pure function of (trace, model) — virtual time
// only, FIFO order everywhere, ties broken by event id — so two runs produce
// identical results element for element.
func SimulateServe(tr *workload.Trace, m ServeModel) (*ServeResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := workload.ValidateTrace(tr); err != nil {
		return nil, err
	}

	// Per-session turn chains: turn 0 arrives on the trace clock, turn n+1
	// arrives GapUs after turn n completes (closed-loop per session).
	bySession := map[int][]workload.TraceEvent{}
	for _, ev := range tr.Events {
		bySession[ev.Session] = append(bySession[ev.Session], ev)
	}

	// arrivals is kept sorted by (time, event id); insertion is O(n) but the
	// queue only holds not-yet-admitted turn-0 events plus one follow-up per
	// live session.
	type arrival struct {
		atUs float64
		req  *simReq
	}
	var arrivals []arrival
	push := func(atUs float64, ev workload.TraceEvent) {
		r := &simReq{
			ev: ev, arriveUs: atUs,
			remaining: len(ev.Prompt), pending: ev.MaxTokens - 1,
			res: workload.RequestResult{ID: ev.ID, Cohort: ev.Cohort},
		}
		i := sort.Search(len(arrivals), func(i int) bool {
			if arrivals[i].atUs != atUs {
				return arrivals[i].atUs > atUs
			}
			return arrivals[i].req.ev.ID > ev.ID
		})
		arrivals = append(arrivals, arrival{})
		copy(arrivals[i+1:], arrivals[i:])
		arrivals[i] = arrival{atUs: atUs, req: r}
	}
	for _, ev := range tr.Events {
		if ev.Turn == 0 {
			push(float64(ev.AtUs), ev)
		}
	}

	out := &ServeResult{Results: make([]workload.RequestResult, len(tr.Events))}
	now := 0.0
	var waitPrefill, decoding []*simReq

	complete := func(r *simReq) {
		r.res.Status = 200
		r.res.E2EMs = (now - r.arriveUs) / 1e3
		r.res.OutputTokens = r.ev.MaxTokens
		out.Results[r.ev.ID] = r.res
		if evs := bySession[r.ev.Session]; r.ev.Turn+1 < len(evs) {
			ev := evs[r.ev.Turn+1]
			push(now+float64(ev.GapUs), ev)
		}
	}

	for len(arrivals) > 0 || len(waitPrefill) > 0 || len(decoding) > 0 {
		if len(waitPrefill) == 0 && len(decoding) == 0 && now < arrivals[0].atUs {
			now = arrivals[0].atUs // idle: jump to the next arrival
		}
		for len(arrivals) > 0 && arrivals[0].atUs <= now {
			waitPrefill = append(waitPrefill, arrivals[0].req)
			arrivals = arrivals[1:]
		}

		// One scheduler step: a chunk of prefill-first prompt work plus one
		// decode token for each session in the fused batch.
		budget := m.TokenBudget
		prefTok := 0
		var finished []*simReq
		for budget > 0 && len(waitPrefill) > 0 {
			r := waitPrefill[0]
			take := r.remaining
			if take > budget {
				take = budget
			}
			r.remaining -= take
			budget -= take
			prefTok += take
			if r.remaining > 0 {
				break // chunk boundary: this prompt continues next step
			}
			waitPrefill = waitPrefill[1:]
			finished = append(finished, r)
		}
		nDec := len(decoding)
		if nDec > m.MaxBatch {
			nDec = m.MaxBatch
		}
		now += m.StepOverheadUs + float64(prefTok)*m.PrefillUsPerTok + float64(nDec)*m.DecodeUsPerTok
		out.Steps++

		keep := decoding[:0]
		for i, r := range decoding {
			if i < nDec {
				r.res.ITLMs = append(r.res.ITLMs, (now-r.lastTokUs)/1e3)
				r.lastTokUs = now
				r.pending--
				if r.pending == 0 {
					complete(r)
					continue
				}
			}
			keep = append(keep, r)
		}
		decoding = keep
		for _, r := range finished {
			// Prefill completion emits the first token.
			r.res.TTFTMs = (now - r.arriveUs) / 1e3
			r.lastTokUs = now
			if r.pending == 0 {
				complete(r)
			} else {
				decoding = append(decoding, r)
			}
		}
	}
	out.DurationMs = now / 1e3
	return out, nil
}
