// Package wire defines the deterministic binary codec of the distributed CP
// transport: every payload the ring exchanges (KV tiles, circulating query
// blocks, pass-Q partial outputs, metadata gathers) plus the coordinator's
// control frames (commands, results, rendezvous handshake, heartbeats) has a
// fixed little-endian encoding here.
//
// The codec is the load-bearing piece of the bit-identity guarantee: float32
// and float64 values travel as their exact IEEE-754 bit patterns
// (math.Float32bits / math.Float64bits), so NaN payloads, signed zeros, and
// denormals survive a round trip unchanged and a multi-process ring computes
// float-for-float the same merges as the in-process mailboxes, which pass
// pointers and never serialize at all.
//
// Frames are length-prefixed: a uint32 frame length, one type-id byte, the
// payload, then a CRC32C (Castagnoli) trailer over the type-id byte and
// payload. Decoding validates every count against the remaining bytes
// before allocating, so truncated or corrupt frames fail with an error
// instead of a panic or an absurd allocation (the package fuzz test leans on
// this). The checksum catches what length validation cannot: a bit flip
// inside the payload of an otherwise well-framed message, which would
// otherwise decode into silently wrong floats. A checksum mismatch surfaces
// as ErrIntegrity — a named error the transport treats as a link failure —
// never as decoded garbage.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/attention"
	"repro/internal/tensor"
)

// Magic identifies a CP transport peer; the first frame on every connection
// is a Hello carrying it.
const Magic = 0x43505257 // "CPRW"

// Version is the wire-protocol version. Peers with mismatched versions are
// rejected at rendezvous, never mid-ring. Version 2 added the Hello epoch
// (cluster-incarnation number for fault recovery) and the FailureNote frame.
// Version 3 added the trace drain round trip (TraceCmd / TraceResult).
// Version 4 added the per-frame CRC32C trailer and the StatsResult
// integrity/chaos counters.
const Version = 4

// DefaultMaxFrame bounds a single frame's encoded size (length prefix
// included). Loopback KV tiles at laptop scale are kilobytes; anything near
// this limit is a corrupt length prefix.
const DefaultMaxFrame = 1 << 28

// Payload type ids. The id is part of the wire format: renumbering is a
// protocol version bump.
const (
	tNil byte = iota
	tIntVec
	tFloatVec
	tKVBlock
	tQBlock
	tOBlock
	tHello
	tHeartbeat
	tPrefillCmd
	tDecodeCmd
	tDropCmd
	tDetachCmd
	tAdoptCmd
	tReleasePrefixCmd
	tCapQueryCmd
	tStatsCmd
	tShutdownCmd
	tPrefillResult
	tDecodeResult
	tAck
	tDetachResult
	tCapResult
	tStatsResult
	tFailureNote
	tTraceCmd
	tTraceResult
)

// KVBlock is the circulating payload of ring pass-KV: key/value rows plus
// their global positions and sequence ids (padding rows carry pos -1).
type KVBlock struct {
	K, V *tensor.Tensor
	Pos  []int
	Seq  []int
}

// QBlock is the circulating payload of ring pass-Q (prefill and decode):
// query rows plus mask metadata.
type QBlock struct {
	Q   *tensor.Tensor
	Pos []int
	Seq []int
}

// OBlock is a partial attention output transported by the pass-Q All2All:
// output embeddings plus per-(token, head) log-sum-exp.
type OBlock struct {
	Out *attention.Output
}

// Hello is the rendezvous handshake frame: the first frame on every data and
// control connection, in both directions. Rank -1 identifies the coordinator
// (control plane); worker ranks are [0, World).
//
// Epoch is the cluster incarnation: it starts at 1 and increments on every
// fault-recovery rebuild, so a frame from a stale incarnation (a wedged old
// worker, a delayed old coordinator) is rejected at handshake instead of
// silently joining a cluster whose state it no longer shares. Peers on a
// lower epoch learn the current one from the rejection and rejoin at it.
type Hello struct {
	Magic     uint32
	Version   uint16
	World     int
	Rank      int
	ConfigSum uint64 // model config + seed digest; catches mismatched workers
	Epoch     uint64 // cluster incarnation; mismatched epochs never mesh
}

// Heartbeat keeps an idle link observable; receivers drop it before the
// inbox, so it is invisible to the ring algorithms.
type Heartbeat struct{}

// PrefillCmd instructs every rank to run one fused varseq prefill. All
// derived quantities (previously-cached lengths P, the resolved ring
// variant) are included so workers execute a pure function of the frame.
type PrefillCmd struct {
	Seqs    []int
	Tokens  [][]int
	P       []int
	Variant int // resolved perf.Variant; never Auto on the wire
}

// DecodeCmd instructs every rank to run one fused batched decode step.
// Owners[i] is the rank that owns batch entry i's token this step; Pos[i]
// its global position — both resolved by the coordinator so placement stays
// a pure function of the command stream.
type DecodeCmd struct {
	Seqs   []int
	Tokens []int
	Pos    []int
	Owners []int
}

// DropCmd evicts one sequence's KV on every rank.
type DropCmd struct{ Seq int }

// DetachCmd pins the first UpTo tokens of a resident sequence into the
// worker's prefix registry under ID.
type DetachCmd struct {
	Seq  int
	UpTo int
	ID   uint64
}

// AdoptCmd seeds a new sequence from a previously detached prefix.
type AdoptCmd struct {
	Seq int
	ID  uint64
}

// ReleasePrefixCmd frees a detached prefix's page references.
type ReleasePrefixCmd struct{ ID uint64 }

// CapQueryCmd asks a rank for the KV-capacity inputs of the listed
// sequences, so the coordinator can run the same global admission greedy the
// in-process cluster runs.
type CapQueryCmd struct{ Seqs []int }

// FailureNote is an unsolicited worker->coordinator frame: the worker
// observed a data-plane fault (a peer link died) while idle between
// commands. The coordinator's control-plane reader filters it out of the
// command/result stream — like a heartbeat, it never aliases a reply — and
// surfaces it as a FailureEvent so recovery can start before the next
// command trips over the dead rank.
type FailureNote struct {
	Rank  int    // reporting worker's rank
	Cause string // human-readable fault description (names the dead peer)
}

// StatsCmd asks a rank for its telemetry snapshot.
type StatsCmd struct{}

// TraceCmd drains a rank's trace recorder: the worker ships every span and
// series delta accumulated since the previous drain, then resets its staging
// buffers. The coordinator folds the result into its cumulative store, so
// Prometheus counters stay monotonic across drains and epochs.
type TraceCmd struct{}

// TraceSpan is one recorded span on the wire. Args travel as parallel
// key/value arrays with keys pre-sorted by the sender, keeping the encoding
// canonical (one byte sequence per span).
type TraceSpan struct {
	Name    string
	Cat     string
	Rank    int
	Seq     int
	Epoch   uint64
	Index   uint64
	Start   int64
	Dur     int64
	ArgKeys []string
	ArgVals []int64
}

// TraceSeries is one metric series' drained delta: counter/gauge value, or
// histogram count/sum/per-bucket counts. Labels travel as parallel key/value
// arrays sorted by key.
type TraceSeries struct {
	Name      string
	LabelKeys []string
	LabelVals []string
	Kind      uint8
	Value     float64
	Count     uint64
	Sum       float64
	Counts    []int64
}

// TraceResult answers a TraceCmd with the rank's drained spans and series
// deltas.
type TraceResult struct {
	Rank   int
	Spans  []TraceSpan
	Series []TraceSeries
	Err    string
}

// ShutdownCmd ends a worker's serve loop.
type ShutdownCmd struct{}

// PrefillResult carries one rank's local logits shard back to the
// coordinator.
type PrefillResult struct {
	Logits *tensor.Tensor
	Err    string
}

// DecodeResult carries the flat logits of a rank's owned decode rows.
type DecodeResult struct {
	Flat []float32
	Err  string
}

// Ack acknowledges a command with no payload.
type Ack struct{ Err string }

// DetachResult reports the per-layer token counts a detach pinned on one
// rank, so the coordinator can validate the cross-rank boundary invariant.
type DetachResult struct {
	PerLayer []int
	Err      string
}

// CapResult answers a CapQueryCmd: per-layer free rows and, per queried
// sequence, the per-layer copy-on-write append overhead.
type CapResult struct {
	Capacity int
	Avail    []int   // [layer]
	Overhead [][]int // [seqIdx][layer]
	Err      string
}

// LinkStat is one directed link's traffic: the modeled bytes the comm layer
// accounts (the paper's analytic element sizes) and the actual frames/bytes
// the TCP transport moved. Src -1 marks coordinator control links.
type LinkStat struct {
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Messages  int64   `json:"messages"`
	Bytes     float64 `json:"bytes"`
	WireMsgs  int64   `json:"wire_messages"`
	WireBytes int64   `json:"wire_bytes"`
}

// StatsResult is one rank's telemetry snapshot.
type StatsResult struct {
	CacheTokens int
	Assembly    []int64 // ring.BlockCacheStats counters, field order
	Kinds       []string
	Msgs        []int64
	Bytes       []float64
	Links       []LinkStat
	// Frame-integrity counters of this rank's process (IntegrityStats).
	IntegrityChecked  int64
	IntegrityRejected int64
	// Chaos faults this rank's process injected, by kind (chaos.Totals).
	ChaosKinds  []string
	ChaosCounts []int64
	Err         string
}

type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int)     { e.u64(uint64(int64(v))) }
func (e *enc) f32(v float32) { e.u32(math.Float32bits(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.i64(x)
	}
}

func (e *enc) intss(v [][]int) {
	e.u32(uint32(len(v)))
	for _, inner := range v {
		e.ints(inner)
	}
}

func (e *enc) f32s(v []float32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f32(x)
	}
}

func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *enc) i64s(v []int64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(uint64(x))
	}
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) strs(v []string) {
	e.u32(uint32(len(v)))
	for _, s := range v {
		e.str(s)
	}
}

func (e *enc) tensor(t *tensor.Tensor) {
	if t == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(t.Tokens))
	e.u32(uint32(t.Heads))
	e.u32(uint32(t.Dim))
	for _, x := range t.Data {
		e.f32(x)
	}
}

func (e *enc) output(o *attention.Output) {
	if o == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.tensor(o.O)
	e.f64s(o.LSE)
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.fail("truncated frame: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return false
	}
	return true
}

func (d *dec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int     { return int(int64(d.u64())) }
func (d *dec) f32() float32 { return math.Float32frombits(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a element count and validates it against the bytes remaining
// (elemSize >= 1), so a corrupt count cannot trigger a huge allocation.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(d.b)-d.off {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
		return 0
	}
	return n
}

func (d *dec) ints() []int {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *dec) intss() [][]int {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([][]int, n)
	for i := range out {
		out[i] = d.ints()
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *dec) f32s() []float32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.f32()
	}
	return out
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *dec) i64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u64())
	}
	return out
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) strs() []string {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// present reads a strict 0/1 presence byte; any other value is a framing
// error (keeps the encoding canonical: one byte sequence per value).
func (d *dec) present() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid presence byte at offset %d", d.off-1)
		return false
	}
}

func (d *dec) tensor() *tensor.Tensor {
	if !d.present() || d.err != nil {
		return nil
	}
	tokens, heads, dim := int(d.u32()), int(d.u32()), int(d.u32())
	if d.err != nil {
		return nil
	}
	// Bound the element count stepwise so a corrupt shape cannot overflow
	// the multiplication into a bypassed allocation check.
	const maxElems = 1 << 30
	n64 := int64(tokens)
	for _, f := range []int{heads, dim} {
		if n64 > maxElems || int64(f) > maxElems {
			n64 = maxElems + 1
			break
		}
		n64 *= int64(f)
	}
	if n64 > maxElems || int(n64)*4 > len(d.b)-d.off {
		d.fail("tensor shape [%d %d %d] exceeds remaining %d bytes", tokens, heads, dim, len(d.b)-d.off)
		return nil
	}
	n := int(n64)
	data := make([]float32, n)
	for i := range data {
		data[i] = d.f32()
	}
	t, err := tensor.FromData(tokens, heads, dim, data)
	if err != nil {
		d.fail("tensor: %v", err)
		return nil
	}
	return t
}

func (d *dec) output() *attention.Output {
	if !d.present() || d.err != nil {
		return nil
	}
	o := d.tensor()
	lse := d.f64s()
	if d.err != nil {
		return nil
	}
	if o == nil {
		d.fail("output frame without tensor")
		return nil
	}
	if len(lse) != o.Tokens*o.Heads {
		d.fail("output LSE length %d for shape [%d %d]", len(lse), o.Tokens, o.Heads)
		return nil
	}
	return &attention.Output{O: o, LSE: lse}
}

// Append encodes v (type id byte plus payload, no length prefix) onto buf
// and returns the extended slice. The supported payload set is closed; any
// other type is an error, never a silent fallback encoding.
func Append(buf []byte, v any) ([]byte, error) {
	e := &enc{b: buf}
	switch x := v.(type) {
	case nil:
		e.u8(tNil)
	case []int:
		e.u8(tIntVec)
		e.ints(x)
	case []float64:
		e.u8(tFloatVec)
		e.f64s(x)
	case *KVBlock:
		e.u8(tKVBlock)
		e.tensor(x.K)
		e.tensor(x.V)
		e.ints(x.Pos)
		e.ints(x.Seq)
	case *QBlock:
		e.u8(tQBlock)
		e.tensor(x.Q)
		e.ints(x.Pos)
		e.ints(x.Seq)
	case *OBlock:
		e.u8(tOBlock)
		e.output(x.Out)
	case *Hello:
		e.u8(tHello)
		e.u32(x.Magic)
		e.u16(x.Version)
		e.i64(x.World)
		e.i64(x.Rank)
		e.u64(x.ConfigSum)
		e.u64(x.Epoch)
	case *Heartbeat:
		e.u8(tHeartbeat)
	case *PrefillCmd:
		e.u8(tPrefillCmd)
		e.ints(x.Seqs)
		e.intss(x.Tokens)
		e.ints(x.P)
		e.i64(x.Variant)
	case *DecodeCmd:
		e.u8(tDecodeCmd)
		e.ints(x.Seqs)
		e.ints(x.Tokens)
		e.ints(x.Pos)
		e.ints(x.Owners)
	case *DropCmd:
		e.u8(tDropCmd)
		e.i64(x.Seq)
	case *DetachCmd:
		e.u8(tDetachCmd)
		e.i64(x.Seq)
		e.i64(x.UpTo)
		e.u64(x.ID)
	case *AdoptCmd:
		e.u8(tAdoptCmd)
		e.i64(x.Seq)
		e.u64(x.ID)
	case *ReleasePrefixCmd:
		e.u8(tReleasePrefixCmd)
		e.u64(x.ID)
	case *CapQueryCmd:
		e.u8(tCapQueryCmd)
		e.ints(x.Seqs)
	case *StatsCmd:
		e.u8(tStatsCmd)
	case *TraceCmd:
		e.u8(tTraceCmd)
	case *ShutdownCmd:
		e.u8(tShutdownCmd)
	case *FailureNote:
		e.u8(tFailureNote)
		e.i64(x.Rank)
		e.str(x.Cause)
	case *PrefillResult:
		e.u8(tPrefillResult)
		e.tensor(x.Logits)
		e.str(x.Err)
	case *DecodeResult:
		e.u8(tDecodeResult)
		e.f32s(x.Flat)
		e.str(x.Err)
	case *Ack:
		e.u8(tAck)
		e.str(x.Err)
	case *DetachResult:
		e.u8(tDetachResult)
		e.ints(x.PerLayer)
		e.str(x.Err)
	case *CapResult:
		e.u8(tCapResult)
		e.i64(x.Capacity)
		e.ints(x.Avail)
		e.intss(x.Overhead)
		e.str(x.Err)
	case *StatsResult:
		e.u8(tStatsResult)
		e.i64(x.CacheTokens)
		e.i64s(x.Assembly)
		e.strs(x.Kinds)
		e.i64s(x.Msgs)
		e.f64s(x.Bytes)
		e.u32(uint32(len(x.Links)))
		for _, l := range x.Links {
			e.i64(l.Src)
			e.i64(l.Dst)
			e.u64(uint64(l.Messages))
			e.f64(l.Bytes)
			e.u64(uint64(l.WireMsgs))
			e.u64(uint64(l.WireBytes))
		}
		e.u64(uint64(x.IntegrityChecked))
		e.u64(uint64(x.IntegrityRejected))
		e.strs(x.ChaosKinds)
		e.i64s(x.ChaosCounts)
		e.str(x.Err)
	case *TraceResult:
		e.u8(tTraceResult)
		e.i64(x.Rank)
		e.u32(uint32(len(x.Spans)))
		for _, s := range x.Spans {
			e.str(s.Name)
			e.str(s.Cat)
			e.i64(s.Rank)
			e.i64(s.Seq)
			e.u64(s.Epoch)
			e.u64(s.Index)
			e.u64(uint64(s.Start))
			e.u64(uint64(s.Dur))
			e.strs(s.ArgKeys)
			e.i64s(s.ArgVals)
		}
		e.u32(uint32(len(x.Series)))
		for _, s := range x.Series {
			e.str(s.Name)
			e.strs(s.LabelKeys)
			e.strs(s.LabelVals)
			e.u8(s.Kind)
			e.f64(s.Value)
			e.u64(s.Count)
			e.f64(s.Sum)
			e.i64s(s.Counts)
		}
		e.str(x.Err)
	default:
		return buf, fmt.Errorf("wire: unsupported payload type %T", v)
	}
	return e.b, nil
}

// Decode parses one encoded payload (type id byte plus body, no length
// prefix). Trailing bytes are a framing error.
func Decode(b []byte) (any, error) {
	d := &dec{b: b}
	if !d.need(1) {
		return nil, d.err
	}
	typ := d.u8()
	var v any
	switch typ {
	case tNil:
		v = nil
	case tIntVec:
		v = d.ints()
	case tFloatVec:
		v = d.f64s()
	case tKVBlock:
		v = &KVBlock{K: d.tensor(), V: d.tensor(), Pos: d.ints(), Seq: d.ints()}
	case tQBlock:
		v = &QBlock{Q: d.tensor(), Pos: d.ints(), Seq: d.ints()}
	case tOBlock:
		v = &OBlock{Out: d.output()}
	case tHello:
		v = &Hello{Magic: d.u32(), Version: d.u16(), World: d.i64(), Rank: d.i64(), ConfigSum: d.u64(), Epoch: d.u64()}
	case tHeartbeat:
		v = &Heartbeat{}
	case tPrefillCmd:
		v = &PrefillCmd{Seqs: d.ints(), Tokens: d.intss(), P: d.ints(), Variant: d.i64()}
	case tDecodeCmd:
		v = &DecodeCmd{Seqs: d.ints(), Tokens: d.ints(), Pos: d.ints(), Owners: d.ints()}
	case tDropCmd:
		v = &DropCmd{Seq: d.i64()}
	case tDetachCmd:
		v = &DetachCmd{Seq: d.i64(), UpTo: d.i64(), ID: d.u64()}
	case tAdoptCmd:
		v = &AdoptCmd{Seq: d.i64(), ID: d.u64()}
	case tReleasePrefixCmd:
		v = &ReleasePrefixCmd{ID: d.u64()}
	case tCapQueryCmd:
		v = &CapQueryCmd{Seqs: d.ints()}
	case tStatsCmd:
		v = &StatsCmd{}
	case tTraceCmd:
		v = &TraceCmd{}
	case tShutdownCmd:
		v = &ShutdownCmd{}
	case tFailureNote:
		v = &FailureNote{Rank: d.i64(), Cause: d.str()}
	case tPrefillResult:
		v = &PrefillResult{Logits: d.tensor(), Err: d.str()}
	case tDecodeResult:
		v = &DecodeResult{Flat: d.f32s(), Err: d.str()}
	case tAck:
		v = &Ack{Err: d.str()}
	case tDetachResult:
		v = &DetachResult{PerLayer: d.ints(), Err: d.str()}
	case tCapResult:
		v = &CapResult{Capacity: d.i64(), Avail: d.ints(), Overhead: d.intss(), Err: d.str()}
	case tStatsResult:
		r := &StatsResult{
			CacheTokens: d.i64(),
			Assembly:    d.i64s(),
			Kinds:       d.strs(),
			Msgs:        d.i64s(),
			Bytes:       d.f64s(),
		}
		n := d.count(8 * 6)
		if d.err == nil && n > 0 {
			r.Links = make([]LinkStat, n)
			for i := range r.Links {
				r.Links[i] = LinkStat{
					Src: d.i64(), Dst: d.i64(),
					Messages: int64(d.u64()), Bytes: d.f64(),
					WireMsgs: int64(d.u64()), WireBytes: int64(d.u64()),
				}
			}
		}
		r.IntegrityChecked = int64(d.u64())
		r.IntegrityRejected = int64(d.u64())
		r.ChaosKinds = d.strs()
		r.ChaosCounts = d.i64s()
		r.Err = d.str()
		v = r
	case tTraceResult:
		r := &TraceResult{Rank: d.i64()}
		// Minimum encoded span: two string headers, six fixed u64s, two
		// vector headers = 64 bytes; series likewise bottoms out at 41.
		n := d.count(64)
		if d.err == nil && n > 0 {
			r.Spans = make([]TraceSpan, n)
			for i := range r.Spans {
				r.Spans[i] = TraceSpan{
					Name: d.str(), Cat: d.str(),
					Rank: d.i64(), Seq: d.i64(),
					Epoch: d.u64(), Index: d.u64(),
					Start: int64(d.u64()), Dur: int64(d.u64()),
					ArgKeys: d.strs(), ArgVals: d.i64s(),
				}
				if d.err != nil {
					return nil, d.err
				}
			}
		}
		n = d.count(41)
		if d.err == nil && n > 0 {
			r.Series = make([]TraceSeries, n)
			for i := range r.Series {
				r.Series[i] = TraceSeries{
					Name:      d.str(),
					LabelKeys: d.strs(), LabelVals: d.strs(),
					Kind:  d.u8(),
					Value: d.f64(), Count: d.u64(), Sum: d.f64(),
					Counts: d.i64s(),
				}
				if d.err != nil {
					return nil, d.err
				}
			}
		}
		r.Err = d.str()
		v = r
	default:
		return nil, fmt.Errorf("wire: unknown payload type id %d", typ)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after type %d payload", len(d.b)-d.off, typ)
	}
	return v, nil
}

// castagnoli is the CRC32C polynomial table shared by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Process-wide frame-integrity counters: frames whose CRC32C trailer was
// verified, and the subset that failed verification. They feed the serving
// layer's integrity stats block; workers ship theirs in StatsResult.
var (
	integrityChecked  atomic.Int64
	integrityRejected atomic.Int64
)

// IntegrityStats reports this process's cumulative frame-integrity
// counters: frames whose CRC32C trailer was verified (rejections included)
// and frames rejected for a checksum mismatch.
func IntegrityStats() (checked, rejected int64) {
	return integrityChecked.Load(), integrityRejected.Load()
}

// AppendFrame appends one complete encoded frame of v to buf: the uint32
// length prefix, the payload, and its CRC32C trailer. It is WriteFrame
// without the write — transports that need the raw frame bytes (to tap,
// batch, or mangle them in tests) build frames here and write them
// themselves.
func AppendFrame(buf []byte, v any) ([]byte, error) {
	start := len(buf)
	body, err := Append(append(buf, 0, 0, 0, 0), v)
	if err != nil {
		return buf, err
	}
	body = binary.LittleEndian.AppendUint32(body, crc32.Checksum(body[start+4:], castagnoli))
	n := len(body) - start - 4 // payload + trailer, the on-wire frame length
	if n > DefaultMaxFrame {
		return buf, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, DefaultMaxFrame)
	}
	binary.LittleEndian.PutUint32(body[start:start+4], uint32(n))
	return body, nil
}

// WriteFrame encodes v as one length-prefixed, CRC32C-trailed frame onto w
// and returns the total bytes written (prefix included). Frames over
// DefaultMaxFrame are rejected with a named error before anything hits the
// stream: a peer reading with the default cap would otherwise kill the link
// with a misleading length error after the send already "succeeded" (and a
// frame past 4 GiB would silently wrap the length prefix).
func WriteFrame(w io.Writer, v any) (int, error) {
	body, err := AppendFrame(make([]byte, 0, 256), v)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(body)
	if err != nil {
		return n, err
	}
	return len(body), nil
}

// ErrBadFrame marks a frame that arrived intact but did not decode — the
// signature of a peer speaking a different wire-protocol version (layouts
// change between versions, so a foreign Hello fails strict decode before
// the in-band version field can even be compared). Handshake paths match
// it to reject mixed-version peers with a named cause instead of retrying
// into a rendezvous timeout.
var ErrBadFrame = errors.New("wire: undecodable frame")

// ErrIntegrity marks a frame whose CRC32C trailer did not match its
// contents: the bytes were damaged in flight (or deliberately, by the chaos
// layer). It is deliberately distinct from ErrBadFrame — an integrity
// failure is link damage, not a protocol mismatch, so handshake paths retry
// it instead of rejecting the peer, and the transport treats it as a link
// failure that routes into epoch recovery instead of decoding garbage.
var ErrIntegrity = errors.New("wire: frame integrity check failed")

// ReadFrame reads one length-prefixed frame from r (maxFrame <= 0 uses
// DefaultMaxFrame), verifies its CRC32C trailer, and returns the decoded
// payload plus total bytes read. A checksum mismatch wraps ErrIntegrity;
// decode failures of an intact frame wrap ErrBadFrame.
func ReadFrame(r io.Reader, maxFrame int) (any, int, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	// Minimum frame: one type-id byte plus the 4-byte CRC trailer.
	if n < 5 || n > maxFrame {
		return nil, 4, fmt.Errorf("%w: frame length %d outside [5,%d]", ErrBadFrame, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 4, fmt.Errorf("wire: short frame body: %w", err)
	}
	integrityChecked.Add(1)
	want := binary.LittleEndian.Uint32(body[n-4:])
	if got := crc32.Checksum(body[:n-4], castagnoli); got != want {
		integrityRejected.Add(1)
		return nil, 4 + n, fmt.Errorf("%w: crc32c %08x, frame claims %08x over %d bytes", ErrIntegrity, got, want, n-4)
	}
	v, err := Decode(body[:n-4])
	if err != nil {
		return nil, 4 + n, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return v, 4 + n, nil
}

// ErrOf extracts the Err field of a result frame, or "" when the frame type
// carries none.
func ErrOf(v any) string {
	switch x := v.(type) {
	case *PrefillResult:
		return x.Err
	case *DecodeResult:
		return x.Err
	case *Ack:
		return x.Err
	case *DetachResult:
		return x.Err
	case *CapResult:
		return x.Err
	case *StatsResult:
		return x.Err
	case *TraceResult:
		return x.Err
	}
	return ""
}
