package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/attention"
	"repro/internal/tensor"
)

// trickyFloats are the values a lossy or text-based codec mangles: NaN
// payload bits, signed zeros, denormals, infinities, and extreme exponents.
// Bit-identity across processes requires all of them to survive unchanged.
var trickyFloats = []float32{
	0, float32(math.Copysign(0, -1)),
	float32(math.NaN()), math.Float32frombits(0x7fc00001), math.Float32frombits(0xffc00123),
	math.Float32frombits(1), math.Float32frombits(0x00000fff), // denormals
	float32(math.Inf(1)), float32(math.Inf(-1)),
	math.MaxFloat32, -math.MaxFloat32, math.SmallestNonzeroFloat32,
	1.5e-39, // subnormal range
}

func randTensor(rng *rand.Rand, tokens, heads, dim int) *tensor.Tensor {
	t := tensor.New(tokens, heads, dim)
	for i := range t.Data {
		if rng.Intn(4) == 0 {
			t.Data[i] = trickyFloats[rng.Intn(len(trickyFloats))]
		} else {
			t.Data[i] = float32(rng.NormFloat64())
		}
	}
	return t
}

// roundTrip encodes v, decodes it back, and checks exact (bitwise for
// floats) equality via reflect.DeepEqual — NaN != NaN under ==, but
// DeepEqual on float bit patterns holds only if... it does not: DeepEqual
// uses ==. So tensors are compared bit-for-bit explicitly.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	b, err := Append(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return got
}

func sameTensor(t *testing.T, a, b *tensor.Tensor) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("tensor nil mismatch: %v vs %v", a == nil, b == nil)
	}
	if a == nil {
		return
	}
	if a.Tokens != b.Tokens || a.Heads != b.Heads || a.Dim != b.Dim {
		t.Fatalf("shape mismatch: [%d %d %d] vs [%d %d %d]", a.Tokens, a.Heads, a.Dim, b.Tokens, b.Heads, b.Dim)
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatalf("data[%d] bits %08x vs %08x", i, math.Float32bits(a.Data[i]), math.Float32bits(b.Data[i]))
		}
	}
}

func TestKVBlockRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tok := rng.Intn(17)
		blk := &KVBlock{
			K:   randTensor(rng, tok, 2, 8),
			V:   randTensor(rng, tok, 2, 8),
			Pos: randInts(rng, tok),
			Seq: randInts(rng, tok),
		}
		got := roundTrip(t, blk).(*KVBlock)
		sameTensor(t, blk.K, got.K)
		sameTensor(t, blk.V, got.V)
		if !equalInts(blk.Pos, got.Pos) || !equalInts(blk.Seq, got.Seq) {
			t.Fatalf("metadata mismatch: %v/%v vs %v/%v", blk.Pos, blk.Seq, got.Pos, got.Seq)
		}
	}
}

func randInts(rng *rand.Rand, n int) []int {
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(1000) - 1 // includes -1 padding markers
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQBlockAndOBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := &QBlock{Q: randTensor(rng, 5, 4, 8), Pos: []int{-1, 0, 3, 9, 2}, Seq: []int{-1, 0, 0, 1, 2}}
	gq := roundTrip(t, q).(*QBlock)
	sameTensor(t, q.Q, gq.Q)
	if !equalInts(q.Pos, gq.Pos) || !equalInts(q.Seq, gq.Seq) {
		t.Fatal("qblock metadata mismatch")
	}

	out := &attention.Output{O: randTensor(rng, 3, 4, 8), LSE: []float64{
		math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1), 1e-310, 42,
		math.Inf(1), -1e300, 5e-324, 1, 2, 3,
	}}
	ob := roundTrip(t, &OBlock{Out: out}).(*OBlock)
	sameTensor(t, out.O, ob.Out.O)
	for i := range out.LSE {
		if math.Float64bits(out.LSE[i]) != math.Float64bits(ob.Out.LSE[i]) {
			t.Fatalf("LSE[%d] bits differ", i)
		}
	}
}

func TestEmptyTensorsAndVectors(t *testing.T) {
	blk := &KVBlock{K: tensor.New(0, 2, 8), V: tensor.New(0, 2, 8)}
	got := roundTrip(t, blk).(*KVBlock)
	sameTensor(t, blk.K, got.K)
	if got.Pos != nil || got.Seq != nil {
		t.Fatalf("empty metadata decoded as %v/%v", got.Pos, got.Seq)
	}
	if v := roundTrip(t, []int(nil)); v.([]int) != nil {
		t.Fatalf("nil intvec decoded as %v", v)
	}
	if v := roundTrip(t, nil); v != nil {
		t.Fatalf("nil payload decoded as %v", v)
	}
	if v := roundTrip(t, &PrefillResult{}); v.(*PrefillResult).Logits != nil {
		t.Fatal("nil logits decoded as tensor")
	}
}

func TestControlFrameRoundTrip(t *testing.T) {
	frames := []any{
		&Hello{Magic: Magic, Version: Version, World: 3, Rank: -1, ConfigSum: 0xdeadbeefcafef00d, Epoch: 7},
		&Heartbeat{},
		&FailureNote{Rank: 2, Cause: "link to rank 1 failed: connection reset"},
		&PrefillCmd{Seqs: []int{7, 9}, Tokens: [][]int{{1, 2, 3}, {4}}, P: []int{0, 32}, Variant: 1},
		&DecodeCmd{Seqs: []int{1, 2}, Tokens: []int{5, 6}, Pos: []int{10, 20}, Owners: []int{0, 2}},
		&DropCmd{Seq: 4},
		&DetachCmd{Seq: 1, UpTo: 64, ID: 99},
		&AdoptCmd{Seq: 2, ID: 99},
		&ReleasePrefixCmd{ID: 99},
		&CapQueryCmd{Seqs: []int{1, 2, 3}},
		&StatsCmd{},
		&ShutdownCmd{},
		&DecodeResult{Flat: []float32{1, 2, 3}, Err: ""},
		&Ack{Err: "boom"},
		&DetachResult{PerLayer: []int{16, 16}},
		&CapResult{Capacity: 128, Avail: []int{3, 4}, Overhead: [][]int{{0, 1}, {2, 0}}, Err: ""},
		&StatsResult{
			CacheTokens: 77, Assembly: []int64{1, 2, 3, 4, 5},
			Kinds: []string{"allgather", "sendrecv"}, Msgs: []int64{3, 9}, Bytes: []float64{12.5, 900},
			Links:            []LinkStat{{Src: 0, Dst: 1, Messages: 4, Bytes: 100.25, WireMsgs: 6, WireBytes: 512}},
			IntegrityChecked: 1234, IntegrityRejected: 2,
			ChaosKinds: []string{"corrupt", "crash"}, ChaosCounts: []int64{3, 1},
			Err: "",
		},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !reflect.DeepEqual(f, got) {
			t.Fatalf("round trip of %T: %#v vs %#v", f, f, got)
		}
	}
}

// TestTruncatedFramesRejected checks that every strict prefix of a valid
// encoding fails with an error — never a panic, never a silent partial
// decode.
func TestTruncatedFramesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payloads := []any{
		&KVBlock{K: randTensor(rng, 4, 2, 8), V: randTensor(rng, 4, 2, 8), Pos: []int{0, 1, 2, 3}, Seq: []int{0, 0, 1, 1}},
		&PrefillCmd{Seqs: []int{1}, Tokens: [][]int{{1, 2}}, P: []int{0}},
		&StatsResult{Kinds: []string{"x"}, Msgs: []int64{1}, Links: []LinkStat{{Src: 1, Dst: 2}}},
		&Hello{Magic: Magic, Version: Version, World: 2, Rank: 0},
	}
	for _, p := range payloads {
		b, err := Append(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := Decode(b[:cut]); err == nil {
				t.Fatalf("%T truncated to %d/%d bytes decoded without error", p, cut, len(b))
			}
		}
		// Trailing garbage is rejected too.
		if _, err := Decode(append(append([]byte(nil), b...), 0xee)); err == nil {
			t.Fatalf("%T with trailing byte decoded without error", p)
		}
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	if _, err := Decode([]byte{0xf7}); err == nil {
		t.Fatal("unknown type id accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	want := &DecodeCmd{Seqs: []int{1}, Tokens: []int{2}, Pos: []int{3}, Owners: []int{0}}
	n, err := WriteFrame(&buf, want)
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Fatalf("WriteFrame reported %d bytes, wrote %d", n, buf.Len())
	}
	got, rn, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rn != n {
		t.Fatalf("ReadFrame consumed %d of %d bytes", rn, n)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("frame round trip: %#v vs %#v", want, got)
	}

	// A frame longer than the cap is rejected before allocation.
	buf.Reset()
	if _, err := WriteFrame(&buf, &DropCmd{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFrame(&buf, 4); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestFrameIntegrity pins down the CRC32C trailer contract: every
// single-bit corruption of a frame's payload or trailer is rejected with
// ErrIntegrity (link damage, retryable), truncated frames fail without ever
// reaching the decoder, and a frame whose CRC is valid but whose payload is
// semantically bad fails with ErrBadFrame (protocol mismatch, fatal) — the
// two failure classes must never blur, because the transport routes them
// differently.
func TestFrameIntegrity(t *testing.T) {
	frame, err := AppendFrame(nil, &DecodeCmd{Seqs: []int{1, 2}, Tokens: []int{5, 6}, Pos: []int{3, 4}, Owners: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}

	// Pristine frame reads back and bumps only the checked counter.
	c0, r0 := IntegrityStats()
	if _, _, err := ReadFrame(bytes.NewReader(frame), 0); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	c1, r1 := IntegrityStats()
	if c1 != c0+1 || r1 != r0 {
		t.Fatalf("counters after clean read: checked %d->%d rejected %d->%d", c0, c1, r0, r1)
	}

	// Every single-bit flip past the length prefix — payload bytes and CRC
	// trailer alike — must surface as ErrIntegrity, and each must bump the
	// rejected counter.
	for i := 4; i < len(frame); i++ {
		for bit := 0; bit < 8; bit++ {
			mangled := append([]byte(nil), frame...)
			mangled[i] ^= 1 << bit
			_, _, err := ReadFrame(bytes.NewReader(mangled), 0)
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("flip byte %d bit %d: got %v, want ErrIntegrity", i, bit, err)
			}
		}
	}
	c2, r2 := IntegrityStats()
	wantFlips := int64((len(frame) - 4) * 8)
	if r2-r1 != wantFlips || c2-c1 != wantFlips {
		t.Fatalf("counters after %d flips: checked +%d rejected +%d", wantFlips, c2-c1, r2-r1)
	}

	// Truncation at every boundary: an incomplete frame errors out (short
	// header, short body) and never reaches the decoder as garbage.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:cut]), 0); err == nil {
			t.Fatalf("frame truncated to %d/%d bytes accepted", cut, len(frame))
		}
	}

	// CRC-valid but semantically bad: a correctly framed unknown type id
	// passes the integrity check and must fail as ErrBadFrame, NOT
	// ErrIntegrity — the bytes arrived exactly as sent.
	bogus := []byte{0xf7, 0x01, 0x02}
	bad := binary.LittleEndian.AppendUint32(nil, uint32(len(bogus)+4))
	bad = append(bad, bogus...)
	bad = binary.LittleEndian.AppendUint32(bad, crc32.Checksum(bogus, castagnoli))
	_, _, err = ReadFrame(bytes.NewReader(bad), 0)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("CRC-valid undecodable frame: got %v, want ErrBadFrame", err)
	}
	if errors.Is(err, ErrIntegrity) {
		t.Fatal("intact-but-undecodable frame misclassified as integrity failure")
	}

	// Duplicate delivery: the same frame twice on one stream reads as two
	// identical payloads — framing resynchronizes at every length prefix, so
	// a chaos-duplicated frame cannot shear the ones after it.
	dup := append(append([]byte(nil), frame...), frame...)
	rd := bytes.NewReader(dup)
	for i := 0; i < 2; i++ {
		v, _, err := ReadFrame(rd, 0)
		if err != nil {
			t.Fatalf("duplicate read %d: %v", i, err)
		}
		if _, ok := v.(*DecodeCmd); !ok {
			t.Fatalf("duplicate read %d: got %T", i, v)
		}
	}
}

// TestHelloVersionGate documents the rendezvous rule the transport enforces:
// a Hello with the wrong magic or version must be detectable from the frame
// alone.
func TestHelloVersionGate(t *testing.T) {
	h := &Hello{Magic: Magic, Version: Version + 1, World: 2, Rank: 0}
	got := roundTrip(t, h).(*Hello)
	if got.Version == Version {
		t.Fatal("version not preserved")
	}
	bad := &Hello{Magic: 0x12345678, Version: Version}
	if roundTrip(t, bad).(*Hello).Magic == Magic {
		t.Fatal("magic not preserved")
	}
}

// FuzzDecode feeds arbitrary bytes to the decoder; any panic or runaway
// allocation is a bug. Valid corpus entries check encode/decode/encode
// stability.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	seeds := []any{
		nil,
		[]int{1, -1, 1 << 40},
		[]float64{math.NaN(), math.Inf(-1)},
		&KVBlock{K: randTensor(rng, 3, 2, 4), V: randTensor(rng, 3, 2, 4), Pos: []int{0, 1, 2}, Seq: []int{0, 0, 0}},
		&QBlock{Q: randTensor(rng, 2, 4, 4), Pos: []int{5, 6}, Seq: []int{1, 1}},
		&OBlock{Out: &attention.Output{O: randTensor(rng, 1, 2, 4), LSE: []float64{0, 1}}},
		&StatsResult{Kinds: []string{"sendrecv"}, Msgs: []int64{1}, Bytes: []float64{8}},
	}
	for _, s := range seeds {
		b, err := Append(nil, s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		// Valid frames re-encode to exactly the input: the codec has one
		// canonical encoding per value (determinism), except that nil and
		// empty slices share the count-0 form — which Decode normalizes to
		// nil, so a decoded value always re-encodes canonically.
		b2, err := Append(nil, v)
		if err != nil {
			t.Fatalf("re-encode of decoded %T failed: %v", v, err)
		}
		if !bytes.Equal(data, b2) {
			t.Fatalf("non-canonical encoding: %x decoded to %T re-encoding %x", data, v, b2)
		}
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the framed reader. The
// invariant: a frame either reads back cleanly or fails with a classified
// error — short/IO, ErrBadFrame, or ErrIntegrity — never a panic; and any
// frame whose CRC trailer does not match its payload must fail with
// exactly ErrIntegrity. Corpus entries cover the clean frame, a corrupted
// payload byte, a corrupted trailer, and a CRC-valid undecodable payload.
func FuzzReadFrame(f *testing.F) {
	clean, err := AppendFrame(nil, &DecodeCmd{Seqs: []int{1}, Tokens: []int{2}, Pos: []int{3}, Owners: []int{0}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), clean...))
	corruptBody := append([]byte(nil), clean...)
	corruptBody[5] ^= 0x40
	f.Add(corruptBody)
	corruptTrailer := append([]byte(nil), clean...)
	corruptTrailer[len(corruptTrailer)-1] ^= 0x01
	f.Add(corruptTrailer)
	bogus := []byte{0xf7, 0xaa}
	goodCRCBadPayload := binary.LittleEndian.AppendUint32(nil, uint32(len(bogus)+4))
	goodCRCBadPayload = append(goodCRCBadPayload, bogus...)
	goodCRCBadPayload = binary.LittleEndian.AppendUint32(goodCRCBadPayload, crc32.Checksum(bogus, castagnoli))
	f.Add(goodCRCBadPayload)
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := ReadFrame(bytes.NewReader(data), 0)
		if err == nil {
			// Whatever decoded must hold the framing invariant: the bytes
			// consumed form a self-consistent frame (length, CRC) for v.
			if v == nil || n < 9 || n > len(data) {
				t.Fatalf("clean read of %d/%d bytes returned %T", n, len(data), v)
			}
			return
		}
		// Independent CRC verdict for complete frames: mismatch must have
		// been classified as ErrIntegrity, and a match must not be.
		if len(data) >= 4 {
			fn := int(binary.LittleEndian.Uint32(data[:4]))
			if fn >= 5 && fn <= len(data)-4 {
				body := data[4 : 4+fn]
				match := crc32.Checksum(body[:fn-4], castagnoli) == binary.LittleEndian.Uint32(body[fn-4:])
				if !match && !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("complete damaged frame failed unclassified: %v", err)
				}
				if !match && errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrIntegrity) {
					// Length-sanity rejections (fn > maxFrame handled above by
					// bounds) aside, a CRC mismatch on a plausible frame must
					// be integrity, not protocol.
					t.Fatalf("CRC mismatch classified as ErrBadFrame: %v", err)
				}
				if match && errors.Is(err, ErrIntegrity) {
					t.Fatalf("CRC-valid frame classified as integrity failure: %v", err)
				}
			}
		}
	})
}
