// Package comm provides the simulated collective-communication substrate the
// ring-attention algorithms run on. A World is a group of N CP ranks, each
// executed as its own goroutine, connected by per-(src,dst) FIFO mailboxes.
// The primitives mirror the NCCL surface the paper uses — point-to-point
// SendRecv for the ring loop, All2All for restoring pass-Q partial outputs,
// AllGather for the all-gather pass-KV baseline, and AllReduce for the
// tensor-parallel comparison — while recording per-collective message and
// byte counts so tests can check the paper's communication-cost claims
// (Table 2) against actually-transferred bytes.
//
// The transport is in-memory and reliable by default. Links can be failed
// explicitly to exercise error paths, and all receives carry a timeout so a
// bug that would deadlock a real cluster fails the test quickly instead.
package comm

import (
	"fmt"
	"sync"
	"time"
)

// Kind labels a collective family for accounting.
type Kind string

const (
	KindSendRecv  Kind = "sendrecv"
	KindAll2All   Kind = "all2all"
	KindAllGather Kind = "allgather"
	KindAllReduce Kind = "allreduce"
	KindBroadcast Kind = "broadcast"
)

// DefaultRecvTimeout bounds how long a rank waits for a message before
// reporting a communication error. Functional tests are fast; a second of
// silence means a peer died or the algorithm deadlocked.
const DefaultRecvTimeout = 10 * time.Second

// Option configures a World at construction time.
type Option func(*World)

// WithRecvTimeout overrides DefaultRecvTimeout for every send/receive on the
// World. Long batched-decode soak tests and slow CI machines set this higher
// than the default; fault-injection tests set it lower so failures surface
// quickly. Non-positive values are ignored.
func WithRecvTimeout(d time.Duration) Option {
	return func(w *World) {
		if d > 0 {
			w.RecvTimeout = d
		}
	}
}

type envelope struct {
	src     int
	payload any
}

// Stats aggregates traffic counters for one rank.
type Stats struct {
	Messages map[Kind]int64
	Bytes    map[Kind]float64
}

func newStats() *Stats {
	return &Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
}

// TotalBytes sums bytes across all collective kinds.
func (s Stats) TotalBytes() float64 {
	var t float64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// TotalMessages sums message counts across all collective kinds.
func (s Stats) TotalMessages() int64 {
	var t int64
	for _, m := range s.Messages {
		t += m
	}
	return t
}

// World is a simulated process group of N ranks.
type World struct {
	N           int
	RecvTimeout time.Duration

	mu     sync.Mutex
	boxes  [][]chan envelope // boxes[dst][src]
	stats  []*Stats          // per sending rank
	failed map[[2]int]bool   // directed failed links
}

// NewWorld creates a process group with n ranks.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("comm: non-positive world size %d", n))
	}
	w := &World{N: n, RecvTimeout: DefaultRecvTimeout, failed: make(map[[2]int]bool)}
	for _, opt := range opts {
		opt(w)
	}
	w.boxes = make([][]chan envelope, n)
	w.stats = make([]*Stats, n)
	for d := 0; d < n; d++ {
		w.boxes[d] = make([]chan envelope, n)
		for s := 0; s < n; s++ {
			// Capacity n+1 lets every rank complete an All2All send phase
			// before any rank starts receiving, avoiding deadlock without
			// extra goroutines.
			w.boxes[d][s] = make(chan envelope, n+1)
		}
		w.stats[d] = newStats()
	}
	return w
}

// FailLink marks the directed link src->dst as failed; subsequent sends on
// it return an error.
func (w *World) FailLink(src, dst int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.failed[[2]int{src, dst}] = true
}

// HealLink restores a previously failed link.
func (w *World) HealLink(src, dst int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.failed, [2]int{src, dst})
}

func (w *World) linkFailed(src, dst int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed[[2]int{src, dst}]
}

func (w *World) account(src int, kind Kind, bytes float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats[src].Messages[kind]++
	w.stats[src].Bytes[kind] += bytes
}

// RankStats returns a snapshot of rank r's send-side traffic counters.
func (w *World) RankStats(r int) Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
	for k, v := range w.stats[r].Messages {
		out.Messages[k] = v
	}
	for k, v := range w.stats[r].Bytes {
		out.Bytes[k] = v
	}
	return out
}

// TotalStats returns traffic summed over all ranks.
func (w *World) TotalStats() Stats {
	out := Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
	for r := 0; r < w.N; r++ {
		s := w.RankStats(r)
		for k, v := range s.Messages {
			out.Messages[k] += v
		}
		for k, v := range s.Bytes {
			out.Bytes[k] += v
		}
	}
	return out
}

// ResetStats zeroes all traffic counters.
func (w *World) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for r := range w.stats {
		w.stats[r] = newStats()
	}
}

// Rank is one participant's handle into the world. Methods on Rank are
// called from that rank's goroutine only.
type Rank struct {
	w  *World
	ID int
}

// Rank returns the handle for rank id.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.N {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", id, w.N))
	}
	return &Rank{w: w, ID: id}
}

// N returns the world size.
func (r *Rank) N() int { return r.w.N }

func (r *Rank) send(dst int, kind Kind, msg any, bytes float64) error {
	if dst < 0 || dst >= r.w.N {
		return fmt.Errorf("comm: rank %d sending to invalid rank %d", r.ID, dst)
	}
	if r.w.linkFailed(r.ID, dst) {
		return fmt.Errorf("comm: link %d->%d failed", r.ID, dst)
	}
	r.w.account(r.ID, kind, bytes)
	select {
	case r.w.boxes[dst][r.ID] <- envelope{src: r.ID, payload: msg}:
		return nil
	case <-time.After(r.w.RecvTimeout):
		return fmt.Errorf("comm: send %d->%d timed out (mailbox full)", r.ID, dst)
	}
}

func (r *Rank) recv(src int) (any, error) {
	if src < 0 || src >= r.w.N {
		return nil, fmt.Errorf("comm: rank %d receiving from invalid rank %d", r.ID, src)
	}
	select {
	case env := <-r.w.boxes[r.ID][src]:
		return env.payload, nil
	case <-time.After(r.w.RecvTimeout):
		return nil, fmt.Errorf("comm: recv on rank %d from %d timed out", r.ID, src)
	}
}

// Send delivers msg to dst, accounting bytes under SendRecv.
func (r *Rank) Send(dst int, msg any, bytes float64) error {
	return r.send(dst, KindSendRecv, msg, bytes)
}

// Recv blocks for the next message from src.
func (r *Rank) Recv(src int) (any, error) { return r.recv(src) }

// SendRecv performs the ring step: send msg to dst and receive the
// in-flight message from src. It is safe for all ranks to call this
// concurrently in a ring because mailboxes are buffered.
func (r *Rank) SendRecv(dst, src int, msg any, bytes float64) (any, error) {
	if err := r.send(dst, KindSendRecv, msg, bytes); err != nil {
		return nil, err
	}
	return r.recv(src)
}

// All2All sends msgs[i] to rank i (msgs[self] is returned locally without
// touching the network) and returns the slice of messages received from each
// rank, indexed by source. bytes[i] is the accounted payload of msgs[i].
func (r *Rank) All2All(msgs []any, bytes []float64) ([]any, error) {
	n := r.w.N
	if len(msgs) != n || len(bytes) != n {
		return nil, fmt.Errorf("comm: all2all on rank %d got %d msgs and %d sizes, want %d",
			r.ID, len(msgs), len(bytes), n)
	}
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.send(dst, KindAll2All, msgs[dst], bytes[dst]); err != nil {
			return nil, err
		}
	}
	out := make([]any, n)
	out[r.ID] = msgs[r.ID]
	for src := 0; src < n; src++ {
		if src == r.ID {
			continue
		}
		m, err := r.recv(src)
		if err != nil {
			return nil, err
		}
		out[src] = m
	}
	return out, nil
}

// AllGather broadcasts msg to every peer and returns all ranks'
// contributions indexed by source (including the local one).
func (r *Rank) AllGather(msg any, bytes float64) ([]any, error) {
	n := r.w.N
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.send(dst, KindAllGather, msg, bytes); err != nil {
			return nil, err
		}
	}
	out := make([]any, n)
	out[r.ID] = msg
	for src := 0; src < n; src++ {
		if src == r.ID {
			continue
		}
		m, err := r.recv(src)
		if err != nil {
			return nil, err
		}
		out[src] = m
	}
	return out, nil
}

// AllReduceSum sums float64 vectors element-wise across ranks. It is used by
// the tensor-parallel functional comparison; bytes accounts one send of the
// local vector per peer (ring-allreduce traffic is modeled analytically in
// the perf package, not here).
func (r *Rank) AllReduceSum(vec []float64, bytes float64) ([]float64, error) {
	gathered, err := r.AllGather(vec, bytes)
	if err != nil {
		return nil, err
	}
	// Undo the AllGather accounting and book it as AllReduce instead.
	r.w.mu.Lock()
	st := r.w.stats[r.ID]
	st.Messages[KindAllGather] -= int64(r.w.N - 1)
	st.Bytes[KindAllGather] -= bytes * float64(r.w.N-1)
	st.Messages[KindAllReduce] += int64(r.w.N - 1)
	st.Bytes[KindAllReduce] += bytes * float64(r.w.N-1)
	r.w.mu.Unlock()
	out := make([]float64, len(vec))
	for _, g := range gathered {
		gv, ok := g.([]float64)
		if !ok || len(gv) != len(vec) {
			return nil, fmt.Errorf("comm: allreduce type/shape mismatch on rank %d", r.ID)
		}
		for i, x := range gv {
			out[i] += x
		}
	}
	return out, nil
}

// Barrier blocks until every rank has entered it. Implemented as an
// AllGather of empty payloads with zero accounted bytes.
func (r *Rank) Barrier() error {
	_, err := r.AllGather(nil, 0)
	if err != nil {
		return fmt.Errorf("comm: barrier failed on rank %d: %w", r.ID, err)
	}
	// Remove the barrier's bookkeeping noise from the gather counters.
	r.w.mu.Lock()
	st := r.w.stats[r.ID]
	st.Messages[KindAllGather] -= int64(r.w.N - 1)
	r.w.mu.Unlock()
	return nil
}

// Run executes fn concurrently on every rank and waits for all to finish.
// The first non-nil error (lowest rank wins ties) is returned.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, w.N)
	var wg sync.WaitGroup
	for i := 0; i < w.N; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
				}
			}()
			errs[id] = fn(w.Rank(id))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect executes fn on every rank and returns each rank's result,
// indexed by rank id, failing on the first error.
func RunCollect[T any](w *World, fn func(r *Rank) (T, error)) ([]T, error) {
	out := make([]T, w.N)
	err := w.Run(func(r *Rank) error {
		v, err := fn(r)
		if err != nil {
			return err
		}
		out[r.ID] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
