// Package comm provides the collective-communication substrate the
// ring-attention algorithms run on. A World is a group of N CP ranks
// connected by a pluggable point-to-point transport (comm/transport): the
// in-memory mailbox transport runs every rank as a goroutine in one process
// (the seed engine's behavior, unchanged), while the TCP transport connects
// ranks living in separate OS processes through the deterministic wire
// codec. The primitives mirror the NCCL surface the paper uses —
// point-to-point SendRecv for the ring loop, All2All for restoring pass-Q
// partial outputs, AllGather for the all-gather pass-KV baseline, and
// AllReduce for the tensor-parallel comparison — while recording
// per-collective message and byte counts so tests can check the paper's
// communication-cost claims (Table 2) against actually-transferred bytes.
//
// Every receive carries a timeout so a bug that would deadlock a real
// cluster fails the test quickly instead, and links can be failed
// explicitly to exercise error paths. All communication errors name the
// directed link uniformly as src->dst.
package comm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
)

// Kind labels a collective family for accounting.
type Kind string

const (
	KindSendRecv  Kind = "sendrecv"
	KindAll2All   Kind = "all2all"
	KindAllGather Kind = "allgather"
	KindAllReduce Kind = "allreduce"
	KindBroadcast Kind = "broadcast"
)

// DefaultRecvTimeout bounds how long a rank waits for a message before
// reporting a communication error. Functional tests are fast; a second of
// silence means a peer died or the algorithm deadlocked.
const DefaultRecvTimeout = 10 * time.Second

// Option configures a World at construction time.
type Option func(*World)

// WithRecvTimeout overrides DefaultRecvTimeout for every send/receive on the
// World. Long batched-decode soak tests and slow CI machines set this higher
// than the default; fault-injection tests set it lower so failures surface
// quickly. Non-positive values are ignored.
func WithRecvTimeout(d time.Duration) Option {
	return func(w *World) {
		if d > 0 {
			w.RecvTimeout = d
		}
	}
}

// Stats aggregates traffic counters for one rank (or, via TotalStats, all
// locally hosted ranks).
type Stats struct {
	Messages map[Kind]int64
	Bytes    map[Kind]float64
}

func newStats() *Stats {
	return &Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
}

// TotalBytes sums bytes across all collective kinds in sorted-kind order,
// so the float accumulation is bit-identical across runs.
func (s Stats) TotalBytes() float64 {
	kinds := make([]string, 0, len(s.Bytes))
	for k := range s.Bytes {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var t float64
	for _, k := range kinds {
		t += s.Bytes[Kind(k)]
	}
	return t
}

// TotalMessages sums message counts across all collective kinds.
func (s Stats) TotalMessages() int64 {
	var t int64
	for _, m := range s.Messages {
		t += m
	}
	return t
}

// Add accumulates other into s (used when aggregating per-rank snapshots
// across processes).
func (s *Stats) Add(other Stats) {
	for k, v := range other.Messages {
		s.Messages[k] += v
	}
	for k, v := range other.Bytes {
		s.Bytes[k] += v
	}
}

// World is a process group of N ranks over one transport. In a distributed
// cluster each process holds its own World over the shared TCP transport;
// its stats then cover the locally hosted rank's traffic only.
type World struct {
	N           int
	RecvTimeout time.Duration

	t     transport.Transport
	local []int

	mu    sync.Mutex
	stats []*Stats // per sending rank
	links map[[2]int]*linkAgg
}

// linkAgg is one directed link's modeled traffic (accounted bytes, not wire
// bytes).
type linkAgg struct {
	msgs  int64
	bytes float64
}

// NewWorld creates an in-process group with n ranks over the mailbox
// transport.
func NewWorld(n int, opts ...Option) *World {
	if n <= 0 {
		panic(fmt.Sprintf("comm: non-positive world size %d", n))
	}
	return NewWorldOver(transport.NewMem(n), opts...)
}

// NewWorldOver wraps an existing transport (for distributed ranks: the TCP
// mesh this process joined).
func NewWorldOver(t transport.Transport, opts ...Option) *World {
	w := &World{
		N:           t.WorldSize(),
		RecvTimeout: DefaultRecvTimeout,
		t:           t,
		local:       t.LocalRanks(),
		links:       make(map[[2]int]*linkAgg),
	}
	for _, opt := range opts {
		opt(w)
	}
	w.stats = make([]*Stats, w.N)
	for i := range w.stats {
		w.stats[i] = newStats()
	}
	return w
}

// Transport returns the delivery layer (e.g. to read TCP wire counters).
func (w *World) Transport() transport.Transport { return w.t }

// LocalRanks lists the ranks hosted in this process.
func (w *World) LocalRanks() []int { return append([]int(nil), w.local...) }

// Failures surfaces the transport's asynchronous link-fault events (dead
// peer connections, failed heartbeats, injected faults). The channel closes
// when the transport closes. Serving layers watch it to start recovery
// while the cluster is idle, instead of learning about a dead rank only
// when the next collective fails.
func (w *World) Failures() <-chan transport.FailureEvent { return w.t.Failures() }

// FailLink marks the directed link src->dst as failed; subsequent sends on
// it return an error.
func (w *World) FailLink(src, dst int) { w.t.FailLink(src, dst) }

// HealLink restores a previously failed link.
func (w *World) HealLink(src, dst int) { w.t.HealLink(src, dst) }

func (w *World) account(src, dst int, kind Kind, bytes float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats[src].Messages[kind]++
	w.stats[src].Bytes[kind] += bytes
	key := [2]int{src, dst}
	agg := w.links[key]
	if agg == nil {
		agg = &linkAgg{}
		w.links[key] = agg
	}
	agg.msgs++
	agg.bytes += bytes
}

// RankStats returns a snapshot of rank r's send-side traffic counters.
func (w *World) RankStats(r int) Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
	for k, v := range w.stats[r].Messages {
		out.Messages[k] = v
	}
	for k, v := range w.stats[r].Bytes {
		out.Bytes[k] = v
	}
	return out
}

// TotalStats returns traffic summed over all ranks hosted in this process
// (all ranks for the in-memory transport).
func (w *World) TotalStats() Stats {
	out := Stats{Messages: make(map[Kind]int64), Bytes: make(map[Kind]float64)}
	for r := 0; r < w.N; r++ {
		s := w.RankStats(r)
		out.Add(s)
	}
	return out
}

// LinkStats snapshots per-directed-link traffic: the modeled bytes the
// collectives account, merged with the transport's wire-level frame/byte
// counters (TCP only; the mailbox transport moves no wire bytes). Sorted by
// (src, dst).
func (w *World) LinkStats() []wire.LinkStat {
	merged := make(map[[2]int]*wire.LinkStat)
	w.mu.Lock()
	for key, agg := range w.links {
		merged[key] = &wire.LinkStat{Src: key[0], Dst: key[1], Messages: agg.msgs, Bytes: agg.bytes}
	}
	w.mu.Unlock()
	for _, ws := range w.t.WireLinks() {
		key := [2]int{ws.Src, ws.Dst}
		ls := merged[key]
		if ls == nil {
			ls = &wire.LinkStat{Src: ws.Src, Dst: ws.Dst}
			merged[key] = ls
		}
		ls.WireMsgs = ws.WireMsgs
		ls.WireBytes = ws.WireBytes
	}
	keys := make([][2]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]wire.LinkStat, len(keys))
	for i, k := range keys {
		out[i] = *merged[k]
	}
	return out
}

// ResetStats zeroes all traffic counters.
func (w *World) ResetStats() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for r := range w.stats {
		w.stats[r] = newStats()
	}
	w.links = make(map[[2]int]*linkAgg)
}

// Rank is one participant's handle into the world. At most one operation
// may be in flight per rank at a time: methods are normally called from
// that rank's goroutine, but a rank may hand a single call to a helper
// goroutine (the ring's communication/compute overlap does this) as long
// as it synchronizes on completion before issuing the next one.
type Rank struct {
	w  *World
	ID int
}

// Rank returns the handle for rank id.
func (w *World) Rank(id int) *Rank {
	if id < 0 || id >= w.N {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", id, w.N))
	}
	return &Rank{w: w, ID: id}
}

// N returns the world size.
func (r *Rank) N() int { return r.w.N }

func (r *Rank) send(dst int, kind Kind, msg any, bytes float64) error {
	if dst < 0 || dst >= r.w.N {
		return fmt.Errorf("comm: send %d->%d: destination outside [0,%d)", r.ID, dst, r.w.N)
	}
	if err := r.w.t.Send(r.ID, dst, msg, r.w.RecvTimeout); err != nil {
		switch {
		case errors.Is(err, transport.ErrLinkFailed):
			return linkFailedErr(r.ID, dst, err)
		case errors.Is(err, transport.ErrTimeout):
			return fmt.Errorf("comm: send %d->%d timed out%s", r.ID, dst, causeSuffix(err))
		default:
			return fmt.Errorf("comm: send %d->%d: %v", r.ID, dst, err)
		}
	}
	r.w.account(r.ID, dst, kind, bytes)
	return nil
}

func (r *Rank) recv(src int) (any, error) {
	if src < 0 || src >= r.w.N {
		return nil, fmt.Errorf("comm: recv %d->%d: source outside [0,%d)", src, r.ID, r.w.N)
	}
	msg, err := r.w.t.Recv(r.ID, src, r.w.RecvTimeout)
	if err != nil {
		switch {
		case errors.Is(err, transport.ErrLinkFailed):
			return nil, linkFailedErr(src, r.ID, err)
		case errors.Is(err, transport.ErrTimeout):
			return nil, fmt.Errorf("comm: recv %d->%d timed out after %v%s", src, r.ID, r.w.RecvTimeout, causeSuffix(err))
		default:
			return nil, fmt.Errorf("comm: recv %d->%d: %v", src, r.ID, err)
		}
	}
	return msg, nil
}

// linkFailedErr names a dead directed link, appending the transport-level
// cause (e.g. the socket error) when one exists.
func linkFailedErr(src, dst int, err error) error {
	return fmt.Errorf("comm: link %d->%d failed%s", src, dst, causeSuffix(err))
}

func causeSuffix(err error) string {
	if c := transport.Cause(err); c != nil {
		return ": " + c.Error()
	}
	return ""
}

// Send delivers msg to dst, accounting bytes under SendRecv.
func (r *Rank) Send(dst int, msg any, bytes float64) error {
	return r.send(dst, KindSendRecv, msg, bytes)
}

// Recv blocks for the next message from src.
func (r *Rank) Recv(src int) (any, error) { return r.recv(src) }

// SendRecv performs the ring step: send msg to dst and receive the
// in-flight message from src. It is safe for all ranks to call this
// concurrently in a ring because the transport buffers sends.
func (r *Rank) SendRecv(dst, src int, msg any, bytes float64) (any, error) {
	if err := r.send(dst, KindSendRecv, msg, bytes); err != nil {
		return nil, err
	}
	return r.recv(src)
}

// All2All sends msgs[i] to rank i (msgs[self] is returned locally without
// touching the network) and returns the slice of messages received from each
// rank, indexed by source. bytes[i] is the accounted payload of msgs[i].
func (r *Rank) All2All(msgs []any, bytes []float64) ([]any, error) {
	n := r.w.N
	if len(msgs) != n || len(bytes) != n {
		return nil, fmt.Errorf("comm: all2all on rank %d got %d msgs and %d sizes, want %d",
			r.ID, len(msgs), len(bytes), n)
	}
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.send(dst, KindAll2All, msgs[dst], bytes[dst]); err != nil {
			return nil, err
		}
	}
	out := make([]any, n)
	out[r.ID] = msgs[r.ID]
	for src := 0; src < n; src++ {
		if src == r.ID {
			continue
		}
		m, err := r.recv(src)
		if err != nil {
			return nil, err
		}
		out[src] = m
	}
	return out, nil
}

// AllGather broadcasts msg to every peer and returns all ranks'
// contributions indexed by source (including the local one).
func (r *Rank) AllGather(msg any, bytes float64) ([]any, error) {
	n := r.w.N
	for dst := 0; dst < n; dst++ {
		if dst == r.ID {
			continue
		}
		if err := r.send(dst, KindAllGather, msg, bytes); err != nil {
			return nil, err
		}
	}
	out := make([]any, n)
	out[r.ID] = msg
	for src := 0; src < n; src++ {
		if src == r.ID {
			continue
		}
		m, err := r.recv(src)
		if err != nil {
			return nil, err
		}
		out[src] = m
	}
	return out, nil
}

// AllReduceSum sums float64 vectors element-wise across ranks. It is used by
// the tensor-parallel functional comparison; bytes accounts one send of the
// local vector per peer (ring-allreduce traffic is modeled analytically in
// the perf package, not here).
func (r *Rank) AllReduceSum(vec []float64, bytes float64) ([]float64, error) {
	gathered, err := r.AllGather(vec, bytes)
	if err != nil {
		return nil, err
	}
	// Undo the AllGather accounting and book it as AllReduce instead.
	r.w.mu.Lock()
	st := r.w.stats[r.ID]
	st.Messages[KindAllGather] -= int64(r.w.N - 1)
	st.Bytes[KindAllGather] -= bytes * float64(r.w.N-1)
	st.Messages[KindAllReduce] += int64(r.w.N - 1)
	st.Bytes[KindAllReduce] += bytes * float64(r.w.N-1)
	r.w.mu.Unlock()
	out := make([]float64, len(vec))
	for _, g := range gathered {
		gv, ok := g.([]float64)
		if !ok || len(gv) != len(vec) {
			return nil, fmt.Errorf("comm: allreduce type/shape mismatch on rank %d", r.ID)
		}
		for i, x := range gv {
			out[i] += x
		}
	}
	return out, nil
}

// Barrier blocks until every rank has entered it. Implemented as an
// AllGather of empty payloads with zero accounted bytes.
func (r *Rank) Barrier() error {
	_, err := r.AllGather(nil, 0)
	if err != nil {
		return fmt.Errorf("comm: barrier failed on rank %d: %w", r.ID, err)
	}
	// Remove the barrier's bookkeeping noise from the gather counters.
	r.w.mu.Lock()
	st := r.w.stats[r.ID]
	st.Messages[KindAllGather] -= int64(r.w.N - 1)
	r.w.mu.Unlock()
	return nil
}

// Run executes fn concurrently on every rank hosted in this process and
// waits for all to finish. The first non-nil error (lowest rank wins ties)
// is returned. For the in-memory transport that is every rank; a
// distributed worker hosts one.
func (w *World) Run(fn func(r *Rank) error) error {
	errs := make([]error, w.N)
	var wg sync.WaitGroup
	for _, i := range w.local {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("comm: rank %d panicked: %v", id, p)
				}
			}()
			errs[id] = fn(w.Rank(id))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCollect executes fn on every locally hosted rank and returns each
// rank's result, indexed by rank id, failing on the first error.
func RunCollect[T any](w *World, fn func(r *Rank) (T, error)) ([]T, error) {
	out := make([]T, w.N)
	err := w.Run(func(r *Rank) error {
		v, err := fn(r)
		if err != nil {
			return err
		}
		out[r.ID] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
