package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm/wire"
)

// Rendezvous / liveness defaults.
const (
	DefaultRendezvousTimeout = 15 * time.Second
	DefaultHeartbeatEvery    = 500 * time.Millisecond
	// DefaultHeartbeatMisses is how many consecutive heartbeat periods a
	// link may stay silent before the receiver declares it dead. The miss
	// window (misses x period) also bounds each heartbeat write.
	DefaultHeartbeatMisses = 3
	DefaultDialTimeout     = 2 * time.Second
)

// TCPConfig parameterizes one rank's entry into a TCP mesh.
type TCPConfig struct {
	World int      // total rank count
	Rank  int      // this process's rank, [0, World)
	Addrs []string // Addrs[i] = rank i's listen address

	// Listener is this rank's bound listener. Nil listens on Addrs[Rank];
	// callers that bind :0 themselves (to learn the port before sharing it)
	// pass the listener in and put the resolved address in Addrs.
	Listener net.Listener

	// ConfigSum is the model/config digest exchanged in the Hello handshake;
	// mismatched peers are rejected at rendezvous, not discovered as skewed
	// logits later.
	ConfigSum uint64

	// Epoch is the cluster incarnation this rank joins (0 is normalized to
	// 1). Handshakes require equal epochs; a peer on a newer epoch makes
	// Join fail with an EpochError so the rejoin loop can converge on it,
	// while stale dialers are answered with our Hello and turned away.
	Epoch uint64

	// ExpectCtrl makes Join also wait for the coordinator's control
	// connection (a Hello with rank -1) before returning.
	ExpectCtrl bool

	RendezvousTimeout time.Duration // mesh-formation deadline; default 15s
	HeartbeatEvery    time.Duration // idle-link heartbeat period; default 500ms
	// HeartbeatMisses is the liveness miss threshold: a link that delivers
	// no frame for HeartbeatMisses consecutive heartbeat periods is downed
	// with a named cause (straggler or dead peer). Negative disables
	// read-side liveness; 0 means DefaultHeartbeatMisses.
	HeartbeatMisses int
	MaxFrame        int // per-frame byte cap; default wire.DefaultMaxFrame
}

// missWindow is the read-idle (and heartbeat-write) deadline: how long a
// link may stay silent before it is declared dead. Zero disables it.
func (c *TCPConfig) missWindow() time.Duration {
	if c.HeartbeatMisses < 0 {
		return 0
	}
	return time.Duration(c.HeartbeatMisses) * c.HeartbeatEvery
}

func (c *TCPConfig) applyDefaults() error {
	if c.World <= 0 {
		return fmt.Errorf("transport: non-positive world size %d", c.World)
	}
	if c.Rank < 0 || c.Rank >= c.World {
		return fmt.Errorf("transport: rank %d outside world [0,%d)", c.Rank, c.World)
	}
	if len(c.Addrs) != c.World {
		return fmt.Errorf("transport: %d addresses for world size %d", len(c.Addrs), c.World)
	}
	if c.RendezvousTimeout <= 0 {
		c.RendezvousTimeout = DefaultRendezvousTimeout
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if c.HeartbeatMisses == 0 {
		c.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if c.HeartbeatMisses == 1 {
		// A one-period window races the sender's own ticker: a healthy idle
		// link would flap. Two periods is the tightest sound threshold.
		return fmt.Errorf("transport: heartbeat miss threshold must be >= 2 (or < 0 to disable), got 1")
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = wire.DefaultMaxFrame
	}
	if c.Epoch == 0 {
		c.Epoch = 1
	}
	return nil
}

// link is one established peer connection (one conn per unordered rank
// pair, carrying both directions).
type link struct {
	peer int
	conn net.Conn

	wmu sync.Mutex // serializes frame writes (rank goroutine + heartbeat)

	downOnce sync.Once
	downCh   chan struct{}
	cause    atomic.Value // error
	onDown   func(peer int, cause error)

	outMsgs, outBytes int64 // atomics: frames/bytes written
	inMsgs, inBytes   int64 // atomics: frames/bytes read
	tapSeq            int64 // atomic: data frames offered to the frame tap
}

func (l *link) markDown(err error) {
	l.downOnce.Do(func() {
		if err == nil {
			err = errors.New("connection closed")
		}
		l.cause.Store(err)
		close(l.downCh)
		l.conn.Close()
		if l.onDown != nil {
			l.onDown(l.peer, err)
		}
	})
}

func (l *link) down() bool {
	select {
	case <-l.downCh:
		return true
	default:
		return false
	}
}

func (l *link) downCause() error {
	if err, ok := l.cause.Load().(error); ok {
		return err
	}
	return nil
}

// TCP is the multi-process transport: this process hosts exactly one rank,
// connected to every peer rank by a TCP connection carrying wire-codec
// frames.
type TCP struct {
	cfg    TCPConfig
	links  map[int]*link
	inbox  map[int]chan any
	inject failMap
	events *eventSink
	tap    atomic.Pointer[FrameTap]

	closeOnce sync.Once
	closedCh  chan struct{}
}

// FrameTap intercepts every encoded data frame this rank sends: it receives
// the destination rank, the frame's per-link sequence number (data frames
// only — heartbeats bypass the tap, so the numbering is a deterministic
// function of the protocol traffic), and the complete on-wire bytes (length
// prefix, payload, CRC trailer). Whatever byte slices it returns are written
// in order; returning the input unchanged is a pass-through, mutated or
// truncated bytes simulate in-flight damage (caught by the receiver's CRC
// check), a repeated slice simulates duplicate delivery, and an empty result
// silently drops the frame. The chaos layer is the only intended caller.
type FrameTap func(dst int, seq int64, frame []byte) [][]byte

// SetFrameTap installs (or, with nil, removes) the transport's frame tap.
// Install it before traffic starts; heartbeat frames never pass through it.
func (t *TCP) SetFrameTap(tap FrameTap) {
	if tap == nil {
		t.tap.Store(nil)
		return
	}
	t.tap.Store(&tap)
}

// WorldSize implements Transport.
func (t *TCP) WorldSize() int { return t.cfg.World }

// LocalRanks implements Transport: a TCP process hosts one rank.
func (t *TCP) LocalRanks() []int { return []int{t.cfg.Rank} }

// FailLink implements Transport (send-side fault injection, mirroring Mem).
func (t *TCP) FailLink(src, dst int) {
	t.inject.fail(src, dst)
	t.events.publish(FailureEvent{Peer: dst, Cause: fmt.Errorf("injected link failure %d->%d", src, dst)})
}

// HealLink implements Transport.
func (t *TCP) HealLink(src, dst int) { t.inject.heal(src, dst) }

// DropLink forcibly downs the established connection to peer with the given
// cause, as if the wire were cut: the conn closes, so BOTH ends observe the
// failure (the peer's reader gets a reset/EOF) — unlike FailLink, which is
// send-side-only injection. The chaos layer's link-drop and partition faults
// use it to make a cut observable to the whole mesh.
func (t *TCP) DropLink(peer int, cause error) {
	if cause == nil {
		cause = fmt.Errorf("link to rank %d dropped", peer)
	}
	if l := t.links[peer]; l != nil {
		l.markDown(cause)
	}
}

// Failures implements Transport: dead peer connections (reader EOF, reset,
// failed heartbeat write) and injected faults surface here, so a process
// idling between commands still detects a crashed peer within a couple of
// heartbeat periods instead of at its next ring pass.
func (t *TCP) Failures() <-chan FailureEvent { return t.events.ch }

// Send implements Transport: encodes payload as one frame on the peer link.
func (t *TCP) Send(src, dst int, payload any, timeout time.Duration) error {
	if src != t.cfg.Rank {
		return fmt.Errorf("transport: rank %d is not hosted by this process (local %d)", src, t.cfg.Rank)
	}
	if t.inject.failed(src, dst) {
		return ErrLinkFailed
	}
	l := t.links[dst]
	if l == nil {
		return failWith(ErrLinkFailed, fmt.Errorf("no link to rank %d", dst))
	}
	if l.down() {
		return failWith(ErrLinkFailed, l.downCause())
	}
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return failWith(ErrLinkFailed, err)
	}
	var n int
	var err error
	if tp := t.tap.Load(); tp != nil {
		n, err = t.sendTapped(l, dst, payload, *tp)
	} else {
		n, err = wire.WriteFrame(l.conn, payload) //cplint:allow lock-send wmu exists to serialize frame writes; a stalled write kills the link via deadline
	}
	atomic.AddInt64(&l.outMsgs, 1)
	atomic.AddInt64(&l.outBytes, int64(n))
	if err != nil {
		// Any write error — timeouts included — may have left a partial
		// frame on the stream; the framing is unrecoverable, so the link
		// dies either way. Timeouts still surface as ErrTimeout.
		l.markDown(err)
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return failWith(ErrTimeout, err)
		}
		return failWith(ErrLinkFailed, err)
	}
	return nil
}

// sendTapped routes one encoded frame through the installed frame tap and
// writes whatever it returns. Called with l.wmu held.
func (t *TCP) sendTapped(l *link, dst int, payload any, tap FrameTap) (int, error) {
	body, err := wire.AppendFrame(make([]byte, 0, 256), payload)
	if err != nil {
		return 0, err
	}
	seq := atomic.AddInt64(&l.tapSeq, 1) - 1
	total := 0
	for _, f := range tap(dst, seq, body) {
		n, err := l.conn.Write(f)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Recv implements Transport: returns the next decoded frame from src.
// Buffered frames are drained even after the link dies; once empty, a dead
// link fails immediately instead of burning the whole timeout.
func (t *TCP) Recv(dst, src int, timeout time.Duration) (any, error) {
	if dst != t.cfg.Rank {
		return nil, fmt.Errorf("transport: rank %d is not hosted by this process (local %d)", dst, t.cfg.Rank)
	}
	ch := t.inbox[src]
	l := t.links[src]
	if ch == nil || l == nil {
		return nil, failWith(ErrLinkFailed, fmt.Errorf("no link from rank %d", src))
	}
	select {
	case v := <-ch:
		return v, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case v := <-ch:
		return v, nil
	case <-l.downCh:
		// The reader may have enqueued frames before dying.
		select {
		case v := <-ch:
			return v, nil
		default:
			return nil, failWith(ErrLinkFailed, l.downCause())
		}
	case <-t.closedCh:
		return nil, failWith(ErrLinkFailed, errors.New("transport closed"))
	case <-timer.C:
		return nil, ErrTimeout
	}
}

// WireLinks implements Transport: two directed entries per peer link.
func (t *TCP) WireLinks() []wire.LinkStat {
	peers := make([]int, 0, len(t.links))
	for p := range t.links {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	out := make([]wire.LinkStat, 0, 2*len(peers))
	for _, p := range peers {
		l := t.links[p]
		out = append(out,
			wire.LinkStat{Src: t.cfg.Rank, Dst: p,
				WireMsgs: atomic.LoadInt64(&l.outMsgs), WireBytes: atomic.LoadInt64(&l.outBytes)},
			wire.LinkStat{Src: p, Dst: t.cfg.Rank,
				WireMsgs: atomic.LoadInt64(&l.inMsgs), WireBytes: atomic.LoadInt64(&l.inBytes)},
		)
	}
	return out
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		// Silence the event sink first: an orderly local close is not a
		// peer failure, and the links downed below must not publish one.
		t.events.close()
		close(t.closedCh)
		for _, l := range t.links {
			l.markDown(errors.New("transport closed"))
		}
	})
	return nil
}

func (t *TCP) hello() *wire.Hello {
	return &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: t.cfg.World,
		Rank: t.cfg.Rank, ConfigSum: t.cfg.ConfigSum, Epoch: t.cfg.Epoch}
}

// validateHello checks a peer handshake frame against this mesh's identity.
func validateHello(h *wire.Hello, world int, configSum uint64) error {
	if h.Magic != wire.Magic {
		return fmt.Errorf("bad magic %#x", h.Magic)
	}
	if h.Version != wire.Version {
		return fmt.Errorf("protocol version %d, want %d", h.Version, wire.Version)
	}
	if h.World != world {
		return fmt.Errorf("world size %d, want %d", h.World, world)
	}
	if h.ConfigSum != configSum {
		return fmt.Errorf("config digest %#x, want %#x (mismatched model/seed/flags)", h.ConfigSum, configSum)
	}
	return nil
}

// joinConn is one accepted or dialed connection after its handshake.
type joinConn struct {
	rank  int // -1 for the coordinator control connection
	conn  net.Conn
	hello wire.Hello
}

// Join forms the mesh: listens for higher-ranked peers (and, with
// ExpectCtrl, the coordinator), dials lower-ranked peers with retry, and
// returns once every expected connection is up with readers and heartbeats
// running. The returned Ctrl is nil unless ExpectCtrl is set.
func Join(cfg TCPConfig) (*TCP, *Ctrl, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, nil, err
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, nil, fmt.Errorf("transport: rank %d listen: %w", cfg.Rank, err)
		}
	}
	t := &TCP{
		cfg:      cfg,
		links:    make(map[int]*link),
		inbox:    make(map[int]chan any),
		inject:   newFailMap(),
		events:   newEventSink(2 * cfg.World),
		closedCh: make(chan struct{}),
	}
	deadline := time.Now().Add(cfg.RendezvousTimeout)
	connCh := make(chan joinConn, cfg.World+1)
	errCh := make(chan error, cfg.World+1)
	// rzDone is closed when Join returns. Handshake goroutines deliver
	// their conn/error through it so a straggler arriving after the
	// rendezvous is over closes its conn and exits instead of blocking
	// forever on a channel nobody drains (a goroutine and fd leak under
	// repeated bad peers).
	rzDone := make(chan struct{})
	offerConn := func(jc joinConn) {
		select {
		case connCh <- jc:
		case <-rzDone:
			jc.conn.Close()
		}
	}
	offerErr := func(err error) {
		select {
		case errCh <- err:
		case <-rzDone:
		}
	}

	// Accept side: higher-ranked peers dial us; the coordinator may too.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: rendezvous over
			}
			go func(conn net.Conn) {
				conn.SetDeadline(deadline)
				v, _, err := wire.ReadFrame(conn, cfg.MaxFrame)
				if err != nil {
					if errors.Is(err, wire.ErrBadFrame) {
						// A frame that arrived but won't decode is almost
						// certainly a peer on another wire-protocol version
						// (the Hello layout itself changes between
						// versions). Ack's encoding is version-stable, so
						// the rejection still reaches them by name.
						wire.WriteFrame(conn, &wire.Ack{Err: fmt.Sprintf(
							"undecodable handshake; this side speaks wire protocol version %d", wire.Version)})
					}
					conn.Close()
					return
				}
				h, ok := v.(*wire.Hello)
				if !ok {
					conn.Close()
					return
				}
				if err := validateHello(h, cfg.World, cfg.ConfigSum); err != nil ||
					(h.Rank != -1 && (h.Rank <= cfg.Rank || h.Rank >= cfg.World)) {
					if err == nil {
						err = fmt.Errorf("unexpected rank %d dialing rank %d", h.Rank, cfg.Rank)
					}
					// Tell the dialer why before hanging up, so its error
					// names the cause instead of a bare EOF.
					wire.WriteFrame(conn, &wire.Ack{Err: err.Error()})
					conn.Close()
					offerErr(fmt.Errorf("transport: rank %d rejected peer: %v", cfg.Rank, err))
					return
				}
				if h.Epoch != cfg.Epoch {
					// Answer with our Hello either way: it carries our epoch,
					// which is all the other side needs to resolve the skew.
					wire.WriteFrame(conn, t.hello())
					conn.Close()
					if h.Epoch > cfg.Epoch {
						// We are the stale incarnation: abort this rendezvous
						// so the rejoin loop can retry at the newer epoch.
						offerErr(&EpochError{Observed: h.Epoch, Stale: cfg.Epoch})
					}
					// A stale dialer was turned away; it will adopt our epoch
					// and redial. Keep listening.
					return
				}
				if _, err := wire.WriteFrame(conn, t.hello()); err != nil {
					conn.Close()
					return
				}
				conn.SetDeadline(time.Time{})
				offerConn(joinConn{rank: h.Rank, conn: conn, hello: *h})
			}(conn)
		}
	}()

	// Dial side: we dial every lower-ranked peer, retrying while it boots.
	for j := 0; j < cfg.Rank; j++ {
		go func(j int) {
			conn, err := dialHandshake(cfg.Addrs[j], t.hello(), deadline, cfg.MaxFrame, func(h *wire.Hello) error {
				if err := validateHello(h, cfg.World, cfg.ConfigSum); err != nil {
					return err
				}
				if h.Rank != j {
					return fmt.Errorf("address %s answered as rank %d, want %d", cfg.Addrs[j], h.Rank, j)
				}
				return checkEpoch(h.Epoch, cfg.Epoch)
			})
			if err != nil {
				offerErr(fmt.Errorf("transport: rank %d dialing rank %d: %w", cfg.Rank, j, err))
				return
			}
			offerConn(joinConn{rank: j, conn: conn})
		}(j)
	}

	need := make(map[int]bool, cfg.World)
	for j := 0; j < cfg.World; j++ {
		if j != cfg.Rank {
			need[j] = true
		}
	}
	var ctrl *Ctrl
	defer close(rzDone)
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for len(need) > 0 || (cfg.ExpectCtrl && ctrl == nil) {
		select {
		case jc := <-connCh:
			if jc.rank == -1 {
				if !cfg.ExpectCtrl || ctrl != nil {
					jc.conn.Close()
					continue
				}
				ctrl = newCtrl(jc.conn, cfg.MaxFrame)
				ctrl.Peer = jc.hello
				continue
			}
			if !need[jc.rank] {
				jc.conn.Close()
				continue
			}
			delete(need, jc.rank)
			t.addLink(jc.rank, jc.conn)
		case err := <-errCh:
			ln.Close()
			t.Close()
			return nil, nil, err
		case <-timer.C:
			ln.Close()
			t.Close()
			missing := make([]int, 0, len(need))
			for j := range need {
				missing = append(missing, j)
			}
			sort.Ints(missing)
			what := fmt.Sprintf("ranks %v", missing)
			if len(missing) == 0 {
				what = "coordinator control connection"
			}
			return nil, nil, fmt.Errorf("transport: rank %d rendezvous timed out after %v waiting for %s",
				cfg.Rank, cfg.RendezvousTimeout, what)
		}
	}
	// Mesh complete: no further connections are expected on this listener.
	ln.Close()
	<-acceptDone
	return t, ctrl, nil
}

// errRetryHandshake marks a handshake reply that is wrong only transiently
// (a peer still catching up to a newer epoch); the dialer closes the conn,
// sleeps, and redials instead of failing the rendezvous.
var errRetryHandshake = errors.New("transient handshake mismatch")

// checkEpoch applies the epoch-convergence rule from the dialer's side: a
// peer on a newer epoch means we are stale (fatal EpochError — adopt and
// rejoin); a peer on an older epoch is still catching up (retry).
func checkEpoch(peer, mine uint64) error {
	switch {
	case peer == mine:
		return nil
	case peer > mine:
		return &EpochError{Observed: peer, Stale: mine}
	default:
		return fmt.Errorf("%w: peer still at epoch %d, want %d", errRetryHandshake, peer, mine)
	}
}

// dialHandshake dials addr with retry until deadline (exponential backoff
// with deterministic jitter, bounded by the retry budget), sends hello, and
// validates the peer's reply. An ErrIntegrity on the reply — the handshake
// frame was damaged in flight — is retried like any transient fault, never
// confused with the fatal ErrBadFrame version-mismatch signature.
func dialHandshake(addr string, hello *wire.Hello, deadline time.Time, maxFrame int, check func(*wire.Hello) error) (net.Conn, error) {
	var lastErr error
	bo := NewBackoff(addr)
	retry := func(err error) error {
		lastErr = err
		d, ok := bo.Next()
		if !ok {
			return bo.Exhausted(lastErr)
		}
		time.Sleep(d)
		return nil
	}
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			if lastErr == nil {
				lastErr = errors.New("rendezvous window elapsed")
			}
			return nil, lastErr
		}
		dialTO := DefaultDialTimeout
		if remain < dialTO {
			dialTO = remain
		}
		conn, err := net.DialTimeout("tcp", addr, dialTO)
		if err != nil {
			if rerr := retry(err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		conn.SetDeadline(deadline)
		if _, err := wire.WriteFrame(conn, hello); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		v, _, err := wire.ReadFrame(conn, maxFrame)
		if err != nil {
			conn.Close()
			if errors.Is(err, wire.ErrBadFrame) {
				// The peer answered with bytes we cannot decode: a
				// wire-protocol version mismatch, not a transient boot race.
				return nil, fmt.Errorf("peer handshake undecodable (mismatched wire protocol version? this side speaks %d): %v",
					wire.Version, err)
			}
			if rerr := retry(err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		switch reply := v.(type) {
		case *wire.Hello:
			if err := check(reply); err != nil {
				conn.Close()
				if errors.Is(err, errRetryHandshake) {
					if rerr := retry(err); rerr != nil {
						return nil, rerr
					}
					continue
				}
				return nil, err // identity errors are fatal, not retryable
			}
			conn.SetDeadline(time.Time{})
			return conn, nil
		case *wire.Ack:
			conn.Close()
			return nil, fmt.Errorf("peer rejected handshake: %s", reply.Err)
		default:
			conn.Close()
			return nil, fmt.Errorf("peer answered handshake with %T", v)
		}
	}
}

// addLink registers an established peer connection and starts its reader
// and heartbeat goroutines.
func (t *TCP) addLink(peer int, conn net.Conn) {
	l := &link{peer: peer, conn: conn, downCh: make(chan struct{}),
		onDown: func(peer int, cause error) {
			t.events.publish(FailureEvent{Peer: peer, Cause: cause})
		}}
	t.links[peer] = l
	ch := make(chan any, 64)
	t.inbox[peer] = ch
	go t.readLoop(l, ch)
	go t.heartbeatLoop(l)
}

// readLoop decodes frames off one link into its inbox. Heartbeats are
// dropped here, invisible to receivers. A read error (peer crash, conn
// reset, transport close, or a CRC32C integrity failure) downs the link.
// Every frame read re-arms the liveness deadline: a peer that heartbeats is
// alive, one silent for the full miss window (HeartbeatMisses periods) is
// declared dead right here rather than at the next ring pass.
func (t *TCP) readLoop(l *link, ch chan any) {
	window := t.cfg.missWindow()
	for {
		if window > 0 {
			l.conn.SetReadDeadline(time.Now().Add(window))
		}
		v, n, err := wire.ReadFrame(l.conn, t.cfg.MaxFrame)
		if err != nil {
			var ne net.Error
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("peer rank %d closed the connection", l.peer)
			} else if errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("peer rank %d missed %d heartbeats (%v silent)",
					l.peer, t.cfg.HeartbeatMisses, window)
			} else if errors.Is(err, wire.ErrIntegrity) {
				err = fmt.Errorf("frame from rank %d failed integrity check: %w", l.peer, err)
			}
			l.markDown(err)
			return
		}
		atomic.AddInt64(&l.inMsgs, 1)
		atomic.AddInt64(&l.inBytes, int64(n))
		if _, hb := v.(*wire.Heartbeat); hb {
			continue
		}
		select {
		case ch <- v:
		case <-t.closedCh:
			return
		}
	}
}

// heartbeatLoop keeps the link observably alive: a frame every
// HeartbeatEvery means a crashed or wedged peer surfaces as a write error
// (downing the link) within the miss window instead of only at the next
// ring pass.
func (t *TCP) heartbeatLoop(l *link) {
	writeWindow := t.cfg.missWindow()
	if writeWindow <= 0 {
		writeWindow = 2 * t.cfg.HeartbeatEvery
	}
	tick := time.NewTicker(t.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			l.wmu.Lock()
			l.conn.SetWriteDeadline(time.Now().Add(writeWindow))
			n, err := wire.WriteFrame(l.conn, &wire.Heartbeat{}) //cplint:allow lock-send heartbeat shares the write-serialization mutex; bounded by the write deadline above
			l.wmu.Unlock()
			atomic.AddInt64(&l.outMsgs, 1)
			atomic.AddInt64(&l.outBytes, int64(n))
			if err != nil {
				// A timed-out write may sit half-flushed on the stream;
				// framing is gone either way, so the link dies.
				l.markDown(err)
				return
			}
		case <-l.downCh:
			return
		case <-t.closedCh:
			return
		}
	}
}

// Ctrl is a framed control connection between the coordinator and one
// worker rank, carrying command/result frames with the same codec as the
// data plane.
type Ctrl struct {
	conn     net.Conn
	maxFrame int
	wmu      sync.Mutex
	Peer     wire.Hello // the remote end's handshake

	outMsgs, outBytes int64
	inMsgs, inBytes   int64
}

func newCtrl(conn net.Conn, maxFrame int) *Ctrl {
	return &Ctrl{conn: conn, maxFrame: maxFrame}
}

// DialCtrl connects the coordinator's control plane to one worker: sends
// hello (rank -1), waits for the worker's identity reply, and retries while
// the worker is still meshing. The worker must answer as expectRank.
func DialCtrl(addr string, hello *wire.Hello, expectRank int, timeout time.Duration) (*Ctrl, error) {
	if timeout <= 0 {
		timeout = DefaultRendezvousTimeout
	}
	if hello.Epoch == 0 {
		h := *hello
		h.Epoch = 1 // same normalization Join applies to TCPConfig.Epoch
		hello = &h
	}
	deadline := time.Now().Add(timeout)
	var peer wire.Hello
	conn, err := dialHandshake(addr, hello, deadline, wire.DefaultMaxFrame, func(h *wire.Hello) error {
		if err := validateHello(h, hello.World, hello.ConfigSum); err != nil {
			return err
		}
		if h.Rank != expectRank {
			return fmt.Errorf("address %s answered as rank %d, want %d", addr, h.Rank, expectRank)
		}
		if err := checkEpoch(h.Epoch, hello.Epoch); err != nil {
			// A worker on a newer epoch means this coordinator is stale; the
			// EpochError tells ConnectCluster which epoch to redial at.
			return err
		}
		peer = *h
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("transport: control dial %s: %w", addr, err)
	}
	c := newCtrl(conn, wire.DefaultMaxFrame)
	c.Peer = peer
	return c, nil
}

// Send writes one command/result frame.
func (c *Ctrl) Send(v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	n, err := wire.WriteFrame(c.conn, v) //cplint:allow lock-send wmu exists to serialize control-channel frame writes
	atomic.AddInt64(&c.outMsgs, 1)
	atomic.AddInt64(&c.outBytes, int64(n))
	return err
}

// Recv reads the next frame; timeout 0 blocks indefinitely (a worker idling
// between commands). io.EOF reports an orderly peer shutdown.
func (c *Ctrl) Recv(timeout time.Duration) (any, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := c.conn.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	v, n, err := wire.ReadFrame(c.conn, c.maxFrame)
	atomic.AddInt64(&c.inMsgs, 1)
	atomic.AddInt64(&c.inBytes, int64(n))
	if err != nil {
		return nil, err
	}
	return v, nil
}

// WireTotals returns the control link's cumulative frame and byte counts,
// both directions combined.
func (c *Ctrl) WireTotals() (msgs, bytes int64) {
	return atomic.LoadInt64(&c.outMsgs) + atomic.LoadInt64(&c.inMsgs),
		atomic.LoadInt64(&c.outBytes) + atomic.LoadInt64(&c.inBytes)
}

// Close hangs up the control connection.
func (c *Ctrl) Close() error { return c.conn.Close() }
