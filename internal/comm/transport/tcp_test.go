package transport

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm/wire"
)

// loopbackMesh forms an n-rank TCP mesh on 127.0.0.1 with pre-bound :0
// listeners (no port races) and returns the transports.
func loopbackMesh(t *testing.T, n int, configSum uint64) []*TCP {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	out := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tp, _, err := Join(TCPConfig{
				World: n, Rank: i, Addrs: addrs, Listener: lns[i],
				ConfigSum: configSum, RendezvousTimeout: 10 * time.Second,
			})
			out[i], errs[i] = tp, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d join: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, tp := range out {
			if tp != nil {
				tp.Close()
			}
		}
	})
	return out
}

func TestTCPMeshSendRecv(t *testing.T) {
	n := 3
	mesh := loopbackMesh(t, n, 0x1234)
	// Ring hop: every rank sends a tagged payload to next, receives from prev.
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			next, prev := (i+1)%n, (i-1+n)%n
			if err := mesh[i].Send(i, next, []int{i * 10}, time.Second); err != nil {
				errs[i] = err
				return
			}
			v, err := mesh[i].Recv(i, prev, 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			got := v.([]int)
			if len(got) != 1 || got[0] != prev*10 {
				errs[i] = fmt.Errorf("rank %d got %v from %d", i, got, prev)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	// Wire counters saw the traffic (heartbeats may add more).
	links := mesh[0].WireLinks()
	if len(links) != 2*(n-1) {
		t.Fatalf("rank 0 has %d link stats, want %d", len(links), 2*(n-1))
	}
	var sent int64
	for _, l := range links {
		if l.Src == 0 {
			sent += l.WireBytes
		}
	}
	if sent == 0 {
		t.Fatal("no wire bytes counted on rank 0's outgoing links")
	}
}

func TestTCPFIFOOrdering(t *testing.T) {
	mesh := loopbackMesh(t, 2, 7)
	const k = 50
	done := make(chan error, 1)
	go func() {
		for i := 0; i < k; i++ {
			if err := mesh[0].Send(0, 1, []int{i}, time.Second); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < k; i++ {
		v, err := mesh[1].Recv(1, 0, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.([]int)[0]; got != i {
			t.Fatalf("out of order: got %d want %d", got, i)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPInjectedLinkFailure(t *testing.T) {
	mesh := loopbackMesh(t, 2, 7)
	mesh[0].FailLink(0, 1)
	err := mesh[0].Send(0, 1, nil, time.Second)
	if !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("send over injected-failed link: %v", err)
	}
	mesh[0].HealLink(0, 1)
	if err := mesh[0].Send(0, 1, []int{1}, time.Second); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	if _, err := mesh[1].Recv(1, 0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	mesh := loopbackMesh(t, 2, 7)
	start := time.Now()
	_, err := mesh[0].Recv(0, 1, 100*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("recv from silent peer: %v", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v", waited)
	}
}

// TestTCPPeerDeath checks the failure semantics the ring relies on: when a
// peer process dies (here: its transport closes), pending and future
// receives fail with a link error quickly — not a silent hang — and
// buffered frames are still drained first.
func TestTCPPeerDeath(t *testing.T) {
	mesh := loopbackMesh(t, 2, 7)
	// Rank 1 sends one frame, then dies.
	if err := mesh[1].Send(1, 0, []int{42}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the frame land in rank 0's inbox before the peer dies.
	deadlineOK := false
	for i := 0; i < 100; i++ {
		if v, err := mesh[0].Recv(0, 1, 100*time.Millisecond); err == nil {
			if v.([]int)[0] != 42 {
				t.Fatalf("got %v", v)
			}
			deadlineOK = true
			break
		}
	}
	if !deadlineOK {
		t.Fatal("buffered frame never arrived")
	}
	mesh[1].Close()
	// The reader notices the closed conn; recv fails with a link error well
	// before a long timeout.
	start := time.Now()
	_, err := mesh[0].Recv(0, 1, 30*time.Second)
	if !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("recv from dead peer: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("dead-peer recv took %v, want fast failure", waited)
	}
	// Sends to the dead peer fail too (possibly after one buffered write).
	var sendErr error
	for i := 0; i < 50 && sendErr == nil; i++ {
		sendErr = mesh[0].Send(0, 1, []int{i}, 200*time.Millisecond)
		time.Sleep(20 * time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("sends to dead peer kept succeeding")
	}
}

// TestTCPVersionMismatchRejected covers the handshake gate: a dialer with
// the wrong protocol version or config digest is refused with a named
// reason at rendezvous.
func TestTCPVersionMismatchRejected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String(), "127.0.0.1:1"} // rank 1 never joins
	joinErr := make(chan error, 1)
	go func() {
		_, _, err := Join(TCPConfig{
			World: 2, Rank: 0, Addrs: addrs, Listener: ln,
			ConfigSum: 1, RendezvousTimeout: 5 * time.Second,
		})
		joinErr <- err
	}()
	// A peer whose Hello doesn't even decode (a different wire-protocol
	// version changes frame layouts) gets a named Ack rejection — Ack's
	// encoding is version-stable — instead of a silent hangup that would
	// retry into a rendezvous timeout. This does not abort the rendezvous.
	garbled, err := net.DialTimeout("tcp", addrs[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer garbled.Close()
	// A syntactically valid frame (length prefix + Hello type id) whose
	// body is truncated relative to the current Hello layout.
	if _, err := garbled.Write([]byte{3, 0, 0, 0, 6, 1, 2}); err != nil {
		t.Fatal(err)
	}
	v0, _, err := wire.ReadFrame(garbled, 0)
	if err != nil {
		t.Fatalf("garbled handshake got no reply: %v", err)
	}
	if ack, ok := v0.(*wire.Ack); !ok || !strings.Contains(ack.Err, "undecodable") {
		t.Fatalf("garbled handshake reply = %#v, want undecodable-handshake Ack", v0)
	}

	// A "worker" with the wrong version dials rank 0 directly.
	conn, err := net.DialTimeout("tcp", addrs[0], 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := &wire.Hello{Magic: wire.Magic, Version: wire.Version + 1, World: 2, Rank: 1, ConfigSum: 1}
	if _, err := wire.WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	v, _, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("no rejection reply: %v", err)
	}
	ack, ok := v.(*wire.Ack)
	if !ok || !strings.Contains(ack.Err, "version") {
		t.Fatalf("rejection = %#v, want version-mismatch Ack", v)
	}
	// The rejected peer aborts rank 0's rendezvous with a named cause.
	if err := <-joinErr; err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("join error = %v, want version mismatch", err)
	}

	// Same gate for a mismatched config digest.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _, err := Join(TCPConfig{
			World: 2, Rank: 0, Addrs: []string{ln2.Addr().String(), "127.0.0.1:1"}, Listener: ln2,
			ConfigSum: 1, RendezvousTimeout: 5 * time.Second,
		})
		joinErr <- err
	}()
	conn2, err := net.DialTimeout("tcp", ln2.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	skewed := &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: 2, Rank: 1, ConfigSum: 2}
	if _, err := wire.WriteFrame(conn2, skewed); err != nil {
		t.Fatal(err)
	}
	if err := <-joinErr; err == nil || !strings.Contains(err.Error(), "config digest") {
		t.Fatalf("join error = %v, want config-digest mismatch", err)
	}
}

func TestTCPRendezvousTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = Join(TCPConfig{
		World: 2, Rank: 0, Addrs: []string{ln.Addr().String(), "127.0.0.1:1"}, Listener: ln,
		RendezvousTimeout: 500 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "rendezvous timed out") {
		t.Fatalf("join with absent peer: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("rendezvous timeout took %v", waited)
	}
}

// settleGoroutines polls until the goroutine count drops to at most
// baseline+slack, failing with a stack dump if it never does.
func settleGoroutines(t *testing.T, baseline, slack int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s: %d goroutines, baseline %d (+%d slack)\n%s", what, n, baseline, slack, buf)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTCPCloseNoGoroutineLeak pins the shutdown audit the ISSUE asks for:
// per-link readers and heartbeat loops must exit promptly on Close — even
// when a peer died abruptly mid-traffic, and even when rejected handshake
// stragglers hit a rendezvous that already returned (the offer channels
// must never strand a goroutine).
func TestTCPCloseNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// A working mesh with traffic, one peer dying abruptly, then Close.
	mesh := loopbackMesh(t, 3, 0x77)
	for i := 0; i < 10; i++ {
		if err := mesh[0].Send(0, 1, []int{i}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mesh[1].Recv(1, 0, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	mesh[2].Close() // abrupt peer death: links down, peers' readers exit
	time.Sleep(100 * time.Millisecond)
	for _, tp := range mesh {
		tp.Close()
	}
	settleGoroutines(t, baseline, 2, "after mesh close")

	// Rendezvous flooded with bad peers: the first rejection aborts the
	// join; the rest arrive after it returned and must clean themselves up
	// (conns closed, no goroutine parked on the offer channels).
	baseline = runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joinErr := make(chan error, 1)
	go func() {
		_, _, err := Join(TCPConfig{
			World: 2, Rank: 0, Addrs: []string{ln.Addr().String(), "127.0.0.1:1"}, Listener: ln,
			ConfigSum: 5, RendezvousTimeout: 5 * time.Second,
		})
		joinErr <- err
	}()
	for i := 0; i < 20; i++ {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			break // listener already closed by the aborted join
		}
		// Rank 7 is out of range for a 2-world: rejected with an Ack.
		wire.WriteFrame(conn, &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: 2, Rank: 7, ConfigSum: 5, Epoch: 1})
		wire.ReadFrame(conn, 0)
		conn.Close()
	}
	if err := <-joinErr; err == nil {
		t.Fatal("join survived a flood of invalid peers")
	}
	settleGoroutines(t, baseline, 2, "after rejected-peer flood")
}

// TestTCPEpochHandshake pins the epoch-convergence rules at rendezvous: a
// stale dialer is answered with the acceptor's newer Hello and turned away
// (the acceptor keeps listening), while a newer dialer makes the stale
// acceptor abort with an EpochError naming the epoch to rejoin at.
func TestTCPEpochHandshake(t *testing.T) {
	// Acceptor at epoch 3; world of 2, rank 0 listening for rank 1.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joined := make(chan error, 1)
	go func() {
		tp, _, err := Join(TCPConfig{
			World: 2, Rank: 0, Addrs: []string{ln.Addr().String(), "127.0.0.1:1"}, Listener: ln,
			ConfigSum: 9, Epoch: 3, RendezvousTimeout: 10 * time.Second,
		})
		if tp != nil {
			defer tp.Close()
		}
		joined <- err
	}()

	// A stale rank-1 dialer (epoch 1) is answered with the epoch-3 Hello
	// and disconnected — that reply is how it learns what to rejoin at.
	conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	hello := &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: 2, Rank: 1, ConfigSum: 9, Epoch: 1}
	if _, err := wire.WriteFrame(conn, hello); err != nil {
		t.Fatal(err)
	}
	v, _, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("stale dialer got no reply: %v", err)
	}
	reply, ok := v.(*wire.Hello)
	if !ok || reply.Epoch != 3 {
		t.Fatalf("stale dialer reply = %#v, want Hello at epoch 3", v)
	}
	conn.Close()

	// Redialing at the observed epoch completes the mesh.
	conn2, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	hello.Epoch = 3
	if _, err := wire.WriteFrame(conn2, hello); err != nil {
		t.Fatal(err)
	}
	if v, _, err := wire.ReadFrame(conn2, 0); err != nil {
		t.Fatal(err)
	} else if h, ok := v.(*wire.Hello); !ok || h.Epoch != 3 {
		t.Fatalf("matched-epoch reply = %#v", v)
	}
	if err := <-joined; err != nil {
		t.Fatalf("join after epoch catch-up: %v", err)
	}

	// The mirror case: an acceptor at epoch 1 meeting an epoch-4 dialer
	// aborts with an EpochError so its rejoin loop can adopt epoch 4.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _, err := Join(TCPConfig{
			World: 2, Rank: 0, Addrs: []string{ln2.Addr().String(), "127.0.0.1:1"}, Listener: ln2,
			ConfigSum: 9, Epoch: 1, RendezvousTimeout: 10 * time.Second,
		})
		joined <- err
	}()
	conn3, err := net.DialTimeout("tcp", ln2.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	newer := &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: 2, Rank: 1, ConfigSum: 9, Epoch: 4}
	if _, err := wire.WriteFrame(conn3, newer); err != nil {
		t.Fatal(err)
	}
	err = <-joined
	var eErr *EpochError
	if !errors.As(err, &eErr) || eErr.Observed != 4 {
		t.Fatalf("stale acceptor join error = %v, want EpochError observing 4", err)
	}
}

// TestCtrlRoundTrip exercises the coordinator control plane: handshake,
// command/result frames, and orderly shutdown via EOF.
func TestCtrlRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{ln.Addr().String()}
	type joined struct {
		tp   *TCP
		ctrl *Ctrl
		err  error
	}
	workerCh := make(chan joined, 1)
	go func() {
		tp, ctrl, err := Join(TCPConfig{
			World: 1, Rank: 0, Addrs: addrs, Listener: ln,
			ConfigSum: 9, ExpectCtrl: true, RendezvousTimeout: 5 * time.Second,
		})
		workerCh <- joined{tp, ctrl, err}
	}()
	hello := &wire.Hello{Magic: wire.Magic, Version: wire.Version, World: 1, Rank: -1, ConfigSum: 9}
	coord, err := DialCtrl(addrs[0], hello, 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w := <-workerCh
	if w.err != nil {
		t.Fatal(w.err)
	}
	defer w.tp.Close()
	if w.ctrl == nil {
		t.Fatal("worker join returned no control connection")
	}
	if err := coord.Send(&wire.DropCmd{Seq: 5}); err != nil {
		t.Fatal(err)
	}
	v, err := w.ctrl.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cmd, ok := v.(*wire.DropCmd); !ok || cmd.Seq != 5 {
		t.Fatalf("worker received %#v", v)
	}
	if err := w.ctrl.Send(&wire.Ack{}); err != nil {
		t.Fatal(err)
	}
	if v, err := coord.Recv(5 * time.Second); err != nil {
		t.Fatal(err)
	} else if _, ok := v.(*wire.Ack); !ok {
		t.Fatalf("coordinator received %#v", v)
	}
	// One command out, one result in (the handshake predates the Ctrl).
	msgs, bytes := coord.WireTotals()
	if msgs < 2 || bytes == 0 {
		t.Fatalf("ctrl wire totals = %d msgs / %d bytes", msgs, bytes)
	}
	// Coordinator hangs up; the worker's blocking Recv ends with EOF.
	coord.Close()
	if _, err := w.ctrl.Recv(5 * time.Second); err == nil {
		t.Fatal("worker recv survived coordinator hangup")
	}
}

// TestHeartbeatConfigValidation pins the heartbeat knob contract: zero
// values take the defaults, a one-miss window is rejected (it flaps on
// ordinary jitter), and negative thresholds mean "disabled" and pass.
func TestHeartbeatConfigValidation(t *testing.T) {
	base := func() TCPConfig {
		return TCPConfig{World: 2, Rank: 0, Addrs: []string{"a:1", "b:2"}}
	}
	cfg := base()
	if err := cfg.applyDefaults(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if cfg.HeartbeatEvery != DefaultHeartbeatEvery || cfg.HeartbeatMisses != DefaultHeartbeatMisses {
		t.Fatalf("defaults not applied: every=%v misses=%d", cfg.HeartbeatEvery, cfg.HeartbeatMisses)
	}
	cfg = base()
	cfg.HeartbeatMisses = 1
	if err := cfg.applyDefaults(); err == nil || !strings.Contains(err.Error(), "must be >= 2") {
		t.Fatalf("misses=1 accepted (err=%v)", err)
	}
	cfg = base()
	cfg.HeartbeatMisses = -1
	if err := cfg.applyDefaults(); err != nil {
		t.Fatalf("disabled heartbeats rejected: %v", err)
	}
	cfg = base()
	cfg.HeartbeatEvery = 100 * time.Millisecond
	cfg.HeartbeatMisses = 2
	if err := cfg.applyDefaults(); err != nil || cfg.HeartbeatEvery != 100*time.Millisecond {
		t.Fatalf("explicit cadence mangled: every=%v err=%v", cfg.HeartbeatEvery, err)
	}
}
