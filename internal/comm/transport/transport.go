// Package transport provides the pluggable message-delivery layer under
// comm.World. Two implementations share one interface:
//
//   - Mem: the seed engine's in-process per-(src,dst) FIFO mailboxes, for
//     clusters whose ranks are goroutines in one address space. Payloads are
//     passed by pointer, never serialized — zero behavior change from the
//     pre-interface World.
//   - TCP (tcp.go): ranks as separate OS processes on a full mesh of TCP
//     connections, every payload encoded with the deterministic wire codec,
//     plus rank rendezvous, heartbeats, and link-failure detection.
//
// The interface deliberately mirrors what the ring algorithms need and
// nothing more: directed point-to-point send/receive with timeouts, link
// fault injection, and per-link wire-traffic counters. Collectives stay in
// comm, built from these primitives, so both transports run the identical
// algorithm code.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm/wire"
)

// ErrTimeout reports a send or receive that exceeded its deadline while the
// link itself still looks healthy.
var ErrTimeout = errors.New("timed out")

// ErrLinkFailed reports a send or receive on a failed link: explicitly
// fault-injected, or (TCP) a connection that died.
var ErrLinkFailed = errors.New("link failed")

// failure wraps a sentinel with a transport-level cause (e.g. the socket
// error that killed a TCP link). errors.Is still matches the sentinel.
type failure struct {
	sentinel error
	cause    error
}

func (f *failure) Error() string { return f.sentinel.Error() + ": " + f.cause.Error() }
func (f *failure) Unwrap() error { return f.sentinel }

func failWith(sentinel, cause error) error {
	if cause == nil {
		return sentinel
	}
	return &failure{sentinel: sentinel, cause: cause}
}

// Cause returns the transport-level cause attached to a sentinel error, or
// nil for a bare sentinel.
func Cause(err error) error {
	var f *failure
	if errors.As(err, &f) {
		return f.cause
	}
	return nil
}

// FailureEvent reports a detected data-plane fault: the directed link to
// Peer is down (injected fault, dead connection, or failed heartbeat).
// Events surface asynchronously on Transport.Failures, independent of any
// in-flight send or receive, so an idle cluster still learns about a dead
// rank within a couple of heartbeat periods.
//
// Epoch is the cluster incarnation the event belongs to. Transports leave
// it zero; the cluster layer stamps it when forwarding, so consumers can
// discard events from an incarnation that recovery already retired instead
// of rebuilding a healthy successor.
type FailureEvent struct {
	Peer  int
	Cause error
	Epoch uint64
}

// EpochError reports a rendezvous handshake that met a peer on a newer
// cluster epoch: this process's incarnation is stale and should rejoin at
// (at least) the observed epoch. Rejoin loops use it to converge on the
// coordinator's epoch without out-of-band coordination.
type EpochError struct {
	Observed uint64 // the newer epoch seen on the wire
	Stale    uint64 // the epoch this process tried to join with
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("transport: epoch %d is stale, cluster is at epoch %d", e.Stale, e.Observed)
}

// eventSink is the shared bounded failure-event channel: sends never block
// (events are droppable hints — the consumer only needs to learn that
// something failed) and Close is safe against concurrent publishers.
type eventSink struct {
	mu     sync.Mutex
	ch     chan FailureEvent
	closed bool
}

func newEventSink(buf int) *eventSink {
	return &eventSink{ch: make(chan FailureEvent, buf)}
}

func (s *eventSink) publish(ev FailureEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- ev:
	default: // full: the consumer already has failure signals pending
	}
}

func (s *eventSink) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// Transport moves opaque payloads between ranks. Implementations must allow
// concurrent calls from different local ranks' goroutines; per-(dst,src)
// receive ordering is FIFO.
type Transport interface {
	// WorldSize returns the total rank count, local and remote.
	WorldSize() int
	// LocalRanks lists the ranks hosted in this process, ascending.
	LocalRanks() []int
	// Send delivers payload on the directed link src->dst. src must be
	// local. A full outgoing path blocks up to timeout.
	Send(src, dst int, payload any, timeout time.Duration) error
	// Recv returns the next payload on the directed link src->dst. dst must
	// be local. An empty link blocks up to timeout.
	Recv(dst, src int, timeout time.Duration) (any, error)
	// FailLink / HealLink inject and clear a directed send-side fault.
	FailLink(src, dst int)
	HealLink(src, dst int)
	// Failures surfaces detected link faults as asynchronous events:
	// injected FailLink calls and (TCP) dead connections. The channel is
	// closed when the transport closes. Events are droppable hints — a slow
	// consumer loses duplicates, never the fact that a failure happened.
	Failures() <-chan FailureEvent
	// WireLinks snapshots actual per-link wire traffic (frames and encoded
	// bytes). The in-memory transport never serializes and returns nil.
	WireLinks() []wire.LinkStat
	// Close tears the transport down; in-flight operations fail.
	Close() error
}

// Mem is the in-process mailbox transport. Every rank is local.
type Mem struct {
	n      int
	boxes  [][]chan any // boxes[dst][src]
	failMu failMap
	events *eventSink
}

// NewMem builds the mailbox mesh for n ranks.
func NewMem(n int) *Mem {
	if n <= 0 {
		panic(fmt.Sprintf("transport: non-positive world size %d", n))
	}
	m := &Mem{n: n, failMu: newFailMap(), events: newEventSink(2 * n)}
	m.boxes = make([][]chan any, n)
	for d := 0; d < n; d++ {
		m.boxes[d] = make([]chan any, n)
		for s := 0; s < n; s++ {
			// Capacity n+1 lets every rank complete an All2All send phase
			// before any rank starts receiving, avoiding deadlock without
			// extra goroutines.
			m.boxes[d][s] = make(chan any, n+1)
		}
	}
	return m
}

// WorldSize implements Transport.
func (m *Mem) WorldSize() int { return m.n }

// LocalRanks implements Transport: every rank lives in this process.
func (m *Mem) LocalRanks() []int {
	out := make([]int, m.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Send implements Transport.
func (m *Mem) Send(src, dst int, payload any, timeout time.Duration) error {
	if m.failMu.failed(src, dst) {
		return ErrLinkFailed
	}
	select {
	case m.boxes[dst][src] <- payload:
		return nil
	case <-time.After(timeout):
		return failWith(ErrTimeout, errors.New("mailbox full"))
	}
}

// Recv implements Transport.
func (m *Mem) Recv(dst, src int, timeout time.Duration) (any, error) {
	select {
	case v := <-m.boxes[dst][src]:
		return v, nil
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// FailLink implements Transport. The injected fault surfaces on Failures
// too, mirroring how a real dead link announces itself on the TCP transport.
func (m *Mem) FailLink(src, dst int) {
	m.failMu.fail(src, dst)
	m.events.publish(FailureEvent{Peer: dst, Cause: fmt.Errorf("injected link failure %d->%d", src, dst)})
}

// HealLink implements Transport.
func (m *Mem) HealLink(src, dst int) { m.failMu.heal(src, dst) }

// Failures implements Transport.
func (m *Mem) Failures() <-chan FailureEvent { return m.events.ch }

// WireLinks implements Transport: in-process delivery moves no wire bytes.
func (m *Mem) WireLinks() []wire.LinkStat { return nil }

// Close implements Transport.
func (m *Mem) Close() error {
	m.events.close()
	return nil
}

// failMap is the shared injected-fault set.
type failMap struct {
	mu  sync.Mutex
	set map[[2]int]bool
}

func newFailMap() failMap { return failMap{set: make(map[[2]int]bool)} }

func (f *failMap) fail(src, dst int) {
	f.mu.Lock()
	f.set[[2]int{src, dst}] = true
	f.mu.Unlock()
}

func (f *failMap) heal(src, dst int) {
	f.mu.Lock()
	delete(f.set, [2]int{src, dst})
	f.mu.Unlock()
}

func (f *failMap) failed(src, dst int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set[[2]int{src, dst}]
}
