// Package transport provides the pluggable message-delivery layer under
// comm.World. Two implementations share one interface:
//
//   - Mem: the seed engine's in-process per-(src,dst) FIFO mailboxes, for
//     clusters whose ranks are goroutines in one address space. Payloads are
//     passed by pointer, never serialized — zero behavior change from the
//     pre-interface World.
//   - TCP (tcp.go): ranks as separate OS processes on a full mesh of TCP
//     connections, every payload encoded with the deterministic wire codec,
//     plus rank rendezvous, heartbeats, and link-failure detection.
//
// The interface deliberately mirrors what the ring algorithms need and
// nothing more: directed point-to-point send/receive with timeouts, link
// fault injection, and per-link wire-traffic counters. Collectives stay in
// comm, built from these primitives, so both transports run the identical
// algorithm code.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm/wire"
)

// ErrTimeout reports a send or receive that exceeded its deadline while the
// link itself still looks healthy.
var ErrTimeout = errors.New("timed out")

// ErrLinkFailed reports a send or receive on a failed link: explicitly
// fault-injected, or (TCP) a connection that died.
var ErrLinkFailed = errors.New("link failed")

// failure wraps a sentinel with a transport-level cause (e.g. the socket
// error that killed a TCP link). errors.Is still matches the sentinel.
type failure struct {
	sentinel error
	cause    error
}

func (f *failure) Error() string { return f.sentinel.Error() + ": " + f.cause.Error() }
func (f *failure) Unwrap() error { return f.sentinel }

func failWith(sentinel, cause error) error {
	if cause == nil {
		return sentinel
	}
	return &failure{sentinel: sentinel, cause: cause}
}

// Cause returns the transport-level cause attached to a sentinel error, or
// nil for a bare sentinel.
func Cause(err error) error {
	var f *failure
	if errors.As(err, &f) {
		return f.cause
	}
	return nil
}

// Transport moves opaque payloads between ranks. Implementations must allow
// concurrent calls from different local ranks' goroutines; per-(dst,src)
// receive ordering is FIFO.
type Transport interface {
	// WorldSize returns the total rank count, local and remote.
	WorldSize() int
	// LocalRanks lists the ranks hosted in this process, ascending.
	LocalRanks() []int
	// Send delivers payload on the directed link src->dst. src must be
	// local. A full outgoing path blocks up to timeout.
	Send(src, dst int, payload any, timeout time.Duration) error
	// Recv returns the next payload on the directed link src->dst. dst must
	// be local. An empty link blocks up to timeout.
	Recv(dst, src int, timeout time.Duration) (any, error)
	// FailLink / HealLink inject and clear a directed send-side fault.
	FailLink(src, dst int)
	HealLink(src, dst int)
	// WireLinks snapshots actual per-link wire traffic (frames and encoded
	// bytes). The in-memory transport never serializes and returns nil.
	WireLinks() []wire.LinkStat
	// Close tears the transport down; in-flight operations fail.
	Close() error
}

// Mem is the in-process mailbox transport. Every rank is local.
type Mem struct {
	n      int
	boxes  [][]chan any // boxes[dst][src]
	failMu failMap
}

// NewMem builds the mailbox mesh for n ranks.
func NewMem(n int) *Mem {
	if n <= 0 {
		panic(fmt.Sprintf("transport: non-positive world size %d", n))
	}
	m := &Mem{n: n, failMu: newFailMap()}
	m.boxes = make([][]chan any, n)
	for d := 0; d < n; d++ {
		m.boxes[d] = make([]chan any, n)
		for s := 0; s < n; s++ {
			// Capacity n+1 lets every rank complete an All2All send phase
			// before any rank starts receiving, avoiding deadlock without
			// extra goroutines.
			m.boxes[d][s] = make(chan any, n+1)
		}
	}
	return m
}

// WorldSize implements Transport.
func (m *Mem) WorldSize() int { return m.n }

// LocalRanks implements Transport: every rank lives in this process.
func (m *Mem) LocalRanks() []int {
	out := make([]int, m.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Send implements Transport.
func (m *Mem) Send(src, dst int, payload any, timeout time.Duration) error {
	if m.failMu.failed(src, dst) {
		return ErrLinkFailed
	}
	select {
	case m.boxes[dst][src] <- payload:
		return nil
	case <-time.After(timeout):
		return failWith(ErrTimeout, errors.New("mailbox full"))
	}
}

// Recv implements Transport.
func (m *Mem) Recv(dst, src int, timeout time.Duration) (any, error) {
	select {
	case v := <-m.boxes[dst][src]:
		return v, nil
	case <-time.After(timeout):
		return nil, ErrTimeout
	}
}

// FailLink implements Transport.
func (m *Mem) FailLink(src, dst int) { m.failMu.fail(src, dst) }

// HealLink implements Transport.
func (m *Mem) HealLink(src, dst int) { m.failMu.heal(src, dst) }

// WireLinks implements Transport: in-process delivery moves no wire bytes.
func (m *Mem) WireLinks() []wire.LinkStat { return nil }

// Close implements Transport.
func (m *Mem) Close() error { return nil }

// failMap is the shared injected-fault set.
type failMap struct {
	mu  sync.Mutex
	set map[[2]int]bool
}

func newFailMap() failMap { return failMap{set: make(map[[2]int]bool)} }

func (f *failMap) fail(src, dst int) {
	f.mu.Lock()
	f.set[[2]int{src, dst}] = true
	f.mu.Unlock()
}

func (f *failMap) heal(src, dst int) {
	f.mu.Lock()
	delete(f.set, [2]int{src, dst})
	f.mu.Unlock()
}

func (f *failMap) failed(src, dst int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set[[2]int{src, dst}]
}
