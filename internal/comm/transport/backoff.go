package transport

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Dial/rejoin retry policy: exponential backoff with deterministic jitter
// and a bounded retry budget, replacing the fixed 50ms sleep the dial loops
// used to spin on. The exponential curve stops a booting mesh from hammering
// a slow peer; the jitter decorrelates many dialers retrying the same
// address (every rank redials rank 0 after a coordinator restart); the
// budget turns a wedged peer into a named error instead of a silent spin
// until the rendezvous deadline.
const (
	// DefaultBackoffBase is the first retry delay.
	DefaultBackoffBase = 25 * time.Millisecond
	// DefaultBackoffCap bounds a single delay.
	DefaultBackoffCap = 1 * time.Second
	// DefaultRetryBudget bounds retries per handshake attempt. At the
	// default base/cap the budget spans well past the rendezvous window, so
	// in practice the deadline fires first; the budget is the hard stop
	// when callers configure long windows.
	DefaultRetryBudget = 64
)

// Backoff produces the retry delays of one dial loop. The jitter is a pure
// function of (seed, attempt) — splitmix64, the repo's standard integer
// hash — so a retry schedule is reproducible run to run: chaos soaks replay
// byte-for-byte, yet two dialers with different seeds (different target
// addresses) never synchronize.
type Backoff struct {
	Base    time.Duration // first delay; 0 = DefaultBackoffBase
	Cap     time.Duration // per-delay ceiling; 0 = DefaultBackoffCap
	Budget  int           // max delays before giving up; 0 = DefaultRetryBudget
	Seed    uint64        // jitter stream selector
	attempt int
}

// NewBackoff returns a default-policy backoff whose jitter stream is seeded
// from an arbitrary name (typically the peer address being dialed).
func NewBackoff(name string) *Backoff {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &Backoff{Seed: h.Sum64()}
}

// splitmix64 is the finalizer step of the splitmix64 PRNG: a bijective
// avalanche hash, the same construction seqOwnerOffset uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Next returns the delay to sleep before the next retry, or false when the
// retry budget is exhausted. Delay n is base*2^n capped at Cap, scaled by a
// deterministic jitter factor in [0.5, 1.0) — "equal jitter": never less
// than half the exponential value (so the curve still spaces retries), never
// more (so the cap holds).
func (b *Backoff) Next() (time.Duration, bool) {
	base, cap, budget := b.Base, b.Cap, b.Budget
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if budget <= 0 {
		budget = DefaultRetryBudget
	}
	if b.attempt >= budget {
		return 0, false
	}
	d := base
	for i := 0; i < b.attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter fraction in [0.5, 1.0): top 53 bits of the hash as a float64
	// in [0,1), halved and shifted.
	frac := 0.5 + float64(splitmix64(b.Seed^uint64(b.attempt))>>11)/float64(1<<53)/2
	b.attempt++
	return time.Duration(float64(d) * frac), true
}

// Attempts reports how many delays Next has produced.
func (b *Backoff) Attempts() int { return b.attempt }

// Exhausted formats the budget-exhausted error with the last cause.
func (b *Backoff) Exhausted(lastErr error) error {
	return fmt.Errorf("retry budget exhausted after %d attempts: %w", b.attempt, lastErr)
}
