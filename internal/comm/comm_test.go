package comm

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvRing(t *testing.T) {
	// Classic ring: every rank sends its id around N-1 hops; after the loop
	// each rank must have seen every other rank's id exactly once.
	n := 4
	w := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		next := (r.ID + 1) % n
		prev := (r.ID - 1 + n) % n
		cur := r.ID
		seen := []int{cur}
		for hop := 0; hop < n-1; hop++ {
			got, err := r.SendRecv(next, prev, cur, 8)
			if err != nil {
				return err
			}
			cur = got.(int)
			seen = append(seen, cur)
		}
		mask := 0
		for _, s := range seen {
			mask |= 1 << s
		}
		if mask != (1<<n)-1 {
			return fmt.Errorf("rank %d saw %v", r.ID, seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvByteAccounting(t *testing.T) {
	n := 3
	w := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		next := (r.ID + 1) % n
		prev := (r.ID - 1 + n) % n
		for hop := 0; hop < n-1; hop++ {
			if _, err := r.SendRecv(next, prev, "x", 100); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	// Each of 3 ranks sends 2 messages of 100 bytes.
	if total.Messages[KindSendRecv] != 6 {
		t.Fatalf("sendrecv messages = %d, want 6", total.Messages[KindSendRecv])
	}
	if total.Bytes[KindSendRecv] != 600 {
		t.Fatalf("sendrecv bytes = %v, want 600", total.Bytes[KindSendRecv])
	}
}

func TestAll2All(t *testing.T) {
	n := 4
	w := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		msgs := make([]any, n)
		sizes := make([]float64, n)
		for d := 0; d < n; d++ {
			msgs[d] = [2]int{r.ID, d} // (from, to)
			sizes[d] = 10
		}
		got, err := r.All2All(msgs, sizes)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			pair := got[src].([2]int)
			if pair[0] != src || pair[1] != r.ID {
				return fmt.Errorf("rank %d got %v from slot %d", r.ID, pair, src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// N*(N-1) network messages; the self slot is local.
	total := w.TotalStats()
	if total.Messages[KindAll2All] != int64(n*(n-1)) {
		t.Fatalf("all2all messages = %d, want %d", total.Messages[KindAll2All], n*(n-1))
	}
}

func TestAll2AllSizeMismatch(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		_, err := r.All2All(make([]any, 3), make([]float64, 2))
		if err == nil {
			return fmt.Errorf("mismatched all2all accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	n := 3
	w := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		got, err := r.AllGather(r.ID*10, 4)
		if err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			if got[src].(int) != src*10 {
				return fmt.Errorf("rank %d gathered %v", r.ID, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSum(t *testing.T) {
	n := 4
	w := NewWorld(n)
	err := w.Run(func(r *Rank) error {
		vec := []float64{float64(r.ID), 1}
		out, err := r.AllReduceSum(vec, 16)
		if err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 4 { // 0+1+2+3, 1*4
			return fmt.Errorf("rank %d allreduce = %v", r.ID, out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := w.TotalStats()
	if total.Messages[KindAllReduce] != int64(n*(n-1)) {
		t.Fatalf("allreduce messages = %d, want %d", total.Messages[KindAllReduce], n*(n-1))
	}
	if total.Messages[KindAllGather] != 0 {
		t.Fatalf("allreduce leaked allgather accounting: %v", total.Messages)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	n := 4
	w := NewWorld(n)
	var before, after int32
	err := w.Run(func(r *Rank) error {
		atomic.AddInt32(&before, 1)
		if err := r.Barrier(); err != nil {
			return err
		}
		if atomic.LoadInt32(&before) != int32(n) {
			return fmt.Errorf("rank %d passed barrier before all arrived", r.ID)
		}
		atomic.AddInt32(&after, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != int32(n) {
		t.Fatalf("after = %d, want %d", after, n)
	}
}

func TestFailLink(t *testing.T) {
	w := NewWorld(2)
	w.FailLink(0, 1)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			err := r.Send(1, "x", 1)
			if err == nil {
				return fmt.Errorf("send over failed link succeeded")
			}
			if !strings.Contains(err.Error(), "link 0->1 failed") {
				return fmt.Errorf("unexpected error %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	w.HealLink(0, 1)
	err = w.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, "x", 1)
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatalf("healed link still failing: %v", err)
	}
}

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(2)
	w.RecvTimeout = 50 * time.Millisecond
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			_, err := r.Recv(1) // rank 1 never sends
			if err == nil {
				return fmt.Errorf("recv from silent peer succeeded")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if err := r.Send(5, nil, 0); err == nil {
			return fmt.Errorf("send to invalid rank accepted")
		}
		if _, err := r.Recv(-1); err == nil {
			return fmt.Errorf("recv from invalid rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestRunCollect(t *testing.T) {
	w := NewWorld(3)
	vals, err := RunCollect(w, func(r *Rank) (int, error) { return r.ID * r.ID, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals = %v", vals)
		}
	}
	_, err = RunCollect(w, func(r *Rank) (int, error) {
		if r.ID == 2 {
			return 0, fmt.Errorf("bad rank")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("RunCollect swallowed error")
	}
}

func TestResetStats(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, 1, 42)
		}
		_, err := r.Recv(0)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if w.TotalStats().TotalBytes() != 42 {
		t.Fatal("bytes not accounted")
	}
	w.ResetStats()
	if w.TotalStats().TotalBytes() != 0 || w.TotalStats().TotalMessages() != 0 {
		t.Fatal("ResetStats left residue")
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(r *Rank) error {
		if r.ID == 0 {
			for i := 0; i < 3; i++ {
				if err := r.Send(1, i, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 3; i++ {
			got, err := r.Recv(0)
			if err != nil {
				return err
			}
			if got.(int) != i {
				return fmt.Errorf("out of order: got %v want %d", got, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWithRecvTimeoutOption(t *testing.T) {
	w := NewWorld(2, WithRecvTimeout(30*time.Millisecond))
	if w.RecvTimeout != 30*time.Millisecond {
		t.Fatalf("RecvTimeout = %v", w.RecvTimeout)
	}
	// The configured deadline governs receives: an empty mailbox times out
	// promptly instead of after DefaultRecvTimeout.
	start := time.Now()
	if _, err := w.Rank(0).Recv(1); err == nil {
		t.Fatal("recv on empty mailbox succeeded")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("recv waited %v despite 30ms configured timeout", waited)
	}
	// Non-positive overrides are ignored.
	if got := NewWorld(2, WithRecvTimeout(0)).RecvTimeout; got != DefaultRecvTimeout {
		t.Fatalf("zero timeout applied: %v", got)
	}
}

func TestLinkStatsPerDirectedLink(t *testing.T) {
	w := NewWorld(3)
	if err := w.Run(func(r *Rank) error {
		next := (r.ID + 1) % 3
		prev := (r.ID - 1 + 3) % 3
		if _, err := r.SendRecv(next, prev, "x", 100); err != nil {
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	links := w.LinkStats()
	if len(links) != 3 {
		t.Fatalf("links = %+v, want 3 directed ring links", links)
	}
	for _, l := range links {
		if l.Dst != (l.Src+1)%3 {
			t.Fatalf("unexpected link %d->%d", l.Src, l.Dst)
		}
		if l.Messages != 1 || l.Bytes != 100 {
			t.Fatalf("link %d->%d counted %d msgs / %v bytes", l.Src, l.Dst, l.Messages, l.Bytes)
		}
		// The mailbox transport never serializes: wire counters stay zero.
		if l.WireMsgs != 0 || l.WireBytes != 0 {
			t.Fatalf("in-memory link %d->%d reports wire traffic", l.Src, l.Dst)
		}
	}
	w.ResetStats()
	if got := w.LinkStats(); len(got) != 0 {
		t.Fatalf("ResetStats left link residue: %+v", got)
	}
}

// TestErrorTextNamesBothEndpoints pins the uniform src->dst error format on
// every receive and send path: rank attribution of race-job failures
// depends on it.
func TestErrorTextNamesBothEndpoints(t *testing.T) {
	w := NewWorld(2, WithRecvTimeout(30*time.Millisecond))
	if _, err := w.Rank(0).Recv(1); err == nil || !strings.Contains(err.Error(), "recv 1->0 timed out") {
		t.Fatalf("recv timeout error %q lacks src->dst", errStr(err))
	}
	if _, err := w.Rank(0).Recv(-1); err == nil || !strings.Contains(err.Error(), "recv -1->0") {
		t.Fatalf("recv range error %q lacks src->dst", errStr(err))
	}
	if err := w.Rank(0).Send(5, nil, 0); err == nil || !strings.Contains(err.Error(), "send 0->5") {
		t.Fatalf("send range error %q lacks src->dst", errStr(err))
	}
	w.FailLink(0, 1)
	if err := w.Rank(0).Send(1, nil, 0); err == nil || !strings.Contains(err.Error(), "link 0->1 failed") {
		t.Fatalf("failed-link error %q lacks src->dst", errStr(err))
	}
	// Fill the 1-capacity... mailbox capacity is n+1=3; overfill it.
	w.HealLink(0, 1)
	for i := 0; i < 3; i++ {
		if err := w.Rank(0).Send(1, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rank(0).Send(1, 99, 1); err == nil || !strings.Contains(err.Error(), "send 0->1 timed out") {
		t.Fatalf("send timeout error %q lacks src->dst", errStr(err))
	}
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
