// Package chaos is a seeded, fully deterministic fault-injection layer for
// the distributed CP transport. It wraps any transport.Transport and
// executes a declarative fault schedule — rank crash, link drop, network
// partition, slow links (straggler simulation), frame bit-flip corruption,
// truncation, and duplicate delivery — each fired at an exact logical step
// count (the n-th data frame sent on a directed link, or the n-th send of a
// rank), never at a wall-clock time. Given the same schedule and the same
// driving traffic, every chaos run therefore injects byte-for-byte the same
// faults at the same protocol steps, which is what makes a chaos soak
// replayable from its seed.
//
// Faults are send-side: each fault names an acting rank (the source of a
// link fault, the crashing rank), and only the process hosting that rank
// executes it. Every worker can be handed the same schedule; each fires the
// subset it acts in.
//
// Byte-level faults (corrupt, truncate, duplicate) need access to encoded
// frames and therefore require a transport exposing SetFrameTap (the TCP
// mesh). Topology faults (drop, partition) prefer DropLink — cutting the
// real connection so both ends observe the failure — and degrade to
// FailLink on transports without it (the in-process mailboxes).
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/comm/transport"
	"repro/internal/comm/wire"
)

// Kind names a fault type.
type Kind string

const (
	// KindCrash simulates a rank process crash: every link the rank hosts
	// is cut and every subsequent operation it attempts fails, until the
	// next epoch's transport is wrapped (the "respawned" incarnation).
	KindCrash Kind = "crash"
	// KindDrop cuts one link. The underlying connection carries both
	// directions, so the whole rank pair loses connectivity.
	KindDrop Kind = "drop"
	// KindPartition cuts every link crossing a two-group cut of the ranks.
	KindPartition Kind = "partition"
	// KindSlow delays each of Span consecutive sends on a link by Delay —
	// the straggler simulation. It is the one fault kind that must not
	// trigger recovery (the soak asserts it slows, not kills).
	KindSlow Kind = "slow"
	// KindCorrupt flips one bit inside a frame's payload on the wire; the
	// receiver's CRC32C check must reject it (wire.ErrIntegrity).
	KindCorrupt Kind = "corrupt"
	// KindTruncate cuts a frame short on the wire, desynchronizing the
	// stream; the receiver detects it as a framing or integrity error.
	KindTruncate Kind = "truncate"
	// KindDuplicate writes a frame twice. The duplicate is CRC-valid, so
	// detection is the protocol layer's job: on lockstep links the extra
	// frame desynchronizes command/reply matching and poisons the plane
	// into recovery.
	KindDuplicate Kind = "duplicate"
)

// Kinds lists every fault kind in canonical order.
var Kinds = []Kind{KindCrash, KindDrop, KindPartition, KindSlow, KindCorrupt, KindTruncate, KindDuplicate}

// Fault is one scheduled injection.
type Fault struct {
	Kind Kind
	// Src/Dst is the directed link of a link fault; Src is the acting rank.
	Src, Dst int
	// Rank is the acting rank of a crash.
	Rank int
	// Groups is the two-sided cut of a partition. Every rank in the
	// schedule's world must appear in exactly one group.
	Groups [][]int
	// Step is the logical firing point: for link faults, the Step-th data
	// frame sent on Src->Dst (0-based, heartbeats excluded); for crash and
	// partition, the acting rank's Step-th send across all its links.
	Step int64
	// Delay and Span parameterize slow: each of the Span sends starting at
	// Step is delayed by Delay. Span defaults to 1.
	Delay time.Duration
	Span  int64
}

// String renders the fault in schedule grammar.
func (f Fault) String() string {
	switch f.Kind {
	case KindCrash:
		return fmt.Sprintf("crash@%d#%d", f.Rank, f.Step)
	case KindPartition:
		sides := make([]string, len(f.Groups))
		for i, g := range f.Groups {
			parts := make([]string, len(g))
			for j, r := range g {
				parts[j] = strconv.Itoa(r)
			}
			sides[i] = strings.Join(parts, ",")
		}
		return fmt.Sprintf("partition@%s#%d", strings.Join(sides, "|"), f.Step)
	case KindSlow:
		return fmt.Sprintf("slow@%d->%d#%d:%s*%d", f.Src, f.Dst, f.Step, f.Delay, f.Span)
	default:
		return fmt.Sprintf("%s@%d->%d#%d", f.Kind, f.Src, f.Dst, f.Step)
	}
}

// Schedule is a parsed fault schedule.
type Schedule struct {
	Faults []Fault
}

// String renders the schedule in the grammar Parse accepts, canonically.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// Parse reads a fault schedule. Grammar (semicolon-separated faults):
//
//	crash@RANK#STEP
//	drop@SRC->DST#STEP
//	partition@R,R,...|R,R,...#STEP
//	slow@SRC->DST#STEP:DELAY*SPAN      (SPAN optional, default 1)
//	corrupt@SRC->DST#STEP
//	truncate@SRC->DST#STEP
//	duplicate@SRC->DST#STEP
//
// DELAY is a Go duration ("2ms"). STEP is the 0-based logical step count
// described on Fault.Step. world bounds rank validation (0 skips it).
func Parse(spec string, world int) (*Schedule, error) {
	s := &Schedule{}
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	checkRank := func(r int) error {
		if r < 0 || (world > 0 && r >= world) {
			return fmt.Errorf("rank %d outside world [0,%d)", r, world)
		}
		return nil
	}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("chaos: fault %q: missing '@'", item)
		}
		target, rest, ok := strings.Cut(rest, "#")
		if !ok {
			return nil, fmt.Errorf("chaos: fault %q: missing '#STEP'", item)
		}
		stepStr, params, _ := strings.Cut(rest, ":")
		step, err := strconv.ParseInt(stepStr, 10, 64)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("chaos: fault %q: bad step %q", item, stepStr)
		}
		f := Fault{Kind: Kind(kindStr), Step: step, Span: 1}
		switch f.Kind {
		case KindCrash:
			if f.Rank, err = strconv.Atoi(target); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: bad rank %q", item, target)
			}
			if err := checkRank(f.Rank); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: %v", item, err)
			}
		case KindPartition:
			sides := strings.Split(target, "|")
			if len(sides) != 2 {
				return nil, fmt.Errorf("chaos: fault %q: partition needs exactly two groups", item)
			}
			seen := map[int]bool{}
			for _, side := range sides {
				var g []int
				for _, rs := range strings.Split(side, ",") {
					r, err := strconv.Atoi(strings.TrimSpace(rs))
					if err != nil {
						return nil, fmt.Errorf("chaos: fault %q: bad rank %q", item, rs)
					}
					if err := checkRank(r); err != nil {
						return nil, fmt.Errorf("chaos: fault %q: %v", item, err)
					}
					if seen[r] {
						return nil, fmt.Errorf("chaos: fault %q: rank %d in both groups", item, r)
					}
					seen[r] = true
					g = append(g, r)
				}
				f.Groups = append(f.Groups, g)
			}
			if world > 0 && len(seen) != world {
				return nil, fmt.Errorf("chaos: fault %q: groups cover %d of %d ranks", item, len(seen), world)
			}
		case KindDrop, KindSlow, KindCorrupt, KindTruncate, KindDuplicate:
			srcStr, dstStr, ok := strings.Cut(target, "->")
			if !ok {
				return nil, fmt.Errorf("chaos: fault %q: link target must be SRC->DST", item)
			}
			if f.Src, err = strconv.Atoi(srcStr); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: bad src %q", item, srcStr)
			}
			if f.Dst, err = strconv.Atoi(dstStr); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: bad dst %q", item, dstStr)
			}
			if err := checkRank(f.Src); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: %v", item, err)
			}
			if err := checkRank(f.Dst); err != nil {
				return nil, fmt.Errorf("chaos: fault %q: %v", item, err)
			}
			if f.Src == f.Dst {
				return nil, fmt.Errorf("chaos: fault %q: src equals dst", item)
			}
			if f.Kind == KindSlow {
				delayStr, spanStr, hasSpan := strings.Cut(params, "*")
				if f.Delay, err = time.ParseDuration(delayStr); err != nil || f.Delay <= 0 {
					return nil, fmt.Errorf("chaos: fault %q: bad delay %q", item, delayStr)
				}
				if hasSpan {
					if f.Span, err = strconv.ParseInt(spanStr, 10, 64); err != nil || f.Span <= 0 {
						return nil, fmt.Errorf("chaos: fault %q: bad span %q", item, spanStr)
					}
				}
			} else if params != "" {
				return nil, fmt.Errorf("chaos: fault %q: %s takes no params", item, f.Kind)
			}
		default:
			return nil, fmt.Errorf("chaos: fault %q: unknown kind %q", item, kindStr)
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

// splitmix64 is the repo's standard avalanche hash (seqOwnerOffset,
// transport.Backoff); chaos uses it as its seeded PRNG step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Soak derives the standard four-kind soak schedule from a seed: a slow
// link early, then a corrupted frame, a partition, and a rank crash, each
// separated by roughly phase logical steps so every fault deterministically
// triggers (and completes) its own recovery before the next fires. Link and
// rank choices are pure functions of the seed; the same seed always yields
// the identical schedule.
func Soak(seed uint64, world int, phase int64) *Schedule {
	if world < 2 {
		panic("chaos: soak needs at least 2 ranks")
	}
	if phase <= 0 {
		phase = 300
	}
	n := uint64(world)
	pick := func(i uint64) uint64 { return splitmix64(seed + i) }
	link := func(i uint64) (int, int) {
		src := int(pick(i) % n)
		dst := int(pick(i+1) % (n - 1))
		if dst >= src {
			dst++
		}
		return src, dst
	}
	slowSrc, slowDst := link(1)
	corSrc, corDst := link(3)
	// Partition: one seeded rank against the rest.
	lone := int(pick(5) % n)
	var rest []int
	for r := 0; r < world; r++ {
		if r != lone {
			rest = append(rest, r)
		}
	}
	crash := int(pick(6) % n)
	return &Schedule{Faults: []Fault{
		{Kind: KindSlow, Src: slowSrc, Dst: slowDst, Step: phase / 4, Delay: 2 * time.Millisecond, Span: 32},
		{Kind: KindCorrupt, Src: corSrc, Dst: corDst, Step: phase},
		{Kind: KindPartition, Groups: [][]int{{lone}, rest}, Step: 2 * phase},
		{Kind: KindCrash, Rank: crash, Step: 3 * phase},
	}}
}

// Process-global injected-fault counters, by kind. They feed the serving
// layer's chaos stats block: workers report them in StatsResult, the same
// way the wire package's integrity counters travel.
var (
	totalsMu sync.Mutex
	totals   = map[Kind]int64{}
)

func countFault(k Kind) {
	totalsMu.Lock()
	totals[k]++
	totalsMu.Unlock()
}

// Totals reports every fault kind this process has injected, with counts,
// kinds sorted — the StatsResult/stats-block form.
func Totals() (kinds []string, counts []int64) {
	totalsMu.Lock()
	defer totalsMu.Unlock()
	for k := range totals {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	counts = make([]int64, len(kinds))
	for i, k := range kinds {
		counts[i] = totals[Kind(k)]
	}
	return kinds, counts
}

// ResetTotals zeroes the process-global counters (tests only).
func ResetTotals() {
	totalsMu.Lock()
	defer totalsMu.Unlock()
	totals = map[Kind]int64{}
}

// linkDropper is the optional transport hook for observable link cuts.
type linkDropper interface {
	DropLink(peer int, cause error)
}

// frameTapper is the optional transport hook for byte-level faults.
type frameTapper interface {
	SetFrameTap(transport.FrameTap)
}

// Injector executes one schedule. It outlives any single transport
// incarnation: per-link logical clocks and fired-fault state persist across
// Wrap calls, so a fault consumed before a recovery rebuild never fires
// again on the rejoined mesh, and later faults keep counting from where the
// retired incarnation stopped.
type Injector struct {
	sched *Schedule

	mu       sync.Mutex
	fired    []bool           // one-shot faults already executed
	slowLeft []int64          // remaining delayed sends of slow faults
	linkOps  map[[2]int]int64 // cumulative data frames per directed link
	rankOps  map[int]int64    // cumulative sends per acting rank
	crashed  map[int]bool     // ranks dead until the next Wrap
	counts   map[Kind]int64
}

// NewInjector builds an injector for the schedule (nil = empty).
func NewInjector(s *Schedule) *Injector {
	if s == nil {
		s = &Schedule{}
	}
	in := &Injector{
		sched:    s,
		fired:    make([]bool, len(s.Faults)),
		slowLeft: make([]int64, len(s.Faults)),
		linkOps:  make(map[[2]int]int64),
		rankOps:  make(map[int]int64),
		crashed:  map[int]bool{},
		counts:   map[Kind]int64{},
	}
	for i, f := range s.Faults {
		if f.Kind == KindSlow {
			in.slowLeft[i] = f.Span
		}
	}
	return in
}

// Counts returns this injector's injected-fault counts by kind.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Injected returns the total faults this injector has fired.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, v := range in.counts {
		n += v
	}
	return n
}

// Wrap returns t with the schedule armed on it. A new incarnation of a
// crashed rank comes back alive (the crash consumed itself); logical clocks
// continue from the previous incarnation. Byte-level faults are armed via
// the transport's frame tap when it has one; a schedule containing them
// over a transport without SetFrameTap fails loudly rather than silently
// skipping faults.
func (in *Injector) Wrap(t transport.Transport) (transport.Transport, error) {
	in.mu.Lock()
	for _, r := range t.LocalRanks() {
		delete(in.crashed, r)
	}
	needsTap := false
	for i, f := range in.sched.Faults {
		if in.fired[i] {
			continue
		}
		if f.Kind == KindCorrupt || f.Kind == KindTruncate || f.Kind == KindDuplicate {
			if in.hosts(t, f.Src) {
				needsTap = true
			}
		}
	}
	in.mu.Unlock()
	ct := &chaosTransport{in: in, inner: t}
	if needsTap {
		ft, ok := t.(frameTapper)
		if !ok {
			return nil, fmt.Errorf("chaos: schedule has byte-level faults but transport %T has no frame tap", t)
		}
		local := t.LocalRanks()
		if len(local) != 1 {
			return nil, fmt.Errorf("chaos: byte-level faults need a single-rank transport, got ranks %v", local)
		}
		src := local[0]
		ft.SetFrameTap(func(dst int, seq int64, frame []byte) [][]byte {
			return in.tapFrame(src, dst, frame)
		})
	}
	return ct, nil
}

func (in *Injector) hosts(t transport.Transport, rank int) bool {
	for _, r := range t.LocalRanks() {
		if r == rank {
			return true
		}
	}
	return false
}

// tapFrame applies byte-level faults to one outgoing frame on src->dst. The
// frame index used for firing is the injector's own per-link clock,
// advanced in beforeSend — the tap runs inside the same Send call, after
// beforeSend counted it, so both layers agree on the step number (the clock
// has already moved past it, hence the -1).
func (in *Injector) tapFrame(src, dst int, frame []byte) [][]byte {
	in.mu.Lock()
	step := in.linkOps[[2]int{src, dst}] - 1
	var fire *Fault
	var fireIdx int
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		if in.fired[i] || f.Src != src || f.Dst != dst || f.Step != step {
			continue
		}
		if f.Kind == KindCorrupt || f.Kind == KindTruncate || f.Kind == KindDuplicate {
			fire, fireIdx = f, i
			break
		}
	}
	if fire != nil {
		in.fired[fireIdx] = true
		in.counts[fire.Kind]++
	}
	in.mu.Unlock()
	if fire == nil {
		return [][]byte{frame}
	}
	countFault(fire.Kind)
	switch fire.Kind {
	case KindCorrupt:
		// Flip one payload bit past the length prefix; the CRC trailer
		// makes the receiver reject the frame instead of decoding it.
		mangled := append([]byte(nil), frame...)
		mangled[4+(len(mangled)-4)/2] ^= 0x10
		return [][]byte{mangled}
	case KindTruncate:
		// Ship only the front half: the receiver's framing desynchronizes
		// and the next bytes on the stream fail the length or CRC check.
		return [][]byte{frame[:4+(len(frame)-4)/2]}
	case KindDuplicate:
		return [][]byte{frame, frame}
	}
	return [][]byte{frame}
}

// errCrashed is the failure every operation of a chaos-crashed rank gets.
var errCrashed = fmt.Errorf("%w: chaos: rank crashed", transport.ErrLinkFailed)

// beforeSend advances the logical clocks for one send on src->dst and
// executes any fault scheduled at the step just consumed. It returns the
// delay to apply (slow links) and whether the rank is dead.
func (in *Injector) beforeSend(t transport.Transport, src, dst int) (delay time.Duration, crashed bool) {
	in.mu.Lock()
	if in.crashed[src] {
		in.mu.Unlock()
		return 0, true
	}
	linkStep := in.linkOps[[2]int{src, dst}]
	rankStep := in.rankOps[src]
	in.linkOps[[2]int{src, dst}]++
	in.rankOps[src]++
	type action struct {
		f   *Fault
		idx int
	}
	var acts []action
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		if in.fired[i] {
			continue
		}
		switch f.Kind {
		case KindDrop:
			if f.Src == src && f.Dst == dst && f.Step == linkStep {
				acts = append(acts, action{f, i})
			}
		case KindSlow:
			if f.Src == src && f.Dst == dst && linkStep >= f.Step && in.slowLeft[i] > 0 {
				in.slowLeft[i]--
				delay += f.Delay
				in.counts[KindSlow]++
				countFault(KindSlow)
				if in.slowLeft[i] == 0 {
					in.fired[i] = true
				}
			}
		case KindCrash:
			if f.Rank == src && f.Step == rankStep {
				acts = append(acts, action{f, i})
			}
		case KindPartition:
			if f.Step == rankStep && in.inGroups(f, src) {
				acts = append(acts, action{f, i})
			}
		}
	}
	for _, a := range acts {
		in.fired[a.idx] = true
		in.counts[a.f.Kind]++
	}
	crashNow := false
	for _, a := range acts {
		if a.f.Kind == KindCrash {
			in.crashed[src] = true
			crashNow = true
		}
	}
	in.mu.Unlock()

	for _, a := range acts {
		countFault(a.f.Kind)
		switch a.f.Kind {
		case KindDrop:
			dropLink(t, src, dst, fmt.Errorf("chaos: link %d->%d dropped", src, dst))
		case KindCrash:
			// Cut every link this rank hosts: peers observe the death the
			// way they would a real process crash.
			for p := 0; p < t.WorldSize(); p++ {
				if p != src {
					dropLink(t, src, p, fmt.Errorf("chaos: rank %d crashed", src))
				}
			}
		case KindPartition:
			for _, p := range in.cutPeers(a.f, src) {
				dropLink(t, src, p, fmt.Errorf("chaos: partition isolates %d from %d", src, p))
			}
		}
	}
	return delay, crashNow
}

func (in *Injector) inGroups(f *Fault, rank int) bool {
	for _, g := range f.Groups {
		for _, r := range g {
			if r == rank {
				return true
			}
		}
	}
	return false
}

// cutPeers lists the ranks on the other side of a partition from rank.
func (in *Injector) cutPeers(f *Fault, rank int) []int {
	var mine int = -1
	for gi, g := range f.Groups {
		for _, r := range g {
			if r == rank {
				mine = gi
			}
		}
	}
	if mine < 0 {
		return nil
	}
	var out []int
	for gi, g := range f.Groups {
		if gi != mine {
			out = append(out, g...)
		}
	}
	return out
}

// dropLink cuts a link observably when the transport supports it, else
// falls back to send-side injection.
func dropLink(t transport.Transport, src, dst int, cause error) {
	if d, ok := t.(linkDropper); ok {
		d.DropLink(dst, cause)
		return
	}
	t.FailLink(src, dst)
}

// chaosTransport is the Transport wrapper: Send consults the injector;
// everything else delegates.
type chaosTransport struct {
	in    *Injector
	inner transport.Transport
}

func (c *chaosTransport) WorldSize() int    { return c.inner.WorldSize() }
func (c *chaosTransport) LocalRanks() []int { return c.inner.LocalRanks() }

func (c *chaosTransport) Send(src, dst int, payload any, timeout time.Duration) error {
	delay, crashed := c.in.beforeSend(c.inner, src, dst)
	if crashed {
		return errCrashed
	}
	if delay > 0 {
		time.Sleep(delay) //cplint:allow determinism slow-fault injects real latency; which step gets it is seeded-deterministic
	}
	return c.inner.Send(src, dst, payload, timeout)
}

func (c *chaosTransport) Recv(dst, src int, timeout time.Duration) (any, error) {
	c.in.mu.Lock()
	dead := c.in.crashed[dst]
	c.in.mu.Unlock()
	if dead {
		return nil, errCrashed
	}
	return c.inner.Recv(dst, src, timeout)
}

func (c *chaosTransport) FailLink(src, dst int)                   { c.inner.FailLink(src, dst) }
func (c *chaosTransport) HealLink(src, dst int)                   { c.inner.HealLink(src, dst) }
func (c *chaosTransport) Failures() <-chan transport.FailureEvent { return c.inner.Failures() }
func (c *chaosTransport) WireLinks() []wire.LinkStat              { return c.inner.WireLinks() }
func (c *chaosTransport) Close() error                            { return c.inner.Close() }
