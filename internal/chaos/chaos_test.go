package chaos

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/comm/transport"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "slow@1->2#10:50ms*30;corrupt@0->1#120;partition@0,1|2#300;crash@2#500;drop@2->0#7;truncate@0->2#9;duplicate@1->0#11"
	s, err := Parse(spec, 3)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Faults) != 7 {
		t.Fatalf("got %d faults, want 7", len(s.Faults))
	}
	again, err := Parse(s.String(), 3)
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, again) {
		t.Fatalf("round trip mismatch:\n  %#v\n  %#v", s, again)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"crash@5#0",           // rank outside world
		"drop@0->0#1",         // self link
		"drop@0->1",           // missing step
		"slow@0->1#3",         // slow without delay
		"slow@0->1#3:0ms",     // non-positive delay
		"partition@0|1#2",     // groups don't cover world
		"partition@0,1|1,2#2", // rank in both groups
		"partition@0,1,2#2",   // only one group
		"warp@0->1#2",         // unknown kind
		"corrupt@0->1#2:50ms", // params on a paramless kind
		"crash@1#-3",          // negative step
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 3); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestSoakDeterministic(t *testing.T) {
	a := Soak(42, 3, 300)
	b := Soak(42, 3, 300)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	kinds := map[Kind]bool{}
	for _, f := range a.Faults {
		kinds[f.Kind] = true
	}
	for _, k := range []Kind{KindSlow, KindCorrupt, KindPartition, KindCrash} {
		if !kinds[k] {
			t.Errorf("soak schedule missing %s: %s", k, a)
		}
	}
	if c := Soak(43, 3, 300); c.String() == a.String() {
		t.Errorf("different seeds produced identical schedules: %s", a)
	}
	// The schedule must survive its own grammar.
	if _, err := Parse(a.String(), 3); err != nil {
		t.Fatalf("Parse(Soak.String()): %v", err)
	}
}

// drive pushes n sends on src->dst through the wrapped transport, returning
// the per-send errors.
func drive(t *testing.T, tr transport.Transport, src, dst, n int) []error {
	t.Helper()
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		errs[i] = tr.Send(src, dst, i, time.Second)
		if errs[i] == nil {
			if _, err := tr.Recv(dst, src, time.Second); err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
		}
	}
	return errs
}

func TestDropFiresAtExactStep(t *testing.T) {
	sched, err := Parse("drop@0->1#3", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched)
	wrapped, err := in.Wrap(transport.NewMem(2))
	if err != nil {
		t.Fatal(err)
	}
	errs := drive(t, wrapped, 0, 1, 6)
	for i, e := range errs[:3] {
		if e != nil {
			t.Errorf("send %d failed early: %v", i, e)
		}
	}
	for i, e := range errs[3:] {
		if !errors.Is(e, transport.ErrLinkFailed) {
			t.Errorf("send %d after drop: got %v, want ErrLinkFailed", i+3, e)
		}
	}
	if got := in.Counts()[KindDrop]; got != 1 {
		t.Errorf("drop count = %d, want 1 (one-shot)", got)
	}
}

func TestSlowDelaysWithoutFailing(t *testing.T) {
	sched, err := Parse("slow@0->1#2:5ms*3", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched)
	wrapped, err := in.Wrap(transport.NewMem(2))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, e := range drive(t, wrapped, 0, 1, 8) {
		if e != nil {
			t.Fatalf("slow link must not fail sends: %v", e)
		}
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Errorf("8 sends took %v, want >= 15ms (3 x 5ms delays)", d)
	}
	if got := in.Counts()[KindSlow]; got != 3 {
		t.Errorf("slow count = %d, want 3 (span)", got)
	}
}

func TestCrashPoisonsRankUntilRewrap(t *testing.T) {
	sched, err := Parse("crash@0#2", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched)
	mem := transport.NewMem(2)
	wrapped, err := in.Wrap(mem)
	if err != nil {
		t.Fatal(err)
	}
	errs := drive(t, wrapped, 0, 1, 4)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("pre-crash sends failed: %v %v", errs[0], errs[1])
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(errs[i], transport.ErrLinkFailed) {
			t.Errorf("send %d on crashed rank: got %v, want ErrLinkFailed", i, errs[i])
		}
	}
	if _, err := wrapped.Recv(0, 1, 10*time.Millisecond); !errors.Is(err, transport.ErrLinkFailed) {
		t.Errorf("recv on crashed rank: got %v, want ErrLinkFailed", err)
	}
	// Rewrap = the respawned incarnation: the rank is alive again and the
	// one-shot crash does not re-fire.
	rewrapped, err := in.Wrap(transport.NewMem(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range drive(t, rewrapped, 0, 1, 4) {
		if e != nil {
			t.Errorf("post-rewrap send %d: %v", i, e)
		}
	}
	if got := in.Counts()[KindCrash]; got != 1 {
		t.Errorf("crash count = %d, want 1", got)
	}
}

func TestPartitionCutsCrossLinksOnly(t *testing.T) {
	sched, err := Parse("partition@0,1|2#1", 3)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched)
	wrapped, err := in.Wrap(transport.NewMem(3))
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's sends 0 and 1: the second crosses the firing step, cutting
	// 0->2 but leaving 0->1 alive.
	if err := wrapped.Send(0, 1, "a", time.Second); err != nil {
		t.Fatalf("send before partition: %v", err)
	}
	if err := wrapped.Send(0, 1, "b", time.Second); err != nil {
		t.Fatalf("same-side send at partition step: %v", err)
	}
	if err := wrapped.Send(0, 2, "c", time.Second); !errors.Is(err, transport.ErrLinkFailed) {
		t.Errorf("cross-partition send: got %v, want ErrLinkFailed", err)
	}
	if got := in.Counts()[KindPartition]; got != 1 {
		t.Errorf("partition count = %d, want 1", got)
	}
}

func TestStepCountsPersistAcrossWrap(t *testing.T) {
	sched, err := Parse("drop@0->1#5", 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(sched)
	w1, err := in.Wrap(transport.NewMem(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range drive(t, w1, 0, 1, 3) {
		if e != nil {
			t.Fatalf("epoch-1 send: %v", e)
		}
	}
	// New incarnation: steps 3,4 pass, step 5 fires the drop.
	w2, err := in.Wrap(transport.NewMem(2))
	if err != nil {
		t.Fatal(err)
	}
	errs := drive(t, w2, 0, 1, 3)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("epoch-2 pre-drop sends: %v %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], transport.ErrLinkFailed) {
		t.Errorf("cumulative step 5: got %v, want ErrLinkFailed", errs[2])
	}
}

func TestByteFaultsRequireFrameTap(t *testing.T) {
	sched, err := Parse("corrupt@0->1#3", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Mem has no frame tap; a schedule with byte faults acting on a local
	// rank must fail loudly at Wrap, not skip the fault.
	if _, err := NewInjector(sched).Wrap(transport.NewMem(2)); err == nil {
		t.Fatal("Wrap accepted byte-level faults on a tapless transport")
	}
}

func TestTapFrameMutations(t *testing.T) {
	frame := make([]byte, 32)
	for i := range frame {
		frame[i] = byte(i)
	}
	cases := []struct {
		kind Kind
		want func(t *testing.T, out [][]byte)
	}{
		{KindCorrupt, func(t *testing.T, out [][]byte) {
			if len(out) != 1 || len(out[0]) != len(frame) {
				t.Fatalf("corrupt shape: %d frames", len(out))
			}
			diff := 0
			for i := range frame {
				if out[0][i] != frame[i] {
					diff++
				}
			}
			if diff != 1 {
				t.Errorf("corrupt changed %d bytes, want exactly 1", diff)
			}
		}},
		{KindTruncate, func(t *testing.T, out [][]byte) {
			if len(out) != 1 || len(out[0]) >= len(frame) {
				t.Fatalf("truncate did not shorten: %d frames, len %d", len(out), len(out[0]))
			}
		}},
		{KindDuplicate, func(t *testing.T, out [][]byte) {
			if len(out) != 2 || !reflect.DeepEqual(out[0], frame) || !reflect.DeepEqual(out[1], frame) {
				t.Fatalf("duplicate shape wrong: %d frames", len(out))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(string(tc.kind), func(t *testing.T) {
			in := NewInjector(&Schedule{Faults: []Fault{{Kind: tc.kind, Src: 0, Dst: 1, Step: 0, Span: 1}}})
			// Advance the link clock the way Send would, then tap.
			in.beforeSend(transport.NewMem(2), 0, 1)
			tc.want(t, in.tapFrame(0, 1, frame))
			if got := in.Counts()[tc.kind]; got != 1 {
				t.Errorf("count = %d, want 1", got)
			}
			// One-shot: the next frame passes through untouched.
			in.beforeSend(transport.NewMem(2), 0, 1)
			if out := in.tapFrame(0, 1, frame); len(out) != 1 || !reflect.DeepEqual(out[0], frame) {
				t.Errorf("fault re-fired on later frame")
			}
		})
	}
}
