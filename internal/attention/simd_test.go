package attention

import (
	"math/rand"
	"testing"
)

// scalarDot replays the portable four-way unrolled dot product.
func scalarDot(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}

// The AVX inner loops must be bit-identical to the portable scalar loops at
// every length, including non-multiple-of-four tails — switching between
// them is a pure throughput decision.
func TestSIMDMatchesScalarExactly(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 70; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		for trial := 0; trial < 8; trial++ {
			for i := range a {
				a[i] = rng.NormFloat64()
				b[i] = rng.NormFloat64()
				y1[i] = rng.NormFloat64()
				y2[i] = y1[i]
			}
			var one [1]float64
			if got, want := dotTileAVX(a, b, one[:], 1), scalarDot(a, b); got != want {
				t.Fatalf("dotTileAVX(n=%d) = %x, scalar %x", n, got, want)
			}
			alpha := rng.NormFloat64()
			axpyAVX(alpha, a, y1)
			for i := range y2 {
				y2[i] += alpha * a[i]
			}
			for i := range y1 {
				if y1[i] != y2[i] {
					t.Fatalf("axpyAVX(n=%d)[%d] = %x, scalar %x", n, i, y1[i], y2[i])
				}
			}
		}
	}
}

func TestCvtAVXMatchesScalarExactly(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewSource(12))
	for n := 0; n <= 70; n++ {
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(rng.NormFloat64())
		}
		dst := make([]float64, n)
		cvtAVX(dst, src)
		for i := range src {
			if dst[i] != float64(src[i]) {
				t.Fatalf("cvtAVX(n=%d)[%d] = %x, want %x", n, i, dst[i], float64(src[i]))
			}
		}
	}
}

func TestDotTileAVXMatchesScalarExactly(t *testing.T) {
	if !useAVX {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewSource(13))
	for _, dh := range []int{1, 3, 4, 7, 8, 16, 33, 64} {
		for _, rows := range []int{0, 1, 2, 5, 32} {
			q := make([]float64, dh)
			rs := make([]float64, rows*dh)
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			for i := range rs {
				rs[i] = rng.NormFloat64()
			}
			scale := rng.Float64() + 0.5
			got := make([]float64, rows)
			want := make([]float64, rows)
			gotMax := dotTileAVX(q, rs, got, scale)
			wantMax := NegInf
			for jj := 0; jj < rows; jj++ {
				s := scalarDot(q, rs[jj*dh:(jj+1)*dh]) * scale
				want[jj] = s
				if s > wantMax {
					wantMax = s
				}
			}
			if gotMax != wantMax {
				t.Fatalf("dotTileAVX(dh=%d rows=%d) max = %x, want %x", dh, rows, gotMax, wantMax)
			}
			for jj := range got {
				if got[jj] != want[jj] {
					t.Fatalf("dotTileAVX(dh=%d rows=%d)[%d] = %x, want %x", dh, rows, jj, got[jj], want[jj])
				}
			}
		}
	}
}
