package attention

import "math"

// Fast deterministic e^x for softmax weights.
//
// math.Exp costs ~40ns on the CPUs this repo targets and the kernels call it
// once per (query, head, key) — it is the single largest term in the decode
// and long-prefill hot paths. expNeg replaces it with the classical
// table-driven reduction: x = (32m + i)·ln2/32 + r with |r| <= ln2/64, so
//
//	e^x = 2^m · 2^(i/32) · p(r)
//
// where p is the degree-5 Taylor polynomial of e^r (its degree-6 term is
// below 3e-15 relative on the reduced range, far inside the float64 noise of
// the surrounding softmax). The result is a pure function of x built from
// IEEE arithmetic — the same bits on every call, every goroutine, every
// worker count — which is all the repo's bit-identity guarantees need.
// Arguments are softmax-shifted scores, so x <= 0 always holds; values so
// negative that the 2^m bit-shift would leave the normal range fall back to
// math.Exp, which handles the denormal tail.
//
// Exactness anchor: expNeg(0) == 1 exactly (m = i = 0, r = 0, p(0) = 1), so
// a query attending to a single key still reproduces its V row bit-for-bit.
const (
	expInvL  = 46.166241308446828384      // 32/ln2
	expLHi   = 0x1.62e42feep-06           // ln2Hi/32: trailing zero bits make n*expLHi exact
	expLLo   = 5.96317165397058656256e-12 // ln2Lo/32; expLHi + expLLo = ln2/32
	expC2    = 1.0 / 2
	expC3    = 1.0 / 6
	expC4    = 1.0 / 24
	expC5    = 1.0 / 120
	expFloor = -690 // below this, delegate to math.Exp for the denormal tail
)

// expTab[i] = 2^(i/32), filled at init; math.Exp2 is deterministic within a
// process, which is the scope of the repo's bit-identity guarantees.
var expTab [32]float64

func init() {
	for i := range expTab {
		expTab[i] = math.Exp2(float64(i) / 32)
	}
}

// expNeg returns e^x for x <= 0 (NaN propagates).
func expNeg(x float64) float64 {
	if !(x >= expFloor) { // also catches NaN and -Inf via math.Exp
		return math.Exp(x)
	}
	n := math.Floor(x*expInvL + 0.5)
	r := (x - n*expLHi) - n*expLLo
	p := 1 + r*(1+r*(expC2+r*(expC3+r*(expC4+r*expC5))))
	ni := int64(n)
	i := ni & 31
	m := (ni - i) >> 5
	s := expTab[i] * p
	return math.Float64frombits(math.Float64bits(s) + uint64(m)<<52)
}

// expNegVec replaces every element of x with e^x, four lanes interleaved so
// the polynomial latency chains of neighbouring elements overlap. Lane
// arithmetic is identical to expNeg, so the transformation is elementwise
// deterministic regardless of how callers batch it.
func expNegVec(x []float64) {
	j := 0
	for ; j+3 < len(x); j += 4 {
		x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
		if !(x0 >= expFloor) || !(x1 >= expFloor) || !(x2 >= expFloor) || !(x3 >= expFloor) {
			x[j], x[j+1], x[j+2], x[j+3] = expNeg(x0), expNeg(x1), expNeg(x2), expNeg(x3)
			continue
		}
		n0 := math.Floor(x0*expInvL + 0.5)
		n1 := math.Floor(x1*expInvL + 0.5)
		n2 := math.Floor(x2*expInvL + 0.5)
		n3 := math.Floor(x3*expInvL + 0.5)
		r0 := (x0 - n0*expLHi) - n0*expLLo
		r1 := (x1 - n1*expLHi) - n1*expLLo
		r2 := (x2 - n2*expLHi) - n2*expLLo
		r3 := (x3 - n3*expLHi) - n3*expLLo
		p0 := 1 + r0*(1+r0*(expC2+r0*(expC3+r0*(expC4+r0*expC5))))
		p1 := 1 + r1*(1+r1*(expC2+r1*(expC3+r1*(expC4+r1*expC5))))
		p2 := 1 + r2*(1+r2*(expC2+r2*(expC3+r2*(expC4+r2*expC5))))
		p3 := 1 + r3*(1+r3*(expC2+r3*(expC3+r3*(expC4+r3*expC5))))
		i0, i1, i2, i3 := int64(n0)&31, int64(n1)&31, int64(n2)&31, int64(n3)&31
		s0 := expTab[i0] * p0
		s1 := expTab[i1] * p1
		s2 := expTab[i2] * p2
		s3 := expTab[i3] * p3
		x[j] = math.Float64frombits(math.Float64bits(s0) + uint64((int64(n0)-i0)>>5)<<52)
		x[j+1] = math.Float64frombits(math.Float64bits(s1) + uint64((int64(n1)-i1)>>5)<<52)
		x[j+2] = math.Float64frombits(math.Float64bits(s2) + uint64((int64(n2)-i2)>>5)<<52)
		x[j+3] = math.Float64frombits(math.Float64bits(s3) + uint64((int64(n3)-i3)>>5)<<52)
	}
	for ; j < len(x); j++ {
		x[j] = expNeg(x[j])
	}
}
