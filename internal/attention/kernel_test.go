package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// randomMask builds an adversarial mask: several sequences interleaved in
// random-length runs, padding rows sprinkled in, and (optionally) positions
// shuffled within runs so the builder's sorted-run fast path cannot apply.
func randomMask(rng *rand.Rand, qTokens, kvTokens int, sorted bool) Mask {
	m := Mask{
		QPos:  make([]int, qTokens),
		QSeq:  make([]int, qTokens),
		KVPos: make([]int, kvTokens),
		KVSeq: make([]int, kvTokens),
	}
	numSeqs := rng.Intn(4) + 1
	for i := 0; i < qTokens; i++ {
		m.QSeq[i] = rng.Intn(numSeqs)
		m.QPos[i] = rng.Intn(24)
	}
	nextPos := make([]int, numSeqs)
	j := 0
	for j < kvTokens {
		runLen := rng.Intn(6) + 1
		if j+runLen > kvTokens {
			runLen = kvTokens - j
		}
		if rng.Intn(5) == 0 { // padding run
			for i := 0; i < runLen; i++ {
				m.KVPos[j] = -1
				m.KVSeq[j] = rng.Intn(numSeqs)
				j++
			}
			continue
		}
		s := rng.Intn(numSeqs)
		start := j
		for i := 0; i < runLen; i++ {
			m.KVPos[j] = nextPos[s]
			m.KVSeq[j] = s
			nextPos[s]++
			j++
		}
		if !sorted {
			rng.Shuffle(j-start, func(a, b int) {
				m.KVPos[start+a], m.KVPos[start+b] = m.KVPos[start+b], m.KVPos[start+a]
			})
		}
	}
	return m
}

// The interval builder must admit exactly the same (query, key) pairs as the
// naive per-score mask predicate, on sorted and shuffled position layouts.
func TestPropertyIntervalsMatchNaiveMask(t *testing.T) {
	f := func(seed int64, rawQ, rawKV uint8, sorted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		qTokens := int(rawQ%12) + 1
		kvTokens := int(rawKV%40) + 1
		m := randomMask(rng, qTokens, kvTokens, sorted)
		iv := NewIntervals(m)
		for qt := 0; qt < qTokens; qt++ {
			allowed := make([]bool, kvTokens)
			for _, r := range iv.Row(qt) {
				if r.Lo < 0 || r.Hi > kvTokens || r.Lo >= r.Hi {
					t.Logf("malformed interval [%d,%d)", r.Lo, r.Hi)
					return false
				}
				for j := r.Lo; j < r.Hi; j++ {
					if allowed[j] {
						t.Logf("kv %d covered twice for query %d", j, qt)
						return false
					}
					allowed[j] = true
				}
			}
			for j := 0; j < kvTokens; j++ {
				want := m.KVPos[j] >= 0 && m.KVSeq[j] == m.QSeq[qt] && m.KVPos[j] <= m.QPos[qt]
				if allowed[j] != want {
					t.Logf("query %d kv %d: intervals say %v, mask says %v", qt, j, allowed[j], want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Interval ordering: the kernels rely on rows being visited in ascending KV
// index order, so intervals must come back sorted and non-overlapping.
func TestIntervalsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		m := randomMask(rng, 8, 40, trial%2 == 0)
		iv := NewIntervals(m)
		for qt := 0; qt < 8; qt++ {
			prev := -1
			for _, r := range iv.Row(qt) {
				if r.Lo < prev {
					t.Fatalf("intervals out of order at query %d: %v", qt, iv.Row(qt))
				}
				prev = r.Hi
			}
		}
	}
}

// The production kernel must agree with the seed Reference witness on
// arbitrary masks (to float tolerance: Reference dots in float32, GQA in
// float64, so bits legitimately differ).
func TestGQAMatchesReferenceOnRandomMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		qTokens := rng.Intn(10) + 1
		kvTokens := rng.Intn(48) + 1
		m := randomMask(rng, qTokens, kvTokens, trial%2 == 0)
		nh, nkv, dh := 4, 2, 8
		q := tensor.RandN(rng, qTokens, nh, dh)
		k := tensor.RandN(rng, kvTokens, nkv, dh)
		v := tensor.RandN(rng, kvTokens, nkv, dh)
		got, err := GQA(q, k, v, m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Reference(q, k, v, m)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(got.O, want.O); d > 1e-5 {
			t.Fatalf("trial %d: kernel diverges from reference by %v", trial, d)
		}
		for i := range got.LSE {
			gi, wi := got.LSE[i], want.LSE[i]
			if math.IsInf(gi, -1) != math.IsInf(wi, -1) {
				t.Fatalf("trial %d: LSE[%d] identity mismatch: %v vs %v", trial, i, gi, wi)
			}
			if !math.IsInf(gi, -1) && math.Abs(gi-wi) > 1e-5 {
				t.Fatalf("trial %d: LSE[%d] = %v, reference %v", trial, i, gi, wi)
			}
		}
	}
}

// Parallel execution must be bit-identical to serial at every worker count:
// the kernels partition output cells, and each cell's reduction order is
// fixed.
func TestKernelsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qTokens, kvTokens := 13, 57
	m := randomMask(rng, qTokens, kvTokens, false)
	q := tensor.RandN(rng, qTokens, 4, 8)
	k := tensor.RandN(rng, kvTokens, 2, 8)
	v := tensor.RandN(rng, kvTokens, 2, 8)

	run := func(workers int) (*Output, *Output, *Output) {
		old := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(old)
		g, err := GQA(q, k, v, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Blocked(q, k, v, m, 7)
		if err != nil {
			t.Fatal(err)
		}
		mg := Merge(g, b)
		return g, b, mg
	}
	g1, b1, m1 := run(1)
	for _, w := range []int{2, 8} {
		gw, bw, mw := run(w)
		for name, pair := range map[string][2]*Output{
			"gqa": {g1, gw}, "blocked": {b1, bw}, "merge": {m1, mw},
		} {
			if d := tensor.MaxAbsDiff(pair[0].O, pair[1].O); d != 0 {
				t.Fatalf("%s at %d workers differs from serial by %v", name, w, d)
			}
			for i := range pair[0].LSE {
				if pair[0].LSE[i] != pair[1].LSE[i] && !(math.IsInf(pair[0].LSE[i], -1) && math.IsInf(pair[1].LSE[i], -1)) {
					t.Fatalf("%s LSE[%d] differs at %d workers", name, i, w)
				}
			}
		}
	}
}

// expNeg must track math.Exp to ~1e-13 relative over the softmax argument
// range and hit exp(0) == 1 exactly.
func TestExpNegAccuracy(t *testing.T) {
	if expNeg(0) != 1 {
		t.Fatalf("expNeg(0) = %v, want exactly 1", expNeg(0))
	}
	if expNeg(math.Inf(-1)) != 0 {
		t.Fatalf("expNeg(-Inf) = %v, want 0", expNeg(math.Inf(-1)))
	}
	if !math.IsNaN(expNeg(math.NaN())) {
		t.Fatalf("expNeg(NaN) = %v, want NaN", expNeg(math.NaN()))
	}
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 0, 4003)
	for i := 0; i < 2000; i++ {
		xs = append(xs, -rng.Float64()*30)  // typical softmax shifts
		xs = append(xs, -rng.Float64()*745) // full underflow range
	}
	xs = append(xs, 0, -690, -708.3, -745)
	batch := append([]float64(nil), xs...)
	expNegVec(batch)
	for i, x := range xs {
		want := math.Exp(x)
		got := expNeg(x)
		if got != batch[i] {
			t.Fatalf("expNegVec[%d] = %v, expNeg = %v (batching changed bits)", i, batch[i], got)
		}
		if want == 0 {
			if got != 0 {
				t.Fatalf("expNeg(%v) = %v, want 0", x, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-13 {
			t.Fatalf("expNeg(%v) = %v, math.Exp = %v, rel err %v", x, got, want, rel)
		}
	}
}
