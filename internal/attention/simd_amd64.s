//go:build amd64

#include "textflag.h"

// func axpyAVX(alpha float64, x, y []float64)
// y[i] += alpha*x[i]: elementwise multiply then add, the same two roundings
// per element as the portable loop in the same order.
TEXT ·axpyAVX(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y3
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ x_len+16(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   atail_setup
aloop4:
	VMOVUPD (SI), Y1
	VMULPD  Y3, Y1, Y1
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  aloop4
atail_setup:
	ANDQ $3, CX
	JZ   adone
atail:
	VMOVSD (SI), X1
	VMULSD X3, X1, X1
	VMOVSD (DI), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  atail
adone:
	VZEROUPPER
	RET

// func cvtAVX(dst []float64, src []float32)
// Widens len(src) float32s to float64 (conversion is exact, so any
// implementation produces identical bits).
TEXT ·cvtAVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   ctail_setup
cloop4:
	VCVTPS2PD (SI), Y1
	VMOVUPD   Y1, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  cloop4
ctail_setup:
	ANDQ $3, CX
	JZ   cdone
ctail:
	VCVTSS2SD (SI), X1, X1
	VMOVSD    X1, (DI)
	ADDQ $4, SI
	ADDQ $8, DI
	DECQ CX
	JNZ  ctail
cdone:
	VZEROUPPER
	RET

// func dotTileAVX(q, rows, out []float64, scale float64) float64
// The whole dotTile loop: len(out) consecutive rows of len(q) floats are
// each dotted against q (lane arithmetic identical to dotvAVX/the scalar
// unroll), scaled, stored, and max-tracked. VMAXSD's operand order makes a
// NaN score leave the running max unchanged, matching the scalar compare.
TEXT ·dotTileAVX(SB), NOSPLIT, $0-88
	MOVQ q_base+0(FP), R8
	MOVQ q_len+8(FP), R10
	MOVQ rows_base+24(FP), DI
	MOVQ out_base+48(FP), R9
	MOVQ out_len+56(FP), CX
	VMOVSD scale+72(FP), X7
	MOVQ $0xFFF0000000000000, AX // -Inf
	MOVQ AX, X8
	TESTQ CX, CX
	JZ   tdone
trowloop:
	VXORPD Y0, Y0, Y0
	MOVQ R8, SI
	MOVQ R10, DX
	SHRQ $2, DX
	JZ   ttail_setup
tinner4:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VMULPD  Y2, Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  tinner4
ttail_setup:
	VEXTRACTF128 $1, Y0, X3
	MOVQ R10, DX
	ANDQ $3, DX
	JZ   tcombine
ttail:
	VMOVSD (SI), X1
	VMULSD (DI), X1, X1
	VADDSD X1, X0, X0
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ DX
	JNZ  ttail
tcombine:
	VADDSD    X3, X0, X4
	VPERMILPD $1, X0, X5
	VPERMILPD $1, X3, X6
	VADDSD    X6, X5, X5
	VADDSD    X5, X4, X4
	VMULSD    X7, X4, X4
	VMOVSD    X4, (R9)
	ADDQ $8, R9
	VMAXSD    X8, X4, X8
	DECQ CX
	JNZ  trowloop
tdone:
	VMOVSD X8, ret+80(FP)
	VZEROUPPER
	RET
