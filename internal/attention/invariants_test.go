package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// Attention outputs are convex combinations of value rows: per head and
// dimension, every output lies within [min, max] of the attended values.
func TestPropertyOutputInConvexHull(t *testing.T) {
	f := func(seed int64, rawT uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		T := int(rawT%8) + 2
		q := tensor.RandN(rng, T, 4, 4)
		k := tensor.RandN(rng, T, 2, 4)
		v := tensor.RandN(rng, T, 2, 4)
		out, err := GQA(q, k, v, FullCausal(T))
		if err != nil {
			return false
		}
		group := 4 / 2
		for tok := 0; tok < T; tok++ {
			for h := 0; h < 4; h++ {
				kvh := h / group
				for d := 0; d < 4; d++ {
					lo, hi := math.Inf(1), math.Inf(-1)
					for j := 0; j <= tok; j++ {
						x := float64(v.At(j, kvh, d))
						if x < lo {
							lo = x
						}
						if x > hi {
							hi = x
						}
					}
					got := float64(out.O.At(tok, h, d))
					if got < lo-1e-5 || got > hi+1e-5 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Softmax weights are shift-invariant: adding a constant to every key's dot
// product (by shifting Q along a direction orthogonal to nothing — emulate
// by scaling all K rows' contribution via an additive constant column) must
// not change outputs. We test the equivalent property directly exposed by
// the implementation: scaling Q and K jointly by c and 1/c preserves scores.
func TestPropertyScoreScaleInvariance(t *testing.T) {
	f := func(seed int64, rawC uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := float32(rawC%7) + 2
		T := 5
		q := tensor.RandN(rng, T, 2, 4)
		k := tensor.RandN(rng, T, 1, 4)
		v := tensor.RandN(rng, T, 1, 4)
		base, err := GQA(q, k, v, FullCausal(T))
		if err != nil {
			return false
		}
		qs := q.Clone()
		qs.Scale(c)
		ks := k.Clone()
		ks.Scale(1 / c)
		scaled, err := GQA(qs, ks, v, FullCausal(T))
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(base.O, scaled.O) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// LSE is the log-partition function: exp(LSE) must equal the sum of
// exponentiated scores, verified against a direct computation.
func TestLSEMatchesDirectPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	T := 6
	q := tensor.RandN(rng, T, 2, 4)
	k := tensor.RandN(rng, T, 1, 4)
	v := tensor.RandN(rng, T, 1, 4)
	out, err := GQA(q, k, v, FullCausal(T))
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 / math.Sqrt(4)
	for tok := 0; tok < T; tok++ {
		for h := 0; h < 2; h++ {
			var part float64
			for j := 0; j <= tok; j++ {
				part += math.Exp(float64(tensor.Dot(q.Row(tok, h), k.Row(j, 0))) * scale)
			}
			if diff := math.Abs(out.LSEAt(tok, h) - math.Log(part)); diff > 1e-4 {
				t.Fatalf("LSE(%d,%d) = %v, direct %v", tok, h, out.LSEAt(tok, h), math.Log(part))
			}
		}
	}
}
