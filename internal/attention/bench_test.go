package attention

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// benchShape builds a long-context partial-prefill workload: T new queries
// against P cached plus T new KV tokens, Llama-like head geometry scaled to
// a CPU-benchable size.
func benchShape(T, P int) (q, k, v *tensor.Tensor, m Mask) {
	rng := rand.New(rand.NewSource(1))
	q = tensor.RandN(rng, T, 8, 64)
	k = tensor.RandN(rng, P+T, 2, 64)
	v = tensor.RandN(rng, P+T, 2, 64)
	return q, k, v, PartialCausal(T, P)
}

// BenchmarkGQASeedReference is the seed scalar kernel, the baseline every
// BENCH_kernel.json entry is measured against.
func BenchmarkGQASeedReference(b *testing.B) {
	q, k, v, m := benchShape(128, 1920)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reference(q, k, v, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGQA measures the tiled interval-mask kernel across worker counts.
func BenchmarkGQA(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			q, k, v, m := benchShape(128, 1920)
			old := parallel.SetWorkers(w)
			defer parallel.SetWorkers(old)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := GQA(q, k, v, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGQADecodeStep is the batched-decode shape: a block of one-token
// queries, each against a long per-sequence context.
func BenchmarkGQADecodeStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ctx := 2048
	q := tensor.RandN(rng, 1, 8, 64)
	k := tensor.RandN(rng, ctx, 2, 64)
	v := tensor.RandN(rng, ctx, 2, 64)
	m := Decode(ctx)
	out := NewOutput(1, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := GQAInto(out, q, k, v, m); err != nil {
			b.Fatal(err)
		}
	}
}
