package attention

import "sort"

// Interval is a half-open range [Lo, Hi) of KV row indices every one of
// which a query may attend to.
type Interval struct{ Lo, Hi int }

// Intervals is the precomputed contiguous-interval form of a Mask: for each
// query row, the ordered list of KV index ranges it may attend to. The
// kernels iterate these ranges branch-free instead of re-evaluating the
// three-way mask predicate per (query, head, key) score — the predicate
// depends only on the query token, so one pass over the KV metadata serves
// every head.
//
// The builder exploits the structure the ring layer actually produces —
// per-sequence runs of KV rows whose positions are appended in increasing
// order — but stays correct for arbitrary masks: unsorted runs fall back to
// a per-row scan that emits maximal allowed subranges.
type Intervals struct {
	flat []Interval // all rows' intervals, back to back
	off  []int32    // per query row: start index into flat; len = T+1
}

// kvRun is a maximal run of KV rows sharing one sequence id with no padding
// (negative-position) rows.
type kvRun struct {
	lo, hi    int
	seq       int
	minPos    int
	maxPos    int
	ascending bool // positions non-decreasing across the run
}

// NewIntervals precomputes the allowed KV intervals of every query row of a
// validated mask.
func NewIntervals(m Mask) *Intervals {
	runs := buildRuns(m)
	iv := &Intervals{off: make([]int32, len(m.QPos)+1)}
	// Consecutive query rows frequently share (seq, pos); when the predicate
	// is identical, duplicate the previous row's intervals instead of
	// re-walking the runs.
	for t := range m.QPos {
		if t > 0 && m.QSeq[t] == m.QSeq[t-1] && m.QPos[t] == m.QPos[t-1] {
			iv.flat = append(iv.flat, iv.flat[iv.off[t-1]:iv.off[t]]...)
			iv.off[t+1] = int32(len(iv.flat))
			continue
		}
		qs, qp := m.QSeq[t], m.QPos[t]
		rowStart := len(iv.flat)
		for _, r := range runs {
			if r.seq != qs || r.minPos > qp {
				continue
			}
			if r.maxPos <= qp {
				iv.appendInterval(rowStart, r.lo, r.hi)
				continue
			}
			if r.ascending {
				// First index whose position exceeds qp bounds the run.
				cut := r.lo + sort.Search(r.hi-r.lo, func(i int) bool {
					return m.KVPos[r.lo+i] > qp
				})
				if cut > r.lo {
					iv.appendInterval(rowStart, r.lo, cut)
				}
				continue
			}
			// Arbitrary order: emit maximal allowed subranges.
			start := -1
			for j := r.lo; j < r.hi; j++ {
				if m.KVPos[j] <= qp {
					if start < 0 {
						start = j
					}
					continue
				}
				if start >= 0 {
					iv.appendInterval(rowStart, start, j)
					start = -1
				}
			}
			if start >= 0 {
				iv.appendInterval(rowStart, start, r.hi)
			}
		}
		iv.off[t+1] = int32(len(iv.flat))
	}
	return iv
}

// appendInterval adds [lo, hi) to the current query row (whose intervals
// start at flat[rowStart]), merging with the row's previous interval when
// adjacent. The merge must never cross a row boundary: a trailing interval
// of the previous row that happens to end where this one starts belongs to
// a different query.
func (iv *Intervals) appendInterval(rowStart, lo, hi int) {
	if n := len(iv.flat); n > rowStart && iv.flat[n-1].Hi == lo {
		iv.flat[n-1].Hi = hi
		return
	}
	iv.flat = append(iv.flat, Interval{Lo: lo, Hi: hi})
}

// Row returns query row t's allowed intervals, ascending and non-overlapping.
func (iv *Intervals) Row(t int) []Interval {
	return iv.flat[iv.off[t]:iv.off[t+1]]
}

// buildRuns splits the KV metadata into maximal same-sequence padding-free
// runs annotated with position bounds and sortedness.
func buildRuns(m Mask) []kvRun {
	var runs []kvRun
	n := len(m.KVPos)
	for j := 0; j < n; {
		if m.KVPos[j] < 0 {
			j++
			continue
		}
		r := kvRun{lo: j, seq: m.KVSeq[j], minPos: m.KVPos[j], maxPos: m.KVPos[j], ascending: true}
		j++
		for j < n && m.KVPos[j] >= 0 && m.KVSeq[j] == r.seq {
			p := m.KVPos[j]
			if p < m.KVPos[j-1] {
				r.ascending = false
			}
			if p < r.minPos {
				r.minPos = p
			}
			if p > r.maxPos {
				r.maxPos = p
			}
			j++
		}
		r.hi = j
		runs = append(runs, r)
	}
	return runs
}
