// Package attention implements exact grouped-query attention (GQA) together
// with the log-sum-exp bookkeeping that makes ring attention lossless.
//
// Three kernels are provided:
//
//   - GQA: the production kernel. It compiles the position/sequence mask into
//     per-query contiguous KV intervals once per call (see Intervals), then
//     sweeps head-major tiles — one (query token, KV head) cell computes
//     every query head of the group against the same contiguous K/V rows —
//     and fans the independent tiles out over the shared worker pool
//     (internal/parallel). Scores and weighted sums accumulate in float64.
//   - Blocked: a flash-style streaming kernel that visits KV in blocks while
//     maintaining an online softmax (Milakov & Gimelshein), used both as a
//     second witness for correctness and as the shape of the per-step
//     computation inside the ring loop.
//   - Merge: the merge-attention operator (Appendix B, Equation 4) that
//     combines partial attention outputs computed against disjoint KV chunks
//     into the exact attention over the full KV.
//
// Every output cell (query token, head) is a pure function of the query row
// and the ordered list of KV rows the mask admits, with a fixed per-cell
// reduction order. Two consequences the rest of the repo relies on:
// parallel execution is bit-identical to serial at any worker count (cells
// are independent and each is computed identically), and interleaving
// masked-out rows — padding, other sequences' KV — into the key/value
// tensors cannot perturb a single bit.
//
// All kernels carry per-(query, head) log-sum-exp (LSE) values so partial
// results can be merged exactly. Masking is expressed through global token
// positions and sequence ids, which is what the load-balanced sharding of
// the paper produces: after sharding, a rank's queries and KV entries are
// non-contiguous slices of the original sequences, so causality must be
// evaluated on original positions rather than local indices.
package attention

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NegInf is the LSE value of a query row that attended to zero keys. Merge
// treats such partials as exact zero weight.
var NegInf = math.Inf(-1)

// Mask describes which KV entries each query may attend to. A query i may
// attend to KV j iff QSeq[i] == KVSeq[j] and KVPos[j] <= QPos[i] and
// KVPos[j] >= 0. Negative KV positions mark padding rows that nothing may
// attend to (the ring algorithms pad per-rank KV to equalize message sizes).
type Mask struct {
	QPos  []int // global position of each query token within its sequence
	QSeq  []int // sequence id of each query token
	KVPos []int // global position of each KV token; negative = padding
	KVSeq []int // sequence id of each KV token
}

// FullCausal returns the mask of a standard single-sequence full prefill:
// T queries at positions 0..T-1 attending causally to T keys.
func FullCausal(T int) Mask {
	return PartialCausal(T, 0)
}

// PartialCausal returns the mask of a single-sequence partial prefill: T new
// queries at positions P..P+T-1 attending to P cached plus T new keys at
// positions 0..P+T-1.
func PartialCausal(T, P int) Mask {
	m := Mask{
		QPos:  make([]int, T),
		QSeq:  make([]int, T),
		KVPos: make([]int, P+T),
		KVSeq: make([]int, P+T),
	}
	for i := 0; i < T; i++ {
		m.QPos[i] = P + i
	}
	for j := 0; j < P+T; j++ {
		m.KVPos[j] = j
	}
	return m
}

// Decode returns the mask of a single decode step: one query at position
// ctxLen-1 attending to ctxLen keys (the cache including the new token).
func Decode(ctxLen int) Mask {
	return PartialCausal(1, ctxLen-1)
}

// Validate checks that the mask is consistent with the given tensor lengths.
func (m Mask) Validate(qTokens, kvTokens int) error {
	if len(m.QPos) != qTokens || len(m.QSeq) != qTokens {
		return fmt.Errorf("attention: mask has %d/%d query entries, want %d", len(m.QPos), len(m.QSeq), qTokens)
	}
	if len(m.KVPos) != kvTokens || len(m.KVSeq) != kvTokens {
		return fmt.Errorf("attention: mask has %d/%d kv entries, want %d", len(m.KVPos), len(m.KVSeq), kvTokens)
	}
	return nil
}

// Output is a partial or complete attention result: the output embeddings
// plus the per-(query, head) log-sum-exp needed to merge partials exactly.
type Output struct {
	O   *tensor.Tensor // [T, NH, DH]
	LSE []float64      // len T*NH, index t*NH+h; NegInf where nothing attended
}

// NewOutput allocates a zero output with NegInf LSEs (the identity element
// of Merge).
func NewOutput(tokens, heads, dim int) *Output {
	lse := make([]float64, tokens*heads)
	for i := range lse {
		lse[i] = NegInf
	}
	return &Output{O: tensor.New(tokens, heads, dim), LSE: lse}
}

// Reset restores the zero/NegInf identity so the output can be reused as a
// kernel destination. The ring sweeps recycle one partial Output per rank
// this way instead of allocating one per ring step.
func (o *Output) Reset() {
	clear(o.O.Data)
	for i := range o.LSE {
		o.LSE[i] = NegInf
	}
}

// LSEAt returns the log-sum-exp for query token t, head h.
func (o *Output) LSEAt(t, h int) float64 { return o.LSE[t*o.O.Heads+h] }

// Clone returns a deep copy of the output.
func (o *Output) Clone() *Output {
	lse := make([]float64, len(o.LSE))
	copy(lse, o.LSE)
	return &Output{O: o.O.Clone(), LSE: lse}
}

// gqaScratch is one worker's reusable kernel state: compacted scores for
// every head of the current group, float64 accumulators, and the per-head
// running max/denominator. Pooled so steady-state kernel calls allocate
// nothing regardless of context length.
// kvTileRows is how many K/V rows a cell widens to float64 at a time. The
// tile amortizes the float32→float64 conversion across the whole query-head
// group and keeps the working set (tile + one score stripe per head) inside
// L1 for realistic head dims.
const kvTileRows = 32

type gqaScratch struct {
	scores []float64
	acc    []float64
	qf     []float64 // query rows of the current group, widened once per cell
	tile   []float64 // current K or V row tile, widened once per group
	max    []float64
	denom  []float64
}

var scratchPool = sync.Pool{New: func() any { return &gqaScratch{} }}

func (s *gqaScratch) size(group, na, dim int) {
	if need := group * na; cap(s.scores) < need {
		s.scores = make([]float64, need)
	}
	if need := group * dim; cap(s.acc) < need {
		s.acc = make([]float64, need)
		s.qf = make([]float64, need)
	}
	if need := kvTileRows * dim; cap(s.tile) < need {
		s.tile = make([]float64, need)
	}
	if cap(s.max) < group {
		s.max = make([]float64, group)
		s.denom = make([]float64, group)
	}
}

func validateGQA(q, k, v *tensor.Tensor, m Mask) error {
	if err := m.Validate(q.Tokens, k.Tokens); err != nil {
		return err
	}
	if k.Tokens != v.Tokens || k.Heads != v.Heads || k.Dim != v.Dim {
		return fmt.Errorf("attention: k %s and v %s differ", k.ShapeString(), v.ShapeString())
	}
	if q.Dim != k.Dim {
		return fmt.Errorf("attention: head dim mismatch q=%d kv=%d", q.Dim, k.Dim)
	}
	if k.Heads == 0 || q.Heads%k.Heads != 0 {
		return fmt.Errorf("attention: NH=%d not divisible by NKV=%d", q.Heads, k.Heads)
	}
	return nil
}

// GQA computes exact grouped-query attention of q against (k, v) under the
// mask. q has NH heads; k and v have NKV heads with NH divisible by NKV.
// Scores are scaled by 1/sqrt(DH). Accumulation is float64 so the kernel is
// a trustworthy oracle for the distributed implementations.
func GQA(q, k, v *tensor.Tensor, m Mask) (*Output, error) {
	out := NewOutput(q.Tokens, q.Heads, q.Dim)
	if err := GQAInto(out, q, k, v, m); err != nil {
		return nil, err
	}
	return out, nil
}

// GQAInto computes GQA into dst, which must have q's shape. dst is reset
// first, so the caller can reuse one Output across many kernel calls (the
// ring sweep loops do). The result is bit-identical to GQA at any worker
// count.
func GQAInto(dst *Output, q, k, v *tensor.Tensor, m Mask) error {
	if err := validateGQA(q, k, v, m); err != nil {
		return err
	}
	if dst.O.Tokens != q.Tokens || dst.O.Heads != q.Heads || dst.O.Dim != q.Dim {
		return fmt.Errorf("attention: destination %s does not match q %s", dst.O.ShapeString(), q.ShapeString())
	}
	dst.Reset()
	if q.Tokens == 0 {
		return nil
	}
	iv := NewIntervals(m)
	gqaTiles(dst, q, k, v, iv)
	return nil
}

// gqaTiles runs the tiled kernel: one work item per (KV head, query token)
// cell, each computing the full query-head group of that cell. Cells write
// disjoint output rows, so the pool fan-out is embarrassingly parallel and
// exactly equal to the serial sweep.
func gqaTiles(dst *Output, q, k, v *tensor.Tensor, iv *Intervals) {
	T := q.Tokens
	nh, nkv, dh := q.Heads, k.Heads, q.Dim
	group := nh / nkv
	scale := 1 / math.Sqrt(float64(dh))
	parallel.For(nkv*T, func(lo, hi int) {
		sc := scratchPool.Get().(*gqaScratch)
		defer scratchPool.Put(sc)
		for cell := lo; cell < hi; cell++ {
			kvh := cell / T
			t := cell % T
			row := iv.Row(t)
			na := 0
			for _, r := range row {
				na += r.Hi - r.Lo
			}
			if na == 0 {
				continue // identity rows: dst is already zero/NegInf
			}
			sc.size(group, na, dh)
			gqaCell(dst, q, k, v, sc, row, t, kvh, group, na, scale)
		}
	})
}

// gqaCell computes every head of one (query token, KV head) tile. Pass one
// walks the allowed K rows accumulating scaled float64 dot products and the
// running max; pass two re-walks the same rows fusing the exp-weight with
// the weighted V accumulation. Each K/V row is widened to float64 exactly
// once (widening is exact, so sharing the conversion across the head group
// changes no bits) and every per-head accumulator is contiguous. Both passes
// visit rows in ascending KV index order, so the per-(t,h) reduction order
// is fixed regardless of tiling.
func gqaCell(dst *Output, q, k, v *tensor.Tensor, sc *gqaScratch, row []Interval, t, kvh, group, na int, scale float64) {
	dh := q.Dim
	kvRowLen := k.Heads * dh
	scores, acc, maxs, denom := sc.scores, sc.acc, sc.max, sc.denom
	qf := sc.qf[:group*dh]
	tile := sc.tile[:kvTileRows*dh]
	h0 := kvh * group
	for g := 0; g < group; g++ {
		maxs[g] = NegInf
		qRow := q.Data[(t*q.Heads+h0+g)*dh:][:dh]
		for d, x := range qRow {
			qf[g*dh+d] = float64(x)
		}
	}
	// Pass 1: scores and per-head max, widening each K tile once and scoring
	// every head of the group against it.
	ns := 0
	for _, r := range row {
		for base := r.Lo; base < r.Hi; base += kvTileRows {
			n := r.Hi - base
			if n > kvTileRows {
				n = kvTileRows
			}
			widenRows(tile, k.Data, base, n, kvRowLen, kvh*dh, dh)
			for g := 0; g < group; g++ {
				mx := dotTile(qf[g*dh:][:dh], tile[:n*dh], scores[g*na+ns:][:n], scale)
				if mx > maxs[g] {
					maxs[g] = mx
				}
			}
			ns += n
		}
	}
	// Turn every head's score stripe into softmax weights in place: one
	// shifted-exp batch per head over the whole allowed set.
	for g := 0; g < group; g++ {
		sg := scores[g*na:][:na]
		mg := maxs[g]
		for i := range sg {
			sg[i] -= mg
		}
		expNegVec(sg)
	}
	// Pass 2: weighted V accumulation over the same tiles. Per head the
	// weights, denominator and accumulator all reduce in ascending KV order,
	// independent of tiling.
	for i := range acc[:group*dh] {
		acc[i] = 0
	}
	for g := 0; g < group; g++ {
		denom[g] = 0
	}
	ns = 0
	for _, r := range row {
		for base := r.Lo; base < r.Hi; base += kvTileRows {
			n := r.Hi - base
			if n > kvTileRows {
				n = kvTileRows
			}
			widenRows(tile, v.Data, base, n, kvRowLen, kvh*dh, dh)
			for g := 0; g < group; g++ {
				w := scores[g*na+ns:][:n]
				dg := denom[g]
				accg := acc[g*dh:][:dh]
				if useAVX {
					for jj, wj := range w {
						dg += wj
						axpyAVX(wj, tile[jj*dh:][:dh], accg)
					}
				} else {
					for jj, wj := range w {
						dg += wj
						vRow := tile[jj*dh:][:dh]
						for d, vd := range vRow {
							accg[d] += wj * vd
						}
					}
				}
				denom[g] = dg
			}
			ns += n
		}
	}
	for g := 0; g < group; g++ {
		oRow := dst.O.Data[(t*q.Heads+h0+g)*dh:][:dh]
		accg := acc[g*dh:][:dh]
		for d := 0; d < dh; d++ {
			oRow[d] = float32(accg[d] / denom[g])
		}
		dst.LSE[t*q.Heads+h0+g] = maxs[g] + math.Log(denom[g])
	}
}

// widenRows converts n consecutive KV rows (one KV head's dh-wide stripe,
// starting at token row base) into the contiguous float64 tile. Widening is
// exact, so sharing the converted tile across the head group changes no bits.
func widenRows(tile []float64, data []float32, base, n, rowLen, headOff, dh int) {
	if useAVX {
		if rowLen == dh {
			cvtAVX(tile[:n*dh], data[base*dh:][:n*dh])
			return
		}
		off := base*rowLen + headOff
		for jj := 0; jj < n; jj++ {
			cvtAVX(tile[jj*dh:][:dh], data[off:][:dh])
			off += rowLen
		}
		return
	}
	if rowLen == dh {
		// Single-KV-head layout: the stripe is the whole row block, one flat
		// conversion loop.
		src := data[base*dh:][: n*dh : n*dh]
		dst := tile[:n*dh]
		for i, x := range src {
			dst[i] = float64(x)
		}
		return
	}
	off := base*rowLen + headOff
	for jj := 0; jj < n; jj++ {
		src := data[off:][:dh:dh]
		dst := tile[jj*dh:][:dh]
		for d, x := range src {
			dst[d] = float64(x)
		}
		off += rowLen
	}
}

// dotTile scores one widened query row against every row of a widened K
// tile, writing scaled float64 dot products and returning their max. The
// four-way unrolled accumulators break the floating-point add latency chain;
// the summation order is a fixed function of the row length, never of the
// caller.
func dotTile(q, rows, out []float64, scale float64) float64 {
	dh := len(q)
	if useAVX {
		return dotTileAVX(q, rows[:len(out)*dh], out, scale)
	}
	mx := NegInf
	for jj := range out {
		row := rows[jj*dh:][:dh]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+3 < dh; i += 4 {
			s0 += q[i] * row[i]
			s1 += q[i+1] * row[i+1]
			s2 += q[i+2] * row[i+2]
			s3 += q[i+3] * row[i+3]
		}
		for ; i < dh; i++ {
			s0 += q[i] * row[i]
		}
		s := ((s0 + s2) + (s1 + s3)) * scale
		out[jj] = s
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Reference is the seed scalar kernel kept verbatim as a second witness: a
// direct per-(token, head, key) evaluation of the mask with float32 dot
// products and float64 softmax accumulation. The tests check the production
// kernel against it and the kernel benchmarks use it as the baseline.
func Reference(q, k, v *tensor.Tensor, m Mask) (*Output, error) {
	if err := validateGQA(q, k, v, m); err != nil {
		return nil, err
	}
	group := q.Heads / k.Heads
	scale := 1 / math.Sqrt(float64(q.Dim))
	out := NewOutput(q.Tokens, q.Heads, q.Dim)

	scores := make([]float64, k.Tokens)
	allowed := make([]int, 0, k.Tokens)
	acc := make([]float64, q.Dim)
	for t := 0; t < q.Tokens; t++ {
		for h := 0; h < q.Heads; h++ {
			kvh := h / group
			qRow := q.Row(t, h)
			allowed = allowed[:0]
			maxScore := NegInf
			for j := 0; j < k.Tokens; j++ {
				if m.KVPos[j] < 0 || m.KVSeq[j] != m.QSeq[t] || m.KVPos[j] > m.QPos[t] {
					continue
				}
				s := float64(tensor.Dot(qRow, k.Row(j, kvh))) * scale
				scores[j] = s
				allowed = append(allowed, j)
				if s > maxScore {
					maxScore = s
				}
			}
			if len(allowed) == 0 {
				continue // LSE stays NegInf, output row stays zero
			}
			var denom float64
			for i := range acc {
				acc[i] = 0
			}
			for _, j := range allowed {
				w := math.Exp(scores[j] - maxScore)
				denom += w
				vRow := v.Row(j, kvh)
				for d := 0; d < q.Dim; d++ {
					acc[d] += w * float64(vRow[d])
				}
			}
			oRow := out.O.Row(t, h)
			for d := 0; d < q.Dim; d++ {
				oRow[d] = float32(acc[d] / denom)
			}
			out.LSE[t*q.Heads+h] = maxScore + math.Log(denom)
		}
	}
	return out, nil
}

// Blocked computes the same result as GQA by streaming KV in blocks of
// blockSize tokens with an online softmax, the computation pattern of
// FlashAttention and of each ring iteration. blockSize must be positive.
// Blocks are zero-copy views of k and v, and one partial Output is recycled
// across blocks, so the witness kernel allocates O(1) beyond its result.
func Blocked(q, k, v *tensor.Tensor, m Mask, blockSize int) (*Output, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("attention: blockSize %d must be positive", blockSize)
	}
	if err := validateGQA(q, k, v, m); err != nil {
		return nil, err
	}
	out := NewOutput(q.Tokens, q.Heads, q.Dim)
	partial := NewOutput(q.Tokens, q.Heads, q.Dim)
	rowLen := k.Heads * k.Dim
	for lo := 0; lo < k.Tokens; lo += blockSize {
		hi := lo + blockSize
		if hi > k.Tokens {
			hi = k.Tokens
		}
		sub := Mask{
			QPos:  m.QPos,
			QSeq:  m.QSeq,
			KVPos: m.KVPos[lo:hi],
			KVSeq: m.KVSeq[lo:hi],
		}
		kBlk, err := tensor.FromData(hi-lo, k.Heads, k.Dim, k.Data[lo*rowLen:hi*rowLen])
		if err != nil {
			return nil, err
		}
		vBlk, err := tensor.FromData(hi-lo, v.Heads, v.Dim, v.Data[lo*rowLen:hi*rowLen])
		if err != nil {
			return nil, err
		}
		if err := GQAInto(partial, q, kBlk, vBlk, sub); err != nil {
			return nil, err
		}
		AccumulateInto(out, partial)
	}
	return out, nil
}

// forCells fans fn over n cells, or runs it inline when the whole job is
// smaller than one pool dispatch is worth (decode-step Merge/Accumulate
// touches a handful of rows; the dispatch would cost more than the math).
// Inline and fanned execution are bit-identical, so this is purely a
// throughput decision.
func forCells(work, n int, fn func(lo, hi int)) {
	const minParallelWork = 4096 // scalar ops; ~a few µs, the dispatch cost
	if work < minParallelWork {
		fn(0, n)
		return
	}
	parallel.For(n, fn)
}

// mergeScratchPool recycles the per-worker float64 accumulator Merge needs;
// the decode path calls Merge every ring sweep and must not allocate scratch
// per call.
var mergeScratchPool = sync.Pool{New: func() any { return &[]float64{} }}

// Merge combines partial attention outputs computed against disjoint KV
// chunks for the same queries, per Equation 4:
//
//	O = Σ_s O_s · exp(LSE_s − LSE_max) / Σ_s exp(LSE_s − LSE_max)
//
// and the merged LSE is LSE_max + log Σ_s exp(LSE_s − LSE_max), making the
// operation associative: merging merges is merging everything. Cells fan out
// over the worker pool; each (token, head) cell is independent, so parallel
// output equals serial exactly.
func Merge(partials ...*Output) *Output {
	if len(partials) == 0 {
		panic("attention: Merge of zero partials")
	}
	first := partials[0]
	tokens, heads, dim := first.O.Tokens, first.O.Heads, first.O.Dim
	for _, p := range partials[1:] {
		if p.O.Tokens != tokens || p.O.Heads != heads || p.O.Dim != dim {
			panic(fmt.Sprintf("attention: merge shape mismatch %s vs %s",
				p.O.ShapeString(), first.O.ShapeString()))
		}
	}
	out := NewOutput(tokens, heads, dim)
	forCells(tokens*heads*dim, tokens*heads, func(lo, hi int) {
		accp := mergeScratchPool.Get().(*[]float64)
		defer mergeScratchPool.Put(accp)
		if cap(*accp) < dim {
			*accp = make([]float64, dim)
		}
		acc := (*accp)[:dim]
		for idx := lo; idx < hi; idx++ {
			t := idx / heads
			h := idx % heads
			maxLSE := NegInf
			for _, p := range partials {
				if p.LSE[idx] > maxLSE {
					maxLSE = p.LSE[idx]
				}
			}
			if math.IsInf(maxLSE, -1) {
				continue // nothing attended anywhere; identity row
			}
			var denom float64
			for i := range acc {
				acc[i] = 0
			}
			for _, p := range partials {
				if math.IsInf(p.LSE[idx], -1) {
					continue
				}
				w := math.Exp(p.LSE[idx] - maxLSE)
				denom += w
				row := p.O.Row(t, h)
				for d := 0; d < dim; d++ {
					acc[d] += w * float64(row[d])
				}
			}
			row := out.O.Row(t, h)
			for d := 0; d < dim; d++ {
				row[d] = float32(acc[d] / denom)
			}
			out.LSE[idx] = maxLSE + math.Log(denom)
		}
	})
	return out
}

// AccumulateInto merges partial into dst in place. It is the streaming form
// of Merge used by the ring loop, where partial results arrive one KV chunk
// at a time and keeping all N partials alive would waste memory. Cells fan
// out over the worker pool with the same exact-equality guarantee as Merge.
func AccumulateInto(dst, partial *Output) {
	if dst.O.Tokens != partial.O.Tokens || dst.O.Heads != partial.O.Heads || dst.O.Dim != partial.O.Dim {
		panic(fmt.Sprintf("attention: accumulate shape mismatch %s vs %s",
			dst.O.ShapeString(), partial.O.ShapeString()))
	}
	heads, dim := dst.O.Heads, dst.O.Dim
	forCells(dst.O.Tokens*heads*dim, dst.O.Tokens*heads, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			t := idx / heads
			h := idx % heads
			a, b := dst.LSE[idx], partial.LSE[idx]
			if math.IsInf(b, -1) {
				continue
			}
			if math.IsInf(a, -1) {
				copy(dst.O.Row(t, h), partial.O.Row(t, h))
				dst.LSE[idx] = b
				continue
			}
			m := a
			if b > m {
				m = b
			}
			wa := math.Exp(a - m)
			wb := math.Exp(b - m)
			denom := wa + wb
			dRow := dst.O.Row(t, h)
			pRow := partial.O.Row(t, h)
			for d := 0; d < dim; d++ {
				dRow[d] = float32((wa*float64(dRow[d]) + wb*float64(pRow[d])) / denom)
			}
			dst.LSE[idx] = m + math.Log(denom)
		}
	})
}

// GatherTokens reorders (or selects) query rows of an output. It is used by
// the pass-Q algorithms to permute partial outputs back into source-rank
// order before the All2All.
func (o *Output) GatherTokens(rows []int) *Output {
	heads := o.O.Heads
	out := &Output{O: o.O.Gather(rows), LSE: make([]float64, len(rows)*heads)}
	for i, r := range rows {
		copy(out.LSE[i*heads:(i+1)*heads], o.LSE[r*heads:(r+1)*heads])
	}
	return out
}

// ConcatOutputs concatenates outputs along the token dimension.
func ConcatOutputs(parts ...*Output) *Output {
	tensors := make([]*tensor.Tensor, 0, len(parts))
	total := 0
	heads := 0
	for _, p := range parts {
		if p == nil || p.O.Tokens == 0 {
			continue
		}
		tensors = append(tensors, p.O)
		total += p.O.Tokens
		heads = p.O.Heads
	}
	out := &Output{O: tensor.Concat(tensors...), LSE: make([]float64, total*heads)}
	off := 0
	for _, p := range parts {
		if p == nil || p.O.Tokens == 0 {
			continue
		}
		copy(out.LSE[off:], p.LSE)
		off += len(p.LSE)
	}
	return out
}
