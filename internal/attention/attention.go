// Package attention implements exact grouped-query attention (GQA) together
// with the log-sum-exp bookkeeping that makes ring attention lossless.
//
// Three kernels are provided:
//
//   - GQA: a direct reference kernel over arbitrary position/sequence masks.
//   - Blocked: a flash-style streaming kernel that visits KV in blocks while
//     maintaining an online softmax (Milakov & Gimelshein), used both as a
//     second witness for correctness and as the shape of the per-step
//     computation inside the ring loop.
//   - Merge: the merge-attention operator (Appendix B, Equation 4) that
//     combines partial attention outputs computed against disjoint KV chunks
//     into the exact attention over the full KV.
//
// All kernels carry per-(query, head) log-sum-exp (LSE) values so partial
// results can be merged exactly. Masking is expressed through global token
// positions and sequence ids, which is what the load-balanced sharding of
// the paper produces: after sharding, a rank's queries and KV entries are
// non-contiguous slices of the original sequences, so causality must be
// evaluated on original positions rather than local indices.
package attention

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// NegInf is the LSE value of a query row that attended to zero keys. Merge
// treats such partials as exact zero weight.
var NegInf = math.Inf(-1)

// Mask describes which KV entries each query may attend to. A query i may
// attend to KV j iff QSeq[i] == KVSeq[j] and KVPos[j] <= QPos[i] and
// KVPos[j] >= 0. Negative KV positions mark padding rows that nothing may
// attend to (the ring algorithms pad per-rank KV to equalize message sizes).
type Mask struct {
	QPos  []int // global position of each query token within its sequence
	QSeq  []int // sequence id of each query token
	KVPos []int // global position of each KV token; negative = padding
	KVSeq []int // sequence id of each KV token
}

// FullCausal returns the mask of a standard single-sequence full prefill:
// T queries at positions 0..T-1 attending causally to T keys.
func FullCausal(T int) Mask {
	return PartialCausal(T, 0)
}

// PartialCausal returns the mask of a single-sequence partial prefill: T new
// queries at positions P..P+T-1 attending to P cached plus T new keys at
// positions 0..P+T-1.
func PartialCausal(T, P int) Mask {
	m := Mask{
		QPos:  make([]int, T),
		QSeq:  make([]int, T),
		KVPos: make([]int, P+T),
		KVSeq: make([]int, P+T),
	}
	for i := 0; i < T; i++ {
		m.QPos[i] = P + i
	}
	for j := 0; j < P+T; j++ {
		m.KVPos[j] = j
	}
	return m
}

// Decode returns the mask of a single decode step: one query at position
// ctxLen-1 attending to ctxLen keys (the cache including the new token).
func Decode(ctxLen int) Mask {
	return PartialCausal(1, ctxLen-1)
}

// Validate checks that the mask is consistent with the given tensor lengths.
func (m Mask) Validate(qTokens, kvTokens int) error {
	if len(m.QPos) != qTokens || len(m.QSeq) != qTokens {
		return fmt.Errorf("attention: mask has %d/%d query entries, want %d", len(m.QPos), len(m.QSeq), qTokens)
	}
	if len(m.KVPos) != kvTokens || len(m.KVSeq) != kvTokens {
		return fmt.Errorf("attention: mask has %d/%d kv entries, want %d", len(m.KVPos), len(m.KVSeq), kvTokens)
	}
	return nil
}

// Output is a partial or complete attention result: the output embeddings
// plus the per-(query, head) log-sum-exp needed to merge partials exactly.
type Output struct {
	O   *tensor.Tensor // [T, NH, DH]
	LSE []float64      // len T*NH, index t*NH+h; NegInf where nothing attended
}

// NewOutput allocates a zero output with NegInf LSEs (the identity element
// of Merge).
func NewOutput(tokens, heads, dim int) *Output {
	lse := make([]float64, tokens*heads)
	for i := range lse {
		lse[i] = NegInf
	}
	return &Output{O: tensor.New(tokens, heads, dim), LSE: lse}
}

// LSEAt returns the log-sum-exp for query token t, head h.
func (o *Output) LSEAt(t, h int) float64 { return o.LSE[t*o.O.Heads+h] }

// Clone returns a deep copy of the output.
func (o *Output) Clone() *Output {
	lse := make([]float64, len(o.LSE))
	copy(lse, o.LSE)
	return &Output{O: o.O.Clone(), LSE: lse}
}

// GQA computes exact grouped-query attention of q against (k, v) under the
// mask. q has NH heads; k and v have NKV heads with NH divisible by NKV.
// Scores are scaled by 1/sqrt(DH). Accumulation is float64 so the reference
// is a trustworthy oracle for the distributed implementations.
func GQA(q, k, v *tensor.Tensor, m Mask) (*Output, error) {
	if err := m.Validate(q.Tokens, k.Tokens); err != nil {
		return nil, err
	}
	if k.Tokens != v.Tokens || k.Heads != v.Heads || k.Dim != v.Dim {
		return nil, fmt.Errorf("attention: k %s and v %s differ", k.ShapeString(), v.ShapeString())
	}
	if q.Dim != k.Dim {
		return nil, fmt.Errorf("attention: head dim mismatch q=%d kv=%d", q.Dim, k.Dim)
	}
	if k.Heads == 0 || q.Heads%k.Heads != 0 {
		return nil, fmt.Errorf("attention: NH=%d not divisible by NKV=%d", q.Heads, k.Heads)
	}
	group := q.Heads / k.Heads
	scale := 1 / math.Sqrt(float64(q.Dim))
	out := NewOutput(q.Tokens, q.Heads, q.Dim)

	scores := make([]float64, k.Tokens)
	allowed := make([]int, 0, k.Tokens)
	acc := make([]float64, q.Dim)
	for t := 0; t < q.Tokens; t++ {
		for h := 0; h < q.Heads; h++ {
			kvh := h / group
			qRow := q.Row(t, h)
			allowed = allowed[:0]
			maxScore := NegInf
			for j := 0; j < k.Tokens; j++ {
				if m.KVPos[j] < 0 || m.KVSeq[j] != m.QSeq[t] || m.KVPos[j] > m.QPos[t] {
					continue
				}
				s := float64(tensor.Dot(qRow, k.Row(j, kvh))) * scale
				scores[j] = s
				allowed = append(allowed, j)
				if s > maxScore {
					maxScore = s
				}
			}
			if len(allowed) == 0 {
				continue // LSE stays NegInf, output row stays zero
			}
			var denom float64
			for i := range acc {
				acc[i] = 0
			}
			for _, j := range allowed {
				w := math.Exp(scores[j] - maxScore)
				denom += w
				vRow := v.Row(j, kvh)
				for d := 0; d < q.Dim; d++ {
					acc[d] += w * float64(vRow[d])
				}
			}
			oRow := out.O.Row(t, h)
			for d := 0; d < q.Dim; d++ {
				oRow[d] = float32(acc[d] / denom)
			}
			out.LSE[t*q.Heads+h] = maxScore + math.Log(denom)
		}
	}
	return out, nil
}

// Blocked computes the same result as GQA by streaming KV in blocks of
// blockSize tokens with an online softmax, the computation pattern of
// FlashAttention and of each ring iteration. blockSize must be positive.
func Blocked(q, k, v *tensor.Tensor, m Mask, blockSize int) (*Output, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("attention: blockSize %d must be positive", blockSize)
	}
	if err := m.Validate(q.Tokens, k.Tokens); err != nil {
		return nil, err
	}
	out := NewOutput(q.Tokens, q.Heads, q.Dim)
	for lo := 0; lo < k.Tokens; lo += blockSize {
		hi := lo + blockSize
		if hi > k.Tokens {
			hi = k.Tokens
		}
		sub := Mask{
			QPos:  m.QPos,
			QSeq:  m.QSeq,
			KVPos: m.KVPos[lo:hi],
			KVSeq: m.KVSeq[lo:hi],
		}
		partial, err := GQA(q, k.SliceTokens(lo, hi), v.SliceTokens(lo, hi), sub)
		if err != nil {
			return nil, err
		}
		AccumulateInto(out, partial)
	}
	if k.Tokens == 0 {
		// No blocks were visited; out is already the zero/NegInf identity.
		return out, nil
	}
	return out, nil
}

// Merge combines partial attention outputs computed against disjoint KV
// chunks for the same queries, per Equation 4:
//
//	O = Σ_s O_s · exp(LSE_s − LSE_max) / Σ_s exp(LSE_s − LSE_max)
//
// and the merged LSE is LSE_max + log Σ_s exp(LSE_s − LSE_max), making the
// operation associative: merging merges is merging everything.
func Merge(partials ...*Output) *Output {
	if len(partials) == 0 {
		panic("attention: Merge of zero partials")
	}
	first := partials[0]
	tokens, heads, dim := first.O.Tokens, first.O.Heads, first.O.Dim
	for _, p := range partials[1:] {
		if p.O.Tokens != tokens || p.O.Heads != heads || p.O.Dim != dim {
			panic(fmt.Sprintf("attention: merge shape mismatch %s vs %s",
				p.O.ShapeString(), first.O.ShapeString()))
		}
	}
	out := NewOutput(tokens, heads, dim)
	acc := make([]float64, dim)
	for t := 0; t < tokens; t++ {
		for h := 0; h < heads; h++ {
			idx := t*heads + h
			maxLSE := NegInf
			for _, p := range partials {
				if p.LSE[idx] > maxLSE {
					maxLSE = p.LSE[idx]
				}
			}
			if math.IsInf(maxLSE, -1) {
				continue // nothing attended anywhere; identity row
			}
			var denom float64
			for i := range acc {
				acc[i] = 0
			}
			for _, p := range partials {
				if math.IsInf(p.LSE[idx], -1) {
					continue
				}
				w := math.Exp(p.LSE[idx] - maxLSE)
				denom += w
				row := p.O.Row(t, h)
				for d := 0; d < dim; d++ {
					acc[d] += w * float64(row[d])
				}
			}
			row := out.O.Row(t, h)
			for d := 0; d < dim; d++ {
				row[d] = float32(acc[d] / denom)
			}
			out.LSE[idx] = maxLSE + math.Log(denom)
		}
	}
	return out
}

// AccumulateInto merges partial into dst in place. It is the streaming form
// of Merge used by the ring loop, where partial results arrive one KV chunk
// at a time and keeping all N partials alive would waste memory.
func AccumulateInto(dst, partial *Output) {
	if dst.O.Tokens != partial.O.Tokens || dst.O.Heads != partial.O.Heads || dst.O.Dim != partial.O.Dim {
		panic(fmt.Sprintf("attention: accumulate shape mismatch %s vs %s",
			dst.O.ShapeString(), partial.O.ShapeString()))
	}
	heads, dim := dst.O.Heads, dst.O.Dim
	for t := 0; t < dst.O.Tokens; t++ {
		for h := 0; h < heads; h++ {
			idx := t*heads + h
			a, b := dst.LSE[idx], partial.LSE[idx]
			if math.IsInf(b, -1) {
				continue
			}
			if math.IsInf(a, -1) {
				copy(dst.O.Row(t, h), partial.O.Row(t, h))
				dst.LSE[idx] = b
				continue
			}
			m := a
			if b > m {
				m = b
			}
			wa := math.Exp(a - m)
			wb := math.Exp(b - m)
			denom := wa + wb
			dRow := dst.O.Row(t, h)
			pRow := partial.O.Row(t, h)
			for d := 0; d < dim; d++ {
				dRow[d] = float32((wa*float64(dRow[d]) + wb*float64(pRow[d])) / denom)
			}
			dst.LSE[idx] = m + math.Log(denom)
		}
	}
}

// GatherTokens reorders (or selects) query rows of an output. It is used by
// the pass-Q algorithms to permute partial outputs back into source-rank
// order before the All2All.
func (o *Output) GatherTokens(rows []int) *Output {
	heads := o.O.Heads
	out := &Output{O: o.O.Gather(rows), LSE: make([]float64, len(rows)*heads)}
	for i, r := range rows {
		copy(out.LSE[i*heads:(i+1)*heads], o.LSE[r*heads:(r+1)*heads])
	}
	return out
}

// ConcatOutputs concatenates outputs along the token dimension.
func ConcatOutputs(parts ...*Output) *Output {
	tensors := make([]*tensor.Tensor, 0, len(parts))
	total := 0
	heads := 0
	for _, p := range parts {
		if p == nil || p.O.Tokens == 0 {
			continue
		}
		tensors = append(tensors, p.O)
		total += p.O.Tokens
		heads = p.O.Heads
	}
	out := &Output{O: tensor.Concat(tensors...), LSE: make([]float64, total*heads)}
	off := 0
	for _, p := range parts {
		if p == nil || p.O.Tokens == 0 {
			continue
		}
		copy(out.LSE[off:], p.LSE)
		off += len(p.LSE)
	}
	return out
}
