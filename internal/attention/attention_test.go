package attention

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

const tol = 1e-5

func randQKV(rng *rand.Rand, T, ctx, nh, nkv, dh int) (q, k, v *tensor.Tensor) {
	q = tensor.RandN(rng, T, nh, dh)
	k = tensor.RandN(rng, ctx, nkv, dh)
	v = tensor.RandN(rng, ctx, nkv, dh)
	return
}

func TestFullCausalFirstTokenAttendsOnlyItself(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q, k, v := randQKV(rng, 4, 4, 2, 1, 8)
	out, err := GQA(q, k, v, FullCausal(4))
	if err != nil {
		t.Fatal(err)
	}
	// Token 0 attends only to key 0, so its output is exactly v[0].
	for h := 0; h < 2; h++ {
		for d := 0; d < 8; d++ {
			if diff := math.Abs(float64(out.O.At(0, h, d)) - float64(v.At(0, 0, d))); diff > tol {
				t.Fatalf("token0 head%d dim%d = %v, want v0 = %v", h, d, out.O.At(0, h, d), v.At(0, 0, d))
			}
		}
	}
	// LSE of token 0 is the self-score: q0·k0/sqrt(dh).
	scale := 1 / math.Sqrt(8)
	for h := 0; h < 2; h++ {
		want := float64(tensor.Dot(q.Row(0, h), k.Row(0, 0))) * scale
		if diff := math.Abs(out.LSEAt(0, h) - want); diff > tol {
			t.Fatalf("token0 LSE = %v, want %v", out.LSEAt(0, h), want)
		}
	}
}

func TestUniformValuesGiveUniformOutput(t *testing.T) {
	// With all V rows identical, attention output must equal that row no
	// matter what the scores are.
	rng := rand.New(rand.NewSource(2))
	q, k, _ := randQKV(rng, 5, 5, 4, 2, 4)
	v := tensor.New(5, 2, 4)
	for tok := 0; tok < 5; tok++ {
		for h := 0; h < 2; h++ {
			copy(v.Row(tok, h), []float32{1, 2, 3, 4})
		}
	}
	out, err := GQA(q, k, v, FullCausal(5))
	if err != nil {
		t.Fatal(err)
	}
	for tok := 0; tok < 5; tok++ {
		for h := 0; h < 4; h++ {
			row := out.O.Row(tok, h)
			for d, want := range []float32{1, 2, 3, 4} {
				if math.Abs(float64(row[d])-float64(want)) > tol {
					t.Fatalf("output (%d,%d) = %v, want [1 2 3 4]", tok, h, row)
				}
			}
		}
	}
}

func TestGQAHeadGrouping(t *testing.T) {
	// With NKV=1, every query head must read the same K/V; craft K so that
	// key 1 dominates for a known query, then all heads of that query focus
	// on v[1].
	nh, dh := 4, 4
	q := tensor.New(1, nh, dh)
	for h := 0; h < nh; h++ {
		q.Row(0, h)[0] = 10
	}
	k := tensor.New(3, 1, dh)
	k.Row(1, 0)[0] = 10 // huge score for key 1
	v := tensor.RandN(rand.New(rand.NewSource(3)), 3, 1, dh)
	out, err := GQA(q, k, v, Mask{
		QPos: []int{2}, QSeq: []int{0},
		KVPos: []int{0, 1, 2}, KVSeq: []int{0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < nh; h++ {
		for d := 0; d < dh; d++ {
			if math.Abs(float64(out.O.At(0, h, d))-float64(v.At(1, 0, d))) > 1e-3 {
				t.Fatalf("head %d did not focus on key 1: got %v want %v",
					h, out.O.Row(0, h), v.Row(1, 0))
			}
		}
	}
}

func TestPartialCausalMatchesSuffixOfFull(t *testing.T) {
	// Computing full prefill over P+T tokens and taking the last T rows must
	// equal a partial prefill of T new tokens against P cached tokens.
	rng := rand.New(rand.NewSource(4))
	P, T := 6, 4
	q, k, v := randQKV(rng, P+T, P+T, 4, 2, 8)
	full, err := GQA(q, k, v, FullCausal(P+T))
	if err != nil {
		t.Fatal(err)
	}
	qNew := q.SliceTokens(P, P+T)
	partial, err := GQA(qNew, k, v, PartialCausal(T, P))
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(full.O.SliceTokens(P, P+T), partial.O); d > tol {
		t.Fatalf("partial prefill deviates from full suffix by %v", d)
	}
}

func TestDecodeIsPartialWithTOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := 9
	q, k, v := randQKV(rng, 1, ctx, 2, 2, 4)
	dec, err := GQA(q, k, v, Decode(ctx))
	if err != nil {
		t.Fatal(err)
	}
	part, err := GQA(q, k, v, PartialCausal(1, ctx-1))
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(dec.O, part.O); d != 0 {
		t.Fatalf("Decode mask differs from PartialCausal(1, ctx-1) by %v", d)
	}
}

func TestPaddingRowsIgnored(t *testing.T) {
	// Adding padding KV rows (position -1) with huge values must not change
	// the result.
	rng := rand.New(rand.NewSource(6))
	q, k, v := randQKV(rng, 3, 3, 2, 1, 4)
	base, err := GQA(q, k, v, FullCausal(3))
	if err != nil {
		t.Fatal(err)
	}
	pad := tensor.New(2, 1, 4)
	pad.Fill(100)
	k2 := tensor.Concat(k, pad)
	v2 := tensor.Concat(v, pad)
	m := FullCausal(3)
	m.KVPos = append(m.KVPos, -1, -1)
	m.KVSeq = append(m.KVSeq, 0, 0)
	padded, err := GQA(q, k2, v2, m)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(base.O, padded.O); d != 0 {
		t.Fatalf("padding rows leaked into attention, diff %v", d)
	}
}

func TestCrossSequenceIsolation(t *testing.T) {
	// Two fused sequences must not attend to each other: computing them
	// fused must equal computing them separately.
	rng := rand.New(rand.NewSource(7))
	t1, t2 := 4, 3
	q1, k1, v1 := randQKV(rng, t1, t1, 2, 1, 4)
	q2, k2, v2 := randQKV(rng, t2, t2, 2, 1, 4)
	o1, err := GQA(q1, k1, v1, FullCausal(t1))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := GQA(q2, k2, v2, FullCausal(t2))
	if err != nil {
		t.Fatal(err)
	}
	fusedMask := Mask{
		QPos:  []int{0, 1, 2, 3, 0, 1, 2},
		QSeq:  []int{0, 0, 0, 0, 1, 1, 1},
		KVPos: []int{0, 1, 2, 3, 0, 1, 2},
		KVSeq: []int{0, 0, 0, 0, 1, 1, 1},
	}
	fused, err := GQA(tensor.Concat(q1, q2), tensor.Concat(k1, k2), tensor.Concat(v1, v2), fusedMask)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(fused.O.SliceTokens(0, t1), o1.O); d != 0 {
		t.Fatalf("sequence 0 contaminated, diff %v", d)
	}
	if d := tensor.MaxAbsDiff(fused.O.SliceTokens(t1, t1+t2), o2.O); d != 0 {
		t.Fatalf("sequence 1 contaminated, diff %v", d)
	}
}

func TestEmptyAttendSetYieldsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q, k, v := randQKV(rng, 1, 2, 2, 1, 4)
	// Query at position 0 of sequence 5; KV belongs to sequence 0.
	out, err := GQA(q, k, v, Mask{
		QPos: []int{0}, QSeq: []int{5},
		KVPos: []int{0, 1}, KVSeq: []int{0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.LSEAt(0, 0), -1) {
		t.Fatalf("LSE = %v, want -Inf for empty attend set", out.LSEAt(0, 0))
	}
	for _, x := range out.O.Data {
		if x != 0 {
			t.Fatal("output of empty attend set must be zero")
		}
	}
}

func TestGQAErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q, k, v := randQKV(rng, 2, 2, 3, 1, 4) // NH=3 not divisible... 3/1 ok; craft errors below
	if _, err := GQA(q, k, v, FullCausal(3)); err == nil {
		t.Fatal("mask length mismatch not rejected")
	}
	badV := tensor.RandN(rng, 3, 1, 4)
	if _, err := GQA(q, k, badV, FullCausal(2)); err == nil {
		t.Fatal("k/v token mismatch not rejected")
	}
	badK := tensor.RandN(rng, 2, 2, 4)
	if _, err := GQA(q, badK, tensor.RandN(rng, 2, 2, 4), FullCausal(2)); err == nil {
		t.Fatal("NH not divisible by NKV not rejected")
	}
	badDim := tensor.RandN(rng, 2, 1, 8)
	if _, err := GQA(q, badDim, badDim, FullCausal(2)); err == nil {
		t.Fatal("head-dim mismatch not rejected")
	}
}

func TestBlockedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, blockSize := range []int{1, 2, 3, 5, 7, 16} {
		q, k, v := randQKV(rng, 6, 10, 4, 2, 8)
		m := PartialCausal(6, 4)
		ref, err := GQA(q, k, v, m)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := Blocked(q, k, v, m, blockSize)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(ref.O, blk.O); d > tol {
			t.Fatalf("blockSize=%d: blocked deviates by %v", blockSize, d)
		}
		for i := range ref.LSE {
			if math.Abs(ref.LSE[i]-blk.LSE[i]) > tol {
				t.Fatalf("blockSize=%d: LSE[%d] = %v, want %v", blockSize, i, blk.LSE[i], ref.LSE[i])
			}
		}
	}
}

func TestBlockedRejectsBadBlockSize(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, k, v := randQKV(rng, 2, 2, 2, 1, 4)
	if _, err := Blocked(q, k, v, FullCausal(2), 0); err == nil {
		t.Fatal("blockSize 0 not rejected")
	}
}

func TestMergeTwoHalvesEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	T, ctx := 5, 12
	q, k, v := randQKV(rng, T, ctx, 4, 2, 8)
	m := PartialCausal(T, ctx-T)
	whole, err := GQA(q, k, v, m)
	if err != nil {
		t.Fatal(err)
	}
	split := 7
	left, err := GQA(q, k.SliceTokens(0, split), v.SliceTokens(0, split),
		Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[:split], KVSeq: m.KVSeq[:split]})
	if err != nil {
		t.Fatal(err)
	}
	right, err := GQA(q, k.SliceTokens(split, ctx), v.SliceTokens(split, ctx),
		Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[split:], KVSeq: m.KVSeq[split:]})
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(left, right)
	if d := tensor.MaxAbsDiff(whole.O, merged.O); d > tol {
		t.Fatalf("merge deviates from monolithic attention by %v", d)
	}
	for i := range whole.LSE {
		if math.Abs(whole.LSE[i]-merged.LSE[i]) > tol {
			t.Fatalf("merged LSE[%d] = %v, want %v", i, merged.LSE[i], whole.LSE[i])
		}
	}
}

func TestMergeWithIdentityIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q, k, v := randQKV(rng, 3, 3, 2, 1, 4)
	out, err := GQA(q, k, v, FullCausal(3))
	if err != nil {
		t.Fatal(err)
	}
	ident := NewOutput(3, 2, 4)
	merged := Merge(out, ident)
	if d := tensor.MaxAbsDiff(out.O, merged.O); d > tol {
		t.Fatalf("merging with identity changed output by %v", d)
	}
}

func TestAccumulateIntoMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	T, ctx := 4, 9
	q, k, v := randQKV(rng, T, ctx, 2, 2, 4)
	m := PartialCausal(T, ctx-T)
	parts := make([]*Output, 0, 3)
	bounds := []int{0, 3, 6, 9}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		p, err := GQA(q, k.SliceTokens(lo, hi), v.SliceTokens(lo, hi),
			Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[lo:hi], KVSeq: m.KVSeq[lo:hi]})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	batch := Merge(parts...)
	stream := NewOutput(T, 2, 4)
	for _, p := range parts {
		AccumulateInto(stream, p)
	}
	if d := tensor.MaxAbsDiff(batch.O, stream.O); d > tol {
		t.Fatalf("streaming accumulate deviates from batch merge by %v", d)
	}
	for i := range batch.LSE {
		if math.Abs(batch.LSE[i]-stream.LSE[i]) > tol {
			t.Fatalf("stream LSE[%d] = %v, want %v", i, stream.LSE[i], batch.LSE[i])
		}
	}
}

func TestGatherTokensPermutesLSE(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q, k, v := randQKV(rng, 4, 4, 2, 1, 4)
	out, err := GQA(q, k, v, FullCausal(4))
	if err != nil {
		t.Fatal(err)
	}
	g := out.GatherTokens([]int{3, 1})
	if g.O.Tokens != 2 {
		t.Fatalf("gather tokens = %d, want 2", g.O.Tokens)
	}
	if g.LSEAt(0, 0) != out.LSEAt(3, 0) || g.LSEAt(1, 1) != out.LSEAt(1, 1) {
		t.Fatal("GatherTokens did not carry LSE rows")
	}
}

func TestConcatOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	q, k, v := randQKV(rng, 5, 5, 2, 1, 4)
	out, err := GQA(q, k, v, FullCausal(5))
	if err != nil {
		t.Fatal(err)
	}
	a := out.GatherTokens([]int{0, 1})
	b := out.GatherTokens([]int{2, 3, 4})
	cat := ConcatOutputs(a, nil, b)
	if d := tensor.MaxAbsDiff(cat.O, out.O); d != 0 {
		t.Fatalf("ConcatOutputs diff %v", d)
	}
	for i := range out.LSE {
		if cat.LSE[i] != out.LSE[i] {
			t.Fatal("ConcatOutputs dropped LSE")
		}
	}
}

// Property (the paper's losslessness core): for random shapes and random KV
// partitions into up to 5 chunks, merging per-chunk partial attentions in
// any order reproduces monolithic attention.
func TestPropertyMergePartitionInvariance(t *testing.T) {
	f := func(seed int64, rawT, rawCtx, rawCuts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		T := int(rawT%6) + 1
		ctx := T + int(rawCtx%12)
		q, k, v := randQKV(rng, T, ctx, 4, 2, 4)
		m := PartialCausal(T, ctx-T)
		whole, err := GQA(q, k, v, m)
		if err != nil {
			return false
		}
		// Random partition bounds.
		nCuts := int(rawCuts % 4)
		bounds := []int{0, ctx}
		for i := 0; i < nCuts; i++ {
			bounds = append(bounds, rng.Intn(ctx+1))
		}
		sortInts(bounds)
		parts := []*Output{}
		for i := 0; i+1 < len(bounds); i++ {
			lo, hi := bounds[i], bounds[i+1]
			if lo == hi {
				continue
			}
			p, err := GQA(q, k.SliceTokens(lo, hi), v.SliceTokens(lo, hi),
				Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[lo:hi], KVSeq: m.KVSeq[lo:hi]})
			if err != nil {
				return false
			}
			parts = append(parts, p)
		}
		// Shuffle merge order: Merge must be permutation invariant.
		rng.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		merged := Merge(parts...)
		return tensor.MaxAbsDiff(whole.O, merged.O) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is associative — Merge(a, Merge(b, c)) == Merge(Merge(a,
// b), c) == Merge(a, b, c) within float tolerance.
func TestPropertyMergeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		T, ctx := 3, 9
		q, k, v := randQKV(rng, T, ctx, 2, 1, 4)
		m := PartialCausal(T, ctx-T)
		mk := func(lo, hi int) *Output {
			p, err := GQA(q, k.SliceTokens(lo, hi), v.SliceTokens(lo, hi),
				Mask{QPos: m.QPos, QSeq: m.QSeq, KVPos: m.KVPos[lo:hi], KVSeq: m.KVSeq[lo:hi]})
			if err != nil {
				panic(err)
			}
			return p
		}
		a, b, c := mk(0, 3), mk(3, 6), mk(6, 9)
		left := Merge(Merge(a, b), c)
		right := Merge(a, Merge(b, c))
		flat := Merge(a, b, c)
		return tensor.MaxAbsDiff(left.O, right.O) <= 1e-4 &&
			tensor.MaxAbsDiff(left.O, flat.O) <= 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
