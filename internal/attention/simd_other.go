//go:build !amd64

package attention

// Non-amd64 builds always take the portable scalar loops; the constant lets
// the compiler delete the vector branches entirely.
const useAVX = false

func axpyAVX(alpha float64, x, y []float64) { panic("attention: axpyAVX without AVX") }

func cvtAVX(dst []float64, src []float32) { panic("attention: cvtAVX without AVX") }

func dotTileAVX(q, rows, out []float64, scale float64) float64 {
	panic("attention: dotTileAVX without AVX")
}
