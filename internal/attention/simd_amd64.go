//go:build amd64

package attention

import "repro/internal/simd"

// useAVX gates the AVX inner loops. The vector code is lane-for-lane the
// same arithmetic as the four-way unrolled scalar loops (lane i of the
// vector accumulator is exactly scalar accumulator s_i, and the horizontal
// reduction replays ((s0+s2)+(s1+s3))), so switching between the two paths
// can never change a bit — it is purely a throughput decision. CPU
// detection lives in the shared internal/simd package, captured once at
// init.
var useAVX = simd.Available()

// axpyAVX computes y[i] += alpha*x[i] (len(y) >= len(x)), elementwise mul
// then add, identical rounding to the scalar loop. Implemented in
// simd_amd64.s.
func axpyAVX(alpha float64, x, y []float64)

// cvtAVX widens src into dst (len(dst) >= len(src)); float32→float64 is
// exact, so vector and scalar conversion agree bitwise. Implemented in
// simd_amd64.s.
func cvtAVX(dst []float64, src []float32)

// dotTileAVX runs the full dotTile inner loop — len(out) consecutive rows
// dotted against q, scaled, stored, max-tracked — with the same lane
// arithmetic as dotvAVX. Implemented in simd_amd64.s.
func dotTileAVX(q, rows, out []float64, scale float64) float64
