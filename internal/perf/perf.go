// Package perf is the calibrated analytical performance model that
// regenerates the paper's evaluation tables and figures. It extends the
// roofline analysis of §3.4 (Equations 1-3 and Appendix C) with the terms a
// real deployment pays: tensor-parallel AllReduces, ring SendRecv pipelining
// with compute overlap, the pass-Q All2All, weight-read memory floors for
// small batches, per-kernel and per-hop latencies, and the strong-scaling
// efficiency loss of sharding GEMMs across more GPUs.
//
// All latencies are returned in seconds. The model is deterministic and
// cheap (microseconds per evaluation), so the benchmark harness can sweep
// every configuration of the paper's §4 and the heuristic package can fit
// its empirical selector (Appendix D) against it.
//
// Calibration: GPU efficiency factors live in hw.Platform and were fitted
// once against the paper's anchor numbers (CP1 TTFT 42 s at 128K, standalone
// FA3 at 540 TF/s, Table 5 and Table 8 microsecond breakdowns); see
// EXPERIMENTS.md for the residuals on every reproduced table.
package perf

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/model"
)

// Variant selects the ring attention algorithm.
type Variant int

const (
	PassKV Variant = iota
	PassQ
	// Auto is not an algorithm but a policy: resolve pass-KV versus pass-Q
	// per prefill from the KV-cache miss rate via ChooseVariant (Equation 1).
	// The execution layers resolve Auto before entering a ring.
	Auto
)

func (v Variant) String() string {
	switch v {
	case PassKV:
		return "pass-KV"
	case PassQ:
		return "pass-Q"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// ChooseVariant implements Equation 1's miss-rate rule: with T new tokens
// against P cached, pass the KV embeddings when the miss rate T/(T+P) is at
// or above 2·NKV/NH (KV is the smaller circulating message), and pass the Q
// embeddings below it. A cold prefill (P = 0, miss rate 1) always selects
// pass-KV; a warm prefix-cache hit drives the miss rate — and the choice —
// down toward pass-Q.
func ChooseVariant(c model.Config, T, P int) Variant {
	if model.MissRate(T, P) >= 2*c.KVRatio() {
		return PassKV
	}
	return PassQ
}

// Calibration constants shared by all platforms. These capture effects that
// are properties of the software stack rather than of a specific fabric.
const (
	// MemEff is the achieved fraction of HBM bandwidth on streaming reads.
	MemEff = 0.85
	// TPScalingExp models the strong-scaling efficiency loss of linear
	// layers as the TP group grows beyond one host: achieved GEMM rate
	// scales with (8/NTP)^TPScalingExp (fitted to Table 7's TP16/TP32).
	TPScalingExp = 0.63
	// prefillLayerBase is the fixed per-transformer-layer cost of a prefill
	// forward pass not attributable to GEMM/attention/communication (norms,
	// rotary embedding, KV-cache writes, host launches).
	prefillLayerBase = 2.5e-3 // seconds per layer (~315 ms per 126-layer pass)
)

// System is a deployment configuration: CPNodes CP ranks, each a TPNodes
// host group of Plat.GPUsPerHost GPUs. The paper's CPn+TP8 runs have
// TPNodes = 1; its multi-node TP baselines have CPNodes = 1, TPNodes > 1.
type System struct {
	Model   model.Config
	Plat    hw.Platform
	CPNodes int // N, context-parallel ranks (one host each unless TPNodes>1)
	TPNodes int // hosts inside one tensor-parallel group
}

// Validate checks the configuration.
func (s System) Validate() error {
	if err := s.Model.Validate(); err != nil {
		return err
	}
	if s.CPNodes <= 0 || s.TPNodes <= 0 {
		return fmt.Errorf("perf: non-positive CPNodes=%d or TPNodes=%d", s.CPNodes, s.TPNodes)
	}
	if s.CPNodes > 1 && s.TPNodes > 1 {
		return fmt.Errorf("perf: combined multi-node TP inside CP is not modeled")
	}
	return nil
}

// TPGPUs returns the GPUs inside one tensor-parallel group.
func (s System) TPGPUs() int { return s.Plat.GPUsPerHost * s.TPNodes }

// TotalGPUs returns all GPUs in the system.
func (s System) TotalGPUs() int { return s.CPNodes * s.TPGPUs() }

// Name renders the paper's configuration naming: CP{N}+TP8 or TP{g}.
func (s System) Name() string {
	if s.TPNodes > 1 {
		return fmt.Sprintf("TP%d", s.TPGPUs())
	}
	if s.CPNodes == 1 {
		return "TP8"
	}
	return fmt.Sprintf("CP%d+TP8", s.CPNodes)
}

// ---------------------------------------------------------------------------
// Shared building blocks.
// ---------------------------------------------------------------------------

// WeightBytes returns the deployed parameter footprint: FP8 feed-forward
// weights (the paper's row-wise quantization) plus BF16 attention and
// embedding weights.
func WeightBytes(c model.Config) float64 {
	ffn := 3 * float64(c.ModelDim) * float64(c.FFNDim) * float64(c.Layers) // gate+up+down, fp8
	attn := float64(c.Layers) * (2*float64(c.ModelDim)*float64(c.ModelDim) +
		2*float64(c.ModelDim)*float64(c.NumKV*c.HeadDim)) * 2 // bf16
	embed := 2 * float64(c.VocabSize) * float64(c.ModelDim) * 2 // in+out, bf16
	return ffn + attn + embed
}

// CausalPairs returns the number of (query, key) attention pairs of a
// partial prefill: T new tokens against P cached plus themselves causally.
func CausalPairs(T, P int) float64 {
	t, p := float64(T), float64(P)
	return t*p + t*(t+1)/2
}

// gemmRate returns the achieved linear-layer FLOP rate per GPU, including
// the strong-scaling penalty for TP groups wider than one host.
func (s System) gemmRate() float64 {
	rate := s.Plat.GEMMRate()
	if g := s.TPGPUs(); g > s.Plat.GPUsPerHost {
		rate *= math.Pow(float64(s.Plat.GPUsPerHost)/float64(g), TPScalingExp)
	}
	return rate
}

// linearLayerTime returns the per-layer linear (GEMM) time for `rows` local
// tokens, floored by the weight-read memory bound that dominates small
// batches and decode.
func (s System) linearLayerTime(rows int) float64 {
	perLayerFLOPs := 2 * s.Model.Params / float64(s.Model.Layers) * float64(rows)
	flopsTime := perLayerFLOPs / float64(s.TPGPUs()) / s.gemmRate()
	memFloor := WeightBytes(s.Model) / float64(s.Model.Layers) / float64(s.TPGPUs()) /
		(s.Plat.GPU.HBMBW * MemEff)
	return math.Max(flopsTime, memFloor)
}

// allReduceTime returns the latency of one TP AllReduce over `bytes` of
// activations. Multi-host groups run hierarchically: an intra-host phase on
// the per-host shard, an inter-host phase over the hosts, plus fixed
// latency.
func (s System) allReduceTime(bytes float64) float64 {
	g := float64(s.Plat.GPUsPerHost)
	t := 2 * (g - 1) / g * bytes / float64(s.TPNodes) / s.Plat.IntraBW
	if s.TPNodes > 1 {
		t += 2 * bytes / (float64(s.TPGPUs()) * s.Plat.EffectiveInterBW())
	}
	t += s.Plat.ARLatencyBase + s.Plat.ARLatencyPerHop*float64(s.TPNodes-1)
	return t
}

// ---------------------------------------------------------------------------
// Prefill (TTFT).
// ---------------------------------------------------------------------------

// PrefillBreakdown decomposes a TTFT prediction. All fields are seconds
// except the per-iteration fields, which are per ring iteration per layer
// (the quantities Table 5 reports in microseconds).
type PrefillBreakdown struct {
	System  string
	Variant Variant
	T, P    int

	GEMM        float64 // linear layers, all layers
	Attn        float64 // attention compute, all layers
	AllReduce   float64 // TP activation AllReduces, all layers
	RingExposed float64 // SendRecv time not hidden under attention
	All2All     float64 // pass-Q output restore, all layers
	Base        float64 // fixed per-layer and per-step overheads

	SendRecvIter float64 // one ring SendRecv (per layer, per iteration)
	AttnIter     float64 // one ring-iteration attention compute (per layer)

	Total float64
}

// Prefill predicts TTFT for T new tokens against P cached tokens under the
// given ring variant at batch size 1.
func (s System) Prefill(T, P int, v Variant) PrefillBreakdown {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if v == Auto {
		v = ChooseVariant(s.Model, T, P)
	}
	n := s.CPNodes
	L := float64(s.Model.Layers)
	c := s.Model
	e := c.ElemBytes
	rows := (T + n - 1) / n // local new tokens per CP rank

	b := PrefillBreakdown{System: s.Name(), Variant: v, T: T, P: P}
	b.GEMM = s.linearLayerTime(rows) * L

	// Attention compute: load-balanced causal pairs over ranks, heads over
	// the TP group.
	pairs := CausalPairs(T, P)
	attnLayer := 4 * float64(c.ModelDim) * pairs / float64(n) / float64(s.TPGPUs()) / s.Plat.AttnRate()
	b.Attn = attnLayer * L

	// Two activation AllReduces per layer on the local token shard.
	arBytes := float64(rows) * float64(c.ModelDim) * e
	b.AllReduce = 2 * s.allReduceTime(arBytes) * L

	// Ring communication (none for a single rank).
	if n > 1 {
		attnIter := attnLayer / float64(n)
		b.AttnIter = attnIter
		var commBytes float64
		kvHeadsPerGPU := float64(c.NumKV) / float64(s.Plat.GPUsPerHost)
		switch v {
		case PassKV:
			blockTokens := float64(T+P) / float64(n)
			commBytes = blockTokens * 2 * kvHeadsPerGPU * float64(c.HeadDim) * e
		case PassQ:
			qHeadsPerGPU := float64(c.NumHeads) / float64(s.Plat.GPUsPerHost)
			commBytes = float64(rows) * qHeadsPerGPU * float64(c.HeadDim) * e
		}
		commIter := commBytes/s.Plat.EffectiveInterBW() + s.Plat.HopLatency
		b.SendRecvIter = commIter
		// Pipeline: the first chunk computes unmasked; each later iteration
		// costs max(compute, transfer).
		ringLayer := attnIter + float64(n-1)*math.Max(attnIter, commIter)
		b.RingExposed = (ringLayer - float64(n)*attnIter) * L
		if v == PassQ {
			qHeadsPerGPU := float64(c.NumHeads) / float64(s.Plat.GPUsPerHost)
			a2aBytes := float64(n-1) * float64(rows) * qHeadsPerGPU * (float64(c.HeadDim) + 1) * e
			b.All2All = (s.Plat.All2AllBase + s.Plat.HopLatency +
				a2aBytes/(s.Plat.EffectiveInterBW()*s.Plat.A2ABWBoost)) * L
		}
	}

	b.Base = prefillLayerBase*L + s.Plat.StepOverhead
	b.Total = b.GEMM + b.Attn + b.AllReduce + b.RingExposed + b.All2All + b.Base
	return b
}

// PrefillBest returns the lower-latency variant and both predictions — the
// oracle the heuristics are judged against.
func (s System) PrefillBest(T, P int) (Variant, PrefillBreakdown, PrefillBreakdown) {
	kv := s.Prefill(T, P, PassKV)
	q := s.Prefill(T, P, PassQ)
	if kv.Total <= q.Total {
		return PassKV, kv, q
	}
	return PassQ, kv, q
}

// ---------------------------------------------------------------------------
// Decode (TTIT).
// ---------------------------------------------------------------------------

// DecodeBreakdown decomposes a TTIT prediction. Per-op fields correspond to
// Table 8's rows.
type DecodeBreakdown struct {
	System string
	Ctx    int
	Batch  int

	WeightRead float64 // linear-layer weight streaming, whole model
	ARLatency  float64 // TP AllReduce latencies, whole model
	AttnLoop   float64 // N partial-attention kernels per layer, whole model
	SendRecv   float64 // ring Q hops per layer, whole model
	All2All    float64 // output restore per layer, whole model
	Base       float64 // fixed per-step overhead

	AttnOp        float64 // one partial attention kernel (per layer)
	AttnLoopIter  float64 // whole ring loop attention (per layer)
	SendRecvIter  float64 // ring hops total (per layer)
	All2AllIter   float64 // All2All (per layer)
	WholeAttnIter float64 // total pass-Q attention path (per layer)

	Total float64
}

// Decode predicts TTIT at the given total context length (cached tokens per
// sequence) and batch size.
func (s System) Decode(ctx, batch int) DecodeBreakdown {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	n := s.CPNodes
	L := float64(s.Model.Layers)
	c := s.Model
	e := c.ElemBytes

	b := DecodeBreakdown{System: s.Name(), Ctx: ctx, Batch: batch}
	b.WeightRead = WeightBytes(c) / float64(s.TPGPUs()) / (s.Plat.GPU.HBMBW * MemEff)
	b.ARLatency = 2 * L * (s.Plat.ARLatencyBase + s.Plat.ARLatencyPerHop*float64(s.TPNodes-1))

	kvHeadsPerGPU := float64(c.NumKV) / float64(s.Plat.GPUsPerHost)
	ctxLocal := float64(ctx) / float64(n)
	blockLen := (batch + n - 1) / n // padded queries per rank (§4.3)

	// One partial-attention kernel: the visiting query block reads this
	// rank's KV shard for each query's sequence.
	opBytes := float64(blockLen) * ctxLocal * 2 * kvHeadsPerGPU * float64(c.HeadDim) * e
	b.AttnOp = opBytes/s.Plat.GPU.HBMBW + s.Plat.KernelOverhead
	b.AttnLoopIter = float64(n) * b.AttnOp
	b.AttnLoop = b.AttnLoopIter * L

	if n > 1 {
		qHeadsPerGPU := float64(c.NumHeads) / float64(s.Plat.GPUsPerHost)
		qBytes := float64(blockLen) * qHeadsPerGPU * float64(c.HeadDim) * e
		b.SendRecvIter = float64(n-1) * (s.Plat.HopLatency + qBytes/s.Plat.EffectiveInterBW())
		a2aBytes := float64(n-1) * float64(blockLen) * qHeadsPerGPU * (float64(c.HeadDim) + 1) * e
		b.All2AllIter = s.Plat.All2AllBase + s.Plat.HopLatency +
			a2aBytes/(s.Plat.EffectiveInterBW()*s.Plat.A2ABWBoost)
		b.SendRecv = b.SendRecvIter * L
		b.All2All = b.All2AllIter * L
	}
	b.WholeAttnIter = b.AttnLoopIter + b.SendRecvIter + b.All2AllIter
	b.Base = s.Plat.StepOverhead
	b.Total = b.WeightRead + b.ARLatency + b.AttnLoop + b.SendRecv + b.All2All + b.Base
	return b
}

// ---------------------------------------------------------------------------
// Derived quantities used by the experiment harness.
// ---------------------------------------------------------------------------

// ScalingRatio returns tau_1/tau_N for a full prefill of T tokens: the
// speedup of this system over its single-node counterpart (Figure 7).
func (s System) ScalingRatio(T int, v Variant) float64 {
	single := System{Model: s.Model, Plat: s.Plat, CPNodes: 1, TPNodes: 1}
	return single.Prefill(T, 0, v).Total / s.Prefill(T, 0, v).Total
}

// MFU returns the model FLOPs utilization of a full prefill against the
// per-GPU peak (Appendix A): achieved FLOP/s per GPU divided by peak.
func (s System) MFU(T int, v Variant) (perGPU float64, utilization float64) {
	total := s.Model.TotalPrefillFLOPs(1, T)
	ttft := s.Prefill(T, 0, v).Total
	perGPU = total / ttft / float64(s.TotalGPUs())
	return perGPU, perGPU / s.Plat.GPU.PeakBF16
}

// ParallelEfficiency compares achieved per-GPU attention throughput against
// a single-GPU standalone kernel at the same per-GPU shard size, mirroring
// the paper's 93% figure for 1M over 128 GPUs.
func (s System) ParallelEfficiency(T int, v Variant) float64 {
	perGPU, _ := s.MFU(T, v)
	return perGPU / s.Plat.AttnRate()
}

// KVCapacityTokens returns how many tokens of KV cache the system can hold,
// given the fraction of HBM left after weights (per GPU), aggregated over CP
// ranks — the capacity argument for CP in §4.2.3.
func (s System) KVCapacityTokens() float64 {
	perGPUFree := s.Plat.GPU.HBMBytes - WeightBytes(s.Model)/float64(s.TPGPUs())
	if perGPUFree < 0 {
		return 0
	}
	perTokenPerGPU := s.Model.KVCacheBytesPerToken() / float64(s.Plat.GPUsPerHost)
	return perGPUFree / perTokenPerGPU * float64(s.CPNodes)
}
