package perf

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

func TestPlanMeetsTTFT(t *testing.T) {
	// Serve 128K with a 6-second TTFT target: needs CP8 on GTT (42s / 21s /
	// 11s / 5.6s for 1/2/4/8 nodes).
	p, err := PlanDeployment(PlanRequest{
		Model: model.Llama3405B(), Plat: hw.GTT(),
		Context: 128000, TTFTTarget: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.System.CPNodes != 8 {
		t.Fatalf("plan chose CP%d, want CP8 (TTFT %v)", p.System.CPNodes, p.TTFT)
	}
	if !p.MeetsTTFT || !p.CapacityOK {
		t.Fatalf("plan flags wrong: %+v", p)
	}
}

func TestPlanCapacityForcesScaleOut(t *testing.T) {
	// 1M tokens do not fit one node's KV (§4.2.3); even with no latency
	// target the plan must scale out.
	p, err := PlanDeployment(PlanRequest{
		Model: model.Llama3405B(), Plat: hw.GTT(), Context: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.System.CPNodes < 2 {
		t.Fatalf("1M context planned on CP%d, needs >= 2 nodes for capacity", p.System.CPNodes)
	}
	if !p.CapacityOK {
		t.Fatal("returned plan lacks capacity")
	}
}

func TestPlanUnreachableTarget(t *testing.T) {
	_, err := PlanDeployment(PlanRequest{
		Model: model.Llama3405B(), Plat: hw.GTT(),
		Context: 1_000_000, TTFTTarget: 1, MaxCPNodes: 16,
	})
	if err == nil {
		t.Fatal("1-second 1M prefill reported achievable")
	}
}

func TestPlanInvalidContext(t *testing.T) {
	if _, err := PlanDeployment(PlanRequest{Model: model.Llama3405B(), Plat: hw.GTT()}); err == nil {
		t.Fatal("zero context accepted")
	}
}

func TestPlanTTITDiagnostic(t *testing.T) {
	// The paper's §4.3 point: scaling CP for prefill hurts decode. A strict
	// TTIT target should be reported unmet on a large CP group.
	p, err := PlanDeployment(PlanRequest{
		Model: model.Llama3405B(), Plat: hw.GTT(),
		Context: 128000, TTFTTarget: 6, TTITTarget: 0.050,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.MeetsTTIT {
		t.Fatalf("CP%d TTIT %.1fms reported within 50ms", p.System.CPNodes, p.TTIT*1000)
	}
}

func TestSpeedOfLightBelowPrediction(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		s := gtt(n, 1)
		sol := s.SpeedOfLight(128000)
		pred := s.Prefill(128000, 0, PassKV).Total
		if sol <= 0 || sol >= pred {
			t.Fatalf("CP%d: speed of light %v not below prediction %v", n, sol, pred)
		}
		if eff := s.Efficiency(128000); eff < 1 || eff > 2 {
			t.Fatalf("CP%d: efficiency %v outside [1,2]", n, eff)
		}
	}
}
