package perf

import (
	"testing"
	"testing/quick"
)

// TTFT is monotone in new tokens T at any cached length.
func TestPropertyPrefillMonotoneInT(t *testing.T) {
	s := gtt(4, 1)
	f := func(rawT uint16, rawP uint32, which bool) bool {
		T := int(rawT)%200000 + 1
		P := int(rawP) % 500000
		v := PassKV
		if which {
			v = PassQ
		}
		return s.Prefill(T+1000, P, v).Total > s.Prefill(T, P, v).Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// At large contexts, adding CP nodes strictly reduces TTFT (the overlap
// regime of Fig. 6a) while never increasing the KV capacity pressure.
func TestPropertyPrefillMonotoneInNodes(t *testing.T) {
	f := func(rawT uint8) bool {
		T := 64000 + int(rawT)*2000 // 64K..574K
		prev := gtt(1, 1).Prefill(T, 0, PassKV).Total
		for _, n := range []int{2, 4, 8, 16} {
			cur := gtt(n, 1).Prefill(T, 0, PassKV).Total
			if cur >= prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Decode TTIT is monotone in context length (KV reads grow) and never
// improves with more CP nodes (§4.3's decode regression).
func TestPropertyDecodeMonotone(t *testing.T) {
	f := func(rawCtx uint16, rawB uint8) bool {
		ctx := int(rawCtx)%500000 + 1000
		b := int(rawB)%4 + 1
		s1 := gtt(1, 1)
		if s1.Decode(ctx+10000, b).Total < s1.Decode(ctx, b).Total {
			return false
		}
		// CP scaling hurts decode.
		return gtt(4, 1).Decode(ctx, b).Total > s1.Decode(ctx, b).Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The GTI fabric can never beat GTT at equal configuration.
func TestPropertyGTINeverFaster(t *testing.T) {
	f := func(rawT uint16, rawN uint8) bool {
		T := int(rawT)%200000 + 1000
		n := 1 << (rawN % 3) // 1, 2, 4
		gttSys := gtt(n, 1)
		gtiSys := gti(n)
		return gtiSys.Prefill(T, 0, PassKV).Total >= gttSys.Prefill(T, 0, PassKV).Total-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The oracle never loses to either fixed variant (PrefillBest is a min).
func TestPropertyOracleIsMin(t *testing.T) {
	s := gtt(4, 1)
	f := func(rawT uint16, rawP uint32) bool {
		T := int(rawT)%128000 + 1
		P := int(rawP) % 128000
		best, kv, q := s.PrefillBest(T, P)
		bestLat := kv.Total
		if best == PassQ {
			bestLat = q.Total
		}
		return bestLat <= kv.Total && bestLat <= q.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
