package perf

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

func gtt(cp, tp int) System {
	return System{Model: model.Llama3405B(), Plat: hw.GTT(), CPNodes: cp, TPNodes: tp}
}

func gti(cp int) System {
	return System{Model: model.Llama3405B(), Plat: hw.GTI(), CPNodes: cp, TPNodes: 1}
}

// within asserts |got-want|/want <= tol.
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if rel := math.Abs(got-want) / math.Abs(want); rel > tol {
		t.Errorf("%s = %.4g, want %.4g (rel err %.1f%% > %.0f%%)", name, got, want, rel*100, tol*100)
	}
}

func TestValidate(t *testing.T) {
	if err := gtt(2, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := gtt(2, 2)
	if err := bad.Validate(); err == nil {
		t.Fatal("CP>1 with TPNodes>1 accepted")
	}
	if err := gtt(0, 1).Validate(); err == nil {
		t.Fatal("zero CP nodes accepted")
	}
}

func TestNames(t *testing.T) {
	cases := map[string]System{
		"TP8":     gtt(1, 1),
		"CP2+TP8": gtt(2, 1),
		"CP8+TP8": gtt(8, 1),
		"TP16":    gtt(1, 2),
		"TP32":    gtt(1, 4),
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestWeightBytesPlausible(t *testing.T) {
	// FP8 FFN + BF16 attention/embeddings of Llama3 405B is ~480 GB.
	wb := WeightBytes(model.Llama3405B())
	if wb < 430e9 || wb > 530e9 {
		t.Fatalf("WeightBytes = %.3g, want ~480e9", wb)
	}
}

func TestCausalPairs(t *testing.T) {
	if got := CausalPairs(4, 0); got != 10 { // 1+2+3+4
		t.Fatalf("CausalPairs(4,0) = %v, want 10", got)
	}
	if got := CausalPairs(2, 3); got != 9 { // (3+1)+(3+2)
		t.Fatalf("CausalPairs(2,3) = %v, want 9", got)
	}
}

// Paper anchors, §4.2 and Table 7: TTFT at 128K context.
func TestPrefillAnchors128K(t *testing.T) {
	const T = 128000
	within(t, "CP1 TTFT 128K", gtt(1, 1).Prefill(T, 0, PassKV).Total, 42.010, 0.15)
	within(t, "CP2 TTFT 128K", gtt(2, 1).Prefill(T, 0, PassKV).Total, 21.042, 0.15)
	within(t, "CP4 TTFT 128K", gtt(4, 1).Prefill(T, 0, PassKV).Total, 10.950, 0.15)
	within(t, "CP8 TTFT 128K", gtt(8, 1).Prefill(T, 0, PassKV).Total, 5.85, 0.15)
	within(t, "TP16 TTFT 128K", gtt(1, 2).Prefill(T, 0, PassKV).Total, 29.917, 0.15)
	within(t, "TP32 TTFT 128K", gtt(1, 4).Prefill(T, 0, PassKV).Total, 19.841, 0.15)
}

// Table 6 anchors: TTFT at smaller contexts on one node.
func TestPrefillAnchorsSmallContexts(t *testing.T) {
	within(t, "TP8 TTFT 8K", gtt(1, 1).Prefill(8000, 0, PassKV).Total, 1.740, 0.25)
	within(t, "TP8 TTFT 32K", gtt(1, 1).Prefill(32000, 0, PassKV).Total, 7.658, 0.15)
	within(t, "CP2 TTFT 32K", gtt(2, 1).Prefill(32000, 0, PassKV).Total, 4.015, 0.20)
}

// §4.2.3 anchors: 1M-token prefill on 16 nodes in 77 s, 128K in 3.8 s.
func TestMillionTokenAnchors(t *testing.T) {
	within(t, "CP16 TTFT 1M", gtt(16, 1).Prefill(1_000_000, 0, PassKV).Total, 77, 0.12)
	within(t, "CP16 TTFT 128K", gtt(16, 1).Prefill(128_000, 0, PassKV).Total, 3.8, 0.25)
	// TTFT more than doubles when context doubles beyond 512K (attention
	// quadratic takes over).
	cp16 := gtt(16, 1)
	r := cp16.Prefill(1_000_000, 0, PassKV).Total / cp16.Prefill(512_000, 0, PassKV).Total
	if r < 2 {
		t.Errorf("1M/512K TTFT ratio = %.2f, want > 2 (quadratic attention regime)", r)
	}
}

// Appendix A: 502 TF/s/GPU achieved, ~63%% utilization, ~93%% parallel
// efficiency for 1M over 128 GPUs.
func TestMFUAnchor(t *testing.T) {
	perGPU, util := gtt(16, 1).MFU(1_000_000, PassKV)
	within(t, "achieved TF/s per GPU at 1M", perGPU, 502e12, 0.12)
	within(t, "FLOPS utilization", util, 0.63, 0.12)
	within(t, "parallel efficiency", gtt(16, 1).ParallelEfficiency(1_000_000, PassKV), 0.93, 0.12)
}

// Figure 7: CP scales near-linearly while multi-node TP saturates; by 8
// nodes CP is roughly 2x faster than TP64 would be — we check the ordering
// and the paper's explicit endpoints.
func TestScalingRatioOrdering(t *testing.T) {
	const T = 128000
	cpPrev := 0.0
	for _, n := range []int{2, 4, 8} {
		cp := gtt(n, 1).ScalingRatio(T, PassKV)
		if cp <= cpPrev {
			t.Fatalf("CP scaling ratio not increasing: CP%d=%.2f after %.2f", n, cp, cpPrev)
		}
		if cp < 0.8*float64(n) {
			t.Errorf("CP%d scaling ratio %.2f below 80%% of linear", n, cp)
		}
		cpPrev = cp
	}
	tp16 := gtt(1, 2).ScalingRatio(T, PassKV)
	tp32 := gtt(1, 4).ScalingRatio(T, PassKV)
	cp2 := gtt(2, 1).ScalingRatio(T, PassKV)
	cp4 := gtt(4, 1).ScalingRatio(T, PassKV)
	if tp16 >= cp2 || tp32 >= cp4 {
		t.Errorf("TP should scale worse than CP: TP16=%.2f CP2=%.2f TP32=%.2f CP4=%.2f",
			tp16, cp2, tp32, cp4)
	}
	// Paper: the latency gap grows to ~100% at 8 nodes (CP8 ~2x faster than TP64).
	tp64 := System{Model: model.Llama3405B(), Plat: hw.GTT(), CPNodes: 1, TPNodes: 8}
	gap := tp64.Prefill(T, 0, PassKV).Total / gtt(8, 1).Prefill(T, 0, PassKV).Total
	if gap < 1.5 {
		t.Errorf("TP64/CP8 latency gap = %.2f, want >= 1.5 (paper reports ~2x)", gap)
	}
}

// GTI (TCP) still overlaps pass-KV at large contexts: CP4 at 128K must be
// within 25%% of the GTT latency (paper: same scalability up to 4 nodes).
func TestGTIPrefillOverlap(t *testing.T) {
	const T = 128000
	gttLat := gtt(4, 1).Prefill(T, 0, PassKV).Total
	gtiLat := gti(4).Prefill(T, 0, PassKV).Total
	if gtiLat > 1.25*gttLat {
		t.Errorf("GTI CP4 at 128K = %.2fs vs GTT %.2fs: pass-KV not overlapping on TCP", gtiLat, gttLat)
	}
	// At small contexts the slow fabric must expose communication: the
	// GTI/GTT latency gap should widen (relatively) as T shrinks.
	gapSmall := gti(4).Prefill(4000, 0, PassKV).Total / gtt(4, 1).Prefill(4000, 0, PassKV).Total
	gapLarge := gtiLat / gttLat
	if gapSmall < gapLarge {
		t.Errorf("expected wider GTI gap at small T: small=%.3f large=%.3f", gapSmall, gapLarge)
	}
}

// Table 5 anchors: per-iteration microsecond breakdown at CP4, P+T=128000.
func TestTable5Breakdown(t *testing.T) {
	s := gtt(4, 1)
	// 2.5% miss rate: T=3200, P=124800.
	kv := s.Prefill(3200, 124800, PassKV)
	within(t, "pass-KV SendRecv @2.5%", kv.SendRecvIter, 627e-6, 0.20)
	within(t, "ATTN iter @2.5%", kv.AttnIter, 414e-6, 0.20)
	q := s.Prefill(3200, 124800, PassQ)
	within(t, "pass-Q SendRecv @2.5%", q.SendRecvIter, 166e-6, 0.20)
	within(t, "pass-Q All2All @2.5%", q.All2All/float64(s.Model.Layers), 424e-6, 0.20)
	// 10% miss rate: T=12800, P=115200.
	kv10 := s.Prefill(12800, 115200, PassKV)
	within(t, "pass-KV SendRecv @10%", kv10.SendRecvIter, 631e-6, 0.20)
	within(t, "ATTN iter @10%", kv10.AttnIter, 1608e-6, 0.20)
	q10 := s.Prefill(12800, 115200, PassQ)
	within(t, "pass-Q SendRecv @10%", q10.SendRecvIter, 544e-6, 0.30)
	within(t, "pass-Q All2All @10%", q10.All2All/float64(s.Model.Layers), 1023e-6, 0.45)
}

// Figure 9 / Table 4: the pass-KV vs pass-Q crossover sits at a low cache
// miss rate (paper: ~5% for CP4 at 128K total context).
func TestCrossoverLocation(t *testing.T) {
	s := gtt(4, 1)
	const total = 128000
	// pass-Q must win at 1% miss rate, pass-KV at 10% and 100%.
	check := func(miss float64, want Variant) {
		t.Helper()
		T := int(miss * total)
		P := total - T
		v, kv, q := s.PrefillBest(T, P)
		if v != want {
			t.Errorf("at miss %.1f%%: chose %v (kv=%.0fms q=%.0fms), want %v",
				miss*100, v, kv.Total*1000, q.Total*1000, want)
		}
	}
	check(0.01, PassQ)
	check(0.10, PassKV)
	check(1.00, PassKV)
	// Crossover between 1% and 10%.
	lo, hi := 0.01, 0.10
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		T := int(mid * total)
		v, _, _ := s.PrefillBest(T, total-T)
		if v == PassQ {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo < 0.015 || lo > 0.08 {
		t.Errorf("crossover at %.2f%% miss rate, want within [1.5%%, 8%%] (paper ~5%%)", lo*100)
	}
}

// Table 4 shape: TTFT is monotone in the miss rate for both variants and
// roughly linear (the paper: "TTFT latency is linearly proportional to the
// persistent KV cache miss rate").
func TestTTFTMonotoneInMissRate(t *testing.T) {
	s := gtt(4, 1)
	const total = 128000
	for _, v := range []Variant{PassKV, PassQ} {
		prev := 0.0
		for _, missPct := range []int{1, 5, 10, 20, 40, 60, 80, 100} {
			T := total * missPct / 100
			tot := s.Prefill(T, total-T, v).Total
			if tot <= prev {
				t.Fatalf("%v TTFT not increasing at %d%%: %v after %v", v, missPct, tot, prev)
			}
			prev = tot
		}
		// Linearity: TTFT(100%) should be within 2.5x of 2*TTFT(50%).
		full := s.Prefill(total, 0, v).Total
		half := s.Prefill(total/2, total/2, v).Total
		if r := full / half; r < 1.4 || r > 2.5 {
			t.Errorf("%v full/half TTFT ratio = %.2f, want roughly linear (1.4-2.5)", v, r)
		}
	}
}

// Table 6/7 decode anchors.
func TestDecodeAnchors(t *testing.T) {
	within(t, "TP8 TTIT 8K", gtt(1, 1).Decode(8000, 1).Total, 44.51e-3, 0.15)
	within(t, "TP8 TTIT 128K", gtt(1, 1).Decode(128000, 1).Total, 46.26e-3, 0.15)
	within(t, "CP2 TTIT 128K", gtt(2, 1).Decode(128000, 1).Total, 60.23e-3, 0.15)
	within(t, "CP4 TTIT 128K", gtt(4, 1).Decode(128000, 1).Total, 71.31e-3, 0.15)
	within(t, "TP16 TTIT 128K", gtt(1, 2).Decode(128000, 1).Total, 39.52e-3, 0.15)
	within(t, "TP32 TTIT 128K", gtt(1, 4).Decode(128000, 1).Total, 47.3e-3, 0.15)
}

// Table 8 anchors: decode attention microsecond breakdown at 128K, B=1.
func TestTable8Breakdown(t *testing.T) {
	cp1 := gtt(1, 1).Decode(128000, 1)
	within(t, "CP1 attn op", cp1.AttnOp, 38.9e-6, 0.25)
	cp2 := gtt(2, 1).Decode(128000, 1)
	within(t, "CP2 attn op", cp2.AttnOp, 22.0e-6, 0.25)
	within(t, "CP2 attn loop", cp2.AttnLoopIter, 43.2e-6, 0.25)
	within(t, "CP2 sendrecv", cp2.SendRecvIter, 32.3e-6, 0.25)
	within(t, "CP2 all2all", cp2.All2AllIter, 81.1e-6, 0.25)
	within(t, "CP2 whole pass-Q", cp2.WholeAttnIter, 157.7e-6, 0.25)
	cp4 := gtt(4, 1).Decode(128000, 1)
	within(t, "CP4 attn op", cp4.AttnOp, 14.7e-6, 0.30)
	within(t, "CP4 sendrecv", cp4.SendRecvIter, 105.7e-6, 0.25)
	within(t, "CP4 whole pass-Q", cp4.WholeAttnIter, 238.6e-6, 0.25)
}

// §4.3: TTIT barely grows with context (both TP8 and CP2), and decode does
// NOT scale with more hosts — CP4 must be slower than CP1 per token.
func TestDecodeShape(t *testing.T) {
	tp8Small := gtt(1, 1).Decode(8000, 1).Total
	tp8Large := gtt(1, 1).Decode(128000, 1).Total
	if tp8Large > 1.25*tp8Small {
		t.Errorf("TP8 TTIT grew too much with context: %.1fms -> %.1fms", tp8Small*1000, tp8Large*1000)
	}
	cp1 := gtt(1, 1).Decode(128000, 1).Total
	cp4 := gtt(4, 1).Decode(128000, 1).Total
	if cp4 <= cp1 {
		t.Errorf("CP4 decode %.1fms should be slower than CP1 %.1fms (paper §4.3)", cp4*1000, cp1*1000)
	}
	// Individual attention ops DO get faster with more ranks.
	if gtt(4, 1).Decode(128000, 1).AttnOp >= gtt(2, 1).Decode(128000, 1).AttnOp {
		t.Error("individual decode attention op should shrink with more CP ranks")
	}
}

// KV capacity grows with CP ranks (§4.2.3's capacity argument).
func TestKVCapacityScalesWithCP(t *testing.T) {
	c1 := gtt(1, 1).KVCapacityTokens()
	c8 := gtt(8, 1).KVCapacityTokens()
	if c1 <= 0 {
		t.Fatalf("single node capacity = %v, want positive", c1)
	}
	if r := c8 / c1; math.Abs(r-8) > 1e-9 {
		t.Errorf("capacity ratio CP8/CP1 = %v, want 8", r)
	}
	// One node cannot hold 1M tokens of Llama3-405B KV, 16 nodes can.
	if c1 >= 1e6 {
		t.Errorf("one node holds %v tokens, expected < 1M", c1)
	}
	if gtt(16, 1).KVCapacityTokens() < 1e6 {
		t.Error("16 nodes should hold at least 1M tokens of KV")
	}
}

// The GB200-like platform restores multi-node TP viability (§4.2.2 remark).
func TestGB200TPRecovers(t *testing.T) {
	const T = 128000
	m := model.Llama3405B()
	gttTP16 := System{Model: m, Plat: hw.GTT(), CPNodes: 1, TPNodes: 2}
	gbTP16 := System{Model: m, Plat: hw.GB200Like(), CPNodes: 1, TPNodes: 2}
	rGTT := gttTP16.ScalingRatio(T, PassKV)
	rGB := gbTP16.ScalingRatio(T, PassKV)
	if rGB <= rGTT {
		t.Errorf("GB200-like TP16 ratio %.2f should beat GTT TP16 ratio %.2f", rGB, rGTT)
	}
}

func TestPrefillBreakdownConsistency(t *testing.T) {
	for _, s := range []System{gtt(1, 1), gtt(4, 1), gtt(1, 2)} {
		for _, v := range []Variant{PassKV, PassQ} {
			b := s.Prefill(64000, 64000, v)
			sum := b.GEMM + b.Attn + b.AllReduce + b.RingExposed + b.All2All + b.Base
			if math.Abs(sum-b.Total) > 1e-9 {
				t.Errorf("%s %v: components sum %v != total %v", s.Name(), v, sum, b.Total)
			}
			if b.GEMM <= 0 || b.Attn <= 0 || b.Base <= 0 {
				t.Errorf("%s %v: non-positive component %+v", s.Name(), v, b)
			}
		}
	}
}

func TestDecodeBreakdownConsistency(t *testing.T) {
	for _, s := range []System{gtt(1, 1), gtt(2, 1), gtt(1, 4)} {
		b := s.Decode(32000, 4)
		sum := b.WeightRead + b.ARLatency + b.AttnLoop + b.SendRecv + b.All2All + b.Base
		if math.Abs(sum-b.Total) > 1e-9 {
			t.Errorf("%s: components sum %v != total %v", s.Name(), sum, b.Total)
		}
	}
}

func TestVariantString(t *testing.T) {
	if PassKV.String() != "pass-KV" || PassQ.String() != "pass-Q" {
		t.Fatal("variant names changed")
	}
	if Variant(9).String() == "" {
		t.Fatal("unknown variant should still render")
	}
}

// TestChooseVariantCrossoverPinned pins the auto-variant rule to Equation 1:
// pass-KV exactly when model.MissRate(T, P) is at or above 2·NKV/NH, pass-Q
// strictly below, over a grid of partial-prefill workloads and at the exact
// crossover point.
func TestChooseVariantCrossoverPinned(t *testing.T) {
	c := model.Llama3405B()
	threshold := 2 * c.KVRatio() // 2*8/128 = 0.125
	if threshold != 0.125 {
		t.Fatalf("Llama3 405B Eq. 1 threshold = %v, want 0.125", threshold)
	}
	for _, T := range []int{1, 100, 1280, 16000, 128000} {
		for _, P := range []int{0, 100, 1280, 126720, 1000000} {
			got := ChooseVariant(c, T, P)
			want := PassQ
			if model.MissRate(T, P) >= threshold {
				want = PassKV
			}
			if got != want {
				t.Fatalf("ChooseVariant(T=%d, P=%d) = %v, want %v at miss rate %v",
					T, P, got, want, model.MissRate(T, P))
			}
		}
	}
	// Exact crossover: miss rate 1/8 == threshold selects pass-KV; one more
	// cached token drops below it and flips to pass-Q.
	if got := ChooseVariant(c, 1, 7); got != PassKV {
		t.Fatalf("at-threshold miss rate chose %v, want pass-KV", got)
	}
	if got := ChooseVariant(c, 1, 8); got != PassQ {
		t.Fatalf("below-threshold miss rate chose %v, want pass-Q", got)
	}
	// System.Prefill resolves Auto to the same rule before modeling.
	sys := System{Model: c, Plat: hw.GTT(), CPNodes: 4, TPNodes: 1}
	for _, pt := range []struct{ T, P int }{{1280, 126720}, {128000, 0}, {16000, 112000}} {
		b := sys.Prefill(pt.T, pt.P, Auto)
		if b.Variant != ChooseVariant(c, pt.T, pt.P) {
			t.Fatalf("Auto resolved to %v at T=%d P=%d, want %v", b.Variant, pt.T, pt.P, ChooseVariant(c, pt.T, pt.P))
		}
	}
	if Auto.String() != "auto" {
		t.Fatalf("Auto.String() = %q", Auto.String())
	}
}
