package perf

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/model"
)

// Plan is a deployment recommendation: the smallest CP group that meets the
// latency and capacity constraints. It operationalizes the paper's framing
// of CP as "the flexibility to trade off model inference latency with
// hardware capacity depending on the latency requirements of specific
// applications" (§2.3).
type Plan struct {
	System        System
	TTFT          float64 // predicted at the planning context
	TTIT          float64
	CapacityOK    bool
	MeetsTTFT     bool
	MeetsTTIT     bool
	KVCapacity    float64
	ContextLength int
}

// PlanRequest states the serving constraints.
type PlanRequest struct {
	Model       model.Config
	Plat        hw.Platform
	Context     int     // total context length to serve (tokens)
	TTFTTarget  float64 // seconds; 0 = unconstrained
	TTITTarget  float64 // seconds; 0 = unconstrained
	MaxCPNodes  int     // search bound; 0 = 64
	DecodeBatch int     // batch for the TTIT prediction; 0 = 1
}

// PlanDeployment returns the smallest CP group (TP8 per node) that fits the
// context in KV capacity and meets the TTFT target, reporting whether the
// TTIT target also holds (the paper: CP improves prefill at a decode
// penalty, so a disaggregated deployment may still be needed — §4.3).
func PlanDeployment(req PlanRequest) (Plan, error) {
	if req.Context <= 0 {
		return Plan{}, fmt.Errorf("perf: non-positive context %d", req.Context)
	}
	maxN := req.MaxCPNodes
	if maxN == 0 {
		maxN = 64
	}
	batch := req.DecodeBatch
	if batch == 0 {
		batch = 1
	}
	var fallback *Plan
	for n := 1; n <= maxN; n *= 2 {
		s := System{Model: req.Model, Plat: req.Plat, CPNodes: n, TPNodes: 1}
		p := Plan{
			System:        s,
			TTFT:          s.Prefill(req.Context, 0, PassKV).Total,
			TTIT:          s.Decode(req.Context, batch).Total,
			KVCapacity:    s.KVCapacityTokens(),
			ContextLength: req.Context,
		}
		p.CapacityOK = p.KVCapacity >= float64(req.Context)*float64(batch)
		p.MeetsTTFT = req.TTFTTarget == 0 || p.TTFT <= req.TTFTTarget
		p.MeetsTTIT = req.TTITTarget == 0 || p.TTIT <= req.TTITTarget
		if p.CapacityOK {
			if fallback == nil {
				cp := p
				fallback = &cp
			}
			if p.MeetsTTFT {
				return p, nil
			}
		}
	}
	if fallback != nil {
		// Capacity fits somewhere but the TTFT target is unreachable within
		// the bound; return the largest searched group with diagnostics.
		n := maxN
		s := System{Model: req.Model, Plat: req.Plat, CPNodes: n, TPNodes: 1}
		p := Plan{
			System:        s,
			TTFT:          s.Prefill(req.Context, 0, PassKV).Total,
			TTIT:          s.Decode(req.Context, batch).Total,
			KVCapacity:    s.KVCapacityTokens(),
			ContextLength: req.Context,
		}
		p.CapacityOK = p.KVCapacity >= float64(req.Context)*float64(batch)
		p.MeetsTTFT = req.TTFTTarget == 0 || p.TTFT <= req.TTFTTarget
		p.MeetsTTIT = req.TTITTarget == 0 || p.TTIT <= req.TTITTarget
		return p, fmt.Errorf("perf: TTFT target %.2fs unreachable within %d nodes (best %.2fs)",
			req.TTFTTarget, maxN, p.TTFT)
	}
	return Plan{}, fmt.Errorf("perf: context %d does not fit in KV capacity within %d nodes", req.Context, maxN)
}

// SpeedOfLight returns the lower-bound TTFT at a node count: pure compute
// at achieved rates with zero communication and overhead, used to report
// how close a plan sits to its compute bound.
func (s System) SpeedOfLight(T int) float64 {
	c := s.Model
	gemm := 2 * c.Params * float64(T) / float64(s.TotalGPUs()) / s.gemmRate()
	attn := 4 * float64(c.ModelDim) * CausalPairs(T, 0) * float64(c.Layers) /
		float64(s.TotalGPUs()) / s.Plat.AttnRate()
	// CausalPairs already covers one layer's pairs; attention FLOPs repeat
	// per layer while GEMM FLOPs (2WT) already span the whole model.
	return gemm + attn
}

// Efficiency returns predicted TTFT over the speed-of-light bound (>= 1).
func (s System) Efficiency(T int) float64 {
	sol := s.SpeedOfLight(T)
	if sol == 0 {
		return math.Inf(1)
	}
	return s.Prefill(T, 0, PassKV).Total / sol
}
