package prefixcache

import (
	"testing"
)

// testEntry records its release so tests can assert eviction ordering.
type testEntry struct {
	id       int
	released *[]int
}

func (e *testEntry) Release() { *e.released = append(*e.released, e.id) }

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func builder(released *[]int, next *int) func(depth int) (Entry, error) {
	return func(depth int) (Entry, error) {
		*next++
		return &testEntry{id: *next, released: released}, nil
	}
}

func seq(n, base int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = base + i
	}
	return out
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{BlockSize: 0}); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := New(Config{BlockSize: 4, Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestLookupLongestAlignedPrefix(t *testing.T) {
	var released []int
	n := 0
	tr := mustTree(t, Config{BlockSize: 4})
	toks := seq(12, 0)
	if added, err := tr.Insert(toks, builder(&released, &n)); err != nil || added != 12 {
		t.Fatalf("insert: added=%d err=%v", added, err)
	}
	// Full prompt match is capped below len: 12 cached, prompt 12 → hit 8.
	if hit, _ := tr.Lookup(toks); hit != 8 {
		t.Fatalf("full-prompt hit = %d, want 8 (capped below prompt length)", hit)
	}
	// Longer prompt sharing the whole cached prefix hits all 12.
	if hit, entry := tr.Lookup(seq(20, 0)); hit != 12 || entry == nil {
		t.Fatalf("long-prompt hit = %d, want 12", hit)
	}
	// Prefix sharing only the first block.
	p := seq(12, 0)
	p[5] = 99
	if hit, _ := tr.Lookup(p); hit != 4 {
		t.Fatalf("diverging-prompt hit = %d, want 4", hit)
	}
	// Exactness: same length, different first token → no hit.
	p2 := seq(12, 0)
	p2[0] = 99
	if hit, _ := tr.Lookup(p2); hit != 0 {
		t.Fatalf("mismatched-prompt hit = %d, want 0", hit)
	}
	// Short prompts can never hit (sub-block).
	if hit, _ := tr.Lookup(seq(3, 0)); hit != 0 {
		t.Fatalf("sub-block hit = %d, want 0", hit)
	}
}

func TestInsertSkipsExistingBlocks(t *testing.T) {
	var released []int
	n := 0
	tr := mustTree(t, Config{BlockSize: 4})
	if _, err := tr.Insert(seq(8, 0), builder(&released, &n)); err != nil {
		t.Fatal(err)
	}
	// Re-inserting a longer sequence sharing the prefix only builds the new
	// deeper block; the tail below a block boundary is never inserted.
	added, err := tr.Insert(seq(14, 0), builder(&released, &n))
	if err != nil || added != 4 {
		t.Fatalf("extend: added=%d err=%v", added, err)
	}
	st := tr.Stats()
	if st.Nodes != 3 || st.Tokens != 12 {
		t.Fatalf("stats = %+v, want 3 nodes / 12 tokens", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	var released []int
	n := 0
	// Room for exactly two branches of one block each plus the shared root
	// block: 3 blocks of 4 tokens.
	tr := mustTree(t, Config{BlockSize: 4, Capacity: 12})
	shared := seq(4, 0)
	a := append(append([]int{}, shared...), seq(4, 100)...)
	b := append(append([]int{}, shared...), seq(4, 200)...)
	if _, err := tr.Insert(a, builder(&released, &n)); err != nil { // entries 1 (shared), 2 (a)
		t.Fatal(err)
	}
	if _, err := tr.Insert(b, builder(&released, &n)); err != nil { // entry 3 (b)
		t.Fatal(err)
	}
	// Touch branch a so b becomes the LRU leaf.
	tr.Lookup(append(append([]int{}, a...), 9))
	// Inserting a third branch exceeds capacity: the LRU leaf (b) goes
	// first — never the shared interior block, which still has children.
	cTok := append(append([]int{}, shared...), seq(4, 300)...)
	if _, err := tr.Insert(cTok, builder(&released, &n)); err != nil { // entry 4 (c)
		t.Fatal(err)
	}
	if len(released) != 1 || released[0] != 3 {
		t.Fatalf("released = %v, want [3] (LRU leaf b)", released)
	}
	if hit, _ := tr.Lookup(append(append([]int{}, a...), 9)); hit != 8 {
		t.Fatalf("survivor a hit = %d, want 8", hit)
	}
	st := tr.Stats()
	if st.Evictions != 1 || st.EvictedTokens != 4 || st.Tokens != 12 {
		t.Fatalf("stats after eviction = %+v", st)
	}
}

func TestEvictTokensDrainsLeavesFirst(t *testing.T) {
	var released []int
	n := 0
	tr := mustTree(t, Config{BlockSize: 2})
	if _, err := tr.Insert(seq(6, 0), builder(&released, &n)); err != nil { // entries 1,2,3
		t.Fatal(err)
	}
	if freed := tr.EvictTokens(3); freed != 4 {
		t.Fatalf("freed = %d, want 4 (two blocks)", freed)
	}
	// Leaves evict deepest-LRU first: 3 then 2; the root block survives.
	if len(released) != 2 || released[0] != 3 || released[1] != 2 {
		t.Fatalf("released = %v, want [3 2]", released)
	}
	if tr.Tokens() != 2 {
		t.Fatalf("tokens = %d, want 2", tr.Tokens())
	}
	tr.Clear()
	if tr.Tokens() != 0 || len(released) != 3 {
		t.Fatalf("clear left tokens=%d released=%v", tr.Tokens(), released)
	}
}

func TestStatsCounters(t *testing.T) {
	var released []int
	n := 0
	tr := mustTree(t, Config{BlockSize: 4, Capacity: 100})
	tr.Lookup(seq(8, 0)) // miss
	if _, err := tr.Insert(seq(8, 0), builder(&released, &n)); err != nil {
		t.Fatal(err)
	}
	tr.Lookup(seq(10, 0)) // hit 8
	st := tr.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.HitTokens != 8 || st.MissTokens != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.InsertedTokens != 8 || st.BlockSize != 4 || st.Capacity != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.HitRate(); r <= 0.4 || r >= 0.5 {
		t.Fatalf("hit rate = %v, want 8/18", r)
	}
}
