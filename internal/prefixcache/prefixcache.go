// Package prefixcache implements the cluster-wide prefix KV-reuse tree: a
// radix tree over token sequences whose nodes reference the sharded KV spans
// (per-rank page ranges in internal/kvcache) that a canonical prefill of
// their prefix produced. Released sessions detach their reusable prefix into
// the tree instead of dropping it; admission looks up the longest exact
// prefix match and seeds new sequences from the cached KV, so multi-turn
// reconnects and sibling sessions sharing a system prompt skip straight to
// the miss suffix (§3.3's persistent-KV multi-turn story, SGLang-style
// radix caching at the serving layer).
//
// Edges are whole blocks of BlockSize tokens — the scheduler's prefill chunk
// size — because per-rank KV placement (and the Eq. 1 variant choice) is a
// pure function of absolute position only at chunk-aligned boundaries. Hits
// are therefore always block-aligned, which is exactly the granularity at
// which adopted KV is bit-identical to a cold prefill; vLLM's block-hash
// prefix caching makes the same alignment choice for the same reason.
//
// The tree is safe for concurrent use, but entry Release callbacks fire
// inside tree operations (insert-over-budget and explicit eviction), so
// callers whose entries touch rank-local KV caches must serialize those
// operations against cluster execution — the scheduler runs every tree
// mutation on its step-loop thread under the execution lock.
package prefixcache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Entry is the KV payload attached to a tree node — in serving, the per-rank
// per-layer span handles of the node's full token prefix. Release is called
// exactly once, when the node is evicted or the tree is cleared.
type Entry interface {
	Release()
}

// Config sizes a tree.
type Config struct {
	// BlockSize is the token granularity of edges and hits. Must match the
	// canonical prefill chunk size, or adopted KV would not replay a cold
	// prefill's per-rank placement.
	BlockSize int
	// Capacity bounds the tokens held by the tree's detached branches;
	// exceeding it evicts least-recently-used leaves. 0 = unlimited.
	Capacity int
}

// Stats is a snapshot of the tree's telemetry.
type Stats struct {
	Lookups    int64 `json:"lookups"`
	Hits       int64 `json:"hits"`        // lookups that matched >= 1 block
	HitTokens  int64 `json:"hit_tokens"`  // tokens served from the tree
	MissTokens int64 `json:"miss_tokens"` // looked-up tokens past the match

	InsertedTokens int64 `json:"inserted_tokens"`
	Evictions      int64 `json:"evictions"`
	EvictedTokens  int64 `json:"evicted_tokens"`

	Nodes     int `json:"nodes"`
	Tokens    int `json:"tokens"` // tokens currently cached
	BlockSize int `json:"block_size"`
	Capacity  int `json:"capacity"`
}

// HitRate returns hit tokens over looked-up tokens.
func (s Stats) HitRate() float64 {
	total := s.HitTokens + s.MissTokens
	if total == 0 {
		return 0
	}
	return float64(s.HitTokens) / float64(total)
}

type node struct {
	parent   *node
	key      string // block token encoding, "" for the root
	children map[string]*node
	entry    Entry // nil only on the root
	depth    int   // tokens from the root through this node's block
	lastUse  int64
}

// Tree is the prefix-reuse radix tree.
type Tree struct {
	mu    sync.Mutex
	cfg   Config
	root  *node
	clock int64
	stats Stats
}

// New builds an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("prefixcache: non-positive block size %d", cfg.BlockSize)
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("prefixcache: negative capacity %d", cfg.Capacity)
	}
	return &Tree{
		cfg:  cfg,
		root: &node{children: make(map[string]*node)},
	}, nil
}

// blockKey encodes one block of tokens for exact child matching — content
// equality, never hashing, so a hit is always an exact prefix match.
func blockKey(block []int) string {
	var b strings.Builder
	for i, t := range block {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(t))
	}
	return b.String()
}

// Lookup returns the longest cached block-aligned prefix of tokens and its
// entry. The match is capped below len(tokens) so a fully cached prompt
// still prefills at least one token (the engine needs fresh logits for the
// last position). The matched path is touched for LRU.
func (t *Tree) Lookup(tokens []int) (int, Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Lookups++
	b := t.cfg.BlockSize
	maxDepth := 0
	if len(tokens) > 0 {
		maxDepth = (len(tokens) - 1) / b * b
	}
	t.clock++
	cur := t.root
	var best *node
	for cur.depth+b <= maxDepth {
		child := cur.children[blockKey(tokens[cur.depth:cur.depth+b])]
		if child == nil {
			break
		}
		child.lastUse = t.clock
		best = child
		cur = child
	}
	if best == nil {
		t.stats.MissTokens += int64(len(tokens))
		return 0, nil
	}
	t.stats.Hits++
	t.stats.HitTokens += int64(best.depth)
	t.stats.MissTokens += int64(len(tokens) - best.depth)
	return best.depth, best.entry
}

// Insert detaches the block-aligned prefix of tokens into the tree. For each
// block boundary not yet cached, build(depth) must return the entry pinning
// the KV of tokens[:depth]; a build error stops the insert at the blocks
// already added. Returns the tokens newly added. Inserting may evict LRU
// leaves to stay within capacity.
func (t *Tree) Insert(tokens []int, build func(depth int) (Entry, error)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.cfg.BlockSize
	aligned := len(tokens) / b * b
	t.clock++
	cur := t.root
	added := 0
	var err error
	for cur.depth+b <= aligned {
		key := blockKey(tokens[cur.depth : cur.depth+b])
		child := cur.children[key]
		if child == nil {
			var entry Entry
			entry, err = build(cur.depth + b)
			if err != nil {
				break
			}
			child = &node{
				parent:   cur,
				key:      key,
				children: make(map[string]*node),
				entry:    entry,
				depth:    cur.depth + b,
			}
			cur.children[key] = child
			t.stats.Nodes++
			t.stats.Tokens += b
			t.stats.InsertedTokens += int64(b)
			added += b
		}
		child.lastUse = t.clock
		cur = child
	}
	if t.cfg.Capacity > 0 {
		t.evictLocked(t.stats.Tokens - t.cfg.Capacity)
	}
	return added, err
}

// EvictTokens evicts least-recently-used leaves until at least n tokens have
// been released or nothing evictable remains, returning the tokens freed.
// The scheduler calls it when a rank reports KV capacity pressure.
func (t *Tree) EvictTokens(n int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictLocked(n)
}

// evictLocked removes leaves, least recently used first, until n tokens are
// freed or nothing evictable remains. Only leaves are evictable: an interior
// node's block is the path to every descendant. Leaves are collected and
// sorted once per wave (a parent only becomes evictable after its last child
// goes, i.e. in the next wave), so eviction costs one DFS + sort per wave
// instead of one full-tree scan per leaf.
func (t *Tree) evictLocked(n int) int {
	freed := 0
	for freed < n && t.stats.Nodes > 0 {
		leaves := t.leavesLocked()
		if len(leaves) == 0 {
			break
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i].lastUse < leaves[j].lastUse })
		for _, leaf := range leaves {
			if freed >= n {
				return freed
			}
			freed += t.removeLocked(leaf)
		}
	}
	return freed
}

// leavesLocked collects every evictable leaf in one walk.
func (t *Tree) leavesLocked() []*node {
	var out []*node
	var walk func(*node)
	walk = func(nd *node) {
		if len(nd.children) == 0 {
			if nd != t.root {
				out = append(out, nd)
			}
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

func (t *Tree) removeLocked(nd *node) int {
	delete(nd.parent.children, nd.key)
	nd.entry.Release()
	t.stats.Nodes--
	t.stats.Tokens -= t.cfg.BlockSize
	t.stats.Evictions++
	t.stats.EvictedTokens += int64(t.cfg.BlockSize)
	return t.cfg.BlockSize
}

// Clear evicts every node, releasing all entries.
func (t *Tree) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.evictLocked(t.stats.Tokens)
}

// Tokens returns the tokens currently cached.
func (t *Tree) Tokens() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.Tokens
}

// BlockSize returns the tree's token alignment granularity.
func (t *Tree) BlockSize() int { return t.cfg.BlockSize }

// Stats snapshots the tree's telemetry.
func (t *Tree) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.BlockSize = t.cfg.BlockSize
	st.Capacity = t.cfg.Capacity
	return st
}
