package sharding_test

import (
	"fmt"

	"repro/internal/sharding"
)

// The Figure 1 layout: a sequence split into 2N chunks with rank i taking
// the mirrored pair (i, 2N-1-i), so early-cheap and late-expensive causal
// chunks balance.
func ExampleLoadBalancedPositions() {
	const T, n = 8, 2
	for r := 0; r < n; r++ {
		fmt.Printf("rank %d holds positions %v (causal pairs: %d)\n",
			r, sharding.LoadBalancedPositions(T, n, r),
			sharding.CausalPairs(sharding.LoadBalancedPositions(T, n, r)))
	}
	// Output:
	// rank 0 holds positions [0 1 6 7] (causal pairs: 18)
	// rank 1 holds positions [2 3 4 5] (causal pairs: 18)
}

// Decode ownership rotates every step so KV growth stays balanced (§3.6).
func ExampleDecodeOwner() {
	for step := 0; step < 4; step++ {
		fmt.Printf("step %d -> rank %d\n", step, sharding.DecodeOwner(0, step, 4))
	}
	// Output:
	// step 0 -> rank 0
	// step 1 -> rank 1
	// step 2 -> rank 2
	// step 3 -> rank 3
}
