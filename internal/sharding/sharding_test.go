package sharding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPaddedLenAndChunkLen(t *testing.T) {
	cases := []struct{ T, n, wantPad, wantChunk int }{
		{8, 2, 8, 2},   // 8 tokens, 4 chunks of 2
		{7, 2, 8, 2},   // pads to 8
		{1, 4, 8, 1},   // tiny sequence pads to 2N
		{0, 4, 0, 0},   // empty stays empty
		{16, 4, 16, 2}, // exact fit
		{17, 4, 24, 3},
	}
	for _, c := range cases {
		if got := PaddedLen(c.T, c.n); got != c.wantPad {
			t.Errorf("PaddedLen(%d,%d) = %d, want %d", c.T, c.n, got, c.wantPad)
		}
		if got := ChunkLen(c.T, c.n); got != c.wantChunk {
			t.Errorf("ChunkLen(%d,%d) = %d, want %d", c.T, c.n, got, c.wantChunk)
		}
	}
}

func TestRankChunksMirrors(t *testing.T) {
	n := 4
	seen := map[int]bool{}
	for r := 0; r < n; r++ {
		a, b := RankChunks(r, n)
		if a+b != ChunkCount(n)-1 {
			t.Errorf("rank %d chunks (%d,%d) are not mirrored", r, a, b)
		}
		seen[a], seen[b] = true, true
	}
	if len(seen) != ChunkCount(n) {
		t.Errorf("chunks are not a disjoint cover: %v", seen)
	}
}

// Figure 1 example: 2 CP ranks, a sequence split into 4 chunks; rank 0 takes
// chunks (0, 3), rank 1 takes chunks (1, 2).
func TestLoadBalancedPositionsFigure1(t *testing.T) {
	T, n := 8, 2
	want := map[int][]int{
		0: {0, 1, 6, 7},
		1: {2, 3, 4, 5},
	}
	for r, w := range want {
		got := LoadBalancedPositions(T, n, r)
		if len(got) != len(w) {
			t.Fatalf("rank %d: got %v, want %v", r, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("rank %d: got %v, want %v", r, got, w)
			}
		}
	}
}

func TestLoadBalancedPositionsPadding(t *testing.T) {
	// T=5, N=2 -> padded to 8, chunk len 2. Positions 5,6,7 are padding.
	got := LoadBalancedPositions(5, 2, 0) // chunks 0 and 3 -> 0,1,6,7
	want := []int{0, 1, Pad, Pad}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank0 = %v, want %v", got, want)
		}
	}
	got1 := LoadBalancedPositions(5, 2, 1) // chunks 1 and 2 -> 2,3,4,5(pad)
	want1 := []int{2, 3, 4, Pad}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("rank1 = %v, want %v", got1, want1)
		}
	}
}

func TestPositionsAreDisjointCover(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		for _, T := range []int{1, 5, 16, 33} {
			seen := map[int]int{}
			for r := 0; r < n; r++ {
				for _, p := range LoadBalancedPositions(T, n, r) {
					if p == Pad {
						continue
					}
					seen[p]++
				}
			}
			if len(seen) != T {
				t.Fatalf("N=%d T=%d: covered %d positions, want %d", n, T, len(seen), T)
			}
			for p, c := range seen {
				if c != 1 {
					t.Fatalf("N=%d T=%d: position %d covered %d times", n, T, p, c)
				}
			}
		}
	}
}

func TestEqualLocalLengthAcrossRanks(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for _, T := range []int{1, 7, 20} {
			l := len(LoadBalancedPositions(T, n, 0))
			for r := 1; r < n; r++ {
				if got := len(LoadBalancedPositions(T, n, r)); got != l {
					t.Fatalf("N=%d T=%d: rank %d has %d slots, rank 0 has %d", n, T, r, got, l)
				}
			}
		}
	}
}

// The core load-balance claim: with 2N mirrored chunks, causal compute per
// rank is exactly equal when T divides evenly, and always strictly more
// balanced than the contiguous baseline for N >= 2 on long sequences.
func TestCausalBalanceBeatsContiguous(t *testing.T) {
	T, n := 1024, 4
	var lbMin, lbMax, ctMin, ctMax int64
	lbMin, ctMin = 1<<62, 1<<62
	for r := 0; r < n; r++ {
		lb := CausalPairs(LoadBalancedPositions(T, n, r))
		ct := CausalPairs(ContiguousPositions(T, n, r))
		if lb < lbMin {
			lbMin = lb
		}
		if lb > lbMax {
			lbMax = lb
		}
		if ct < ctMin {
			ctMin = ct
		}
		if ct > ctMax {
			ctMax = ct
		}
	}
	if lbMin != lbMax {
		t.Fatalf("load-balanced sharding not perfectly balanced on divisible input: min=%d max=%d", lbMin, lbMax)
	}
	if float64(ctMax)/float64(ctMin) < 3 {
		t.Fatalf("contiguous baseline unexpectedly balanced: min=%d max=%d", ctMin, ctMax)
	}
}

func TestStripedPositionsCoverAndBalance(t *testing.T) {
	T, n := 64, 4
	seen := map[int]bool{}
	var pairs []int64
	for r := 0; r < n; r++ {
		pos := StripedPositions(T, n, r)
		for _, p := range pos {
			if p != Pad {
				seen[p] = true
			}
		}
		pairs = append(pairs, CausalPairs(pos))
	}
	if len(seen) != T {
		t.Fatalf("striped cover has %d positions, want %d", len(seen), T)
	}
	// Striping is balanced to within one diagonal's worth of pairs.
	min, max := pairs[0], pairs[0]
	for _, p := range pairs {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if float64(max-min) > float64(T) {
		t.Fatalf("striped imbalance %d pairs exceeds T", max-min)
	}
}

func TestStripedPadding(t *testing.T) {
	got := StripedPositions(5, 2, 1) // 1, 3, 5(pad)
	want := []int{1, 3, Pad}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("striped = %v, want %v", got, want)
		}
	}
	if StripedPositions(0, 2, 0) != nil {
		t.Fatal("empty sequence should yield nil")
	}
}

// The locality argument for the paper's mirrored-chunk scheme: it keeps 2
// contiguous runs per rank while striping fragments into ~T/n runs.
func TestRunsLocalityComparison(t *testing.T) {
	T, n := 64, 4
	for r := 0; r < n; r++ {
		lb := Runs(LoadBalancedPositions(T, n, r))
		st := Runs(StripedPositions(T, n, r))
		if lb > 2 {
			t.Fatalf("load-balanced rank %d has %d runs, want <= 2", r, lb)
		}
		if st != T/n {
			t.Fatalf("striped rank %d has %d runs, want %d", r, st, T/n)
		}
	}
	if Runs([]int{0, 1, Pad, 5, 6, 7}) != 2 {
		t.Fatal("Runs miscounts around padding")
	}
}

func TestContiguousPositionsCover(t *testing.T) {
	T, n := 10, 3
	seen := map[int]bool{}
	for r := 0; r < n; r++ {
		for _, p := range ContiguousPositions(T, n, r) {
			if p != Pad {
				seen[p] = true
			}
		}
	}
	if len(seen) != T {
		t.Fatalf("contiguous cover has %d positions, want %d", len(seen), T)
	}
}

func TestBatchShardRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seqLens := []int{5, 8, 1}
	b, err := NewBatchShard(seqLens, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := tensor.RandN(rng, b.TotalTokens(), 2, 3)
	locals := make([]*tensor.Tensor, b.N)
	for r := 0; r < b.N; r++ {
		locals[r] = b.Shard(full, r)
	}
	back := b.Unshard(locals)
	if d := tensor.MaxAbsDiff(full, back); d != 0 {
		t.Fatalf("Shard/Unshard round trip diff %v", d)
	}
}

func TestBatchShardLocalLenEqualAcrossRanks(t *testing.T) {
	b, err := NewBatchShard([]int{3, 10, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l := b.LocalLen(0)
	for r := 1; r < 4; r++ {
		if b.LocalLen(r) != l {
			t.Fatalf("rank %d local len %d != rank 0 len %d", r, b.LocalLen(r), l)
		}
	}
}

func TestBatchShardErrors(t *testing.T) {
	if _, err := NewBatchShard(nil, 2); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := NewBatchShard([]int{3}, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := NewBatchShard([]int{-1}, 2); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestBatchShardSeqOffsets(t *testing.T) {
	b, err := NewBatchShard([]int{4, 2, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.SeqOffset(0) != 0 || b.SeqOffset(1) != 4 || b.SeqOffset(2) != 6 {
		t.Fatalf("offsets = %d,%d,%d", b.SeqOffset(0), b.SeqOffset(1), b.SeqOffset(2))
	}
	if b.TotalTokens() != 13 {
		t.Fatalf("TotalTokens = %d, want 13", b.TotalTokens())
	}
}

func TestDecodeOwnerRoundRobinOffset(t *testing.T) {
	n := 4
	// At step 0, sequence i belongs to rank i%n; each step shifts by one.
	for step := 0; step < 8; step++ {
		for seq := 0; seq < 6; seq++ {
			want := (seq + step) % n
			if got := DecodeOwner(seq, step, n); got != want {
				t.Fatalf("DecodeOwner(%d,%d,%d) = %d, want %d", seq, step, n, got, want)
			}
		}
	}
}

// The §3.6 motivation: with the offset rotation, after k steps every rank
// holds within 1 token of k*B/N decode KV entries; with a static owner, one
// rank takes everything for B < N.
func TestDecodeBalanceVersusStatic(t *testing.T) {
	n, batch, steps := 4, 1, 100
	rot := make([]int, n)
	static := make([]int, n)
	for s := 0; s < steps; s++ {
		for q := 0; q < batch; q++ {
			rot[DecodeOwner(q, s, n)]++
			static[StaticOwner(q, n)]++
		}
	}
	minR, maxR := rot[0], rot[0]
	for _, v := range rot {
		if v < minR {
			minR = v
		}
		if v > maxR {
			maxR = v
		}
	}
	if maxR-minR > 1 {
		t.Fatalf("rotating decode imbalance %d, want <= 1 (%v)", maxR-minR, rot)
	}
	if static[StaticOwner(0, n)] != steps {
		t.Fatalf("static owner should hold all %d tokens, got %v", steps, static)
	}
}

func TestDecodeAssignmentLength(t *testing.T) {
	got := DecodeAssignment(5, 3, 2)
	if len(got) != 5 {
		t.Fatalf("assignment length %d, want 5", len(got))
	}
	for i, r := range got {
		if r != (i+3)%2 {
			t.Fatalf("assignment[%d] = %d", i, r)
		}
	}
}

// Property: for any (T, N) the load-balanced per-rank causal pair counts
// differ by at most 2*ChunkLen*... — tighter: max-min <= 2*chunkLen pairs of
// slack arising only from tail padding. For T divisible by 2N, exactly 0.
func TestPropertyBalanceBound(t *testing.T) {
	f := func(rawT, rawN uint8) bool {
		n := int(rawN%7) + 1
		T := (int(rawT) + 1) * 2 * n // always divisible by 2N
		var first int64 = -1
		for r := 0; r < n; r++ {
			c := CausalPairs(LoadBalancedPositions(T, n, r))
			if first == -1 {
				first = c
			} else if c != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Shard followed by Unshard is the identity for random batches.
func TestPropertyShardUnshardIdentity(t *testing.T) {
	f := func(seed int64, rawN, rawB uint8) bool {
		n := int(rawN%4) + 1
		nSeq := int(rawB%3) + 1
		rng := rand.New(rand.NewSource(seed))
		lens := make([]int, nSeq)
		for i := range lens {
			lens[i] = rng.Intn(12) + 1
		}
		b, err := NewBatchShard(lens, n)
		if err != nil {
			return false
		}
		full := tensor.RandN(rng, b.TotalTokens(), 1, 2)
		locals := make([]*tensor.Tensor, n)
		for r := 0; r < n; r++ {
			locals[r] = b.Shard(full, r)
		}
		return tensor.MaxAbsDiff(full, b.Unshard(locals)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
