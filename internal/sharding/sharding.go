// Package sharding implements the load-balanced context-parallel sharding of
// the paper (§3.5.1, Figures 1 and 2) plus the naive contiguous baseline used
// for the imbalance ablation.
//
// To shard a sequence over N CP ranks the sequence is partitioned evenly into
// 2N chunks C0..C(2N-1) and rank i takes the chunk pair (Ci, C(2N-1-i)). In
// causal attention the early chunks are cheap (few prior tokens) and the late
// chunks expensive, so pairing chunk i with its mirror 2N-1-i equalizes both
// attention compute and KV-cache footprint across ranks. Sequences whose
// length is not a multiple of 2N are padded; padding slots carry position -1
// and are masked out of attention and dropped when unsharding.
//
// For fused variable-length batches every sequence is sharded the same way
// independently (Figure 1). For partial prefill only the new-token dimension
// is sharded; previously cached KV stays wherever it was produced (Figure 2).
// For decode, tokens are assigned round-robin with a per-step offset so that
// KV-cache growth stays balanced (§3.6).
package sharding

import (
	"fmt"

	"repro/internal/tensor"
)

// Pad is the position value of padding slots.
const Pad = -1

// ChunkCount returns the number of chunks a sequence is partitioned into for
// N ranks.
func ChunkCount(n int) int { return 2 * n }

// PaddedLen returns the sequence length after padding to a multiple of 2N.
// A zero-length sequence stays zero.
func PaddedLen(T, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sharding: non-positive rank count %d", n))
	}
	if T == 0 {
		return 0
	}
	c := ChunkCount(n)
	return (T + c - 1) / c * c
}

// ChunkLen returns the per-chunk token count after padding.
func ChunkLen(T, n int) int { return PaddedLen(T, n) / ChunkCount(n) }

// RankChunks returns the two chunk indices owned by a rank: (rank, 2N-1-rank).
func RankChunks(rank, n int) (int, int) {
	if rank < 0 || rank >= n {
		panic(fmt.Sprintf("sharding: rank %d out of range for %d ranks", rank, n))
	}
	return rank, ChunkCount(n) - 1 - rank
}

// LoadBalancedPositions returns the global positions (within the sequence's
// new tokens, 0-based) owned by rank, in local storage order: first chunk
// rank, then chunk 2N-1-rank. Slots beyond the sequence length hold Pad.
// Every rank's slice has the same length 2*ChunkLen(T, n), which is what lets
// the ring algorithms exchange equal-sized messages.
func LoadBalancedPositions(T, n, rank int) []int {
	cl := ChunkLen(T, n)
	lo, hi := RankChunks(rank, n)
	out := make([]int, 0, 2*cl)
	for _, c := range []int{lo, hi} {
		for i := 0; i < cl; i++ {
			p := c*cl + i
			if p >= T {
				p = Pad
			}
			out = append(out, p)
		}
	}
	return out
}

// StripedPositions returns striped-attention style sharding (Brandon et
// al.): rank i takes positions i, i+n, i+2n, ... Striping also balances
// causal compute (each rank holds every n-th token) but fragments KV
// locality into single tokens; the paper's mirrored-chunk scheme keeps
// contiguous chunks instead. Implemented for the sharding ablation.
func StripedPositions(T, n, rank int) []int {
	if rank < 0 || rank >= n {
		panic(fmt.Sprintf("sharding: rank %d out of range for %d ranks", rank, n))
	}
	if T == 0 {
		return nil
	}
	per := (T + n - 1) / n
	out := make([]int, per)
	for i := range out {
		p := rank + i*n
		if p >= T {
			p = Pad
		}
		out[i] = p
	}
	return out
}

// Runs counts the maximal runs of consecutive positions in a shard — the
// KV-locality metric of the sharding ablation (fewer, longer runs mean
// larger contiguous attention blocks per ring step).
func Runs(positions []int) int {
	runs := 0
	prev := -10
	for _, p := range positions {
		if p == Pad {
			prev = -10
			continue
		}
		if p != prev+1 {
			runs++
		}
		prev = p
	}
	return runs
}

// ContiguousPositions returns the naive baseline sharding: rank i takes the
// i-th contiguous block of ceil(T/n) positions (padded at the tail). Used
// only for the load-imbalance ablation.
func ContiguousPositions(T, n, rank int) []int {
	if rank < 0 || rank >= n {
		panic(fmt.Sprintf("sharding: rank %d out of range for %d ranks", rank, n))
	}
	if T == 0 {
		return nil
	}
	per := (T + n - 1) / n
	out := make([]int, per)
	for i := range out {
		p := rank*per + i
		if p >= T {
			p = Pad
		}
		out[i] = p
	}
	return out
}

// CausalPairs counts the causal attention (query, key) pairs a rank computes
// in a full prefill when it owns queries at the given positions: each query
// at position p attends to p+1 keys. Padding slots cost nothing. This is the
// compute-load metric the balanced sharding equalizes.
func CausalPairs(positions []int) int64 {
	var total int64
	for _, p := range positions {
		if p == Pad {
			continue
		}
		total += int64(p) + 1
	}
	return total
}

// ---------------------------------------------------------------------------
// Fused variable-length batches.
// ---------------------------------------------------------------------------

// BatchShard is a sharding plan for a fused batch of sequences over N ranks.
type BatchShard struct {
	N       int
	SeqLens []int   // new-token count per sequence
	offsets []int   // row offset of each sequence in the fused tensor
	pos     [][]int // pos[rank] = fused local positions, see LocalPositions
	seq     [][]int // seq[rank] = sequence id per local slot
}

// NewBatchShard builds the load-balanced plan for the given per-sequence
// new-token lengths.
func NewBatchShard(seqLens []int, n int) (*BatchShard, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sharding: non-positive rank count %d", n)
	}
	if len(seqLens) == 0 {
		return nil, fmt.Errorf("sharding: empty batch")
	}
	b := &BatchShard{N: n, SeqLens: append([]int(nil), seqLens...)}
	b.offsets = make([]int, len(seqLens))
	off := 0
	for i, T := range seqLens {
		if T < 0 {
			return nil, fmt.Errorf("sharding: negative sequence length %d", T)
		}
		b.offsets[i] = off
		off += T
	}
	b.pos = make([][]int, n)
	b.seq = make([][]int, n)
	for r := 0; r < n; r++ {
		for i, T := range seqLens {
			for _, p := range LoadBalancedPositions(T, n, r) {
				b.pos[r] = append(b.pos[r], p)
				b.seq[r] = append(b.seq[r], i)
			}
		}
	}
	return b, nil
}

// TotalTokens returns the unpadded fused token count.
func (b *BatchShard) TotalTokens() int {
	t := 0
	for _, l := range b.SeqLens {
		t += l
	}
	return t
}

// SeqOffset returns the fused-tensor row offset of sequence i.
func (b *BatchShard) SeqOffset(i int) int { return b.offsets[i] }

// LocalLen returns the number of local slots (including padding) on a rank;
// identical across ranks by construction.
func (b *BatchShard) LocalLen(rank int) int { return len(b.pos[rank]) }

// LocalPositions returns, for each local slot on rank, the position within
// its sequence's new tokens (Pad for padding). The returned slice aliases
// internal state and must not be mutated.
func (b *BatchShard) LocalPositions(rank int) []int { return b.pos[rank] }

// LocalSeqs returns the sequence id of each local slot on rank. The returned
// slice aliases internal state and must not be mutated.
func (b *BatchShard) LocalSeqs(rank int) []int { return b.seq[rank] }

// Shard gathers the local rows of a fused tensor for one rank. Padding slots
// become zero rows. The fused tensor must have TotalTokens rows, sequences
// concatenated in order.
func (b *BatchShard) Shard(full *tensor.Tensor, rank int) *tensor.Tensor {
	if full.Tokens != b.TotalTokens() {
		panic(fmt.Sprintf("sharding: fused tensor has %d tokens, want %d", full.Tokens, b.TotalTokens()))
	}
	local := tensor.New(b.LocalLen(rank), full.Heads, full.Dim)
	for slot, p := range b.pos[rank] {
		if p == Pad {
			continue
		}
		src := b.offsets[b.seq[rank][slot]] + p
		copy(local.Row2D(slot), full.Row2D(src))
	}
	return local
}

// Unshard scatters per-rank local tensors back into fused order, dropping
// padding slots. Inverse of Shard over non-padding slots.
func (b *BatchShard) Unshard(locals []*tensor.Tensor) *tensor.Tensor {
	if len(locals) != b.N {
		panic(fmt.Sprintf("sharding: %d locals for %d ranks", len(locals), b.N))
	}
	heads, dim := locals[0].Heads, locals[0].Dim
	full := tensor.New(b.TotalTokens(), heads, dim)
	for r, local := range locals {
		if local.Tokens != b.LocalLen(r) {
			panic(fmt.Sprintf("sharding: rank %d local has %d tokens, want %d", r, local.Tokens, b.LocalLen(r)))
		}
		for slot, p := range b.pos[r] {
			if p == Pad {
				continue
			}
			dst := b.offsets[b.seq[r][slot]] + p
			copy(full.Row2D(dst), local.Row2D(slot))
		}
	}
	return full
}

// ---------------------------------------------------------------------------
// Decode round-robin assignment (§3.6).
// ---------------------------------------------------------------------------

// DecodeOwner returns the rank that stores the KV of (and computes the local
// query for) sequence seq at decode step. The assignment is round-robin over
// the batch and offset by one on every step so that KV-cache growth is
// spread evenly across ranks instead of pinning each sequence to one rank.
func DecodeOwner(seq, step, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sharding: non-positive rank count %d", n))
	}
	m := (seq + step) % n
	if m < 0 {
		m += n
	}
	return m
}

// DecodeAssignment returns the owner rank of each sequence in a batch at the
// given step.
func DecodeAssignment(batch, step, n int) []int {
	out := make([]int, batch)
	for i := range out {
		out[i] = DecodeOwner(i, step, n)
	}
	return out
}

// StaticOwner is the ablation baseline that always assigns a sequence to the
// same rank regardless of step.
func StaticOwner(seq, n int) int { return DecodeOwner(seq, 0, n) }
