package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
)

// tracev2 is the versioned deterministic trace format: a header line naming
// the version, seed, vocab, arrival pattern, and full cohort specs, then one
// JSON line per request turn. The same (seed, spec) always produces a
// byte-identical file — every sample comes from one explicit rng in a fixed
// draw order, timestamps are integer microseconds, and encoding/json emits
// struct fields in declaration order — so any run is replayable exactly.

// TraceVersion is the format tag in the header line.
const TraceVersion = "cp-trace/v2"

// TraceSpec is everything needed to regenerate a trace: it is both the
// generator input and the trace header.
type TraceSpec struct {
	Version string `json:"version"`
	Seed    int64  `json:"seed"`
	// VocabSize bounds every generated token id.
	VocabSize int          `json:"vocab_size"`
	Cohorts   []CohortSpec `json:"cohorts"`
	Arrivals  ArrivalSpec  `json:"arrivals"`
	// MaxSessions truncates generation after this many sessions (0 = no cap)
	// — keeps CI traces small without changing the arrival pattern.
	MaxSessions int `json:"max_sessions,omitempty"`
}

// Validate checks the spec.
func (s TraceSpec) Validate() error {
	if s.Version != TraceVersion {
		return fmt.Errorf("workload: trace version %q, want %q", s.Version, TraceVersion)
	}
	if s.VocabSize < 2 {
		return fmt.Errorf("workload: vocab size %d too small", s.VocabSize)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload: trace spec with no cohorts")
	}
	seen := map[string]bool{}
	for _, c := range s.Cohorts {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate cohort %q", c.Name)
		}
		seen[c.Name] = true
	}
	if err := s.Arrivals.Validate(); err != nil {
		return err
	}
	if s.MaxSessions < 0 {
		return fmt.Errorf("workload: negative max_sessions")
	}
	return nil
}

// CohortNames returns the spec's cohort names in spec order.
func (s TraceSpec) CohortNames() []string {
	out := make([]string, len(s.Cohorts))
	for i, c := range s.Cohorts {
		out[i] = c.Name
	}
	return out
}

// TraceEvent is one request turn. Turn-0 events carry the session's absolute
// arrival offset (AtUs); later turns instead carry the think-time gap
// (GapUs) after the previous turn's completion — per-session the loop is
// closed (a follow-up cannot be issued before its predecessor finishes),
// across sessions arrivals are open-loop.
type TraceEvent struct {
	// ID is the trace-wide request id (dense, in file order).
	ID int `json:"id"`
	// Session groups the turns of one conversation.
	Session int `json:"session"`
	// Turn is the 0-based turn index within the session.
	Turn int `json:"turn"`
	// Cohort names the session's cohort.
	Cohort string `json:"cohort"`
	// AtUs is the absolute arrival offset for turn 0.
	AtUs int64 `json:"at_us,omitempty"`
	// GapUs is the think pause before this turn, for turn > 0.
	GapUs int64 `json:"gap_us,omitempty"`
	// Prompt is the new prompt tokens for this turn (turn 0 of a
	// shared-prefix cohort starts with the corpus head).
	Prompt []int `json:"prompt"`
	// MaxTokens is the decode budget.
	MaxTokens int `json:"max_tokens"`
}

// Trace is a parsed tracev2 file.
type Trace struct {
	Spec   TraceSpec
	Events []TraceEvent
}

// DefaultTraceSpec returns a spec over the built-in cohorts with a steady
// arrival pattern — the baseline serving-bench input.
func DefaultTraceSpec(seed int64, vocab int, rps float64, durUs int64) TraceSpec {
	spec := TraceSpec{Version: TraceVersion, Seed: seed, VocabSize: vocab, Arrivals: Steady(rps, durUs)}
	for _, name := range BuiltinCohortNames() {
		c, _ := BuiltinCohort(name)
		spec.Cohorts = append(spec.Cohorts, c)
	}
	return spec
}

// GenerateTrace expands a spec into its events. Determinism contract: one
// master rng seeded from the spec drives arrivals, cohort picks, and
// per-turn samples in a fixed order; the shared corpus comes from a derived
// rng so corpus length changes don't shift the session stream.
func GenerateTrace(spec TraceSpec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	corpusRng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed_c0de))
	maxShared := 0
	for _, c := range spec.Cohorts {
		if c.SharedPrefixTokens > maxShared {
			maxShared = c.SharedPrefixTokens
		}
	}
	corpus := make([]int, maxShared)
	for i := range corpus {
		corpus[i] = corpusRng.Intn(spec.VocabSize)
	}

	starts := spec.Arrivals.arrivals(rng)
	if spec.MaxSessions > 0 && len(starts) > spec.MaxSessions {
		starts = starts[:spec.MaxSessions]
	}
	tr := &Trace{Spec: spec}
	id := 0
	for si, at := range starts {
		ci := pickCohort(spec.Cohorts, rng)
		c := spec.Cohorts[ci]
		turns := c.Turns.Sample(rng)
		for t := 0; t < turns; t++ {
			ev := TraceEvent{ID: id, Session: si + 1, Turn: t, Cohort: c.Name, MaxTokens: c.OutputTokens.Sample(rng)}
			n := c.PromptTokens.Sample(rng)
			if t == 0 {
				ev.AtUs = at
				if c.SharedPrefixTokens > 0 {
					ev.Prompt = append(ev.Prompt, corpus[:c.SharedPrefixTokens]...)
				}
			} else {
				ev.GapUs = int64(c.ThinkUs.Sample(rng))
			}
			for i := 0; i < n; i++ {
				ev.Prompt = append(ev.Prompt, rng.Intn(spec.VocabSize))
			}
			tr.Events = append(tr.Events, ev)
			id++
		}
	}
	// Interleave sessions by arrival while keeping each session's turns in
	// order: sort by (turn-0 arrival, session, turn). Stable key set, so the
	// file order is a pure function of the events.
	arrival := make(map[int]int64, len(starts))
	for _, ev := range tr.Events {
		if ev.Turn == 0 {
			arrival[ev.Session] = ev.AtUs
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		a, b := tr.Events[i], tr.Events[j]
		if arrival[a.Session] != arrival[b.Session] {
			return arrival[a.Session] < arrival[b.Session]
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		return a.Turn < b.Turn
	})
	for i := range tr.Events {
		tr.Events[i].ID = i
	}
	return tr, nil
}

// Requests returns the number of events.
func (t *Trace) Requests() int { return len(t.Events) }

// Sessions returns the number of distinct sessions.
func (t *Trace) Sessions() int {
	seen := map[int]bool{}
	for _, ev := range t.Events {
		seen[ev.Session] = true
	}
	return len(seen)
}

// CohortCounts returns per-cohort request counts.
func (t *Trace) CohortCounts() map[string]int {
	out := map[string]int{}
	for _, ev := range t.Events {
		out[ev.Cohort]++
	}
	return out
}

// WriteTrace writes the trace as JSONL: header line, then one event per
// line. Byte-deterministic for a given trace.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Spec); err != nil {
		return err
	}
	for _, ev := range t.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MarshalTrace returns the trace's canonical byte encoding.
func MarshalTrace(t *Trace) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteTraceFile writes the trace to path.
func WriteTraceFile(path string, t *Trace) error {
	b, err := MarshalTrace(t)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadTrace parses and validates a tracev2 stream.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty trace")
	}
	tr := &Trace{}
	if err := json.Unmarshal(sc.Bytes(), &tr.Spec); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if err := tr.Spec.Validate(); err != nil {
		return nil, err
	}
	line := 1
	for sc.Scan() {
		line++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := ValidateTrace(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadTraceFile parses and validates a tracev2 file.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// ValidateTrace checks trace invariants: dense ids, known cohorts, in-vocab
// tokens, ordered turns per session, monotone turn-0 arrivals in file order.
func ValidateTrace(t *Trace) error {
	if err := t.Spec.Validate(); err != nil {
		return err
	}
	known := map[string]bool{}
	for _, c := range t.Spec.Cohorts {
		known[c.Name] = true
	}
	nextTurn := map[int]int{}
	lastArrival := int64(-1)
	for i, ev := range t.Events {
		if ev.ID != i {
			return fmt.Errorf("workload: event %d has id %d", i, ev.ID)
		}
		if !known[ev.Cohort] {
			return fmt.Errorf("workload: event %d references unknown cohort %q", i, ev.Cohort)
		}
		if ev.Turn != nextTurn[ev.Session] {
			return fmt.Errorf("workload: session %d turn %d out of order at event %d", ev.Session, ev.Turn, i)
		}
		nextTurn[ev.Session]++
		if ev.Turn == 0 {
			if ev.AtUs < lastArrival {
				return fmt.Errorf("workload: event %d arrival %dus before predecessor %dus", i, ev.AtUs, lastArrival)
			}
			lastArrival = ev.AtUs
		} else if ev.GapUs < 0 {
			return fmt.Errorf("workload: event %d has negative gap", i)
		}
		if len(ev.Prompt) == 0 {
			return fmt.Errorf("workload: event %d has empty prompt", i)
		}
		for _, tok := range ev.Prompt {
			if tok < 0 || tok >= t.Spec.VocabSize {
				return fmt.Errorf("workload: event %d token %d outside vocab %d", i, tok, t.Spec.VocabSize)
			}
		}
		if ev.MaxTokens < 1 {
			return fmt.Errorf("workload: event %d has max_tokens %d", i, ev.MaxTokens)
		}
	}
	return nil
}
