package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	g := NewGenerator(1)
	lens := g.Uniform(100, 5, 9)
	for _, l := range lens {
		if l < 5 || l > 9 {
			t.Fatalf("length %d outside [5,9]", l)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := NewGenerator(7).Uniform(20, 1, 100)
	b := NewGenerator(7).Uniform(20, 1, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestUniformPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad range accepted")
		}
	}()
	NewGenerator(1).Uniform(1, 5, 4)
}

func TestChatShape(t *testing.T) {
	g := NewGenerator(2)
	c := g.Chat(3, 4, 1000, 2000, 10, 50, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Turns) != 4 {
		t.Fatalf("turns = %d", len(c.Turns))
	}
	// First turn is the long document; later turns short follow-ups.
	for _, l := range c.Turns[0].NewTokens {
		if l < 1000 || l > 2000 {
			t.Fatalf("doc turn length %d", l)
		}
	}
	for _, turn := range c.Turns[1:] {
		for _, l := range turn.NewTokens {
			if l < 10 || l > 50 {
				t.Fatalf("follow-up length %d", l)
			}
		}
		if turn.DecodeSteps != 8 {
			t.Fatalf("decode steps = %d", turn.DecodeSteps)
		}
	}
	if c.TotalDecodeSteps() != 32 {
		t.Fatalf("TotalDecodeSteps = %d", c.TotalDecodeSteps())
	}
	if c.TotalNewTokens() < 3*1000+3*3*10 {
		t.Fatalf("TotalNewTokens = %d suspiciously small", c.TotalNewTokens())
	}
}

func TestConversationValidateRejects(t *testing.T) {
	bad := Conversation{NumSeqs: 2, Turns: []Turn{{NewTokens: []int{3}}}}
	if bad.Validate() == nil {
		t.Fatal("mismatched turn width accepted")
	}
	bad2 := Conversation{NumSeqs: 1, Turns: []Turn{{NewTokens: []int{0}}}}
	if bad2.Validate() == nil {
		t.Fatal("zero-length prompt accepted")
	}
	bad3 := Conversation{NumSeqs: 1, Turns: []Turn{{NewTokens: []int{1}, DecodeSteps: -1}}}
	if bad3.Validate() == nil {
		t.Fatal("negative decode steps accepted")
	}
}

func TestHitRateSweepTotalsConserved(t *testing.T) {
	pts := HitRateSweep(128000, Table4MissRates())
	if len(pts) != 14 {
		t.Fatalf("points = %d, want 14 (Table 4 rows)", len(pts))
	}
	for _, p := range pts {
		if p.T+p.P != 128000 {
			t.Fatalf("T+P = %d, want 128000", p.T+p.P)
		}
	}
	// First row matches Table 4: T=1280, P=126720.
	if pts[0].T != 1280 || pts[0].P != 126720 {
		t.Fatalf("first row = %+v", pts[0])
	}
	// Last row is full prefill.
	if pts[13].T != 128000 || pts[13].P != 0 {
		t.Fatalf("last row = %+v", pts[13])
	}
}

func TestPointMissRate(t *testing.T) {
	if got := (Point{T: 1280, P: 126720}).MissRate(); math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("miss rate = %v", got)
	}
	if (Point{}).MissRate() != 0 {
		t.Fatal("empty point miss rate should be 0")
	}
}

func TestContextSweeps(t *testing.T) {
	short := ContextSweep(false)
	if short[0] != 2000 || short[len(short)-1] != 128000 {
		t.Fatalf("short sweep = %v", short)
	}
	long := ContextSweep(true)
	if long[0] != 128000 || long[len(long)-1] != 1000000 {
		t.Fatalf("long sweep = %v", long)
	}
}

func TestLogGridCoverage(t *testing.T) {
	g := NewGenerator(3)
	pts := g.LogGrid(100, 100000, 0.001, 1.0, 8, 6)
	if len(pts) != 48 {
		t.Fatalf("grid size = %d", len(pts))
	}
	for _, p := range pts {
		if p.T < 100 || p.T > 100000 {
			t.Fatalf("T = %d outside grid", p.T)
		}
		if p.P < 0 {
			t.Fatalf("negative P: %+v", p)
		}
	}
	// Must include both very low and miss-rate-1 points.
	var sawFull, sawLow bool
	for _, p := range pts {
		if p.P == 0 {
			sawFull = true
		}
		if p.MissRate() < 0.01 {
			sawLow = true
		}
	}
	if !sawFull || !sawLow {
		t.Fatalf("grid misses extremes: full=%v low=%v", sawFull, sawLow)
	}
}

// Property: sweeps conserve the total and keep T within [1, total].
func TestPropertySweepInvariants(t *testing.T) {
	f := func(rawTotal uint32, rawMR uint8) bool {
		total := int(rawTotal%1000000) + 10
		mr := (float64(rawMR) + 1) / 256
		pts := HitRateSweep(total, []float64{mr})
		p := pts[0]
		return p.T >= 1 && p.T <= total && p.T+p.P == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
