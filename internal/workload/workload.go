// Package workload generates the synthetic inference traffic the paper's
// scenarios describe: full prefills over fused variable-length batches,
// multi-turn conversations with persistent KV cache (long initial documents
// followed by short follow-up prompts), decode phases, and hit-rate sweeps
// (Table 4's T + P = const grids).
//
// The production traces the paper drew on are not available; these
// generators exercise the same code paths — varying sequence lengths, cache
// hit rates, and batch compositions — with deterministic seeds.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Turn is one round of a conversation: per-sequence new-token counts, plus
// how many decode steps follow the prefill.
type Turn struct {
	NewTokens   []int
	DecodeSteps int
}

// Conversation is a multi-turn workload over a fixed batch of sequences.
type Conversation struct {
	NumSeqs int
	Turns   []Turn
}

// TotalNewTokens sums prefill tokens across turns and sequences.
func (c Conversation) TotalNewTokens() int {
	n := 0
	for _, t := range c.Turns {
		for _, l := range t.NewTokens {
			n += l
		}
	}
	return n
}

// TotalDecodeSteps sums decode steps across turns.
func (c Conversation) TotalDecodeSteps() int {
	n := 0
	for _, t := range c.Turns {
		n += t.DecodeSteps
	}
	return n
}

// Validate checks shape consistency.
func (c Conversation) Validate() error {
	if c.NumSeqs <= 0 {
		return fmt.Errorf("workload: non-positive batch %d", c.NumSeqs)
	}
	for i, t := range c.Turns {
		if len(t.NewTokens) != c.NumSeqs {
			return fmt.Errorf("workload: turn %d has %d lengths for batch %d", i, len(t.NewTokens), c.NumSeqs)
		}
		for s, l := range t.NewTokens {
			if l < 1 {
				return fmt.Errorf("workload: turn %d sequence %d has length %d", i, s, l)
			}
		}
		if t.DecodeSteps < 0 {
			return fmt.Errorf("workload: turn %d has negative decode steps", i)
		}
	}
	return nil
}

// Generator produces deterministic workloads.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator with the given seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Uniform returns lengths drawn uniformly from [min, max].
func (g *Generator) Uniform(n, min, max int) []int {
	if min < 1 || max < min {
		panic(fmt.Sprintf("workload: bad uniform range [%d,%d]", min, max))
	}
	out := make([]int, n)
	for i := range out {
		out[i] = min + g.rng.Intn(max-min+1)
	}
	return out
}

// Chat builds the paper's multi-turn scenario: a long first prompt (the
// document), then turns of short follow-ups each answered with decode steps.
// The resulting cache hit rate rises turn over turn, crossing the pass-KV /
// pass-Q boundary.
func (g *Generator) Chat(numSeqs, turns, docMin, docMax, followMin, followMax, decodePerTurn int) Conversation {
	c := Conversation{NumSeqs: numSeqs}
	c.Turns = append(c.Turns, Turn{NewTokens: g.Uniform(numSeqs, docMin, docMax), DecodeSteps: decodePerTurn})
	for i := 1; i < turns; i++ {
		c.Turns = append(c.Turns, Turn{NewTokens: g.Uniform(numSeqs, followMin, followMax), DecodeSteps: decodePerTurn})
	}
	return c
}

// Point is a (new tokens, cached tokens) workload for heuristic sweeps.
type Point struct {
	T, P int
}

// MissRate returns T/(T+P).
func (p Point) MissRate() float64 {
	if p.T+p.P == 0 {
		return 0
	}
	return float64(p.T) / float64(p.T+p.P)
}

// HitRateSweep reproduces Table 4's grid: fixed total context, varying the
// miss rate. Each point keeps T + P = total.
func HitRateSweep(total int, missRates []float64) []Point {
	out := make([]Point, 0, len(missRates))
	for _, mr := range missRates {
		T := int(mr*float64(total) + 0.5)
		if T < 1 {
			T = 1
		}
		if T > total {
			T = total
		}
		out = append(out, Point{T: T, P: total - T})
	}
	return out
}

// Table4MissRates returns the 14 miss rates of Table 4.
func Table4MissRates() []float64 {
	return []float64{0.01, 0.025, 0.0325, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}
}

// ContextSweep returns the context lengths of Figure 6 (2K to 128K doubling)
// when long is false, or Figure 8 (128K to 1M doubling) when long is true.
func ContextSweep(long bool) []int {
	if long {
		return []int{128_000, 256_000, 512_000, 1_000_000}
	}
	return []int{2_000, 4_000, 8_000, 16_000, 32_000, 64_000, 128_000}
}

// LogGrid returns points covering (T, miss-rate) space on log-spaced axes,
// the sampling scheme behind Figure 10's scatter.
func (g *Generator) LogGrid(tMin, tMax int, mrMin, mrMax float64, nT, nMR int) []Point {
	if nT < 2 || nMR < 2 {
		panic("workload: grid needs at least 2 points per axis")
	}
	pts := make([]Point, 0, nT*nMR)
	for i := 0; i < nT; i++ {
		frac := float64(i) / float64(nT-1)
		T := int(float64(tMin) * math.Pow(float64(tMax)/float64(tMin), frac))
		for j := 0; j < nMR; j++ {
			mfrac := float64(j) / float64(nMR-1)
			mr := mrMin * math.Pow(mrMax/mrMin, mfrac)
			total := int(float64(T) / mr)
			if total < T {
				total = T
			}
			pts = append(pts, Point{T: T, P: total - T})
		}
	}
	return pts
}
