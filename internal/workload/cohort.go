package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// This file is the servegen-style cohort layer: named workload classes with
// distinct prompt/output-length and turn-count distributions, plus
// multi-period arrival patterns. The inference-scaling bottlenecks paper
// argues serving behavior is only understandable per workload class; a
// cohort is that class, and every request a generator emits carries its
// cohort name so latency can be attributed end to end.

// DistKind names a sampling distribution.
type DistKind string

const (
	// DistConst always returns Min.
	DistConst DistKind = "const"
	// DistUniform draws uniformly from [Min, Max].
	DistUniform DistKind = "uniform"
	// DistLogUniform draws log-uniformly from [Min, Max] — long-tailed
	// lengths (documents, code files) without unbounded extremes.
	DistLogUniform DistKind = "loguniform"
)

// Dist is a deterministic discrete distribution over positive ints. All
// sampling goes through an explicit *rand.Rand — never the global source —
// so a seed fully determines every draw.
type Dist struct {
	Kind DistKind `json:"kind"`
	Min  int      `json:"min"`
	Max  int      `json:"max,omitempty"`
}

// Const builds a constant distribution.
func Const(v int) Dist { return Dist{Kind: DistConst, Min: v} }

// Uniform builds a uniform distribution over [min, max].
func UniformDist(min, max int) Dist { return Dist{Kind: DistUniform, Min: min, Max: max} }

// LogUniform builds a log-uniform distribution over [min, max].
func LogUniform(min, max int) Dist { return Dist{Kind: DistLogUniform, Min: min, Max: max} }

// Validate checks the distribution's shape.
func (d Dist) Validate() error {
	switch d.Kind {
	case DistConst:
		if d.Min < 0 {
			return fmt.Errorf("workload: const dist with negative value %d", d.Min)
		}
	case DistUniform, DistLogUniform:
		if d.Min < 0 || d.Max < d.Min {
			return fmt.Errorf("workload: %s dist with bad range [%d,%d]", d.Kind, d.Min, d.Max)
		}
		if d.Kind == DistLogUniform && d.Min < 1 {
			return fmt.Errorf("workload: loguniform dist needs min >= 1, got %d", d.Min)
		}
	default:
		return fmt.Errorf("workload: unknown dist kind %q", d.Kind)
	}
	return nil
}

// Sample draws one value. The draw count per call is fixed per kind, so a
// spec change in one cohort cannot shift another cohort's stream.
func (d Dist) Sample(rng *rand.Rand) int {
	switch d.Kind {
	case DistUniform:
		if d.Max <= d.Min {
			return d.Min
		}
		return d.Min + rng.Intn(d.Max-d.Min+1)
	case DistLogUniform:
		if d.Max <= d.Min {
			return d.Min
		}
		lo, hi := math.Log(float64(d.Min)), math.Log(float64(d.Max))
		v := int(math.Exp(lo + rng.Float64()*(hi-lo)))
		if v < d.Min {
			v = d.Min
		}
		if v > d.Max {
			v = d.Max
		}
		return v
	default:
		return d.Min
	}
}

// SLOSpec declares a cohort's latency targets: the bench reports attainment
// (fraction of requests meeting the bound) against them. Zero disables a
// target.
type SLOSpec struct {
	// TTFTMs bounds time to first token per request.
	TTFTMs float64 `json:"ttft_ms,omitempty"`
	// ITLMs bounds each inter-token latency sample.
	ITLMs float64 `json:"itl_ms,omitempty"`
	// Attain is the required fraction of samples inside the bound for the
	// SLO to count as met (default 0.9).
	Attain float64 `json:"attain,omitempty"`
}

// CohortSpec is one named workload class.
type CohortSpec struct {
	Name string `json:"name"`
	// Weight is the cohort's share of session arrivals (relative to the
	// other cohorts' weights).
	Weight float64 `json:"weight"`
	// PromptTokens is the per-turn prompt-suffix length (the first turn of a
	// RAG session additionally carries SharedPrefixTokens corpus tokens).
	PromptTokens Dist `json:"prompt_tokens"`
	// OutputTokens is the per-turn decode budget (max_tokens).
	OutputTokens Dist `json:"output_tokens"`
	// Turns is the session's conversation length.
	Turns Dist `json:"turns"`
	// ThinkUs is the client-side pause before each follow-up turn, in
	// microseconds — reading time for chat, tool-call round trips for
	// agentic sessions. Applied after the previous turn completes (the
	// per-session loop is closed; arrivals across sessions are open).
	ThinkUs Dist `json:"think_us"`
	// SharedPrefixTokens > 0 prepends that many tokens of the run's shared
	// corpus to every session's first prompt — the RAG pattern that
	// exercises prefix-cache reuse across sessions.
	SharedPrefixTokens int `json:"shared_prefix_tokens,omitempty"`
	// SLO declares the cohort's latency targets.
	SLO SLOSpec `json:"slo"`
}

// Validate checks the cohort spec.
func (c CohortSpec) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: cohort with empty name")
	}
	if c.Weight <= 0 {
		return fmt.Errorf("workload: cohort %s has non-positive weight %g", c.Name, c.Weight)
	}
	for _, d := range []struct {
		label string
		d     Dist
	}{
		{"prompt_tokens", c.PromptTokens},
		{"output_tokens", c.OutputTokens},
		{"turns", c.Turns},
		{"think_us", c.ThinkUs},
	} {
		if err := d.d.Validate(); err != nil {
			return fmt.Errorf("cohort %s %s: %w", c.Name, d.label, err)
		}
	}
	if c.PromptTokens.Min < 1 {
		return fmt.Errorf("workload: cohort %s needs prompt_tokens >= 1", c.Name)
	}
	if c.OutputTokens.Min < 1 {
		return fmt.Errorf("workload: cohort %s needs output_tokens >= 1", c.Name)
	}
	if c.Turns.Min < 1 {
		return fmt.Errorf("workload: cohort %s needs turns >= 1", c.Name)
	}
	if c.SharedPrefixTokens < 0 {
		return fmt.Errorf("workload: cohort %s has negative shared prefix", c.Name)
	}
	return nil
}

// BuiltinCohort returns the named built-in cohort spec. The shapes follow
// the serving-workload taxonomy: chat (short prompts, conversational
// turns), code (long-tailed prompts, longer completions), summarization
// (very long prompt, short output, single turn), agentic (many turns with
// tool-call pauses), rag (shared long-prefix corpus plus a short query).
// Token counts are scaled to the in-tree tiny model; the distribution
// *shapes* are what the scenarios exercise.
func BuiltinCohort(name string) (CohortSpec, error) {
	switch name {
	case "chat":
		return CohortSpec{
			Name: "chat", Weight: 4,
			PromptTokens: UniformDist(8, 24),
			OutputTokens: UniformDist(4, 12),
			Turns:        UniformDist(1, 3),
			ThinkUs:      UniformDist(1_000, 20_000),
			SLO:          SLOSpec{TTFTMs: 250, ITLMs: 100},
		}, nil
	case "code":
		return CohortSpec{
			Name: "code", Weight: 2,
			PromptTokens: LogUniform(16, 96),
			OutputTokens: UniformDist(8, 24),
			Turns:        UniformDist(1, 2),
			ThinkUs:      UniformDist(1_000, 10_000),
			SLO:          SLOSpec{TTFTMs: 500, ITLMs: 100},
		}, nil
	case "summarization":
		return CohortSpec{
			Name: "summarization", Weight: 1,
			PromptTokens: UniformDist(96, 160),
			OutputTokens: UniformDist(4, 8),
			Turns:        Const(1),
			ThinkUs:      Const(0),
			SLO:          SLOSpec{TTFTMs: 1500, ITLMs: 150},
		}, nil
	case "agentic":
		return CohortSpec{
			Name: "agentic", Weight: 1,
			PromptTokens: UniformDist(6, 16),
			OutputTokens: UniformDist(4, 10),
			Turns:        UniformDist(3, 6),
			ThinkUs:      UniformDist(20_000, 120_000), // tool-call round trips
			SLO:          SLOSpec{TTFTMs: 400, ITLMs: 100},
		}, nil
	case "rag":
		return CohortSpec{
			Name: "rag", Weight: 2,
			PromptTokens: UniformDist(6, 14),
			OutputTokens: UniformDist(4, 12),
			Turns:        UniformDist(1, 2),
			ThinkUs:      UniformDist(1_000, 20_000),
			// Every rag session shares the corpus head, so the prefix tree
			// serves the bulk of each first prefill warm.
			SharedPrefixTokens: 64,
			SLO:                SLOSpec{TTFTMs: 400, ITLMs: 100},
		}, nil
	}
	return CohortSpec{}, fmt.Errorf("workload: unknown builtin cohort %q", name)
}

// BuiltinCohortNames lists the built-in cohort names.
func BuiltinCohortNames() []string {
	return []string{"chat", "code", "summarization", "agentic", "rag"}
}

// PhaseKind names an arrival-pattern phase shape.
type PhaseKind string

const (
	// PhaseSteady holds StartRPS for the whole phase.
	PhaseSteady PhaseKind = "steady"
	// PhaseRamp interpolates the rate linearly from StartRPS to EndRPS —
	// one leg of a diurnal curve.
	PhaseRamp PhaseKind = "ramp"
	// PhaseBurst alternates StartRPS with EndRPS spikes of BurstUs every
	// PeriodUs.
	PhaseBurst PhaseKind = "burst"
)

// Phase is one period of the arrival pattern.
type Phase struct {
	Kind PhaseKind `json:"kind"`
	// DurUs is the phase length in microseconds.
	DurUs int64 `json:"dur_us"`
	// StartRPS is the base session-arrival rate (sessions per second).
	StartRPS float64 `json:"start_rps"`
	// EndRPS is the ramp target, or the burst peak.
	EndRPS float64 `json:"end_rps,omitempty"`
	// PeriodUs / BurstUs shape burst phases: every PeriodUs, the rate holds
	// EndRPS for BurstUs, then falls back to StartRPS.
	PeriodUs int64 `json:"period_us,omitempty"`
	BurstUs  int64 `json:"burst_us,omitempty"`
}

// Validate checks the phase.
func (p Phase) Validate() error {
	if p.DurUs <= 0 {
		return fmt.Errorf("workload: phase with non-positive duration %d", p.DurUs)
	}
	if p.StartRPS <= 0 {
		return fmt.Errorf("workload: phase with non-positive rate %g", p.StartRPS)
	}
	switch p.Kind {
	case PhaseSteady:
	case PhaseRamp:
		if p.EndRPS <= 0 {
			return fmt.Errorf("workload: ramp phase needs end_rps > 0")
		}
	case PhaseBurst:
		if p.EndRPS <= 0 || p.PeriodUs <= 0 || p.BurstUs <= 0 || p.BurstUs > p.PeriodUs {
			return fmt.Errorf("workload: burst phase needs end_rps > 0 and 0 < burst_us <= period_us")
		}
	default:
		return fmt.Errorf("workload: unknown phase kind %q", p.Kind)
	}
	return nil
}

// rateAt returns the phase's instantaneous rate at offset t (µs from the
// phase start).
func (p Phase) rateAt(t int64) float64 {
	switch p.Kind {
	case PhaseRamp:
		f := float64(t) / float64(p.DurUs)
		return p.StartRPS + f*(p.EndRPS-p.StartRPS)
	case PhaseBurst:
		if t%p.PeriodUs < p.BurstUs {
			return p.EndRPS
		}
		return p.StartRPS
	default:
		return p.StartRPS
	}
}

// ArrivalSpec is the multi-period arrival pattern: phases played in order.
type ArrivalSpec struct {
	Phases []Phase `json:"phases"`
}

// Validate checks every phase.
func (a ArrivalSpec) Validate() error {
	if len(a.Phases) == 0 {
		return fmt.Errorf("workload: arrival spec with no phases")
	}
	for i, p := range a.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// DurUs returns the pattern's total duration.
func (a ArrivalSpec) DurUs() int64 {
	var d int64
	for _, p := range a.Phases {
		d += p.DurUs
	}
	return d
}

// Steady returns a single steady phase.
func Steady(rps float64, durUs int64) ArrivalSpec {
	return ArrivalSpec{Phases: []Phase{{Kind: PhaseSteady, DurUs: durUs, StartRPS: rps}}}
}

// Diurnal returns a three-phase day-shaped pattern: ramp up to peak, hold,
// ramp back down. Each phase takes a third of durUs.
func Diurnal(baseRPS, peakRPS float64, durUs int64) ArrivalSpec {
	third := durUs / 3
	return ArrivalSpec{Phases: []Phase{
		{Kind: PhaseRamp, DurUs: third, StartRPS: baseRPS, EndRPS: peakRPS},
		{Kind: PhaseSteady, DurUs: third, StartRPS: peakRPS},
		{Kind: PhaseRamp, DurUs: durUs - 2*third, StartRPS: peakRPS, EndRPS: baseRPS},
	}}
}

// Bursty returns a steady base rate with periodic spikes.
func Bursty(baseRPS, peakRPS float64, durUs, periodUs, burstUs int64) ArrivalSpec {
	return ArrivalSpec{Phases: []Phase{{
		Kind: PhaseBurst, DurUs: durUs,
		StartRPS: baseRPS, EndRPS: peakRPS,
		PeriodUs: periodUs, BurstUs: burstUs,
	}}}
}

// arrivals generates the session start offsets (µs) across the pattern via
// Lewis-Shedler thinning against the pattern's peak rate: exponential gaps
// at the peak, each candidate kept with probability rate(t)/peak. Every
// candidate consumes exactly two draws, so the stream is a pure function of
// the rng state regardless of which candidates survive.
func (a ArrivalSpec) arrivals(rng *rand.Rand) []int64 {
	peak := 0.0
	for _, p := range a.Phases {
		for _, r := range []float64{p.StartRPS, p.EndRPS} {
			if r > peak {
				peak = r
			}
		}
	}
	if peak <= 0 {
		return nil
	}
	var out []int64
	var t int64
	var phaseStart int64
	phase := 0
	total := a.DurUs()
	for {
		gap := int64(rng.ExpFloat64() / peak * 1e6)
		if gap < 1 {
			gap = 1
		}
		u := rng.Float64()
		t += gap
		if t >= total {
			return out
		}
		for phase < len(a.Phases)-1 && t >= phaseStart+a.Phases[phase].DurUs {
			phaseStart += a.Phases[phase].DurUs
			phase++
		}
		if u*peak <= a.Phases[phase].rateAt(t-phaseStart) {
			out = append(out, t)
		}
	}
}

// pickCohort selects a cohort index by weight with one draw.
func pickCohort(cohorts []CohortSpec, rng *rand.Rand) int {
	total := 0.0
	for _, c := range cohorts {
		total += c.Weight
	}
	x := rng.Float64() * total
	for i, c := range cohorts {
		x -= c.Weight
		if x < 0 {
			return i
		}
	}
	return len(cohorts) - 1
}
