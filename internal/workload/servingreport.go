package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/runinfo"
)

// BENCH_serving.json schema, shared by the cploadgen emitter and the
// obscheck validator so the two cannot drift. The request-set half of the
// report (trace block, per-cohort request counts) is a pure function of the
// trace — same trace, same request set — while the latency half varies run
// to run.

// ServingSchema is the version tag in BENCH_serving.json.
const ServingSchema = "cp-serving-bench/v1"

// RequestResult is one replayed request's measured outcome, fed to
// BuildServingReport by the load driver (or the simulator).
type RequestResult struct {
	ID     int
	Cohort string
	// Status is the HTTP status (200 ok, 429 shed, 504 deadline; anything
	// else counts as an error).
	Status int
	// TTFTMs is time to first token; E2EMs is full request latency.
	TTFTMs float64
	E2EMs  float64
	// ITLMs holds every inter-token gap of the request.
	ITLMs []float64
	// OutputTokens is the decoded token count.
	OutputTokens int
}

// Quantiles is an exact latency summary computed client-side from the raw
// sorted samples (not histogram-bucketed — the load driver holds every
// sample, so it reports true order statistics).
type Quantiles struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// SLOResult reports attainment against a cohort's declared targets:
// the fraction of samples inside each bound, and whether that fraction
// clears the required attainment level.
type SLOResult struct {
	TTFTTargetMs float64 `json:"ttft_target_ms,omitempty"`
	TTFTAttain   float64 `json:"ttft_attain"`
	ITLTargetMs  float64 `json:"itl_target_ms,omitempty"`
	ITLAttain    float64 `json:"itl_attain"`
	// Required is the attainment level the targets demand (default 0.9).
	Required float64 `json:"required"`
	Met      bool    `json:"met"`
}

// CohortReport is one cohort's end-to-end view.
type CohortReport struct {
	Cohort    string    `json:"cohort"`
	Requests  int       `json:"requests"`
	Completed int       `json:"completed"`
	Shed      int       `json:"shed"`
	Timeouts  int       `json:"timeouts"`
	Errors    int       `json:"errors"`
	OutputTok int       `json:"output_tokens"`
	TTFT      Quantiles `json:"ttft"`
	ITL       Quantiles `json:"itl"`
	E2E       Quantiles `json:"e2e"`
	SLO       SLOResult `json:"slo"`
}

// TraceInfo is the deterministic request-set block: a pure function of the
// replayed trace, so two replays of the same trace must produce identical
// TraceInfo (asserted by test and CI).
type TraceInfo struct {
	Version      string         `json:"version"`
	Seed         int64          `json:"seed"`
	Requests     int            `json:"requests"`
	Sessions     int            `json:"sessions"`
	CohortCounts map[string]int `json:"cohort_counts"`
}

// Totals aggregates outcomes across cohorts.
type Totals struct {
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Timeouts  int `json:"timeouts"`
	Errors    int `json:"errors"`
	OutputTok int `json:"output_tokens"`
}

// Throughput is the run's sustained rates.
type Throughput struct {
	RequestsPerSec  float64 `json:"requests_per_sec"`
	OutputTokPerSec float64 `json:"output_tokens_per_sec"`
}

// ServingReport is the BENCH_serving.json document.
type ServingReport struct {
	Schema string `json:"schema"`
	// GeneratedUnix stamps the run (not part of the deterministic set).
	GeneratedUnix int64          `json:"generated_unix"`
	Runner        runinfo.Info   `json:"runner"`
	Trace         TraceInfo      `json:"trace"`
	DurationMs    float64        `json:"duration_ms"`
	Throughput    Throughput     `json:"throughput"`
	Totals        Totals         `json:"totals"`
	Cohorts       []CohortReport `json:"cohorts"`
}

// quantilesOf computes exact order statistics from raw samples.
func quantilesOf(samples []float64) Quantiles {
	if len(samples) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	at := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Quantiles{
		Count:  len(s),
		MeanMs: sum / float64(len(s)),
		P50Ms:  at(0.50),
		P90Ms:  at(0.90),
		P99Ms:  at(0.99),
		MaxMs:  s[len(s)-1],
	}
}

// attainment returns the fraction of samples at or under the bound.
func attainment(samples []float64, boundMs float64) float64 {
	if boundMs <= 0 || len(samples) == 0 {
		return 1
	}
	ok := 0
	for _, v := range samples {
		if v <= boundMs {
			ok++
		}
	}
	return float64(ok) / float64(len(samples))
}

// BuildServingReport assembles the report from a replayed trace and its
// measured results. durationMs is the replay wall time; generatedUnix
// stamps the run.
func BuildServingReport(tr *Trace, results []RequestResult, durationMs float64, generatedUnix int64) *ServingReport {
	rep := &ServingReport{
		Schema:        ServingSchema,
		GeneratedUnix: generatedUnix,
		Runner:        runinfo.Capture(),
		DurationMs:    durationMs,
		Trace: TraceInfo{
			Version:      tr.Spec.Version,
			Seed:         tr.Spec.Seed,
			Requests:     tr.Requests(),
			Sessions:     tr.Sessions(),
			CohortCounts: tr.CohortCounts(),
		},
	}
	slos := map[string]SLOSpec{}
	for _, c := range tr.Spec.Cohorts {
		slos[c.Name] = c.SLO
	}
	byCohort := map[string][]RequestResult{}
	for _, r := range results {
		byCohort[r.Cohort] = append(byCohort[r.Cohort], r)
	}
	names := make([]string, 0, len(byCohort))
	for name := range byCohort {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := byCohort[name]
		cr := CohortReport{Cohort: name, Requests: len(rs)}
		var ttft, itl, e2e []float64
		for _, r := range rs {
			switch r.Status {
			case 200:
				cr.Completed++
				cr.OutputTok += r.OutputTokens
				ttft = append(ttft, r.TTFTMs)
				e2e = append(e2e, r.E2EMs)
				itl = append(itl, r.ITLMs...)
			case 429:
				cr.Shed++
			case 504:
				cr.Timeouts++
			default:
				cr.Errors++
			}
		}
		cr.TTFT = quantilesOf(ttft)
		cr.ITL = quantilesOf(itl)
		cr.E2E = quantilesOf(e2e)
		slo := slos[name]
		required := slo.Attain
		if required == 0 {
			required = 0.9
		}
		cr.SLO = SLOResult{
			TTFTTargetMs: slo.TTFTMs,
			TTFTAttain:   attainment(ttft, slo.TTFTMs),
			ITLTargetMs:  slo.ITLMs,
			ITLAttain:    attainment(itl, slo.ITLMs),
			Required:     required,
		}
		cr.SLO.Met = cr.SLO.TTFTAttain >= required && cr.SLO.ITLAttain >= required
		rep.Cohorts = append(rep.Cohorts, cr)

		rep.Totals.Requests += cr.Requests
		rep.Totals.Completed += cr.Completed
		rep.Totals.Shed += cr.Shed
		rep.Totals.Timeouts += cr.Timeouts
		rep.Totals.Errors += cr.Errors
		rep.Totals.OutputTok += cr.OutputTok
	}
	if durationMs > 0 {
		rep.Throughput.RequestsPerSec = float64(rep.Totals.Completed) / (durationMs / 1000)
		rep.Throughput.OutputTokPerSec = float64(rep.Totals.OutputTok) / (durationMs / 1000)
	}
	return rep
}

// WriteServingReport writes the report as indented JSON with a trailing
// newline (the repo's BENCH file convention).
func WriteServingReport(path string, rep *ServingReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadServingReport parses a BENCH_serving.json file.
func ReadServingReport(path string) (*ServingReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &ServingReport{}
	if err := json.Unmarshal(b, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// ValidateServingReport checks the report's internal consistency — the
// checks obscheck -serving-json runs in CI.
func ValidateServingReport(rep *ServingReport) error {
	if rep.Schema != ServingSchema {
		return fmt.Errorf("serving report schema %q, want %q", rep.Schema, ServingSchema)
	}
	if rep.Runner.NumCPU < 1 || rep.Runner.GOMAXPROCS < 1 || rep.Runner.Workers < 1 {
		return fmt.Errorf("serving report runner block incomplete: %+v", rep.Runner)
	}
	if rep.Trace.Version != TraceVersion {
		return fmt.Errorf("serving report trace version %q, want %q", rep.Trace.Version, TraceVersion)
	}
	if rep.Trace.Requests < 1 {
		return fmt.Errorf("serving report replayed no requests")
	}
	if rep.DurationMs <= 0 {
		return fmt.Errorf("serving report has non-positive duration %g", rep.DurationMs)
	}
	if len(rep.Cohorts) == 0 {
		return fmt.Errorf("serving report has no cohort blocks")
	}
	var tot Totals
	prev := ""
	for _, c := range rep.Cohorts {
		if c.Cohort <= prev {
			return fmt.Errorf("cohort blocks not sorted/unique at %q", c.Cohort)
		}
		prev = c.Cohort
		if c.Completed+c.Shed+c.Timeouts+c.Errors != c.Requests {
			return fmt.Errorf("cohort %s outcomes %d+%d+%d+%d != requests %d",
				c.Cohort, c.Completed, c.Shed, c.Timeouts, c.Errors, c.Requests)
		}
		if want, got := rep.Trace.CohortCounts[c.Cohort], c.Requests; want != got {
			return fmt.Errorf("cohort %s replayed %d requests, trace has %d", c.Cohort, got, want)
		}
		for _, q := range []struct {
			label string
			q     Quantiles
		}{{"ttft", c.TTFT}, {"itl", c.ITL}, {"e2e", c.E2E}} {
			if q.q.Count > 0 {
				if q.q.P50Ms < 0 || q.q.P50Ms > q.q.P90Ms || q.q.P90Ms > q.q.P99Ms || q.q.P99Ms > q.q.MaxMs {
					return fmt.Errorf("cohort %s %s quantiles out of order: %+v", c.Cohort, q.label, q.q)
				}
				if math.IsNaN(q.q.MeanMs) || math.IsInf(q.q.MeanMs, 0) {
					return fmt.Errorf("cohort %s %s mean is %g", c.Cohort, q.label, q.q.MeanMs)
				}
			}
		}
		for _, a := range []float64{c.SLO.TTFTAttain, c.SLO.ITLAttain} {
			if a < 0 || a > 1 {
				return fmt.Errorf("cohort %s attainment %g outside [0,1]", c.Cohort, a)
			}
		}
		tot.Requests += c.Requests
		tot.Completed += c.Completed
		tot.Shed += c.Shed
		tot.Timeouts += c.Timeouts
		tot.Errors += c.Errors
		tot.OutputTok += c.OutputTok
	}
	if tot != rep.Totals {
		return fmt.Errorf("totals %+v do not match cohort sums %+v", rep.Totals, tot)
	}
	if tot.Requests != rep.Trace.Requests {
		return fmt.Errorf("replayed %d requests, trace has %d", tot.Requests, rep.Trace.Requests)
	}
	return nil
}
