package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lint"
)

func testSpec(seed int64) TraceSpec {
	spec := DefaultTraceSpec(seed, 64, 200, 500_000)
	spec.MaxSessions = 40
	return spec
}

// Same seed + same spec → byte-identical trace files (the tracev2
// determinism contract, asserted again by the CI smoke via cmp).
func TestTraceByteIdentical(t *testing.T) {
	a, err := GenerateTrace(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTrace(testSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	ab, err := MarshalTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := MarshalTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same seed produced different bytes (%d vs %d)", len(ab), len(bb))
	}
	if len(a.Events) == 0 {
		t.Fatal("trace generated no events")
	}
	c, err := GenerateTrace(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := MarshalTrace(c)
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := GenerateTrace(testSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Spec, got.Spec) {
		t.Fatalf("spec round trip mismatch:\n%+v\n%+v", tr.Spec, got.Spec)
	}
	if !reflect.DeepEqual(tr.Events, got.Events) {
		t.Fatalf("events round trip mismatch (%d vs %d events)", len(tr.Events), len(got.Events))
	}
	// Round trip re-encodes to the same bytes.
	orig, _ := MarshalTrace(tr)
	re, _ := MarshalTrace(got)
	if !bytes.Equal(orig, re) {
		t.Fatal("re-encoded trace differs from original bytes")
	}
}

func TestTraceInvariants(t *testing.T) {
	tr, err := GenerateTrace(testSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tr); err != nil {
		t.Fatal(err)
	}
	// Every built-in cohort shows up at 40 sessions with these weights.
	counts := tr.CohortCounts()
	for _, name := range BuiltinCohortNames() {
		if counts[name] == 0 {
			t.Errorf("cohort %s absent from trace (counts=%v)", name, counts)
		}
	}
	// RAG sessions share the corpus head verbatim.
	var ragFirst [][]int
	for _, ev := range tr.Events {
		if ev.Cohort == "rag" && ev.Turn == 0 {
			ragFirst = append(ragFirst, ev.Prompt)
		}
	}
	if len(ragFirst) < 2 {
		t.Fatalf("need >= 2 rag sessions, got %d", len(ragFirst))
	}
	rag, _ := BuiltinCohort("rag")
	head := ragFirst[0][:rag.SharedPrefixTokens]
	for i, p := range ragFirst {
		if !reflect.DeepEqual(p[:rag.SharedPrefixTokens], head) {
			t.Fatalf("rag session %d does not share the corpus prefix", i)
		}
	}
	// Multi-turn sessions carry think gaps; turn-0 events carry arrivals.
	for _, ev := range tr.Events {
		if ev.Turn > 0 && ev.AtUs != 0 {
			t.Fatalf("event %d: turn %d carries at_us", ev.ID, ev.Turn)
		}
	}
}

func TestValidateTraceRejects(t *testing.T) {
	mk := func() *Trace {
		tr, err := GenerateTrace(testSpec(5))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cases := []struct {
		name   string
		break_ func(*Trace)
	}{
		{"unknown cohort", func(tr *Trace) { tr.Events[0].Cohort = "nope" }},
		{"out-of-vocab token", func(tr *Trace) { tr.Events[0].Prompt[0] = 64 }},
		{"non-dense id", func(tr *Trace) { tr.Events[1].ID = 99 }},
		{"zero max_tokens", func(tr *Trace) { tr.Events[0].MaxTokens = 0 }},
		{"turn out of order", func(tr *Trace) { tr.Events[0].Turn = 1 }},
	}
	for _, c := range cases {
		tr := mk()
		c.break_(tr)
		if err := ValidateTrace(tr); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestArrivalPatterns(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec ArrivalSpec
	}{
		{"steady", Steady(100, 1_000_000)},
		{"diurnal", Diurnal(50, 300, 1_200_000)},
		{"bursty", Bursty(50, 500, 1_000_000, 200_000, 40_000)},
	} {
		if err := tc.spec.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g1 := NewGenerator(1)
		g2 := NewGenerator(1)
		a1 := tc.spec.arrivals(g1.rng)
		a2 := tc.spec.arrivals(g2.rng)
		if !reflect.DeepEqual(a1, a2) {
			t.Fatalf("%s: same-seed arrivals differ", tc.name)
		}
		if len(a1) == 0 {
			t.Fatalf("%s: no arrivals", tc.name)
		}
		last := int64(-1)
		for _, at := range a1 {
			if at <= last {
				t.Fatalf("%s: non-monotone arrival %d after %d", tc.name, at, last)
			}
			last = at
		}
		if last >= tc.spec.DurUs() {
			t.Fatalf("%s: arrival %d past duration %d", tc.name, last, tc.spec.DurUs())
		}
	}
	// The diurnal peak third should out-arrive the ramp legs; the burst
	// pattern should cluster arrivals inside burst windows.
	g := NewGenerator(2)
	di := Diurnal(20, 400, 1_200_000)
	mid := 0
	arr := di.arrivals(g.rng)
	for _, at := range arr {
		if at >= 400_000 && at < 800_000 {
			mid++
		}
	}
	if mid*5 <= len(arr)*2 { // peak third should hold well over a third of mass
		t.Fatalf("diurnal peak phase has %d/%d arrivals", mid, len(arr))
	}
}

func TestBuiltinCohortsValid(t *testing.T) {
	for _, name := range BuiltinCohortNames() {
		c, err := BuiltinCohort(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := BuiltinCohort("nope"); err == nil {
		t.Fatal("unknown cohort accepted")
	}
	if len(BuiltinCohortNames()) != 5 {
		t.Fatalf("expected 5 builtin cohorts, got %d", len(BuiltinCohortNames()))
	}
}

func TestDistSample(t *testing.T) {
	g := NewGenerator(9)
	for _, d := range []Dist{Const(7), UniformDist(3, 9), LogUniform(2, 1000)} {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			v := d.Sample(g.rng)
			if v < d.Min {
				t.Fatalf("%s sample %d below min %d", d.Kind, v, d.Min)
			}
			if d.Kind != DistConst && v > d.Max {
				t.Fatalf("%s sample %d above max %d", d.Kind, v, d.Max)
			}
		}
	}
	for _, bad := range []Dist{{Kind: "nope"}, UniformDist(5, 2), LogUniform(0, 5)} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v validated", bad)
		}
	}
}

// Seed audit, part 1: same seed → identical output from every generator
// entry point.
func TestGeneratorsDeterministic(t *testing.T) {
	c1 := NewGenerator(42).Chat(4, 3, 100, 200, 5, 20, 8)
	c2 := NewGenerator(42).Chat(4, 3, 100, 200, 5, 20, 8)
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("Chat not deterministic for same seed")
	}
	u1 := NewGenerator(42).Uniform(32, 1, 100)
	u2 := NewGenerator(42).Uniform(32, 1, 100)
	if !reflect.DeepEqual(u1, u2) {
		t.Fatal("Uniform not deterministic for same seed")
	}
}

// Seed audit, part 2: the package never consults the clock or the global
// math/rand source — every rand call goes through an explicit *rand.Rand.
// The hand-rolled AST walk this test used to carry now lives in
// internal/lint as the determinism analyzer (run repo-wide by cplint);
// here it is pointed at just this package.
func TestNoGlobalRand(t *testing.T) {
	m, _, err := lint.LoadPackage("../..", "internal/workload")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Run(lint.Policy{"determinism": {"internal/workload"}}) {
		t.Errorf("%s", f.String())
	}
}
