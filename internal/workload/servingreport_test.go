package workload

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fakeResults builds one 200 result per trace event with latencies derived
// deterministically from the id (so report tests don't need a live server).
func fakeResults(tr *Trace) []RequestResult {
	out := make([]RequestResult, 0, len(tr.Events))
	for _, ev := range tr.Events {
		out = append(out, RequestResult{
			ID: ev.ID, Cohort: ev.Cohort, Status: 200,
			TTFTMs:       float64(1 + ev.ID%7),
			E2EMs:        float64(10 + ev.ID%13),
			ITLMs:        []float64{1, float64(ev.ID % 5)},
			OutputTokens: ev.MaxTokens,
		})
	}
	return out
}

func TestServingReportBuildAndValidate(t *testing.T) {
	tr, err := GenerateTrace(testSpec(21))
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildServingReport(tr, fakeResults(tr), 1234.5, 1700000000)
	if err := ValidateServingReport(rep); err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Requests != tr.Requests() || rep.Totals.Completed != tr.Requests() {
		t.Fatalf("totals %+v for %d requests", rep.Totals, tr.Requests())
	}
	if rep.Throughput.RequestsPerSec <= 0 || rep.Throughput.OutputTokPerSec <= 0 {
		t.Fatalf("throughput not computed: %+v", rep.Throughput)
	}
	// Runner block is the satellite-1 contract.
	if rep.Runner.NumCPU < 1 || rep.Runner.GOMAXPROCS < 1 || rep.Runner.Workers < 1 || rep.Runner.GoVersion == "" {
		t.Fatalf("runner block incomplete: %+v", rep.Runner)
	}
	// Round trip through disk.
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	if err := WriteServingReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadServingReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateServingReport(got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatal("report round trip mismatch")
	}
}

// The request-set half of the report is a pure function of the trace: two
// replays of the same trace — regardless of measured latencies — must agree
// on TraceInfo and per-cohort request counts (the ISSUE's "identical
// request set" acceptance bar).
func TestServingReportRequestSetDeterministic(t *testing.T) {
	tr1, _ := GenerateTrace(testSpec(33))
	tr2, _ := GenerateTrace(testSpec(33))
	r1 := fakeResults(tr1)
	r2 := fakeResults(tr2)
	// Perturb run 2's latencies: the request set must not care.
	for i := range r2 {
		r2[i].TTFTMs *= 3
		r2[i].E2EMs += 100
	}
	a := BuildServingReport(tr1, r1, 1000, 1)
	b := BuildServingReport(tr2, r2, 2000, 2)
	if !reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("trace blocks differ:\n%+v\n%+v", a.Trace, b.Trace)
	}
	for i := range a.Cohorts {
		if a.Cohorts[i].Cohort != b.Cohorts[i].Cohort || a.Cohorts[i].Requests != b.Cohorts[i].Requests {
			t.Fatalf("request set differs in cohort %d: %+v vs %+v", i, a.Cohorts[i], b.Cohorts[i])
		}
	}
}

func TestServingReportQuantilesVsOracle(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64((i*37)%1000) / 10 // shuffled 0..99.9
	}
	q := quantilesOf(samples)
	if q.Count != 1000 {
		t.Fatalf("count %d", q.Count)
	}
	// Exact order statistics over 0,0.1,...,99.9.
	if q.P50Ms != 49.9 || q.P90Ms != 89.9 || q.P99Ms != 98.9 || q.MaxMs != 99.9 {
		t.Fatalf("quantiles %+v", q)
	}
}

func TestServingReportSLOAttainment(t *testing.T) {
	spec := testSpec(44)
	tr, _ := GenerateTrace(spec)
	results := fakeResults(tr)
	rep := BuildServingReport(tr, results, 1000, 0)
	for _, c := range rep.Cohorts {
		// fakeResults latencies are single-digit ms; every built-in target
		// is >= 100ms, so attainment must be 1 and the SLO met.
		if c.SLO.TTFTAttain != 1 || c.SLO.ITLAttain != 1 || !c.SLO.Met {
			t.Fatalf("cohort %s SLO %+v", c.Cohort, c.SLO)
		}
	}
	// Blow the TTFT budget for one cohort and watch attainment drop.
	for i := range results {
		if results[i].Cohort == "chat" {
			results[i].TTFTMs = 10_000
		}
	}
	rep = BuildServingReport(tr, results, 1000, 0)
	for _, c := range rep.Cohorts {
		if c.Cohort == "chat" && (c.SLO.TTFTAttain != 0 || c.SLO.Met) {
			t.Fatalf("chat SLO should fail: %+v", c.SLO)
		}
	}
}

func TestValidateServingReportRejects(t *testing.T) {
	tr, _ := GenerateTrace(testSpec(55))
	base := func() *ServingReport { return BuildServingReport(tr, fakeResults(tr), 1000, 0) }
	cases := []struct {
		name  string
		mut   func(*ServingReport)
		match string
	}{
		{"bad schema", func(r *ServingReport) { r.Schema = "nope" }, "schema"},
		{"missing runner", func(r *ServingReport) { r.Runner.NumCPU = 0 }, "runner"},
		{"outcome mismatch", func(r *ServingReport) { r.Cohorts[0].Shed++; r.Totals.Shed++ }, "outcomes"},
		{"totals drift", func(r *ServingReport) { r.Totals.Completed++ }, "totals"},
		{"quantile disorder", func(r *ServingReport) { r.Cohorts[0].TTFT.P50Ms = 1e9 }, "quantiles"},
		{"count drift", func(r *ServingReport) {
			r.Trace.CohortCounts[r.Cohorts[0].Cohort]++
			r.Trace.Requests++
		}, "trace has"},
	}
	for _, c := range cases {
		r := base()
		c.mut(r)
		err := ValidateServingReport(r)
		if err == nil {
			t.Errorf("%s: validation passed", c.name)
		} else if !strings.Contains(err.Error(), c.match) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.match)
		}
	}
}
