// Package runinfo captures the runner environment every BENCH JSON emitter
// must record. BENCH_kernel.json was once recorded on a 1-CPU container
// with no way to tell from the file; embedding Info makes every recorded
// number attributable to the machine that produced it.
package runinfo

import (
	"runtime"

	"repro/internal/parallel"
)

// Info describes the runner a benchmark executed on.
type Info struct {
	// NumCPU is runtime.NumCPU() — the cores the container exposes.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's P count at capture time.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the shared kernel worker-pool width (internal/parallel),
	// the fan-out every parallelized sweep actually uses.
	Workers int `json:"workers"`
	// GoVersion pins the toolchain.
	GoVersion string `json:"go_version"`
	// GOOS/GOARCH identify the platform (SIMD dispatch differs by arch).
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
}

// Capture snapshots the current runner environment.
func Capture() Info {
	return Info{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    parallel.Workers(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}
