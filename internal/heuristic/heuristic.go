// Package heuristic implements the paper's pass-KV versus pass-Q selection
// logic: the analytical thresholds of §3.4 (Equations 1-3), the partial
// prefill heuristics Algorithm 1 and its All2All-aware refinement Algorithm 5
// (Appendix C), and the empirical log-linear selector of Appendix D,
// h(T,P) = α·log(T) + β·log(T/(T+P)) + γ, together with a least-squares
// fitter that learns (α, β, γ) from labeled data points.
//
// The heuristics take a model configuration and per-rank hardware rates. The
// paper starts from hardware peaks and fine-tunes thresholds empirically
// (§3.4 footnote); the same flow here uses the hw package's calibrated
// achieved rates.
package heuristic

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
)

// Inputs captures the quantities the analytical heuristics need: the model
// shape and the per-CP-rank compute and communication rates.
type Inputs struct {
	Model model.Config
	N     int     // number of CP ranks
	C     float64 // attention compute rate per CP rank, FLOP/s
	BW    float64 // ring communication bandwidth per CP rank, bytes/s
}

// NewInputs derives heuristic inputs from a platform: one CP rank is a full
// host, so per-rank rates aggregate the host's GPUs (the paper forms one
// ring per KV head across hosts, Figure 5).
func NewInputs(m model.Config, p hw.Platform, n int) Inputs {
	return Inputs{
		Model: m,
		N:     n,
		C:     float64(p.GPUsPerHost) * p.AttnRate(),
		BW:    float64(p.GPUsPerHost) * p.EffectiveInterBW(),
	}
}

// Validate checks the inputs.
func (in Inputs) Validate() error {
	if err := in.Model.Validate(); err != nil {
		return err
	}
	if in.N <= 0 || in.C <= 0 || in.BW <= 0 {
		return fmt.Errorf("heuristic: non-positive N=%d C=%v BW=%v", in.N, in.C, in.BW)
	}
	return nil
}

// Eq1Threshold returns the KV-cache miss-rate threshold 2·NKV/NH of
// Equation 1: below it, Q embeddings are the smaller message.
func Eq1Threshold(c model.Config) float64 {
	return 2 * c.KVRatio()
}

// Eq2MinNewTokens returns the static new-token threshold of Equation 2:
// with T at or above it, ring pass-KV communication hides under attention
// regardless of the cache hit rate.
func Eq2MinNewTokens(in Inputs) float64 {
	return float64(in.N) * in.C * float64(in.Model.NumKV) * in.Model.ElemBytes /
		(2 * float64(in.Model.NumHeads) * in.BW)
}

// Eq3MinContext returns the static total-context threshold of Equation 3:
// with T+P at or above it, ring pass-Q communication hides under attention.
func Eq3MinContext(in Inputs) float64 {
	return float64(in.N) * in.Model.ElemBytes * in.C / (4 * in.BW)
}

// Algorithm1 is the paper's partial-prefill heuristic: pass-KV when the new
// tokens are long enough to hide KV communication (Equation 2) or when the
// miss rate makes KV the smaller message (Equation 1); otherwise pass-Q.
func Algorithm1(in Inputs, T, P int) perf.Variant {
	if float64(T) >= Eq2MinNewTokens(in) || model.MissRate(T, P) >= Eq1Threshold(in.Model) {
		return perf.PassKV
	}
	return perf.PassQ
}

// Algorithm5 refines Algorithm 1 by charging pass-Q for its All2All
// (Equation 5, Appendix C): the miss-rate threshold for selecting pass-Q
// drops by 4·T·BW/(N·C·e).
func Algorithm5(in Inputs, T, P int) perf.Variant {
	adjusted := Eq1Threshold(in.Model) - 4*float64(T)*in.BW/(float64(in.N)*in.C*in.Model.ElemBytes)
	if float64(T) >= Eq2MinNewTokens(in) || model.MissRate(T, P) >= adjusted {
		return perf.PassKV
	}
	return perf.PassQ
}

// ---------------------------------------------------------------------------
// Empirical selector (Appendix D).
// ---------------------------------------------------------------------------

// Empirical is the log-linear selector h(T,P) = α·ln(T) + β·ln(T/(T+P)) + γ;
// pass-KV is preferred when h is positive.
type Empirical struct {
	Alpha, Beta, Gamma float64
}

// PaperEmpirical returns the constants the paper reports from fitting its
// production measurements: α = −1.059, β = 1.145, γ = 12.112.
func PaperEmpirical() Empirical {
	return Empirical{Alpha: -1.059, Beta: 1.145, Gamma: 12.112}
}

// Score evaluates h(T, P). T must be positive.
func (e Empirical) Score(T, P int) float64 {
	return e.Alpha*math.Log(float64(T)) + e.Beta*math.Log(model.MissRate(T, P)) + e.Gamma
}

// Choose returns pass-KV when the score is positive, pass-Q otherwise.
func (e Empirical) Choose(T, P int) perf.Variant {
	if e.Score(T, P) > 0 {
		return perf.PassKV
	}
	return perf.PassQ
}

// MissRateThreshold returns, for a given T, the miss rate at which the
// selector switches from pass-Q to pass-KV (the decision boundary of
// Figure 10). Returns a value possibly outside (0, 1].
func (e Empirical) MissRateThreshold(T int) float64 {
	if e.Beta == 0 {
		return math.NaN()
	}
	return math.Exp(-(e.Alpha*math.Log(float64(T)) + e.Gamma) / e.Beta)
}

// LabeledPoint is one training observation: a workload and which variant
// actually won.
type LabeledPoint struct {
	T, P int
	Best perf.Variant
}

// FitEmpirical fits (α, β, γ) by least squares on ±1 labels (+1 = pass-KV)
// over features (ln T, ln miss-rate, 1), solving the 3×3 normal equations.
// It requires at least one point of each class.
func FitEmpirical(points []LabeledPoint) (Empirical, error) {
	if len(points) < 3 {
		return Empirical{}, fmt.Errorf("heuristic: need at least 3 points, got %d", len(points))
	}
	var nKV, nQ int
	var ata [3][3]float64
	var atb [3]float64
	for _, p := range points {
		if p.T <= 0 || p.P < 0 {
			return Empirical{}, fmt.Errorf("heuristic: invalid point T=%d P=%d", p.T, p.P)
		}
		x := [3]float64{math.Log(float64(p.T)), math.Log(model.MissRate(p.T, p.P)), 1}
		y := -1.0
		if p.Best == perf.PassKV {
			y = 1
			nKV++
		} else {
			nQ++
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				ata[i][j] += x[i] * x[j]
			}
			atb[i] += x[i] * y
		}
	}
	if nKV == 0 || nQ == 0 {
		return Empirical{}, fmt.Errorf("heuristic: need both classes (pass-KV=%d pass-Q=%d)", nKV, nQ)
	}
	sol, err := solve3(ata, atb)
	if err != nil {
		return Empirical{}, err
	}
	return Empirical{Alpha: sol[0], Beta: sol[1], Gamma: sol[2]}, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("heuristic: singular normal equations")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = m[i][3] / m[i][i]
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Evaluation against the performance-model oracle.
// ---------------------------------------------------------------------------

// Selector is any pass-KV/pass-Q chooser.
type Selector func(T, P int) perf.Variant

// Evaluation summarizes a selector's quality against the perf-model oracle
// over a workload grid.
type Evaluation struct {
	Points      int
	Agreements  int
	MeanRegret  float64 // mean relative TTFT excess over the oracle choice
	WorstRegret float64
}

// Accuracy returns the agreement fraction.
func (e Evaluation) Accuracy() float64 {
	if e.Points == 0 {
		return 0
	}
	return float64(e.Agreements) / float64(e.Points)
}

// Evaluate scores a selector on the given (T, P) grid using sys's perf model
// as ground truth. Regret on a point is (chosen − best) / best in predicted
// TTFT.
func Evaluate(sys perf.System, sel Selector, grid []LabeledPoint) Evaluation {
	var ev Evaluation
	for _, g := range grid {
		kv := sys.Prefill(g.T, g.P, perf.PassKV).Total
		q := sys.Prefill(g.T, g.P, perf.PassQ).Total
		best, bestLat := perf.PassKV, kv
		if q < kv {
			best, bestLat = perf.PassQ, q
		}
		choice := sel(g.T, g.P)
		chosenLat := kv
		if choice == perf.PassQ {
			chosenLat = q
		}
		ev.Points++
		if choice == best {
			ev.Agreements++
		}
		regret := (chosenLat - bestLat) / bestLat
		ev.MeanRegret += regret
		if regret > ev.WorstRegret {
			ev.WorstRegret = regret
		}
	}
	if ev.Points > 0 {
		ev.MeanRegret /= float64(ev.Points)
	}
	return ev
}

// OracleGrid labels a grid of (T, miss-rate) workloads with the perf-model
// winner, the training data for FitEmpirical (the Figure 10 methodology with
// the analytical model standing in for production measurements).
func OracleGrid(sys perf.System, totals []int, missRates []float64) []LabeledPoint {
	var out []LabeledPoint
	for _, total := range totals {
		for _, mr := range missRates {
			T := int(mr * float64(total))
			if T < 1 {
				T = 1
			}
			if T > total {
				T = total
			}
			P := total - T
			best, _, _ := sys.PrefillBest(T, P)
			out = append(out, LabeledPoint{T: T, P: P, Best: best})
		}
	}
	return out
}
