package heuristic_test

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
)

// Algorithm 1 for Llama3 405B on 4 GTT nodes: full prefill rides pass-KV,
// a 1%-miss follow-up rides pass-Q, and anything above the 12.5% miss-rate
// threshold (Equation 1) rides pass-KV again.
func ExampleAlgorithm1() {
	in := heuristic.NewInputs(model.Llama3405B(), hw.GTT(), 4)
	fmt.Printf("Eq1 miss threshold: %.3f\n", heuristic.Eq1Threshold(in.Model))
	fmt.Println("full 128K prefill:", heuristic.Algorithm1(in, 128000, 0))
	fmt.Println("1% miss follow-up:", heuristic.Algorithm1(in, 1280, 126720))
	fmt.Println("20% miss follow-up:", heuristic.Algorithm1(in, 25600, 102400))
	// Output:
	// Eq1 miss threshold: 0.125
	// full 128K prefill: pass-KV
	// 1% miss follow-up: pass-Q
	// 20% miss follow-up: pass-KV
}
