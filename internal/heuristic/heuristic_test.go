package heuristic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
)

func gttInputs(n int) Inputs {
	return NewInputs(model.Llama3405B(), hw.GTT(), n)
}

func gttSystem(n int) perf.System {
	return perf.System{Model: model.Llama3405B(), Plat: hw.GTT(), CPNodes: n, TPNodes: 1}
}

func TestValidate(t *testing.T) {
	if err := gttInputs(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := gttInputs(4)
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

// §4.2.4 validation: Eq 1's threshold for Llama3 405B is 12.5% — above it
// pass-KV is always selected.
func TestEq1ThresholdLlama(t *testing.T) {
	got := Eq1Threshold(model.Llama3405B())
	if math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("Eq1 threshold = %v, want 0.125 (= 2*8/128)", got)
	}
	// For MHA (NKV == NH) the threshold is 2: pass-KV always wins on size.
	if Eq1Threshold(model.TinyMHA()) != 2 {
		t.Fatal("MHA threshold should be 2")
	}
}

// The paper's empirical tipping point is T = 6400 on CP4/GTT; Equation 2's
// static threshold should land in the same few-thousand-token range.
func TestEq2ThresholdMagnitude(t *testing.T) {
	thr := Eq2MinNewTokens(gttInputs(4))
	if thr < 2000 || thr > 12000 {
		t.Fatalf("Eq2 threshold = %.0f tokens, want O(5000) per §4.2.4", thr)
	}
	// Threshold is linear in N.
	if r := Eq2MinNewTokens(gttInputs(8)) / thr; math.Abs(r-2) > 1e-9 {
		t.Fatalf("Eq2 threshold should double with N: ratio %v", r)
	}
}

func TestEq3ThresholdMagnitude(t *testing.T) {
	thr := Eq3MinContext(gttInputs(4))
	if thr <= 0 {
		t.Fatal("Eq3 threshold must be positive")
	}
	// Eq 3's context threshold is much larger than Eq 2's new-token
	// threshold for GQA models (C*e/4BW vs C*NKV*e/2*NH*BW).
	if thr <= Eq2MinNewTokens(gttInputs(4)) {
		t.Fatal("Eq3 context threshold should exceed Eq2 new-token threshold for Llama3")
	}
}

// Algorithm 1 limit cases from §3.4: full prefill (P=0) selects pass-KV for
// GQA models with NH > 2*NKV; decode (T=1) with a long cache selects pass-Q.
func TestAlgorithm1LimitCases(t *testing.T) {
	in := gttInputs(4)
	if got := Algorithm1(in, 128000, 0); got != perf.PassKV {
		t.Fatalf("full prefill chose %v, want pass-KV", got)
	}
	if got := Algorithm1(in, 1, 127999); got != perf.PassQ {
		t.Fatalf("decode-like chose %v, want pass-Q", got)
	}
	// Table 4 extremes: 1% miss -> pass-Q; 20%+ miss -> pass-KV (Eq 1).
	if got := Algorithm1(in, 1280, 126720); got != perf.PassQ {
		t.Fatalf("1%% miss chose %v, want pass-Q", got)
	}
	if got := Algorithm1(in, 25600, 102400); got != perf.PassKV {
		t.Fatalf("20%% miss chose %v, want pass-KV", got)
	}
}

// §4.2.4: "When the KV cache miss rate exceeds 12.5%, pass-KV is always
// selected, meeting the 2nd condition in Algorithm 1."
func TestAlgorithm1MissRateRule(t *testing.T) {
	in := gttInputs(4)
	for _, total := range []int{1000, 50000, 128000} {
		for _, missPct := range []int{13, 20, 50, 100} {
			T := total * missPct / 100
			if T == 0 {
				continue
			}
			if got := Algorithm1(in, T, total-T); got != perf.PassKV {
				t.Fatalf("miss %d%% of %d chose %v, want pass-KV", missPct, total, got)
			}
		}
	}
}

// Appendix C: accounting for the All2All can only shift selections from
// pass-Q to pass-KV, never the other way.
func TestAlgorithm5NeverMoreEagerForPassQ(t *testing.T) {
	in := gttInputs(4)
	f := func(rawT uint16, rawP uint32) bool {
		T := int(rawT)%128000 + 1
		P := int(rawP) % 1000000
		a1 := Algorithm1(in, T, P)
		a5 := Algorithm5(in, T, P)
		if a1 == perf.PassKV && a5 == perf.PassQ {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm5DisagreementRegionExists(t *testing.T) {
	// There must be workloads where the All2All correction flips pass-Q to
	// pass-KV (otherwise Algorithm 5 would be pointless).
	in := gttInputs(4)
	found := false
	for T := 100; T <= 6000; T += 100 {
		P := 128000 - T
		if Algorithm1(in, T, P) == perf.PassQ && Algorithm5(in, T, P) == perf.PassKV {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no workload where Algorithm 5 differs from Algorithm 1")
	}
}

func TestPaperEmpiricalConstants(t *testing.T) {
	e := PaperEmpirical()
	if e.Alpha != -1.059 || e.Beta != 1.145 || e.Gamma != 12.112 {
		t.Fatalf("paper constants changed: %+v", e)
	}
	// β > 0: higher miss rate pushes toward pass-KV (Figure 10's trend).
	if e.Beta <= 0 {
		t.Fatal("beta must be positive")
	}
	// The paper's selector must prefer pass-Q at Table 4's 1% row.
	if e.Choose(1280, 126720) != perf.PassQ {
		t.Fatal("paper selector should choose pass-Q at 1% miss, T=1280")
	}
}

func TestEmpiricalThresholdIncreasesWithT(t *testing.T) {
	// Appendix D: "the threshold increases as T increases".
	e := PaperEmpirical()
	prev := 0.0
	for _, T := range []int{100, 1000, 10000, 100000} {
		thr := e.MissRateThreshold(T)
		if thr <= prev {
			t.Fatalf("threshold at T=%d is %v, not increasing (prev %v)", T, thr, prev)
		}
		prev = thr
	}
}

func TestFitEmpiricalSeparatesSyntheticBoundary(t *testing.T) {
	// Construct points from a known ground-truth boundary and check the fit
	// recovers a consistent classifier.
	truth := Empirical{Alpha: -1, Beta: 1.2, Gamma: 10}
	var pts []LabeledPoint
	for _, T := range []int{64, 256, 1024, 4096, 16384, 65536} {
		for _, mr := range []float64{0.001, 0.01, 0.05, 0.2, 1.0} {
			total := int(float64(T) / mr)
			P := total - T
			if P < 0 {
				P = 0
			}
			pts = append(pts, LabeledPoint{T: T, P: P, Best: truth.Choose(T, P)})
		}
	}
	fit, err := FitEmpirical(pts)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, p := range pts {
		if fit.Choose(p.T, p.P) == truth.Choose(p.T, p.P) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pts)); frac < 0.9 {
		t.Fatalf("fit agrees with ground truth on %.0f%% of points, want >= 90%%", frac*100)
	}
}

func TestFitEmpiricalErrors(t *testing.T) {
	if _, err := FitEmpirical(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	allKV := []LabeledPoint{{T: 10, P: 0, Best: perf.PassKV}, {T: 20, P: 0, Best: perf.PassKV}, {T: 30, P: 0, Best: perf.PassKV}}
	if _, err := FitEmpirical(allKV); err == nil {
		t.Fatal("single-class fit accepted")
	}
	bad := []LabeledPoint{{T: 0, P: 0, Best: perf.PassKV}, {T: 1, P: 1, Best: perf.PassQ}, {T: 2, P: 2, Best: perf.PassKV}}
	if _, err := FitEmpirical(bad); err == nil {
		t.Fatal("non-positive T accepted")
	}
}

// End-to-end Appendix D methodology: label a grid with the perf oracle, fit
// the log-linear model, and require high agreement plus low regret.
func TestFittedSelectorBeatsChanceOnOracle(t *testing.T) {
	sys := gttSystem(4)
	totals := []int{32000, 64000, 128000, 256000}
	missRates := []float64{0.005, 0.01, 0.02, 0.04, 0.08, 0.15, 0.3, 0.6, 1.0}
	grid := OracleGrid(sys, totals, missRates)
	fit, err := FitEmpirical(grid)
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(sys, fit.Choose, grid)
	if ev.Accuracy() < 0.85 {
		t.Fatalf("fitted selector accuracy %.2f, want >= 0.85", ev.Accuracy())
	}
	if ev.MeanRegret > 0.02 {
		t.Fatalf("fitted selector mean regret %.3f, want <= 2%%", ev.MeanRegret)
	}
	// The paper's observation: misclassified points sit where the variants
	// differ by little. Our regret ceiling encodes the same claim.
	if ev.WorstRegret > 0.40 {
		t.Fatalf("fitted selector worst regret %.3f, too large", ev.WorstRegret)
	}
}

// Algorithm 1 and 5 evaluated against the oracle must both achieve solid
// accuracy, and Algorithm 5 must not be worse than Algorithm 1 in regret.
func TestAnalyticalHeuristicsAgainstOracle(t *testing.T) {
	sys := gttSystem(4)
	in := gttInputs(4)
	grid := OracleGrid(sys,
		[]int{64000, 128000, 256000},
		[]float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.5, 1.0})
	a1 := Evaluate(sys, func(T, P int) perf.Variant { return Algorithm1(in, T, P) }, grid)
	a5 := Evaluate(sys, func(T, P int) perf.Variant { return Algorithm5(in, T, P) }, grid)
	if a1.Accuracy() < 0.7 {
		t.Fatalf("Algorithm 1 accuracy %.2f too low", a1.Accuracy())
	}
	if a5.Accuracy() < 0.7 {
		t.Fatalf("Algorithm 5 accuracy %.2f too low", a5.Accuracy())
	}
	if a1.MeanRegret > 0.05 || a5.MeanRegret > 0.05 {
		t.Fatalf("mean regret too high: alg1 %.3f alg5 %.3f", a1.MeanRegret, a5.MeanRegret)
	}
}

func TestEvaluateEmptyGrid(t *testing.T) {
	ev := Evaluate(gttSystem(2), PaperEmpirical().Choose, nil)
	if ev.Accuracy() != 0 || ev.Points != 0 {
		t.Fatal("empty grid should evaluate to zero")
	}
}

func TestOracleGridCoversBothClasses(t *testing.T) {
	grid := OracleGrid(gttSystem(4), []int{128000}, []float64{0.005, 0.01, 0.1, 0.5, 1.0})
	var kv, q int
	for _, g := range grid {
		if g.Best == perf.PassKV {
			kv++
		} else {
			q++
		}
	}
	if kv == 0 || q == 0 {
		t.Fatalf("oracle grid one-sided: kv=%d q=%d (crossover missing)", kv, q)
	}
}
