package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablation-decode-owner", "ablation-gb200", "ablation-heuristics", "ablation-jitter",
		"ablation-sharding", "commbytes", "e2e", "fig10", "fig6a", "fig6b", "fig7", "fig8", "fig9", "lossless",
		"mfu", "plan", "quant", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "timeline", "xcheck-overlap",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	tables, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", tb.ID)
		}
		if tb.Title == "" {
			t.Errorf("%s has no title", tb.ID)
		}
		s := tb.String()
		if !strings.Contains(s, tb.ID) {
			t.Errorf("%s String() missing id", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s row width %d != header %d", tb.ID, len(row), len(tb.Header))
			}
		}
	}
}

func cell(t *testing.T, tb *Table, rowContains, col string) string {
	t.Helper()
	ci := -1
	for i, h := range tb.Header {
		if h == col {
			ci = i
		}
	}
	if ci == -1 {
		t.Fatalf("%s: no column %q in %v", tb.ID, col, tb.Header)
	}
	for _, row := range tb.Rows {
		if strings.Contains(strings.Join(row, " "), rowContains) {
			return row[ci]
		}
	}
	t.Fatalf("%s: no row containing %q", tb.ID, rowContains)
	return ""
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// Fig 6a shape: CP8 at 128K must be 6.5-8x faster than CP1.
func TestFig6aScalingShape(t *testing.T) {
	tb, err := Run("fig6a")
	if err != nil {
		t.Fatal(err)
	}
	cp1 := parse(t, cell(t, tb, "128000", "CP1 (s)"))
	cp8 := parse(t, cell(t, tb, "128000", "CP8 (s)"))
	if r := cp1 / cp8; r < 6.5 || r > 8.5 {
		t.Fatalf("CP1/CP8 = %.2f, want near-linear scaling", r)
	}
}

// Table 4 shape: the model's winner column must match the paper's winner on
// the far rows (1% -> pass-Q; >= 10% -> pass-KV).
func TestTable4WinnersMatchPaper(t *testing.T) {
	tb, err := Run("table4")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		missCell, winner, paperWinner := row[2], row[5], row[8]
		if paperWinner == "-" {
			continue
		}
		miss := parse(t, missCell)
		// Near the crossover (2-6%) either answer is acceptable (the paper
		// itself reports <1% differences there).
		if miss > 1.5 && miss < 7 {
			continue
		}
		if winner != paperWinner {
			t.Errorf("at miss %s: model winner %s, paper winner %s", missCell, winner, paperWinner)
		}
	}
}

// The lossless experiment must report deviations below float32 tolerance.
func TestLosslessDeviations(t *testing.T) {
	tb, err := Run("lossless")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		dev := parse(t, row[len(row)-1])
		if dev > 1e-4 {
			t.Errorf("deviation %v exceeds tolerance in row %v", dev, row)
		}
	}
}

// commbytes: pass-KV must move fewer ring bytes on full prefill; pass-Q on
// the high-hit-rate follow-up.
func TestCommBytesCrossover(t *testing.T) {
	tb, err := Run("commbytes")
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		sc, variant := row[0], row[1]
		if byScenario[sc] == nil {
			byScenario[sc] = map[string]float64{}
		}
		byScenario[sc][variant] = parse(t, row[2]) + parse(t, row[3])
	}
	full := byScenario["full prefill (miss 100%)"]
	if full["pass-KV"] >= full["pass-Q"] {
		t.Errorf("full prefill: pass-KV bytes %v >= pass-Q %v", full["pass-KV"], full["pass-Q"])
	}
	follow := byScenario["follow-up (miss ~6%)"]
	if follow["pass-Q"] >= follow["pass-KV"] {
		t.Errorf("follow-up: pass-Q bytes %v >= pass-KV %v", follow["pass-Q"], follow["pass-KV"])
	}
}

// MFU table: model column within 15% of the paper's 502 TF/s.
func TestMFUTable(t *testing.T) {
	tb, err := Run("mfu")
	if err != nil {
		t.Fatal(err)
	}
	tf := parse(t, cell(t, tb, "achieved TF/s", "model"))
	if tf < 427 || tf > 577 {
		t.Fatalf("achieved TF/s = %v, want 502 +/- 15%%", tf)
	}
}

// Fig 7: CP ratios must dominate TP ratios at every node count > 1.
func TestFig7CPBeatsTP(t *testing.T) {
	tb, err := Run("fig7")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		nodes := parse(t, row[0])
		if nodes == 1 {
			continue
		}
		tp, cp := parse(t, row[1]), parse(t, row[2])
		if cp <= tp {
			t.Errorf("at %v nodes: CP ratio %v <= TP ratio %v", nodes, cp, tp)
		}
	}
}

// Ablation: balanced sharding ratio is 1.0, contiguous far worse.
func TestAblationShardingTable(t *testing.T) {
	tb, err := Run("ablation-sharding")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		bal, str, ct := parse(t, row[2]), parse(t, row[3]), parse(t, row[4])
		if bal > 1.001 {
			t.Errorf("balanced ratio %v > 1", bal)
		}
		if str > 1.01 {
			t.Errorf("striped ratio %v should be near 1", str)
		}
		if ct < 2 {
			t.Errorf("contiguous ratio %v suspiciously balanced", ct)
		}
	}
}

// Heuristic ablation: the adaptive selectors must beat both fixed policies
// in mean regret.
func TestAblationHeuristicsOrdering(t *testing.T) {
	tb, err := Run("ablation-heuristics")
	if err != nil {
		t.Fatal(err)
	}
	regret := map[string]float64{}
	for _, row := range tb.Rows {
		regret[row[0]] = parse(t, row[2])
	}
	for _, adaptive := range []string{"Algorithm 1", "Algorithm 5", "fitted empirical"} {
		if regret[adaptive] >= regret["always pass-Q"] {
			t.Errorf("%s regret %v not better than always pass-Q %v",
				adaptive, regret[adaptive], regret["always pass-Q"])
		}
	}
}
