package experiments

import (
	"fmt"

	"repro/internal/perf"
)

func init() {
	register("table6", "TTFT / TTIT for TP8 vs CP2 at 8K/32K/128K context, batch 1", table6)
	register("table7", "TTFT / TTIT for TP8, CP2, TP16, CP4, TP32 at 128K context", table7)
	register("table8", "Decode attention scaling with CP hosts: per-layer microseconds", table8)
}

func table6() (*Table, error) {
	t := &Table{
		ID:    "table6",
		Title: Title("table6"),
		Header: []string{"context", "TP8 TTFT (ms)", "TP8 TTIT (ms)", "CP2 TTFT (ms)", "CP2 TTIT (ms)",
			"paper TP8", "paper CP2"},
	}
	paper := map[int][4]float64{ // ttft8, ttit8, ttftCP2, ttitCP2
		8000:   {1740, 44.51, 999, 65.61},
		32000:  {7658, 44.64, 4015, 65.66},
		128000: {42010, 46.26, 21042, 66.63},
	}
	for _, ctx := range []int{8000, 32000, 128000} {
		tp8 := gttSystem(1, 1)
		cp2 := gttSystem(2, 1)
		p := paper[ctx]
		t.AddRow(fmt.Sprintf("%d", ctx),
			ms(tp8.Prefill(ctx, 0, perf.PassKV).Total), fmt.Sprintf("%.2f", tp8.Decode(ctx, 1).Total*1000),
			ms(cp2.Prefill(ctx, 0, perf.PassKV).Total), fmt.Sprintf("%.2f", cp2.Decode(ctx, 1).Total*1000),
			fmt.Sprintf("%.0f/%.2f", p[0], p[1]), fmt.Sprintf("%.0f/%.2f", p[2], p[3]))
	}
	t.Notes = append(t.Notes,
		"paper shape: CP2 halves TTFT at every context; TTIT stays nearly flat in context for both but CP2 pays a ~45% decode penalty")
	return t, nil
}

func table7() (*Table, error) {
	t := &Table{
		ID:     "table7",
		Title:  Title("table7"),
		Header: []string{"config", "TTFT (ms)", "TTIT (ms)", "paper TTFT", "paper TTIT"},
	}
	const ctx = 128000
	rows := []struct {
		s          perf.System
		ttft, ttit float64
	}{
		{gttSystem(1, 1), 42010, 46.26},
		{gttSystem(2, 1), 21042, 60.23},
		{gttSystem(1, 2), 29917, 39.52},
		{gttSystem(4, 1), 10950, 71.31},
		{gttSystem(1, 4), 19841, 47.30},
	}
	for _, r := range rows {
		t.AddRow(r.s.Name(),
			ms(r.s.Prefill(ctx, 0, perf.PassKV).Total),
			fmt.Sprintf("%.2f", r.s.Decode(ctx, 1).Total*1000),
			fmt.Sprintf("%.0f", r.ttft), fmt.Sprintf("%.2f", r.ttit))
	}
	t.Notes = append(t.Notes,
		"paper shape: CP wins TTFT at every node count; decode TTIT degrades for both CP and TP scaling (4 nodes worse than 1)")
	return t, nil
}

func table8() (*Table, error) {
	t := &Table{
		ID:    "table8",
		Title: Title("table8"),
		Header: []string{"workload", "config", "eff ctx", "attn op (us)", "attn loop (us)",
			"SendRecv (us)", "All2All (us)", "whole pass-Q (us)", "paper whole"},
	}
	paperWhole := map[string]map[int]float64{
		"128K B=1": {1: 38.9, 2: 157.7, 4: 238.6},
		"32K B=4":  {1: 60.1, 2: 136.6, 4: 180.6},
	}
	for _, wl := range []struct {
		name  string
		ctx   int
		batch int
	}{
		{"128K B=1", 128000, 1},
		{"32K B=4", 32000, 4},
	} {
		for _, n := range []int{1, 2, 4} {
			b := gttSystem(n, 1).Decode(wl.ctx, wl.batch)
			t.AddRow(wl.name, b.System,
				fmt.Sprintf("%dK", wl.ctx/n/1000),
				us(b.AttnOp), us(b.AttnLoopIter), us(b.SendRecvIter), us(b.All2AllIter),
				us(b.WholeAttnIter),
				fmt.Sprintf("%.1f", paperWhole[wl.name][n]))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: individual attention ops shrink with CP (shorter effective context) but ring hops and All2All grow the whole pass-Q latency",
		"decode runs under CUDA graphs in the paper; communication is not overlapped, so components add")
	return t, nil
}
