// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 plus Appendices A and D) from this repository's
// implementations: the calibrated performance model for latency numbers and
// the functional simulated cluster for losslessness and communication
// accounting. Each experiment returns a structured Table that the cpbench
// CLI and the root benchmark suite render; paper-reported values are
// embedded alongside the model's predictions so the output doubles as the
// paper-vs-measured record in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
)

// Table is one regenerated table or figure.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment.
type Generator func() (*Table, error)

var registry = map[string]Generator{}
var titles = map[string]string{}

func register(id, title string, g Generator) {
	registry[id] = g
	titles[id] = title
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the registered title for an id.
func Title(id string) string { return titles[id] }

// Run executes one experiment by id.
func Run(id string) (*Table, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g()
}

// RunAll executes every experiment in id order.
func RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Shared configuration helpers.
// ---------------------------------------------------------------------------

func gttSystem(cp, tp int) perf.System {
	return perf.System{Model: model.Llama3405B(), Plat: hw.GTT(), CPNodes: cp, TPNodes: tp}
}

func gtiSystem(cp int) perf.System {
	return perf.System{Model: model.Llama3405B(), Plat: hw.GTI(), CPNodes: cp, TPNodes: 1}
}

func ms(sec float64) string { return fmt.Sprintf("%.2f", sec*1000) }

func sec(sec float64) string { return fmt.Sprintf("%.2f", sec) }

func us(sec float64) string { return fmt.Sprintf("%.0f", sec*1e6) }

func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }
