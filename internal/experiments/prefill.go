package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/workload"
)

func init() {
	register("table2", "TP vs CP communication and memory cost per transformer block", table2)
	register("table3", "GQA attention complexity for full and partial prefill", table3)
	register("fig6a", "Llama3 405B pass-KV full prefill latency on GTT (RDMA), CP1/2/4/8", fig6a)
	register("fig6b", "Llama3 405B pass-KV full prefill latency on GTI (TCP), CP1/2/4", fig6b)
	register("fig7", "Scaling ratio of context parallel vs multi-node tensor parallel, 128K prefill", fig7)
	register("fig8", "TTFT of 128K-1M context with CP8 and CP16", fig8)
	register("mfu", "Appendix A: FLOPs accounting and model FLOPS utilization at 1M context", mfu)
}

// table2 evaluates the Table 2 formulas for Llama3 405B at a sample length
// and cross-checks the 32x TP/CP traffic ratio.
func table2() (*Table, error) {
	c := model.Llama3405B()
	t := &Table{
		ID:     "table2",
		Title:  Title("table2"),
		Header: []string{"quantity", "TP", "CP"},
	}
	const T = 8192
	t.AddRow("collective", "AllReduce", "SendRecv")
	t.AddRow("comm per 2 linear (bytes)", fmt.Sprintf("%.0f", c.TPCommBytesPerBlock(T)), "0")
	t.AddRow("comm per attn (bytes)", "0", fmt.Sprintf("%.0f", c.CPCommBytesPerBlock(T)))
	t.AddRow("total comm per block (bytes)", fmt.Sprintf("%.0f", c.TPCommBytesPerBlock(T)),
		fmt.Sprintf("%.0f", c.CPCommBytesPerBlock(T)))
	t.AddRow("parameter size per GPU", "W/N_TP", "W")
	ratio := c.TPCommBytesPerBlock(T) / c.CPCommBytesPerBlock(T)
	t.Notes = append(t.Notes,
		fmt.Sprintf("T=%d; TP/CP traffic ratio = %.0fx (2*NH/NKV = %d for Llama3 405B)", T, ratio, 2*c.NumHeads/c.NumKV),
		"functional counterpart: internal/ring byte-accounting tests verify counted bytes on the simulated cluster")
	return t, nil
}

// table3 evaluates Table 3's complexity formulas at representative shapes.
func table3() (*Table, error) {
	c := model.Llama3405B()
	t := &Table{
		ID:     "table3",
		Title:  Title("table3"),
		Header: []string{"case", "T", "P", "FLOPs/layer", "Q bytes", "KV bytes"},
	}
	cases := []struct {
		name string
		T, P int
	}{
		{"full prefill", 128000, 0},
		{"partial 10%", 12800, 115200},
		{"partial 1%", 1280, 126720},
		{"decode", 1, 127999},
	}
	for _, cs := range cases {
		t.AddRow(cs.name, fmt.Sprintf("%d", cs.T), fmt.Sprintf("%d", cs.P),
			fmt.Sprintf("%.3g", c.AttnFLOPsPartial(cs.T, cs.P)),
			fmt.Sprintf("%.3g", c.QBytes(cs.T)),
			fmt.Sprintf("%.3g", c.KVBytes(cs.T, cs.P)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Q < KV exactly when miss rate <= 2*NKV/NH = %.3f (Equation 1)", 2*c.KVRatio()))
	return t, nil
}

func prefillSweep(id string, gti bool, nodes []int) (*Table, error) {
	t := &Table{ID: id, Title: Title(id)}
	t.Header = []string{"context"}
	for _, n := range nodes {
		t.Header = append(t.Header, fmt.Sprintf("CP%d (s)", n))
	}
	for _, ctx := range workload.ContextSweep(false) {
		row := []string{fmt.Sprintf("%d", ctx)}
		for _, n := range nodes {
			var s perf.System
			if gti {
				s = gtiSystem(n)
			} else {
				s = gttSystem(n, 1)
			}
			row = append(row, sec(s.Prefill(ctx, 0, perf.PassKV).Total))
		}
		t.AddRow(row...)
	}
	return t, nil
}

func fig6a() (*Table, error) {
	t, err := prefillSweep("fig6a", false, []int{1, 2, 4, 8})
	if err != nil {
		return nil, err
	}
	cp8 := gttSystem(8, 1).Prefill(128000, 0, perf.PassKV).Total
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: CP8/GTT processes a 128K prefill in 5.85 s; model predicts %.2f s", cp8),
		"paper shape: latency halves as CP nodes double once context is large enough to hide SendRecv")
	return t, nil
}

func fig6b() (*Table, error) {
	t, err := prefillSweep("fig6b", true, []int{1, 2, 4})
	if err != nil {
		return nil, err
	}
	gttCP4 := gttSystem(4, 1).Prefill(128000, 0, perf.PassKV).Total
	gtiCP4 := gtiSystem(4).Prefill(128000, 0, perf.PassKV).Total
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: GTI (TCP, ~3 GB/s achieved) matches GTT scalability up to 4 nodes at large contexts; model: GTI CP4 %.2f s vs GTT CP4 %.2f s at 128K", gtiCP4, gttCP4))
	return t, nil
}

func fig7() (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  Title("fig7"),
		Header: []string{"nodes", "TP scaling ratio", "CP pass-KV scaling ratio", "perfect"},
	}
	const T = 128000
	type pt struct {
		nodes  int
		tp, cp float64
	}
	var pts []pt
	for _, n := range []int{1, 2, 4, 8} {
		p := pt{nodes: n, cp: gttSystem(n, 1).ScalingRatio(T, perf.PassKV)}
		p.tp = gttSystem(1, n).ScalingRatio(T, perf.PassKV)
		pts = append(pts, p)
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%d", p.nodes), fmt.Sprintf("%.2f", p.tp),
			fmt.Sprintf("%.2f", p.cp), fmt.Sprintf("%d", p.nodes))
	}
	tp8 := pts[len(pts)-1]
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: CP2 vs TP16 differ ~15%% in ratio at 2 nodes, ~100%% at 8 nodes; model: %.0f%% at 8 nodes",
			(tp8.cp/tp8.tp-1)*100),
		"paper values (Fig 7): TP saturates near 2x while CP tracks perfect scaling")
	return t, nil
}

func fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  Title("fig8"),
		Header: []string{"context", "CP8 TTFT (s)", "CP16 TTFT (s)", "paper CP16 (s)"},
	}
	paper := map[int]string{128000: "3.8", 256000: "-", 512000: "-", 1000000: "77"}
	for _, ctx := range workload.ContextSweep(true) {
		cp8 := gttSystem(8, 1)
		cp16 := gttSystem(16, 1)
		cp8Cell := "-"
		if float64(ctx) <= cp8.KVCapacityTokens() {
			cp8Cell = sec(cp8.Prefill(ctx, 0, perf.PassKV).Total)
		}
		t.AddRow(fmt.Sprintf("%d", ctx), cp8Cell,
			sec(cp16.Prefill(ctx, 0, perf.PassKV).Total), paper[ctx])
	}
	half := gttSystem(16, 1).Prefill(500000, 0, perf.PassKV).Total
	full := gttSystem(16, 1).Prefill(1000000, 0, perf.PassKV).Total
	t.Notes = append(t.Notes,
		fmt.Sprintf("TTFT grows super-linearly past 512K: 2x context -> %.2fx TTFT (paper: >2x)", full/half),
		fmt.Sprintf("KV capacity: CP8 holds %.0f tokens, CP16 %.0f (paper's capacity argument, §4.2.3)",
			gttSystem(8, 1).KVCapacityTokens(), gttSystem(16, 1).KVCapacityTokens()))
	return t, nil
}

func mfu() (*Table, error) {
	c := model.Llama3405B()
	s := gttSystem(16, 1)
	const T = 1_000_000
	gemm := c.GEMMFLOPs(1, T)
	attn := c.AttnFLOPsCausal(1, T)
	total := c.TotalPrefillFLOPs(1, T)
	ttft := s.Prefill(T, 0, perf.PassKV).Total
	perGPU, util := s.MFU(T, perf.PassKV)
	eff := s.ParallelEfficiency(T, perf.PassKV)
	t := &Table{
		ID:     "mfu",
		Title:  Title("mfu"),
		Header: []string{"quantity", "model", "paper"},
	}
	t.AddRow("GEMM FLOPs", fmt.Sprintf("%.3g", gemm), "8.1e17")
	t.AddRow("ATTN FLOPs", fmt.Sprintf("%.3g", attn), "4.1e18")
	t.AddRow("total FLOPs", fmt.Sprintf("%.3g", total), "4.9e18")
	t.AddRow("TTFT (s)", sec(ttft), "77")
	t.AddRow("achieved TF/s per H100", fmt.Sprintf("%.0f", perGPU/1e12), "502")
	t.AddRow("parallelization efficiency", pct(eff), "93%")
	t.AddRow("FLOPS utilization (BF16 peak 800TF)", pct(util), "~63%")
	return t, nil
}
