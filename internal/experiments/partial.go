package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/workload"
)

func init() {
	register("table4", "TTFT for pass-KV vs pass-Q varying P and T with P+T=128000 on CP4", table4)
	register("fig9", "pass-KV / pass-Q speed ratio vs KV cache miss rate (CP4, 128K total)", fig9)
	register("table5", "Time breakdown per ring iteration at 2.5% and 10% miss rate (CP4)", table5)
	register("fig10", "Appendix D: empirical heuristic fit h(T,P) on the perf-model oracle", fig10)
}

// paperTable4 holds the paper's measured TTFT (ms) per miss rate for the
// pass-KV and pass-Q columns, keyed by T.
var paperTable4 = map[int][2]float64{
	1280:   {1023.39, 898.71},
	3200:   {1110.18, 1046.43},
	4160:   {1298.92, 1280.10},
	6400:   {1305.56, 1302.01},
	12800:  {2080.67, 2205.27},
	25600:  {3353.02, 3617.02},
	38400:  {4629.23, 4922.52},
	51200:  {5745.08, 6217.83},
	64000:  {6845.21, 7367.99},
	76800:  {7890.35, 8468.66},
	89600:  {8697.27, 9666.62},
	102400: {10105.78, 10652.39},
	115200: {11136.40, 11571.62},
	128000: {11462.15, 12360.57},
}

func table4() (*Table, error) {
	s := gttSystem(4, 1)
	t := &Table{
		ID:    "table4",
		Title: Title("table4"),
		Header: []string{"P", "T", "miss", "pass-KV (ms)", "pass-Q (ms)", "winner",
			"paper KV (ms)", "paper Q (ms)", "paper winner"},
	}
	for _, p := range workload.HitRateSweep(128000, workload.Table4MissRates()) {
		kv := s.Prefill(p.T, p.P, perf.PassKV).Total
		q := s.Prefill(p.T, p.P, perf.PassQ).Total
		winner := perf.PassKV
		if q < kv {
			winner = perf.PassQ
		}
		paperKV, paperQ, paperWinner := "-", "-", "-"
		if ref, ok := paperTable4[p.T]; ok {
			paperKV = fmt.Sprintf("%.0f", ref[0])
			paperQ = fmt.Sprintf("%.0f", ref[1])
			if ref[0] <= ref[1] {
				paperWinner = perf.PassKV.String()
			} else {
				paperWinner = perf.PassQ.String()
			}
		}
		t.AddRow(fmt.Sprintf("%d", p.P), fmt.Sprintf("%d", p.T), pct(p.MissRate()),
			ms(kv), ms(q), winner.String(), paperKV, paperQ, paperWinner)
	}
	t.Notes = append(t.Notes,
		"paper shape: TTFT linear in miss rate; pass-Q wins below ~5% miss, pass-KV above",
		"absolute model values at low miss rates undershoot the paper's (unmodeled per-forward host overheads); the per-iteration breakdown (table5) and the crossover location match")
	return t, nil
}

func fig9() (*Table, error) {
	s := gttSystem(4, 1)
	t := &Table{
		ID:     "fig9",
		Title:  Title("fig9"),
		Header: []string{"miss rate", "pass-KV/pass-Q ratio", "paper ratio"},
	}
	for _, p := range workload.HitRateSweep(128000, workload.Table4MissRates()) {
		kv := s.Prefill(p.T, p.P, perf.PassKV).Total
		q := s.Prefill(p.T, p.P, perf.PassQ).Total
		paper := "-"
		if ref, ok := paperTable4[p.T]; ok {
			paper = fmt.Sprintf("%.3f", ref[0]/ref[1])
		}
		t.AddRow(pct(p.MissRate()), fmt.Sprintf("%.3f", kv/q), paper)
	}
	// Locate the crossover by bisection.
	lo, hi := 0.005, 0.20
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		T := int(mid * 128000)
		v, _, _ := s.PrefillBest(T, 128000-T)
		if v == perf.PassQ {
			lo = mid
		} else {
			hi = mid
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("model crossover at %.1f%% miss rate (paper: ~5%%, with <1%% latency difference nearby)", lo*100))
	return t, nil
}

func table5() (*Table, error) {
	s := gttSystem(4, 1)
	t := &Table{
		ID:    "table5",
		Title: Title("table5"),
		Header: []string{"miss rate", "variant", "SendRecv (us)", "ATTN (us)", "All2All (us)",
			"paper SendRecv", "paper ATTN", "paper All2All"},
	}
	layers := float64(s.Model.Layers)
	rows := []struct {
		missPct float64
		T, P    int
		// paper values in microseconds: sendrecvKV, attn, sendrecvQ, all2all
		pKV, pAttn, pQ, pA2A float64
	}{
		{2.5, 3200, 124800, 627, 414, 166, 424},
		{10, 12800, 115200, 631, 1608, 544, 1023},
	}
	for _, r := range rows {
		kv := s.Prefill(r.T, r.P, perf.PassKV)
		q := s.Prefill(r.T, r.P, perf.PassQ)
		t.AddRow(fmt.Sprintf("%.1f%%", r.missPct), "pass-KV",
			us(kv.SendRecvIter), us(kv.AttnIter), "-",
			fmt.Sprintf("%.0f", r.pKV), fmt.Sprintf("%.0f", r.pAttn), "-")
		t.AddRow(fmt.Sprintf("%.1f%%", r.missPct), "pass-Q",
			us(q.SendRecvIter), us(q.AttnIter), us(q.All2All/layers),
			fmt.Sprintf("%.0f", r.pQ), fmt.Sprintf("%.0f", r.pAttn), fmt.Sprintf("%.0f", r.pA2A))
	}
	t.Notes = append(t.Notes,
		"paper: at 2.5% miss, exposed pass-KV comm (N-1)*(SendRecv-ATTN) exceeds pass-Q's All2All -> pass-Q wins; at 10% SendRecv hides under ATTN -> pass-KV wins")
	return t, nil
}

func fig10() (*Table, error) {
	s := gttSystem(4, 1)
	gen := workload.NewGenerator(7)
	pts := gen.LogGrid(256, 262144, 0.002, 1.0, 14, 12)
	grid := make([]heuristic.LabeledPoint, 0, len(pts))
	for _, p := range pts {
		best, _, _ := s.PrefillBest(p.T, p.P)
		grid = append(grid, heuristic.LabeledPoint{T: p.T, P: p.P, Best: best})
	}
	fit, err := heuristic.FitEmpirical(grid)
	if err != nil {
		return nil, err
	}
	ev := heuristic.Evaluate(s, fit.Choose, grid)
	paper := heuristic.PaperEmpirical()

	t := &Table{
		ID:     "fig10",
		Title:  Title("fig10"),
		Header: []string{"quantity", "fitted (this repo)", "paper"},
	}
	t.AddRow("alpha (log T)", fmt.Sprintf("%.3f", fit.Alpha), fmt.Sprintf("%.3f", paper.Alpha))
	t.AddRow("beta (log miss)", fmt.Sprintf("%.3f", fit.Beta), fmt.Sprintf("%.3f", paper.Beta))
	t.AddRow("gamma", fmt.Sprintf("%.3f", fit.Gamma), fmt.Sprintf("%.3f", paper.Gamma))
	t.AddRow("training points", fmt.Sprintf("%d", ev.Points), "-")
	t.AddRow("classification accuracy", pct(ev.Accuracy()), "trend-consistent with misclassifications where diff < 1%")
	t.AddRow("mean regret vs oracle", pct(ev.MeanRegret), "-")

	// Also compare the analytical heuristics on the same grid.
	in := heuristic.NewInputs(model.Llama3405B(), hw.GTT(), 4)
	a1 := heuristic.Evaluate(s, func(T, P int) perf.Variant { return heuristic.Algorithm1(in, T, P) }, grid)
	a5 := heuristic.Evaluate(s, func(T, P int) perf.Variant { return heuristic.Algorithm5(in, T, P) }, grid)
	t.AddRow("Algorithm 1 accuracy", pct(a1.Accuracy()), "-")
	t.AddRow("Algorithm 5 accuracy", pct(a5.Accuracy()), "-")
	t.Notes = append(t.Notes,
		"beta > 0 in both fits: higher miss rate pushes toward pass-KV, the Figure 10 trend",
		"decision boundary: for each T there is a miss-rate threshold between pass-Q (below) and pass-KV (above)")
	return t, nil
}
