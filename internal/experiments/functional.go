package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/tensor"
	"repro/internal/transformer"
	"repro/internal/workload"
)

func init() {
	register("lossless", "Functional cluster: max deviation of ring variants vs reference attention", lossless)
	register("commbytes", "Functional cluster: counted ring/All2All bytes per variant and hit rate", commBytes)
	register("e2e", "End-to-end transformer: distributed greedy generation vs single-device reference", endToEnd)
}

// endToEnd runs the full Llama-architecture transformer distributed over CP
// ranks and checks that greedy generation is token-identical to the
// reference — the whole-system losslessness demonstration.
func endToEnd() (*Table, error) {
	t := &Table{
		ID:     "e2e",
		Title:  Title("e2e"),
		Header: []string{"ranks", "variant", "steps", "tokens match", "ring bytes", "per-rank KV"},
	}
	w, err := transformer.NewWeights(transformer.Tiny(31))
	if err != nil {
		return nil, err
	}
	prompt := []int{9, 41, 6, 27, 15, 3}
	const steps = 6
	ref, err := w.GenerateReference(prompt, steps)
	if err != nil {
		return nil, err
	}
	for _, ranks := range []int{1, 2, 4} {
		for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
			c, err := transformer.NewCluster(w, ranks)
			if err != nil {
				return nil, err
			}
			got, err := c.Generate(0, prompt, steps, v)
			if err != nil {
				return nil, err
			}
			match := "yes"
			for i := range ref {
				if got[i] != ref[i] {
					match = fmt.Sprintf("DIVERGED@%d", i)
					break
				}
			}
			t.AddRow(fmt.Sprintf("%d", ranks), v.String(), fmt.Sprintf("%d", steps), match,
				fmt.Sprintf("%.0f", c.CommStats().TotalBytes()),
				fmt.Sprintf("%v", c.RankCacheTokens()))
		}
	}
	t.Notes = append(t.Notes,
		"greedy token streams from the distributed transformer (ring attention on every layer, RoPE at global positions) are identical to the single-device reference")
	return t, nil
}

// runConversation drives a tiny functional engine through a multi-turn chat
// and returns the worst deviation from the reference oracle.
func runConversation(ranks int, policy core.Policy, conv workload.Conversation, seed int64) (maxDev float64, e *core.Engine, err error) {
	m := model.Tiny()
	e, err = core.New(core.Config{Model: m, Ranks: ranks, Policy: policy, TrackHistory: true})
	if err != nil {
		return 0, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ids := make([]int, conv.NumSeqs)
	for i := range ids {
		ids[i] = i
	}
	for _, turn := range conv.Turns {
		total := 0
		for _, l := range turn.NewTokens {
			total += l
		}
		req := &core.PrefillRequest{
			SeqIDs: ids, Lens: turn.NewTokens,
			Q: tensor.RandN(rng, total, m.NumHeads, m.HeadDim),
			K: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
			V: tensor.RandN(rng, total, m.NumKV, m.HeadDim),
		}
		pBefore := make([]int, len(ids))
		for i, id := range ids {
			pBefore[i] = e.SeqLen(id)
		}
		res, err := e.Prefill(req)
		if err != nil {
			return 0, nil, err
		}
		off := 0
		for i, id := range ids {
			ref, err := e.Reference(id, req.Q.SliceTokens(off, off+turn.NewTokens[i]), pBefore[i])
			if err != nil {
				return 0, nil, err
			}
			if d := tensor.MaxAbsDiff(ref, res.Output.SliceTokens(off, off+turn.NewTokens[i])); d > maxDev {
				maxDev = d
			}
			off += turn.NewTokens[i]
		}
		for s := 0; s < turn.DecodeSteps; s++ {
			dreq := &core.DecodeRequest{
				SeqIDs: ids,
				Q:      tensor.RandN(rng, conv.NumSeqs, m.NumHeads, m.HeadDim),
				K:      tensor.RandN(rng, conv.NumSeqs, m.NumKV, m.HeadDim),
				V:      tensor.RandN(rng, conv.NumSeqs, m.NumKV, m.HeadDim),
			}
			prev := make([]int, len(ids))
			for i, id := range ids {
				prev[i] = e.SeqLen(id)
			}
			dres, err := e.Decode(dreq)
			if err != nil {
				return 0, nil, err
			}
			for i, id := range ids {
				ref, err := e.Reference(id, dreq.Q.SliceTokens(i, i+1), prev[i])
				if err != nil {
					return 0, nil, err
				}
				if d := tensor.MaxAbsDiff(ref, dres.Output.SliceTokens(i, i+1)); d > maxDev {
					maxDev = d
				}
			}
		}
	}
	return maxDev, e, nil
}

func lossless() (*Table, error) {
	t := &Table{
		ID:     "lossless",
		Title:  Title("lossless"),
		Header: []string{"policy", "ranks", "turns", "decode steps", "max |out - reference|"},
	}
	gen := workload.NewGenerator(3)
	conv := gen.Chat(2, 3, 12, 20, 2, 5, 3)
	for _, ranks := range []int{1, 2, 4} {
		for _, policy := range []core.Policy{core.Force(perf.PassKV), core.Force(perf.PassQ)} {
			dev, _, err := runConversation(ranks, policy, conv, 99)
			if err != nil {
				return nil, err
			}
			t.AddRow(policy.Name(), fmt.Sprintf("%d", ranks),
				fmt.Sprintf("%d", len(conv.Turns)), fmt.Sprintf("%d", conv.TotalDecodeSteps()),
				fmt.Sprintf("%.2g", dev))
		}
	}
	t.Notes = append(t.Notes,
		"the paper's 'lossless exact' claim: every variant reproduces monolithic attention to float32 tolerance on the simulated cluster")
	return t, nil
}

func commBytes() (*Table, error) {
	t := &Table{
		ID:     "commbytes",
		Title:  Title("commbytes"),
		Header: []string{"scenario", "variant", "ring bytes", "all2all bytes", "cheaper"},
	}
	scenarios := []struct {
		name       string
		seed, turn int // turn 0 = full prefill; 1 = small follow-up
	}{
		{"full prefill (miss 100%)", 5, 0},
		{"follow-up (miss ~6%)", 5, 1},
	}
	for _, sc := range scenarios {
		var ringB, a2aB [2]float64
		for vi, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
			// Seed with a pass-KV full prefill, then measure only the final
			// turn under the variant being compared.
			m := model.Tiny()
			e, err := core.New(core.Config{Model: m, Ranks: 2, Policy: core.Force(v)})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(int64(sc.seed)))
			lastLen := 32
			if sc.turn == 1 {
				seed := &core.PrefillRequest{
					SeqIDs: []int{0}, Lens: []int{32},
					Q: tensor.RandN(rng, 32, m.NumHeads, m.HeadDim),
					K: tensor.RandN(rng, 32, m.NumKV, m.HeadDim),
					V: tensor.RandN(rng, 32, m.NumKV, m.HeadDim),
				}
				if _, err := e.Prefill(seed); err != nil {
					return nil, err
				}
				lastLen = 2
			}
			e.ResetCommStats()
			req := &core.PrefillRequest{
				SeqIDs: []int{0}, Lens: []int{lastLen},
				Q: tensor.RandN(rng, lastLen, m.NumHeads, m.HeadDim),
				K: tensor.RandN(rng, lastLen, m.NumKV, m.HeadDim),
				V: tensor.RandN(rng, lastLen, m.NumKV, m.HeadDim),
			}
			if _, err := e.Prefill(req); err != nil {
				return nil, err
			}
			st := e.CommStats()
			ringB[vi] = st.Bytes["sendrecv"]
			a2aB[vi] = st.Bytes["all2all"]
		}
		for vi, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
			cheaper := ""
			if ringB[vi] <= ringB[1-vi] {
				cheaper = "<- (ring)"
			}
			t.AddRow(sc.name, v.String(),
				fmt.Sprintf("%.0f", ringB[vi]), fmt.Sprintf("%.0f", a2aB[vi]), cheaper)
		}
	}
	t.Notes = append(t.Notes,
		"bytes counted on the simulated transport; note full prefill favors pass-KV while high-hit-rate follow-ups favor pass-Q ring traffic (Equation 1)")
	return t, nil
}
