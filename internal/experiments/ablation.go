package experiments

import (
	"fmt"

	"repro/internal/heuristic"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/sharding"
	"repro/internal/workload"
)

func init() {
	register("ablation-sharding", "Load-balanced 2N-chunk sharding vs striped vs naive contiguous", ablationSharding)
	register("ablation-heuristics", "Heuristic regret: Algorithm 1 vs Algorithm 5 vs fitted empirical vs oracle", ablationHeuristics)
	register("ablation-gb200", "Multi-node TP on GTT (RDMA) vs a GB200-like NVLink fabric", ablationGB200)
	register("ablation-decode-owner", "Decode KV growth: round-robin rotation vs static owner", ablationDecodeOwner)
	register("plan", "Deployment planning: smallest CP group per TTFT target and context", planTable)
}

// planTable exercises the §2.3 capacity/latency trade-off: for each context
// and TTFT target, the minimal CP group that serves it.
func planTable() (*Table, error) {
	t := &Table{
		ID:     "plan",
		Title:  Title("plan"),
		Header: []string{"context", "TTFT target (s)", "plan", "GPUs", "TTFT (s)", "TTIT (ms)", "capacity ok"},
	}
	cases := []struct {
		ctx    int
		target float64
	}{
		{128000, 45}, {128000, 25}, {128000, 12}, {128000, 6},
		{1000000, 150}, {1000000, 80},
	}
	for _, cs := range cases {
		p, err := perf.PlanDeployment(perf.PlanRequest{
			Model: model.Llama3405B(), Plat: hw.GTT(),
			Context: cs.ctx, TTFTTarget: cs.target, MaxCPNodes: 32,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", cs.ctx), fmt.Sprintf("%.0f", cs.target),
			p.System.Name(), fmt.Sprintf("%d", p.System.TotalGPUs()),
			sec(p.TTFT), fmt.Sprintf("%.1f", p.TTIT*1000), fmt.Sprintf("%v", p.CapacityOK))
	}
	t.Notes = append(t.Notes,
		"the paper's framing (§2.3): CP trades hardware capacity for latency; tighter TTFT targets buy more nodes and a decode (TTIT) penalty (§4.3)")
	return t, nil
}

// ablationSharding quantifies the §3.5.1 design choice: per-rank causal
// compute imbalance under both sharding schemes.
func ablationSharding() (*Table, error) {
	t := &Table{
		ID:    "ablation-sharding",
		Title: Title("ablation-sharding"),
		Header: []string{"ranks", "T", "balanced max/min pairs", "striped max/min pairs",
			"contiguous max/min pairs", "runs: balanced/striped"},
	}
	for _, n := range []int{2, 4, 8} {
		for _, T := range []int{4096, 131072} {
			span := func(pos func(int) []int) float64 {
				min, max := int64(1)<<62, int64(0)
				for r := 0; r < n; r++ {
					c := sharding.CausalPairs(pos(r))
					if c < min {
						min = c
					}
					if c > max {
						max = c
					}
				}
				return float64(max) / float64(min)
			}
			bal := span(func(r int) []int { return sharding.LoadBalancedPositions(T, n, r) })
			str := span(func(r int) []int { return sharding.StripedPositions(T, n, r) })
			ct := span(func(r int) []int { return sharding.ContiguousPositions(T, n, r) })
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", T),
				fmt.Sprintf("%.3f", bal), fmt.Sprintf("%.3f", str), fmt.Sprintf("%.3f", ct),
				fmt.Sprintf("%d/%d",
					sharding.Runs(sharding.LoadBalancedPositions(T, n, 0)),
					sharding.Runs(sharding.StripedPositions(T, n, 0))))
		}
	}
	t.Notes = append(t.Notes,
		"balanced sharding holds per-rank causal FLOPs equal (ratio 1.0); contiguous sharding leaves the last rank far heavier (§3.5.1)",
		"striped sharding (Brandon et al.) also balances compute but fragments each rank's KV into T/N single-token runs; the mirrored-chunk scheme keeps 2 contiguous runs")
	return t, nil
}

func ablationHeuristics() (*Table, error) {
	s := gttSystem(4, 1)
	in := heuristic.NewInputs(model.Llama3405B(), hw.GTT(), 4)
	gen := workload.NewGenerator(11)
	pts := gen.LogGrid(256, 262144, 0.002, 1.0, 12, 10)
	grid := make([]heuristic.LabeledPoint, 0, len(pts))
	for _, p := range pts {
		best, _, _ := s.PrefillBest(p.T, p.P)
		grid = append(grid, heuristic.LabeledPoint{T: p.T, P: p.P, Best: best})
	}
	fit, err := heuristic.FitEmpirical(grid)
	if err != nil {
		return nil, err
	}
	selectors := []struct {
		name string
		sel  heuristic.Selector
	}{
		{"always pass-KV", func(int, int) perf.Variant { return perf.PassKV }},
		{"always pass-Q", func(int, int) perf.Variant { return perf.PassQ }},
		{"Algorithm 1", func(T, P int) perf.Variant { return heuristic.Algorithm1(in, T, P) }},
		{"Algorithm 5", func(T, P int) perf.Variant { return heuristic.Algorithm5(in, T, P) }},
		{"fitted empirical", fit.Choose},
	}
	t := &Table{
		ID:     "ablation-heuristics",
		Title:  Title("ablation-heuristics"),
		Header: []string{"selector", "accuracy", "mean regret", "worst regret"},
	}
	for _, sl := range selectors {
		ev := heuristic.Evaluate(s, sl.sel, grid)
		t.AddRow(sl.name, pct(ev.Accuracy()), pct(ev.MeanRegret), pct(ev.WorstRegret))
	}
	t.Notes = append(t.Notes,
		"the paper's adaptive selection exists because neither fixed variant is safe: each fixed policy pays real regret somewhere on the grid")
	return t, nil
}

func ablationGB200() (*Table, error) {
	t := &Table{
		ID:     "ablation-gb200",
		Title:  Title("ablation-gb200"),
		Header: []string{"config", "GTT TTFT (s)", "GB200-like TTFT (s)"},
	}
	const T = 128000
	m := model.Llama3405B()
	for _, tp := range []int{1, 2, 4} {
		gtt := perf.System{Model: m, Plat: hw.GTT(), CPNodes: 1, TPNodes: tp}
		gb := perf.System{Model: m, Plat: hw.GB200Like(), CPNodes: 1, TPNodes: tp}
		t.AddRow(gtt.Name(),
			sec(gtt.Prefill(T, 0, perf.PassKV).Total),
			sec(gb.Prefill(T, 0, perf.PassKV).Total))
	}
	t.Notes = append(t.Notes,
		"§4.2.2 remark: with NVLink-class cross-host bandwidth (GB200 NVL72), multi-node TP regains reasonable scalability")
	return t, nil
}

func ablationDecodeOwner() (*Table, error) {
	t := &Table{
		ID:     "ablation-decode-owner",
		Title:  Title("ablation-decode-owner"),
		Header: []string{"steps", "ranks", "batch", "rotation max-min", "static max-min"},
	}
	for _, cfg := range []struct{ steps, ranks, batch int }{
		{100, 4, 1}, {100, 8, 1}, {64, 4, 3},
	} {
		rot := make([]int, cfg.ranks)
		static := make([]int, cfg.ranks)
		for s := 0; s < cfg.steps; s++ {
			for q := 0; q < cfg.batch; q++ {
				rot[sharding.DecodeOwner(q, s, cfg.ranks)]++
				static[sharding.StaticOwner(q, cfg.ranks)]++
			}
		}
		span := func(xs []int) int {
			min, max := xs[0], xs[0]
			for _, x := range xs {
				if x < min {
					min = x
				}
				if x > max {
					max = x
				}
			}
			return max - min
		}
		t.AddRow(fmt.Sprintf("%d", cfg.steps), fmt.Sprintf("%d", cfg.ranks), fmt.Sprintf("%d", cfg.batch),
			fmt.Sprintf("%d", span(rot)), fmt.Sprintf("%d", span(static)))
	}
	t.Notes = append(t.Notes,
		"§3.6: without rotation a batch-1 decode pins all KV growth on one rank, which OOMs before the others fill — rotation keeps growth within 1 token")
	return t, nil
}
