package experiments

import (
	"fmt"
	"math"

	"repro/internal/eventsim"
	"repro/internal/perf"
)

func init() {
	register("timeline", "Discrete-event schedule of one ring-attention layer (Table 5 scenarios)", timeline)
	register("ablation-jitter", "Slow-link tolerance of ring overlap: GTT vs GTI, event-driven", ablationJitter)
	register("xcheck-overlap", "Cross-validation: event-driven makespan vs closed-form overlap model", xcheckOverlap)
}

// specFrom builds a uniform event-sim spec from the perf model's
// per-iteration quantities for one layer.
func specFrom(sys perf.System, T, P int, v perf.Variant) eventsim.RingSpec {
	b := sys.Prefill(T, P, v)
	a2a := 0.0
	if v == perf.PassQ {
		a2a = b.All2All / float64(sys.Model.Layers)
	}
	return eventsim.Uniform(sys.CPNodes, b.AttnIter, b.SendRecvIter, a2a)
}

func timeline() (*Table, error) {
	t := &Table{
		ID:     "timeline",
		Title:  Title("timeline"),
		Header: []string{"scenario", "variant", "makespan (us)", "exposed comm (us)", "gantt (# compute, - xfer, = all2all)"},
	}
	s := gttSystem(4, 1)
	for _, sc := range []struct {
		name string
		T, P int
	}{
		{"2.5% miss", 3200, 124800},
		{"10% miss", 12800, 115200},
	} {
		for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
			spec := specFrom(s, sc.T, sc.P, v)
			res, err := eventsim.Simulate(spec)
			if err != nil {
				return nil, err
			}
			gantt := res.Gantt(res.Makespan / 48)
			t.AddRow(sc.name, v.String(), us(res.Makespan), us(res.ExposedComm[0]),
				firstLine(gantt))
			for _, line := range restLines(gantt) {
				t.AddRow("", "", "", "", line)
			}
		}
	}
	t.Notes = append(t.Notes,
		"at 2.5% miss pass-KV's transfers outlast compute (exposed); at 10% they hide — the Table 5 selection logic as a schedule")
	return t, nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

func restLines(s string) []string {
	var out []string
	start := 0
	first := true
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if !first {
				out = append(out, s[start:i])
			}
			first = false
			start = i + 1
		}
	}
	return out
}

func ablationJitter() (*Table, error) {
	t := &Table{
		ID:     "ablation-jitter",
		Title:  Title("ablation-jitter"),
		Header: []string{"platform", "link slowdown", "makespan (ms)", "vs clean", "absorbed"},
	}
	const T = 128000
	for _, plat := range []struct {
		name string
		sys  perf.System
	}{
		{"gtt", gttSystem(4, 1)},
		{"gti", gtiSystem(4)},
	} {
		clean := specFrom(plat.sys, T, 0, perf.PassKV)
		base, err := eventsim.Simulate(clean)
		if err != nil {
			return nil, err
		}
		for _, slow := range []float64{1, 2, 4, 8} {
			spec := specFrom(plat.sys, T, 0, perf.PassKV)
			spec.ScaleLinkXfer(1, slow)
			res, err := eventsim.Simulate(spec)
			if err != nil {
				return nil, err
			}
			ratio := res.Makespan / base.Makespan
			absorbed := "yes"
			if ratio > 1.001 {
				absorbed = "no"
			}
			t.AddRow(plat.name, fmt.Sprintf("%.0fx", slow), ms(res.Makespan*float64(plat.sys.Model.Layers)),
				fmt.Sprintf("%.3f", ratio), absorbed)
		}
	}
	t.Notes = append(t.Notes,
		"RDMA headroom absorbs multi-x link slowdowns under attention compute; the TCP fabric, already near the overlap boundary, exposes them sooner — the quantitative form of §4.2.1's robustness claim")
	return t, nil
}

func xcheckOverlap() (*Table, error) {
	t := &Table{
		ID:     "xcheck-overlap",
		Title:  Title("xcheck-overlap"),
		Header: []string{"N", "regime", "closed form (us)", "event-driven (us)", "rel diff"},
	}
	cases := []struct {
		n                  int
		name               string
		compute, xfer, a2a float64
	}{
		{2, "compute-bound", 1000e-6, 300e-6, 0},
		{4, "compute-bound", 1000e-6, 300e-6, 0},
		{4, "comm-bound", 300e-6, 1000e-6, 0},
		{8, "balanced", 500e-6, 500e-6, 0},
		{4, "pass-Q tail", 800e-6, 200e-6, 400e-6},
	}
	worst := 0.0
	for _, c := range cases {
		res, err := eventsim.Simulate(eventsim.Uniform(c.n, c.compute, c.xfer, c.a2a))
		if err != nil {
			return nil, err
		}
		cf := eventsim.ClosedForm(c.n, c.compute, c.xfer, c.a2a)
		rel := math.Abs(res.Makespan-cf) / cf
		if rel > worst {
			worst = rel
		}
		t.AddRow(fmt.Sprintf("%d", c.n), c.name, us(cf), us(res.Makespan), fmt.Sprintf("%.2g", rel))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst relative difference %.2g: the perf model's overlap expression is the exact fixed point of the event-driven schedule on uniform rings", worst))
	return t, nil
}
