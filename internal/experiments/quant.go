package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/attention"
	"repro/internal/quantize"
	"repro/internal/tensor"
)

func init() {
	register("quant", "KV-cache quantization: attention error vs capacity gain (§2.2)", quantTable)
}

// quantTable measures what each KV storage format costs in attention
// accuracy and buys in cache capacity — the memory-side lever the paper
// pairs with context parallelism's capacity scaling.
func quantTable() (*Table, error) {
	t := &Table{
		ID:    "quant",
		Title: Title("quant"),
		Header: []string{"format", "bytes/elem", "capacity gain", "KV rel err",
			"attn out max err", "1M ctx fits CP16?"},
	}
	rng := rand.New(rand.NewSource(5))
	const T = 24
	q := tensor.RandN(rng, T, 8, 16)
	k := tensor.RandN(rng, T, 2, 16)
	v := tensor.RandN(rng, T, 2, 16)
	m := attention.FullCausal(T)
	exact, err := attention.GQA(q, k, v, m)
	if err != nil {
		return nil, err
	}
	cp16 := gttSystem(16, 1)
	baseCapacity := cp16.KVCapacityTokens()
	for _, f := range []quantize.Format{quantize.BF16, quantize.INT8, quantize.FP8} {
		kq, err := quantize.Quantize(k, f)
		if err != nil {
			return nil, err
		}
		vq, err := quantize.Quantize(v, f)
		if err != nil {
			return nil, err
		}
		kRecon := kq.Dequantize()
		approx, err := attention.GQA(q, kRecon, vq.Dequantize(), m)
		if err != nil {
			return nil, err
		}
		capacity := baseCapacity * quantize.CapacityGain(f)
		fits := "yes"
		if capacity < 1e6 {
			fits = "no"
		}
		t.AddRow(f.String(), fmt.Sprintf("%.0f", f.Bytes()),
			fmt.Sprintf("%.1fx", quantize.CapacityGain(f)),
			fmt.Sprintf("%.2g", quantize.MaxRelError(k, kRecon)),
			fmt.Sprintf("%.2g", tensor.MaxAbsDiff(exact.O, approx.O)),
			fits)
	}
	t.Notes = append(t.Notes,
		"§2.2: 8-bit KV halves cache footprint (doubling the context a CP group holds) at bounded attention error; ring attention itself stays exact — quantization is the only approximation",
		fmt.Sprintf("CP16 BF16 capacity baseline: %.2gM tokens", baseCapacity/1e6))
	return t, nil
}
