//go:build amd64

package simd

// hasAVX is the one CPUID probe the repo's vector kernels share.
var hasAVX = cpuidAVX()

// cpuidAVX reports AVX support with OS-enabled YMM state (CPUID.1:ECX
// OSXSAVE+AVX, then XGETBV XMM+YMM). Implemented in simd_amd64.s.
func cpuidAVX() bool

// dotF32AVX is the vector form of DotF32Scalar: four float32 lanes in one
// XMM accumulator (lane i == scalar accumulator s_i), scalar tail into lane
// 0, horizontal reduction replaying ((s0+s2)+(s1+s3)). Implemented in
// simd_amd64.s.
func dotF32AVX(a, b []float32) float32
