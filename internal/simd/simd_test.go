package simd

import (
	"math"
	"math/rand"
	"testing"
)

// The AVX dot must be bit-identical to the scalar four-way-unrolled oracle
// at every length, including non-multiple-of-four tails — switching between
// the two paths is a pure throughput decision.
func TestDotF32AVXMatchesScalarExactly(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX on this machine")
	}
	rng := rand.New(rand.NewSource(7))
	for n := 8; n <= 96; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for trial := 0; trial < 8; trial++ {
			for i := range a {
				a[i] = float32(rng.NormFloat64())
				b[i] = float32(rng.NormFloat64())
			}
			got := dotF32AVX(a, b)
			want := DotF32Scalar(a, b)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("dotF32AVX(n=%d) = %x, scalar %x", n, got, want)
			}
		}
	}
}

// DotF32 must dispatch to bit-identical results whether the vector path is
// enabled or not, across the short-vector cutoff.
func TestDotF32DispatchIsBitStable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for n := 0; n <= 40; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		prev := SetEnabled(false)
		scalar := DotF32(a, b)
		SetEnabled(true)
		vec := DotF32(a, b)
		SetEnabled(prev)
		if math.Float32bits(scalar) != math.Float32bits(vec) {
			t.Fatalf("DotF32(n=%d) enabled=%x disabled=%x", n, vec, scalar)
		}
	}
}

func TestSetEnabledCannotForceAVXOn(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	if Available() && !hasAVX {
		t.Fatal("SetEnabled(true) enabled vector paths without hardware support")
	}
}

func TestDotF32LengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	DotF32(make([]float32, 3), make([]float32, 4))
}
