//go:build amd64

#include "textflag.h"

// func cpuidAVX() bool
// CPUID.1:ECX must report OSXSAVE (bit 27) and AVX (bit 28), and XGETBV
// must confirm the OS saves XMM+YMM state (XCR0 bits 1 and 2).
TEXT ·cpuidAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func dotF32AVX(a, b []float32) float32
// Four float32 lanes accumulate in X0 (lane i == scalar accumulator s_i of
// the four-way unrolled oracle), the scalar tail folds into lane 0, and the
// horizontal reduction replays ((s0+s2)+(s1+s3)). VEX.128 ops only, so no
// VZEROUPPER is needed.
TEXT ·dotF32AVX(SB), NOSPLIT, $0-52
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VXORPS X0, X0, X0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     dtail_setup
dloop4:
	VMOVUPS (SI), X1
	VMOVUPS (DI), X2
	VMULPS  X2, X1, X1
	VADDPS  X1, X0, X0
	ADDQ    $16, SI
	ADDQ    $16, DI
	DECQ    DX
	JNZ     dloop4
dtail_setup:
	ANDQ $3, CX
	JZ   dreduce
dtail:
	VMOVSS (SI), X1
	VMULSS (DI), X1, X1
	VADDSS X1, X0, X0
	ADDQ   $4, SI
	ADDQ   $4, DI
	DECQ   CX
	JNZ    dtail
dreduce:
	// X0 = [s0 s1 s2 s3]; form (s0+s2) + (s1+s3) in lane 0.
	VPSRLDQ $8, X0, X1  // [s2 s3 0 0]
	VADDSS  X1, X0, X2  // lane0 = s0+s2
	VPSRLDQ $4, X0, X3  // [s1 s2 s3 0]
	VPSRLDQ $12, X0, X4 // [s3 0 0 0]
	VADDSS  X4, X3, X3  // lane0 = s1+s3
	VADDSS  X3, X2, X2
	VMOVSS  X2, ret+48(FP)
	RET
