//go:build !amd64

package simd

// Non-amd64 builds always take the portable scalar loops; the constant lets
// the compiler delete the vector branches entirely.
const hasAVX = false

func dotF32AVX(a, b []float32) float32 { panic("simd: dotF32AVX without AVX") }
