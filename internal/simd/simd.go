// Package simd hosts the SIMD building blocks shared by the compute hot
// paths: the attention kernels (internal/attention) gate their AVX inner
// loops on the CPU detection here, and the projection/FFN/logits GEMMs
// (internal/tensor) call the float32 dot product directly.
//
// The package generalizes the AVX scaffolding that previously lived inside
// internal/attention: one CPUID probe (OSXSAVE+AVX with OS-enabled YMM
// state) and vector kernels whose lane arithmetic is bit-for-bit the same
// as their portable scalar fallbacks. The contract every kernel here obeys:
//
//   - The scalar fallback is the oracle. It uses four independent
//     accumulators (breaking the floating-point add latency chain) combined
//     as ((s0+s2)+(s1+s3)), with the tail folded into s0.
//   - The vector path maps lane i to scalar accumulator s_i and replays the
//     same horizontal reduction, so switching between the two paths can
//     never change a bit — it is purely a throughput decision.
//
// Tests verify the equivalence bitwise at every length, including
// non-multiple-of-four tails.
package simd

// enabled gates the vector paths. It is initialized from CPUID and can be
// flipped with SetEnabled by tests and benchmarks that need the scalar
// oracle; it is never mutated while kernels are running.
var enabled = hasAVX

// Available reports whether the vector paths are active.
func Available() bool { return enabled }

// SetEnabled turns the vector paths on or off and returns the previous
// state. Enabling is a no-op on hardware without AVX. Intended for tests
// and benchmarks that compare against the scalar oracle; do not call it
// concurrently with running kernels.
func SetEnabled(on bool) bool {
	prev := enabled
	enabled = on && hasAVX
	return prev
}

// DotF32 returns the inner product of two equal-length float32 vectors with
// the shared four-accumulator reduction order. It is the innermost kernel
// of the row-blocked projection GEMMs.
func DotF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("simd: dot length mismatch")
	}
	if enabled && len(a) >= 8 {
		return dotF32AVX(a, b)
	}
	return DotF32Scalar(a, b)
}

// DotF32Scalar is the portable oracle: four-way unrolled accumulators with
// the tail folded into s0, reduced as ((s0+s2)+(s1+s3)). The AVX kernel is
// verified bitwise against it.
func DotF32Scalar(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}
