package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/transformer"
)

func newTestServer(t *testing.T, policy Policy) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Transformer: transformer.Tiny(321),
		Ranks:       2,
		Policy:      policy,
		Variant:     perf.PassKV,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

func TestGenerateMatchesReference(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	prompt := []int{4, 19, 22, 7, 31}
	var got generateResponse
	resp := post(t, ts.URL+"/v1/generate",
		generateRequest{Session: 1, Prompt: prompt, MaxTokens: 5}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Tokens) != 5 {
		t.Fatalf("tokens = %v", got.Tokens)
	}
	// Oracle: the same weights generate the same stream.
	w, err := transformer.NewWeights(transformer.Tiny(321))
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.GenerateReference(prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Tokens[i] != want[i] {
			t.Fatalf("served tokens %v != reference %v", got.Tokens, want)
		}
	}
	if got.TTFTMs <= 0 || len(got.TTITMs) != 4 {
		t.Fatalf("latency fields: ttft=%v ttit=%v", got.TTFTMs, got.TTITMs)
	}
}

func TestPrefillDecodeSessionFlow(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	var pre prefillResponse
	resp := post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 7, Tokens: []int{1, 2, 3}}, &pre)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefill status %d", resp.StatusCode)
	}
	if pre.SessionLen != 3 {
		t.Fatalf("session len = %d", pre.SessionLen)
	}
	var dec prefillResponse
	resp = post(t, ts.URL+"/v1/decode", decodeRequest{Session: 7, Token: pre.NextToken}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode status %d", resp.StatusCode)
	}
	if dec.SessionLen != 4 {
		t.Fatalf("session len after decode = %d", dec.SessionLen)
	}
	// Multi-turn follow-up against the persistent cache.
	resp = post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 7, Tokens: []int{9, 9}}, &pre)
	if resp.StatusCode != http.StatusOK || pre.SessionLen != 6 {
		t.Fatalf("follow-up: status %d len %d", resp.StatusCode, pre.SessionLen)
	}
}

func TestDecodeUnknownSession(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	resp := post(t, ts.URL+"/v1/decode", decodeRequest{Session: 99, Token: 1}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	// Empty prompt.
	resp := post(t, ts.URL+"/v1/generate", generateRequest{Session: 1, MaxTokens: 2}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prompt: status %d", resp.StatusCode)
	}
	// Out-of-vocab token.
	resp = post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 1, Tokens: []int{99999}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token: status %d", resp.StatusCode)
	}
	// Bad JSON.
	r, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", r.StatusCode)
	}
	// Wrong method.
	g, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate: status %d", g.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, PrefillFirst)
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 3, Tokens: []int{5, 6, 7, 8}}, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ranks != 2 || st.Policy != "prefill-first" || st.Sessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, n := range st.RankKV {
		total += n
	}
	// 4 tokens x 2 layers spread over ranks.
	if total != 8 {
		t.Fatalf("rank KV total = %d, want 8", total)
	}
	if st.QueueStats[ClassPrefill].Executed != 1 {
		t.Fatalf("queue stats = %+v", st.QueueStats)
	}
	if st.SessionLens["3"] != 4 {
		t.Fatalf("session lens = %v", st.SessionLens)
	}
}

func TestSessionDelete(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 2, Tokens: []int{1}}, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	// Second delete is a 404.
	resp2, _ := http.DefaultClient.Do(req)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete status %d", resp2.StatusCode)
	}
	// Bad id.
	req3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/abc", nil)
	resp3, _ := http.DefaultClient.Do(req3)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", resp3.StatusCode)
	}
}

func TestConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var out generateResponse
			resp := post(t, ts.URL+"/v1/generate",
				generateRequest{Session: id, Prompt: []int{id + 1, id + 2, id + 3}, MaxTokens: 3}, &out)
			if resp.StatusCode != http.StatusOK {
				errs[id] = fmt.Errorf("session %d: status %d", id, resp.StatusCode)
				return
			}
			if len(out.Tokens) != 3 {
				errs[id] = fmt.Errorf("session %d: tokens %v", id, out.Tokens)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Scheduler unit behaviour: prefill-first jumps the decode queue.
func TestSchedulerPrefillPriority(t *testing.T) {
	s := NewScheduler(PrefillFirst)
	defer s.Close()
	var mu sync.Mutex
	var order []Class
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the worker so queues build up
		defer wg.Done()
		_ = s.Submit(ClassDecode, func() { <-gate })
	}()
	time.Sleep(20 * time.Millisecond) // let the blocker start executing
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Submit(ClassDecode, func() {
				mu.Lock()
				order = append(order, ClassDecode)
				mu.Unlock()
			})
		}()
	}
	time.Sleep(20 * time.Millisecond) // decodes enqueued first
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Submit(ClassPrefill, func() {
			mu.Lock()
			order = append(order, ClassPrefill)
			mu.Unlock()
		})
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if len(order) != 3 || order[0] != ClassPrefill {
		t.Fatalf("execution order %v, want prefill first", order)
	}
	st := s.Stats()
	if st[ClassPrefill].Executed != 1 || st[ClassDecode].Executed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerFIFOKeepsOrder(t *testing.T) {
	s := NewScheduler(FIFO)
	defer s.Close()
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []Class
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.Submit(ClassDecode, func() { <-gate })
	}()
	time.Sleep(20 * time.Millisecond)
	submit := func(c Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Submit(c, func() {
				mu.Lock()
				order = append(order, c)
				mu.Unlock()
			})
		}()
		time.Sleep(20 * time.Millisecond)
	}
	submit(ClassDecode)
	submit(ClassPrefill)
	submit(ClassDecode)
	close(gate)
	wg.Wait()
	want := []Class{ClassDecode, ClassPrefill, ClassDecode}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fifo order %v, want %v", order, want)
		}
	}
}

func TestSchedulerClosedRejects(t *testing.T) {
	s := NewScheduler(FIFO)
	s.Close()
	if err := s.Submit(ClassPrefill, func() {}); err == nil {
		t.Fatal("closed scheduler accepted work")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := New(Config{Transformer: transformer.Tiny(1), Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	bad := transformer.Tiny(1)
	bad.Model.VocabSize = 0
	if _, err := New(Config{Transformer: bad, Ranks: 1}); err == nil {
		t.Fatal("invalid model accepted")
	}
}
