package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/transformer"
)

func newTestServer(t *testing.T, policy Policy) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Transformer: transformer.Tiny(321),
		Ranks:       2,
		Policy:      policy,
		Variant:     perf.PassKV,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp
}

func TestGenerateMatchesReference(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	prompt := []int{4, 19, 22, 7, 31}
	var got generateResponse
	resp := post(t, ts.URL+"/v1/generate",
		generateRequest{Session: 1, Prompt: prompt, MaxTokens: 5}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(got.Tokens) != 5 {
		t.Fatalf("tokens = %v", got.Tokens)
	}
	// Oracle: the same weights generate the same stream.
	w, err := transformer.NewWeights(transformer.Tiny(321))
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.GenerateReference(prompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got.Tokens[i] != want[i] {
			t.Fatalf("served tokens %v != reference %v", got.Tokens, want)
		}
	}
	if got.TTFTMs <= 0 || len(got.TTITMs) != 4 {
		t.Fatalf("latency fields: ttft=%v ttit=%v", got.TTFTMs, got.TTITMs)
	}
}

func TestPrefillDecodeSessionFlow(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	var pre prefillResponse
	resp := post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 7, Tokens: []int{1, 2, 3}}, &pre)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prefill status %d", resp.StatusCode)
	}
	if pre.SessionLen != 3 {
		t.Fatalf("session len = %d", pre.SessionLen)
	}
	var dec prefillResponse
	resp = post(t, ts.URL+"/v1/decode", decodeRequest{Session: 7, Token: pre.NextToken}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode status %d", resp.StatusCode)
	}
	if dec.SessionLen != 4 {
		t.Fatalf("session len after decode = %d", dec.SessionLen)
	}
	// Multi-turn follow-up against the persistent cache.
	resp = post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 7, Tokens: []int{9, 9}}, &pre)
	if resp.StatusCode != http.StatusOK || pre.SessionLen != 6 {
		t.Fatalf("follow-up: status %d len %d", resp.StatusCode, pre.SessionLen)
	}
}

func TestDecodeUnknownSession(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	resp := post(t, ts.URL+"/v1/decode", decodeRequest{Session: 99, Token: 1}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	// Empty prompt.
	resp := post(t, ts.URL+"/v1/generate", generateRequest{Session: 1, MaxTokens: 2}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prompt: status %d", resp.StatusCode)
	}
	// Out-of-vocab token.
	resp = post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 1, Tokens: []int{99999}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad token: status %d", resp.StatusCode)
	}
	// Bad JSON.
	r, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d", r.StatusCode)
	}
	// Wrong method.
	g, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate: status %d", g.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, PrefillFirst)
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 3, Tokens: []int{5, 6, 7, 8}}, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ranks != 2 || st.Policy != "prefill-first" || st.Sessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, n := range st.RankKV {
		total += n
	}
	// 4 tokens x 2 layers spread over ranks.
	if total != 8 {
		t.Fatalf("rank KV total = %d, want 8", total)
	}
	if st.QueueStats[ClassPrefill].Executed != 1 {
		t.Fatalf("queue stats = %+v", st.QueueStats)
	}
	if st.SessionLens["3"] != 4 {
		t.Fatalf("session lens = %v", st.SessionLens)
	}
	// Continuous-batching telemetry is populated.
	if st.Batch.Iterations < 1 || st.Batch.PrefillChunks != 1 || st.Batch.PrefillTokens != 4 {
		t.Fatalf("batch stats = %+v", st.Batch)
	}
	if st.TokenBudget <= 0 || st.MaxBatch <= 0 || st.MaxSessions <= 0 {
		t.Fatalf("limits unset: %+v", st)
	}
}

func TestSessionDelete(t *testing.T) {
	s, ts := newTestServer(t, FIFO)
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 2, Tokens: []int{1}}, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	// Deletion evicted the KV and released the admission slot.
	if s.sched.Active(2) || s.sched.Sessions() != 0 {
		t.Fatal("session 2 still resident after delete")
	}
	// Second delete is a 404.
	resp2, _ := http.DefaultClient.Do(req)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete status %d", resp2.StatusCode)
	}
	// Bad id.
	req3, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/abc", nil)
	resp3, _ := http.DefaultClient.Do(req3)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", resp3.StatusCode)
	}
}

func TestConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var out generateResponse
			resp := post(t, ts.URL+"/v1/generate",
				generateRequest{Session: id, Prompt: []int{id + 1, id + 2, id + 3}, MaxTokens: 3}, &out)
			if resp.StatusCode != http.StatusOK {
				errs[id] = fmt.Errorf("session %d: status %d", id, resp.StatusCode)
				return
			}
			if len(out.Tokens) != 3 {
				errs[id] = fmt.Errorf("session %d: tokens %v", id, out.Tokens)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentServingMatchesReferences drives many goroutine clients
// through the full HTTP stack at once and checks (a) every session's stream
// matches its single-session reference and (b) the scheduler actually fused
// sessions — batch occupancy above one was observed, not assumed.
func TestConcurrentServingMatchesReferences(t *testing.T) {
	s, err := New(Config{
		Transformer: transformer.Tiny(321),
		Ranks:       2,
		Policy:      PrefillFirst,
		Variant:     perf.PassKV,
		TokenBudget: 4, // force chunked prefill under load
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	const clients = 6
	const maxTokens = 12
	prompts := make([][]int, clients)
	for i := range prompts {
		p := make([]int, 9)
		for j := range p {
			p[j] = (i*17 + j*5 + 3) % 64
		}
		prompts[i] = p
	}
	// Single-session references: one fresh cluster per session, serial path.
	w, err := transformer.NewWeights(transformer.Tiny(321))
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int, clients)
	for i := range prompts {
		c, err := transformer.NewCluster(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = c.Generate(i, prompts[i], maxTokens, perf.PassKV)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	got := make([][]int, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var out generateResponse
			resp := post(t, ts.URL+"/v1/generate",
				generateRequest{Session: id, Prompt: prompts[id], MaxTokens: maxTokens}, &out)
			if resp.StatusCode != http.StatusOK {
				errs[id] = fmt.Errorf("session %d: status %d", id, resp.StatusCode)
				return
			}
			got[id] = out.Tokens
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("session %d: served %v != single-session reference %v", i, got[i], want[i])
			}
		}
	}
	b := s.sched.BatchStats()
	if b.MaxDecodeBatch < 2 {
		t.Fatalf("no cross-session batching observed: %+v", b)
	}
	if b.MaxOccupancy < 2 {
		t.Fatalf("occupancy never exceeded 1: %+v", b)
	}
}

// newManualScheduler builds a cluster plus a step-driven scheduler so tests
// control exactly what each iteration batches.
func newManualScheduler(t *testing.T, cfg SchedulerConfig) (*Scheduler, *transformer.Weights) {
	t.Helper()
	w, err := transformer.NewWeights(transformer.Tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Manual = true
	s := NewScheduler(cluster, cfg)
	t.Cleanup(s.Close)
	return s, w
}

// drain steps the manual scheduler until it reports no runnable work.
func drain(s *Scheduler) []IterReport {
	var out []IterReport
	for {
		rep, ok := s.Step()
		if !ok {
			return out
		}
		out = append(out, rep)
	}
}

// waitDepths polls until the scheduler's queues reach the wanted shape.
func waitDepths(t *testing.T, s *Scheduler, admit, prefill, decode int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a, p, d := s.QueueDepths()
		if a == admit && p == prefill && d == decode {
			return
		}
		time.Sleep(time.Millisecond)
	}
	a, p, d := s.QueueDepths()
	t.Fatalf("queues stuck at admit=%d prefill=%d decode=%d, want %d/%d/%d", a, p, d, admit, prefill, decode)
}

// TestSchedulerMixedIterationBitIdentical is the acceptance check for the
// continuous-batching engine: ONE scheduler iteration executes a prefill
// chunk AND two concurrent sessions' decode steps fused into a single
// DecodeBatch ring pass, and every emitted token matches the serial
// single-session reference path exactly.
func TestSchedulerMixedIterationBitIdentical(t *testing.T) {
	const budget = 4
	s, w := newManualScheduler(t, SchedulerConfig{Policy: PrefillFirst, TokenBudget: budget})

	promptA := []int{11, 4, 27, 9, 33}
	promptB := []int{2, 58, 17}
	promptC := []int{7, 7, 40, 12, 21, 5, 30, 8} // 8 tokens = 2 chunks of 4

	// Phase 1: prefill sessions A and B through the scheduler.
	var nextA, nextB int
	var wg sync.WaitGroup
	wg.Add(2)
	var errA, errB error
	go func() { defer wg.Done(); nextA, errA = s.Prefill(context.Background(), 1, promptA) }()
	go func() { defer wg.Done(); nextB, errB = s.Prefill(context.Background(), 2, promptB) }()
	waitDepths(t, s, 0, 2, 0)
	drain(s)
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}

	// Phase 2: queue two decodes plus a fresh prefill, then run ONE step.
	var decA, decB, preC int
	var eA, eB, eC error
	wg.Add(3)
	go func() { defer wg.Done(); decA, eA = s.Decode(context.Background(), 1, nextA) }()
	go func() { defer wg.Done(); decB, eB = s.Decode(context.Background(), 2, nextB) }()
	go func() { defer wg.Done(); preC, eC = s.Prefill(context.Background(), 3, promptC) }()
	waitDepths(t, s, 0, 1, 2)

	rep, ok := s.Step()
	if !ok {
		t.Fatal("no work ran")
	}
	if rep.PrefillSession != 3 || rep.PrefillTokens != budget {
		t.Fatalf("iteration did not chunk session 3's prefill: %+v", rep)
	}
	if len(rep.DecodeSessions) != 2 {
		t.Fatalf("iteration fused %d decode sessions, want 2: %+v", len(rep.DecodeSessions), rep)
	}
	if rep.PrefillDone {
		t.Fatalf("8-token prompt finished in one %d-token chunk: %+v", budget, rep)
	}
	if rep.Occupancy() != 3 {
		t.Fatalf("occupancy = %d, want 3", rep.Occupancy())
	}
	drain(s)
	wg.Wait()
	if eA != nil || eB != nil || eC != nil {
		t.Fatal(eA, eB, eC)
	}

	// Serial single-session references: fresh cluster per session, same
	// chunk schedule, batch-of-one decode. Results must match exactly —
	// per-sequence owner rotation keeps KV placement, and therefore
	// floating-point merge order, independent of batch composition.
	ref := func(session int, prompt []int) (int, func(tok int) int) {
		c, err := transformer.NewCluster(w, 2)
		if err != nil {
			t.Fatal(err)
		}
		var last [][]float32
		for at := 0; at < len(prompt); at += budget {
			end := at + budget
			if end > len(prompt) {
				end = len(prompt)
			}
			last, err = c.Prefill(session, prompt[at:end], perf.PassKV)
			if err != nil {
				t.Fatal(err)
			}
		}
		next := transformer.Argmax(last[len(last)-1])
		return next, func(tok int) int {
			l, err := c.Decode(session, tok)
			if err != nil {
				t.Fatal(err)
			}
			return transformer.Argmax(l)
		}
	}
	refA, stepA := ref(1, promptA)
	refB, stepB := ref(2, promptB)
	refC, _ := ref(3, promptC)
	if nextA != refA || nextB != refB || preC != refC {
		t.Fatalf("prefill next tokens (%d,%d,%d) != references (%d,%d,%d)",
			nextA, nextB, preC, refA, refB, refC)
	}
	if wantA := stepA(nextA); decA != wantA {
		t.Fatalf("session 1 batched decode %d != serial %d", decA, wantA)
	}
	if wantB := stepB(nextB); decB != wantB {
		t.Fatalf("session 2 batched decode %d != serial %d", decB, wantB)
	}
}

func TestSchedulerChunkedPrefill(t *testing.T) {
	s, w := newManualScheduler(t, SchedulerConfig{Policy: FIFO, TokenBudget: 2})
	prompt := []int{3, 14, 15, 9, 26}
	var next int
	var err error
	done := make(chan struct{})
	go func() { defer close(done); next, err = s.Prefill(context.Background(), 1, prompt) }()
	waitDepths(t, s, 0, 1, 0)
	reps := drain(s)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 { // ceil(5/2)
		t.Fatalf("5 tokens at budget 2 took %d iterations, want 3", len(reps))
	}
	ref, err := w.Forward(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if want := transformer.Argmax(ref[len(prompt)-1]); next != want {
		t.Fatalf("chunked prefill next token %d != reference %d", next, want)
	}
	b := s.BatchStats()
	if b.PrefillChunks != 3 || b.PrefillTokens != 5 {
		t.Fatalf("batch stats = %+v", b)
	}
}

func TestSchedulerAdmissionBackpressure(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1})
	// Session 1 occupies the only slot.
	done1 := make(chan struct{})
	go func() { defer close(done1); _, _ = s.Prefill(context.Background(), 1, []int{1, 2}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done1
	// Session 2 must wait for admission.
	var next2 int
	var err2 error
	done2 := make(chan struct{})
	go func() { defer close(done2); next2, err2 = s.Prefill(context.Background(), 2, []int{3, 4}) }()
	waitDepths(t, s, 1, 0, 0)
	if _, ok := s.Step(); ok {
		t.Fatal("admission-blocked work executed")
	}
	// Releasing session 1 admits session 2.
	s.Release(1)
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done2
	if err2 != nil {
		t.Fatal(err2)
	}
	if next2 < 0 {
		t.Fatalf("next2 = %d", next2)
	}
	if s.Sessions() != 1 {
		t.Fatalf("resident sessions = %d, want 1", s.Sessions())
	}
}

func TestSchedulerDecodeUnknownSession(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{})
	if _, err := s.Decode(context.Background(), 42, 1); err == nil {
		t.Fatal("decode for unknown session accepted")
	}
}

func TestSchedulerClosedRejects(t *testing.T) {
	w, err := transformer.NewWeights(transformer.Tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(cluster, SchedulerConfig{})
	s.Close()
	if _, err := s.Prefill(context.Background(), 1, []int{1}); err == nil {
		t.Fatal("closed scheduler accepted work")
	}
	if _, err := s.Generate(context.Background(), 1, []int{1}, 2); err == nil {
		t.Fatal("closed scheduler accepted generate")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := New(Config{Transformer: transformer.Tiny(1), Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	bad := transformer.Tiny(1)
	bad.Model.VocabSize = 0
	if _, err := New(Config{Transformer: bad, Ranks: 1}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

// TestSchedulerReleaseIsolation: releasing a session fails ITS queued work
// immediately and leaves other sessions' requests unharmed — a fused batch
// never sees the dead sequence.
func TestSchedulerReleaseIsolation(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{})
	var wg sync.WaitGroup
	wg.Add(2)
	var n1, n2 int
	go func() { defer wg.Done(); n1, _ = s.Prefill(context.Background(), 1, []int{1, 2, 3}) }()
	go func() { defer wg.Done(); n2, _ = s.Prefill(context.Background(), 2, []int{4, 5, 6}) }()
	waitDepths(t, s, 0, 2, 0)
	drain(s)
	wg.Wait()

	var e1, e2 error
	var d2 int
	wg.Add(2)
	go func() { defer wg.Done(); _, e1 = s.Decode(context.Background(), 1, n1) }()
	go func() { defer wg.Done(); d2, e2 = s.Decode(context.Background(), 2, n2) }()
	waitDepths(t, s, 0, 0, 2)
	s.Release(1)
	a, p, d := s.QueueDepths()
	if a != 0 || p != 0 || d != 1 {
		t.Fatalf("queues after release = %d/%d/%d, want 0/0/1", a, p, d)
	}
	drain(s)
	wg.Wait()
	if e1 == nil {
		t.Fatal("released session's queued decode did not fail")
	}
	if e2 != nil {
		t.Fatalf("unrelated session's decode poisoned: %v", e2)
	}
	if d2 < 0 {
		t.Fatalf("d2 = %d", d2)
	}
	if s.Known(1) || !s.Known(2) {
		t.Fatal("admission slots wrong after release")
	}
}

// TestSchedulerCancelWhileQueued: a client that disconnects while its
// request waits (e.g. parked in admission under backpressure) gets its
// goroutine back and leaves the queues clean.
func TestSchedulerCancelWhileQueued(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1})
	done1 := make(chan struct{})
	go func() { defer close(done1); _, _ = s.Prefill(context.Background(), 1, []int{1, 2}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done1

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Generate(ctx, 2, []int{3, 4}, 3)
		errCh <- err
	}()
	waitDepths(t, s, 1, 0, 0) // parked in admission behind session 1
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("canceled request returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request still blocked")
	}
	if a, p, d := s.QueueDepths(); a != 0 || p != 0 || d != 0 {
		t.Fatalf("queues not clean after cancel: %d/%d/%d", a, p, d)
	}
	// The slot holder is unaffected.
	if !s.Known(1) {
		t.Fatal("resident session lost")
	}
}

// TestSchedulerCancelBeforeFirstChunkFreesSlot: an admitted session whose
// client disconnects before any chunk runs must not leak its admission slot.
func TestSchedulerCancelBeforeFirstChunkFreesSlot(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1})
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Prefill(ctx, 7, []int{1, 2, 3})
		errCh <- err
	}()
	waitDepths(t, s, 0, 1, 0) // admitted, first chunk not yet run
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("canceled request returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request still blocked")
	}
	if s.Sessions() != 0 || s.Known(7) {
		t.Fatalf("admission slot leaked: sessions=%d known=%v", s.Sessions(), s.Known(7))
	}
	// The freed slot admits the next session.
	done := make(chan struct{})
	go func() { defer close(done); _, _ = s.Prefill(context.Background(), 8, []int{4, 5}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done
	if !s.Active(8) {
		t.Fatal("next session not admitted after freed slot")
	}
}

// TestCloseDrainsInFlightStreams: Close must be bounded by one iteration,
// not by a long client stream — the in-flight generate drains at its next
// step boundary as a successful truncated response (the tokens produced so
// far), never as a lost stream.
func TestCloseDrainsInFlightStreams(t *testing.T) {
	w, err := transformer.NewWeights(transformer.Tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(cluster, SchedulerConfig{TokenBudget: 4, MaxTokens: 1 << 20})
	type result struct {
		res *GenerateResult
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		res, err := s.Generate(context.Background(), 1, []int{1, 2, 3}, 1<<20)
		resCh <- result{res, err}
	}()
	// Let the stream get going, then close.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	s.Close()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("Close took %v with an in-flight stream", waited)
	}
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("in-flight generate faulted at Close instead of draining: %v", r.err)
		}
		if len(r.res.Tokens) == 0 || len(r.res.Tokens) >= 1<<20 {
			t.Fatalf("drained stream returned %d tokens, want a truncated non-empty prefix", len(r.res.Tokens))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight generate still blocked after Close")
	}
}
