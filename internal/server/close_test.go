package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/perf"
	"repro/internal/transformer"
)

// TestValidateRankAddrs pins the fail-fast contract of distributed address
// lists: malformed entries and duplicates are rejected with one named error
// before any rendezvous could hang on them.
func TestValidateRankAddrs(t *testing.T) {
	if err := ValidateRankAddrs([]string{"127.0.0.1:9000", "127.0.0.1:9001"}); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	for _, bad := range [][]string{
		{"127.0.0.1:9000", "127.0.0.1"},             // no port
		{"localhost"},                               // no port at all
		{"127.0.0.1:"},                              // empty port
		{"127.0.0.1:0x50"},                          // non-numeric port
		{"127.0.0.1:70000"},                         // port out of range
		{"127.0.0.1:9000", "127.0.0.1:9000"},        // duplicate
		{":9000"},                                   // empty host
		{"127.0.0.1:9000", "127.0.0.1:9001", "bad"}, // trailing junk
	} {
		if err := ValidateRankAddrs(bad); err == nil {
			t.Errorf("list %v accepted, want error", bad)
		}
	}
	// New (and therefore cpserve -distributed) rejects a bad list before
	// dialing rather than hanging in rendezvous.
	_, err := New(Config{
		Transformer: transformer.Tiny(1),
		RankAddrs:   []string{"127.0.0.1:9000", "nonsense"},
	})
	if err == nil || !strings.Contains(err.Error(), "not host:port") {
		t.Fatalf("New with bad rank addrs = %v, want named validation error", err)
	}
}

// TestServerCloseIdempotentAndOrdered is the ISSUE's shutdown regression:
// Close must be safe to call repeatedly and concurrently (including while
// requests are in flight), and every post-close request — generate,
// prefill, decode, stats, delete — must map to 503/ErrClosed uniformly
// rather than panicking or surfacing internal teardown errors.
func TestServerCloseIdempotentAndOrdered(t *testing.T) {
	srv, err := New(Config{
		Transformer: transformer.Tiny(3),
		Ranks:       2,
		Variant:     perf.PassKV,
		TokenBudget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) (int, string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 512)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	// Healthy request first, so sessions exist at close time.
	if code, body := post("/v1/generate", `{"session":1,"prompt":[4,19,22,7],"max_tokens":4}`); code != http.StatusOK {
		t.Fatalf("pre-close generate: %d %s", code, body)
	}

	// Hammer Close concurrently with itself and with in-flight requests;
	// none of this may panic or deadlock.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post("/v1/generate", `{"session":9,"prompt":[1,2,3],"max_tokens":2}`)
			http.Get(ts.URL + "/v1/stats")
		}(i)
	}
	wg.Wait()
	srv.Close() // and once more after everything settled

	// Post-close: uniform 503s.
	for _, c := range []struct{ path, body string }{
		{"/v1/generate", `{"session":2,"prompt":[1,2,3],"max_tokens":2}`},
		{"/v1/prefill", `{"session":3,"tokens":[1,2,3]}`},
		{"/v1/decode", `{"session":1,"token":5}`},
	} {
		if code, body := post(c.path, c.body); code != http.StatusServiceUnavailable {
			t.Errorf("post-close POST %s = %d %s, want 503", c.path, code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close stats = %d, want 503", resp.StatusCode)
	}
}
