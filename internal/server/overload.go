package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/trace"
)

// This file is the deadline-aware overload-control half of the serving
// edge: per-request deadlines surface as 504s and count as overload, and a
// brownout mode sheds the lowest-priority queued work — new-session
// admissions — with 429 + Retry-After while the recent queue-wait quantile
// sits above a configurable SLO. Brownout protects the sessions already
// resident (their decode lanes and follow-up turns keep running); only
// fresh admissions, which would deepen the backlog, are turned away.

// OverloadError reports deliberate load shedding: the scheduler is in
// brownout and the request was rejected rather than queued. The HTTP layer
// maps it to 429 Too Many Requests with a Retry-After header.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: overloaded, retry after %s", e.RetryAfter)
}

// OverloadStats is the /v1/stats "overload" block.
type OverloadStats struct {
	// BrownoutSLOSec mirrors the configured queue-wait SLO (0 = brownout
	// disabled).
	BrownoutSLOSec float64 `json:"brownout_slo_sec"`
	// BrownoutActive is true while admissions are being shed.
	BrownoutActive bool `json:"brownout_active"`
	// DeadlineExpired counts requests aborted because their timeout_ms
	// deadline fired.
	DeadlineExpired int64 `json:"deadline_expired"`
	// BrownoutShed counts requests rejected or shed by brownout.
	BrownoutShed int64 `json:"brownout_shed"`
	// RetryAfterIssued counts 429 responses that carried a Retry-After
	// header.
	RetryAfterIssued int64 `json:"retry_after_issued"`
}

// brownoutRefresh bounds how often the windowed queue-wait quantile is
// recomputed; between refreshes the cached verdict holds. It is also the
// minimum window over which the quantile is measured, so one slow iteration
// cannot flap the brownout state.
const brownoutRefresh = 250 * time.Millisecond

// retryAfterLocked is the backoff hint attached to shed work: the SLO
// itself, floored at one second (the header's resolution).
func (s *Scheduler) retryAfterLocked() time.Duration {
	ra := s.cfg.BrownoutSLO
	if ra < time.Second {
		ra = time.Second
	}
	return ra
}

// brownoutLocked evaluates (with caching) whether the scheduler is browned
// out: the p90 queue wait of the observations recorded since the previous
// refresh exceeds the SLO. With tracing disabled — or a window holding no
// executions at all, the signature of a wedged or saturated step loop — it
// falls back to the age of the oldest request still waiting for admission.
// Caller holds s.mu.
func (s *Scheduler) brownoutLocked(now time.Time) bool {
	if s.cfg.BrownoutSLO <= 0 {
		return false
	}
	if now.Sub(s.brownoutAt) < brownoutRefresh {
		return s.brownoutOn
	}
	s.brownoutAt = now
	cur := s.queueWaitSnapLocked()
	p90, ok := trace.DeltaQuantile(cur, s.brownoutPrev, 0.90)
	s.brownoutPrev = cur
	if !ok && len(s.admit) > 0 {
		p90 = now.Sub(s.admit[0].queuedAt).Seconds()
		ok = true
	}
	s.brownoutOn = ok && p90 > s.cfg.BrownoutSLO.Seconds()
	return s.brownoutOn
}

// queueWaitSnapLocked folds both queue-wait histograms (prefill + decode
// classes) into one combined snapshot for the windowed quantile.
func (s *Scheduler) queueWaitSnapLocked() trace.SeriesSnap {
	cur := trace.SeriesSnap{Kind: trace.KindHistogram, Counts: make([]uint64, len(trace.BucketBounds)+1)}
	for _, cls := range []Class{ClassPrefill, ClassDecode} {
		h, ok := s.hWait[cls]
		if !ok {
			continue
		}
		sn := h.Snap()
		cur.Count += sn.Count
		cur.Sum += sn.Sum
		for i := 0; i < len(sn.Counts) && i < len(cur.Counts); i++ {
			cur.Counts[i] += sn.Counts[i]
		}
	}
	return cur
}

// shedAdmitQueueLocked fails every admission-queue request that has already
// waited past the SLO — the brownout's backlog trim. Requests in the
// admission queue hold no session slot and no KV, so shedding them frees
// nothing and races nothing; their submit goroutines wake with the
// OverloadError. Caller holds s.mu.
func (s *Scheduler) shedAdmitQueueLocked(now time.Time) {
	kept := s.admit[:0]
	for _, r := range s.admit {
		if now.Sub(r.queuedAt) > s.cfg.BrownoutSLO {
			r.err = &OverloadError{RetryAfter: s.retryAfterLocked()}
			close(r.done)
			s.overload.BrownoutShed++
			s.cShed.Inc(1)
			continue
		}
		kept = append(kept, r)
	}
	s.admit = kept
}

// noteDeadlineLocked counts a request aborted by its own deadline; caller
// holds s.mu.
func (s *Scheduler) noteDeadlineLocked(cause error) {
	if errors.Is(cause, context.DeadlineExceeded) {
		s.overload.DeadlineExpired++
		s.cDeadline.Inc(1)
	}
}

// noteRetryAfter counts a Retry-After header going out (the HTTP layer
// calls it when it maps an OverloadError).
func (s *Scheduler) noteRetryAfter() {
	s.mu.Lock()
	s.overload.RetryAfterIssued++
	s.mu.Unlock()
	s.cRetryAfter.Inc(1)
}

// OverloadStats snapshots the deadline/brownout telemetry.
func (s *Scheduler) OverloadStats() OverloadStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.overload
	out.BrownoutSLOSec = s.cfg.BrownoutSLO.Seconds()
	out.BrownoutActive = s.brownoutOn
	return out
}
