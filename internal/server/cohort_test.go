package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// TestCohortMetricsEndToEnd drives cohort-tagged requests through the HTTP
// API and checks the full attribution path: pre-registered series appear at
// zero before any traffic, tagged requests land in their cohort's
// cp_cohort_* families on /metrics, the /v1/stats latency block grows a
// by_cohort breakdown, and untagged requests touch none of it.
func TestCohortMetricsEndToEnd(t *testing.T) {
	srv, err := New(Config{
		Transformer: transformer.Tiny(7),
		Ranks:       2,
		Variant:     perf.PassKV,
		TokenBudget: 8,
		Cohorts:     []string{"chat", "rag"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
		}
		samples, err := trace.ParseProm(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("/metrics did not parse: %v", err)
		}
		out := map[string]float64{}
		for _, s := range samples {
			if strings.HasPrefix(s.Name, "cp_cohort_") {
				out[s.Name+"/"+s.Labels["cohort"]] = s.Value
			}
		}
		return out
	}

	// Pre-registration: configured cohorts (and the overflow label) exist at
	// zero before a single request, so dashboards can tell "no traffic yet"
	// from "series missing".
	before := scrape()
	for _, c := range []string{"chat", "rag", trace.OverflowLabel} {
		for _, fam := range []string{"cp_cohort_ttft_seconds_count", "cp_cohort_itl_seconds_count",
			"cp_cohort_e2e_seconds_count", "cp_cohort_requests_total"} {
			v, ok := before[fam+"/"+c]
			if !ok {
				t.Fatalf("pre-registered series %s{cohort=%q} missing from /metrics", fam, c)
			}
			if v != 0 {
				t.Fatalf("pre-registered %s{cohort=%q} = %v before any traffic", fam, c, v)
			}
		}
	}

	gen := func(session int, cohort string) {
		t.Helper()
		body := fmt.Sprintf(`{"session":%d,"prompt":[4,19,22,7],"max_tokens":4`, session)
		if cohort != "" {
			body += fmt.Sprintf(`,"cohort":%q`, cohort)
		}
		body += "}"
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate session %d: status %d: %s", session, resp.StatusCode, b)
		}
	}
	gen(1, "chat")
	gen(2, "chat")
	gen(3, "rag")
	gen(4, "") // untagged: must not move any cohort series

	after := scrape()
	wantReq := map[string]float64{"chat": 2, "rag": 1, trace.OverflowLabel: 0}
	for c, want := range wantReq {
		if got := after["cp_cohort_requests_total/"+c]; got != want {
			t.Errorf("cp_cohort_requests_total{cohort=%q} = %v, want %v", c, got, want)
		}
		if got := after["cp_cohort_ttft_seconds_count/"+c]; got != want {
			t.Errorf("cp_cohort_ttft_seconds_count{cohort=%q} = %v, want %v", c, got, want)
		}
		if got := after["cp_cohort_e2e_seconds_count/"+c]; got != want {
			t.Errorf("cp_cohort_e2e_seconds_count{cohort=%q} = %v, want %v", c, got, want)
		}
	}
	// max_tokens 4 -> 3 decode steps per request, each observing one ITL.
	if got := after["cp_cohort_itl_seconds_count/chat"]; got != 6 {
		t.Errorf("cp_cohort_itl_seconds_count{cohort=\"chat\"} = %v, want 6", got)
	}

	// The same breakdown surfaces in /v1/stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Latency *struct {
			ByCohort map[string]struct {
				TTFT struct {
					Count uint64 `json:"count"`
				} `json:"ttft_seconds"`
				ITL struct {
					Count uint64 `json:"count"`
				} `json:"itl_seconds"`
				E2E struct {
					Count uint64 `json:"count"`
				} `json:"e2e_seconds"`
			} `json:"by_cohort"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Latency == nil || stats.Latency.ByCohort == nil {
		t.Fatal("/v1/stats latency.by_cohort missing")
	}
	chat, ok := stats.Latency.ByCohort["chat"]
	if !ok {
		t.Fatalf("/v1/stats by_cohort missing chat: %v", stats.Latency.ByCohort)
	}
	if chat.TTFT.Count != 2 || chat.E2E.Count != 2 || chat.ITL.Count != 6 {
		t.Errorf("by_cohort chat counts ttft=%d itl=%d e2e=%d, want 2/6/2",
			chat.TTFT.Count, chat.ITL.Count, chat.E2E.Count)
	}
	if rag, ok := stats.Latency.ByCohort["rag"]; !ok || rag.TTFT.Count != 1 {
		t.Errorf("by_cohort rag = %+v, ok=%v, want ttft count 1", rag, ok)
	}
}

// TestCohortUnknownLabelsBounded floods the scheduler with fresh cohort
// names: the label pool mints at most DefaultLabelCap series and folds the
// rest into "other", so a misbehaving client cannot blow up /metrics
// cardinality — and no observation is lost in the folding.
func TestCohortUnknownLabelsBounded(t *testing.T) {
	srv, err := New(Config{
		Transformer: transformer.Tiny(7),
		Ranks:       2,
		Variant:     perf.PassKV,
		TokenBudget: 8,
		Cohorts:     []string{"chat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const flood = trace.DefaultLabelCap + 8
	for i := 0; i < flood; i++ {
		_, err := srv.Scheduler().GenerateWith(context.Background(), i+1, []int{4, 19, 22, 7}, 2,
			RequestOptions{Cohort: fmt.Sprintf("spray-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
	}

	names := srv.Scheduler().Cohorts()
	if len(names) > trace.DefaultLabelCap+1 { // +1: the overflow label itself
		t.Fatalf("%d cohort series registered, cap is %d", len(names), trace.DefaultLabelCap+1)
	}
	rec := srv.Recorder()
	total := uint64(0)
	for _, c := range names {
		total += uint64(rec.CounterSeries("cp_cohort_requests_total", trace.L("cohort", c)).Value())
	}
	if total != flood {
		t.Fatalf("requests_total across cohorts = %d, want %d (folding lost traffic)", total, flood)
	}
	if rec.CounterSeries("cp_cohort_requests_total", trace.L("cohort", trace.OverflowLabel)).Value() == 0 {
		t.Fatal("overflow cohort absorbed no traffic despite flood past the cap")
	}
}

// TestCohortBitIdentity extends the tracing acceptance bar to cohort
// labeling: tagging requests with cohorts (with tracing on or off) must not
// change a single served token relative to untagged runs — the label path
// only touches metric handles, never the model.
func TestCohortBitIdentity(t *testing.T) {
	prompt := []int{4, 19, 22, 7, 3, 11, 2, 9, 14, 5}
	cohorts := []string{"chat", "rag", "agentic"}
	run := func(tag bool, noTrace bool) [][]int {
		srv, err := New(Config{
			Transformer: transformer.Tiny(13),
			Ranks:       2,
			Variant:     perf.Auto,
			TokenBudget: 4,
			NoTrace:     noTrace,
			Cohorts:     cohorts,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		var out [][]int
		for sess := 1; sess <= 3; sess++ {
			opts := RequestOptions{}
			if tag {
				opts.Cohort = cohorts[sess-1]
			}
			res, err := srv.Scheduler().GenerateWith(context.Background(), sess, prompt, 6, opts)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res.Tokens)
		}
		return out
	}
	base := run(false, false)
	for _, v := range []struct {
		name string
		tag  bool
		off  bool
	}{{"tagged-traced", true, false}, {"tagged-untraced", true, true}, {"untagged-untraced", false, true}} {
		got := run(v.tag, v.off)
		for i := range base {
			if fmt.Sprint(base[i]) != fmt.Sprint(got[i]) {
				t.Fatalf("%s session %d: tokens %v != baseline %v", v.name, i+1, got[i], base[i])
			}
		}
	}
}

// TestCohortSpanTagging checks the span-level attribution: queue.wait and
// prefill.chunk spans carry the cohort's pool id, and decode.batch spans
// count their members per cohort — all as int64 args, so the wire codec is
// untouched.
func TestCohortSpanTagging(t *testing.T) {
	srv, err := New(Config{
		Transformer: transformer.Tiny(7),
		Ranks:       2,
		Variant:     perf.PassKV,
		TokenBudget: 8,
		Cohorts:     []string{"chat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Scheduler().GenerateWith(context.Background(), 1, []int{4, 19, 22, 7}, 4,
		RequestOptions{Cohort: "chat"}); err != nil {
		t.Fatal(err)
	}
	spans := srv.Recorder().Spans()
	var sawWait, sawChunk, sawBatch bool
	for _, sp := range spans {
		switch sp.Name {
		case "queue.wait":
			if id, ok := sp.Args["cohort"]; ok && id > 0 {
				sawWait = true
			}
		case "prefill.chunk":
			if id, ok := sp.Args["cohort"]; ok && id > 0 {
				sawChunk = true
			}
		case "decode.batch":
			if n := sp.Args["cohort.chat"]; n > 0 {
				sawBatch = true
			}
		}
	}
	if !sawWait || !sawChunk || !sawBatch {
		t.Fatalf("cohort span tags missing: queue.wait=%v prefill.chunk=%v decode.batch=%v",
			sawWait, sawChunk, sawBatch)
	}
}
