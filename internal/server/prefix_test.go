package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/perf"
	"repro/internal/transformer"
)

// newManualPrefixScheduler builds a step-driven scheduler with prefix reuse
// sized for tests, optionally over a capacity-capped cluster.
func newManualPrefixScheduler(t *testing.T, cfg SchedulerConfig, copts ...transformer.ClusterOption) *Scheduler {
	t.Helper()
	w, err := transformer.NewWeights(transformer.Tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.NewCluster(w, 2, copts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Manual = true
	s := NewScheduler(cluster, cfg)
	t.Cleanup(s.Close)
	return s
}

func prefillSync(t *testing.T, s *Scheduler, session int, prompt []int, opts RequestOptions) int {
	t.Helper()
	var next int
	var err error
	done := make(chan struct{})
	go func() { defer close(done); next, err = s.PrefillWith(context.Background(), session, prompt, opts) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestPrefixReuseWarmReconnect: a released session's canonical prefix lands
// in the tree; the same session reconnecting — and a sibling sharing the
// prompt — adopt it and produce the same next token, with hit telemetry to
// prove the KV was reused rather than recomputed.
func TestPrefixReuseWarmReconnect(t *testing.T) {
	s := newManualPrefixScheduler(t, SchedulerConfig{TokenBudget: 4, PrefixCacheTokens: 4096})
	prompt := []int{7, 3, 60, 12, 9, 33, 2, 41, 18, 5} // 10 tokens → canonical 8
	next1 := prefillSync(t, s, 5, prompt, RequestOptions{})
	if r := s.Reuse(); r.Lookups != 1 || r.Hits != 0 || r.ComputedTokens != 10 {
		t.Fatalf("cold reuse stats = %+v", r)
	}
	s.Release(5)
	if st, ok := s.PrefixStats(); !ok || st.Tokens != 8 || st.Nodes != 2 {
		t.Fatalf("tree after detach = %+v ok=%v, want 8 tokens / 2 nodes", st, ok)
	}
	if r := s.Reuse(); r.Detached != 1 || r.DetachedTokens != 8 {
		t.Fatalf("detach stats = %+v", r)
	}

	// Reconnect: the longest block-aligned prefix (8 of 10) is adopted.
	next2 := prefillSync(t, s, 5, prompt, RequestOptions{})
	if next2 != next1 {
		t.Fatalf("warm reconnect next token %d != cold %d", next2, next1)
	}
	r := s.Reuse()
	if r.Hits != 1 || r.CachedTokens != 8 {
		t.Fatalf("warm reuse stats = %+v", r)
	}
	if r.ComputedTokens != 12 { // 10 cold + 2 miss-suffix
		t.Fatalf("computed tokens = %d, want 12", r.ComputedTokens)
	}

	// Sibling session sharing the prompt hits the same prefix.
	next3 := prefillSync(t, s, 6, prompt, RequestOptions{})
	if next3 != next1 {
		t.Fatalf("sibling next token %d != cold %d", next3, next1)
	}
	if r := s.Reuse(); r.Hits != 2 || r.CachedTokens != 16 {
		t.Fatalf("sibling reuse stats = %+v", r)
	}
}

// TestPrefixReuseGenerateBitIdentical: the full generate stream (prefill +
// decode) of a warm reconnect matches the cold stream token for token — the
// scheduler-level form of the exact-equality guarantee.
func TestPrefixReuseGenerateBitIdentical(t *testing.T) {
	w, err := transformer.NewWeights(transformer.Tiny(321))
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(cluster, SchedulerConfig{TokenBudget: 4, PrefixCacheTokens: 4096})
	defer s.Close()
	prompt := []int{11, 4, 27, 9, 33, 2, 58, 17, 40, 12, 21, 5} // 12 tokens, canonical 12
	cold, err := s.Generate(context.Background(), 3, prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(3)
	warm, err := s.Generate(context.Background(), 3, prompt, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Tokens) != len(cold.Tokens) {
		t.Fatalf("stream lengths differ: %v vs %v", warm.Tokens, cold.Tokens)
	}
	for i := range cold.Tokens {
		if warm.Tokens[i] != cold.Tokens[i] {
			t.Fatalf("warm stream %v != cold stream %v", warm.Tokens, cold.Tokens)
		}
	}
	if r := s.Reuse(); r.Hits != 1 || r.CachedTokens != 8 {
		t.Fatalf("reuse stats = %+v, want one 8-token hit", r)
	}
}

// TestPrefixOptOut: no_cache requests neither read the tree nor donate to it.
func TestPrefixOptOut(t *testing.T) {
	s := newManualPrefixScheduler(t, SchedulerConfig{TokenBudget: 4, PrefixCacheTokens: 4096})
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8}
	prefillSync(t, s, 1, prompt, RequestOptions{})
	s.Release(1)
	st, _ := s.PrefixStats()
	if st.Tokens != 8 {
		t.Fatalf("tree tokens = %d, want 8", st.Tokens)
	}
	// Opted-out request: no lookup, full recompute.
	prefillSync(t, s, 2, prompt, RequestOptions{NoPrefixCache: true})
	if r := s.Reuse(); r.Hits != 0 || r.CachedTokens != 0 || r.Lookups != 1 {
		t.Fatalf("opt-out reuse stats = %+v", r)
	}
	// Opted-out sessions never donate on release.
	s.Release(2)
	if st, _ := s.PrefixStats(); st.Tokens != 8 {
		t.Fatalf("opted-out session donated: tree tokens = %d", st.Tokens)
	}
	// A normal request still hits the original donor's prefix.
	prefillSync(t, s, 3, append(append([]int{}, prompt...), 9, 10), RequestOptions{})
	if r := s.Reuse(); r.Hits != 1 || r.CachedTokens != 8 {
		t.Fatalf("post-opt-out reuse stats = %+v", r)
	}
}

// TestAutoVariantPerChunk: under perf.Auto the scheduler picks pass-KV for
// the cold first chunk (miss rate 1) and pass-Q once cached context exists
// (Tiny's Eq. 1 threshold is 2·NKV/NH = 1).
func TestAutoVariantPerChunk(t *testing.T) {
	s := newManualPrefixScheduler(t, SchedulerConfig{TokenBudget: 4, Variant: perf.Auto, PrefixCacheTokens: 4096})
	prompt := []int{3, 14, 15, 9, 26, 5, 35, 8}
	next := prefillSync(t, s, 1, prompt, RequestOptions{})
	r := s.Reuse()
	if r.PassKVChunks != 1 || r.PassQChunks != 1 {
		t.Fatalf("variant chunks = %+v, want 1 pass-KV (cold) + 1 pass-Q (warm)", r)
	}
	// Warm reconnect: every chunk has cached context → pass-Q only.
	s.Release(1)
	next2 := prefillSync(t, s, 1, prompt, RequestOptions{})
	if next2 != next {
		t.Fatalf("auto warm next token %d != cold %d", next2, next)
	}
	r = s.Reuse()
	if r.PassKVChunks != 1 || r.PassQChunks != 2 {
		t.Fatalf("variant chunks after warm = %+v", r)
	}
}

// TestDecodeCapacityQuarantineOffenderOnly: an ErrCapacity surfacing for one
// session of a fused batch quarantines exactly that session; the rest of the
// batch decodes in the same iteration.
func TestDecodeCapacityQuarantineOffenderOnly(t *testing.T) {
	// Two ids whose step-0 decode tokens land on the same owner rank.
	a, b := -1, -1
search:
	for i := 0; i < 16; i++ {
		for j := i + 1; j < 16; j++ {
			if transformer.DecodeOwnerRank(i, 0, 2) == transformer.DecodeOwnerRank(j, 0, 2) {
				a, b = i, j
				break search
			}
		}
	}
	s := newManualPrefixScheduler(t, SchedulerConfig{PrefixCacheTokens: 4096},
		transformer.WithKVCapacity(5))
	prompt := []int{1, 2, 3, 4} // 2 rows per rank per layer
	na := prefillSync(t, s, a, prompt, RequestOptions{})
	nb := prefillSync(t, s, b, prompt, RequestOptions{})

	var wg sync.WaitGroup
	var errA, errB error
	var decA int
	wg.Add(1)
	go func() { defer wg.Done(); decA, errA = s.Decode(context.Background(), a, na) }()
	waitDepths(t, s, 0, 0, 1) // pin batch order: a first, b offends
	wg.Add(1)
	go func() { defer wg.Done(); _, errB = s.Decode(context.Background(), b, nb) }()
	waitDepths(t, s, 0, 0, 2)
	rep, ok := s.Step()
	if !ok {
		t.Fatal("no work ran")
	}
	drain(s)
	wg.Wait()
	// The owner rank had room for one append: the batch-order survivor
	// decodes, the offender fails with the capacity fault.
	if errA != nil {
		t.Fatalf("survivor's decode poisoned: %v", errA)
	}
	if decA < 0 {
		t.Fatalf("decA = %d", decA)
	}
	var execErr *ExecError
	if !errors.As(errB, &execErr) {
		t.Fatalf("offender error = %v, want ExecError", errB)
	}
	if len(rep.DecodeSessions) != 1 || rep.DecodeSessions[0] != a {
		t.Fatalf("iteration decoded %v, want [%d]", rep.DecodeSessions, a)
	}
	if !s.Active(a) || s.Active(b) {
		t.Fatalf("residency after capacity fault: a=%v b=%v", s.Active(a), s.Active(b))
	}
	if r := s.Reuse(); r.CapacityQuarantines != 1 {
		t.Fatalf("capacity quarantines = %d, want 1", r.CapacityQuarantines)
	}
}

// TestStatsPrefillSource: /v1/stats reports the cached-vs-computed prefill
// breakdown, reuse telemetry, and the prefix tree snapshot, and the HTTP
// no_cache flag opts a request out end to end.
func TestStatsPrefillSource(t *testing.T) {
	srv, err := New(Config{
		Transformer:       transformer.Tiny(321),
		Ranks:             2,
		Policy:            PrefillFirst,
		Variant:           perf.Auto,
		TokenBudget:       4,
		PrefixCacheTokens: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	prompt := []int{5, 6, 7, 8, 9, 10, 11, 12}
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 1, Tokens: prompt}, nil)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 2, Tokens: prompt}, nil)
	// Opted-out request recomputes everything.
	post(t, ts.URL+"/v1/prefill", prefillRequest{Session: 3, Tokens: prompt, NoCache: true}, nil)

	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Variant != "auto" {
		t.Fatalf("variant = %q", st.Variant)
	}
	if st.PrefillSource.CachedTokens != 4 || st.PrefillSource.ComputedTokens != 20 {
		t.Fatalf("prefill source = %+v, want 4 cached / 20 computed", st.PrefillSource)
	}
	if hr := st.PrefillSource.HitRate; hr <= 0.16 || hr >= 0.17 {
		t.Fatalf("hit rate = %v, want 4/24", hr)
	}
	if st.PrefixCache == nil || st.PrefixCache.Tokens != 8 || st.PrefixCache.BlockSize != 4 {
		t.Fatalf("prefix cache stats = %+v", st.PrefixCache)
	}
	if st.Reuse.Hits != 1 || st.Reuse.Detached != 1 {
		t.Fatalf("reuse stats = %+v", st.Reuse)
	}
}
