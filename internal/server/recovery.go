package server

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/perf"
	"repro/internal/prefixcache"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// This file is the serving half of the fault-tolerance subsystem. The
// cluster half (transformer.Rebuild) replaces a failed incarnation with a
// fresh one on the next epoch; this half decides when to do that and puts
// the sessions back.
//
// The contract is bit-identity, not best effort: the scheduler keeps a
// token log per live session (see logSeg), and recovery replays each log
// through the ordinary prefill/decode paths — the same canonical chunk
// alignment, the same decode owner rotation — so the rebuilt KV placement
// equals what an unfailed cluster holds, float for float. In-flight
// requests are never faulted while recovery is armed: a failed prefill
// chunk stays at the queue head, a failed decode batch is requeued in
// order, and both retry after the rebuild as if the failure never happened.
//
// The prefix tree makes replay cheap when sessions share prompts: the old
// incarnation's entries are purged (their KV died with it), but each
// replayed session donates its canonical prefix back, so every later
// session that shares it re-prefills only the miss suffix. That, plus the
// tree being repopulated for future traffic, is the PR-2 primitive doing
// recovery work.

// logSeg is one uninterrupted run of a session's resident tokens: prefill
// chunks (decode=false) or decode steps (decode=true). Replay preserves the
// segment kinds because the two paths place KV differently — prefill rows
// shard by the load-balance plan, decode rows land on the per-step owner
// rank — and bit-identity needs the original placement, not just the
// original tokens.
type logSeg struct {
	decode bool
	toks   []int
}

// RecoveryStats is the /v1/stats "recovery" block.
type RecoveryStats struct {
	// Enabled mirrors the -recover flag.
	Enabled bool `json:"enabled"`
	// Epoch is the cluster incarnation (1 = never rebuilt).
	Epoch uint64 `json:"epoch"`
	// Rebuilds counts completed epoch rebuilds; Attempts counts tries
	// (failed dials included). Attempts is bounded by MaxRecoveries for
	// the scheduler's lifetime.
	Rebuilds      int64 `json:"rebuilds"`
	Attempts      int64 `json:"attempts"`
	MaxRecoveries int   `json:"max_recoveries"`
	// RecoveredSessions/LostSessions count sessions replayed back to life
	// vs. faulted (replay failed, or the recovery budget ran out).
	RecoveredSessions int64 `json:"recovered_sessions"`
	LostSessions      int64 `json:"lost_sessions"`
	// ReplayedTokens counts tokens recomputed during replay (prefill chunks
	// and decode steps); ReplayCachedTokens counts replay tokens served
	// from the prefix tree instead of recomputed.
	ReplayedTokens     int64 `json:"replayed_tokens"`
	ReplayCachedTokens int64 `json:"replay_cached_tokens"`
	// InProgress is true while a rebuild+replay is executing.
	InProgress bool `json:"in_progress"`
	// LastError describes the most recent failure that triggered (or
	// aborted) a recovery.
	LastError string `json:"last_error,omitempty"`
}

// appendLogLocked records resident tokens in the session's replay log,
// merging into the tail segment when the kind matches; caller holds s.mu.
// No-op unless recovery is armed — the log is pure overhead otherwise.
func (s *Scheduler) appendLogLocked(session int, decode bool, toks []int) {
	if !s.cfg.Recover || len(toks) == 0 {
		return
	}
	segs := s.log[session]
	if n := len(segs); n > 0 && segs[n-1].decode == decode {
		segs[n-1].toks = append(segs[n-1].toks, toks...)
	} else {
		segs = append(segs, logSeg{decode: decode, toks: append([]int(nil), toks...)})
	}
	s.log[session] = segs
}

// recoveryArmedLocked reports whether an infrastructure failure should be
// absorbed by rebuild+replay rather than faulting sessions; caller holds
// s.mu.
func (s *Scheduler) recoveryArmedLocked() bool {
	return s.cfg.Recover && !s.closed &&
		s.recStats.Attempts < int64(s.cfg.MaxRecoveries)
}

// scheduleRecoveryLocked records the first unhandled failure cause and
// wakes the loop; caller holds s.mu.
func (s *Scheduler) scheduleRecoveryLocked(cause error) {
	if s.needRecovery == nil {
		s.needRecovery = cause
		s.recStats.LastError = cause.Error()
	}
	s.cond.Broadcast()
}

// watchFailures subscribes to the cluster's failure events so recovery
// starts while the cluster is idle — a dead rank is repaired before the
// next request trips over it, not because of it. Events carry the epoch of
// the incarnation that produced them: one from an incarnation recovery
// already retired (a peer's death throes consumed late) must not re-arm a
// rebuild of the healthy successor.
func (s *Scheduler) watchFailures() {
	ch := s.cluster.Failures()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			s.mu.Lock()
			if !s.closed && ev.Epoch >= s.recStats.Epoch {
				s.scheduleRecoveryLocked(fmt.Errorf("cluster failure: rank %d: %v", ev.Peer, ev.Cause))
			}
			s.mu.Unlock()
		case <-s.watchStop:
			return
		}
	}
}

// replaySnapshot is one session's replay input, captured under s.mu before
// the cluster work starts.
type replaySnapshot struct {
	id      int
	segs    []logSeg
	noCache bool
	canon   int
	hist    []int
}

// maybeRecover runs a pending recovery: epoch rebuild plus token-log replay
// of every live session, on the step-loop thread, before any other cluster
// work. Attempts are bounded by MaxRecoveries for the scheduler's lifetime;
// when the budget is spent (or the scheduler closed), pending and future
// failures fall back to the fault semantics recovery-off mode always had.
func (s *Scheduler) maybeRecover() {
	s.mu.Lock()
	cause := s.needRecovery
	if cause == nil {
		s.mu.Unlock()
		return
	}
	s.needRecovery = nil
	if s.closed {
		s.mu.Unlock()
		return
	}
	if !s.recoveryArmedLocked() {
		// An idle-detection event arrived after the budget was spent. No
		// request is parked waiting on this recovery (the chunk/batch error
		// paths stop requeueing once the budget is gone), so fall back to
		// letting command errors fault sessions individually.
		s.recStats.LastError = cause.Error()
		s.mu.Unlock()
		return
	}
	s.recStats.InProgress = true
	s.mu.Unlock()

	s.execMu.Lock()
	err := s.recoverClusterLocked(cause)
	s.execMu.Unlock()

	s.mu.Lock()
	s.recStats.InProgress = false
	if err != nil {
		s.recStats.LastError = err.Error()
		s.failRecoverableLocked(err)
	}
	// Events that arrived while we were rebuilding describe the incarnation
	// we just retired; absorbing them prevents a pointless second rebuild.
	// A genuinely new failure is still caught — by the next event or by the
	// next command error.
	s.needRecovery = nil
	s.cond.Broadcast()
	s.mu.Unlock()
}

// recoverClusterLocked loops rebuild+replay attempts within the recovery
// budget; caller holds execMu (never s.mu).
func (s *Scheduler) recoverClusterLocked(cause error) error {
	lastErr := cause
	tRec := time.Now()
	for {
		s.mu.Lock()
		if s.closed {
			// Shutdown landed mid-recovery: every waiting request was
			// already failed by Close, so rebuild attempts (each up to a
			// dial timeout against possibly-dead workers) would only stall
			// the drain.
			s.mu.Unlock()
			return fmt.Errorf("server: recovery abandoned at shutdown: %w", lastErr)
		}
		if s.recStats.Attempts >= int64(s.cfg.MaxRecoveries) {
			s.mu.Unlock()
			return fmt.Errorf("server: recovery budget of %d attempts spent: %w", s.cfg.MaxRecoveries, lastErr)
		}
		s.recStats.Attempts++
		// Clients that hung up while the failure was in flight must not be
		// re-driven: reap their requests and retire the sessions that held
		// only such work before the replay set is snapshotted, or recovery
		// replays — at full prefill cost — streams nobody is reading.
		s.reapCanceledLocked()
		sessions := s.replaySetLocked()
		s.mu.Unlock()

		if err := s.cluster.Rebuild(); err != nil {
			lastErr = err
			s.mu.Lock()
			s.recStats.LastError = err.Error()
			s.mu.Unlock()
			continue
		}
		// The old incarnation's cached prefixes died with its rank
		// registries; their Release calls are epoch-guarded no-ops. Replay
		// repopulates the tree below.
		if s.tree != nil {
			s.tree.Clear()
		}
		if err, infra := s.replayAll(sessions); err != nil {
			lastErr = err
			s.mu.Lock()
			s.recStats.LastError = err.Error()
			s.mu.Unlock()
			if infra {
				continue // the fresh incarnation failed too; try again
			}
			return err
		}
		s.mu.Lock()
		s.recStats.Rebuilds++
		s.recStats.Epoch = s.cluster.Epoch()
		replayedSessions := int64(len(sessions))
		s.mu.Unlock()
		s.rec.CounterSeries("cp_recovery_replays_total").Inc(1)
		if s.rec != nil {
			s.rec.RecordSpan(trace.Span{
				Name: "recovery.replay", Cat: "recovery", Rank: trace.CoordinatorRank, Seq: trace.NoSeq,
				Epoch: s.cluster.Epoch(),
				Start: tRec.UnixNano(), Dur: time.Since(tRec).Nanoseconds(),
				Args: map[string]int64{"sessions": replayedSessions, "epoch": int64(s.cluster.Epoch())},
			})
		}
		return nil
	}
}

// reapCanceledLocked completes every queued request whose client context
// already fired (the canceled mark set while an iteration held the claim)
// and schedules the eviction of sessions whose contribution is now garbage.
// Recovery is the one point where this sweep is both safe — the failed
// iteration has returned, so no chunk is mid-flight — and worthwhile:
// without it, the replay rebuilds KV for vanished clients. Caller holds
// s.mu. Victims are collected first and aborted after the queues are
// reassigned, because abortCanceledLocked can re-enter admitLocked, which
// appends to s.prefills.
func (s *Scheduler) reapCanceledLocked() {
	type victim struct {
		r     *request
		evict bool
	}
	var victims []victim
	filter := func(q []*request, evict func(*request) bool) []*request {
		kept := q[:0]
		for _, r := range q {
			if r.canceled {
				victims = append(victims, victim{r, evict(r)})
				continue
			}
			kept = append(kept, r)
		}
		return kept
	}
	s.admit = filter(s.admit, func(*request) bool { return false })
	s.prefills = filter(s.prefills, func(r *request) bool { return r.consumed > 0 })
	s.decodes = filter(s.decodes, func(r *request) bool { return r.collect })
	for _, v := range victims {
		s.abortCanceledLocked(v.r, v.evict)
	}
}

// replaySetLocked snapshots every replayable session, id-sorted so sibling
// sessions sharing a prompt replay in a deterministic order (the first
// donates its canonical prefix, the rest hit it); caller holds s.mu.
// Sessions already scheduled for eviction (a Release or reap racing the
// rebuild) are skipped — their KV is condemned, not recoverable state.
func (s *Scheduler) replaySetLocked() []replaySnapshot {
	dropping := make(map[int]bool, len(s.pendingDrops))
	for _, d := range s.pendingDrops {
		dropping[d.session] = true
	}
	out := make([]replaySnapshot, 0, len(s.log))
	for id, segs := range s.log {
		if dropping[id] {
			continue
		}
		out = append(out, replaySnapshot{
			id:      id,
			segs:    segs,
			noCache: s.noDetach[id],
			canon:   s.canonical[id],
			hist:    s.history[id],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// replayAll replays every snapshot onto the freshly rebuilt cluster. A
// session whose replay fails deterministically (KV capacity) is lost
// individually; any other failure is infrastructure and retries the whole
// attempt. Caller holds execMu.
func (s *Scheduler) replayAll(sessions []replaySnapshot) (err error, infra bool) {
	var recovered, replayed, cached int64
	for _, ss := range sessions {
		comp, cach, rerr := s.replaySession(ss)
		replayed += comp
		cached += cach
		if rerr != nil {
			var ce *transformer.CapacityError
			if errors.As(rerr, &ce) {
				// This session no longer fits (the whole fleet's KV is being
				// re-packed); shed exactly it and keep replaying the rest.
				s.cluster.Drop(ss.id)
				s.mu.Lock()
				s.loseSessionLocked(ss.id, rerr)
				s.mu.Unlock()
				continue
			}
			s.mu.Lock()
			s.recStats.ReplayedTokens += replayed
			s.recStats.ReplayCachedTokens += cached
			s.mu.Unlock()
			return fmt.Errorf("server: replaying session %d: %w", ss.id, rerr), true
		}
		recovered++
		// Donate the replayed canonical prefix so sibling sessions (and
		// future requests) hit warm KV instead of recomputing it.
		if s.tree != nil && !ss.noCache && ss.canon >= s.cfg.TokenBudget {
			_, _ = s.tree.Insert(ss.hist[:ss.canon], func(depth int) (prefixcache.Entry, error) {
				return s.cluster.DetachPrefix(ss.id, depth)
			})
		}
	}
	s.mu.Lock()
	s.recStats.RecoveredSessions += recovered
	s.recStats.ReplayedTokens += replayed
	s.recStats.ReplayCachedTokens += cached
	s.mu.Unlock()
	return nil, false
}

// replaySession re-runs one session's token log: prefill segments as
// canonical token-budget chunks (warm-started from the prefix tree when a
// sibling already donated the prefix), decode segments as decode steps with
// discarded logits. Returns the recomputed and tree-served token counts.
// Caller holds execMu.
func (s *Scheduler) replaySession(ss replaySnapshot) (computed, cached int64, err error) {
	for _, seg := range ss.segs {
		if seg.decode {
			for _, tok := range seg.toks {
				if _, err := s.cluster.Decode(ss.id, tok); err != nil {
					return computed, cached, err
				}
				computed++
			}
			continue
		}
		consumed := 0
		if s.tree != nil && !ss.noCache && s.cluster.SeqLen(ss.id) == 0 {
			if hit, entry := s.tree.Lookup(seg.toks); hit > 0 {
				if pre, ok := entry.(*transformer.PrefixKV); ok {
					if aerr := s.cluster.AdoptPrefix(ss.id, pre); aerr == nil {
						consumed = hit
						cached += int64(hit)
						// The serving reuse counters move too: prefill_source
						// is where operators watch recovery skip cached work.
						s.mu.Lock()
						s.reuse.Hits++
						s.reuse.CachedTokens += int64(hit)
						s.mu.Unlock()
					}
				}
			}
		}
		for consumed < len(seg.toks) {
			pos := s.cluster.SeqLen(ss.id)
			n := s.cfg.TokenBudget - pos%s.cfg.TokenBudget
			if rem := len(seg.toks) - consumed; n > rem {
				n = rem
			}
			variant := s.cfg.Variant
			if variant == perf.Auto {
				variant = perf.ChooseVariant(s.cluster.W.Cfg.Model, n, pos)
			}
			if _, err := s.cluster.Prefill(ss.id, seg.toks[consumed:consumed+n], variant); err != nil {
				return computed, cached, err
			}
			s.mu.Lock()
			s.reuse.ComputedTokens += int64(n)
			s.mu.Unlock()
			consumed += n
			computed += int64(n)
		}
	}
	return computed, cached, nil
}

// loseSessionLocked faults one session out of recovery: its queued requests
// fail with an ExecError carrying the cause, its replay log and prefix
// bookkeeping are dropped, any partially replayed KV is scheduled for
// eviction, and its admission slot returns to the pool. Caller holds s.mu.
func (s *Scheduler) loseSessionLocked(id int, cause error) {
	s.purgeSessionLocked(id, &ExecError{fmt.Errorf("session %d lost in recovery: %w", id, cause)})
	delete(s.prefilled, id)
	delete(s.sessions, id)
	delete(s.log, id)
	delete(s.canonical, id)
	delete(s.history, id)
	delete(s.noDetach, id)
	s.pendingDrops = append(s.pendingDrops, sessionDrop{session: id})
	s.recStats.LostSessions++
	s.admitLocked()
	s.cond.Broadcast()
}

// failRecoverableLocked is the terminal fallback once the recovery budget
// is spent: every session with a replay log is lost, exactly as an unarmed
// scheduler would have faulted it at the original failure. Caller holds
// s.mu.
func (s *Scheduler) failRecoverableLocked(cause error) {
	ids := make([]int, 0, len(s.log))
	for id := range s.log {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s.loseSessionLocked(id, cause)
	}
}

// RecoveryStats snapshots the fault-recovery telemetry.
func (s *Scheduler) RecoveryStats() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recStats
}
