package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/transformer"
)

// Config sizes the inference server.
type Config struct {
	Transformer transformer.Config
	Ranks       int
	Policy      Policy
	// Variant selects the prefill ring algorithm; decode always rides
	// pass-Q. Defaults to pass-KV.
	Variant perf.Variant
}

// Server is an HTTP inference frontend over one context-parallel cluster.
//
//	POST   /v1/generate  {"session":1,"prompt":[..],"max_tokens":8}
//	POST   /v1/prefill   {"session":1,"tokens":[..]}
//	POST   /v1/decode    {"session":1,"token":5}
//	GET    /v1/stats
//	DELETE /v1/session/{id}
type Server struct {
	cfg     Config
	cluster *transformer.Cluster
	sched   *Scheduler

	mu       sync.Mutex
	sessions map[int]bool
	started  time.Time
}

// New builds the server and its cluster.
func New(cfg Config) (*Server, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("server: non-positive rank count %d", cfg.Ranks)
	}
	w, err := transformer.NewWeights(cfg.Transformer)
	if err != nil {
		return nil, err
	}
	cluster, err := transformer.NewCluster(w, cfg.Ranks)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		cluster:  cluster,
		sched:    NewScheduler(cfg.Policy),
		sessions: make(map[int]bool),
		started:  time.Now(),
	}, nil
}

// Close stops the scheduler.
func (s *Server) Close() { s.sched.Close() }

// Handler returns the HTTP routing for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/prefill", s.handlePrefill)
	mux.HandleFunc("/v1/decode", s.handleDecode)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/session/", s.handleSession)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type generateRequest struct {
	Session   int   `json:"session"`
	Prompt    []int `json:"prompt"`
	MaxTokens int   `json:"max_tokens"`
}

type generateResponse struct {
	Tokens []int     `json:"tokens"`
	TTFTMs float64   `json:"ttft_ms"`
	TTITMs []float64 `json:"ttit_ms"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req generateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if len(req.Prompt) == 0 || req.MaxTokens <= 0 {
		writeErr(w, http.StatusBadRequest, "prompt and max_tokens required")
		return
	}
	resp := generateResponse{}
	var next int
	var prefErr error
	start := time.Now()
	if err := s.sched.Submit(ClassPrefill, func() {
		logits, err := s.cluster.Prefill(req.Session, req.Prompt, s.cfg.Variant)
		if err != nil {
			prefErr = err
			return
		}
		next = transformer.Argmax(logits[len(logits)-1])
	}); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if prefErr != nil {
		writeErr(w, http.StatusBadRequest, "prefill: %v", prefErr)
		return
	}
	s.trackSession(req.Session)
	resp.TTFTMs = float64(time.Since(start).Microseconds()) / 1000

	for i := 0; i < req.MaxTokens; i++ {
		resp.Tokens = append(resp.Tokens, next)
		if i == req.MaxTokens-1 {
			break
		}
		var decErr error
		var stepNext int
		stepStart := time.Now()
		if err := s.sched.Submit(ClassDecode, func() {
			logits, err := s.cluster.Decode(req.Session, next)
			if err != nil {
				decErr = err
				return
			}
			stepNext = transformer.Argmax(logits)
		}); err != nil {
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if decErr != nil {
			writeErr(w, http.StatusInternalServerError, "decode: %v", decErr)
			return
		}
		resp.TTITMs = append(resp.TTITMs, float64(time.Since(stepStart).Microseconds())/1000)
		next = stepNext
	}
	writeJSON(w, http.StatusOK, resp)
}

type prefillRequest struct {
	Session int   `json:"session"`
	Tokens  []int `json:"tokens"`
}

type prefillResponse struct {
	NextToken  int `json:"next_token"`
	SessionLen int `json:"session_len"`
}

func (s *Server) handlePrefill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req prefillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if len(req.Tokens) == 0 {
		writeErr(w, http.StatusBadRequest, "tokens required")
		return
	}
	var next int
	var opErr error
	if err := s.sched.Submit(ClassPrefill, func() {
		logits, err := s.cluster.Prefill(req.Session, req.Tokens, s.cfg.Variant)
		if err != nil {
			opErr = err
			return
		}
		next = transformer.Argmax(logits[len(logits)-1])
	}); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		writeErr(w, http.StatusBadRequest, "prefill: %v", opErr)
		return
	}
	s.trackSession(req.Session)
	writeJSON(w, http.StatusOK, prefillResponse{NextToken: next, SessionLen: s.cluster.SeqLen(req.Session)})
}

type decodeRequest struct {
	Session int `json:"session"`
	Token   int `json:"token"`
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req decodeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if !s.hasSession(req.Session) {
		writeErr(w, http.StatusNotFound, "unknown session %d", req.Session)
		return
	}
	var next int
	var opErr error
	if err := s.sched.Submit(ClassDecode, func() {
		logits, err := s.cluster.Decode(req.Session, req.Token)
		if err != nil {
			opErr = err
			return
		}
		next = transformer.Argmax(logits)
	}); err != nil {
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if opErr != nil {
		writeErr(w, http.StatusBadRequest, "decode: %v", opErr)
		return
	}
	writeJSON(w, http.StatusOK, prefillResponse{NextToken: next, SessionLen: s.cluster.SeqLen(req.Session)})
}

type statsResponse struct {
	Ranks       int                  `json:"ranks"`
	Policy      string               `json:"policy"`
	Sessions    int                  `json:"sessions"`
	RankKV      []int                `json:"rank_kv_tokens"`
	CommBytes   float64              `json:"comm_bytes"`
	UptimeSec   float64              `json:"uptime_sec"`
	QueueStats  map[Class]QueueStats `json:"queues"`
	SessionLens map[string]int       `json:"session_lens"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	lens := make(map[string]int, len(s.sessions))
	count := len(s.sessions)
	for id := range s.sessions {
		lens[strconv.Itoa(id)] = s.cluster.SeqLen(id)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{
		Ranks:       s.cluster.Ranks(),
		Policy:      s.cfg.Policy.String(),
		Sessions:    count,
		RankKV:      s.cluster.RankCacheTokens(),
		CommBytes:   s.cluster.CommStats().TotalBytes(),
		UptimeSec:   time.Since(s.started).Seconds(),
		QueueStats:  s.sched.Stats(),
		SessionLens: lens,
	})
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, "DELETE required")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad session id %q", idStr)
		return
	}
	if !s.hasSession(id) {
		writeErr(w, http.StatusNotFound, "unknown session %d", id)
		return
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) trackSession(id int) {
	s.mu.Lock()
	s.sessions[id] = true
	s.mu.Unlock()
}

func (s *Server) hasSession(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}
