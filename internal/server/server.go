package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/comm/wire"
	"repro/internal/parallel"
	"repro/internal/perf"
	"repro/internal/prefixcache"
	"repro/internal/ring"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// Config sizes the inference server.
type Config struct {
	Transformer transformer.Config
	Ranks       int
	Policy      Policy
	// Variant selects the prefill ring algorithm; decode always rides
	// pass-Q. Defaults to pass-KV.
	Variant perf.Variant
	// TokenBudget caps prompt tokens prefilled per scheduler iteration
	// (chunked prefill). 0 = default.
	TokenBudget int
	// MaxBatch caps the sessions fused into one DecodeBatch. 0 = default.
	MaxBatch int
	// MaxSessions caps concurrently resident sessions (admission control).
	// 0 = default.
	MaxSessions int
	// MaxTokens caps a single generate request's max_tokens. 0 = default.
	MaxTokens int
	// PrefixCacheTokens bounds the prefix KV-reuse tree released sessions
	// detach into. 0 = default budget; negative disables prefix reuse.
	PrefixCacheTokens int
	// KVCapacity caps every per-rank per-layer KV cache in tokens (the
	// simulated HBM budget). 0 = unlimited.
	KVCapacity int
	// RecvTimeout overrides the cluster's communication receive deadline.
	// 0 = comm.DefaultRecvTimeout. In distributed mode the workers own
	// their ring deadline (cprank -recv-timeout, which should match this);
	// here it sizes the coordinator's per-command reply deadline, which
	// must exceed the ring deadline.
	RecvTimeout time.Duration
	// RankAddrs switches the server into distributed mode: instead of
	// simulating ranks in-process, it connects to one cprank worker process
	// per address (index = rank id) and coordinates them over TCP. Ranks is
	// ignored; the world size is len(RankAddrs). Workers must be started
	// with the same seed and KV capacity (the rendezvous digest enforces
	// it).
	RankAddrs []string
	// DialTimeout bounds the distributed control-plane rendezvous.
	// 0 = default.
	DialTimeout time.Duration
	// Recover arms fault recovery: a rank failure triggers an epoch
	// rebuild and bit-identical session replay instead of faulting every
	// in-flight session. See SchedulerConfig.Recover.
	Recover bool
	// MaxRecoveries bounds lifetime rebuild attempts (0 = 3 when Recover).
	MaxRecoveries int
	// HeartbeatEvery sets the distributed control-plane heartbeat interval
	// (worker → coordinator liveness). 0 = the transport default; negative
	// disables heartbeats. In-process clusters ignore it.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many silent heartbeat windows declare a worker
	// dead. 0 = default; must be >= 2 (a single missed beat flaps on
	// scheduling jitter); negative disables the idle deadline.
	HeartbeatMisses int
	// BrownoutSLO arms brownout overload control: while the recent p90 queue
	// wait exceeds this bound, new-session admissions are answered 429 with
	// Retry-After instead of queued. 0 disables. See
	// SchedulerConfig.BrownoutSLO.
	BrownoutSLO time.Duration
	// NoTrace disables the observability recorder: no spans, no latency
	// histograms, and /metrics and /v1/trace answer 404. Tracing is pure
	// observation — on or off, every logit is bit-identical — so the only
	// reason to disable it is reclaiming the recording overhead itself.
	NoTrace bool
	// Cohorts pre-registers workload cohort labels for per-cohort latency
	// series (cp_cohort_*); requests tag themselves via the "cohort" JSON
	// field. Unregistered names past the label-pool cap fold into "other".
	Cohorts []string
}

// Server is an HTTP inference frontend over one context-parallel cluster
// driven by the continuous-batching scheduler.
//
//	POST   /v1/generate  {"session":1,"prompt":[..],"max_tokens":8}
//	POST   /v1/prefill   {"session":1,"tokens":[..]}
//	POST   /v1/decode    {"session":1,"token":5}
//	GET    /v1/stats
//	DELETE /v1/session/{id}
type Server struct {
	cfg       Config
	sched     *Scheduler
	rec       *trace.Recorder // nil when Config.NoTrace
	started   time.Time
	seq       atomic.Uint64 // /v1/stats snapshot sequence
	closeOnce sync.Once

	// Robustness counter sync state: the cluster reports cumulative
	// process-local integrity/chaos totals; the recorder's counters advance
	// by clamped deltas so a respawned worker (whose totals restart at zero)
	// never drives a counter backwards.
	robustMu      sync.Mutex
	prevIntegrity [2]int64 // checked, rejected
	prevChaos     map[string]int64
}

// New builds the server, its cluster, and the scheduler step loop.
func New(cfg Config) (*Server, error) {
	if len(cfg.RankAddrs) > 0 {
		cfg.Ranks = len(cfg.RankAddrs)
	}
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("server: non-positive rank count %d", cfg.Ranks)
	}
	w, err := transformer.NewWeights(cfg.Transformer)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	if !cfg.NoTrace {
		rec = trace.New()
	}
	var cluster *transformer.Cluster
	if len(cfg.RankAddrs) > 0 {
		cfg.RankAddrs, err = NormalizeRankAddrs(cfg.RankAddrs)
		if err != nil {
			return nil, err
		}
		cluster, err = transformer.ConnectCluster(w, transformer.ConnectConfig{
			Addrs:           cfg.RankAddrs,
			KVCapacity:      cfg.KVCapacity,
			DialTimeout:     cfg.DialTimeout,
			RecvTimeout:     cfg.RecvTimeout,
			HeartbeatEvery:  cfg.HeartbeatEvery,
			HeartbeatMisses: cfg.HeartbeatMisses,
			Trace:           rec,
		})
	} else {
		copts := []transformer.ClusterOption{transformer.WithTrace(rec)}
		if cfg.RecvTimeout > 0 {
			copts = append(copts, transformer.WithRecvTimeout(cfg.RecvTimeout))
		}
		if cfg.KVCapacity > 0 {
			copts = append(copts, transformer.WithKVCapacity(cfg.KVCapacity))
		}
		cluster, err = transformer.NewCluster(w, cfg.Ranks, copts...)
	}
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg: cfg,
		rec: rec,
		sched: NewScheduler(cluster, SchedulerConfig{
			Policy:            cfg.Policy,
			Variant:           cfg.Variant,
			TokenBudget:       cfg.TokenBudget,
			MaxBatch:          cfg.MaxBatch,
			MaxSessions:       cfg.MaxSessions,
			MaxTokens:         cfg.MaxTokens,
			PrefixCacheTokens: cfg.PrefixCacheTokens,
			Recover:           cfg.Recover,
			MaxRecoveries:     cfg.MaxRecoveries,
			BrownoutSLO:       cfg.BrownoutSLO,
			Cohorts:           cfg.Cohorts,
		}),
		started:   time.Now(),
		prevChaos: make(map[string]int64),
	}
	// Register the robustness counters up front so scrapes expose them at
	// zero — a dashboard must distinguish "no corruption" from "no series".
	srv.rec.CounterSeries("cp_integrity_checked_total")
	srv.rec.CounterSeries("cp_integrity_rejected_total")
	for _, k := range chaos.Kinds {
		srv.rec.CounterSeries("cp_chaos_faults_total", trace.L("kind", string(k)))
	}
	return srv, nil
}

// Scheduler exposes the continuous-batching engine, e.g. for load drivers
// that want occupancy reports.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// NormalizeRankAddrs validates a distributed worker address list up front
// and returns it in the exact form the dialer will use: every entry must
// parse as host:port (surrounding whitespace is stripped, since flag lists
// are often written "a:1, b:2") and be unique after stripping. Failing here
// produces one clear line instead of a rendezvous hang or a mid-handshake
// rejection.
func NormalizeRankAddrs(addrs []string) ([]string, error) {
	out := make([]string, len(addrs))
	seen := make(map[string]int, len(addrs))
	for i, raw := range addrs {
		addr := strings.TrimSpace(raw)
		host, port, err := net.SplitHostPort(addr)
		if err != nil || host == "" || port == "" {
			return nil, fmt.Errorf("server: rank %d address %q is not host:port", i, raw)
		}
		if p, err := strconv.Atoi(port); err != nil || p <= 0 || p > 65535 {
			return nil, fmt.Errorf("server: rank %d address %q has invalid port %q", i, raw, port)
		}
		if prev, dup := seen[addr]; dup {
			return nil, fmt.Errorf("server: ranks %d and %d share address %q", prev, i, addr)
		}
		seen[addr] = i
		out[i] = addr
	}
	return out, nil
}

// ValidateRankAddrs is NormalizeRankAddrs without the normalized result.
func ValidateRankAddrs(addrs []string) error {
	_, err := NormalizeRankAddrs(addrs)
	return err
}

// Close stops the scheduler — draining the in-flight iteration, so claimed
// decode streams finish their step and return truncated successes — and
// only then releases the cluster (in distributed mode: shuts the worker
// processes down and hangs up the control plane). The order matters: the
// scheduler owns all cluster execution, so the cluster hangup can never
// race an in-flight chunk or batch. Closing more than once is safe, and
// requests arriving after Close uniformly fail with ErrClosed/503.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.sched.Close()
		s.sched.WithCluster(func(c *transformer.Cluster) { c.Close() })
	})
}

// Handler returns the HTTP routing for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/prefill", s.handlePrefill)
	mux.HandleFunc("/v1/decode", s.handleDecode)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/session/", s.handleSession)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Recorder exposes the observability store (nil when Config.NoTrace).
func (s *Server) Recorder() *trace.Recorder { return s.rec }

// syncTrace drains every distributed worker's staged spans and metric
// deltas into the coordinator recorder and refreshes the level gauges.
// In-process clusters record into the shared store directly, so only the
// gauges move.
func (s *Server) syncTrace() error {
	if s.rec == nil {
		return nil
	}
	var err error
	s.sched.WithCluster(func(c *transformer.Cluster) {
		err = c.SyncTrace()
		s.rec.Gauge("cp_cluster_epoch").Set(float64(c.Epoch()))
		// Integrity and chaos totals live in per-process atomics, not the
		// per-rank recorders the span drain covers; fold the cluster sum in
		// so /metrics carries them too.
		if tel, terr := c.Telemetry(); terr == nil {
			s.syncRobustness(tel)
		}
	})
	s.rec.Gauge("cp_uptime_seconds").Set(time.Since(s.started).Seconds())
	s.rec.Gauge("cp_sessions_resident").Set(float64(s.sched.Sessions()))
	return err
}

// syncRobustness advances the integrity/chaos counters by the delta since
// the previous sync. Deltas are clamped at zero: a respawned worker restarts
// its process-local totals, and a Prometheus counter must never regress —
// the absorbed dip undercounts by at most one process lifetime's tail.
func (s *Server) syncRobustness(tel transformer.Telemetry) {
	if s.rec == nil {
		return
	}
	s.robustMu.Lock()
	defer s.robustMu.Unlock()
	deltaInc := func(series *trace.Series, cur int64, prev *int64) {
		if cur > *prev {
			series.Inc(float64(cur - *prev))
		}
		*prev = cur
	}
	deltaInc(s.rec.CounterSeries("cp_integrity_checked_total"), tel.IntegrityChecked, &s.prevIntegrity[0])
	deltaInc(s.rec.CounterSeries("cp_integrity_rejected_total"), tel.IntegrityRejected, &s.prevIntegrity[1])
	for i, kind := range tel.ChaosKinds {
		prev := s.prevChaos[kind]
		deltaInc(s.rec.CounterSeries("cp_chaos_faults_total", trace.L("kind", kind)), tel.ChaosCounts[i], &prev)
		s.prevChaos[kind] = prev
	}
}

// handleMetrics serves the Prometheus text exposition. Every scrape first
// drains the distributed workers so the histograms include ring phases
// recorded since the previous scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.rec == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled")
		return
	}
	if s.sched.Closed() {
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
		return
	}
	if err := s.syncTrace(); err != nil {
		if s.sched.Closed() {
			writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
			return
		}
		writeErr(w, http.StatusInternalServerError, "trace sync: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.rec.WriteProm(w)
}

// handleTrace serves the span export: Chrome-trace JSON by default (open in
// chrome://tracing or Perfetto), deterministic JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.rec == nil {
		writeErr(w, http.StatusNotFound, "tracing disabled")
		return
	}
	if s.sched.Closed() {
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "chrome" && format != "jsonl" {
		writeErr(w, http.StatusBadRequest, "unknown format %q (want chrome or jsonl)", format)
		return
	}
	if err := s.syncTrace(); err != nil {
		if s.sched.Closed() {
			writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
			return
		}
		writeErr(w, http.StatusInternalServerError, "trace sync: %v", err)
		return
	}
	if format == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.rec.WriteJSONL(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.rec.WriteChromeTrace(w)
}

// WriteTrace syncs and writes the span export — Chrome-trace JSON when
// chrome is true, JSONL otherwise (cpserve -trace-out uses this at
// shutdown). Sync errors are swallowed: the workers may already be gone,
// and the coordinator's merged store is still worth dumping.
func (s *Server) WriteTrace(w io.Writer, chrome bool) error {
	if s.rec == nil {
		return fmt.Errorf("server: tracing disabled")
	}
	_ = s.syncTrace()
	if chrome {
		return s.rec.WriteChromeTrace(w)
	}
	return s.rec.WriteJSONL(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

type generateRequest struct {
	Session   int   `json:"session"`
	Prompt    []int `json:"prompt"`
	MaxTokens int   `json:"max_tokens"`
	// NoCache opts this request out of prefix reuse: the prompt is never
	// served from cached KV and the session never donates KV on release.
	NoCache bool `json:"no_cache,omitempty"`
	// TimeoutMs is this request's deadline: past it the request is aborted
	// at the next scheduling boundary and answered 504. 0 = no deadline.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Cohort tags the request with its workload class ("chat", "rag", ...)
	// for per-cohort latency attribution in /metrics and /v1/stats.
	Cohort string `json:"cohort,omitempty"`
}

// requestContext applies a request's timeout_ms deadline to its HTTP
// context. The returned cancel must run even on the no-deadline path.
func requestContext(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	if timeoutMs > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMs)*time.Millisecond)
	}
	return r.Context(), func() {}
}

// writeSchedErr maps a scheduler error onto the HTTP response, attaching
// Retry-After (whole seconds, rounded up) when the scheduler shed the
// request in brownout.
func (s *Server) writeSchedErr(w http.ResponseWriter, err error) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		secs := int(math.Ceil(oe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.sched.noteRetryAfter()
	}
	writeErr(w, statusFor(err), "%v", err)
}

type generateResponse struct {
	Tokens []int     `json:"tokens"`
	TTFTMs float64   `json:"ttft_ms"`
	TTITMs []float64 `json:"ttit_ms"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req generateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if len(req.Prompt) == 0 || req.MaxTokens <= 0 {
		writeErr(w, http.StatusBadRequest, "prompt and max_tokens required")
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	res, err := s.sched.GenerateWith(ctx, req.Session, req.Prompt, req.MaxTokens,
		RequestOptions{NoPrefixCache: req.NoCache, Cohort: req.Cohort})
	if err != nil {
		s.writeSchedErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, generateResponse{Tokens: res.Tokens, TTFTMs: res.TTFTMs, TTITMs: res.TTITMs})
}

type prefillRequest struct {
	Session   int    `json:"session"`
	Tokens    []int  `json:"tokens"`
	NoCache   bool   `json:"no_cache,omitempty"`
	TimeoutMs int    `json:"timeout_ms,omitempty"`
	Cohort    string `json:"cohort,omitempty"`
}

type prefillResponse struct {
	NextToken  int `json:"next_token"`
	SessionLen int `json:"session_len"`
}

func (s *Server) handlePrefill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req prefillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	if len(req.Tokens) == 0 {
		writeErr(w, http.StatusBadRequest, "tokens required")
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	next, err := s.sched.PrefillWith(ctx, req.Session, req.Tokens,
		RequestOptions{NoPrefixCache: req.NoCache, Cohort: req.Cohort})
	if err != nil {
		s.writeSchedErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, prefillResponse{NextToken: next, SessionLen: s.sessionLen(req.Session)})
}

type decodeRequest struct {
	Session   int `json:"session"`
	Token     int `json:"token"`
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req decodeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	ctx, cancel := requestContext(r, req.TimeoutMs)
	defer cancel()
	next, err := s.sched.Decode(ctx, req.Session, req.Token)
	if err != nil {
		s.writeSchedErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, prefillResponse{NextToken: next, SessionLen: s.sessionLen(req.Session)})
}

// statusFor maps scheduler errors to HTTP statuses: a closed scheduler
// means the service is going away (503), KV-capacity shedding is deliberate
// overload that clients should back off and retry (503, not a fault),
// brownout shedding is deliberate overload with an explicit backoff hint
// (429 + Retry-After), a request that outlived its own timeout_ms deadline
// timed out (504), a session released mid-request is a conflict with a
// concurrent DELETE (409), an ExecError is an internal cluster failure
// (500), everything else is a request-level failure (400).
func statusFor(err error) int {
	if errors.Is(err, ErrClosed) {
		return http.StatusServiceUnavailable
	}
	var capErr *transformer.CapacityError
	if errors.As(err, &capErr) {
		return http.StatusServiceUnavailable
	}
	var oe *OverloadError
	if errors.As(err, &oe) {
		return http.StatusTooManyRequests
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, ErrReleased) {
		return http.StatusConflict
	}
	if errors.Is(err, ErrUnknownSession) {
		return http.StatusNotFound
	}
	var execErr *ExecError
	if errors.As(err, &execErr) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// prefillSource breaks prompt prefill down by where its KV came from.
type prefillSource struct {
	CachedTokens   int64   `json:"cached_tokens"`   // served from the prefix tree
	ComputedTokens int64   `json:"computed_tokens"` // ring-prefilled
	HitRate        float64 `json:"hit_rate"`        // cached / (cached + computed)
}

// commKindStats is one collective family's accounted traffic.
type commKindStats struct {
	Messages int64   `json:"messages"`
	Bytes    float64 `json:"bytes"`
}

// commBlock surfaces the cluster's communication substrate: which transport
// carries the ring, per-collective accounted (modeled) traffic, and
// per-directed-link counters. On the TCP transport each link additionally
// reports actual wire frames/bytes (codec framing, heartbeats, and control
// traffic included); src -1 marks coordinator control links.
type commBlock struct {
	Transport     string                   `json:"transport"`
	TotalBytes    float64                  `json:"total_bytes"`
	TotalMessages int64                    `json:"total_messages"`
	ByKind        map[string]commKindStats `json:"by_kind"`
	Links         []wire.LinkStat          `json:"links,omitempty"`
}

// kernelBlock groups the compute-kernel telemetry: the shared worker pool,
// the forward-pass matmul sweeps (pool utilization of the projection, FFN,
// and logits GEMMs), and the ring communication/compute overlap occupancy.
type kernelBlock struct {
	Pool        parallel.Stats     `json:"pool"`
	Matmul      tensor.MatmulStats `json:"matmul"`
	RingOverlap ring.OverlapStats  `json:"ring_overlap"`
}

// quantileBlock summarizes one latency histogram (seconds; log-scale
// buckets, so quantiles are upper bucket bounds).
type quantileBlock struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func quantilesOf(s *trace.Series) quantileBlock {
	return quantileBlock{
		Count: s.HistCount(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// cohortLatency is one cohort's latency summary in /v1/stats.
type cohortLatency struct {
	TTFT quantileBlock `json:"ttft_seconds"`
	ITL  quantileBlock `json:"itl_seconds"`
	E2E  quantileBlock `json:"e2e_seconds"`
}

// latencyBlock is the /v1/stats serving-latency summary, distilled from the
// same histograms /metrics exposes in full.
type latencyBlock struct {
	TTFT quantileBlock `json:"ttft_seconds"`
	ITL  quantileBlock `json:"itl_seconds"`
	Step quantileBlock `json:"step_seconds"`
	// ByCohort breaks the same latencies down per workload cohort (present
	// once any cohort series is registered).
	ByCohort map[string]cohortLatency `json:"by_cohort,omitempty"`
}

type statsResponse struct {
	Ranks     int     `json:"ranks"`
	Policy    string  `json:"policy"`
	Variant   string  `json:"variant"`
	Sessions  int     `json:"sessions"`
	RankKV    []int   `json:"rank_kv_tokens"`
	CommBytes float64 `json:"comm_bytes"`
	UptimeSec float64 `json:"uptime_sec"`
	// UptimeMs is the same clock in integer milliseconds — monotonic across
	// scrapes, so pollers can order snapshots without parsing floats.
	UptimeMs int64 `json:"uptime_ms"`
	// Sequence increments once per served snapshot; two pollers can tell
	// which of their responses is fresher even within one millisecond.
	Sequence    uint64               `json:"sequence"`
	QueueStats  map[Class]QueueStats `json:"queues"`
	SessionLens map[string]int       `json:"session_lens"`
	// Latency summarizes the serving-latency histograms (absent when
	// tracing is disabled).
	Latency *latencyBlock `json:"latency,omitempty"`
	// Continuous-batching telemetry.
	Batch           BatchStats `json:"batch"`
	MeanOccupancy   float64    `json:"mean_occupancy"`
	MeanIterMs      float64    `json:"mean_iter_ms"`
	TokenBudget     int        `json:"token_budget"`
	MaxBatch        int        `json:"max_batch"`
	MaxSessions     int        `json:"max_sessions"`
	QueuedAdmit     int        `json:"queued_admit"`
	QueuedPrefill   int        `json:"queued_prefill"`
	QueuedDecode    int        `json:"queued_decode"`
	LastDecodeBatch int        `json:"last_decode_batch"`
	// Prefix-reuse telemetry.
	PrefillSource prefillSource      `json:"prefill_source"`
	Reuse         ReuseStats         `json:"reuse"`
	PrefixCache   *prefixcache.Stats `json:"prefix_cache,omitempty"` // nil when disabled
	// Kernel parallelism and per-sweep KV-assembly copy counters: Kernel
	// groups the shared worker pool, the forward-pass matmul sweeps, and
	// the ring communication/compute overlap; KVAssembly shows that chunked
	// prefill and batched decode extend cached KV mirrors instead of
	// re-concatenating the context.
	Kernel     kernelBlock          `json:"kernel"`
	KVAssembly ring.BlockCacheStats `json:"kv_assembly"`
	// Comm breaks communication down by collective kind and directed link
	// (wire-level counters included on the TCP transport).
	Comm commBlock `json:"comm"`
	// Recovery is the fault-tolerance telemetry: cluster epoch, rebuild and
	// replay counters, recovered vs. lost sessions. Present even when
	// recovery is disabled (enabled=false) so dashboards need no probing.
	Recovery RecoveryStats `json:"recovery"`
	// Integrity is the wire CRC accounting summed across ranks; a non-zero
	// frames_rejected proves corruption was detected and contained.
	Integrity integrityBlock `json:"integrity"`
	// Chaos counts deliberately injected faults by kind, summed across
	// ranks (all-zero outside chaos runs).
	Chaos chaosBlock `json:"chaos"`
	// Overload is the deadline/brownout shedding telemetry.
	Overload OverloadStats `json:"overload"`
}

// integrityBlock is the /v1/stats "integrity" block: per-frame CRC32C
// verification totals on the data plane.
type integrityBlock struct {
	FramesChecked  int64 `json:"frames_checked"`
	FramesRejected int64 `json:"frames_rejected"`
}

// chaosBlock is the /v1/stats "chaos" block.
type chaosBlock struct {
	InjectedTotal int64            `json:"injected_total"`
	ByKind        map[string]int64 `json:"by_kind,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if s.sched.Closed() {
		// Uniform post-close behavior: every endpoint answers 503, instead
		// of stats surfacing a confusing closed-cluster telemetry error.
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
		return
	}
	ids := s.sched.SessionIDs()
	// Snapshot the recovery block before the cluster lock: WithCluster
	// blocks for the whole rebuild+replay while a recovery is executing, so
	// sampling afterwards could never observe in_progress=true.
	recovery := s.sched.RecoveryStats()
	var ranks int
	var tel transformer.Telemetry
	var telErr error
	lens := make(map[string]int, len(ids))
	s.sched.WithCluster(func(c *transformer.Cluster) {
		ranks = c.Ranks()
		tel, telErr = c.Telemetry()
		for _, id := range ids {
			lens[strconv.Itoa(id)] = c.SeqLen(id)
		}
	})
	if telErr != nil {
		if s.sched.Closed() {
			// Close ran while this request was in flight; answer like every
			// other post-close request instead of surfacing a 500.
			writeErr(w, http.StatusServiceUnavailable, "%v", ErrClosed)
			return
		}
		writeErr(w, http.StatusInternalServerError, "cluster telemetry: %v", telErr)
		return
	}
	s.syncRobustness(tel) // keep /metrics counters fresh off the same fetch
	chaosStats := chaosBlock{ByKind: make(map[string]int64, len(tel.ChaosKinds))}
	for i, kind := range tel.ChaosKinds {
		chaosStats.ByKind[kind] = tel.ChaosCounts[i]
		chaosStats.InjectedTotal += tel.ChaosCounts[i]
	}
	comm := commBlock{
		Transport:     tel.Transport,
		TotalBytes:    tel.Comm.TotalBytes(),
		TotalMessages: tel.Comm.TotalMessages(),
		ByKind:        make(map[string]commKindStats, len(tel.Comm.Messages)),
		Links:         tel.Links,
	}
	for kind, msgs := range tel.Comm.Messages {
		comm.ByKind[string(kind)] = commKindStats{Messages: msgs, Bytes: tel.Comm.Bytes[kind]}
	}
	batch := s.sched.BatchStats()
	admitQ, prefillQ, decodeQ := s.sched.QueueDepths()
	reuse := s.sched.Reuse()
	var treeStats *prefixcache.Stats
	if st, ok := s.sched.PrefixStats(); ok {
		treeStats = &st
	}
	var latency *latencyBlock
	if s.rec != nil {
		latency = &latencyBlock{
			TTFT: quantilesOf(s.rec.Hist("cp_request_ttft_seconds")),
			ITL:  quantilesOf(s.rec.Hist("cp_request_itl_seconds")),
			Step: quantilesOf(s.rec.Hist("cp_step_seconds")),
		}
		if names := s.sched.Cohorts(); len(names) > 0 {
			latency.ByCohort = make(map[string]cohortLatency, len(names))
			for _, name := range names {
				l := trace.L("cohort", name)
				latency.ByCohort[name] = cohortLatency{
					TTFT: quantilesOf(s.rec.Hist("cp_cohort_ttft_seconds", l)),
					ITL:  quantilesOf(s.rec.Hist("cp_cohort_itl_seconds", l)),
					E2E:  quantilesOf(s.rec.Hist("cp_cohort_e2e_seconds", l)),
				}
			}
		}
	}
	seq := s.seq.Add(1)
	s.rec.Gauge("cp_stats_sequence").Set(float64(seq))
	uptime := time.Since(s.started)
	writeJSON(w, http.StatusOK, statsResponse{
		Ranks:           ranks,
		Policy:          s.cfg.Policy.String(),
		Variant:         s.cfg.Variant.String(),
		Sessions:        len(ids),
		RankKV:          tel.RankKV,
		CommBytes:       tel.Comm.TotalBytes(),
		UptimeSec:       uptime.Seconds(),
		UptimeMs:        uptime.Milliseconds(),
		Sequence:        seq,
		QueueStats:      s.sched.Stats(),
		SessionLens:     lens,
		Latency:         latency,
		Batch:           batch,
		MeanOccupancy:   batch.MeanOccupancy(),
		MeanIterMs:      batch.MeanIterMs(),
		TokenBudget:     s.sched.cfg.TokenBudget,
		MaxBatch:        s.sched.cfg.MaxBatch,
		MaxSessions:     s.sched.cfg.MaxSessions,
		QueuedAdmit:     admitQ,
		QueuedPrefill:   prefillQ,
		QueuedDecode:    decodeQ,
		LastDecodeBatch: len(s.sched.LastIter().DecodeSessions),
		PrefillSource: prefillSource{
			CachedTokens:   reuse.CachedTokens,
			ComputedTokens: reuse.ComputedTokens,
			HitRate:        reuse.HitRate(),
		},
		Reuse:       reuse,
		PrefixCache: treeStats,
		Kernel: kernelBlock{
			Pool:        parallel.Snapshot(),
			Matmul:      tensor.MatmulSnapshot(),
			RingOverlap: ring.OverlapSnapshot(),
		},
		KVAssembly: tel.Assembly,
		Comm:       comm,
		Recovery:   recovery,
		Integrity: integrityBlock{
			FramesChecked:  tel.IntegrityChecked,
			FramesRejected: tel.IntegrityRejected,
		},
		Chaos:    chaosStats,
		Overload: s.sched.OverloadStats(),
	})
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, "DELETE required")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad session id %q", idStr)
		return
	}
	if !s.sched.Known(id) {
		writeErr(w, http.StatusNotFound, "unknown session %d", id)
		return
	}
	s.sched.Release(id)
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (s *Server) sessionLen(id int) int {
	var n int
	s.sched.WithCluster(func(c *transformer.Cluster) { n = c.SeqLen(id) })
	return n
}
