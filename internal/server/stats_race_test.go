package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// TestStatsHammerUnderTraffic is the ISSUE's lock-discipline pin: /v1/stats
// — comm block (per-link modeled + wire counters), kernel block, and the
// new recovery block — is hammered concurrently with prefill/decode traffic
// and fail-link churn. Run under -race (the CI race job does), any unlocked
// counter access surfaces here.
//
// Two deployments, because the counters live in different places: the
// in-process subtest churns injected link faults through full recovery
// cycles (recovery bookkeeping racing stats snapshots), and the distributed
// subtest reads TCP per-link wire counters while worker heartbeat and
// reader goroutines advance them.
func TestStatsHammerUnderTraffic(t *testing.T) {
	hammer := func(t *testing.T, srv *Server, failLink bool) {
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Close()
		stop := make(chan struct{})
		var wg sync.WaitGroup

		// Traffic: short overlapping generates across a few sessions.
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					prompt := []int{1 + g, 2, 3 + i%5, 4, 5, 6, 7, 8}
					_, _ = srv.Scheduler().Generate(context.Background(), 100+g, prompt, 4)
					srv.Scheduler().Release(100 + g)
				}
			}(g)
		}
		// Stats hammer: parse the full block every time so any torn field
		// also breaks decoding, not just the race detector.
		for h := 0; h < 4; h++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err != nil {
						continue
					}
					var body statsResponse
					_ = json.NewDecoder(resp.Body).Decode(&body)
					resp.Body.Close()
				}
			}()
		}
		// Observability hammer: scrape the Prometheus exposition and both
		// trace exports concurrently with traffic and recovery churn. Every
		// 200 body must parse/validate — a torn histogram or half-merged
		// span batch breaks the in-tree parsers, not just the race detector.
		// Non-200s are fine: a scrape can land mid-recovery on a poisoned
		// control plane.
		for h := 0; h < 2; h++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					url := ts.URL + "/metrics"
					if i%3 == 1 {
						url = ts.URL + "/v1/trace"
					} else if i%3 == 2 {
						url = ts.URL + "/v1/trace?format=jsonl"
					}
					resp, err := http.Get(url)
					if err != nil {
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						continue
					}
					switch i % 3 {
					case 0:
						if _, err := trace.ParseProm(bytes.NewReader(body)); err != nil {
							t.Errorf("/metrics under churn: %v", err)
						}
					case 1:
						if err := trace.ValidateChromeTrace(body); err != nil {
							t.Errorf("/v1/trace under churn: %v", err)
						}
					}
				}
			}()
		}
		// Fault churn: inject link failures; recovery heals them by
		// rebuilding, then the next injection fails the fresh epoch.
		if failLink {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					case <-time.After(60 * time.Millisecond):
						srv.Scheduler().WithCluster(func(c *transformer.Cluster) { c.FailLink(0, 1) })
					}
				}
			}()
		}
		time.Sleep(700 * time.Millisecond)
		close(stop)
		wg.Wait()
	}

	t.Run("in-process-with-recovery-churn", func(t *testing.T) {
		srv, err := New(Config{
			Transformer:   transformer.Tiny(51),
			Ranks:         2,
			Variant:       perf.Auto,
			TokenBudget:   8,
			RecvTimeout:   300 * time.Millisecond,
			Recover:       true,
			MaxRecoveries: 1 << 20, // churn through many rebuilds
		})
		if err != nil {
			t.Fatal(err)
		}
		hammer(t, srv, true)
	})

	t.Run("distributed-wire-counters", func(t *testing.T) {
		cfg := transformer.Tiny(53)
		addrs := startWorkers(t, cfg, 2)
		srv, err := New(Config{
			Transformer: cfg,
			RankAddrs:   addrs,
			Variant:     perf.PassKV,
			TokenBudget: 8,
			DialTimeout: 20 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		hammer(t, srv, false)
	})
}
