// Package server exposes the context-parallel transformer cluster behind an
// HTTP/JSON inference API with a prefill/decode-aware request scheduler.
//
// The paper's deployment guidance (§4.3) is that context parallelism is
// best leveraged by a serving system that decouples prefill from decode:
// CP sharply improves prefill latency at a decode penalty. The scheduler
// here implements the single-host form of that advice — separate queues for
// prefill and decode work with a configurable policy — and reports queueing
// delay per class so the trade-off is observable.
package server

import (
	"fmt"
	"sync"
	"time"
)

// Policy selects how the worker drains the two queues.
type Policy int

const (
	// FIFO interleaves prefill and decode in arrival order.
	FIFO Policy = iota
	// PrefillFirst always prefers waiting prefill work, minimizing TTFT at
	// the cost of decode tail latency — the CP-friendly schedule.
	PrefillFirst
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case PrefillFirst:
		return "prefill-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Class labels a request for scheduling and accounting.
type Class string

const (
	ClassPrefill Class = "prefill"
	ClassDecode  Class = "decode"
)

type task struct {
	class    Class
	seq      uint64
	enqueued time.Time
	run      func()
	done     chan struct{}
}

// QueueStats aggregates per-class scheduling metrics.
type QueueStats struct {
	Executed  int64
	TotalWait time.Duration
	MaxWait   time.Duration
}

// MeanWait returns the average queueing delay.
func (q QueueStats) MeanWait() time.Duration {
	if q.Executed == 0 {
		return 0
	}
	return q.TotalWait / time.Duration(q.Executed)
}

// Scheduler serializes cluster work (the simulated cluster is single-user)
// while letting the policy reorder across classes.
type Scheduler struct {
	policy Policy

	mu       sync.Mutex
	cond     *sync.Cond
	prefills []*task
	decodes  []*task
	seq      uint64
	closed   bool
	stats    map[Class]*QueueStats
}

// NewScheduler starts the worker goroutine.
func NewScheduler(policy Policy) *Scheduler {
	s := &Scheduler{policy: policy, stats: map[Class]*QueueStats{
		ClassPrefill: {}, ClassDecode: {},
	}}
	s.cond = sync.NewCond(&s.mu)
	go s.worker()
	return s
}

// Submit enqueues fn under the given class and blocks until it has run.
// Returns an error if the scheduler is closed.
func (s *Scheduler) Submit(class Class, fn func()) error {
	t := &task{class: class, enqueued: time.Now(), run: fn, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: scheduler closed")
	}
	s.seq++
	t.seq = s.seq
	switch class {
	case ClassPrefill:
		s.prefills = append(s.prefills, t)
	case ClassDecode:
		s.decodes = append(s.decodes, t)
	default:
		s.mu.Unlock()
		return fmt.Errorf("server: unknown class %q", class)
	}
	s.cond.Signal()
	s.mu.Unlock()
	<-t.done
	return nil
}

// next pops the task the policy prefers; caller holds s.mu.
func (s *Scheduler) next() *task {
	switch {
	case len(s.prefills) == 0 && len(s.decodes) == 0:
		return nil
	case len(s.prefills) == 0:
		t := s.decodes[0]
		s.decodes = s.decodes[1:]
		return t
	case len(s.decodes) == 0:
		t := s.prefills[0]
		s.prefills = s.prefills[1:]
		return t
	}
	if s.policy == PrefillFirst || s.prefills[0].seq < s.decodes[0].seq {
		t := s.prefills[0]
		s.prefills = s.prefills[1:]
		return t
	}
	t := s.decodes[0]
	s.decodes = s.decodes[1:]
	return t
}

func (s *Scheduler) worker() {
	for {
		s.mu.Lock()
		for !s.closed && len(s.prefills) == 0 && len(s.decodes) == 0 {
			s.cond.Wait()
		}
		if s.closed && len(s.prefills) == 0 && len(s.decodes) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.next()
		wait := time.Since(t.enqueued)
		st := s.stats[t.class]
		st.Executed++
		st.TotalWait += wait
		if wait > st.MaxWait {
			st.MaxWait = wait
		}
		s.mu.Unlock()

		t.run()
		close(t.done)
	}
}

// Stats snapshots per-class queue metrics.
func (s *Scheduler) Stats() map[Class]QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]QueueStats, len(s.stats))
	for c, st := range s.stats {
		out[c] = *st
	}
	return out
}

// Close drains queued work and stops the worker; subsequent Submits fail.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
