// Package server exposes the context-parallel transformer cluster behind an
// HTTP/JSON inference API with an iteration-level continuous-batching
// scheduler.
//
// The paper's batched ring pass-Q decode (§3.6) and its deployment guidance
// (§4.3) pay off when a serving system fuses many sessions into each ring
// pass. The scheduler here implements the single-host form of that advice:
// a step loop that, every iteration, assembles a mixed batch — one chunk of
// the oldest waiting prefill (chunked to a token budget so long prompts
// never starve decodes) plus the decode step of every active session, fused
// into a single DecodeBatch ring sweep. Admission control caps concurrently
// resident sessions so KV memory and queueing stay bounded, and per-class
// queue statistics plus per-iteration batch occupancy make the
// prefill/decode trade-off observable.
package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/prefixcache"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// ErrClosed reports work submitted after Close; the HTTP layer maps it to
// 503 Service Unavailable.
var ErrClosed = errors.New("server: scheduler closed")

// ErrReleased reports a request that failed because its session was
// released (or quarantined after an execution fault) mid-flight; the HTTP
// layer maps it to 409 Conflict.
var ErrReleased = errors.New("session released")

// ErrUnknownSession reports a decode for a session with no resident KV;
// the HTTP layer maps it to 404 Not Found.
var ErrUnknownSession = errors.New("unknown session")

func releasedErr(session int) error {
	return fmt.Errorf("server: session %d: %w", session, ErrReleased)
}

// ExecError wraps an internal cluster execution failure — infrastructure,
// not a malformed request; the HTTP layer maps it to 500.
type ExecError struct{ Err error }

func (e *ExecError) Error() string { return e.Err.Error() }
func (e *ExecError) Unwrap() error { return e.Err }

// Policy selects how an iteration orders its prefill chunk against its
// decode batch.
type Policy int

const (
	// FIFO runs whichever side of the mixed batch contains the oldest
	// waiting request first.
	FIFO Policy = iota
	// PrefillFirst always runs the prefill chunk before the decode batch,
	// minimizing TTFT at the cost of decode tail latency — the CP-friendly
	// schedule.
	PrefillFirst
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case PrefillFirst:
		return "prefill-first"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Class labels a request for scheduling and accounting.
type Class string

const (
	ClassPrefill Class = "prefill"
	ClassDecode  Class = "decode"
)

// QueueStats aggregates per-class scheduling metrics. For prefill, one
// execution is one chunk; for decode, one execution is one fused step of one
// session. Waits measure runnable-to-execution delay per execution.
type QueueStats struct {
	Executed  int64
	TotalWait time.Duration
	MaxWait   time.Duration
}

// MeanWait returns the average queueing delay.
func (q QueueStats) MeanWait() time.Duration {
	if q.Executed == 0 {
		return 0
	}
	return q.TotalWait / time.Duration(q.Executed)
}

// BatchStats aggregates iteration-level batching metrics.
type BatchStats struct {
	Iterations      int64   `json:"iterations"`       // step-loop iterations that executed work
	PrefillChunks   int64   `json:"prefill_chunks"`   // prefill chunks executed
	PrefillTokens   int64   `json:"prefill_tokens"`   // prompt tokens prefilled
	DecodeTokens    int64   `json:"decode_tokens"`    // decode steps executed (one token each)
	MixedIterations int64   `json:"mixed_iterations"` // iterations with both a chunk and >=1 decode
	MaxOccupancy    int     `json:"max_occupancy"`    // max sessions served by one iteration
	OccupancySum    int64   `json:"occupancy_sum"`    // for MeanOccupancy
	MaxDecodeBatch  int     `json:"max_decode_batch"` // largest fused DecodeBatch
	LastIterMs      float64 `json:"last_iter_ms"`     // duration of the most recent iteration
	TotalIterMs     float64 `json:"total_iter_ms"`    // for MeanIterMs
}

// MeanOccupancy returns the average sessions served per iteration.
func (b BatchStats) MeanOccupancy() float64 {
	if b.Iterations == 0 {
		return 0
	}
	return float64(b.OccupancySum) / float64(b.Iterations)
}

// MeanIterMs returns the average iteration latency in milliseconds.
func (b BatchStats) MeanIterMs() float64 {
	if b.Iterations == 0 {
		return 0
	}
	return b.TotalIterMs / float64(b.Iterations)
}

// IterReport describes what one scheduler iteration executed.
type IterReport struct {
	PrefillSession int   // session whose chunk ran, -1 if none
	PrefillTokens  int   // chunk size in tokens
	PrefillDone    bool  // the chunk completed its request's prompt
	DecodeSessions []int // sessions fused into the DecodeBatch ring pass
	DurMs          float64
}

// Occupancy returns the number of sessions the iteration served.
func (r IterReport) Occupancy() int {
	n := len(r.DecodeSessions)
	if r.PrefillSession >= 0 {
		n++
	}
	return n
}

// DefaultPrefixCacheTokens is the prefix tree's token budget when the config
// leaves it zero.
const DefaultPrefixCacheTokens = 1 << 16

// SchedulerConfig sizes the continuous-batching step loop.
type SchedulerConfig struct {
	Policy Policy
	// Variant selects the prefill ring algorithm; decode rides pass-Q.
	// perf.Auto selects per chunk from the measured KV-cache miss rate
	// (Equation 1): pass-KV at or above the 2·NKV/NH threshold, pass-Q
	// below it — so prefix-cache hits steer warm prefills onto pass-Q.
	Variant     perf.Variant
	TokenBudget int // max prompt tokens prefilled per iteration (default 32)
	MaxBatch    int // max sessions fused into one DecodeBatch (default 64)
	MaxSessions int // admission cap on resident sessions (default 256)
	MaxTokens   int // cap on a single generate's max_tokens (default 4096)
	// PrefixCacheTokens bounds the prefix-reuse tree that released sessions
	// detach their KV into (block size = TokenBudget). 0 = the default
	// budget; negative disables prefix reuse entirely.
	PrefixCacheTokens int
	// Recover arms fault recovery: cluster infrastructure failures (a dead
	// rank, a broken control plane) trigger an epoch rebuild and a
	// bit-identical replay of every live session's token log instead of
	// faulting the sessions. Requires keeping a per-session token log.
	Recover bool
	// MaxRecoveries bounds the scheduler's lifetime rebuild attempts
	// (default 3 when Recover is set). Once spent, further infrastructure
	// failures fault sessions exactly as they do with Recover off.
	MaxRecoveries int
	// Manual disables the background step loop; callers drive iterations
	// with Step. Tests use this to pin down exactly what one iteration
	// batches.
	Manual bool
	// BrownoutSLO arms brownout overload control: while the p90 queue wait
	// over the most recent observation window exceeds this bound, new-session
	// admissions are rejected — and waiting admissions already past the bound
	// are shed — with an OverloadError (HTTP 429 + Retry-After). Resident
	// sessions keep decoding. 0 disables brownout.
	BrownoutSLO time.Duration
	// Cohorts pre-registers workload cohort labels: each named cohort gets
	// its cp_cohort_{ttft,itl,e2e}_seconds histograms and request counter up
	// front (exposed at zero before traffic), and the label pool admits a
	// few more seen at runtime before folding the rest into "other" —
	// bounded cardinality no matter what clients send.
	Cohorts []string
}

func (c *SchedulerConfig) applyDefaults() {
	if c.TokenBudget <= 0 {
		c.TokenBudget = 32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 4096
	}
	if c.PrefixCacheTokens == 0 {
		c.PrefixCacheTokens = DefaultPrefixCacheTokens
	}
	if c.Recover && c.MaxRecoveries <= 0 {
		c.MaxRecoveries = 3
	}
}

// ReuseStats aggregates prefix-reuse and variant-selection telemetry. Token
// counts cover prompt prefill only: cached tokens were served from the
// prefix tree, computed tokens went through a ring pass.
type ReuseStats struct {
	Lookups        int64 `json:"lookups"`         // first-chunk prefix-tree consultations
	Hits           int64 `json:"hits"`            // lookups that adopted a cached prefix
	CachedTokens   int64 `json:"cached_tokens"`   // prompt tokens adopted from the tree
	ComputedTokens int64 `json:"computed_tokens"` // prompt tokens prefilled on the ring
	Detached       int64 `json:"detached"`        // released sessions that donated KV
	DetachedTokens int64 `json:"detached_tokens"` // tokens those donations added
	PassKVChunks   int64 `json:"pass_kv_chunks"`  // chunks run as ring pass-KV
	PassQChunks    int64 `json:"pass_q_chunks"`   // chunks run as ring pass-Q
	// CapacityQuarantines counts sessions shed because their KV append
	// would not fit a rank's cache even after evicting prefix-tree LRU.
	CapacityQuarantines int64 `json:"capacity_quarantines"`
}

// HitRate returns cached prompt tokens over all prompt tokens.
func (r ReuseStats) HitRate() float64 {
	total := r.CachedTokens + r.ComputedTokens
	if total == 0 {
		return 0
	}
	return float64(r.CachedTokens) / float64(total)
}

// request is one client call moving through the scheduler: an optional
// prefill phase (prompt consumed in token-budget chunks) followed by zero or
// more decode steps that join the per-iteration fused batch.
type request struct {
	id      uint64
	session int

	prompt   []int // tokens to prefill; nil for decode-only requests
	consumed int   // chunk progress
	// adopted is the prefix-tree hit this request's session was seeded
	// with, held until the first miss-suffix chunk succeeds so the hit
	// accounting lands exactly once — even when a chunk failure and
	// recovery make runPrefillChunk re-enter with consumed > 0.
	adopted int

	pending int   // decode steps remaining
	token   int   // token feeding the next decode step
	collect bool  // generate-style: accumulate tokens and per-step latency
	tokens  []int // generated tokens (collect)

	start    time.Time // arrival
	queuedAt time.Time // when the current phase last became runnable
	lastStep time.Time // previous step completion, for TTIT
	ttftMs   float64
	ttitMs   []float64

	// noCache opts this request out of prefix reuse: no tree lookup for its
	// prompt, and its session never donates KV on release.
	noCache bool

	// cohort is the request's canonical workload-cohort label ("" when the
	// client sent none): per-cohort latency histograms and span args key off
	// it. Canonicalized through the label pool at submit, so an unknown
	// cohort lands on "other" instead of minting a series.
	cohort string

	next int // next-token result for prefill-/decode-only requests
	err  error
	done chan struct{}
	// canceled is set (under the scheduler mutex) when the client's
	// context fires while the iteration has already claimed this request;
	// the step loop aborts it at the next chunk/step boundary.
	canceled    bool
	cancelCause error
}

// Scheduler is the continuous-batching engine. All cluster execution happens
// on the step loop (or the Step caller in manual mode), so the cluster needs
// no internal locking; WithCluster serializes outside reads against it.
type Scheduler struct {
	cfg     SchedulerConfig
	cluster *transformer.Cluster

	mu        sync.Mutex
	cond      *sync.Cond
	admit     []*request // new sessions waiting for an admission slot
	prefills  []*request // prefill-phase queue, FIFO; head progresses chunk-wise
	decodes   []*request // decode-phase pool, fused each iteration
	sessions  map[int]bool
	prefilled map[int]bool // sessions with at least one chunk of KV resident
	// pendingDrops are sessions whose KV must be evicted (releases detach
	// their canonical prefix into the prefix tree first). Drops execute at
	// the start of the next Step — on the same thread as all other cluster
	// mutations — so an eviction can never race an in-flight chunk or
	// fused batch, nor land after a re-admitted same-id session's fresh
	// prefill.
	pendingDrops []sessionDrop
	// canonical tracks, per session, the aligned token prefix whose per-rank
	// KV placement matches a cold prefill's: it grows only while prefill
	// chunks land exactly on TokenBudget boundaries with full-budget length,
	// and freezes forever at the first tail chunk or decode step. Only this
	// prefix is ever detached into the prefix tree — the alignment that
	// makes adopted KV bit-identical to recomputation.
	canonical map[int]int
	history   map[int][]int // the canonical prefix's tokens, len == canonical
	noDetach  map[int]bool  // sessions opted out of donating KV (no_cache)
	// log is the per-session token log recovery replays (Recover mode
	// only): one segment per uninterrupted run of prefill chunks or decode
	// steps, in residency order. Its invariant is exact agreement with the
	// cluster: a token is appended when — and only when — its KV landed.
	// Prefill segments replay as chunked prefills, decode segments as
	// decode steps, so the per-rank KV placement (and every later logit)
	// reproduces the original bit for bit.
	log map[int][]logSeg
	// needRecovery carries the first unhandled infrastructure failure; the
	// step loop runs an epoch rebuild + replay before any other work. Only
	// set when cfg.Recover armed the subsystem.
	needRecovery error
	recStats     RecoveryStats
	watchStop    chan struct{}
	// executing is the prefill head whose chunk the current iteration is
	// running; cancellation must not remove it mid-chunk, but may between
	// iterations.
	executing *request
	closed    bool
	idSeq     uint64

	queueStats map[Class]*QueueStats
	batch      BatchStats
	lastIter   IterReport
	reuse      ReuseStats

	// rec is the cluster's trace recorder (nil = tracing off; every handle
	// below is then a nil no-op). The scheduler records serving-layer latency
	// histograms and per-request spans into it; the ring layers record the
	// per-sweep phase breakdowns into the same store.
	rec    *trace.Recorder
	hTTFT  *trace.Series // cp_request_ttft_seconds
	hITL   *trace.Series // cp_request_itl_seconds
	hStep  *trace.Series // cp_step_seconds
	hWait  map[Class]*trace.Series
	cChunk *trace.Series // cp_prefill_chunks_total

	// cohorts bounds cohort-label cardinality; cohortSeries caches the
	// per-cohort handle set (guarded by s.mu).
	cohorts      *trace.LabelPool
	cohortSeries map[string]*cohortHandles

	// Overload-control state (overload.go): cached brownout verdict, the
	// previous queue-wait snapshot it was computed against, and the
	// deadline/shed/Retry-After counters surfaced in /v1/stats and /metrics.
	overload     OverloadStats
	brownoutPrev trace.SeriesSnap
	brownoutAt   time.Time
	brownoutOn   bool
	cDeadline    *trace.Series // cp_overload_deadline_expired_total
	cShed        *trace.Series // cp_overload_shed_total
	cRetryAfter  *trace.Series // cp_overload_retry_after_total

	// tree is the prefix-reuse radix tree, nil when disabled. All tree
	// operations that touch rank KV caches (lookup-adopt, detach-insert,
	// eviction) run on the step-loop thread under execMu.
	tree *prefixcache.Tree

	execMu   sync.Mutex // serializes cluster access (step loop vs. WithCluster)
	loopDone chan struct{}
}

// sessionDrop is a scheduled KV eviction; detach donates the session's
// canonical prefix to the tree first (false after faults — indeterminate KV
// must never seed other sessions).
type sessionDrop struct {
	session int
	detach  bool
}

// NewScheduler wraps a cluster in a continuous-batching step loop. Unless
// cfg.Manual is set, a background goroutine drives iterations until Close.
func NewScheduler(cluster *transformer.Cluster, cfg SchedulerConfig) *Scheduler {
	cfg.applyDefaults()
	s := &Scheduler{
		cfg:       cfg,
		cluster:   cluster,
		sessions:  make(map[int]bool),
		prefilled: make(map[int]bool),
		canonical: make(map[int]int),
		history:   make(map[int][]int),
		noDetach:  make(map[int]bool),
		log:       make(map[int][]logSeg),
		watchStop: make(chan struct{}),
		queueStats: map[Class]*QueueStats{
			ClassPrefill: {}, ClassDecode: {},
		},
		lastIter: IterReport{PrefillSession: -1},
		loopDone: make(chan struct{}),
	}
	s.rec = cluster.Recorder()
	s.hTTFT = s.rec.Hist("cp_request_ttft_seconds")
	s.hITL = s.rec.Hist("cp_request_itl_seconds")
	s.hStep = s.rec.Hist("cp_step_seconds")
	s.hWait = map[Class]*trace.Series{
		ClassPrefill: s.rec.Hist("cp_queue_wait_seconds", trace.L("class", string(ClassPrefill))),
		ClassDecode:  s.rec.Hist("cp_queue_wait_seconds", trace.L("class", string(ClassDecode))),
	}
	s.cChunk = s.rec.CounterSeries("cp_prefill_chunks_total")
	s.cohorts = trace.NewLabelPool(0, cfg.Cohorts...)
	s.cohortSeries = make(map[string]*cohortHandles)
	if len(cfg.Cohorts) > 0 {
		// Pre-register configured cohorts (plus the overflow label unknown
		// names fold into) so /metrics exposes their series at zero before
		// any traffic — a dashboard must distinguish "no chat requests yet"
		// from "no chat series".
		s.mu.Lock()
		s.cohortHandlesLocked(trace.OverflowLabel)
		for _, name := range cfg.Cohorts {
			s.cohortHandlesLocked(s.cohorts.Canon(name))
		}
		s.mu.Unlock()
	}
	s.cDeadline = s.rec.CounterSeries("cp_overload_deadline_expired_total")
	s.cShed = s.rec.CounterSeries("cp_overload_shed_total")
	s.cRetryAfter = s.rec.CounterSeries("cp_overload_retry_after_total")
	s.recStats.Enabled = cfg.Recover
	s.recStats.MaxRecoveries = cfg.MaxRecoveries
	s.recStats.Epoch = cluster.Epoch()
	if cfg.PrefixCacheTokens > 0 {
		// Block size must equal the chunk budget: hits are only bit-exact at
		// canonical chunk boundaries. Config was validated by applyDefaults,
		// so construction cannot fail.
		s.tree, _ = prefixcache.New(prefixcache.Config{
			BlockSize: cfg.TokenBudget,
			Capacity:  cfg.PrefixCacheTokens,
		})
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Recover {
		go s.watchFailures()
	}
	if cfg.Manual {
		close(s.loopDone)
	} else {
		go s.loop()
	}
	return s
}

// GenerateResult is a completed generate request.
type GenerateResult struct {
	Tokens []int
	TTFTMs float64
	TTITMs []float64
}

// RequestOptions tunes one request's scheduling.
type RequestOptions struct {
	// NoPrefixCache opts the request out of prefix reuse: its prompt is
	// never served from the tree and its session never donates KV on
	// release — the per-request opt-out for prompts that must not be
	// shared across sessions.
	NoPrefixCache bool
	// Cohort tags the request with its workload class for per-cohort
	// latency attribution. "" leaves the request untagged; an unregistered
	// name past the label-pool cap is recorded as "other".
	Cohort string
}

// cohortHandles is one cohort's resolved metric set.
type cohortHandles struct {
	ttft *trace.Series // cp_cohort_ttft_seconds{cohort=}
	itl  *trace.Series // cp_cohort_itl_seconds{cohort=}
	e2e  *trace.Series // cp_cohort_e2e_seconds{cohort=}
	req  *trace.Series // cp_cohort_requests_total{cohort=}
}

// cohortHandlesLocked resolves (creating if absent) a canonical cohort's
// metric handles; caller holds s.mu and must pass a pool-canonical name.
func (s *Scheduler) cohortHandlesLocked(name string) *cohortHandles {
	if h, ok := s.cohortSeries[name]; ok {
		return h
	}
	l := trace.L("cohort", name)
	h := &cohortHandles{
		ttft: s.rec.Hist("cp_cohort_ttft_seconds", l),
		itl:  s.rec.Hist("cp_cohort_itl_seconds", l),
		e2e:  s.rec.Hist("cp_cohort_e2e_seconds", l),
		req:  s.rec.CounterSeries("cp_cohort_requests_total", l),
	}
	s.cohortSeries[name] = h
	return h
}

// cohortObserve records one sample into a cohort histogram picked by sel;
// no-op for untagged requests.
func (s *Scheduler) cohortObserve(cohort string, sel func(*cohortHandles) *trace.Series, v float64) {
	if cohort == "" {
		return
	}
	s.mu.Lock()
	h := s.cohortHandlesLocked(cohort)
	s.mu.Unlock()
	sel(h).Observe(v)
}

// Cohorts snapshots the registered cohort names (sorted), for the
// /v1/stats by-cohort latency block.
func (s *Scheduler) Cohorts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.cohortSeries))
	for name := range s.cohortSeries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Generate admits a prompt, prefills it chunk by chunk, then keeps the
// session in the fused decode batch until maxTokens greedy tokens exist.
// Blocks until completion or ctx cancellation (cancellation takes effect
// while the request is queued; claimed work runs to its next boundary).
func (s *Scheduler) Generate(ctx context.Context, session int, prompt []int, maxTokens int) (*GenerateResult, error) {
	return s.GenerateWith(ctx, session, prompt, maxTokens, RequestOptions{})
}

// GenerateWith is Generate with per-request options.
func (s *Scheduler) GenerateWith(ctx context.Context, session int, prompt []int, maxTokens int, opts RequestOptions) (*GenerateResult, error) {
	if len(prompt) == 0 || maxTokens <= 0 {
		return nil, fmt.Errorf("server: generate needs a prompt and positive max_tokens")
	}
	if maxTokens > s.cfg.MaxTokens {
		// One stream must not pin a decode lane (and grow per-rank KV)
		// effectively forever.
		return nil, fmt.Errorf("server: max_tokens %d exceeds cap %d", maxTokens, s.cfg.MaxTokens)
	}
	r := &request{
		session: session,
		prompt:  prompt,
		pending: maxTokens - 1,
		collect: true,
		noCache: opts.NoPrefixCache,
		done:    make(chan struct{}),
	}
	if opts.Cohort != "" {
		r.cohort = s.cohorts.Canon(opts.Cohort)
	}
	if err := s.submit(ctx, r); err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	return &GenerateResult{Tokens: r.tokens, TTFTMs: r.ttftMs, TTITMs: r.ttitMs}, nil
}

// Prefill admits the tokens as chunked prefill work for the session and
// returns the greedy next token once the whole prompt is resident.
func (s *Scheduler) Prefill(ctx context.Context, session int, tokens []int) (int, error) {
	return s.PrefillWith(ctx, session, tokens, RequestOptions{})
}

// PrefillWith is Prefill with per-request options.
func (s *Scheduler) PrefillWith(ctx context.Context, session int, tokens []int, opts RequestOptions) (int, error) {
	if len(tokens) == 0 {
		return 0, fmt.Errorf("server: prefill needs tokens")
	}
	r := &request{session: session, prompt: tokens, noCache: opts.NoPrefixCache, done: make(chan struct{})}
	if opts.Cohort != "" {
		r.cohort = s.cohorts.Canon(opts.Cohort)
	}
	if err := s.submit(ctx, r); err != nil {
		return 0, err
	}
	return r.next, r.err
}

// Decode joins the next iteration's fused decode batch with one token for an
// already-prefilled session and returns the greedy next token.
func (s *Scheduler) Decode(ctx context.Context, session, token int) (int, error) {
	r := &request{session: session, pending: 1, token: token, done: make(chan struct{})}
	if err := s.submit(ctx, r); err != nil {
		return 0, err
	}
	return r.next, r.err
}

// submit enqueues the request and blocks until it completes, fails, or —
// while still queued — its context is canceled. A disconnected client must
// not leak a goroutine parked in the admission queue forever.
func (s *Scheduler) submit(ctx context.Context, r *request) error {
	// Validate before the request can occupy — or block on — an admission
	// slot: a doomed request must fail fast even under backpressure, not
	// wait for capacity it will never use (nor reach the ring, where a
	// mid-pass failure stalls every peer rank).
	if r.session < 0 {
		return fmt.Errorf("server: negative session id %d", r.session)
	}
	vocab := s.cluster.W.Cfg.Model.VocabSize
	for _, tok := range r.prompt {
		if tok < 0 || tok >= vocab {
			return fmt.Errorf("server: token %d outside vocab %d", tok, vocab)
		}
	}
	if len(r.prompt) == 0 && (r.token < 0 || r.token >= vocab) {
		return fmt.Errorf("server: token %d outside vocab %d", r.token, vocab)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.idSeq++
	r.id = s.idSeq
	if r.noCache {
		s.noDetach[r.session] = true
	}
	now := time.Now()
	r.start, r.queuedAt, r.lastStep = now, now, now
	if len(r.prompt) > 0 {
		if s.sessions[r.session] {
			// Follow-up turn of a resident session: no new admission slot.
			s.prefills = append(s.prefills, r)
		} else {
			if s.brownoutLocked(now) {
				// Brownout: new sessions are the lowest-priority work — shed
				// this one (and any queued admission already past the SLO)
				// rather than deepen a backlog we cannot drain in time.
				s.shedAdmitQueueLocked(now)
				s.overload.BrownoutShed++
				s.cShed.Inc(1)
				ra := s.retryAfterLocked()
				s.mu.Unlock()
				return &OverloadError{RetryAfter: ra}
			}
			s.admit = append(s.admit, r)
			s.admitLocked()
		}
	} else {
		if !s.prefilled[r.session] {
			s.mu.Unlock()
			return fmt.Errorf("server: session %d: %w", r.session, ErrUnknownSession)
		}
		s.decodes = append(s.decodes, r)
	}
	cls := ClassDecode
	if len(r.prompt) > 0 {
		cls = ClassPrefill
	}
	s.rec.CounterSeries("cp_requests_total", trace.L("class", string(cls))).Inc(1)
	if r.cohort != "" {
		s.cohortHandlesLocked(r.cohort).req.Inc(1)
	}
	s.cond.Signal()
	s.mu.Unlock()
	select {
	case <-r.done:
		return nil
	case <-ctx.Done():
		if s.cancelQueued(r, ctx.Err()) {
			return nil // r.err carries the cancellation
		}
		// Claimed by an iteration (or completing); the canceled mark makes
		// the step loop abort it at the next chunk/step boundary.
		<-r.done
		return nil
	}
}

// cancelQueued removes a still-queued request, failing it with the given
// cause. The prefill head is only protected while the step loop is
// actually running its chunk (it identifies the head by queue position);
// between iterations a multi-chunk prompt cancels cleanly at the boundary,
// with any partial KV covered by the scheduled drop.
func (s *Scheduler) cancelQueued(r *request, cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	remove := func(q []*request, protectExecuting bool) ([]*request, bool) {
		for i, x := range q {
			if x == r {
				if protectExecuting && i == 0 && s.executing == r {
					return q, false
				}
				return append(q[:i], q[i+1:]...), true
			}
		}
		return q, false
	}
	var ok bool
	inPrefills, inDecodes := false, false
	if s.admit, ok = remove(s.admit, false); !ok {
		if s.prefills, ok = remove(s.prefills, true); !ok {
			s.decodes, ok = remove(s.decodes, false)
			inDecodes = ok
		} else {
			inPrefills = true
		}
	}
	if ok {
		r.cancelCause = cause
		// Evict only what THIS request contributed: partial prompt KV is
		// unusable, and a decode-phase generate stream's session will
		// never see its DELETE. A request canceled in the admission queue
		// (or before its first chunk) contributed nothing — its session id
		// may be concurrently in use by a sibling request's live KV.
		s.abortCanceledLocked(r, (inPrefills && r.consumed > 0) || (inDecodes && r.collect))
	} else {
		// The current iteration holds this request (executing prefill head
		// or popped into the decode batch); flag it for a boundary abort.
		r.canceled = true
		r.cancelCause = cause
	}
	return ok
}

// abortCanceledLocked completes a claimed-then-canceled request at a
// boundary; caller holds s.mu. With evict set (partial prompt KV, or a
// generate stream whose client will never issue the DELETE), the session
// is quarantined exactly like a failed chunk. A session left with no KV
// and no queued work — including one that never prefilled at all — gives
// its admission slot back to the pool. (An executing prefill head is still
// in the queue, so sessionQueuedLocked protects in-flight same-session
// work.)
func (s *Scheduler) abortCanceledLocked(r *request, evict bool) {
	r.err = fmt.Errorf("server: request canceled: %w", r.cancelCause)
	close(r.done)
	s.noteDeadlineLocked(r.cancelCause)
	if evict {
		s.quarantineLocked(r.session)
	}
	s.maybeFreeSlotLocked(r.session)
	s.cond.Broadcast()
}

// admitLocked moves waiting new sessions into the prefill queue while
// admission slots remain; caller holds s.mu.
func (s *Scheduler) admitLocked() {
	for len(s.admit) > 0 {
		r := s.admit[0]
		if !s.sessions[r.session] && len(s.sessions) >= s.cfg.MaxSessions {
			return // backpressure: the queue waits for a Release
		}
		s.sessions[r.session] = true
		s.admit = s.admit[1:]
		// Queue waits measure runnable-to-execution delay; time parked
		// behind the admission cap is a different (observable) metric.
		r.queuedAt = time.Now()
		s.prefills = append(s.prefills, r)
	}
}

// quarantineLocked evicts a session's KV (scheduling the drop) and marks it
// un-decodable; caller holds s.mu and should broadcast after. Quarantined KV
// is indeterminate (a fault or cancellation mid-flight) and must never
// donate to the prefix tree.
func (s *Scheduler) quarantineLocked(session int) {
	delete(s.prefilled, session)
	s.pendingDrops = append(s.pendingDrops, sessionDrop{session: session})
}

// maybeFreeSlotLocked returns a session's admission slot to the pool when
// it holds no KV and no queued work references it; caller holds s.mu and
// should broadcast after.
func (s *Scheduler) maybeFreeSlotLocked(session int) {
	if !s.prefilled[session] && !s.sessionQueuedLocked(session) {
		delete(s.sessions, session)
		s.admitLocked()
	}
}

func (s *Scheduler) hasWorkLocked() bool {
	return len(s.admit) > 0 || len(s.prefills) > 0 || len(s.decodes) > 0 ||
		len(s.pendingDrops) > 0 || s.needRecovery != nil
}

func (s *Scheduler) loop() {
	defer close(s.loopDone)
	for {
		s.mu.Lock()
		for !s.closed && !s.hasWorkLocked() {
			s.cond.Wait()
		}
		if !s.hasWorkLocked() { // closed and drained
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if _, ok := s.step(); !ok {
			// Work exists but cannot run (all of it blocked on admission).
			// A Release will signal; avoid a hot spin by waiting for it.
			s.mu.Lock()
			if !s.closed && s.onlyAdmitBlockedLocked() {
				s.cond.Wait()
			}
			s.mu.Unlock()
		}
	}
}

func (s *Scheduler) onlyAdmitBlockedLocked() bool {
	return len(s.admit) > 0 && len(s.prefills) == 0 && len(s.decodes) == 0
}

// Step executes one scheduler iteration in manual mode: at most one
// token-budget chunk of the oldest waiting prefill plus one fused
// DecodeBatch ring pass over every decode-ready session (capped at
// MaxBatch, at most one step per session). Returns false if no work was
// runnable — or always, as a no-op, when a background loop owns the
// scheduler: a second driver would race the loop and double-execute the
// claimed prefill chunk.
func (s *Scheduler) Step() (IterReport, bool) {
	if !s.cfg.Manual {
		return IterReport{PrefillSession: -1}, false
	}
	return s.step()
}

// step runs one iteration; callers are the background loop or Step.
func (s *Scheduler) step() (IterReport, bool) {
	s.applyDrops() // evictions are loop-ordered: never racing chunk or batch
	// Recovery runs after drops (so released sessions are already out of
	// the replay set) and before any chunk or batch touches the cluster.
	s.maybeRecover()
	s.mu.Lock()
	s.admitLocked()
	var pj *request
	if len(s.prefills) > 0 {
		pj = s.prefills[0]
		// A Release may have queued this session's eviction after this
		// iteration's applyDrops ran (re-admitted same-id session). Its
		// chunk must wait one iteration so the drop lands first — never
		// after fresh KV.
		for _, d := range s.pendingDrops {
			if d.session == pj.session {
				pj = nil
				break
			}
		}
	}
	s.executing = pj
	var dbatch []*request
	var held []*request
	used := map[int]bool{}
	if pj != nil {
		// A session never prefills and decodes in the same iteration: the
		// two cluster calls would disagree about its sequence positions.
		used[pj.session] = true
	}
	var deadSessions []int
	for _, r := range s.decodes {
		switch {
		case !s.prefilled[r.session]:
			// The session was released (or lost its KV) after this request
			// queued; it must not reach the fused batch.
			r.err = releasedErr(r.session)
			close(r.done)
			deadSessions = append(deadSessions, r.session)
		case len(dbatch) < s.cfg.MaxBatch && !used[r.session]:
			used[r.session] = true
			dbatch = append(dbatch, r)
		default:
			held = append(held, r)
		}
	}
	s.decodes = held
	// Failing those requests may have been the last thing keeping their
	// quarantined sessions' admission slots occupied.
	for _, id := range deadSessions {
		s.maybeFreeSlotLocked(id)
	}
	if pj == nil && len(dbatch) == 0 {
		s.mu.Unlock()
		return IterReport{PrefillSession: -1}, false
	}
	now := time.Now()
	if pj != nil {
		s.recordWaitLocked(ClassPrefill, now.Sub(pj.queuedAt), pj.cohort)
	}
	for _, r := range dbatch {
		s.recordWaitLocked(ClassDecode, now.Sub(r.queuedAt), r.cohort)
	}
	prefillLeads := s.cfg.Policy == PrefillFirst ||
		(pj != nil && (len(dbatch) == 0 || pj.id < dbatch[0].id))
	s.mu.Unlock()

	report := IterReport{PrefillSession: -1}
	start := time.Now()
	if pj != nil {
		report.PrefillSession = pj.session
	}
	if prefillLeads {
		report.PrefillDone = s.runPrefillChunk(pj, &report)
		s.runDecodeBatch(dbatch, &report)
	} else {
		s.runDecodeBatch(dbatch, &report)
		report.PrefillDone = s.runPrefillChunk(pj, &report)
	}
	report.DurMs = float64(time.Since(start).Microseconds()) / 1000
	s.hStep.Observe(time.Since(start).Seconds())

	s.mu.Lock()
	b := &s.batch
	b.Iterations++
	b.OccupancySum += int64(report.Occupancy())
	if report.Occupancy() > b.MaxOccupancy {
		b.MaxOccupancy = report.Occupancy()
	}
	if len(report.DecodeSessions) > b.MaxDecodeBatch {
		b.MaxDecodeBatch = len(report.DecodeSessions)
	}
	if pj != nil {
		b.PrefillChunks++
		b.PrefillTokens += int64(report.PrefillTokens)
	}
	b.DecodeTokens += int64(len(report.DecodeSessions))
	if pj != nil && len(report.DecodeSessions) > 0 {
		b.MixedIterations++
	}
	b.LastIterMs = report.DurMs
	b.TotalIterMs += report.DurMs
	s.lastIter = report
	s.mu.Unlock()
	return report, true
}

// runPrefillChunk executes one chunk on the cluster and advances or
// completes its request. The first chunk of a fresh sequence consults the
// prefix tree and seeds the session from the longest cached prefix; every
// chunk is aligned to absolute TokenBudget boundaries and, under perf.Auto,
// selects its ring variant from the chunk's miss rate (Equation 1). Returns
// true when the request's prompt finished.
func (s *Scheduler) runPrefillChunk(pj *request, report *IterReport) bool {
	if pj == nil {
		return false
	}
	s.execMu.Lock()
	lookedUp := false
	if s.tree != nil && pj.consumed == 0 && !pj.noCache && s.cluster.SeqLen(pj.session) == 0 {
		lookedUp = true
		if hit, entry := s.tree.Lookup(pj.prompt); hit > 0 {
			if pre, ok := entry.(*transformer.PrefixKV); ok {
				tAdopt := time.Now()
				if err := s.cluster.AdoptPrefix(pj.session, pre); err == nil {
					s.rec.CounterSeries("cp_prefix_adopt_total").Inc(1)
					if s.rec != nil {
						s.rec.RecordSpan(trace.Span{
							Name: "prefix.adopt", Cat: "cache", Rank: trace.CoordinatorRank, Seq: pj.session,
							Start: tAdopt.UnixNano(), Dur: time.Since(tAdopt).Nanoseconds(),
							Args: map[string]int64{"tokens": int64(hit)},
						})
					}
					pj.adopted = hit
					pj.consumed = hit
					// The adopted KV is resident now, so the token log and
					// the canonical-prefix bookkeeping update now —
					// deferring them to the chunk's success would
					// desynchronize them from the cluster if the chunk
					// fails and recovery replays the session (the retried
					// chunk re-enters with consumed > 0 and never takes
					// this branch again).
					s.mu.Lock()
					s.appendLogLocked(pj.session, false, pj.prompt[:hit])
					s.canonical[pj.session] = hit
					s.history[pj.session] = append([]int(nil), pj.prompt[:hit]...)
					s.mu.Unlock()
				}
			}
		}
	}
	pos := s.cluster.SeqLen(pj.session)
	// Align chunks to absolute multiples of the budget: per-rank KV
	// placement (and the auto variant choice) is then a pure function of
	// position, which is what lets a cached prefix replay a cold prefill
	// bit for bit.
	rem := len(pj.prompt) - pj.consumed
	n := s.cfg.TokenBudget - pos%s.cfg.TokenBudget
	if n > rem {
		n = rem
	}
	chunk := pj.prompt[pj.consumed : pj.consumed+n]
	report.PrefillTokens = len(chunk)
	variant := s.cfg.Variant
	if variant == perf.Auto {
		variant = perf.ChooseVariant(s.cluster.W.Cfg.Model, len(chunk), pos)
	}
	tChunk := time.Now()
	logits, err := s.cluster.Prefill(pj.session, chunk, variant)
	evictReq := len(chunk)
	for err != nil {
		// A rank ran out of KV room before touching any cache. Cold tree
		// branches are worth less than a live request: keep shedding LRU
		// leaves and retrying while the tree can still shrink — an evicted
		// leaf whose pages a live sequence pins frees no physical rows, so
		// a single eviction proves nothing. Doubling the request bounds the
		// retries logarithmically in the tree size.
		var ce *transformer.CapacityError
		if !errors.As(err, &ce) || s.tree == nil || s.tree.EvictTokens(evictReq) == 0 {
			break
		}
		evictReq *= 2
		logits, err = s.cluster.Prefill(pj.session, chunk, variant)
	}
	s.execMu.Unlock()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.executing = nil
	if lookedUp {
		s.reuse.Lookups++
	}
	if len(s.prefills) == 0 || s.prefills[0] != pj {
		// A concurrent Release purged this request (and completed it with
		// a released error) while its chunk was executing. The chunk's KV
		// is covered by the Release's pending drop, which the next Step
		// applies before any re-admitted same-id session can prefill.
		return false
	}
	if pj.canceled {
		// The client vanished while this chunk ran; stop burning ring
		// passes on its prompt. The chunk's KV is quarantined.
		s.prefills = s.prefills[1:]
		s.abortCanceledLocked(pj, true)
		return false
	}
	if err != nil {
		var ce *transformer.CapacityError
		if !errors.As(err, &ce) && s.recoveryArmedLocked() {
			// Infrastructure failure with recovery armed: the request stays
			// at the queue head and its session keeps its state — the next
			// iteration rebuilds the cluster, replays the token log (which
			// covers everything up to pj.consumed), and retries this chunk.
			s.scheduleRecoveryLocked(fmt.Errorf("prefill chunk for session %d: %w", pj.session, err))
			return false
		}
		if errors.As(err, &ce) {
			s.reuse.CapacityQuarantines++
		}
		s.prefills = s.prefills[1:]
		pj.err = &ExecError{fmt.Errorf("prefill: %w", err)}
		close(pj.done)
		// A failed chunk leaves indeterminate partial KV: quarantine the
		// session so nothing decodes against it, and — if no other queued
		// work references it — free its admission slot rather than holding
		// it hostage.
		s.quarantineLocked(pj.session)
		s.maybeFreeSlotLocked(pj.session)
		s.cond.Broadcast()
		return false
	}
	// Hit accounting lands only once the first miss-suffix chunk succeeds:
	// an adoption whose request then fails (and is quarantined) served the
	// client nothing, and must not inflate the reported hit rate. The
	// pending count rides the request, not the stack, so a chunk retried
	// after recovery still settles it.
	if pj.adopted > 0 {
		s.reuse.Hits++
		s.reuse.CachedTokens += int64(pj.adopted)
		pj.adopted = 0
	}
	s.reuse.ComputedTokens += int64(len(chunk))
	s.appendLogLocked(pj.session, false, chunk)
	s.cChunk.Inc(1)
	if s.rec != nil {
		args := map[string]int64{"tokens": int64(len(chunk)), "pos": int64(pos)}
		if pj.cohort != "" {
			args["cohort"] = s.cohorts.ID(pj.cohort)
		}
		s.rec.RecordSpan(trace.Span{
			Name: "prefill.chunk", Cat: "prefill", Rank: trace.CoordinatorRank, Seq: pj.session,
			Start: tChunk.UnixNano(), Dur: now.Sub(tChunk).Nanoseconds(),
			Args: args,
		})
	}
	if variant == perf.PassQ {
		s.reuse.PassQChunks++
	} else {
		s.reuse.PassKVChunks++
	}
	// The canonical prefix grows only through full-budget chunks landing
	// exactly on its frontier; the first tail chunk or decode step freezes
	// it for good. Only canonical tokens may ever enter the prefix tree.
	if pos == s.canonical[pj.session] && pos%s.cfg.TokenBudget == 0 && len(chunk) == s.cfg.TokenBudget {
		s.canonical[pj.session] = pos + len(chunk)
		s.history[pj.session] = append(s.history[pj.session], chunk...)
	}
	s.prefilled[pj.session] = true
	pj.consumed += len(chunk)
	if pj.consumed < len(pj.prompt) {
		pj.queuedAt = now // next chunk becomes runnable now
		return false
	}
	s.prefills = s.prefills[1:]
	next := transformer.Argmax(logits[len(logits)-1])
	pj.ttftMs = float64(now.Sub(pj.start).Microseconds()) / 1000
	s.hTTFT.Observe(now.Sub(pj.start).Seconds())
	if pj.cohort != "" {
		s.cohortHandlesLocked(pj.cohort).ttft.Observe(now.Sub(pj.start).Seconds())
	}
	pj.next = next
	pj.lastStep = now
	if pj.collect {
		pj.tokens = append(pj.tokens, next)
	}
	if pj.pending > 0 {
		pj.token = next
		pj.queuedAt = now
		s.decodes = append(s.decodes, pj)
		s.cond.Signal()
		return true
	}
	if pj.cohort != "" {
		s.cohortHandlesLocked(pj.cohort).e2e.Observe(now.Sub(pj.start).Seconds())
	}
	close(pj.done)
	return true
}

// runDecodeBatch advances every request in the batch by one fused ring pass
// and requeues the ones with steps remaining.
func (s *Scheduler) runDecodeBatch(dbatch []*request, report *IterReport) {
	if len(dbatch) == 0 {
		return
	}
	var out [][]float32
	var err error
	evictReq := 0
	tBatch := time.Now()
	for len(dbatch) > 0 {
		ids := make([]int, len(dbatch))
		toks := make([]int, len(dbatch))
		for i, r := range dbatch {
			ids[i] = r.session
			toks[i] = r.token
		}
		s.execMu.Lock()
		out, err = s.cluster.DecodeBatch(ids, toks)
		var ce *transformer.CapacityError
		if err != nil && errors.As(err, &ce) {
			// Capacity pressure surfaces before any ring pass or cache
			// mutation, so it is safe to shed load and retry. First reclaim
			// cold prefix-tree branches — repeatedly, since an evicted leaf
			// whose pages a live sequence pins frees no physical rows, with
			// the request doubling each round so retries stay logarithmic
			// in the tree size; once it cannot shrink, quarantine exactly
			// the offending sessions and rerun the rest of the batch — the
			// survivors were prechecked to fit.
			if evictReq == 0 {
				evictReq = len(ce.Seqs)
			} else {
				evictReq *= 2
			}
			if s.tree != nil && s.tree.EvictTokens(evictReq) > 0 {
				s.execMu.Unlock()
				continue
			}
			s.execMu.Unlock()
			bad := make(map[int]bool, len(ce.Seqs))
			for _, id := range ce.Seqs {
				bad[id] = true
			}
			s.mu.Lock()
			var kept []*request
			for _, r := range dbatch {
				if bad[r.session] {
					r.err = &ExecError{fmt.Errorf("decode: %w", err)}
					close(r.done)
					s.quarantineLocked(r.session)
					s.maybeFreeSlotLocked(r.session)
					s.reuse.CapacityQuarantines++
				} else {
					kept = append(kept, r)
				}
			}
			s.cond.Broadcast()
			s.mu.Unlock()
			dbatch = kept
			continue
		}
		s.execMu.Unlock()
		break
	}
	if len(dbatch) == 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		if s.recoveryArmedLocked() {
			// Infrastructure failure with recovery armed: requeue the batch
			// in order at the front of the decode pool instead of faulting
			// it. Each request's pending token is untouched, and the replay
			// restores its session's KV through exactly the last logged
			// token, so the retried step is bit-identical to the one that
			// failed.
			s.decodes = append(append([]*request(nil), dbatch...), s.decodes...)
			s.scheduleRecoveryLocked(fmt.Errorf("decode batch of %d: %w", len(dbatch), err))
			return
		}
		// Dead sessions are filtered out at batch assembly and evictions
		// are loop-ordered, so a failure here is infrastructure (comm
		// fault, mid-ring timeout) that may have left partial per-rank KV.
		// A retry — internal or a client's — could double-append, so fail
		// the batch honestly and quarantine every member: KV evicted,
		// session no longer decodable until re-prefilled.
		for _, r := range dbatch {
			r.err = &ExecError{fmt.Errorf("decode: %w", err)}
			close(r.done)
			s.quarantineLocked(r.session)
		}
		// As with a failed prefill chunk: a quarantined session holds no
		// KV, so unless queued work still references it, its admission
		// slot must go back to the pool rather than wedge new sessions.
		for _, r := range dbatch {
			s.maybeFreeSlotLocked(r.session)
		}
		s.cond.Broadcast()
		return
	}
	if s.rec != nil {
		// A fused batch mixes cohorts, so the span carries one per-cohort
		// member count ("cohort.chat": 3) instead of a single id.
		args := map[string]int64{"batch": int64(len(dbatch))}
		for _, r := range dbatch {
			if r.cohort != "" {
				args["cohort."+r.cohort]++
			}
		}
		s.rec.RecordSpan(trace.Span{
			Name: "decode.batch", Cat: "decode", Rank: trace.CoordinatorRank, Seq: trace.NoSeq,
			Start: tBatch.UnixNano(), Dur: now.Sub(tBatch).Nanoseconds(),
			Args: args,
		})
	}
	for i, r := range dbatch {
		report.DecodeSessions = append(report.DecodeSessions, r.session)
		s.appendLogLocked(r.session, true, []int{r.token})
		next := transformer.Argmax(out[i])
		r.pending--
		if r.collect {
			r.tokens = append(r.tokens, next)
			r.ttitMs = append(r.ttitMs, float64(now.Sub(r.lastStep).Microseconds())/1000)
		}
		if !r.lastStep.IsZero() {
			s.hITL.Observe(now.Sub(r.lastStep).Seconds())
			if r.cohort != "" {
				s.cohortHandlesLocked(r.cohort).itl.Observe(now.Sub(r.lastStep).Seconds())
			}
		}
		r.lastStep = now
		r.next = next
		switch {
		case r.pending > 0 && r.canceled:
			// Client vanished mid-stream. A generate stream's session
			// will never see its DELETE, so evict it; a decode-only
			// client's multi-turn conversation stays resident.
			s.abortCanceledLocked(r, r.collect)
		case r.pending > 0 && s.closed:
			// Shutdown boundary: the stream is drained, not faulted — the
			// client gets the tokens generated so far (ending with this
			// step's) as a successful, truncated response. Shutdown stays
			// bounded by one iteration, not by the stream's remaining
			// (possibly millions of) steps.
			close(r.done)
		case r.pending > 0 && !s.prefilled[r.session]:
			// Released while this step was in flight; don't requeue a
			// decode against soon-to-be-evicted KV.
			r.err = releasedErr(r.session)
			close(r.done)
		case r.pending > 0:
			r.token = next
			r.queuedAt = now
			s.decodes = append(s.decodes, r)
		default:
			if r.cohort != "" {
				s.cohortHandlesLocked(r.cohort).e2e.Observe(now.Sub(r.start).Seconds())
			}
			close(r.done)
			if r.canceled && r.collect {
				// The stream finished, but its client vanished and will
				// never DELETE the session; reclaim it.
				s.quarantineLocked(r.session)
				s.maybeFreeSlotLocked(r.session)
				s.cond.Broadcast()
			}
		}
	}
	if len(s.decodes) > 0 {
		s.cond.Signal()
	}
}

func (s *Scheduler) recordWaitLocked(c Class, wait time.Duration, cohort string) {
	st := s.queueStats[c]
	st.Executed++
	st.TotalWait += wait
	if wait > st.MaxWait {
		st.MaxWait = wait
	}
	s.hWait[c].Observe(wait.Seconds())
	if s.rec != nil {
		// Span args are int64-valued, so the cohort rides as its pool id;
		// the id→name registry is exposed in /v1/stats cohort block order.
		var args map[string]int64
		if cohort != "" {
			args = map[string]int64{"cohort": s.cohorts.ID(cohort)}
		}
		s.rec.RecordSpan(trace.Span{
			Name: "queue.wait", Cat: string(c), Rank: trace.CoordinatorRank, Seq: trace.NoSeq,
			Start: time.Now().Add(-wait).UnixNano(), Dur: wait.Nanoseconds(),
			Args: args,
		})
	}
}

// Active reports whether the session has resident KV.
func (s *Scheduler) Active(session int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefilled[session]
}

// Known reports whether the session holds an admission slot or has queued
// work — including a request still parked behind admission backpressure,
// which DELETE must be able to shed.
func (s *Scheduler) Known(session int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[session] || s.sessionQueuedLocked(session)
}

// Sessions returns the resident session ids' count.
func (s *Scheduler) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// SessionIDs snapshots the admitted session ids.
func (s *Scheduler) SessionIDs() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.sessions))
	for id := range s.sessions {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// sessionQueuedLocked reports whether any queued request references the
// session; caller holds s.mu.
func (s *Scheduler) sessionQueuedLocked(session int) bool {
	for _, q := range [][]*request{s.admit, s.prefills, s.decodes} {
		for _, r := range q {
			if r.session == session {
				return true
			}
		}
	}
	return false
}

// purgeSessionLocked fails every queued request of a session with the
// given error and removes them from all three queues; caller holds s.mu.
func (s *Scheduler) purgeSessionLocked(session int, err error) {
	purge := func(q []*request) []*request {
		kept := q[:0]
		for _, r := range q {
			if r.session == session {
				r.err = err
				close(r.done)
				continue
			}
			kept = append(kept, r)
		}
		return kept
	}
	s.admit = purge(s.admit)
	s.prefills = purge(s.prefills)
	s.decodes = purge(s.decodes)
}

// Release frees a session's admission slot, fails its queued requests (so
// a fused batch never sees a dead sequence), schedules its KV for eviction
// on the step loop, and admits waiting work.
func (s *Scheduler) Release(session int) {
	s.mu.Lock()
	s.purgeSessionLocked(session, releasedErr(session))
	delete(s.sessions, session)
	delete(s.prefilled, session)
	// A clean release detaches the session's canonical prefix into the
	// prefix tree before dropping, so reconnects and siblings sharing the
	// prompt hit warm KV.
	s.pendingDrops = append(s.pendingDrops, sessionDrop{session: session, detach: true})
	s.admitLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.cfg.Manual {
		// No background loop will run the drop; apply it here. Manual mode
		// has a single driving thread, so this cannot race a Step.
		s.applyDrops()
	}
}

// applyDrops evicts every pending session's KV under the execution lock.
// Releases detach the session's canonical prefix into the prefix tree first
// (unless the session opted out or never grew one); the tree's spans keep
// the pages alive while the sequence itself is dropped.
func (s *Scheduler) applyDrops() {
	s.mu.Lock()
	drops := s.pendingDrops
	s.pendingDrops = nil
	s.mu.Unlock()
	if len(drops) == 0 {
		return
	}
	s.execMu.Lock()
	for _, d := range drops {
		s.detachAndDrop(d)
	}
	s.execMu.Unlock()
}

// detachAndDrop runs one scheduled eviction; caller holds execMu.
func (s *Scheduler) detachAndDrop(d sessionDrop) {
	s.mu.Lock()
	canon := s.canonical[d.session]
	hist := s.history[d.session]
	noDetach := s.noDetach[d.session]
	delete(s.canonical, d.session)
	delete(s.history, d.session)
	delete(s.noDetach, d.session)
	delete(s.log, d.session) // evicted sessions are not replayable
	s.mu.Unlock()
	if d.detach && !noDetach && s.tree != nil && canon >= s.cfg.TokenBudget {
		tDetach := time.Now()
		added, err := s.tree.Insert(hist[:canon], func(depth int) (prefixcache.Entry, error) {
			return s.cluster.DetachPrefix(d.session, depth)
		})
		if err == nil && added > 0 {
			s.mu.Lock()
			s.reuse.Detached++
			s.reuse.DetachedTokens += int64(added)
			s.mu.Unlock()
			s.rec.CounterSeries("cp_prefix_detach_total").Inc(1)
			if s.rec != nil {
				s.rec.RecordSpan(trace.Span{
					Name: "prefix.detach", Cat: "cache", Rank: trace.CoordinatorRank, Seq: d.session,
					Start: tDetach.UnixNano(), Dur: time.Since(tDetach).Nanoseconds(),
					Args: map[string]int64{"tokens": int64(added)},
				})
			}
		}
	}
	s.cluster.Drop(d.session)
}

// WithCluster runs fn with exclusive access to the cluster, serialized
// against the step loop. Stats handlers use it for consistent snapshots.
func (s *Scheduler) WithCluster(fn func(c *transformer.Cluster)) {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	fn(s.cluster)
}

// QueueDepths snapshots the scheduler's queues: sessions waiting for
// admission, prefill-phase requests, and decode-ready requests.
func (s *Scheduler) QueueDepths() (admit, prefill, decode int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.admit), len(s.prefills), len(s.decodes)
}

// Stats snapshots per-class queue metrics.
func (s *Scheduler) Stats() map[Class]QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]QueueStats, len(s.queueStats))
	for c, st := range s.queueStats {
		out[c] = *st
	}
	return out
}

// BatchStats snapshots iteration-level batching metrics.
func (s *Scheduler) BatchStats() BatchStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batch
}

// Reuse snapshots prefix-reuse and variant-selection telemetry.
func (s *Scheduler) Reuse() ReuseStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reuse
}

// PrefixStats snapshots the prefix tree's telemetry; ok is false when prefix
// reuse is disabled.
func (s *Scheduler) PrefixStats() (prefixcache.Stats, bool) {
	if s.tree == nil {
		return prefixcache.Stats{}, false
	}
	return s.tree.Stats(), true
}

// PrefixReuseEnabled reports whether the prefix tree is active.
func (s *Scheduler) PrefixReuseEnabled() bool { return s.tree != nil }

// LastIter returns the most recent iteration's report.
func (s *Scheduler) LastIter() IterReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.lastIter
	out.DecodeSessions = append([]int(nil), s.lastIter.DecodeSessions...)
	return out
}

// Close stops admission, fails requests still waiting in a queue, lets the
// loop finish its in-flight iteration (a generate stream claimed by that
// iteration drains gracefully: its client gets the tokens generated so far
// as a successful truncated response), and waits for the loop to exit.
// Subsequent submissions fail with ErrClosed. Closing twice is safe: the
// second call just waits for the first to finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.loopDone
		return
	}
	s.closed = true
	close(s.watchStop)
	// Cut everything queued rather than running it down: a generate stream
	// can have millions of steps left, and shutdown must be bounded by one
	// iteration, not by the longest client request. Streams that already
	// produced tokens drain as successful truncated responses; requests
	// that produced nothing fail with ErrClosed.
	for _, q := range [][]*request{s.admit, s.prefills, s.decodes} {
		for _, r := range q {
			if !r.collect || len(r.tokens) == 0 {
				r.err = ErrClosed
			}
			close(r.done)
		}
	}
	s.admit, s.prefills, s.decodes = nil, nil, nil
	s.needRecovery = nil // nothing left worth rebuilding for
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.loopDone
}

// Closed reports whether Close has begun; the HTTP layer maps post-close
// requests (stats included) to 503 uniformly.
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
