package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/transformer"
)

// recoverySchedulers builds a victim scheduler (manual mode, recovery
// armed) and an identical unfailed reference.
func recoverySchedulers(t *testing.T, seed int64, recover bool) (victim, ref *Scheduler) {
	t.Helper()
	cfg := transformer.Tiny(seed)
	mk := func(rec bool) *Scheduler {
		w, err := transformer.NewWeights(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Short receive timeout so an injected link fault surfaces in
		// milliseconds instead of the 10s default; never fires when healthy.
		c, err := transformer.NewCluster(w, 2, transformer.WithRecvTimeout(300*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		return NewScheduler(c, SchedulerConfig{
			TokenBudget: 8, MaxTokens: 1 << 16, Manual: true,
			Recover: rec, MaxRecoveries: 3,
		})
	}
	return mk(recover), mk(false)
}

// drive steps a manual scheduler until cond holds.
func driveUntil(t *testing.T, s *Scheduler, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out driving scheduler: %s", what)
		}
		if _, ok := s.Step(); !ok {
			time.Sleep(time.Millisecond)
		}
	}
}

// sharedPrompts returns two prompts sharing a 16-token (2-block) prefix
// with distinct 8-token suffixes — sized so every chunk is full-budget and
// the whole prompt is canonical.
func sharedPrompts(vocab int) ([]int, []int) {
	shared := make([]int, 16)
	for i := range shared {
		shared[i] = (i*5 + 2) % vocab
	}
	a := append(append([]int(nil), shared...), make([]int, 8)...)
	b := append(append([]int(nil), shared...), make([]int, 8)...)
	for i := 0; i < 8; i++ {
		a[16+i] = (i*3 + 7) % vocab
		b[16+i] = (i*11 + 1) % vocab
	}
	return a, b
}

// TestRecoveryInProcessFaultInjection is the serving half of the recovery
// acceptance test, in-process fault-injection form: a link fault mid-stream
// triggers an epoch rebuild and token-log replay; both in-flight generate
// streams complete bit-identically to an unfailed reference; and the replay
// demonstrably served the sessions' shared prefix from the prefix tree
// (prefill_source moves, replay_cached_tokens > 0).
func TestRecoveryInProcessFaultInjection(t *testing.T) {
	victim, ref := recoverySchedulers(t, 41, true)
	defer victim.Close()
	defer ref.Close()
	vocab := victim.cluster.W.Cfg.Model.VocabSize
	promptA, promptB := sharedPrompts(vocab)
	const maxTokens = 24

	// Reference streams, no failure.
	refDone := make(chan struct{})
	var refA, refB *GenerateResult
	go func() {
		defer close(refDone)
		var err error
		if refA, err = ref.Generate(context.Background(), 1, promptA, maxTokens); err != nil {
			t.Errorf("ref generate A: %v", err)
		}
		if refB, err = ref.Generate(context.Background(), 2, promptB, maxTokens); err != nil {
			t.Errorf("ref generate B: %v", err)
		}
	}()
	driveUntil(t, ref, "reference streams", func() bool {
		select {
		case <-refDone:
			return true
		default:
			return false
		}
	})
	if t.Failed() {
		t.FailNow()
	}

	// Victim: both streams in flight, then a link dies mid-decode.
	type result struct {
		res *GenerateResult
		err error
	}
	resA := make(chan result, 1)
	resB := make(chan result, 1)
	go func() {
		res, err := victim.Generate(context.Background(), 1, promptA, maxTokens)
		resA <- result{res, err}
	}()
	go func() {
		res, err := victim.Generate(context.Background(), 2, promptB, maxTokens)
		resB <- result{res, err}
	}()
	driveUntil(t, victim, "both streams into decode", func() bool {
		return victim.BatchStats().DecodeTokens >= 6
	})
	victim.WithCluster(func(c *transformer.Cluster) { c.FailLink(0, 1) })
	var gotA, gotB result
	haveA, haveB := false, false
	driveUntil(t, victim, "streams complete through recovery", func() bool {
		// Never block in the condition: the driver must keep stepping until
		// BOTH streams finish, in whichever order they land.
		if !haveA {
			select {
			case gotA = <-resA:
				haveA = true
			default:
			}
		}
		if !haveB {
			select {
			case gotB = <-resB:
				haveB = true
			default:
			}
		}
		return haveA && haveB
	})
	if gotA.err != nil || gotB.err != nil {
		t.Fatalf("streams faulted despite recovery: A=%v B=%v", gotA.err, gotB.err)
	}

	// Bit-identity against the unfailed reference.
	for name, pair := range map[string][2]*GenerateResult{"A": {refA, gotA.res}, "B": {refB, gotB.res}} {
		want, got := pair[0], pair[1]
		if len(want.Tokens) != len(got.Tokens) {
			t.Fatalf("stream %s: %d vs %d tokens", name, len(want.Tokens), len(got.Tokens))
		}
		for i := range want.Tokens {
			if want.Tokens[i] != got.Tokens[i] {
				t.Fatalf("stream %s diverges at step %d: %v vs %v", name, i, want.Tokens, got.Tokens)
			}
		}
	}

	rec := victim.RecoveryStats()
	if !rec.Enabled || rec.Rebuilds < 1 || rec.Attempts < 1 {
		t.Fatalf("recovery did not run: %+v", rec)
	}
	if rec.Epoch < 2 {
		t.Fatalf("cluster epoch %d after recovery, want >= 2", rec.Epoch)
	}
	if rec.RecoveredSessions < 2 || rec.LostSessions != 0 {
		t.Fatalf("recovered/lost = %d/%d, want 2/0", rec.RecoveredSessions, rec.LostSessions)
	}
	if rec.ReplayedTokens == 0 {
		t.Fatal("recovery replayed zero tokens")
	}
	// The warm-replay guarantee: the second session's shared 16-token
	// prefix came from the prefix tree, not recomputation — visible both in
	// the recovery block and in prefill_source's cached counter.
	if rec.ReplayCachedTokens < 16 {
		t.Fatalf("replay served %d tokens from the prefix tree, want >= 16", rec.ReplayCachedTokens)
	}
	if reuse := victim.Reuse(); reuse.CachedTokens < 16 {
		t.Fatalf("prefill_source cached_tokens = %d after warm replay, want >= 16", reuse.CachedTokens)
	}
}

// TestRecoveryDisabledPreservesFaulting pins the recovery-off contract: the
// same failure faults the in-flight batch with an ExecError and quarantines
// the sessions, exactly as before the subsystem existed.
func TestRecoveryDisabledPreservesFaulting(t *testing.T) {
	_, s := recoverySchedulers(t, 43, false) // the "reference" here is recovery-off
	defer s.Close()
	vocab := s.cluster.W.Cfg.Model.VocabSize
	promptA, _ := sharedPrompts(vocab)
	res := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), 1, promptA, 1<<10)
		res <- err
	}()
	driveUntil(t, s, "stream into decode", func() bool {
		return s.BatchStats().DecodeTokens >= 2
	})
	s.WithCluster(func(c *transformer.Cluster) { c.FailLink(0, 1) })
	var err error
	driveUntil(t, s, "stream faults", func() bool {
		select {
		case err = <-res:
			return true
		default:
			return false
		}
	})
	var execErr *ExecError
	if !errors.As(err, &execErr) {
		t.Fatalf("recovery-off failure = %v, want ExecError", err)
	}
	if s.Active(1) {
		t.Fatal("faulted session still active (not quarantined)")
	}
	if rec := s.RecoveryStats(); rec.Enabled || rec.Rebuilds != 0 {
		t.Fatalf("recovery ran while disabled: %+v", rec)
	}
}

// startWorkers spins up single-shot (non-rejoin) worker goroutines for the
// budget test: once shut down they stay gone, so a rebuild has nothing to
// dial.
func startWorkers(t *testing.T, cfg transformer.Config, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = transformer.RunWorker(transformer.WorkerConfig{
				Transformer: cfg, Rank: i, World: n,
				Listener: lns[i], Addrs: addrs,
				RendezvousTimeout: 20 * time.Second,
			})
		}(i)
	}
	t.Cleanup(wg.Wait)
	return addrs
}

// TestRecoveryBudgetExhausted: when the workers never come back, recovery
// burns its bounded attempts and then faults the sessions — lost, counted,
// and surfaced as ExecErrors — instead of retrying forever.
func TestRecoveryBudgetExhausted(t *testing.T) {
	cfg := transformer.Tiny(47)
	addrs := startWorkers(t, cfg, 2)
	w, err := transformer.NewWeights(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := transformer.ConnectCluster(w, transformer.ConnectConfig{
		Addrs:       addrs,
		DialTimeout: time.Second, // rebuild dials fail fast: nobody listens
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(cluster, SchedulerConfig{
		TokenBudget: 8, Manual: true, Recover: true, MaxRecoveries: 1,
	})
	defer s.Close()

	done := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), 1, []int{1, 2, 3, 4, 5}, 3)
		done <- err
	}()
	driveUntil(t, s, "healthy generate", func() bool {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("healthy generate: %v", err)
			}
			return true
		default:
			return false
		}
	})

	// Kill the whole worker fleet out from under the scheduler; they are
	// single-shot workers, so the rebuild's redial finds nothing.
	s.WithCluster(func(c *transformer.Cluster) { c.Close() })
	decodeErr := make(chan error, 1)
	go func() {
		_, err := s.Decode(context.Background(), 1, 7)
		decodeErr <- err
	}()
	var err2 error
	driveUntil(t, s, "decode through failed recovery", func() bool {
		select {
		case err2 = <-decodeErr:
			return true
		default:
			return false
		}
	})
	if err2 == nil {
		t.Fatal("decode succeeded over a dead, unrecoverable cluster")
	}
	if !strings.Contains(err2.Error(), "lost in recovery") {
		t.Fatalf("decode error = %v, want lost-in-recovery", err2)
	}
	rec := s.RecoveryStats()
	if rec.Attempts != 1 || rec.Rebuilds != 0 {
		t.Fatalf("attempts/rebuilds = %d/%d, want 1/0", rec.Attempts, rec.Rebuilds)
	}
	if rec.LostSessions != 1 {
		t.Fatalf("lost sessions = %d, want 1", rec.LostSessions)
	}
	if rec.LastError == "" {
		t.Fatal("no last_error recorded")
	}
	if s.Active(1) {
		t.Fatal("lost session still active")
	}
}

// TestRecoveryReapsCanceledSessions pins the reap-before-replay contract: a
// request whose client hung up while an iteration held the claim (the
// canceled mark set, the boundary abort not yet run) must be completed and
// its session excluded from the replay set when a recovery fires — the
// rebuild must not spend prefill work resurrecting a stream nobody reads.
func TestRecoveryReapsCanceledSessions(t *testing.T) {
	victim, ref := recoverySchedulers(t, 53, true)
	defer victim.Close()
	defer ref.Close()
	vocab := victim.cluster.W.Cfg.Model.VocabSize
	promptA, promptB := sharedPrompts(vocab)
	const maxTokens = 24

	// Reference stream for session 1 only — session 2 will be abandoned.
	refDone := make(chan struct{})
	var refA *GenerateResult
	go func() {
		defer close(refDone)
		var err error
		if refA, err = ref.Generate(context.Background(), 1, promptA, maxTokens); err != nil {
			t.Errorf("ref generate: %v", err)
		}
	}()
	driveUntil(t, ref, "reference stream", func() bool {
		select {
		case <-refDone:
			return true
		default:
			return false
		}
	})
	if t.Failed() {
		t.FailNow()
	}

	resA := make(chan error, 1)
	resB := make(chan error, 1)
	var gotA *GenerateResult
	go func() {
		var err error
		gotA, err = victim.Generate(context.Background(), 1, promptA, maxTokens)
		resA <- err
	}()
	go func() {
		_, err := victim.Generate(context.Background(), 2, promptB, maxTokens)
		resB <- err
	}()
	driveUntil(t, victim, "both streams into decode", func() bool {
		return victim.BatchStats().DecodeTokens >= 6
	})

	// Simulate the claimed-cancel window: the disconnect fired while an
	// iteration held session 2's request, so cancelQueued could only set the
	// mark — then a failure schedules recovery before any boundary abort runs.
	victim.mu.Lock()
	marked := false
	for _, r := range victim.decodes {
		if r.session == 2 {
			r.canceled = true
			r.cancelCause = context.Canceled
			marked = true
		}
	}
	if marked {
		victim.scheduleRecoveryLocked(errors.New("test: injected failure"))
	}
	victim.mu.Unlock()
	if !marked {
		t.Fatal("session 2 had no queued decode request to mark")
	}

	// Session 2's goroutine gets its cancellation back (via the reap), and
	// session 1 completes bit-identically through the rebuild.
	var errA, errB error
	haveA, haveB := false, false
	driveUntil(t, victim, "reap and replay complete", func() bool {
		if !haveA {
			select {
			case errA = <-resA:
				haveA = true
			default:
			}
		}
		if !haveB {
			select {
			case errB = <-resB:
				haveB = true
			default:
			}
		}
		return haveA && haveB
	})
	if !errors.Is(errB, context.Canceled) {
		t.Fatalf("reaped request error = %v, want Canceled cause", errB)
	}
	if errA != nil {
		t.Fatalf("surviving stream faulted: %v", errA)
	}
	if len(gotA.Tokens) != len(refA.Tokens) {
		t.Fatalf("stream lengths %d vs %d", len(gotA.Tokens), len(refA.Tokens))
	}
	for i := range refA.Tokens {
		if gotA.Tokens[i] != refA.Tokens[i] {
			t.Fatalf("stream diverges at %d: %v vs %v", i, gotA.Tokens, refA.Tokens)
		}
	}

	rec := victim.RecoveryStats()
	if rec.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d, want 1", rec.Rebuilds)
	}
	// Exactly one session replayed: the reaped one must not be resurrected —
	// and it is gone from admission, not quarantine-limbo.
	if rec.RecoveredSessions != 1 || rec.LostSessions != 0 {
		t.Fatalf("recovered/lost = %d/%d, want 1/0", rec.RecoveredSessions, rec.LostSessions)
	}
	driveUntil(t, victim, "reaped session evicted", func() bool {
		return !victim.Known(2)
	})
}
