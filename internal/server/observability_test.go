package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/perf"
	"repro/internal/trace"
	"repro/internal/transformer"
)

// TestTraceBitIdentity is the PR's acceptance bar: the observability layer
// only reads clocks, so tracing on vs off must not change a single output
// float. Cluster-level logits are compared with exact float equality, and
// the served token streams must match token for token.
func TestTraceBitIdentity(t *testing.T) {
	prompt := []int{4, 19, 22, 7, 3, 11, 2, 9, 14, 5}

	t.Run("cluster-logits", func(t *testing.T) {
		run := func(rec *trace.Recorder) ([][]float32, [][]float32) {
			w, err := transformer.NewWeights(transformer.Tiny(7))
			if err != nil {
				t.Fatal(err)
			}
			c, err := transformer.NewCluster(w, 3, transformer.WithTrace(rec))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			pre, err := c.Prefill(1, prompt, perf.PassKV)
			if err != nil {
				t.Fatal(err)
			}
			var dec [][]float32
			tok := transformer.Argmax(pre[len(pre)-1])
			for step := 0; step < 4; step++ {
				logits, err := c.Decode(1, tok)
				if err != nil {
					t.Fatal(err)
				}
				dec = append(dec, logits)
				tok = transformer.Argmax(logits)
			}
			return pre, dec
		}
		preOn, decOn := run(trace.New())
		preOff, decOff := run(nil)
		exactEqual := func(label string, a, b [][]float32) {
			if len(a) != len(b) {
				t.Fatalf("%s: %d vs %d rows", label, len(a), len(b))
			}
			for i := range a {
				if len(a[i]) != len(b[i]) {
					t.Fatalf("%s row %d: %d vs %d floats", label, i, len(a[i]), len(b[i]))
				}
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("%s row %d col %d: traced %v != untraced %v", label, i, j, a[i][j], b[i][j])
					}
				}
			}
		}
		exactEqual("prefill logits", preOn, preOff)
		exactEqual("decode logits", decOn, decOff)
	})

	t.Run("served-tokens", func(t *testing.T) {
		run := func(noTrace bool) [][]int {
			srv, err := New(Config{
				Transformer: transformer.Tiny(13),
				Ranks:       2,
				Variant:     perf.Auto,
				TokenBudget: 4,
				NoTrace:     noTrace,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var out [][]int
			for sess := 1; sess <= 2; sess++ {
				res, err := srv.Scheduler().Generate(context.Background(), sess, prompt, 6)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, res.Tokens)
			}
			return out
		}
		on, off := run(false), run(true)
		for i := range on {
			if fmt.Sprint(on[i]) != fmt.Sprint(off[i]) {
				t.Fatalf("session %d: traced tokens %v != untraced %v", i+1, on[i], off[i])
			}
		}
	})
}

// TestRingPhaseCountsMatchPlan pins the per-rank ring instrumentation to
// the sharding plan: every rank records exactly one compute and one comm
// phase observation per ring sweep, and the sweep count is chunks x layers
// for prefill, steps x layers for decode — a pure function of the workload,
// which is what makes the /metrics histograms auditable.
func TestRingPhaseCountsMatchPlan(t *testing.T) {
	const (
		ranks       = 3
		tokenBudget = 4
		maxTokens   = 3
	)
	cfg := transformer.Tiny(11)
	prompt := []int{4, 19, 22, 7, 3, 11, 2, 9, 14, 5} // 10 tokens -> 3 chunks of budget 4
	srv, err := New(Config{
		Transformer: cfg,
		Ranks:       ranks,
		Variant:     perf.PassKV,
		TokenBudget: tokenBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Scheduler().Generate(context.Background(), 1, prompt, maxTokens); err != nil {
		t.Fatal(err)
	}

	chunks := (len(prompt) + tokenBudget - 1) / tokenBudget
	layers := cfg.Model.Layers
	wantPrefill := uint64(chunks * layers)
	wantDecode := uint64((maxTokens - 1) * layers) // first token comes from prefill

	rec := srv.Recorder()
	for r := 0; r < ranks; r++ {
		rl := trace.RankLabel(r)
		for _, phase := range []string{"compute", "comm"} {
			got := rec.Hist("cp_ring_phase_seconds",
				trace.L("op", "prefill"), trace.L("phase", phase), trace.L("rank", rl)).HistCount()
			if got != wantPrefill {
				t.Errorf("rank %d prefill %s phase count = %d, plan predicts %d", r, phase, got, wantPrefill)
			}
			got = rec.Hist("cp_ring_phase_seconds",
				trace.L("op", "decode"), trace.L("phase", phase), trace.L("rank", rl)).HistCount()
			if got != wantDecode {
				t.Errorf("rank %d decode %s phase count = %d, plan predicts %d", r, phase, got, wantDecode)
			}
		}
	}

	// The same counts must surface through the HTTP exposition.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	samples, err := trace.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics did not parse: %v", err)
	}
	counts := map[string]float64{}
	for _, s := range samples {
		if s.Name == "cp_ring_phase_seconds_count" {
			counts[s.Labels["op"]+"/"+s.Labels["phase"]+"/"+s.Labels["rank"]] = s.Value
		}
	}
	for r := 0; r < ranks; r++ {
		key := fmt.Sprintf("prefill/compute/%d", r)
		if uint64(counts[key]) != wantPrefill {
			t.Errorf("/metrics %s = %v, plan predicts %d", key, counts[key], wantPrefill)
		}
	}
}

// TestDistributedMetricsMatchPlan is the distributed acceptance check: a
// 3-rank multi-process run's /metrics exposition must carry per-rank ring
// compute/comm phase histograms whose observation counts equal the plan's
// predicted sweep count — proving worker-staged series survive the wire
// drain (TraceCmd/TraceResult) intact.
func TestDistributedMetricsMatchPlan(t *testing.T) {
	const (
		ranks       = 3
		tokenBudget = 4
		maxTokens   = 3
	)
	cfg := transformer.Tiny(29)
	prompt := []int{4, 19, 22, 7, 3, 11, 2, 9, 14, 5} // 3 chunks of budget 4
	addrs := startWorkers(t, cfg, ranks)
	srv, err := New(Config{
		Transformer: cfg,
		RankAddrs:   addrs,
		Variant:     perf.PassKV,
		TokenBudget: tokenBudget,
		DialTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Scheduler().Generate(context.Background(), 1, prompt, maxTokens); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	samples, err := trace.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics did not parse: %v", err)
	}
	counts := map[string]float64{}
	for _, s := range samples {
		if s.Name == "cp_ring_phase_seconds_count" {
			counts[s.Labels["op"]+"/"+s.Labels["phase"]+"/"+s.Labels["rank"]] = s.Value
		}
	}
	chunks := (len(prompt) + tokenBudget - 1) / tokenBudget
	layers := cfg.Model.Layers
	wantPrefill := float64(chunks * layers)
	wantDecode := float64((maxTokens - 1) * layers)
	for r := 0; r < ranks; r++ {
		for _, phase := range []string{"compute", "comm"} {
			if got := counts[fmt.Sprintf("prefill/%s/%d", phase, r)]; got != wantPrefill {
				t.Errorf("rank %d prefill %s count = %v, plan predicts %v", r, phase, got, wantPrefill)
			}
			if got := counts[fmt.Sprintf("decode/%s/%d", phase, r)]; got != wantDecode {
				t.Errorf("rank %d decode %s count = %v, plan predicts %v", r, phase, got, wantDecode)
			}
		}
	}
	// A second scrape must not double-count: the drain ships deltas, and
	// the coordinator's store is cumulative.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	again, err := trace.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("second scrape did not parse: %v", err)
	}
	for _, s := range again {
		if s.Name == "cp_ring_phase_seconds_count" && s.Labels["op"] == "prefill" && s.Labels["phase"] == "compute" {
			if s.Value != wantPrefill {
				t.Errorf("second scrape rank %s prefill compute count = %v, want %v (delta drain double-counted?)",
					s.Labels["rank"], s.Value, wantPrefill)
			}
		}
	}
}

// TestStatsSequenceAndUptime pins the new /v1/stats fields: sequence
// increments per snapshot, uptime_ms is monotonic, and the latency summary
// is present when tracing is on.
func TestStatsSequenceAndUptime(t *testing.T) {
	srv, err := New(Config{Transformer: transformer.Tiny(17), Ranks: 2, TokenBudget: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Scheduler().Generate(context.Background(), 1, []int{1, 2, 3, 4}, 3); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() statsResponse {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body statsResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	a, b := get(), get()
	if b.Sequence != a.Sequence+1 {
		t.Errorf("sequence %d then %d, want +1", a.Sequence, b.Sequence)
	}
	if b.UptimeMs < a.UptimeMs {
		t.Errorf("uptime_ms went backwards: %d then %d", a.UptimeMs, b.UptimeMs)
	}
	if a.Latency == nil {
		t.Fatal("latency block missing with tracing on")
	}
	if a.Latency.TTFT.Count == 0 {
		t.Error("ttft histogram empty after a generate")
	}
	if a.Latency.Step.P50 < 0 {
		t.Error("negative step p50")
	}
}

// TestObservabilityDisabled pins the NoTrace surface: /metrics and
// /v1/trace answer 404 and the stats latency block is absent.
func TestObservabilityDisabled(t *testing.T) {
	srv, err := New(Config{Transformer: transformer.Tiny(19), Ranks: 2, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/v1/trace"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with NoTrace: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var body statsResponse
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if body.Latency != nil {
		t.Error("latency block present with NoTrace")
	}
}

// TestTraceExportDeterministic pins the export ordering contract end to
// end: with no traffic between scrapes, two JSONL exports are byte
// identical, and the Chrome export validates against the schema checker.
func TestTraceExportDeterministic(t *testing.T) {
	srv, err := New(Config{Transformer: transformer.Tiny(23), Ranks: 2, TokenBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Scheduler().Generate(context.Background(), 1, []int{5, 6, 7, 8, 9}, 4); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d: %s", path, resp.StatusCode, body)
		}
		return body
	}
	a := get("/v1/trace?format=jsonl")
	b := get("/v1/trace?format=jsonl")
	if !bytes.Equal(a, b) {
		t.Error("two quiescent JSONL exports differ — span ordering is not deterministic")
	}
	if err := trace.ValidateChromeTrace(get("/v1/trace")); err != nil {
		t.Errorf("chrome export invalid: %v", err)
	}
	resp, err := http.Get(ts.URL + "/v1/trace?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", resp.StatusCode)
	}
}
