package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestDeadlineExpiredWhileQueued: a request whose timeout_ms deadline fires
// while it waits for admission gets its goroutine back with a
// DeadlineExceeded cause, maps to 504, and counts in the overload block.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1})
	// Session 1 occupies the only admission slot.
	done1 := make(chan struct{})
	go func() { defer close(done1); _, _ = s.Prefill(context.Background(), 1, []int{1, 2}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done1

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Generate(ctx, 2, []int{3, 4}, 3)
		errCh <- err
	}()
	waitDepths(t, s, 1, 0, 0) // parked behind session 1
	var err error
	select {
	case err = <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("expired request still blocked")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error = %v, want DeadlineExceeded cause", err)
	}
	if got := statusFor(err); got != http.StatusGatewayTimeout {
		t.Fatalf("statusFor(deadline) = %d, want 504", got)
	}
	if st := s.OverloadStats(); st.DeadlineExpired != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", st.DeadlineExpired)
	}
	// A client hangup (plain cancel, no deadline) must NOT count as overload.
	ctx2, cancel2 := context.WithCancel(context.Background())
	errCh2 := make(chan error, 1)
	go func() {
		_, err := s.Generate(ctx2, 3, []int{5, 6}, 3)
		errCh2 <- err
	}()
	waitDepths(t, s, 1, 0, 0)
	cancel2()
	<-errCh2
	if st := s.OverloadStats(); st.DeadlineExpired != 1 {
		t.Fatalf("plain cancel counted as deadline expiry: %+v", st)
	}
}

// TestBrownoutShedsAndRejects: with the queue-wait SLO blown, a new-session
// admission is rejected with OverloadError (429 + Retry-After >= 1s), the
// backlog already past the SLO is shed, resident sessions are untouched, and
// the overload block reports it all.
func TestBrownoutShedsAndRejects(t *testing.T) {
	const slo = 50 * time.Millisecond
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1, BrownoutSLO: slo})
	// Session 1 holds the slot — the resident work brownout must protect.
	done1 := make(chan struct{})
	go func() { defer close(done1); _, _ = s.Prefill(context.Background(), 1, []int{1, 2}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done1

	// Session 2 parks in the admission queue and ages past the SLO.
	errCh2 := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), 2, []int{3, 4}, 3)
		errCh2 <- err
	}()
	waitDepths(t, s, 1, 0, 0)
	// Pin the quantile window to "no executions since the last refresh", the
	// wedged-loop signature, so the verdict comes from the deterministic
	// fallback — the age of the oldest queued admission — rather than from
	// session 1's historical (fast) admission. Session 2's own submit already
	// evaluated (and cached) a healthy verdict, so expire the cache too.
	s.mu.Lock()
	s.brownoutPrev = s.queueWaitSnapLocked()
	s.brownoutAt = time.Time{}
	s.mu.Unlock()
	time.Sleep(2 * slo)

	// A new session now trips the brownout check inside submit: rejected
	// synchronously, no Step needed.
	_, err3 := s.Generate(context.Background(), 3, []int{5, 6}, 3)
	var oe *OverloadError
	if !errors.As(err3, &oe) {
		t.Fatalf("admission under brownout = %v, want OverloadError", err3)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s (header resolution floor)", oe.RetryAfter)
	}
	if got := statusFor(err3); got != http.StatusTooManyRequests {
		t.Fatalf("statusFor(overload) = %d, want 429", got)
	}
	// The aged backlog was shed with the same error.
	select {
	case err2 := <-errCh2:
		if !errors.As(err2, &oe) {
			t.Fatalf("shed backlog error = %v, want OverloadError", err2)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backlog request not shed")
	}
	st := s.OverloadStats()
	if !st.BrownoutActive || st.BrownoutShed < 2 {
		t.Fatalf("overload stats = %+v, want active with >= 2 shed", st)
	}
	if st.BrownoutSLOSec != slo.Seconds() {
		t.Fatalf("BrownoutSLOSec = %v", st.BrownoutSLOSec)
	}
	// The resident session was never disturbed.
	if a, p, d := s.QueueDepths(); a != 0 || p != 0 || d != 0 {
		t.Fatalf("queues not clean after shed: %d/%d/%d", a, p, d)
	}
	if !s.Known(1) {
		t.Fatal("resident session lost to brownout")
	}
	stopStepping := stepInBackground(t, s)
	if _, err := s.Decode(context.Background(), 1, 1); err != nil {
		t.Fatalf("resident session's decode rejected under brownout: %v", err)
	}
	stopStepping()
}

// stepInBackground drives the manual scheduler from a goroutine until the
// returned stop function is called (also wired into test cleanup).
func stepInBackground(t *testing.T, s *Scheduler) (stop func()) {
	t.Helper()
	ch := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(ch) }) }
	t.Cleanup(stop)
	go func() {
		for {
			select {
			case <-ch:
				return
			default:
			}
			if _, ok := s.Step(); !ok {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return stop
}

// TestBrownoutDisabledByDefault: with no SLO configured the brownout check
// never trips, whatever the backlog looks like.
func TestBrownoutDisabledByDefault(t *testing.T) {
	s, _ := newManualScheduler(t, SchedulerConfig{MaxSessions: 1})
	done1 := make(chan struct{})
	go func() { defer close(done1); _, _ = s.Prefill(context.Background(), 1, []int{1, 2}) }()
	waitDepths(t, s, 0, 1, 0)
	drain(s)
	<-done1
	errCh := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), 2, []int{3, 4}, 2)
		errCh <- err
	}()
	waitDepths(t, s, 1, 0, 0)
	time.Sleep(60 * time.Millisecond)
	// Another admission queues instead of 429ing, no matter how long the
	// backlog has waited.
	errCh3 := make(chan error, 1)
	go func() {
		_, err := s.Generate(context.Background(), 3, []int{5, 6}, 2)
		errCh3 <- err
	}()
	waitDepths(t, s, 2, 0, 0)
	st := s.OverloadStats()
	if st.BrownoutActive || st.BrownoutShed != 0 || st.BrownoutSLOSec != 0 {
		t.Fatalf("brownout engaged while disabled: %+v", st)
	}
	// Free the slot; the backlog drains in order (each generate stays
	// resident after completing, so release between them).
	stepInBackground(t, s)
	for i, ch := range []chan error{errCh, errCh3} {
		s.Release(i + 1)
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("queued request failed after slot freed: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("queued request never drained")
		}
	}
}

// TestWriteSchedErrRetryAfter pins the 429 wire shape: an OverloadError
// maps to 429 with a ceil-seconds Retry-After header (floored at 1) and
// counts in the overload block; other errors carry no header.
func TestWriteSchedErrRetryAfter(t *testing.T) {
	srv, _ := newTestServer(t, FIFO)
	rec := httptest.NewRecorder()
	srv.writeSchedErr(rec, &OverloadError{RetryAfter: 1500 * time.Millisecond})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want ceil(1.5s) = 2", got)
	}
	if st := srv.sched.OverloadStats(); st.RetryAfterIssued != 1 {
		t.Fatalf("RetryAfterIssued = %d, want 1", st.RetryAfterIssued)
	}
	rec = httptest.NewRecorder()
	srv.writeSchedErr(rec, context.DeadlineExceeded)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("504 carried Retry-After %q", got)
	}
}

// TestStatsOverloadBlocks: /v1/stats carries the integrity, chaos, and
// overload blocks with sane zero-state values on a healthy in-process
// server.
func TestStatsOverloadBlocks(t *testing.T) {
	_, ts := newTestServer(t, FIFO)
	post(t, ts.URL+"/v1/generate", generateRequest{Session: 1, Prompt: []int{1, 2, 3}, MaxTokens: 2}, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Integrity struct {
			Checked  int64 `json:"frames_checked"`
			Rejected int64 `json:"frames_rejected"`
		} `json:"integrity"`
		Chaos struct {
			Injected int64 `json:"injected_total"`
		} `json:"chaos"`
		Overload OverloadStats `json:"overload"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// In-process transport frames nothing, injects nothing, sheds nothing —
	// but the blocks must be present and well-formed (zero, not garbage).
	if st.Integrity.Rejected != 0 || st.Chaos.Injected != 0 {
		t.Fatalf("healthy in-process server reports corruption/chaos: %+v", st)
	}
	if st.Overload.BrownoutActive || st.Overload.BrownoutShed != 0 || st.Overload.DeadlineExpired != 0 {
		t.Fatalf("healthy server reports overload: %+v", st.Overload)
	}
}
