package parallel

import (
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	old := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(old) })
}

// Every index must be visited exactly once, at any width, including widths
// far beyond GOMAXPROCS and n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 33} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			func() {
				old := SetWorkers(w)
				defer SetWorkers(old)
				counts := make([]int32, n)
				For(n, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("w=%d n=%d bad chunk [%d,%d)", w, n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("w=%d n=%d index %d visited %d times", w, n, i, c)
					}
				}
			}()
		}
	}
}

// Nested For must not deadlock: the caller of the inner job drains it
// itself even when every pool worker is busy.
func TestForNestedDoesNotDeadlock(t *testing.T) {
	withWorkers(t, 4)
	var total atomic.Int64
	For(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(16, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested total %d, want %d", got, 8*16)
	}
}

// A panic inside fn must surface on the caller, not kill a pool goroutine,
// and the pool must remain usable afterwards.
func TestForPanicPropagatesToCaller(t *testing.T) {
	withWorkers(t, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		For(64, func(lo, hi int) {
			if lo == 0 {
				panic("boom")
			}
		})
	}()
	// Pool still works.
	var n atomic.Int64
	For(64, func(lo, hi int) { n.Add(int64(hi - lo)) })
	if n.Load() != 64 {
		t.Fatalf("pool broken after panic: %d", n.Load())
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("Workers() after SetWorkers(0) = %d, want 1", Workers())
	}
	SetWorkers(3)
}

func TestSnapshotCountsJobs(t *testing.T) {
	withWorkers(t, 2)
	before := Snapshot()
	For(100, func(lo, hi int) {})
	after := Snapshot()
	if after.Jobs <= before.Jobs {
		t.Fatalf("parallel job not counted: %+v -> %+v", before, after)
	}
	withWorkers(t, 1)
	before = Snapshot()
	For(100, func(lo, hi int) {})
	after = Snapshot()
	if after.SerialJobs <= before.SerialJobs {
		t.Fatalf("serial job not counted: %+v -> %+v", before, after)
	}
}
