// Package parallel provides the shared worker pool that fans the attention
// kernels out over independent tiles of work. The pool exists because every
// CP rank in this repo is a goroutine on one host process: giving each kernel
// its own throwaway goroutines would oversubscribe the scheduler, while a
// single shared, bounded pool keeps total kernel concurrency pinned to the
// machine (GOMAXPROCS by default, overridable with SetWorkers or the
// CP_WORKERS environment variable).
//
// The pool is deliberately oblivious to what it runs: For(n, fn) splits
// [0, n) into contiguous chunks and executes fn(lo, hi) once per chunk, on
// the caller plus up to Workers()-1 pool goroutines. Chunks are claimed with
// an atomic cursor, so load balances dynamically; the caller always
// participates in draining its own job, which makes nested For calls
// deadlock-free (a worker that issues a For drains that inner job itself).
//
// Determinism contract: For guarantees every index range is executed exactly
// once, but says nothing about which goroutine runs it or in what order.
// Callers that need bit-identical results across worker counts — the
// attention kernels do — must make fn(lo, hi) write only to cells owned by
// [lo, hi) and compute each cell identically regardless of partitioning.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// chunksPerWorker oversubscribes chunks relative to workers so the atomic
// cursor can rebalance when some chunks run longer than others (e.g. causal
// attention tiles near the end of a sequence attend to more KV).
const chunksPerWorker = 4

// maxPoolWorkers bounds the resident pool goroutines regardless of how high
// SetWorkers is pushed; blocked receivers are cheap but not free.
const maxPoolWorkers = 64

var (
	workers atomic.Int64

	poolMu      sync.Mutex
	poolStarted int
	jobCh       chan *job

	statJobs         atomic.Int64 // For calls that dispatched to the pool
	statSerialJobs   atomic.Int64 // For calls that ran inline on the caller
	statChunks       atomic.Int64 // chunks executed across all parallel jobs
	statChunksStolen atomic.Int64 // chunks executed by pool workers (not the caller)
)

func init() {
	w := runtime.GOMAXPROCS(0)
	if env := os.Getenv("CP_WORKERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			w = n
		}
	}
	workers.Store(int64(w))
	jobCh = make(chan *job, 4*maxPoolWorkers)
}

// Workers returns the configured kernel fan-out width.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the kernel fan-out width and returns the previous value.
// n < 1 is clamped to 1 (strictly serial: For runs inline on the caller with
// no pool involvement, the baseline the benchmarks compare against).
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int64(n)))
}

// Stats is a snapshot of pool activity counters, exposed through /v1/stats
// so kernel parallelism is observable in a running server.
type Stats struct {
	Workers      int   `json:"workers"`       // configured width
	Jobs         int64 `json:"jobs"`          // parallel jobs dispatched
	SerialJobs   int64 `json:"serial_jobs"`   // jobs run inline (width 1 or n == 1)
	Chunks       int64 `json:"chunks"`        // chunks executed in parallel jobs
	ChunksStolen int64 `json:"chunks_stolen"` // chunks picked up by pool workers
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{
		Workers:      Workers(),
		Jobs:         statJobs.Load(),
		SerialJobs:   statSerialJobs.Load(),
		Chunks:       statChunks.Load(),
		ChunksStolen: statChunksStolen.Load(),
	}
}

// job is one For call: a chunked index space drained cooperatively by the
// caller and any pool workers that pick it up.
type job struct {
	n      int
	chunk  int
	chunks int
	fn     func(lo, hi int)
	next   atomic.Int64
	wg     sync.WaitGroup
	// aborted flips when a chunk panics; remaining chunks are skipped and the
	// first panic value is rethrown on the caller's goroutine.
	aborted  atomic.Bool
	panicVal atomic.Pointer[any]
}

// run drains chunks until the cursor passes the end. stolen marks pool-side
// execution for the stats counters.
func (j *job) run(stolen bool) {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.chunks {
			return
		}
		j.runChunk(i, stolen)
	}
}

func (j *job) runChunk(i int, stolen bool) {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.panicVal.CompareAndSwap(nil, &r)
			j.aborted.Store(true)
		}
	}()
	if j.aborted.Load() {
		return
	}
	lo := i * j.chunk
	hi := lo + j.chunk
	if hi > j.n {
		hi = j.n
	}
	j.fn(lo, hi)
	statChunks.Add(1)
	if stolen {
		statChunksStolen.Add(1)
	}
}

// ensurePool starts pool goroutines lazily so importing the package costs
// nothing until the first parallel job.
func ensurePool(want int) {
	if want > maxPoolWorkers {
		want = maxPoolWorkers
	}
	poolMu.Lock()
	for poolStarted < want {
		poolStarted++
		go func() {
			for jb := range jobCh {
				jb.run(true)
			}
		}()
	}
	poolMu.Unlock()
}

// For executes fn over [0, n) split into contiguous chunks. With width 1 (or
// n <= 1) it runs fn(0, n) inline — the exact serial path. Otherwise the
// caller and up to width-1 pool workers drain the chunks cooperatively. For
// returns when every chunk has finished; a panic inside fn is rethrown on
// the caller's goroutine after the job drains.
func For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n == 1 {
		statSerialJobs.Add(1)
		fn(0, n)
		return
	}
	chunks := w * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	j := &job{n: n, chunk: size, chunks: chunks, fn: fn}
	j.wg.Add(chunks)
	ensurePool(w - 1)
	// Invite up to w-1 helpers. Sends are non-blocking: if the queue is
	// saturated the caller simply drains more of its own job.
invite:
	for i := 0; i < w-1; i++ {
		select {
		case jobCh <- j:
		default:
			break invite
		}
	}
	j.run(false)
	j.wg.Wait()
	statJobs.Add(1)
	if p := j.panicVal.Load(); p != nil {
		panic(*p)
	}
}
