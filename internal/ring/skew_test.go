package ring

import (
	"math/rand"
	"testing"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

// TestSkewedCacheDistribution drives the Algorithm 2/3 padding path hard:
// cached KV is distributed very unevenly across ranks (one rank holds more
// than half, another holds nothing), so every rank must pad its block to
// L_i = max_j(P_j^i + T_j^i) for the ring messages to stay uniform. The
// distributed result must still match the reference exactly.
func TestSkewedCacheDistribution(t *testing.T) {
	const (
		n      = 3
		cached = 12
		newT   = 4
	)
	rng := rand.New(rand.NewSource(77))
	histK := tensor.RandN(rng, cached, nkv, dh)
	histV := tensor.RandN(rng, cached, nkv, dh)

	// Rank 0 holds positions 0..6, rank 1 holds 7..11, rank 2 holds nothing.
	split := map[int][]int{
		0: {0, 1, 2, 3, 4, 5, 6},
		1: {7, 8, 9, 10, 11},
		2: {},
	}
	for variantIdx, variant := range []prefillFn{PassKVPrefill, PassQPrefill, AllGatherPrefill} {
		world := comm.NewWorld(n)
		caches := make([]*kvcache.Cache, n)
		for r := 0; r < n; r++ {
			c, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh})
			if err != nil {
				t.Fatal(err)
			}
			for _, pos := range split[r] {
				if err := c.Append(0, histK.SliceTokens(pos, pos+1), histV.SliceTokens(pos, pos+1), []int{pos}); err != nil {
					t.Fatal(err)
				}
			}
			caches[r] = c
		}
		plan, err := sharding.NewBatchShard([]int{newT}, n)
		if err != nil {
			t.Fatal(err)
		}
		fq := tensor.RandN(rng, newT, nh, dh)
		fk := tensor.RandN(rng, newT, nkv, dh)
		fv := tensor.RandN(rng, newT, nkv, dh)
		outs, err := comm.RunCollect(world, func(r *comm.Rank) (*attention.Output, error) {
			return variant(&PrefillInput{
				Rank: r, Plan: plan, P: []int{cached},
				Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
				Cache: caches[r.ID], Elem: elem,
			})
		})
		if err != nil {
			t.Fatalf("variant %d: %v", variantIdx, err)
		}
		locals := make([]*tensor.Tensor, n)
		for r, o := range outs {
			locals[r] = o.O
		}
		got := plan.Unshard(locals)

		ref, err := attention.GQA(fq, tensor.Concat(histK, fk), tensor.Concat(histV, fv),
			attention.PartialCausal(newT, cached))
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(ref.O, got); d > tol {
			t.Fatalf("variant %d with skewed caches deviates by %v", variantIdx, d)
		}
	}
}

// TestSkewedCacheUniformMessages checks the invariant behind the padding:
// under pass-KV with skewed caches, every rank still sends identical-size
// messages (the collective-interface requirement the paper calls out).
func TestSkewedCacheUniformMessages(t *testing.T) {
	const (
		n      = 3
		cached = 9
		newT   = 3
	)
	rng := rand.New(rand.NewSource(78))
	histK := tensor.RandN(rng, cached, nkv, dh)
	histV := tensor.RandN(rng, cached, nkv, dh)
	world := comm.NewWorld(n)
	caches := make([]*kvcache.Cache, n)
	split := map[int][]int{0: {0, 1, 2, 3, 4, 5}, 1: {6, 7, 8}, 2: {}}
	for r := 0; r < n; r++ {
		c, _ := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh})
		for _, pos := range split[r] {
			if err := c.Append(0, histK.SliceTokens(pos, pos+1), histV.SliceTokens(pos, pos+1), []int{pos}); err != nil {
				t.Fatal(err)
			}
		}
		caches[r] = c
	}
	plan, _ := sharding.NewBatchShard([]int{newT}, n)
	fq := tensor.RandN(rng, newT, nh, dh)
	fk := tensor.RandN(rng, newT, nkv, dh)
	fv := tensor.RandN(rng, newT, nkv, dh)
	if err := world.Run(func(r *comm.Rank) error {
		_, err := PassKVPrefill(&PrefillInput{
			Rank: r, Plan: plan, P: []int{cached},
			Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
			Cache: caches[r.ID], Elem: elem,
		})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// Every rank must have sent exactly the same ring byte volume despite
	// holding 6 / 3 / 0 cached tokens.
	first := world.RankStats(0).Bytes[comm.KindSendRecv]
	if first <= 0 {
		t.Fatal("no ring traffic recorded")
	}
	for r := 1; r < n; r++ {
		if got := world.RankStats(r).Bytes[comm.KindSendRecv]; got != first {
			t.Fatalf("rank %d sent %v ring bytes, rank 0 sent %v — messages not uniform", r, got, first)
		}
	}
}
