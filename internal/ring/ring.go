// Package ring implements the paper's ring-attention variants for
// context-parallel inference:
//
//   - PassKVPrefill — fused variable-sequence-length ring pass-KV partial
//     prefill (Algorithm 2). Key/value shards circulate around the CP ranks
//     while queries stay put; per-chunk partial outputs are merged locally
//     with the merge-attention operator.
//   - PassQPrefill — ring pass-Q partial prefill (Algorithm 3). Query shards
//     circulate while KV stays put; partial outputs end up scattered across
//     ranks and are restored to their source ranks with an All2All before
//     merging.
//   - PassQDecode — batched ring pass-Q decode (Algorithm 4) with
//     round-robin, per-step-offset assignment of decode tokens to ranks so
//     KV-cache growth stays balanced (§3.6).
//   - AllGatherPrefill — the all-gather pass-KV baseline used in Llama3
//     training, implemented for the ablation comparison (§3.5.2).
//
// All variants are lossless: their outputs are verified against a
// single-device reference attention in the package tests. Each rank runs in
// its own goroutine and communicates only through the comm package, so the
// implementations read like the SPMD pseudo-code in the paper.
package ring

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/comm/wire"
	"repro/internal/kvcache"
	"repro/internal/sharding"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// metaBytes is the accounted overhead for per-token metadata (position and
// sequence/batch ids) attached to a circulating message.
const metaBytesPerToken = 8

// PrefillInput is one rank's view of a fused varseq (partial) prefill.
type PrefillInput struct {
	Rank *comm.Rank           // this rank's communicator
	Plan *sharding.BatchShard // load-balanced plan over the new tokens
	P    []int                // per-sequence previously-cached global length P^i
	// Q, K, V hold the rank's new-token shard in plan order: Q is
	// [LocalLen, NH, DH]; K and V are [LocalLen, NKV, DH]. Padding slots
	// must be zero rows (sharding.BatchShard.Shard produces them).
	Q, K, V *tensor.Tensor
	Cache   *kvcache.Cache // persistent KV from earlier turns; may be nil
	// Blocks caches the assembled per-sequence KV segments across a
	// prefill's chunks (one BlockCache per rank per layer, owned by the rank
	// goroutine). Nil falls back to rebuilding the block from Cache on every
	// call, the seed engine's cost profile.
	Blocks *BlockCache
	Elem   float64 // accounted bytes per element (e in the paper)
	// SeqIDs maps each batch-plan sequence index to its persistent cache
	// key, so an engine can prefill different batch compositions against
	// long-lived conversations. Nil means the identity mapping.
	SeqIDs []int
	// Trace, when non-nil, accumulates this sweep's per-phase wall time
	// (attention compute vs ring SendRecv vs All2All — the paper's Table
	// 5/8 axes). Timing only observes the existing control flow: a nil
	// timer takes no clock readings and the compute path is identical
	// either way, preserving bit-identical outputs.
	Trace *trace.SweepTimer
}

// seqKey returns the cache key of batch-plan sequence i.
func (in *PrefillInput) seqKey(i int) int {
	if in.SeqIDs == nil {
		return i
	}
	return in.SeqIDs[i]
}

func (in *PrefillInput) validate() error {
	if in.Rank == nil || in.Plan == nil {
		return fmt.Errorf("ring: nil rank or plan")
	}
	if len(in.P) != len(in.Plan.SeqLens) {
		return fmt.Errorf("ring: P has %d entries for %d sequences", len(in.P), len(in.Plan.SeqLens))
	}
	want := in.Plan.LocalLen(in.Rank.ID)
	if in.Q.Tokens != want || in.K.Tokens != want || in.V.Tokens != want {
		return fmt.Errorf("ring: local shard length %d/%d/%d, want %d",
			in.Q.Tokens, in.K.Tokens, in.V.Tokens, want)
	}
	if in.Elem <= 0 {
		return fmt.Errorf("ring: non-positive element size %v", in.Elem)
	}
	if in.SeqIDs != nil && len(in.SeqIDs) != len(in.Plan.SeqLens) {
		return fmt.Errorf("ring: %d seq ids for %d sequences", len(in.SeqIDs), len(in.Plan.SeqLens))
	}
	return nil
}

// qMask builds the query-side mask of a rank's local shard: global position
// P^i + p for slot of sequence i at new-token position p, Pad slots masked.
func (in *PrefillInput) qMask() (pos, seq []int) {
	lp := in.Plan.LocalPositions(in.Rank.ID)
	ls := in.Plan.LocalSeqs(in.Rank.ID)
	pos = make([]int, len(lp))
	seq = append([]int(nil), ls...)
	for i, p := range lp {
		if p == sharding.Pad {
			pos[i] = -1
		} else {
			pos[i] = in.P[ls[i]] + p
		}
	}
	return pos, seq
}

// The circulating payloads — KV tiles for pass-KV, query blocks for pass-Q
// and decode, partial outputs for the All2All — are the exported wire types
// (comm/wire), so the same structs flow through in-process mailboxes by
// pointer and across TCP through the deterministic codec. Their accounted
// sizes stay the paper's analytic element counts:

func kvBlockBytes(b *wire.KVBlock, elem float64) float64 {
	return b.K.Bytes(elem) + b.V.Bytes(elem) + float64(len(b.Pos))*metaBytesPerToken
}

func qBlockBytes(b *wire.QBlock, elem float64) float64 {
	return b.Q.Bytes(elem) + float64(len(b.Pos))*metaBytesPerToken
}

func oBlockBytes(b *wire.OBlock, elem float64) float64 {
	// Output payload plus one LSE scalar per (token, head), as in the
	// paper's All2All cost (N-1)(D+1)Te (Appendix C).
	return b.Out.O.Bytes(elem) + float64(len(b.Out.LSE))*elem
}

// localKV assembles this rank's stationary/initial KV block: for every
// sequence, the cached rows followed by the rank's new non-padding rows,
// padded to the agreed per-sequence length L_i (Algorithm 2's
// concat_i(pad(P_k^i + T_k^i, L_i))). padTo[i] < 0 means "no padding".
//
// With a persistent Blocks cache the call is incremental: the cached-context
// prefix lives in the sequence's mirror from earlier chunks, so only this
// chunk's new rows (and padding) are written — no O(context) re-gather. For
// a single-sequence plan the returned block is a zero-copy view of the
// mirror; fused multi-sequence plans still concatenate the per-sequence
// segments into one contiguous block.
func (in *PrefillInput) localKV(padTo []int) (*wire.KVBlock, error) {
	nkv, dh := in.K.Heads, in.K.Dim
	rowLen := nkv * dh
	blocks := in.Blocks
	if blocks == nil {
		// Transient mirror: rebuilt from Cache on every call, matching the
		// seed path for direct ring users that keep no cluster state.
		blocks = NewBlockCache()
	}
	lp := in.Plan.LocalPositions(in.Rank.ID)
	ls := in.Plan.LocalSeqs(in.Rank.ID)
	single := len(in.Plan.SeqLens) == 1

	var ks, vs []*tensor.Tensor
	var pos, seq []int
	var kRows, vRows [][]float32
	var newPos []int
	for i := range in.Plan.SeqLens {
		// Mirror the cached context. A cached row at or past P^i (a stale or
		// adopted span that overlaps the new range) would duplicate
		// positions and silently corrupt causality; sync rejects it.
		b, err := blocks.sync(in.Cache, in.seqKey(i), in.P[i], rowLen)
		if err != nil {
			return nil, fmt.Errorf("ring: rank %d sequence %d has %w", in.Rank.ID, i, err)
		}
		// Append this chunk's new rows (plan order, padding slots skipped)
		// ahead of the kvcache; the engine persists the same rows right
		// after the ring pass.
		kRows, vRows, newPos = kRows[:0], vRows[:0], newPos[:0]
		for slot, s := range ls {
			if s == i && lp[slot] != sharding.Pad {
				kRows = append(kRows, in.K.Row2D(slot))
				vRows = append(vRows, in.V.Row2D(slot))
				newPos = append(newPos, in.P[i]+lp[slot])
			}
		}
		b.advance(blocks, rowLen, kRows, vRows, newPos)
		segTokens := b.n
		padCount := 0
		if padTo != nil && padTo[i] >= 0 {
			if segTokens > padTo[i] {
				return nil, fmt.Errorf("ring: rank %d sequence %d has %d KV rows > pad target %d",
					in.Rank.ID, i, segTokens, padTo[i])
			}
			padCount = padTo[i] - segTokens
			b.pad(rowLen, padCount)
		}
		total := segTokens + padCount
		if total == 0 {
			continue
		}
		kT, vT, p, s2, err := b.view(total, nkv, dh, i)
		if err != nil {
			return nil, err
		}
		if single {
			return &wire.KVBlock{K: kT, V: vT, Pos: p, Seq: s2}, nil
		}
		ks = append(ks, kT)
		vs = append(vs, vT)
		pos = append(pos, p...)
		seq = append(seq, s2...)
	}
	k := tensor.Concat(ks...)
	v := tensor.Concat(vs...)
	if k.Tokens == 0 {
		k = tensor.New(0, nkv, dh)
		v = tensor.New(0, nkv, dh)
	}
	return &wire.KVBlock{K: k, V: v, Pos: pos, Seq: seq}, nil
}

// agreeSegmentLengths computes L_i = max_j(P_j^i + T_j^i) for every sequence
// by exchanging per-rank segment lengths (a tiny metadata AllGather, 8 bytes
// per sequence).
func agreeSegmentLengths(in *PrefillInput) ([]int, error) {
	mine := make([]int, len(in.Plan.SeqLens))
	lp := in.Plan.LocalPositions(in.Rank.ID)
	ls := in.Plan.LocalSeqs(in.Rank.ID)
	for i := range mine {
		n := 0
		if in.Cache != nil {
			n = in.Cache.SeqLen(in.seqKey(i))
		}
		for slot, s := range ls {
			if s == i && lp[slot] != sharding.Pad {
				n++
			}
		}
		mine[i] = n
	}
	all, err := in.Rank.AllGather(mine, float64(len(mine))*metaBytesPerToken)
	if err != nil {
		return nil, err
	}
	max := make([]int, len(mine))
	for _, a := range all {
		lens, ok := a.([]int)
		if !ok || len(lens) != len(mine) {
			return nil, fmt.Errorf("ring: malformed segment-length gather")
		}
		for i, l := range lens {
			if l > max[i] {
				max[i] = l
			}
		}
	}
	return max, nil
}

// PassKVPrefill runs Algorithm 2 on one rank: the rank's KV block circulates
// around the ring while the local queries attend to every arriving block;
// partials merge locally. Returns the local attention output in plan order
// (padding slots are zero rows).
func PassKVPrefill(in *PrefillInput) (*attention.Output, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	n := in.Rank.N()
	segLens, err := agreeSegmentLengths(in)
	if err != nil {
		return nil, err
	}
	cur, err := in.localKV(segLens)
	if err != nil {
		return nil, err
	}
	qPos, qSeq := in.qMask()
	out := attention.NewOutput(in.Q.Tokens, in.Q.Heads, in.Q.Dim)
	// One partial buffer recycled across all n ring steps; GQAInto resets it.
	partial := attention.NewOutput(in.Q.Tokens, in.Q.Heads, in.Q.Dim)
	next := (in.Rank.ID + 1) % n
	prev := (in.Rank.ID - 1 + n) % n
	for j := 0; j < n; j++ {
		// Issue the transfer of the current block for step j+1, then compute
		// on it while the exchange is in flight — the communication/compute
		// overlap the paper relies on. The block we just sent stays valid to
		// read: circulating payloads are read-only by contract. Issue time
		// and exposed wait time both charge to the comm phase, so the
		// breakdown is comparable across the overlapped and sync paths.
		var xfer *inflight
		t0 := in.Trace.Clock()
		if j < n-1 {
			xfer = startSendRecv(in.Rank, next, prev, cur, kvBlockBytes(cur, in.Elem))
		}
		in.Trace.Comm(t0)
		t0 = in.Trace.Clock()
		if err := attention.GQAInto(partial, in.Q, cur.K, cur.V, attention.Mask{
			QPos: qPos, QSeq: qSeq, KVPos: cur.Pos, KVSeq: cur.Seq,
		}); err != nil {
			xfer.drain()
			return nil, err
		}
		attention.AccumulateInto(out, partial)
		in.Trace.Compute(t0)
		if j < n-1 {
			t0 = in.Trace.Clock()
			received, recvErr := xfer.wait()
			in.Trace.Comm(t0)
			if recvErr != nil {
				return nil, recvErr
			}
			blk, ok := received.(*wire.KVBlock)
			if !ok {
				return nil, fmt.Errorf("ring: rank %d received non-KV payload from %d", in.Rank.ID, (in.Rank.ID-1+n)%n)
			}
			cur = blk
		}
	}
	in.Trace.Finish(n)
	return out, nil
}

// PassQPrefill runs Algorithm 3 on one rank: the local KV block stays put
// while query blocks circulate; after N partial computations the scattered
// partial outputs are permuted back to their source ranks with an All2All
// and merged there. Returns the local output in plan order.
func PassQPrefill(in *PrefillInput) (*attention.Output, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	n := in.Rank.N()
	kv, err := in.localKV(nil) // stationary KV needs no cross-rank padding
	if err != nil {
		return nil, err
	}
	qPos, qSeq := in.qMask()
	cur := &wire.QBlock{Q: in.Q, Pos: qPos, Seq: qSeq}
	next := (in.Rank.ID + 1) % n
	prev := (in.Rank.ID - 1 + n) % n
	partials := make([]*attention.Output, n) // partials[s] = O_s^k for source s
	src := in.Rank.ID
	for j := 0; j < n; j++ {
		// Same double-buffering as pass-KV: the query block for step j+1 is
		// in flight while this step's partial attention runs.
		var xfer *inflight
		t0 := in.Trace.Clock()
		if j < n-1 {
			xfer = startSendRecv(in.Rank, next, prev, cur, qBlockBytes(cur, in.Elem))
		}
		in.Trace.Comm(t0)
		t0 = in.Trace.Clock()
		partial, err := attention.GQA(cur.Q, kv.K, kv.V, attention.Mask{
			QPos: cur.Pos, QSeq: cur.Seq, KVPos: kv.Pos, KVSeq: kv.Seq,
		})
		if err != nil {
			xfer.drain()
			return nil, err
		}
		partials[src] = partial
		in.Trace.Compute(t0)
		if j < n-1 {
			t0 = in.Trace.Clock()
			received, recvErr := xfer.wait()
			in.Trace.Comm(t0)
			if recvErr != nil {
				return nil, recvErr
			}
			blk, ok := received.(*wire.QBlock)
			if !ok {
				return nil, fmt.Errorf("ring: rank %d received non-Q payload from %d", in.Rank.ID, (in.Rank.ID-1+n)%n)
			}
			cur = blk
			src = (src - 1 + n) % n
		}
	}
	out, err := all2allMerge(in.Rank, partials, in.Elem, in.Trace)
	if err != nil {
		return nil, err
	}
	in.Trace.Finish(n)
	return out, nil
}

// all2allMerge sends partials[s] back to source rank s, receives this rank's
// partials from every peer, and merges them (the permute + All2All + merge
// tail of Algorithms 3 and 4). tr (nil-safe) charges the exchange to the
// sweep's all2all phase.
func all2allMerge(rank *comm.Rank, partials []*attention.Output, elem float64, tr *trace.SweepTimer) (*attention.Output, error) {
	n := rank.N()
	msgs := make([]any, n)
	sizes := make([]float64, n)
	for s := 0; s < n; s++ {
		blk := &wire.OBlock{Out: partials[s]}
		msgs[s] = blk
		sizes[s] = oBlockBytes(blk, elem)
	}
	t0 := tr.Clock()
	got, err := rank.All2All(msgs, sizes)
	tr.A2A(t0)
	if err != nil {
		return nil, err
	}
	mine := make([]*attention.Output, 0, n)
	for src := 0; src < n; src++ {
		blk, ok := got[src].(*wire.OBlock)
		if !ok {
			return nil, fmt.Errorf("ring: rank %d received non-output payload from %d in All2All", rank.ID, src)
		}
		mine = append(mine, blk.Out)
	}
	return attention.Merge(mine...), nil
}

// AllGatherPrefill is the ablation baseline (§3.5.2): every rank gathers all
// KV up front, then computes local attention in one shot. Same result as the
// ring variants, but the gather sits on the critical path.
func AllGatherPrefill(in *PrefillInput) (*attention.Output, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	local, err := in.localKV(nil)
	if err != nil {
		return nil, err
	}
	gathered, err := in.Rank.AllGather(local, kvBlockBytes(local, in.Elem))
	if err != nil {
		return nil, err
	}
	ks := make([]*tensor.Tensor, 0, len(gathered))
	vs := make([]*tensor.Tensor, 0, len(gathered))
	var pos, seq []int
	for _, g := range gathered {
		blk, ok := g.(*wire.KVBlock)
		if !ok {
			return nil, fmt.Errorf("ring: rank %d gathered non-KV payload", in.Rank.ID)
		}
		if blk.K.Tokens == 0 {
			continue
		}
		ks = append(ks, blk.K)
		vs = append(vs, blk.V)
		pos = append(pos, blk.Pos...)
		seq = append(seq, blk.Seq...)
	}
	qPos, qSeq := in.qMask()
	k := tensor.Concat(ks...)
	v := tensor.Concat(vs...)
	if k.Tokens == 0 {
		k = tensor.New(0, in.K.Heads, in.K.Dim)
		v = tensor.New(0, in.K.Heads, in.K.Dim)
	}
	return attention.GQA(in.Q, k, v, attention.Mask{QPos: qPos, QSeq: qSeq, KVPos: pos, KVSeq: seq})
}

// AppendLocalKV persists a rank's new-token KV shard into its cache with
// global positions, skipping padding slots. Call after a prefill so later
// turns and decode see the tokens. seqIDs maps batch-plan indices to cache
// keys (nil = identity).
func AppendLocalKV(cache *kvcache.Cache, plan *sharding.BatchShard, rankID int, p, seqIDs []int, k, v *tensor.Tensor) error {
	lp := plan.LocalPositions(rankID)
	ls := plan.LocalSeqs(rankID)
	for i := range plan.SeqLens {
		rows := make([]int, 0)
		pos := make([]int, 0)
		for slot, s := range ls {
			if s == i && lp[slot] != sharding.Pad {
				rows = append(rows, slot)
				pos = append(pos, p[i]+lp[slot])
			}
		}
		if len(rows) == 0 {
			continue
		}
		key := i
		if seqIDs != nil {
			key = seqIDs[i]
		}
		if err := cache.Append(key, k.Gather(rows), v.Gather(rows), pos); err != nil {
			return err
		}
	}
	return nil
}
