package ring

import (
	"fmt"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

// BlockCache keeps, per sequence, the assembled contiguous KV segment the
// ring algorithms attend against — the [cached rows..., new rows...,
// padding] layout localKV produces and decodeBlockAttention reads. The seed
// engine re-gathered and re-concatenated the whole cached context from the
// paged kvcache on every prefill chunk and every decode sweep row, an
// O(context) copy per TokenBudget step; the BlockCache instead mirrors each
// sequence's kvcache rows once and extends the mirror incrementally, so a
// chunk copies only its own new rows and a decode step at most the one row
// appended since the last sweep.
//
// Like kvcache.Cache, a BlockCache is owned by exactly one rank goroutine
// (one per rank per layer) and is not safe for concurrent use. Its tensors
// are handed to peers as zero-copy views during a ring pass; that is safe
// because the owner only appends — never rewrites — mirrored rows, and it
// does so strictly between passes (the cluster joins every rank before the
// next chunk or decode step starts).
type BlockCache struct {
	seqs  map[int]*seqBlock
	stats BlockCacheStats
}

// BlockCacheStats counts the copy work the assembled-block cache performed,
// exposed through /v1/stats so the zero-rebuild property is observable (and
// asserted in tests).
type BlockCacheStats struct {
	Rebuilds     int64 `json:"rebuilds"`      // full mirror (re)builds from the kvcache
	RebuildRows  int64 `json:"rebuild_rows"`  // rows copied by those rebuilds
	Appends      int64 `json:"appends"`       // incremental syncs that copied >= 1 row
	AppendedRows int64 `json:"appended_rows"` // rows copied incrementally (cache deltas + chunk rows)
	Reuses       int64 `json:"reuses"`        // syncs that copied nothing: mirror already current
}

// Add accumulates other into s; the cluster uses it to aggregate per-rank
// per-layer caches.
func (s *BlockCacheStats) Add(other BlockCacheStats) {
	s.Rebuilds += other.Rebuilds
	s.RebuildRows += other.RebuildRows
	s.Appends += other.Appends
	s.AppendedRows += other.AppendedRows
	s.Reuses += other.Reuses
}

// seqBlock is one sequence's mirrored segment. k and v are row-major
// [n][NKV][DH] backing arrays with geometric spare capacity; pos holds the
// global position of every mirrored row, plus any padding rows written past
// n for the current chunk. n never exceeds the kvcache row count except
// transiently within one prefill chunk (see advance), and falls back to a
// full rebuild whenever the mirror and the kvcache disagree.
type seqBlock struct {
	k, v []float32
	pos  []int
	n    int
	// maxPos is the largest global position of any mirrored row — O(1)
	// state for the stale-span guard, covering every row that ever entered
	// the mirror (prefill syncs, decode syncs, optimistic advances alike).
	maxPos int
	// seqFill is the mask sequence-id array for views of this block: a
	// constant-value slice re-filled only when the value (batch index for
	// prefill, batch sequence id for decode) or the needed length changes.
	seqFill    []int
	seqFillVal int
}

// NewBlockCache returns an empty assembled-block cache.
func NewBlockCache() *BlockCache {
	return &BlockCache{seqs: make(map[int]*seqBlock)}
}

// Drop forgets a sequence's mirror. Call whenever the underlying kvcache
// drops the sequence; a stale mirror is detected and rebuilt anyway, but
// dropping eagerly frees the memory.
func (bc *BlockCache) Drop(seq int) {
	delete(bc.seqs, seq)
}

// Stats returns the cumulative copy counters.
func (bc *BlockCache) Stats() BlockCacheStats { return bc.stats }

// ensure grows the backing arrays to hold rows rows of rowLen floats.
func (b *seqBlock) ensure(rows, rowLen int) {
	if need := rows * rowLen; cap(b.k) < need {
		grow := 2 * cap(b.k)
		if grow < need {
			grow = need
		}
		nk := make([]float32, grow)
		copy(nk, b.k[:b.n*rowLen])
		nv := make([]float32, grow)
		copy(nv, b.v[:b.n*rowLen])
		b.k, b.v = nk, nv
	}
	b.k = b.k[:cap(b.k)]
	b.v = b.v[:cap(b.v)]
	if cap(b.pos) < rows {
		grow := 2 * cap(b.pos)
		if grow < rows {
			grow = rows
		}
		np := make([]int, grow)
		copy(np, b.pos[:b.n])
		b.pos = np
	}
	b.pos = b.pos[:cap(b.pos)]
}

// seqIDs returns the constant-value sequence-id slice for the first rows
// rows of the block.
func (b *seqBlock) seqIDs(val, rows int) []int {
	if len(b.seqFill) < rows || b.seqFillVal != val {
		if cap(b.seqFill) < rows {
			b.seqFill = make([]int, rows)
		}
		b.seqFill = b.seqFill[:cap(b.seqFill)]
		for i := range b.seqFill {
			b.seqFill[i] = val
		}
		b.seqFillVal = val
	}
	return b.seqFill[:rows]
}

// sync brings the mirror up to date with the kvcache's rows for key. Rows
// appended since the last sync are fetched incrementally; a mirror that is
// ahead of the cache (a ring pass failed after an optimistic advance) is
// rebuilt from scratch. When base >= 0 every newly mirrored row's position
// must be < base — the partial-prefill overlap check the seed ran over the
// whole context every chunk, now run once per row over its lifetime (the
// bound only grows, so previously validated rows stay valid).
func (bc *BlockCache) sync(cache *kvcache.Cache, key, base, rowLen int) (*seqBlock, error) {
	b := bc.seqs[key]
	if b == nil {
		b = &seqBlock{seqFillVal: -1, maxPos: -1}
		bc.seqs[key] = b
	}
	cacheLen := 0
	if cache != nil {
		cacheLen = cache.SeqLen(key)
	}
	if b.n > cacheLen {
		b.n = 0 // mirror ran ahead of a failed pass: rebuild below
		b.maxPos = -1
	}
	if b.n < cacheLen {
		rebuild := b.n == 0
		b.ensure(cacheLen, rowLen)
		// Delta rows land directly in the mirror's backing arrays — no
		// intermediate tensors on the sweep path.
		delta := int64(cache.CopyRange(key, b.n, b.k[b.n*rowLen:], b.v[b.n*rowLen:], b.pos[b.n:cacheLen]))
		for _, cp := range b.pos[b.n:cacheLen] {
			if cp > b.maxPos {
				b.maxPos = cp
			}
		}
		b.n = cacheLen
		if rebuild {
			bc.stats.Rebuilds++
			bc.stats.RebuildRows += delta
		} else {
			bc.stats.Appends++
			bc.stats.AppendedRows += delta
		}
	} else {
		bc.stats.Reuses++
	}
	// The guard runs on every prefill sync over maxPos, which summarizes the
	// whole mirror — rows that entered through earlier chunks or decode
	// sweeps included — so its coverage equals the seed's full per-chunk
	// rescan at O(1) cost. (A chunk's own optimistically advanced rows sit
	// at positions < base+chunk and are covered by the next chunk's larger
	// base, exactly as the seed's cached-rows-only scan covered them.)
	if base >= 0 && b.maxPos >= base {
		return nil, fmt.Errorf("cached position %d >= prefill base %d", b.maxPos, base)
	}
	return b, nil
}

// advance appends freshly computed rows (a prefill chunk's new tokens) to
// the mirror ahead of the kvcache: the engine appends exactly these rows to
// the cache right after the ring pass, so the mirror is already correct for
// the next chunk. If the pass fails and the cache append never happens, the
// next sync notices the mirror is ahead and rebuilds.
func (b *seqBlock) advance(bc *BlockCache, rowLen int, kRows, vRows [][]float32, pos []int) {
	n := len(pos)
	if n == 0 {
		return
	}
	b.ensure(b.n+n, rowLen)
	for i := 0; i < n; i++ {
		copy(b.k[(b.n+i)*rowLen:], kRows[i])
		copy(b.v[(b.n+i)*rowLen:], vRows[i])
		b.pos[b.n+i] = pos[i]
		if pos[i] > b.maxPos {
			b.maxPos = pos[i]
		}
	}
	b.n += n
	bc.stats.Appends++
	bc.stats.AppendedRows += int64(n)
}

// pad writes padCount zero rows with position -1 after the mirrored rows
// (not advancing n: padding belongs to this chunk only and is overwritten by
// the next chunk's real rows).
func (b *seqBlock) pad(rowLen, padCount int) {
	if padCount == 0 {
		return
	}
	b.ensure(b.n+padCount, rowLen)
	clear(b.k[b.n*rowLen : (b.n+padCount)*rowLen])
	clear(b.v[b.n*rowLen : (b.n+padCount)*rowLen])
	for i := 0; i < padCount; i++ {
		b.pos[b.n+i] = -1
	}
}

// view materializes the first rows rows (mirror plus any padding just
// written) as zero-copy tensors plus the mask metadata, tagging every row
// with sequence id seqVal.
func (b *seqBlock) view(rows, nkv, dh, seqVal int) (k, v *tensor.Tensor, pos, seq []int, err error) {
	rowLen := nkv * dh
	k, err = tensor.FromData(rows, nkv, dh, b.k[:rows*rowLen])
	if err != nil {
		return nil, nil, nil, nil, err
	}
	v, err = tensor.FromData(rows, nkv, dh, b.v[:rows*rowLen])
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return k, v, b.pos[:rows], b.seqIDs(seqVal, rows), nil
}
