package ring

import (
	"sync/atomic"

	"repro/internal/comm"
)

// This file implements the communication/compute overlap the paper's
// latency model assumes (§3.3): on ring step j a rank issues the exchange
// of its current block for step j+1 and computes attention on the block it
// already holds while the transfer is in flight. The exchange is the same
// comm.Rank.SendRecv call the synchronous path makes — same per-link byte
// accounting under the world's stats mutex, same error surface — moved onto
// a helper goroutine; the rank waits for it before touching the received
// block, so at most one communication op is ever in flight per rank (the
// comm contract) and the compute order, outputs, and LinkStats are
// bit-for-bit those of the synchronous loop.

// overlapEnabled gates the double-buffered hot path. On by default; the
// synchronous path remains selectable (cpserve -ring-overlap=false,
// SetOverlap) as the semantics oracle for the parity tests.
var overlapEnabled atomic.Bool

func init() { overlapEnabled.Store(true) }

// SetOverlap toggles the ring communication/compute overlap and returns the
// previous setting. Safe to call concurrently, but toggling mid-pass only
// affects steps issued after the call.
func SetOverlap(on bool) bool { return overlapEnabled.Swap(on) }

// Overlapped reports whether the ring hot path double-buffers transfers.
func Overlapped() bool { return overlapEnabled.Load() }

var (
	statOverlapSteps  atomic.Int64 // ring exchanges issued concurrently with compute
	statOverlapHidden atomic.Int64 // of those, transfers that finished before the compute did
	statSyncSteps     atomic.Int64 // exchanges run synchronously (overlap disabled)
)

// OverlapStats reports how often the ring hot path managed to hide a
// transfer entirely behind attention compute. Occupancy near 1 means the
// ring is compute-bound and communication is free, the regime the paper's
// scalability argument depends on; near 0 means transfers outlast compute
// and the ring is bandwidth-bound.
type OverlapStats struct {
	Enabled   bool    `json:"enabled"`
	Steps     int64   `json:"steps"`        // exchanges overlapped with compute
	Hidden    int64   `json:"hidden_steps"` // transfers fully hidden behind compute
	SyncSteps int64   `json:"sync_steps"`   // exchanges run synchronously
	Occupancy float64 `json:"occupancy"`    // Hidden / Steps, 0 when no overlapped steps
}

// OverlapSnapshot returns the current overlap counters.
func OverlapSnapshot() OverlapStats {
	s := OverlapStats{
		Enabled:   overlapEnabled.Load(),
		Steps:     statOverlapSteps.Load(),
		Hidden:    statOverlapHidden.Load(),
		SyncSteps: statSyncSteps.Load(),
	}
	if s.Steps > 0 {
		s.Occupancy = float64(s.Hidden) / float64(s.Steps)
	}
	return s
}

type commResult struct {
	payload any
	err     error
}

// inflight is one ring exchange in flight (or, with overlap disabled, one
// already completed synchronously). Exactly one of wait or drain must be
// called before the owning rank issues its next communication op.
type inflight struct {
	ch         chan commResult
	overlapped bool
}

// startSendRecv issues rank.SendRecv(next, prev, payload, bytes). With
// overlap enabled the call runs on a helper goroutine and this returns
// immediately so the caller can compute on its current block; otherwise the
// call completes here and the result is buffered. payload must be treated
// as read-only from this point — it is circulating.
func startSendRecv(rank *comm.Rank, next, prev int, payload any, bytes float64) *inflight {
	ch := make(chan commResult, 1)
	if !overlapEnabled.Load() {
		recv, err := rank.SendRecv(next, prev, payload, bytes)
		ch <- commResult{recv, err}
		statSyncSteps.Add(1)
		return &inflight{ch: ch}
	}
	go func() {
		recv, err := rank.SendRecv(next, prev, payload, bytes)
		ch <- commResult{recv, err}
	}()
	statOverlapSteps.Add(1)
	return &inflight{ch: ch, overlapped: true}
}

// wait blocks until the exchange completes and returns the received payload.
// An overlapped transfer that is already done when compute finishes counts
// as hidden — the occupancy numerator.
func (f *inflight) wait() (any, error) {
	if f.overlapped {
		select {
		case r := <-f.ch:
			statOverlapHidden.Add(1)
			return r.payload, r.err
		default:
		}
	}
	r := <-f.ch
	return r.payload, r.err
}

// drain abandons an exchange whose result no longer matters (the local
// compute failed first) after letting it finish, so the mailbox slot is
// consumed and the rank's next communication op cannot receive a stale
// block. Blocks at most as long as the synchronous path would have blocked
// inside SendRecv before reaching the same compute error. Nil-safe so
// error paths can call it unconditionally.
func (f *inflight) drain() {
	if f == nil {
		return
	}
	<-f.ch
}
