package ring

import (
	"fmt"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/comm/wire"
	"repro/internal/kvcache"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// DecodeToken is one sequence's decode token assigned to a rank for the
// current step.
type DecodeToken struct {
	Seq int // batch sequence id
	Pos int // global position of the new token (== context length so far)
}

// DecodeInput is one rank's view of a batched decode step (Algorithm 4).
type DecodeInput struct {
	Rank    *comm.Rank
	NumSeqs int           // batch size B
	Owned   []DecodeToken // tokens assigned to this rank this step
	// BlockLen is the circulating query-block size every rank agreed on. It
	// must be >= len(Owned) on every rank. Zero means the default padding of
	// ceil(NumSeqs/N), which is only valid when the owner assignment spreads
	// the batch evenly; engines whose owner rotation can collide (e.g.
	// per-sequence round-robin) pass the true max over ranks.
	BlockLen int
	// Q, K, V rows align with Owned: Q is [len(Owned), NH, DH], K and V are
	// [len(Owned), NKV, DH] — the projections of each owned decode token.
	Q, K, V *tensor.Tensor
	Cache   *kvcache.Cache // this rank's shard of every sequence's KV
	// Blocks caches each sequence's assembled contiguous KV across decode
	// steps (and across the prefill that preceded them), so a sweep reads a
	// zero-copy view extended by at most one row instead of re-gathering the
	// whole paged context per visiting query. Nil rebuilds per call.
	Blocks *BlockCache
	Elem   float64
	// Trace, when non-nil, accumulates the sweep's per-phase wall time;
	// nil costs nothing and cannot perturb the compute path.
	Trace *trace.SweepTimer
}

func (in *DecodeInput) validate() error {
	if in.Rank == nil || in.Cache == nil {
		return fmt.Errorf("ring: decode needs rank and cache")
	}
	if in.NumSeqs <= 0 {
		return fmt.Errorf("ring: decode batch size %d", in.NumSeqs)
	}
	if in.Q.Tokens != len(in.Owned) || in.K.Tokens != len(in.Owned) || in.V.Tokens != len(in.Owned) {
		return fmt.Errorf("ring: decode rows %d/%d/%d, want %d owned",
			in.Q.Tokens, in.K.Tokens, in.V.Tokens, len(in.Owned))
	}
	if in.Elem <= 0 {
		return fmt.Errorf("ring: non-positive element size %v", in.Elem)
	}
	if in.BlockLen < 0 {
		return fmt.Errorf("ring: negative block length %d", in.BlockLen)
	}
	if in.BlockLen > 0 && in.BlockLen < len(in.Owned) {
		// Reject before any KV is appended or any peer enters the ring: a
		// failure past that point stalls peers until the receive timeout
		// and leaves the cache double-append-prone on retry.
		return fmt.Errorf("ring: rank %d owns %d tokens > block %d",
			in.Rank.ID, len(in.Owned), in.BlockLen)
	}
	for _, tok := range in.Owned {
		if tok.Seq < 0 {
			return fmt.Errorf("ring: negative sequence id %d", tok.Seq)
		}
	}
	return nil
}

// blockLen returns the padded per-rank decode block size: the paper pads the
// number of queries to be divisible by the number of ranks, which for B=1
// means every rank processes one (possibly padding) query (§4.3).
func decodeBlockLen(numSeqs, n int) int { return (numSeqs + n - 1) / n }

// PassQDecode runs Algorithm 4 on one rank: the rank first appends its owned
// decode tokens' K/V to its cache shard, then circulates the padded query
// block (with batch ids) around the ring, computing each visiting query
// against the local KV shard of that query's sequence. Partial outputs are
// restored to owner ranks via All2All and merged. The returned output rows
// align with in.Owned.
func PassQDecode(in *DecodeInput) (*attention.Output, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	n := in.Rank.N()
	// Persist the new tokens' KV on the owner rank before attention so each
	// query can attend to itself through the normal cache path.
	for i, tok := range in.Owned {
		if err := in.Cache.Append(tok.Seq, in.K.SliceTokens(i, i+1), in.V.SliceTokens(i, i+1), []int{tok.Pos}); err != nil {
			return nil, err
		}
	}
	bl := in.BlockLen
	if bl == 0 {
		bl = decodeBlockLen(in.NumSeqs, n)
	}
	q := tensor.New(bl, in.Q.Heads, in.Q.Dim)
	bids := make([]int, bl)
	pos := make([]int, bl)
	for i := range bids {
		bids[i] = -1
		pos[i] = -1
	}
	for i, tok := range in.Owned {
		if i >= bl {
			return nil, fmt.Errorf("ring: rank %d owns %d tokens > block %d", in.Rank.ID, len(in.Owned), bl)
		}
		copy(q.Row2D(i), in.Q.Row2D(i))
		bids[i] = tok.Seq
		pos[i] = tok.Pos
	}
	cur := &wire.QBlock{Q: q, Pos: pos, Seq: bids}
	next := (in.Rank.ID + 1) % n
	prev := (in.Rank.ID - 1 + n) % n
	partials := make([]*attention.Output, n)
	blocks := in.Blocks
	if blocks == nil {
		blocks = NewBlockCache()
	}
	// One single-row output recycled across every visiting query of every
	// ring step; decodeBlockAttention resets it per row via GQAInto.
	rowOut := attention.NewOutput(1, in.Q.Heads, in.Q.Dim)
	src := in.Rank.ID
	for j := 0; j < n; j++ {
		// Decode sweeps double-buffer too: the next visiting query block is
		// in flight while this block attends to the local KV shard.
		var xfer *inflight
		t0 := in.Trace.Clock()
		if j < n-1 {
			xfer = startSendRecv(in.Rank, next, prev, cur, qBlockBytes(cur, in.Elem))
		}
		in.Trace.Comm(t0)
		t0 = in.Trace.Clock()
		partial, err := decodeBlockAttention(in.Cache, blocks, cur, rowOut)
		if err != nil {
			xfer.drain()
			return nil, err
		}
		partials[src] = partial
		in.Trace.Compute(t0)
		if j < n-1 {
			t0 = in.Trace.Clock()
			received, recvErr := xfer.wait()
			in.Trace.Comm(t0)
			if recvErr != nil {
				return nil, recvErr
			}
			blk, ok := received.(*wire.QBlock)
			if !ok {
				return nil, fmt.Errorf("ring: rank %d received non-Q payload from %d in decode", in.Rank.ID, (in.Rank.ID-1+n)%n)
			}
			cur = blk
			src = (src - 1 + n) % n
		}
	}
	merged, err := all2allMerge(in.Rank, partials, in.Elem, in.Trace)
	if err != nil {
		return nil, err
	}
	in.Trace.Finish(n)
	// Drop padding rows; owned tokens sit at the front of the block.
	rows := make([]int, len(in.Owned))
	for i := range rows {
		rows[i] = i
	}
	return merged.GatherTokens(rows), nil
}

// decodeBlockAttention computes the visiting query block against this rank's
// KV shard: row r attends to the local cache of sequence seq[r] under the
// causal position bound pos[r]. Padding rows produce identity outputs. Each
// sequence's KV comes from its assembled-block mirror (extended by at most
// the rows appended since the last sweep), the query row is a zero-copy view
// into the circulating block, and rowOut is recycled across rows.
func decodeBlockAttention(cache *kvcache.Cache, blocks *BlockCache, blk *wire.QBlock, rowOut *attention.Output) (*attention.Output, error) {
	out := attention.NewOutput(blk.Q.Tokens, blk.Q.Heads, blk.Q.Dim)
	nkv, dh := cache.KVHeads(), cache.HeadDim()
	qRowLen := blk.Q.Heads * blk.Q.Dim
	for r := 0; r < blk.Q.Tokens; r++ {
		if blk.Seq[r] < 0 {
			continue
		}
		b, err := blocks.sync(cache, blk.Seq[r], -1, nkv*dh)
		if err != nil {
			return nil, err
		}
		if b.n == 0 {
			continue
		}
		k, v, kpos, kseq, err := b.view(b.n, nkv, dh, blk.Seq[r])
		if err != nil {
			return nil, err
		}
		qRow, err := tensor.FromData(1, blk.Q.Heads, blk.Q.Dim, blk.Q.Data[r*qRowLen:(r+1)*qRowLen])
		if err != nil {
			return nil, err
		}
		if err := attention.GQAInto(rowOut, qRow, k, v, attention.Mask{
			QPos: blk.Pos[r : r+1], QSeq: blk.Seq[r : r+1], KVPos: kpos, KVSeq: kseq,
		}); err != nil {
			return nil, err
		}
		copy(out.O.Row2D(r), rowOut.O.Row2D(0))
		copy(out.LSE[r*out.O.Heads:(r+1)*out.O.Heads], rowOut.LSE)
	}
	return out, nil
}
