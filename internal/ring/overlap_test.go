package ring

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/comm/wire"
)

// runOverlapScenario drives a multi-turn mixed-variant conversation — both
// prefill rings plus two batched decode sweeps — over a fresh in-process
// world and returns every per-rank output in turn order together with the
// world's per-link and total communication accounting.
func runOverlapScenario(t *testing.T, n int) ([]*attention.Output, []wire.LinkStat, comm.Stats) {
	t.Helper()
	h := newHarness(t, 77, n, 2)
	h.prefillTurn([]int{8, 6}, PassKVPrefill, "pass-kv")
	h.prefillTurn([]int{3, 5}, PassQPrefill, "pass-q")
	h.decodeStep(0)
	h.decodeStep(1)
	return h.outs, h.world.LinkStats(), h.world.TotalStats()
}

func requireSameOutputs(t *testing.T, sync, overlap []*attention.Output) {
	t.Helper()
	if len(sync) != len(overlap) {
		t.Fatalf("overlapped run produced %d outputs, synchronous %d", len(overlap), len(sync))
	}
	for i := range sync {
		a, b := sync[i], overlap[i]
		if len(a.O.Data) != len(b.O.Data) || len(a.LSE) != len(b.LSE) {
			t.Fatalf("output %d shape differs: %d/%d data, %d/%d lse",
				i, len(a.O.Data), len(b.O.Data), len(a.LSE), len(b.LSE))
		}
		for j := range a.O.Data {
			if math.Float32bits(a.O.Data[j]) != math.Float32bits(b.O.Data[j]) {
				t.Fatalf("output %d element %d: sync %x, overlap %x", i, j, a.O.Data[j], b.O.Data[j])
			}
		}
		for j := range a.LSE {
			if math.Float64bits(a.LSE[j]) != math.Float64bits(b.LSE[j]) {
				t.Fatalf("output %d lse %d: sync %x, overlap %x", i, j, a.LSE[j], b.LSE[j])
			}
		}
	}
}

// The double-buffered hot path must be externally indistinguishable from
// the synchronous one: bit-identical outputs and LSEs, and exactly equal
// per-link modeled byte/message accounting (the in-process transport has no
// wire counters, so full LinkStat equality is required here).
func TestOverlapMatchesSynchronousExactly(t *testing.T) {
	prev := SetOverlap(false)
	defer SetOverlap(prev)
	for _, n := range []int{2, 3, 4} {
		SetOverlap(false)
		syncOuts, syncLinks, syncTotal := runOverlapScenario(t, n)
		SetOverlap(true)
		ovOuts, ovLinks, ovTotal := runOverlapScenario(t, n)
		requireSameOutputs(t, syncOuts, ovOuts)
		if !reflect.DeepEqual(syncLinks, ovLinks) {
			t.Fatalf("n=%d link accounting differs:\nsync:    %+v\noverlap: %+v", n, syncLinks, ovLinks)
		}
		if !reflect.DeepEqual(syncTotal, ovTotal) {
			t.Fatalf("n=%d total accounting differs:\nsync:    %+v\noverlap: %+v", n, syncTotal, ovTotal)
		}
	}
}

// The occupancy telemetry must attribute steps to the mode that actually
// ran them: overlapped runs advance Steps (and only those can be Hidden),
// synchronous runs advance SyncSteps.
func TestOverlapCountersTrackMode(t *testing.T) {
	prev := SetOverlap(true)
	defer SetOverlap(prev)
	before := OverlapSnapshot()
	runOverlapScenario(t, 3)
	mid := OverlapSnapshot()
	if mid.Steps <= before.Steps {
		t.Fatalf("overlapped run advanced Steps %d -> %d", before.Steps, mid.Steps)
	}
	if mid.SyncSteps != before.SyncSteps {
		t.Fatalf("overlapped run advanced SyncSteps %d -> %d", before.SyncSteps, mid.SyncSteps)
	}
	if mid.Hidden < before.Hidden || mid.Hidden > mid.Steps {
		t.Fatalf("hidden count %d outside [%d, %d]", mid.Hidden, before.Hidden, mid.Steps)
	}
	SetOverlap(false)
	runOverlapScenario(t, 3)
	after := OverlapSnapshot()
	if after.SyncSteps <= mid.SyncSteps {
		t.Fatalf("synchronous run advanced SyncSteps %d -> %d", mid.SyncSteps, after.SyncSteps)
	}
	if after.Steps != mid.Steps {
		t.Fatalf("synchronous run advanced overlapped Steps %d -> %d", mid.Steps, after.Steps)
	}
}
