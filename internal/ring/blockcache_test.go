package ring

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

// chunkedHarness drives a chunked single-sequence prefill twice — once with
// persistent per-rank BlockCaches, once with the transient rebuild path —
// and hands both outputs plus the persistent caches' stats to the caller.
type chunkedHarness struct {
	n, chunk, chunks int
	variant          prefillFn
}

func (ch chunkedHarness) run(t *testing.T, withBlocks bool) ([]*attention.Output, []*BlockCache, []BlockCacheStats) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	world := comm.NewWorld(ch.n)
	world.RecvTimeout = 5 * time.Second
	caches := make([]*kvcache.Cache, ch.n)
	blocks := make([]*BlockCache, ch.n)
	for r := 0; r < ch.n; r++ {
		c, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh, PageSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		caches[r] = c
		if withBlocks {
			blocks[r] = NewBlockCache()
		}
	}
	var outs []*attention.Output
	var perChunk []BlockCacheStats
	p := 0
	for chunkIdx := 0; chunkIdx < ch.chunks; chunkIdx++ {
		plan, err := sharding.NewBatchShard([]int{ch.chunk}, ch.n)
		if err != nil {
			t.Fatal(err)
		}
		fq := tensor.RandN(rng, plan.TotalTokens(), nh, dh)
		fk := tensor.RandN(rng, plan.TotalTokens(), nkv, dh)
		fv := tensor.RandN(rng, plan.TotalTokens(), nkv, dh)
		chunkOuts, err := comm.RunCollect(world, func(r *comm.Rank) (*attention.Output, error) {
			return ch.variant(&PrefillInput{
				Rank: r, Plan: plan, P: []int{p},
				Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
				Cache: caches[r.ID], Blocks: blocks[r.ID], Elem: elem,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		locals := make([]*tensor.Tensor, ch.n)
		lses := make([]*attention.Output, ch.n)
		for r, o := range chunkOuts {
			locals[r] = o.O
			lses[r] = o
		}
		_ = lses
		outs = append(outs, &attention.Output{O: plan.Unshard(locals), LSE: nil})
		for r := 0; r < ch.n; r++ {
			if err := AppendLocalKV(caches[r], plan, r, []int{p}, nil, plan.Shard(fk, r), plan.Shard(fv, r)); err != nil {
				t.Fatal(err)
			}
		}
		p += ch.chunk
		if withBlocks {
			var agg BlockCacheStats
			for r := 0; r < ch.n; r++ {
				agg.Add(blocks[r].Stats())
			}
			perChunk = append(perChunk, agg)
		}
	}
	return outs, blocks, perChunk
}

// Chunked prefill with a persistent BlockCache must copy only each chunk's
// new rows — never re-gather the cached context — and must produce exactly
// the same attention outputs as the rebuild-every-chunk path.
func TestBlockCacheChunkedPrefillCopiesOnlyNewRows(t *testing.T) {
	for name, variant := range map[string]prefillFn{
		"pass-kv":    PassKVPrefill,
		"pass-q":     PassQPrefill,
		"all-gather": AllGatherPrefill,
	} {
		t.Run(name, func(t *testing.T) {
			ch := chunkedHarness{n: 2, chunk: 8, chunks: 4, variant: variant}
			warm, _, stats := ch.run(t, true)
			cold, _, _ := ch.run(t, false)
			for i := range warm {
				if d := tensor.MaxAbsDiff(warm[i].O, cold[i].O); d != 0 {
					t.Fatalf("chunk %d: block-cache path differs from rebuild path by %v", i, d)
				}
			}
			final := stats[len(stats)-1]
			if final.RebuildRows != 0 || final.Rebuilds != 0 {
				t.Fatalf("chunked prefill rebuilt the mirror: %+v", final)
			}
			// Every chunk's new rows are copied once into the mirror (the
			// chunk advance) across the ranks; the cached prefix is never
			// re-copied, so the total is linear in tokens, not quadratic.
			total := int64(ch.chunk * ch.chunks)
			if final.AppendedRows != total {
				t.Fatalf("appended %d rows, want exactly %d (chunk size x chunks)", final.AppendedRows, total)
			}
			// Per-chunk deltas stay flat at the chunk size — the signature
			// of the zero-rebuild hot path (the seed re-copied the whole
			// growing context each chunk).
			for i := 1; i < len(stats); i++ {
				delta := stats[i].AppendedRows - stats[i-1].AppendedRows
				if delta != int64(ch.chunk) {
					t.Fatalf("chunk %d copied %d rows, want %d", i, delta, ch.chunk)
				}
			}
			if final.Reuses == 0 {
				t.Fatal("no mirror reuses recorded across chunks")
			}
		})
	}
}

// A mirror that ran ahead of a failed ring pass (rows advanced but never
// appended to the kvcache) must rebuild instead of serving stale rows.
func TestBlockCacheAheadMirrorRebuilds(t *testing.T) {
	cache, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh, PageSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	k1 := tensor.RandN(rng, 3, nkv, dh)
	v1 := tensor.RandN(rng, 3, nkv, dh)
	if err := cache.Append(0, k1, v1, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	bc := NewBlockCache()
	b, err := bc.sync(cache, 0, -1, nkv*dh)
	if err != nil {
		t.Fatal(err)
	}
	// Optimistically advance with a row the cache never receives.
	ghostK := tensor.RandN(rng, 1, nkv, dh)
	ghostV := tensor.RandN(rng, 1, nkv, dh)
	b.advance(bc, nkv*dh, [][]float32{ghostK.Row2D(0)}, [][]float32{ghostV.Row2D(0)}, []int{3})
	if b.n != 4 {
		t.Fatalf("mirror rows %d, want 4", b.n)
	}
	b2, err := bc.sync(cache, 0, -1, nkv*dh)
	if err != nil {
		t.Fatal(err)
	}
	if b2.n != 3 {
		t.Fatalf("mirror rows after resync %d, want 3", b2.n)
	}
	// Two rebuilds total: the initial mirror build plus the recovery after
	// the mirror ran ahead.
	if bc.Stats().Rebuilds != 2 {
		t.Fatalf("expected initial + recovery rebuilds, stats %+v", bc.Stats())
	}
	k, _, pos, _, err := b2.view(b2.n, nkv, dh, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(k, k1); d != 0 {
		t.Fatalf("rebuilt mirror differs from cache by %v", d)
	}
	if len(pos) != 3 || pos[2] != 2 {
		t.Fatalf("rebuilt positions %v", pos)
	}
}

// sync must reject newly mirrored rows at or past the prefill base — the
// same stale-span guard the seed ran over the whole context every chunk.
func TestBlockCacheSyncValidatesPositions(t *testing.T) {
	cache, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh, PageSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	if err := cache.Append(0, tensor.RandN(rng, 2, nkv, dh), tensor.RandN(rng, 2, nkv, dh), []int{0, 5}); err != nil {
		t.Fatal(err)
	}
	bc := NewBlockCache()
	if _, err := bc.sync(cache, 0, 3, nkv*dh); err == nil {
		t.Fatal("cached position 5 >= base 3 accepted")
	}
}

// Rows that entered the mirror through an unvalidated path (a decode sweep
// syncs with no base) must still trip the stale-span guard on a later
// prefill sync: the maxPos summary covers the whole mirror, not just the
// rows fetched by the current call.
func TestBlockCacheGuardCoversPreviouslyMirroredRows(t *testing.T) {
	cache, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh, PageSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if err := cache.Append(0, tensor.RandN(rng, 2, nkv, dh), tensor.RandN(rng, 2, nkv, dh), []int{0, 5}); err != nil {
		t.Fatal(err)
	}
	bc := NewBlockCache()
	// Decode-style sync: no base, rows mirror unvalidated.
	if _, err := bc.sync(cache, 0, -1, nkv*dh); err != nil {
		t.Fatal(err)
	}
	// Later prefill sync reuses the mirror (no new rows) but must still
	// reject the overlap.
	if _, err := bc.sync(cache, 0, 3, nkv*dh); err == nil {
		t.Fatal("mirrored position 5 >= base 3 accepted on the reuse path")
	}
}
