package ring

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/attention"
	"repro/internal/comm"
	"repro/internal/kvcache"
	"repro/internal/sharding"
	"repro/internal/tensor"
)

const (
	tol  = 1e-4
	nh   = 8
	nkv  = 2
	dh   = 4
	elem = 2.0
)

// harness drives a simulated multi-turn conversation over N CP ranks and
// checks every distributed result against single-device reference attention.
type harness struct {
	t      *testing.T
	n      int
	rng    *rand.Rand
	world  *comm.World
	caches []*kvcache.Cache
	// Per-sequence full history in position order (the oracle's view).
	histK, histV []*tensor.Tensor
	// Every per-rank output in turn order, for bitwise cross-run parity
	// checks (the overlap tests replay a scenario and diff these).
	outs []*attention.Output
}

func newHarness(t *testing.T, seed int64, n, numSeqs int) *harness {
	t.Helper()
	h := &harness{t: t, n: n, rng: rand.New(rand.NewSource(seed)), world: comm.NewWorld(n)}
	h.world.RecvTimeout = 5 * time.Second
	for r := 0; r < n; r++ {
		c, err := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh, PageSize: 4})
		if err != nil {
			t.Fatal(err)
		}
		h.caches = append(h.caches, c)
	}
	for s := 0; s < numSeqs; s++ {
		h.histK = append(h.histK, tensor.New(0, nkv, dh))
		h.histV = append(h.histV, tensor.New(0, nkv, dh))
	}
	return h
}

func (h *harness) pLens() []int {
	p := make([]int, len(h.histK))
	for i := range p {
		p[i] = h.histK[i].Tokens
	}
	return p
}

type prefillFn func(*PrefillInput) (*attention.Output, error)

// prefillTurn runs one (full or partial) prefill turn with the given variant
// and verifies the fused output against the reference, then persists KV.
func (h *harness) prefillTurn(lens []int, variant prefillFn, name string) {
	h.t.Helper()
	plan, err := sharding.NewBatchShard(lens, h.n)
	if err != nil {
		h.t.Fatal(err)
	}
	p := h.pLens()
	total := plan.TotalTokens()
	fq := tensor.RandN(h.rng, total, nh, dh)
	fk := tensor.RandN(h.rng, total, nkv, dh)
	fv := tensor.RandN(h.rng, total, nkv, dh)

	outs, err := comm.RunCollect(h.world, func(r *comm.Rank) (*attention.Output, error) {
		in := &PrefillInput{
			Rank: r, Plan: plan, P: p,
			Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
			Cache: h.caches[r.ID], Elem: elem,
		}
		return variant(in)
	})
	if err != nil {
		h.t.Fatalf("%s: %v", name, err)
	}
	h.outs = append(h.outs, outs...)
	locals := make([]*tensor.Tensor, h.n)
	for r, o := range outs {
		locals[r] = o.O
	}
	got := plan.Unshard(locals)

	// Reference: per sequence, partial prefill against full history.
	for i, T := range lens {
		q := fq.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T)
		k := tensor.Concat(h.histK[i], fk.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T))
		v := tensor.Concat(h.histV[i], fv.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T))
		ref, err := attention.GQA(q, k, v, attention.PartialCausal(T, p[i]))
		if err != nil {
			h.t.Fatal(err)
		}
		gotSeq := got.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T)
		if d := tensor.MaxAbsDiff(ref.O, gotSeq); d > tol {
			h.t.Fatalf("%s: sequence %d deviates from reference by %v (N=%d lens=%v P=%v)",
				name, i, d, h.n, lens, p)
		}
	}

	// Persist KV shards and extend the oracle history.
	for r := 0; r < h.n; r++ {
		if err := AppendLocalKV(h.caches[r], plan, r, p, nil, plan.Shard(fk, r), plan.Shard(fv, r)); err != nil {
			h.t.Fatal(err)
		}
	}
	for i, T := range lens {
		h.histK[i] = tensor.Concat(h.histK[i], fk.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T))
		h.histV[i] = tensor.Concat(h.histV[i], fv.SliceTokens(plan.SeqOffset(i), plan.SeqOffset(i)+T))
	}
}

// decodeStep runs one batched decode step and verifies every sequence's
// output against reference attention over its full history.
func (h *harness) decodeStep(step int) {
	h.t.Helper()
	numSeqs := len(h.histK)
	qs := make([]*tensor.Tensor, numSeqs)
	ks := make([]*tensor.Tensor, numSeqs)
	vs := make([]*tensor.Tensor, numSeqs)
	for s := 0; s < numSeqs; s++ {
		qs[s] = tensor.RandN(h.rng, 1, nh, dh)
		ks[s] = tensor.RandN(h.rng, 1, nkv, dh)
		vs[s] = tensor.RandN(h.rng, 1, nkv, dh)
	}
	p := h.pLens()

	owned := make([][]DecodeToken, h.n)
	for s := 0; s < numSeqs; s++ {
		r := sharding.DecodeOwner(s, step, h.n)
		owned[r] = append(owned[r], DecodeToken{Seq: s, Pos: p[s]})
	}
	outs, err := comm.RunCollect(h.world, func(r *comm.Rank) (*attention.Output, error) {
		toks := owned[r.ID]
		q := tensor.New(len(toks), nh, dh)
		k := tensor.New(len(toks), nkv, dh)
		v := tensor.New(len(toks), nkv, dh)
		for i, tok := range toks {
			copy(q.Row2D(i), qs[tok.Seq].Row2D(0))
			copy(k.Row2D(i), ks[tok.Seq].Row2D(0))
			copy(v.Row2D(i), vs[tok.Seq].Row2D(0))
		}
		return PassQDecode(&DecodeInput{
			Rank: r, NumSeqs: numSeqs, Owned: toks, Q: q, K: k, V: v,
			Cache: h.caches[r.ID], Elem: elem,
		})
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.outs = append(h.outs, outs...)
	for s := 0; s < numSeqs; s++ {
		r := sharding.DecodeOwner(s, step, h.n)
		idx := -1
		for i, tok := range owned[r] {
			if tok.Seq == s {
				idx = i
			}
		}
		fullK := tensor.Concat(h.histK[s], ks[s])
		fullV := tensor.Concat(h.histV[s], vs[s])
		ref, err := attention.GQA(qs[s], fullK, fullV, attention.Decode(fullK.Tokens))
		if err != nil {
			h.t.Fatal(err)
		}
		gotRow := outs[r].O.SliceTokens(idx, idx+1)
		if d := tensor.MaxAbsDiff(ref.O, gotRow); d > tol {
			h.t.Fatalf("decode step %d sequence %d deviates by %v", step, s, d)
		}
		h.histK[s] = fullK
		h.histV[s] = fullV
	}
}

func TestPassKVFullPrefillMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		h := newHarness(t, int64(100+n), n, 2)
		h.prefillTurn([]int{9, 5}, PassKVPrefill, "pass-kv")
	}
}

func TestPassQFullPrefillMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		h := newHarness(t, int64(200+n), n, 2)
		h.prefillTurn([]int{7, 12}, PassQPrefill, "pass-q")
	}
}

func TestAllGatherPrefillMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		h := newHarness(t, int64(300+n), n, 2)
		h.prefillTurn([]int{6, 10}, AllGatherPrefill, "all-gather")
	}
}

func TestMultiTurnPartialPrefillMixedVariants(t *testing.T) {
	// Three turns alternating variants: the persistent KV produced by one
	// variant must be consumable by the others (they share cache layout).
	h := newHarness(t, 42, 3, 2)
	h.prefillTurn([]int{8, 6}, PassKVPrefill, "turn1 pass-kv")
	h.prefillTurn([]int{3, 5}, PassQPrefill, "turn2 pass-q")
	h.prefillTurn([]int{4, 2}, PassKVPrefill, "turn3 pass-kv")
}

func TestSingleTokenPartialPrefill(t *testing.T) {
	// T=1 partial prefill (the decode-like limit of prefill).
	h := newHarness(t, 7, 2, 1)
	h.prefillTurn([]int{10}, PassKVPrefill, "seed")
	h.prefillTurn([]int{1}, PassQPrefill, "one-token pass-q")
	h.prefillTurn([]int{1}, PassKVPrefill, "one-token pass-kv")
}

func TestDecodeLossless(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		h := newHarness(t, int64(400+n), n, 3)
		h.prefillTurn([]int{6, 9, 4}, PassKVPrefill, "prefill")
		for step := 0; step < 5; step++ {
			h.decodeStep(step)
		}
	}
}

func TestPrefillAfterDecode(t *testing.T) {
	// Multi-turn chat: prefill, decode a response, then a follow-up partial
	// prefill that must attend to decode-produced KV as well.
	h := newHarness(t, 11, 2, 2)
	h.prefillTurn([]int{5, 7}, PassKVPrefill, "turn1")
	for step := 0; step < 3; step++ {
		h.decodeStep(step)
	}
	h.prefillTurn([]int{4, 3}, PassQPrefill, "turn2 after decode")
	h.prefillTurn([]int{2, 6}, PassKVPrefill, "turn3 after decode")
}

func TestDecodeCacheBalance(t *testing.T) {
	// §3.6: round-robin offsetting keeps per-rank KV growth balanced even at
	// batch size 1, where a static owner would pile everything on one rank.
	n := 4
	h := newHarness(t, 13, n, 1)
	h.prefillTurn([]int{8}, PassKVPrefill, "prefill")
	base := make([]int, n)
	for r := 0; r < n; r++ {
		base[r] = h.caches[r].TotalTokens()
	}
	steps := 12
	for step := 0; step < steps; step++ {
		h.decodeStep(step)
	}
	min, max := 1<<30, 0
	for r := 0; r < n; r++ {
		g := h.caches[r].TotalTokens() - base[r]
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if max-min > 1 {
		t.Fatalf("decode KV growth imbalance %d (max %d min %d), want <= 1", max-min, max, min)
	}
}

func TestPassKVByteAccounting(t *testing.T) {
	// Each rank sends its KV block N-1 times; the block has sum_i L_i tokens
	// where L_i = max over ranks of per-rank KV rows for sequence i.
	n := 4
	h := newHarness(t, 21, n, 2)
	lens := []int{16, 8}
	h.world.ResetStats()
	h.prefillTurn(lens, PassKVPrefill, "pass-kv")
	plan, _ := sharding.NewBatchShard(lens, n)
	blockTokens := 0
	for i := range lens {
		maxRows := 0
		for r := 0; r < n; r++ {
			rows := 0
			for slot, s := range plan.LocalSeqs(r) {
				if s == i && plan.LocalPositions(r)[slot] != sharding.Pad {
					rows++
				}
			}
			if rows > maxRows {
				maxRows = rows
			}
		}
		blockTokens += maxRows
	}
	wantPerRank := float64(n-1) * (2*float64(blockTokens*nkv*dh)*elem + float64(blockTokens)*metaBytesPerToken)
	for r := 0; r < n; r++ {
		got := h.world.RankStats(r).Bytes[comm.KindSendRecv]
		if got != wantPerRank {
			t.Fatalf("rank %d pass-KV sendrecv bytes = %v, want %v", r, got, wantPerRank)
		}
	}
	if h.world.TotalStats().Bytes[comm.KindAll2All] != 0 {
		t.Fatal("pass-KV must not use All2All")
	}
}

func TestPassQByteAccounting(t *testing.T) {
	n := 4
	h := newHarness(t, 22, n, 1)
	lens := []int{16}
	h.world.ResetStats()
	h.prefillTurn(lens, PassQPrefill, "pass-q")
	plan, _ := sharding.NewBatchShard(lens, n)
	localLen := plan.LocalLen(0)
	wantRing := float64(n-1) * (float64(localLen*nh*dh)*elem + float64(localLen)*metaBytesPerToken)
	for r := 0; r < n; r++ {
		got := h.world.RankStats(r).Bytes[comm.KindSendRecv]
		if got != wantRing {
			t.Fatalf("rank %d pass-Q ring bytes = %v, want %v", r, got, wantRing)
		}
	}
	// All2All carries (N-1) output blocks per rank: O (nh*dh) + LSE (nh).
	wantA2A := float64(n-1) * (float64(localLen*nh*dh)*elem + float64(localLen*nh)*elem)
	for r := 0; r < n; r++ {
		got := h.world.RankStats(r).Bytes[comm.KindAll2All]
		if got != wantA2A {
			t.Fatalf("rank %d pass-Q all2all bytes = %v, want %v", r, got, wantA2A)
		}
	}
}

func TestPassQCheaperOnHighCacheHit(t *testing.T) {
	// The paper's Equation 1 regime: with a large persistent cache (P >> T),
	// circulating Q must move far fewer ring bytes than circulating KV.
	n := 2
	hKV := newHarness(t, 23, n, 1)
	hKV.prefillTurn([]int{40}, PassKVPrefill, "seed")
	hKV.world.ResetStats()
	hKV.prefillTurn([]int{2}, PassKVPrefill, "tail-kv")
	kvBytes := hKV.world.TotalStats().Bytes[comm.KindSendRecv]

	hQ := newHarness(t, 23, n, 1)
	hQ.prefillTurn([]int{40}, PassKVPrefill, "seed")
	hQ.world.ResetStats()
	hQ.prefillTurn([]int{2}, PassQPrefill, "tail-q")
	qBytes := hQ.world.TotalStats().Bytes[comm.KindSendRecv]

	if qBytes >= kvBytes {
		t.Fatalf("pass-Q ring bytes %v >= pass-KV %v despite 95%% cache hit", qBytes, kvBytes)
	}
}

func TestPassKVCheaperOnFullPrefill(t *testing.T) {
	// Full prefill with GQA (NH=8, NKV=2 -> NH > 2*NKV): passing KV is the
	// smaller message, per §3.4.
	n := 2
	hKV := newHarness(t, 24, n, 1)
	hKV.world.ResetStats()
	hKV.prefillTurn([]int{32}, PassKVPrefill, "full-kv")
	kvBytes := hKV.world.TotalStats().Bytes[comm.KindSendRecv]

	hQ := newHarness(t, 24, n, 1)
	hQ.world.ResetStats()
	hQ.prefillTurn([]int{32}, PassQPrefill, "full-q")
	qBytes := hQ.world.TotalStats().Bytes[comm.KindSendRecv]

	if kvBytes >= qBytes {
		t.Fatalf("pass-KV ring bytes %v >= pass-Q %v on full prefill", kvBytes, qBytes)
	}
}

func TestLinkFailurePropagates(t *testing.T) {
	n := 3
	h := newHarness(t, 25, n, 1)
	h.world.FailLink(0, 1)
	h.world.RecvTimeout = 500 * time.Millisecond
	plan, _ := sharding.NewBatchShard([]int{8}, n)
	fq := tensor.RandN(h.rng, 8, nh, dh)
	fk := tensor.RandN(h.rng, 8, nkv, dh)
	fv := tensor.RandN(h.rng, 8, nkv, dh)
	err := h.world.Run(func(r *comm.Rank) error {
		_, err := PassKVPrefill(&PrefillInput{
			Rank: r, Plan: plan, P: []int{0},
			Q: plan.Shard(fq, r.ID), K: plan.Shard(fk, r.ID), V: plan.Shard(fv, r.ID),
			Cache: h.caches[r.ID], Elem: elem,
		})
		return err
	})
	if err == nil {
		t.Fatal("prefill over failed link reported success")
	}
	if !strings.Contains(err.Error(), "failed") && !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPrefillInputValidation(t *testing.T) {
	w := comm.NewWorld(2)
	plan, _ := sharding.NewBatchShard([]int{4}, 2)
	cache, _ := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh})
	bad := &PrefillInput{
		Rank: w.Rank(0), Plan: plan, P: []int{0, 0}, // wrong P length
		Q: tensor.New(2, nh, dh), K: tensor.New(2, nkv, dh), V: tensor.New(2, nkv, dh),
		Cache: cache, Elem: elem,
	}
	if _, err := PassKVPrefill(bad); err == nil {
		t.Fatal("P length mismatch accepted")
	}
	bad.P = []int{0}
	bad.Q = tensor.New(1, nh, dh) // wrong local length
	if _, err := PassKVPrefill(bad); err == nil {
		t.Fatal("local length mismatch accepted")
	}
}

func TestDecodeInputValidation(t *testing.T) {
	w := comm.NewWorld(1)
	cache, _ := kvcache.New(kvcache.Config{KVHeads: nkv, HeadDim: dh})
	in := &DecodeInput{
		Rank: w.Rank(0), NumSeqs: 0,
		Q: tensor.New(0, nh, dh), K: tensor.New(0, nkv, dh), V: tensor.New(0, nkv, dh),
		Cache: cache, Elem: elem,
	}
	if _, err := PassQDecode(in); err == nil {
		t.Fatal("zero batch accepted")
	}
	in.NumSeqs = 1
	in.Owned = []DecodeToken{{Seq: -1, Pos: 0}}
	in.Q = tensor.New(1, nh, dh)
	in.K = tensor.New(1, nkv, dh)
	in.V = tensor.New(1, nkv, dh)
	if _, err := PassQDecode(in); err == nil {
		t.Fatal("negative sequence id accepted")
	}
}

// The paper's central exactness property, as a randomized invariant: for any
// rank count, batch shape and cache state, pass-KV, pass-Q and all-gather all
// reproduce the reference.
func TestPropertyVariantsAgreeWithReference(t *testing.T) {
	f := func(seed int64, rawN, rawB, rawT1, rawT2 uint8) bool {
		n := int(rawN%4) + 1
		numSeqs := int(rawB%2) + 1
		lens1 := make([]int, numSeqs)
		lens2 := make([]int, numSeqs)
		rng := rand.New(rand.NewSource(seed))
		for i := range lens1 {
			lens1[i] = int(rawT1)%10 + 1 + rng.Intn(4)
			lens2[i] = int(rawT2)%6 + 1
		}
		variants := []prefillFn{PassKVPrefill, PassQPrefill, AllGatherPrefill}
		h := newHarness(t, seed, n, numSeqs)
		h.prefillTurn(lens1, variants[rng.Intn(3)], "turn1")
		h.prefillTurn(lens2, variants[rng.Intn(3)], "turn2")
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
