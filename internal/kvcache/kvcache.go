// Package kvcache implements the per-rank persistent key/value cache that
// context-parallel inference shards across CP ranks. Each rank of a CP group
// holds a disjoint subset of every sequence's KV entries, tagged with their
// global positions so ring attention can evaluate causality after the
// load-balanced (non-contiguous) sharding. The cache persists across turns
// of a conversation: full prefill seeds it, partial prefill and decode append
// to it (§3.3).
//
// Storage is paged, PagedAttention-style: tokens are appended into fixed-size
// pages so that growth does not copy existing entries and so capacity
// accounting (the OOM behaviour that motivates the paper's balanced KV
// sharding and round-robin decode) is explicit and testable.
package kvcache

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// DefaultPageSize is the number of tokens per page when none is specified.
const DefaultPageSize = 16

// Config sizes a cache.
type Config struct {
	KVHeads  int // NKV
	HeadDim  int // DH
	PageSize int // tokens per page; DefaultPageSize if zero
	Capacity int // max cached tokens per rank across all sequences; 0 = unlimited
}

// Cache is one CP rank's KV store. It is not safe for concurrent use; each
// rank goroutine owns its cache exclusively, mirroring GPU-local HBM.
type Cache struct {
	cfg   Config
	seqs  map[int]*seqCache
	total int
}

type page struct {
	k, v *tensor.Tensor
	pos  []int
	fill int
}

type seqCache struct {
	pages []*page
}

// ErrCapacity is returned when an append would exceed the configured
// capacity — the simulated equivalent of a rank running out of HBM.
type ErrCapacity struct {
	Need, Have, Capacity int
}

func (e *ErrCapacity) Error() string {
	return fmt.Sprintf("kvcache: appending %d tokens exceeds capacity %d (have %d)",
		e.Need, e.Capacity, e.Have)
}

// New creates an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.KVHeads <= 0 || cfg.HeadDim <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive shape NKV=%d DH=%d", cfg.KVHeads, cfg.HeadDim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.PageSize < 0 || cfg.Capacity < 0 {
		return nil, fmt.Errorf("kvcache: negative page size or capacity")
	}
	return &Cache{cfg: cfg, seqs: make(map[int]*seqCache)}, nil
}

// Append stores k/v rows with their global positions for a sequence. The
// tensors must be [n, NKV, DH] with n == len(pos). Rows with position
// sharding.Pad (negative) are skipped: the ring algorithms generate padded
// shards but padding must never enter the persistent cache.
func (c *Cache) Append(seq int, k, v *tensor.Tensor, pos []int) error {
	if k.Tokens != v.Tokens || k.Tokens != len(pos) {
		return fmt.Errorf("kvcache: k=%d v=%d pos=%d rows disagree", k.Tokens, v.Tokens, len(pos))
	}
	if k.Heads != c.cfg.KVHeads || k.Dim != c.cfg.HeadDim || v.Heads != c.cfg.KVHeads || v.Dim != c.cfg.HeadDim {
		return fmt.Errorf("kvcache: shape %s does not match cache [%d %d]", k.ShapeString(), c.cfg.KVHeads, c.cfg.HeadDim)
	}
	real := 0
	for _, p := range pos {
		if p >= 0 {
			real++
		}
	}
	if c.cfg.Capacity > 0 && c.total+real > c.cfg.Capacity {
		return &ErrCapacity{Need: real, Have: c.total, Capacity: c.cfg.Capacity}
	}
	sc := c.seqs[seq]
	if sc == nil {
		sc = &seqCache{}
		c.seqs[seq] = sc
	}
	for i, p := range pos {
		if p < 0 {
			continue
		}
		sc.appendRow(c.cfg, k.Row2D(i), v.Row2D(i), p)
		c.total++
	}
	return nil
}

func (s *seqCache) appendRow(cfg Config, kRow, vRow []float32, pos int) {
	var pg *page
	if n := len(s.pages); n > 0 && s.pages[n-1].fill < cfg.PageSize {
		pg = s.pages[n-1]
	} else {
		pg = &page{
			k:   tensor.New(cfg.PageSize, cfg.KVHeads, cfg.HeadDim),
			v:   tensor.New(cfg.PageSize, cfg.KVHeads, cfg.HeadDim),
			pos: make([]int, 0, cfg.PageSize),
		}
		s.pages = append(s.pages, pg)
	}
	copy(pg.k.Row2D(pg.fill), kRow)
	copy(pg.v.Row2D(pg.fill), vRow)
	pg.pos = append(pg.pos, pos)
	pg.fill++
}

// Get materializes the cached K, V and positions of a sequence as contiguous
// tensors, in append order. Returns empty tensors for unknown sequences.
func (c *Cache) Get(seq int) (k, v *tensor.Tensor, pos []int) {
	sc := c.seqs[seq]
	n := c.SeqLen(seq)
	k = tensor.New(n, c.cfg.KVHeads, c.cfg.HeadDim)
	v = tensor.New(n, c.cfg.KVHeads, c.cfg.HeadDim)
	pos = make([]int, 0, n)
	if sc == nil {
		return k, v, pos
	}
	row := 0
	for _, pg := range sc.pages {
		for i := 0; i < pg.fill; i++ {
			copy(k.Row2D(row), pg.k.Row2D(i))
			copy(v.Row2D(row), pg.v.Row2D(i))
			pos = append(pos, pg.pos[i])
			row++
		}
	}
	return k, v, pos
}

// SeqLen returns the number of cached tokens for a sequence.
func (c *Cache) SeqLen(seq int) int {
	sc := c.seqs[seq]
	if sc == nil {
		return 0
	}
	n := 0
	for _, pg := range sc.pages {
		n += pg.fill
	}
	return n
}

// MaxPos returns the largest cached global position for a sequence, or -1 if
// the sequence is empty. The engine uses it to validate monotonic growth.
func (c *Cache) MaxPos(seq int) int {
	sc := c.seqs[seq]
	m := -1
	if sc == nil {
		return m
	}
	for _, pg := range sc.pages {
		for i := 0; i < pg.fill; i++ {
			if pg.pos[i] > m {
				m = pg.pos[i]
			}
		}
	}
	return m
}

// TotalTokens returns the rank-wide cached token count across sequences.
func (c *Cache) TotalTokens() int { return c.total }

// NumPages returns the allocated page count for a sequence.
func (c *Cache) NumPages(seq int) int {
	sc := c.seqs[seq]
	if sc == nil {
		return 0
	}
	return len(sc.pages)
}

// Capacity returns the configured token capacity (0 = unlimited).
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// Drop evicts a sequence, freeing its capacity. Dropping an unknown sequence
// is a no-op.
func (c *Cache) Drop(seq int) {
	if sc := c.seqs[seq]; sc != nil {
		c.total -= c.SeqLen(seq)
		delete(c.seqs, seq)
	}
}

// Sequences returns the cached sequence ids in ascending order.
func (c *Cache) Sequences() []int {
	out := make([]int, 0, len(c.seqs))
	for s := range c.seqs {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// BytesUsed returns the cache footprint in bytes at the given element width
// and layer count, using the paper's 2*NKV*DH*e per token per layer.
func (c *Cache) BytesUsed(elemBytes float64, layers int) float64 {
	return float64(c.total) * 2 * float64(c.cfg.KVHeads) * float64(c.cfg.HeadDim) * elemBytes * float64(layers)
}
