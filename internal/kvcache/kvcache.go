// Package kvcache implements the per-rank persistent key/value cache that
// context-parallel inference shards across CP ranks. Each rank of a CP group
// holds a disjoint subset of every sequence's KV entries, tagged with their
// global positions so ring attention can evaluate causality after the
// load-balanced (non-contiguous) sharding. The cache persists across turns
// of a conversation: full prefill seeds it, partial prefill and decode append
// to it (§3.3).
//
// Storage is paged, PagedAttention-style: tokens are appended into fixed-size
// pages so that growth does not copy existing entries and so capacity
// accounting (the OOM behaviour that motivates the paper's balanced KV
// sharding and round-robin decode) is explicit and testable.
//
// Pages are refcounted so a token prefix can be shared between sequences and
// a prefix cache without copying: a Span pins a prefix of a sequence's pages,
// AdoptSpan seeds a new sequence from one, and appends to a shared (or
// partially visible) tail page copy-on-write so writers never disturb other
// holders. Physical capacity counts every live page exactly once regardless
// of how many sequences or spans reference it.
package kvcache

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// DefaultPageSize is the number of tokens per page when none is specified.
const DefaultPageSize = 16

// Config sizes a cache.
type Config struct {
	KVHeads  int // NKV
	HeadDim  int // DH
	PageSize int // tokens per page; DefaultPageSize if zero
	Capacity int // max cached tokens per rank across all sequences; 0 = unlimited
}

// Cache is one CP rank's KV store. It is not safe for concurrent use; each
// rank goroutine owns its cache exclusively, mirroring GPU-local HBM.
type Cache struct {
	cfg   Config
	seqs  map[int]*seqCache
	total int // physical rows across unique live pages
}

// page is a refcounted block of KV rows. refs counts the sequences and spans
// holding it; a page is freed (its rows returned to capacity) when refs
// reaches zero.
type page struct {
	k, v *tensor.Tensor
	pos  []int
	fill int
	refs int
}

// pageRef is one holder's view of a page: the first n of its fill rows.
// n < fill happens when a span or an adopting sequence pinned a prefix that
// ends mid-page.
type pageRef struct {
	pg *page
	n  int
}

type seqCache struct {
	refs []pageRef
}

// ErrCapacity is returned when an append would exceed the configured
// capacity — the simulated equivalent of a rank running out of HBM. Need
// includes any copy-on-write rows the append would have to clone.
type ErrCapacity struct {
	Need, Have, Capacity int
}

func (e *ErrCapacity) Error() string {
	return fmt.Sprintf("kvcache: appending %d tokens exceeds capacity %d (have %d)",
		e.Need, e.Capacity, e.Have)
}

// New creates an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.KVHeads <= 0 || cfg.HeadDim <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive shape NKV=%d DH=%d", cfg.KVHeads, cfg.HeadDim)
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.PageSize < 0 || cfg.Capacity < 0 {
		return nil, fmt.Errorf("kvcache: negative page size or capacity")
	}
	return &Cache{cfg: cfg, seqs: make(map[int]*seqCache)}, nil
}

// tailNeedsCOW reports whether appending through ref requires cloning its
// visible prefix first: the page still has room but is either shared with
// another holder or only partially visible to this sequence.
func (c *Cache) tailNeedsCOW(ref pageRef) bool {
	return ref.n < c.cfg.PageSize && (ref.pg.refs > 1 || ref.n < ref.pg.fill)
}

// AppendOverhead returns the extra physical rows the next Append for seq
// would clone for copy-on-write (0 when the tail page is exclusively owned
// or full). Capacity prechecks add it to the row count they reserve.
func (c *Cache) AppendOverhead(seq int) int {
	sc := c.seqs[seq]
	if sc == nil || len(sc.refs) == 0 {
		return 0
	}
	if ref := sc.refs[len(sc.refs)-1]; c.tailNeedsCOW(ref) {
		return ref.n
	}
	return 0
}

// Append stores k/v rows with their global positions for a sequence. The
// tensors must be [n, NKV, DH] with n == len(pos). Rows with position
// sharding.Pad (negative) are skipped: the ring algorithms generate padded
// shards but padding must never enter the persistent cache.
func (c *Cache) Append(seq int, k, v *tensor.Tensor, pos []int) error {
	if k.Tokens != v.Tokens || k.Tokens != len(pos) {
		return fmt.Errorf("kvcache: k=%d v=%d pos=%d rows disagree", k.Tokens, v.Tokens, len(pos))
	}
	if k.Heads != c.cfg.KVHeads || k.Dim != c.cfg.HeadDim || v.Heads != c.cfg.KVHeads || v.Dim != c.cfg.HeadDim {
		return fmt.Errorf("kvcache: shape %s does not match cache [%d %d]", k.ShapeString(), c.cfg.KVHeads, c.cfg.HeadDim)
	}
	real := 0
	for _, p := range pos {
		if p >= 0 {
			real++
		}
	}
	if real == 0 {
		return nil
	}
	need := real + c.AppendOverhead(seq)
	if c.cfg.Capacity > 0 && c.total+need > c.cfg.Capacity {
		return &ErrCapacity{Need: need, Have: c.total, Capacity: c.cfg.Capacity}
	}
	sc := c.seqs[seq]
	if sc == nil {
		sc = &seqCache{}
		c.seqs[seq] = sc
	}
	for i, p := range pos {
		if p < 0 {
			continue
		}
		c.appendRow(sc, k.Row2D(i), v.Row2D(i), p)
	}
	return nil
}

func (c *Cache) appendRow(sc *seqCache, kRow, vRow []float32, pos int) {
	if n := len(sc.refs); n > 0 && sc.refs[n-1].n < c.cfg.PageSize {
		ref := &sc.refs[n-1]
		if c.tailNeedsCOW(*ref) {
			c.cowTail(ref)
		}
		pg := ref.pg
		copy(pg.k.Row2D(pg.fill), kRow)
		copy(pg.v.Row2D(pg.fill), vRow)
		pg.pos = append(pg.pos, pos)
		pg.fill++
		ref.n++
		c.total++
		return
	}
	pg := c.newPage()
	copy(pg.k.Row2D(0), kRow)
	copy(pg.v.Row2D(0), vRow)
	pg.pos = append(pg.pos, pos)
	pg.fill = 1
	sc.refs = append(sc.refs, pageRef{pg: pg, n: 1})
	c.total++
}

func (c *Cache) newPage() *page {
	return &page{
		k:    tensor.New(c.cfg.PageSize, c.cfg.KVHeads, c.cfg.HeadDim),
		v:    tensor.New(c.cfg.PageSize, c.cfg.KVHeads, c.cfg.HeadDim),
		pos:  make([]int, 0, c.cfg.PageSize),
		refs: 1,
	}
}

// cowTail replaces a shared or truncated tail pageRef with a private clone of
// its visible prefix, so the sequence can keep appending without disturbing
// other holders of the original page.
func (c *Cache) cowTail(ref *pageRef) {
	clone := c.newPage()
	for i := 0; i < ref.n; i++ {
		copy(clone.k.Row2D(i), ref.pg.k.Row2D(i))
		copy(clone.v.Row2D(i), ref.pg.v.Row2D(i))
		clone.pos = append(clone.pos, ref.pg.pos[i])
	}
	clone.fill = ref.n
	c.total += ref.n
	c.releaseRef(*ref)
	ref.pg = clone
}

// releaseRef drops one holder of a page, freeing its rows at zero refs.
func (c *Cache) releaseRef(ref pageRef) {
	ref.pg.refs--
	if ref.pg.refs == 0 {
		c.total -= ref.pg.fill
	}
}

// Get materializes the cached K, V and positions of a sequence as contiguous
// tensors, in append order. Returns empty tensors for unknown sequences.
func (c *Cache) Get(seq int) (k, v *tensor.Tensor, pos []int) {
	n := c.SeqLen(seq)
	k = tensor.New(n, c.cfg.KVHeads, c.cfg.HeadDim)
	v = tensor.New(n, c.cfg.KVHeads, c.cfg.HeadDim)
	pos = make([]int, n)
	c.CopyRange(seq, 0, k.Data, v.Data, pos)
	return k, v, pos
}

// CopyRange copies cached rows [lo, SeqLen) of a sequence, in append order,
// into the caller's row-major buffers: k and v must hold at least
// (SeqLen-lo)*KVHeads*HeadDim floats and pos as many ints. It is the
// allocation-free incremental companion to Get (which delegates to it):
// callers that mirror a sequence's KV — the ring layer's assembled-block
// cache — fetch only the rows appended since their last sync, written
// straight into the mirror's backing arrays. Returns the rows copied; lo
// past the end, or an unknown sequence, copies nothing.
func (c *Cache) CopyRange(seq, lo int, k, v []float32, pos []int) int {
	sc := c.seqs[seq]
	if sc == nil {
		return 0
	}
	rowLen := c.cfg.KVHeads * c.cfg.HeadDim
	skip := lo
	row := 0
	for _, ref := range sc.refs {
		if skip >= ref.n {
			skip -= ref.n
			continue
		}
		for i := skip; i < ref.n; i++ {
			copy(k[row*rowLen:(row+1)*rowLen], ref.pg.k.Row2D(i))
			copy(v[row*rowLen:(row+1)*rowLen], ref.pg.v.Row2D(i))
			pos[row] = ref.pg.pos[i]
			row++
		}
		skip = 0
	}
	return row
}

// SeqLen returns the number of cached tokens for a sequence.
func (c *Cache) SeqLen(seq int) int {
	sc := c.seqs[seq]
	if sc == nil {
		return 0
	}
	n := 0
	for _, ref := range sc.refs {
		n += ref.n
	}
	return n
}

// MaxPos returns the largest cached global position for a sequence, or -1 if
// the sequence is empty. The engine uses it to validate monotonic growth.
func (c *Cache) MaxPos(seq int) int {
	sc := c.seqs[seq]
	m := -1
	if sc == nil {
		return m
	}
	for _, ref := range sc.refs {
		for i := 0; i < ref.n; i++ {
			if ref.pg.pos[i] > m {
				m = ref.pg.pos[i]
			}
		}
	}
	return m
}

// TotalTokens returns the rank-wide physical cached token count: every live
// page's rows counted once, however many sequences and spans share it.
func (c *Cache) TotalTokens() int { return c.total }

// NumPages returns the referenced page count for a sequence.
func (c *Cache) NumPages(seq int) int {
	sc := c.seqs[seq]
	if sc == nil {
		return 0
	}
	return len(sc.refs)
}

// Capacity returns the configured token capacity (0 = unlimited).
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// KVHeads returns the per-row KV head count (NKV).
func (c *Cache) KVHeads() int { return c.cfg.KVHeads }

// HeadDim returns the per-head embedding dimension (DH).
func (c *Cache) HeadDim() int { return c.cfg.HeadDim }

// Drop evicts a sequence, freeing the capacity of pages no other holder
// still references. Dropping an unknown sequence is a no-op.
func (c *Cache) Drop(seq int) {
	sc := c.seqs[seq]
	if sc == nil {
		return
	}
	for _, ref := range sc.refs {
		c.releaseRef(ref)
	}
	delete(c.seqs, seq)
}

// Sequences returns the cached sequence ids in ascending order.
func (c *Cache) Sequences() []int {
	out := make([]int, 0, len(c.seqs))
	for s := range c.seqs {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// BytesUsed returns the cache footprint in bytes at the given element width
// and layer count, using the paper's 2*NKV*DH*e per token per layer.
func (c *Cache) BytesUsed(elemBytes float64, layers int) float64 {
	return float64(c.total) * 2 * float64(c.cfg.KVHeads) * float64(c.cfg.HeadDim) * elemBytes * float64(layers)
}

// ---------------------------------------------------------------------------
// Spans: refcounted prefix handles for cross-sequence KV reuse.
// ---------------------------------------------------------------------------

// Span pins the pages holding a prefix of a sequence's rows so they survive
// the sequence's eviction and can seed other sequences via AdoptSpan. A Span
// belongs to the cache that created it and must be released exactly once.
type Span struct {
	c        *Cache
	refs     []pageRef
	tokens   int
	released bool
}

// Tokens returns the number of rows the span pins on this rank.
func (sp *Span) Tokens() int { return sp.tokens }

// Release drops the span's page references, freeing pages no sequence or
// other span still holds. Releasing twice is a no-op.
func (sp *Span) Release() {
	if sp == nil || sp.released {
		return
	}
	sp.released = true
	for _, ref := range sp.refs {
		sp.c.releaseRef(ref)
	}
	sp.refs = nil
}

// AcquireSpan pins the rows of seq whose global position is below upTo. Those
// rows must form a prefix of the sequence's append order (true whenever upTo
// is a boundary the engine prefilled across in order); interleaved later rows
// below upTo are rejected, since adopting them would reorder KV relative to a
// cold prefill. Acquiring consumes no capacity — the pages are shared.
func (c *Cache) AcquireSpan(seq, upTo int) (*Span, error) {
	if upTo <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive span bound %d", upTo)
	}
	sc := c.seqs[seq]
	if sc == nil {
		// A rank may legitimately hold no rows of a short prefix.
		return &Span{c: c}, nil
	}
	sp := &Span{c: c}
	past := false // saw a row at or beyond upTo
	for _, ref := range sc.refs {
		take := 0
		for i := 0; i < ref.n; i++ {
			if ref.pg.pos[i] < upTo {
				if past {
					return nil, fmt.Errorf("kvcache: sequence %d rows below %d are not an append-order prefix", seq, upTo)
				}
				take++
			} else {
				past = true
			}
		}
		if take > 0 {
			ref.pg.refs++
			sp.refs = append(sp.refs, pageRef{pg: ref.pg, n: take})
			sp.tokens += take
		}
	}
	return sp, nil
}

// AdoptSpan seeds an empty sequence with a span's rows by sharing its pages.
// The sequence sees exactly the span's prefix; its first append past a
// shared or mid-page tail triggers copy-on-write. Adoption consumes no
// capacity beyond the pages already resident.
func (c *Cache) AdoptSpan(seq int, sp *Span) error {
	if sp == nil || sp.released {
		return fmt.Errorf("kvcache: adopting a released span")
	}
	if sp.c != c {
		return fmt.Errorf("kvcache: span belongs to a different cache")
	}
	if sc := c.seqs[seq]; sc != nil && len(sc.refs) > 0 {
		return fmt.Errorf("kvcache: sequence %d is not empty", seq)
	}
	sc := &seqCache{refs: make([]pageRef, len(sp.refs))}
	copy(sc.refs, sp.refs)
	for _, ref := range sc.refs {
		ref.pg.refs++
	}
	c.seqs[seq] = sc
	return nil
}
