package kvcache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{KVHeads: 0, HeadDim: 4}); err == nil {
		t.Fatal("zero KV heads accepted")
	}
	if _, err := New(Config{KVHeads: 2, HeadDim: 4, Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 3, PageSize: 4})
	rng := rand.New(rand.NewSource(1))
	k := tensor.RandN(rng, 5, 2, 3)
	v := tensor.RandN(rng, 5, 2, 3)
	pos := []int{0, 1, 6, 7, 9}
	if err := c.Append(7, k, v, pos); err != nil {
		t.Fatal(err)
	}
	gk, gv, gpos := c.Get(7)
	if tensor.MaxAbsDiff(gk, k) != 0 || tensor.MaxAbsDiff(gv, v) != 0 {
		t.Fatal("Get returned different tensors than appended")
	}
	for i, p := range pos {
		if gpos[i] != p {
			t.Fatalf("positions = %v, want %v", gpos, pos)
		}
	}
}

func TestAppendSkipsPaddingRows(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 2})
	k := tensor.New(4, 1, 2)
	v := tensor.New(4, 1, 2)
	k.Set(2, 0, 0, 5)
	if err := c.Append(0, k, v, []int{0, -1, 3, -1}); err != nil {
		t.Fatal(err)
	}
	if got := c.SeqLen(0); got != 2 {
		t.Fatalf("SeqLen = %d, want 2 (padding skipped)", got)
	}
	gk, _, gpos := c.Get(0)
	if gpos[0] != 0 || gpos[1] != 3 {
		t.Fatalf("positions = %v, want [0 3]", gpos)
	}
	if gk.At(1, 0, 0) != 5 {
		t.Fatal("kept wrong rows")
	}
}

func TestAppendShapeValidation(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 3})
	k := tensor.New(2, 2, 3)
	vBad := tensor.New(3, 2, 3)
	if err := c.Append(0, k, vBad, []int{0, 1}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	vWrong := tensor.New(2, 1, 3)
	if err := c.Append(0, k, vWrong, []int{0, 1}); err == nil {
		t.Fatal("head mismatch accepted")
	}
	if err := c.Append(0, k, tensor.New(2, 2, 3), []int{0}); err == nil {
		t.Fatal("pos length mismatch accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, Capacity: 3})
	mk := func(n int) (*tensor.Tensor, *tensor.Tensor, []int) {
		pos := make([]int, n)
		for i := range pos {
			pos[i] = i
		}
		return tensor.New(n, 1, 1), tensor.New(n, 1, 1), pos
	}
	k, v, pos := mk(2)
	if err := c.Append(0, k, v, pos); err != nil {
		t.Fatal(err)
	}
	k, v, pos = mk(2)
	err := c.Append(1, k, v, pos)
	var ce *ErrCapacity
	if !errors.As(err, &ce) {
		t.Fatalf("expected ErrCapacity, got %v", err)
	}
	if ce.Need != 2 || ce.Have != 2 || ce.Capacity != 3 {
		t.Fatalf("ErrCapacity fields = %+v", ce)
	}
	// Padding rows don't count against capacity.
	k1 := tensor.New(2, 1, 1)
	if err := c.Append(1, k1, tensor.New(2, 1, 1), []int{5, -1}); err != nil {
		t.Fatalf("padding counted against capacity: %v", err)
	}
	if c.TotalTokens() != 3 {
		t.Fatalf("TotalTokens = %d, want 3", c.TotalTokens())
	}
}

func TestPaging(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 3})
	for i := 0; i < 7; i++ {
		k := tensor.New(1, 1, 1)
		k.Set(0, 0, 0, float32(i))
		if err := c.Append(0, k, tensor.New(1, 1, 1), []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.NumPages(0); got != 3 { // ceil(7/3)
		t.Fatalf("NumPages = %d, want 3", got)
	}
	gk, _, gpos := c.Get(0)
	for i := 0; i < 7; i++ {
		if gk.At(i, 0, 0) != float32(i) || gpos[i] != i {
			t.Fatalf("paged contents wrong at %d: %v %v", i, gk.At(i, 0, 0), gpos[i])
		}
	}
}

func TestMaxPos(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	if c.MaxPos(0) != -1 {
		t.Fatal("empty MaxPos should be -1")
	}
	k := tensor.New(3, 1, 1)
	if err := c.Append(0, k, tensor.New(3, 1, 1), []int{4, 9, 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.MaxPos(0); got != 9 {
		t.Fatalf("MaxPos = %d, want 9", got)
	}
}

func TestDropFreesCapacity(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, Capacity: 2})
	k := tensor.New(2, 1, 1)
	if err := c.Append(3, k, tensor.New(2, 1, 1), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	c.Drop(3)
	c.Drop(99) // no-op
	if c.TotalTokens() != 0 {
		t.Fatalf("TotalTokens after drop = %d", c.TotalTokens())
	}
	if err := c.Append(4, k, tensor.New(2, 1, 1), []int{0, 1}); err != nil {
		t.Fatalf("capacity not freed by Drop: %v", err)
	}
}

func TestSequencesSorted(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	for _, s := range []int{5, 1, 3} {
		k := tensor.New(1, 1, 1)
		if err := c.Append(s, k, tensor.New(1, 1, 1), []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Sequences()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sequences = %v, want %v", got, want)
		}
	}
}

func TestBytesUsed(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 8, HeadDim: 128})
	k := tensor.New(10, 8, 128)
	if err := c.Append(0, k, tensor.New(10, 8, 128), seqPos(10)); err != nil {
		t.Fatal(err)
	}
	// 10 tokens * 2 * 8 * 128 * 2 bytes * 126 layers = 5160960.
	if got := c.BytesUsed(2, 126); got != 5160960 {
		t.Fatalf("BytesUsed = %v, want 5160960", got)
	}
}

func TestGetUnknownSequenceEmpty(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 2})
	k, v, pos := c.Get(42)
	if k.Tokens != 0 || v.Tokens != 0 || len(pos) != 0 {
		t.Fatal("unknown sequence should be empty")
	}
}

// Property: appending in multiple slices equals appending all at once —
// cache contents depend only on the concatenation.
func TestPropertyAppendSliceInvariance(t *testing.T) {
	f := func(seed int64, rawN, rawCut uint8) bool {
		n := int(rawN%12) + 1
		cut := int(rawCut) % (n + 1)
		rng := rand.New(rand.NewSource(seed))
		k := tensor.RandN(rng, n, 2, 2)
		v := tensor.RandN(rng, n, 2, 2)
		pos := rng.Perm(n * 2)[:n]

		one, _ := New(Config{KVHeads: 2, HeadDim: 2, PageSize: 3})
		if err := one.Append(0, k, v, pos); err != nil {
			return false
		}
		two, _ := New(Config{KVHeads: 2, HeadDim: 2, PageSize: 3})
		if err := two.Append(0, k.SliceTokens(0, cut), v.SliceTokens(0, cut), pos[:cut]); err != nil {
			return false
		}
		if err := two.Append(0, k.SliceTokens(cut, n), v.SliceTokens(cut, n), pos[cut:]); err != nil {
			return false
		}
		k1, v1, p1 := one.Get(0)
		k2, v2, p2 := two.Get(0)
		if tensor.MaxAbsDiff(k1, k2) != 0 || tensor.MaxAbsDiff(v1, v2) != 0 {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: TotalTokens equals the sum of SeqLens for any append pattern.
func TestPropertyTotalMatchesSum(t *testing.T) {
	f := func(seed int64, rawOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := New(Config{KVHeads: 1, HeadDim: 1, PageSize: 2})
		ops := int(rawOps%10) + 1
		for i := 0; i < ops; i++ {
			seq := rng.Intn(3)
			n := rng.Intn(4) + 1
			pos := make([]int, n)
			for j := range pos {
				pos[j] = rng.Intn(100)
			}
			if err := c.Append(seq, tensor.New(n, 1, 1), tensor.New(n, 1, 1), pos); err != nil {
				return false
			}
			if rng.Intn(4) == 0 {
				c.Drop(rng.Intn(3))
			}
		}
		sum := 0
		for _, s := range c.Sequences() {
			sum += c.SeqLen(s)
		}
		return sum == c.TotalTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func seqPos(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
