package kvcache

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{KVHeads: 0, HeadDim: 4}); err == nil {
		t.Fatal("zero KV heads accepted")
	}
	if _, err := New(Config{KVHeads: 2, HeadDim: 4, Capacity: -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 3, PageSize: 4})
	rng := rand.New(rand.NewSource(1))
	k := tensor.RandN(rng, 5, 2, 3)
	v := tensor.RandN(rng, 5, 2, 3)
	pos := []int{0, 1, 6, 7, 9}
	if err := c.Append(7, k, v, pos); err != nil {
		t.Fatal(err)
	}
	gk, gv, gpos := c.Get(7)
	if tensor.MaxAbsDiff(gk, k) != 0 || tensor.MaxAbsDiff(gv, v) != 0 {
		t.Fatal("Get returned different tensors than appended")
	}
	for i, p := range pos {
		if gpos[i] != p {
			t.Fatalf("positions = %v, want %v", gpos, pos)
		}
	}
}

func TestAppendSkipsPaddingRows(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 2})
	k := tensor.New(4, 1, 2)
	v := tensor.New(4, 1, 2)
	k.Set(2, 0, 0, 5)
	if err := c.Append(0, k, v, []int{0, -1, 3, -1}); err != nil {
		t.Fatal(err)
	}
	if got := c.SeqLen(0); got != 2 {
		t.Fatalf("SeqLen = %d, want 2 (padding skipped)", got)
	}
	gk, _, gpos := c.Get(0)
	if gpos[0] != 0 || gpos[1] != 3 {
		t.Fatalf("positions = %v, want [0 3]", gpos)
	}
	if gk.At(1, 0, 0) != 5 {
		t.Fatal("kept wrong rows")
	}
}

func TestAppendShapeValidation(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 3})
	k := tensor.New(2, 2, 3)
	vBad := tensor.New(3, 2, 3)
	if err := c.Append(0, k, vBad, []int{0, 1}); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	vWrong := tensor.New(2, 1, 3)
	if err := c.Append(0, k, vWrong, []int{0, 1}); err == nil {
		t.Fatal("head mismatch accepted")
	}
	if err := c.Append(0, k, tensor.New(2, 2, 3), []int{0}); err == nil {
		t.Fatal("pos length mismatch accepted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, Capacity: 3})
	mk := func(n int) (*tensor.Tensor, *tensor.Tensor, []int) {
		pos := make([]int, n)
		for i := range pos {
			pos[i] = i
		}
		return tensor.New(n, 1, 1), tensor.New(n, 1, 1), pos
	}
	k, v, pos := mk(2)
	if err := c.Append(0, k, v, pos); err != nil {
		t.Fatal(err)
	}
	k, v, pos = mk(2)
	err := c.Append(1, k, v, pos)
	var ce *ErrCapacity
	if !errors.As(err, &ce) {
		t.Fatalf("expected ErrCapacity, got %v", err)
	}
	if ce.Need != 2 || ce.Have != 2 || ce.Capacity != 3 {
		t.Fatalf("ErrCapacity fields = %+v", ce)
	}
	// Padding rows don't count against capacity.
	k1 := tensor.New(2, 1, 1)
	if err := c.Append(1, k1, tensor.New(2, 1, 1), []int{5, -1}); err != nil {
		t.Fatalf("padding counted against capacity: %v", err)
	}
	if c.TotalTokens() != 3 {
		t.Fatalf("TotalTokens = %d, want 3", c.TotalTokens())
	}
}

func TestPaging(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 3})
	for i := 0; i < 7; i++ {
		k := tensor.New(1, 1, 1)
		k.Set(0, 0, 0, float32(i))
		if err := c.Append(0, k, tensor.New(1, 1, 1), []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.NumPages(0); got != 3 { // ceil(7/3)
		t.Fatalf("NumPages = %d, want 3", got)
	}
	gk, _, gpos := c.Get(0)
	for i := 0; i < 7; i++ {
		if gk.At(i, 0, 0) != float32(i) || gpos[i] != i {
			t.Fatalf("paged contents wrong at %d: %v %v", i, gk.At(i, 0, 0), gpos[i])
		}
	}
}

func TestMaxPos(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	if c.MaxPos(0) != -1 {
		t.Fatal("empty MaxPos should be -1")
	}
	k := tensor.New(3, 1, 1)
	if err := c.Append(0, k, tensor.New(3, 1, 1), []int{4, 9, 2}); err != nil {
		t.Fatal(err)
	}
	if got := c.MaxPos(0); got != 9 {
		t.Fatalf("MaxPos = %d, want 9", got)
	}
}

func TestDropFreesCapacity(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, Capacity: 2})
	k := tensor.New(2, 1, 1)
	if err := c.Append(3, k, tensor.New(2, 1, 1), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	c.Drop(3)
	c.Drop(99) // no-op
	if c.TotalTokens() != 0 {
		t.Fatalf("TotalTokens after drop = %d", c.TotalTokens())
	}
	if err := c.Append(4, k, tensor.New(2, 1, 1), []int{0, 1}); err != nil {
		t.Fatalf("capacity not freed by Drop: %v", err)
	}
}

func TestSequencesSorted(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	for _, s := range []int{5, 1, 3} {
		k := tensor.New(1, 1, 1)
		if err := c.Append(s, k, tensor.New(1, 1, 1), []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Sequences()
	want := []int{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sequences = %v, want %v", got, want)
		}
	}
}

func TestBytesUsed(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 8, HeadDim: 128})
	k := tensor.New(10, 8, 128)
	if err := c.Append(0, k, tensor.New(10, 8, 128), seqPos(10)); err != nil {
		t.Fatal(err)
	}
	// 10 tokens * 2 * 8 * 128 * 2 bytes * 126 layers = 5160960.
	if got := c.BytesUsed(2, 126); got != 5160960 {
		t.Fatalf("BytesUsed = %v, want 5160960", got)
	}
}

func TestGetUnknownSequenceEmpty(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 2, HeadDim: 2})
	k, v, pos := c.Get(42)
	if k.Tokens != 0 || v.Tokens != 0 || len(pos) != 0 {
		t.Fatal("unknown sequence should be empty")
	}
}

// Property: appending in multiple slices equals appending all at once —
// cache contents depend only on the concatenation.
func TestPropertyAppendSliceInvariance(t *testing.T) {
	f := func(seed int64, rawN, rawCut uint8) bool {
		n := int(rawN%12) + 1
		cut := int(rawCut) % (n + 1)
		rng := rand.New(rand.NewSource(seed))
		k := tensor.RandN(rng, n, 2, 2)
		v := tensor.RandN(rng, n, 2, 2)
		pos := rng.Perm(n * 2)[:n]

		one, _ := New(Config{KVHeads: 2, HeadDim: 2, PageSize: 3})
		if err := one.Append(0, k, v, pos); err != nil {
			return false
		}
		two, _ := New(Config{KVHeads: 2, HeadDim: 2, PageSize: 3})
		if err := two.Append(0, k.SliceTokens(0, cut), v.SliceTokens(0, cut), pos[:cut]); err != nil {
			return false
		}
		if err := two.Append(0, k.SliceTokens(cut, n), v.SliceTokens(cut, n), pos[cut:]); err != nil {
			return false
		}
		k1, v1, p1 := one.Get(0)
		k2, v2, p2 := two.Get(0)
		if tensor.MaxAbsDiff(k1, k2) != 0 || tensor.MaxAbsDiff(v1, v2) != 0 {
			return false
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: TotalTokens equals the sum of SeqLens for any append pattern.
func TestPropertyTotalMatchesSum(t *testing.T) {
	f := func(seed int64, rawOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := New(Config{KVHeads: 1, HeadDim: 1, PageSize: 2})
		ops := int(rawOps%10) + 1
		for i := 0; i < ops; i++ {
			seq := rng.Intn(3)
			n := rng.Intn(4) + 1
			pos := make([]int, n)
			for j := range pos {
				pos[j] = rng.Intn(100)
			}
			if err := c.Append(seq, tensor.New(n, 1, 1), tensor.New(n, 1, 1), pos); err != nil {
				return false
			}
			if rng.Intn(4) == 0 {
				c.Drop(rng.Intn(3))
			}
		}
		sum := 0
		for _, s := range c.Sequences() {
			sum += c.SeqLen(s)
		}
		return sum == c.TotalTokens()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func seqPos(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- Span sharing, copy-on-write, and pinned-page eviction ordering. ---

func fill(t *testing.T, c *Cache, seq, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := tensor.New(1, 1, 1)
		k.Set(0, 0, 0, float32(seq*100+i))
		if err := c.Append(seq, k, tensor.New(1, 1, 1), []int{i}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpanSurvivesDonorDrop(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 2})
	fill(t, c, 0, 6)
	sp, err := c.AcquireSpan(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Tokens() != 4 {
		t.Fatalf("span tokens = %d, want 4", sp.Tokens())
	}
	// Dropping the donor must not free the pinned pages: the span holds
	// pages [0,4); only the donor-exclusive tail page [4,6) is freed.
	c.Drop(0)
	if got := c.TotalTokens(); got != 4 {
		t.Fatalf("TotalTokens after donor drop = %d, want 4 (span pins pages)", got)
	}
	if err := c.AdoptSpan(7, sp); err != nil {
		t.Fatal(err)
	}
	gk, _, gpos := c.Get(7)
	if gk.Tokens != 4 {
		t.Fatalf("adopted rows = %d, want 4", gk.Tokens)
	}
	for i := 0; i < 4; i++ {
		if gk.At(i, 0, 0) != float32(i) || gpos[i] != i {
			t.Fatalf("adopted row %d = (%v,%d)", i, gk.At(i, 0, 0), gpos[i])
		}
	}
	// Adoption shares pages: no physical growth.
	if got := c.TotalTokens(); got != 4 {
		t.Fatalf("TotalTokens after adopt = %d, want 4", got)
	}
	// Release ordering: span release alone keeps pages (sequence 7 holds
	// them); dropping 7 afterwards frees everything.
	sp.Release()
	sp.Release() // double release is a no-op
	if got := c.TotalTokens(); got != 4 {
		t.Fatalf("TotalTokens after span release = %d, want 4 (seq 7 holds pages)", got)
	}
	c.Drop(7)
	if got := c.TotalTokens(); got != 0 {
		t.Fatalf("TotalTokens after last holder drop = %d, want 0", got)
	}
}

func TestAdoptCopyOnWrite(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 4})
	fill(t, c, 0, 4)               // one full page
	sp, err := c.AcquireSpan(0, 3) // mid-page boundary
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptSpan(1, sp); err != nil {
		t.Fatal(err)
	}
	if got := c.SeqLen(1); got != 3 {
		t.Fatalf("adopted SeqLen = %d, want 3", got)
	}
	// Appending through the shared, truncated tail page must copy-on-write:
	// the donor's fourth row stays intact.
	k := tensor.New(1, 1, 1)
	k.Set(0, 0, 0, 999)
	if err := c.Append(1, k, tensor.New(1, 1, 1), []int{3}); err != nil {
		t.Fatal(err)
	}
	dk, _, _ := c.Get(0)
	if dk.At(3, 0, 0) != 3 {
		t.Fatalf("donor row clobbered: %v", dk.At(3, 0, 0))
	}
	ak, _, apos := c.Get(1)
	if ak.At(3, 0, 0) != 999 || apos[3] != 3 {
		t.Fatalf("adopter row = (%v,%d), want (999,3)", ak.At(3, 0, 0), apos[3])
	}
	// Physical accounting: donor page (4) + COW clone page (4 rows: 3
	// cloned + 1 appended).
	if got := c.TotalTokens(); got != 8 {
		t.Fatalf("TotalTokens after COW = %d, want 8", got)
	}
}

func TestAcquireSpanRejectsInterleavedRows(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	// Append order 0,1,5 then 2: rows below 3 are not an append-order
	// prefix, so a span at 3 would reorder KV relative to a cold prefill.
	k := tensor.New(3, 1, 1)
	if err := c.Append(0, k, tensor.New(3, 1, 1), []int{0, 1, 5}); err != nil {
		t.Fatal(err)
	}
	k1 := tensor.New(1, 1, 1)
	if err := c.Append(0, k1, tensor.New(1, 1, 1), []int{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AcquireSpan(0, 3); err == nil {
		t.Fatal("interleaved rows accepted as a span prefix")
	}
	// A boundary past every row is fine.
	if sp, err := c.AcquireSpan(0, 6); err != nil || sp.Tokens() != 4 {
		t.Fatalf("full span: %v tokens=%d", err, sp.Tokens())
	}
}

func TestAdoptSpanValidation(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	c2 := mustNew(t, Config{KVHeads: 1, HeadDim: 1})
	fill(t, c, 0, 2)
	sp, err := c.AcquireSpan(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.AdoptSpan(1, sp); err == nil {
		t.Fatal("cross-cache adoption accepted")
	}
	if err := c.AdoptSpan(0, sp); err == nil {
		t.Fatal("adoption onto a non-empty sequence accepted")
	}
	sp.Release()
	if err := c.AdoptSpan(1, sp); err == nil {
		t.Fatal("released span adopted")
	}
	if _, err := c.AcquireSpan(0, 0); err == nil {
		t.Fatal("zero-bound span accepted")
	}
	// A rank legitimately holding no rows of a short prefix yields an
	// empty span.
	if sp, err := c.AcquireSpan(99, 4); err != nil || sp.Tokens() != 0 {
		t.Fatalf("empty-rank span: %v tokens=%d", err, sp.Tokens())
	}
}

func TestCapacityCountsSharedPagesOnce(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 2, Capacity: 6})
	fill(t, c, 0, 4)
	sp, err := c.AcquireSpan(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Three adopters share the same 4 physical tokens.
	for _, seq := range []int{1, 2, 3} {
		if err := c.AdoptSpan(seq, sp); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.TotalTokens(); got != 4 {
		t.Fatalf("TotalTokens with 4 holders = %d, want 4", got)
	}
	// Appends still fit: page-aligned tails append in place (no COW).
	k := tensor.New(1, 1, 1)
	if err := c.Append(0, k, tensor.New(1, 1, 1), []int{4}); err == nil {
		// seq 0's tail page is shared with the span and adopters... but
		// page [2,4) is full, so a fresh page is opened: 4+1 <= 6 fits.
		if c.TotalTokens() != 5 {
			t.Fatalf("TotalTokens = %d, want 5", c.TotalTokens())
		}
	} else {
		t.Fatal(err)
	}
	// The next append opens another page for seq 1 and hits the cap.
	var ce *ErrCapacity
	if err := c.Append(1, k, tensor.New(1, 1, 1), []int{4}); err != nil {
		t.Fatalf("append within capacity failed: %v", err)
	}
	if err := c.Append(2, k, tensor.New(1, 1, 1), []int{4}); !errors.As(err, &ce) {
		t.Fatalf("expected ErrCapacity, got %v", err)
	}
}

func TestAppendOverheadReportsCOW(t *testing.T) {
	c := mustNew(t, Config{KVHeads: 1, HeadDim: 1, PageSize: 4})
	fill(t, c, 0, 3)
	if got := c.AppendOverhead(0); got != 0 {
		t.Fatalf("owned tail overhead = %d, want 0", got)
	}
	sp, err := c.AcquireSpan(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Release()
	// The tail page is now shared with the span: the next append clones 3
	// rows first.
	if got := c.AppendOverhead(0); got != 3 {
		t.Fatalf("shared tail overhead = %d, want 3", got)
	}
}
