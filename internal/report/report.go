// Package report is the common findings-output shape shared by the repo's
// checker binaries (cplint, obscheck): a flat list of findings, each with a
// file position, a rule id, and a message, renderable as file:line text for
// humans or as one JSON document for CI tooling. Keeping the encoding in
// one place means a CI step can consume either tool's -json output with the
// same jq expression.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Finding is one diagnostic: a rule violation at a position. File and Line
// may be empty/zero for findings not tied to source (e.g. an unreachable
// endpoint), in which case the text rendering drops the position prefix.
type Finding struct {
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// String renders the canonical single-line form: "file:line: [rule] message".
func (f Finding) String() string {
	switch {
	case f.File != "" && f.Line > 0:
		return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Message)
	case f.File != "":
		return fmt.Sprintf("%s: [%s] %s", f.File, f.Rule, f.Message)
	default:
		return fmt.Sprintf("[%s] %s", f.Rule, f.Message)
	}
}

// Report is a tool run's full findings list.
type Report struct {
	Tool     string    `json:"tool"`
	Findings []Finding `json:"findings"`
}

// New returns an empty report for the named tool.
func New(tool string) *Report {
	return &Report{Tool: tool, Findings: []Finding{}}
}

// Add appends one finding.
func (r *Report) Add(f Finding) {
	r.Findings = append(r.Findings, f)
}

// Addf appends a position-free finding with a formatted message.
func (r *Report) Addf(rule, format string, args ...any) {
	r.Add(Finding{Rule: rule, Message: fmt.Sprintf(format, args...)})
}

// Empty reports whether the run produced no findings.
func (r *Report) Empty() bool { return len(r.Findings) == 0 }

// Sort orders findings by (file, line, rule, message) — the deterministic
// output order both text and JSON renderings use.
func (r *Report) Sort() {
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// WriteText writes one canonical line per finding.
func (r *Report) WriteText(w io.Writer) error {
	r.Sort()
	for _, f := range r.Findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the whole report as one indented JSON document. The
// findings array is always present ([] when clean), so consumers can index
// it unconditionally.
func (r *Report) WriteJSON(w io.Writer) error {
	r.Sort()
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
