package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	cases := []struct {
		f    Finding
		want string
	}{
		{Finding{File: "a.go", Line: 3, Rule: "determinism", Message: "m"}, "a.go:3: [determinism] m"},
		{Finding{File: "soak.prom", Rule: "prom-parse", Message: "m"}, "soak.prom: [prom-parse] m"},
		{Finding{Rule: "fetch", Message: "connection refused"}, "[fetch] connection refused"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSortOrder(t *testing.T) {
	r := New("t")
	r.Add(Finding{File: "b.go", Line: 1, Rule: "r", Message: "m"})
	r.Add(Finding{File: "a.go", Line: 9, Rule: "r", Message: "m"})
	r.Add(Finding{File: "a.go", Line: 2, Rule: "z", Message: "m"})
	r.Add(Finding{File: "a.go", Line: 2, Rule: "a", Message: "m"})
	r.Sort()
	var got []string
	for _, f := range r.Findings {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:2: [a] m",
		"a.go:2: [z] m",
		"a.go:9: [r] m",
		"b.go:1: [r] m",
	}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("sorted order = %v, want %v", got, want)
	}
}

// The JSON rendering must always carry a findings array — [] when clean —
// so CI consumers can index .findings unconditionally.
func TestWriteJSONEmptyFindings(t *testing.T) {
	var sb strings.Builder
	r := Report{Tool: "cplint"}
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"findings": []`) {
		t.Errorf("empty report JSON lacks a [] findings array:\n%s", sb.String())
	}
	var back Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "cplint" || back.Findings == nil || len(back.Findings) != 0 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestWriteTextAndEmpty(t *testing.T) {
	r := New("t")
	if !r.Empty() {
		t.Error("new report not empty")
	}
	r.Addf("fetch", "status %d", 503)
	if r.Empty() {
		t.Error("report with a finding reports empty")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "[fetch] status 503\n" {
		t.Errorf("text rendering = %q", sb.String())
	}
}
