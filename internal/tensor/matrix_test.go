package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float32{1, 2, 3, 4, 5, 6})
	dst := make([]float32, 2)
	m.MulVec(dst, []float32{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", dst)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	NewMatrix(2, 3).MulVec(make([]float32, 2), make([]float32, 2))
}

func TestApplyRows(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float32{0, 1, 1, 0}) // swap
	out := m.ApplyRows([]float32{1, 2, 3, 4}, 2)
	want := []float32{2, 1, 4, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("ApplyRows = %v, want %v", out, want)
		}
	}
}

func TestRandMatrixScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandMatrix(rng, 64, 256)
	var ss float64
	for _, v := range m.Data {
		ss += float64(v) * float64(v)
	}
	variance := ss / float64(len(m.Data))
	// Fan-in init: variance ~ 1/cols.
	if variance < 0.5/256 || variance > 2.0/256 {
		t.Fatalf("variance = %v, want ~%v", variance, 1.0/256)
	}
}

func TestRMSNormUnitScale(t *testing.T) {
	gain := []float32{1, 1, 1, 1}
	out := RMSNorm([]float32{2, 2, 2, 2}, gain, 1e-6)
	for _, v := range out {
		if math.Abs(float64(v)-1) > 1e-5 {
			t.Fatalf("RMSNorm = %v, want all ~1", out)
		}
	}
}

func TestRMSNormGain(t *testing.T) {
	out := RMSNorm([]float32{1, -1}, []float32{3, 0.5}, 0)
	if math.Abs(float64(out[0])-3) > 1e-5 || math.Abs(float64(out[1])+0.5) > 1e-5 {
		t.Fatalf("RMSNorm with gain = %v", out)
	}
}

func TestSiLU(t *testing.T) {
	if SiLU(0) != 0 {
		t.Fatal("SiLU(0) != 0")
	}
	if got := SiLU(10); math.Abs(float64(got)-10) > 1e-3 {
		t.Fatalf("SiLU(10) = %v, want ~10", got)
	}
	if got := SiLU(-10); math.Abs(float64(got)) > 1e-3 {
		t.Fatalf("SiLU(-10) = %v, want ~0", got)
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	w := append([]float32(nil), v...)
	RoPE(w, 0, 10000)
	for i := range v {
		if math.Abs(float64(v[i]-w[i])) > 1e-6 {
			t.Fatalf("RoPE at pos 0 changed vector: %v -> %v", v, w)
		}
	}
}

// RoPE preserves the norm of every rotated pair (it is a rotation).
func TestPropertyRoPEPreservesNorm(t *testing.T) {
	f := func(seed int64, rawPos uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float32, 8)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		var before float64
		for _, x := range v {
			before += float64(x) * float64(x)
		}
		RoPE(v, int(rawPos), 10000)
		var after float64
		for _, x := range v {
			after += float64(x) * float64(x)
		}
		return math.Abs(before-after) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The relative-position property that makes RoPE work with attention: the
// dot product of two rotated vectors depends only on the position offset.
func TestPropertyRoPERelativePositions(t *testing.T) {
	f := func(seed int64, rawA, rawD uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make([]float32, 8)
		k := make([]float32, 8)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
			k[i] = float32(rng.NormFloat64())
		}
		posA := int(rawA)
		delta := int(rawD) % 32
		q1 := append([]float32(nil), q...)
		k1 := append([]float32(nil), k...)
		RoPE(q1, posA+delta, 10000)
		RoPE(k1, posA, 10000)
		q2 := append([]float32(nil), q...)
		k2 := append([]float32(nil), k...)
		RoPE(q2, delta, 10000)
		RoPE(k2, 0, 10000)
		return math.Abs(float64(Dot(q1, k1))-float64(Dot(q2, k2))) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
