package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/parallel"
	"repro/internal/simd"
)

// Matrix is a dense row-major [Rows x Cols] float32 matrix used by the
// transformer substrate's linear layers (weight matrices act on per-token
// embedding vectors).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix shape [%d %d]", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// RandMatrix fills a matrix with pseudo-normal values scaled by
// 1/sqrt(cols), the usual fan-in initialization.
func RandMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	scale := 1 / math.Sqrt(float64(cols))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * scale)
	}
	return m
}

// Row returns row r as a subslice of the underlying storage.
func (m *Matrix) Row(r int) []float32 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// MulVec computes dst = M · src. len(src) must equal Cols and len(dst) must
// equal Rows; dst is overwritten. Each output element is one shared-SIMD
// dot product (simd.DotF32): AVX four-lane on amd64, the bit-identical
// four-way-unrolled scalar loop elsewhere.
func (m *Matrix) MulVec(dst, src []float32) {
	if len(src) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvec shapes dst=%d src=%d for [%d %d]",
			len(dst), len(src), m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		dst[r] = simd.DotF32(m.Row(r), src)
	}
}

// minParallelFlops gates pool dispatch for the row-blocked matmuls and
// forward-pass sweeps: below roughly this many multiply-adds the dispatch
// costs more than the math (the same trade the attention kernels make).
const minParallelFlops = 4096

var (
	statMatmulJobs       atomic.Int64 // ApplyRowsInto/ForRows calls fanned over the pool
	statMatmulSerialJobs atomic.Int64 // calls run inline below the threshold
	statMatmulCells      atomic.Int64 // output cells computed in fanned calls
)

// MatmulStats counts how the forward-pass matmul sweeps use the shared
// worker pool, exposed through /v1/stats so projection/FFN/logits
// parallelism is observable alongside the attention kernel's counters.
type MatmulStats struct {
	Jobs       int64 `json:"jobs"`        // sweeps fanned over the pool
	SerialJobs int64 `json:"serial_jobs"` // sweeps run inline (below threshold or width 1)
	Cells      int64 `json:"cells"`       // output cells computed in fanned sweeps
}

// MatmulSnapshot returns the current matmul sweep counters.
func MatmulSnapshot() MatmulStats {
	return MatmulStats{
		Jobs:       statMatmulJobs.Load(),
		SerialJobs: statMatmulSerialJobs.Load(),
		Cells:      statMatmulCells.Load(),
	}
}

// ForRows fans fn over [0, n) row indices when n*flopsPerRow justifies a
// pool dispatch, and runs it inline otherwise. fn(lo, hi) must write only
// rows it owns and compute each row identically regardless of partitioning
// — the same determinism contract as parallel.For — so fanned execution is
// bit-identical to inline at any worker count. The forward-pass sweeps
// (QKV projection, FFN, logits, RoPE) and ApplyRowsInto all route through
// here, which is also where the matmul pool counters are kept.
func ForRows(n, flopsPerRow int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if n*flopsPerRow < minParallelFlops || parallel.Workers() <= 1 {
		statMatmulSerialJobs.Add(1)
		fn(0, n)
		return
	}
	parallel.For(n, fn)
	statMatmulJobs.Add(1)
	statMatmulCells.Add(int64(n))
}

// ApplyRowsInto computes the row-blocked matmul dst = [tokens, Rows] of the
// matrix applied to every token row of in ([tokens, Cols] flat) without
// allocating: the caller provides dst (typically pooled scratch). Work is
// chunked over the shared worker pool at output-cell granularity — cell
// (t, r) is one simd dot of weight row r against token row t — so a
// one-token decode step still fans across Rows. Every cell is a pure
// function of its operands, so parallel output is bit-identical to serial.
func (m *Matrix) ApplyRowsInto(dst, in []float32, tokens int) {
	if len(in) != tokens*m.Cols {
		panic(fmt.Sprintf("tensor: applyrows input %d for %d tokens x %d cols", len(in), tokens, m.Cols))
	}
	if len(dst) != tokens*m.Rows {
		panic(fmt.Sprintf("tensor: applyrows dst %d for %d tokens x %d rows", len(dst), tokens, m.Rows))
	}
	rows, cols := m.Rows, m.Cols
	ForRows(tokens*rows, cols, func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			t := idx / rows
			r := idx - t*rows
			dst[idx] = simd.DotF32(m.Data[r*cols:(r+1)*cols], in[t*cols:(t+1)*cols])
		}
	})
}

// ApplyRows applies the matrix independently to every token row of a
// flattened activation tensor: in is [tokens, Cols] flat, the result is
// [tokens, Rows] flat. Allocating form of ApplyRowsInto.
func (m *Matrix) ApplyRows(in []float32, tokens int) []float32 {
	out := make([]float32, tokens*m.Rows)
	m.ApplyRowsInto(out, in, tokens)
	return out
}

// RMSNormInto writes the root-mean-square normalization of x scaled by the
// per-channel gain into dst: dst_i = x_i / rms(x) * g_i. dst may alias x.
func RMSNormInto(dst, x, gain []float32, eps float64) {
	if len(x) != len(gain) {
		panic(fmt.Sprintf("tensor: rmsnorm gain %d for input %d", len(gain), len(x)))
	}
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: rmsnorm dst %d for input %d", len(dst), len(x)))
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := 1 / math.Sqrt(ss/float64(len(x))+eps)
	for i, v := range x {
		dst[i] = float32(float64(v)*inv) * gain[i]
	}
}

// RMSNorm is the allocating form of RMSNormInto.
func RMSNorm(x, gain []float32, eps float64) []float32 {
	out := make([]float32, len(x))
	RMSNormInto(out, x, gain, eps)
	return out
}

// SiLU is the sigmoid-weighted linear unit x*sigmoid(x) used by SwiGLU FFNs.
func SiLU(x float32) float32 {
	return float32(float64(x) / (1 + math.Exp(-float64(x))))
}

// RoPE applies rotary position embeddings in place to one head vector at
// the given absolute position: consecutive pairs (2i, 2i+1) rotate by
// pos/base^(2i/d). The paper's load-balanced sharding makes per-token
// positions non-contiguous on each rank, so rotation must always use the
// token's global position — which is exactly what this function takes.
func RoPE(vec []float32, pos int, base float64) {
	d := len(vec)
	for i := 0; i+1 < d; i += 2 {
		theta := float64(pos) / math.Pow(base, float64(i)/float64(d))
		sin, cos := math.Sin(theta), math.Cos(theta)
		a, b := float64(vec[i]), float64(vec[i+1])
		vec[i] = float32(a*cos - b*sin)
		vec[i+1] = float32(a*sin + b*cos)
	}
}
