package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major [Rows x Cols] float32 matrix used by the
// transformer substrate's linear layers (weight matrices act on per-token
// embedding vectors).
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix returns a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative matrix shape [%d %d]", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// RandMatrix fills a matrix with pseudo-normal values scaled by
// 1/sqrt(cols), the usual fan-in initialization.
func RandMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	scale := 1 / math.Sqrt(float64(cols))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * scale)
	}
	return m
}

// Row returns row r as a subslice of the underlying storage.
func (m *Matrix) Row(r int) []float32 {
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// MulVec computes dst = M · src. len(src) must equal Cols and len(dst) must
// equal Rows; dst is overwritten.
func (m *Matrix) MulVec(dst, src []float32) {
	if len(src) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: mulvec shapes dst=%d src=%d for [%d %d]",
			len(dst), len(src), m.Rows, m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		dst[r] = Dot(m.Row(r), src)
	}
}

// ApplyRows applies the matrix independently to every token row of a
// flattened activation tensor: in is [tokens, Cols] flat, the result is
// [tokens, Rows] flat.
func (m *Matrix) ApplyRows(in []float32, tokens int) []float32 {
	if len(in) != tokens*m.Cols {
		panic(fmt.Sprintf("tensor: applyrows input %d for %d tokens x %d cols", len(in), tokens, m.Cols))
	}
	out := make([]float32, tokens*m.Rows)
	for t := 0; t < tokens; t++ {
		m.MulVec(out[t*m.Rows:(t+1)*m.Rows], in[t*m.Cols:(t+1)*m.Cols])
	}
	return out
}

// RMSNorm normalizes x in place by its root-mean-square and multiplies by
// the per-channel gain, returning a new slice: out_i = x_i / rms(x) * g_i.
func RMSNorm(x, gain []float32, eps float64) []float32 {
	if len(x) != len(gain) {
		panic(fmt.Sprintf("tensor: rmsnorm gain %d for input %d", len(gain), len(x)))
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := 1 / math.Sqrt(ss/float64(len(x))+eps)
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(float64(v)*inv) * gain[i]
	}
	return out
}

// SiLU is the sigmoid-weighted linear unit x*sigmoid(x) used by SwiGLU FFNs.
func SiLU(x float32) float32 {
	return float32(float64(x) / (1 + math.Exp(-float64(x))))
}

// RoPE applies rotary position embeddings in place to one head vector at
// the given absolute position: consecutive pairs (2i, 2i+1) rotate by
// pos/base^(2i/d). The paper's load-balanced sharding makes per-token
// positions non-contiguous on each rank, so rotation must always use the
// token's global position — which is exactly what this function takes.
func RoPE(vec []float32, pos int, base float64) {
	d := len(vec)
	for i := 0; i+1 < d; i += 2 {
		theta := float64(pos) / math.Pow(base, float64(i)/float64(d))
		sin, cos := math.Sin(theta), math.Cos(theta)
		a, b := float64(vec[i]), float64(vec[i+1])
		vec[i] = float32(a*cos - b*sin)
		vec[i+1] = float32(a*sin + b*cos)
	}
}
