package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/simd"
)

// The row-blocked parallel matmul must be bit-identical to the serial
// per-row loop at every worker width and for every SIMD setting, across
// shapes that land on both sides of the dispatch threshold (one-token
// decode, odd row counts, big blocks).
func TestApplyRowsIntoBitIdenticalAcrossWorkersAndSIMD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := []struct{ rows, cols, tokens int }{
		{8, 8, 1},     // below threshold: inline path
		{64, 32, 1},   // one-token decode, fans over rows
		{96, 64, 7},   // odd token count
		{64, 100, 33}, // non-multiple-of-four dot length
	}
	oldW := parallel.SetWorkers(1)
	prevSIMD := simd.SetEnabled(false)
	defer func() {
		parallel.SetWorkers(oldW)
		simd.SetEnabled(prevSIMD)
	}()
	for _, sh := range shapes {
		m := RandMatrix(rng, sh.rows, sh.cols)
		in := make([]float32, sh.tokens*sh.cols)
		for i := range in {
			in[i] = float32(rng.NormFloat64())
		}
		// Reference: serial scalar per-row MulVec loop.
		simd.SetEnabled(false)
		parallel.SetWorkers(1)
		ref := make([]float32, sh.tokens*sh.rows)
		for tok := 0; tok < sh.tokens; tok++ {
			m.MulVec(ref[tok*sh.rows:(tok+1)*sh.rows], in[tok*sh.cols:(tok+1)*sh.cols])
		}
		for _, useSIMD := range []bool{false, true} {
			simd.SetEnabled(useSIMD)
			for _, workers := range []int{1, 2, 8} {
				parallel.SetWorkers(workers)
				got := make([]float32, sh.tokens*sh.rows)
				m.ApplyRowsInto(got, in, sh.tokens)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(ref[i]) {
						t.Fatalf("shape %+v simd=%v workers=%d cell %d: %x != %x",
							sh, useSIMD, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func TestApplyRowsIntoShapePanics(t *testing.T) {
	m := NewMatrix(4, 3)
	for _, bad := range []struct {
		dst, in []float32
		tokens  int
	}{
		{make([]float32, 7), make([]float32, 6), 2},  // dst too short
		{make([]float32, 8), make([]float32, 5), 2},  // in wrong length
		{make([]float32, 12), make([]float32, 6), 2}, // dst sized for 3 tokens, in for 2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic for dst=%d in=%d tokens=%d", len(bad.dst), len(bad.in), bad.tokens)
				}
			}()
			m.ApplyRowsInto(bad.dst, bad.in, bad.tokens)
		}()
	}
}

// RMSNormInto must equal the allocating form and support dst aliasing x.
func TestRMSNormIntoMatchesAndAliases(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]float32, 33)
	gain := make([]float32, 33)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		gain[i] = float32(rng.NormFloat64())
	}
	want := RMSNorm(x, gain, 1e-5)
	got := make([]float32, len(x))
	RMSNormInto(got, x, gain, 1e-5)
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("element %d: %x != %x", i, got[i], want[i])
		}
	}
	aliased := append([]float32(nil), x...)
	RMSNormInto(aliased, aliased, gain, 1e-5)
	for i := range aliased {
		if math.Float32bits(aliased[i]) != math.Float32bits(want[i]) {
			t.Fatalf("aliased element %d: %x != %x", i, aliased[i], want[i])
		}
	}
}

// ForRows must visit every index exactly once whether it fans out or runs
// inline, and the matmul counters must attribute the call to the right mode.
func TestForRowsCoverageAndCounters(t *testing.T) {
	oldW := parallel.SetWorkers(4)
	defer parallel.SetWorkers(oldW)
	const n = 1000
	hits := make([]int32, n)
	before := MatmulSnapshot()
	ForRows(n, 100, func(lo, hi int) { // 100k flops: fans out
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	mid := MatmulSnapshot()
	if mid.Jobs != before.Jobs+1 || mid.Cells != before.Cells+n {
		t.Fatalf("fanned ForRows counters: %+v -> %+v", before, mid)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
	ForRows(4, 2, func(lo, hi int) {}) // 8 flops: inline
	after := MatmulSnapshot()
	if after.SerialJobs != mid.SerialJobs+1 || after.Jobs != mid.Jobs {
		t.Fatalf("inline ForRows counters: %+v -> %+v", mid, after)
	}
}
