package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	tt := New(3, 4, 5)
	if tt.NumElements() != 60 {
		t.Fatalf("NumElements = %d, want 60", tt.NumElements())
	}
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromDataLengthMismatch(t *testing.T) {
	if _, err := FromData(2, 2, 2, make([]float32, 7)); err == nil {
		t.Fatal("FromData accepted mismatched length")
	}
	ten, err := FromData(2, 2, 2, make([]float32, 8))
	if err != nil || ten == nil {
		t.Fatalf("FromData rejected valid input: %v", err)
	}
}

func TestIndexRoundTrip(t *testing.T) {
	tt := New(4, 3, 2)
	n := 0
	for tok := 0; tok < 4; tok++ {
		for h := 0; h < 3; h++ {
			for d := 0; d < 2; d++ {
				if got := tt.Index(tok, h, d); got != n {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d", tok, h, d, got, n)
				}
				n++
			}
		}
	}
}

func TestSetAtRow(t *testing.T) {
	tt := New(2, 2, 3)
	tt.Set(1, 1, 2, 42)
	if got := tt.At(1, 1, 2); got != 42 {
		t.Fatalf("At = %v, want 42", got)
	}
	row := tt.Row(1, 1)
	if row[2] != 42 {
		t.Fatalf("Row view = %v, want last element 42", row)
	}
	row[0] = 7 // row must alias the tensor
	if tt.At(1, 1, 0) != 7 {
		t.Fatal("Row did not alias underlying storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(rng, 3, 2, 4)
	b := a.Clone()
	b.Data[0] += 1
	if a.Data[0] == b.Data[0] {
		t.Fatal("Clone shares storage")
	}
}

func TestSliceTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(rng, 6, 2, 3)
	s := a.SliceTokens(2, 5)
	if s.Tokens != 3 {
		t.Fatalf("slice tokens = %d, want 3", s.Tokens)
	}
	for tok := 0; tok < 3; tok++ {
		for h := 0; h < 2; h++ {
			for d := 0; d < 3; d++ {
				if s.At(tok, h, d) != a.At(tok+2, h, d) {
					t.Fatalf("slice element (%d,%d,%d) mismatch", tok, h, d)
				}
			}
		}
	}
}

func TestSliceTokensPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SliceTokens out of range did not panic")
		}
	}()
	New(3, 1, 1).SliceTokens(1, 5)
}

func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(rng, 5, 2, 2)
	g := a.Gather([]int{4, 0, 4})
	if g.Tokens != 3 {
		t.Fatalf("gather tokens = %d, want 3", g.Tokens)
	}
	for h := 0; h < 2; h++ {
		for d := 0; d < 2; d++ {
			if g.At(0, h, d) != a.At(4, h, d) || g.At(1, h, d) != a.At(0, h, d) || g.At(2, h, d) != a.At(4, h, d) {
				t.Fatal("gather order wrong")
			}
		}
	}
}

func TestConcatAndSliceInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandN(rng, 4, 2, 3)
	b := RandN(rng, 2, 2, 3)
	c := Concat(a, nil, b, New(0, 2, 3))
	if c.Tokens != 6 {
		t.Fatalf("concat tokens = %d, want 6", c.Tokens)
	}
	if MaxAbsDiff(c.SliceTokens(0, 4), a) != 0 || MaxAbsDiff(c.SliceTokens(4, 6), b) != 0 {
		t.Fatal("concat does not round-trip with slice")
	}
}

func TestConcatEmpty(t *testing.T) {
	c := Concat()
	if c.Tokens != 0 || c.NumElements() != 0 {
		t.Fatalf("empty concat = %s", c.ShapeString())
	}
}

func TestConcatShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("concat with mismatched shapes did not panic")
		}
	}()
	Concat(New(1, 2, 3), New(1, 3, 2))
}

func TestPadTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandN(rng, 3, 2, 2)
	p := a.PadTokens(5)
	if p.Tokens != 5 {
		t.Fatalf("pad tokens = %d, want 5", p.Tokens)
	}
	if MaxAbsDiff(p.SliceTokens(0, 3), a) != 0 {
		t.Fatal("pad corrupted prefix")
	}
	for tok := 3; tok < 5; tok++ {
		for h := 0; h < 2; h++ {
			for d := 0; d < 2; d++ {
				if p.At(tok, h, d) != 0 {
					t.Fatal("pad region not zero")
				}
			}
		}
	}
}

func TestAddScaleFill(t *testing.T) {
	a := New(2, 1, 2)
	a.Fill(3)
	b := New(2, 1, 2)
	b.Fill(2)
	a.Add(b)
	a.Scale(0.5)
	for _, v := range a.Data {
		if v != 2.5 {
			t.Fatalf("Add/Scale = %v, want 2.5", v)
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := New(2, 2, 2)
	b := a.Clone()
	b.Data[3] = 1e-5
	if !AllClose(a, b, 1e-4) {
		t.Fatal("AllClose rejected within-tolerance tensors")
	}
	if AllClose(a, b, 1e-6) {
		t.Fatal("AllClose accepted out-of-tolerance tensors")
	}
	if AllClose(a, New(2, 2, 3), 1) {
		t.Fatal("AllClose accepted mismatched shapes")
	}
	if d := MaxAbsDiff(a, b); d < 9e-6 || d > 1.1e-5 {
		t.Fatalf("MaxAbsDiff = %v, want ~1e-5 (float32 rounding)", d)
	}
}

func TestBytes(t *testing.T) {
	a := New(4, 2, 8) // 64 elements
	if got := a.Bytes(2); got != 128 {
		t.Fatalf("Bytes(bf16) = %v, want 128", got)
	}
	if got := a.Bytes(1); got != 64 {
		t.Fatalf("Bytes(fp8) = %v, want 64", got)
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	dst := []float32{1, 1, 1}
	Axpy(2, a, dst)
	want := []float32{3, 5, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", dst, want)
		}
	}
}

func TestRandNDeterministic(t *testing.T) {
	a := RandN(rand.New(rand.NewSource(9)), 3, 2, 4)
	b := RandN(rand.New(rand.NewSource(9)), 3, 2, 4)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("RandN not deterministic for equal seeds")
	}
}

// Property: Concat(SliceTokens(0,k), SliceTokens(k,n)) == identity for any
// split point k.
func TestPropertySplitConcatIdentity(t *testing.T) {
	f := func(seed int64, rawTok, rawK uint8) bool {
		tokens := int(rawTok%16) + 1
		k := int(rawK) % (tokens + 1)
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, tokens, 2, 3)
		b := Concat(a.SliceTokens(0, k), a.SliceTokens(k, tokens))
		return AllClose(a, b, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gather with the identity permutation is a no-op, and gathering a
// permutation twice with its inverse restores the original tensor.
func TestPropertyGatherPermutationInverse(t *testing.T) {
	f := func(seed int64, rawTok uint8) bool {
		tokens := int(rawTok%12) + 1
		rng := rand.New(rand.NewSource(seed))
		a := RandN(rng, tokens, 1, 4)
		perm := rng.Perm(tokens)
		inv := make([]int, tokens)
		for i, p := range perm {
			inv[p] = i
		}
		return AllClose(a.Gather(perm).Gather(inv), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
