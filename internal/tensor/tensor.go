// Package tensor provides the minimal dense-tensor substrate used by the
// context-parallel inference engine. Tensors hold per-token, per-head
// embeddings in row-major [Tokens][Heads][Dim] layout, which mirrors the
// shape conventions of the paper (shape(Q) = [T, NH, D/NH], shape(K) =
// shape(V) = [(T+P), NKV, D/NH]).
//
// The package is deliberately small: float32 storage, exact arithmetic
// helpers, deterministic random initialization, and the slicing/concat/pad
// operations the ring-attention algorithms need. There is no automatic
// broadcasting and no GPU backend; everything runs on the host CPU so that
// the distributed algorithms can be verified bit-for-bit against a
// single-device reference.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense [Tokens][Heads][Dim] float32 tensor. The zero value is
// an empty tensor with no storage.
type Tensor struct {
	Tokens int // number of token rows
	Heads  int // number of attention heads at this tensor's granularity
	Dim    int // per-head embedding dimension
	Data   []float32
}

// New returns a zero-initialized tensor of the given shape.
func New(tokens, heads, dim int) *Tensor {
	if tokens < 0 || heads < 0 || dim < 0 {
		panic(fmt.Sprintf("tensor: negative shape [%d %d %d]", tokens, heads, dim))
	}
	return &Tensor{
		Tokens: tokens,
		Heads:  heads,
		Dim:    dim,
		Data:   make([]float32, tokens*heads*dim),
	}
}

// FromData wraps an existing slice as a tensor. The slice length must equal
// tokens*heads*dim; the tensor takes ownership of the slice.
func FromData(tokens, heads, dim int, data []float32) (*Tensor, error) {
	if len(data) != tokens*heads*dim {
		return nil, fmt.Errorf("tensor: data length %d does not match shape [%d %d %d]",
			len(data), tokens, heads, dim)
	}
	return &Tensor{Tokens: tokens, Heads: heads, Dim: dim, Data: data}, nil
}

// RandN fills a new tensor of the given shape with pseudo-normal values from
// the provided source. Passing the same source state reproduces the same
// tensor, which the tests rely on.
func RandN(rng *rand.Rand, tokens, heads, dim int) *Tensor {
	t := New(tokens, heads, dim)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

// NumElements returns the total number of scalar elements.
func (t *Tensor) NumElements() int { return t.Tokens * t.Heads * t.Dim }

// Index returns the flat offset of element (tok, head, d).
func (t *Tensor) Index(tok, head, d int) int {
	return (tok*t.Heads+head)*t.Dim + d
}

// At returns element (tok, head, d).
func (t *Tensor) At(tok, head, d int) float32 { return t.Data[t.Index(tok, head, d)] }

// Set assigns element (tok, head, d).
func (t *Tensor) Set(tok, head, d int, v float32) { t.Data[t.Index(tok, head, d)] = v }

// Row returns the Dim-length vector for (tok, head) as a subslice of the
// underlying storage. Mutating the returned slice mutates the tensor.
func (t *Tensor) Row(tok, head int) []float32 {
	off := (tok*t.Heads + head) * t.Dim
	return t.Data[off : off+t.Dim]
}

// Row2D returns the full embedding of token tok (all heads concatenated) as
// a subslice of the underlying storage. Mutating it mutates the tensor.
func (t *Tensor) Row2D(tok int) []float32 {
	rowLen := t.Heads * t.Dim
	return t.Data[tok*rowLen : (tok+1)*rowLen]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Tokens: t.Tokens, Heads: t.Heads, Dim: t.Dim, Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// SliceTokens returns a deep copy of token rows [lo, hi).
func (t *Tensor) SliceTokens(lo, hi int) *Tensor {
	if lo < 0 || hi > t.Tokens || lo > hi {
		panic(fmt.Sprintf("tensor: slice [%d:%d) out of range for %d tokens", lo, hi, t.Tokens))
	}
	out := New(hi-lo, t.Heads, t.Dim)
	rowLen := t.Heads * t.Dim
	copy(out.Data, t.Data[lo*rowLen:hi*rowLen])
	return out
}

// SliceHeads returns a deep copy of heads [lo, hi) for every token — the
// head-sharding primitive of tensor parallelism.
func (t *Tensor) SliceHeads(lo, hi int) *Tensor {
	if lo < 0 || hi > t.Heads || lo > hi {
		panic(fmt.Sprintf("tensor: head slice [%d:%d) out of range for %d heads", lo, hi, t.Heads))
	}
	out := New(t.Tokens, hi-lo, t.Dim)
	for tok := 0; tok < t.Tokens; tok++ {
		for h := lo; h < hi; h++ {
			copy(out.Row(tok, h-lo), t.Row(tok, h))
		}
	}
	return out
}

// ConcatHeads concatenates tensors along the head dimension; all inputs
// must share Tokens and Dim.
func ConcatHeads(parts ...*Tensor) *Tensor {
	tokens, dim := -1, -1
	total := 0
	for _, p := range parts {
		if p == nil || p.Heads == 0 {
			continue
		}
		if tokens == -1 {
			tokens, dim = p.Tokens, p.Dim
		} else if p.Tokens != tokens || p.Dim != dim {
			panic(fmt.Sprintf("tensor: concat-heads mismatch [%d _ %d] vs [%d _ %d]",
				p.Tokens, p.Dim, tokens, dim))
		}
		total += p.Heads
	}
	if tokens == -1 {
		return New(0, 0, 0)
	}
	out := New(tokens, total, dim)
	off := 0
	for _, p := range parts {
		if p == nil || p.Heads == 0 {
			continue
		}
		for tok := 0; tok < tokens; tok++ {
			for h := 0; h < p.Heads; h++ {
				copy(out.Row(tok, off+h), p.Row(tok, h))
			}
		}
		off += p.Heads
	}
	return out
}

// Gather returns a new tensor whose token rows are t's rows at the given
// indices, in order. Indices may repeat.
func (t *Tensor) Gather(rows []int) *Tensor {
	out := New(len(rows), t.Heads, t.Dim)
	rowLen := t.Heads * t.Dim
	for i, r := range rows {
		if r < 0 || r >= t.Tokens {
			panic(fmt.Sprintf("tensor: gather index %d out of range for %d tokens", r, t.Tokens))
		}
		copy(out.Data[i*rowLen:(i+1)*rowLen], t.Data[r*rowLen:(r+1)*rowLen])
	}
	return out
}

// Concat concatenates tensors along the token dimension. All inputs must
// share Heads and Dim. Nil or zero-token inputs are skipped.
func Concat(parts ...*Tensor) *Tensor {
	heads, dim := -1, -1
	total := 0
	for _, p := range parts {
		if p == nil || p.Tokens == 0 {
			continue
		}
		if heads == -1 {
			heads, dim = p.Heads, p.Dim
		} else if p.Heads != heads || p.Dim != dim {
			panic(fmt.Sprintf("tensor: concat shape mismatch [%d %d] vs [%d %d]",
				p.Heads, p.Dim, heads, dim))
		}
		total += p.Tokens
	}
	if heads == -1 {
		return New(0, 0, 0)
	}
	out := New(total, heads, dim)
	off := 0
	for _, p := range parts {
		if p == nil || p.Tokens == 0 {
			continue
		}
		copy(out.Data[off:], p.Data)
		off += len(p.Data)
	}
	return out
}

// PadTokens returns a copy extended with zero rows up to the given token
// count. It panics if tokens is smaller than the current length. Padding is
// how the ring algorithms equalize message sizes across ranks (the paper
// pads each rank's KV to max_i(P_i) + ceil(T/N)).
func (t *Tensor) PadTokens(tokens int) *Tensor {
	if tokens < t.Tokens {
		panic(fmt.Sprintf("tensor: pad target %d < current %d", tokens, t.Tokens))
	}
	out := New(tokens, t.Heads, t.Dim)
	copy(out.Data, t.Data)
	return out
}

// Add accumulates other into t element-wise. Shapes must match exactly.
func (t *Tensor) Add(other *Tensor) {
	t.mustSameShape(other)
	for i, v := range other.Data {
		t.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	a.mustSameShape(b)
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// AllClose reports whether every element pair differs by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if a.Tokens != b.Tokens || a.Heads != b.Heads || a.Dim != b.Dim {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// Bytes returns the in-memory payload size of the tensor assuming the given
// element width in bytes (e.g. 2 for bf16, 1 for fp8). The functional layer
// stores float32 but communication accounting uses the deployed precision.
func (t *Tensor) Bytes(elemSize float64) float64 {
	return float64(t.NumElements()) * elemSize
}

// ShapeString renders the shape for error messages and traces.
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("[%d %d %d]", t.Tokens, t.Heads, t.Dim)
}

func (t *Tensor) mustSameShape(o *Tensor) {
	if t.Tokens != o.Tokens || t.Heads != o.Heads || t.Dim != o.Dim {
		panic(fmt.Sprintf("tensor: shape mismatch %s vs %s", t.ShapeString(), o.ShapeString()))
	}
}

// Dot returns the inner product of two equal-length vectors. It is the
// innermost kernel of the attention implementations.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha * x for equal-length vectors.
func Axpy(alpha float32, x, dst []float32) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(dst)))
	}
	for i := range x {
		dst[i] += alpha * x[i]
	}
}
