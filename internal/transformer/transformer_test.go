package transformer

import (
	"math"
	"testing"
	"time"

	"repro/internal/perf"
)

const tol = 2e-3 // logits tolerance: float32 through 2 layers + head

func maxDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := Tiny(1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Tiny(1)
	bad.Model.VocabSize = 0
	if bad.Validate() == nil {
		t.Fatal("zero vocab accepted")
	}
	bad2 := Tiny(1)
	bad2.RoPEBase = 1
	if bad2.Validate() == nil {
		t.Fatal("rope base 1 accepted")
	}
	bad3 := Tiny(1)
	bad3.NormEps = 0
	if bad3.Validate() == nil {
		t.Fatal("zero eps accepted")
	}
}

func TestWeightsDeterministic(t *testing.T) {
	a, err := NewWeights(Tiny(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewWeights(Tiny(5))
	c, _ := NewWeights(Tiny(6))
	la, _ := a.Forward([]int{1, 2, 3})
	lb, _ := b.Forward([]int{1, 2, 3})
	lc, _ := c.Forward([]int{1, 2, 3})
	if maxDiff(la[2], lb[2]) != 0 {
		t.Fatal("same seed gave different logits")
	}
	if maxDiff(la[2], lc[2]) == 0 {
		t.Fatal("different seeds gave identical logits")
	}
}

func TestForwardShapesAndCausality(t *testing.T) {
	w, err := NewWeights(Tiny(1))
	if err != nil {
		t.Fatal(err)
	}
	logits, err := w.Forward([]int{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 5 || len(logits[0]) != w.Cfg.Model.VocabSize {
		t.Fatalf("logits shape %dx%d", len(logits), len(logits[0]))
	}
	// Causality: extending the sequence must not change earlier logits.
	longer, err := w.Forward([]int{3, 1, 4, 1, 5, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	for tIdx := 0; tIdx < 5; tIdx++ {
		if d := maxDiff(logits[tIdx], longer[tIdx]); d > 1e-6 {
			t.Fatalf("position %d logits changed by %v when appending tokens (causality broken)", tIdx, d)
		}
	}
}

func TestForwardRejectsBadTokens(t *testing.T) {
	w, _ := NewWeights(Tiny(1))
	if _, err := w.Forward(nil); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := w.Forward([]int{1000}); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
}

func TestClusterPrefillMatchesReference(t *testing.T) {
	w, err := NewWeights(Tiny(2))
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{7, 3, 60, 12, 9, 33, 2, 41, 18, 5, 27}
	ref, err := w.Forward(tokens)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 3} {
		for _, v := range []perf.Variant{perf.PassKV, perf.PassQ} {
			c, err := NewCluster(w, ranks)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Prefill(0, tokens, v)
			if err != nil {
				t.Fatalf("ranks=%d %v: %v", ranks, v, err)
			}
			for tIdx := range tokens {
				if d := maxDiff(ref[tIdx], got[tIdx]); d > tol {
					t.Fatalf("ranks=%d %v: position %d logits deviate by %v", ranks, v, tIdx, d)
				}
			}
		}
	}
}

func TestClusterMultiTurnPrefill(t *testing.T) {
	w, _ := NewWeights(Tiny(3))
	c, err := NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	turn1 := []int{5, 9, 13, 21, 34, 2, 8}
	turn2 := []int{17, 4, 44}
	if _, err := c.Prefill(0, turn1, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	got, err := c.Prefill(0, turn2, perf.PassQ)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([]int{}, turn1...), turn2...)
	ref, err := w.Forward(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range turn2 {
		if d := maxDiff(ref[len(turn1)+i], got[i]); d > tol {
			t.Fatalf("turn2 position %d deviates by %v", i, d)
		}
	}
	if c.SeqLen(0) != len(full) {
		t.Fatalf("SeqLen = %d, want %d", c.SeqLen(0), len(full))
	}
}

func TestClusterDecodeMatchesReference(t *testing.T) {
	w, _ := NewWeights(Tiny(4))
	c, err := NewCluster(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{11, 29, 3, 56, 8}
	if _, err := c.Prefill(0, prompt, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	seq := append([]int{}, prompt...)
	for step := 0; step < 4; step++ {
		next := (step*13 + 7) % w.Cfg.Model.VocabSize
		got, err := c.Decode(0, next)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, next)
		ref, err := w.Forward(seq)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(ref[len(seq)-1], got); d > tol {
			t.Fatalf("decode step %d logits deviate by %v", step, d)
		}
	}
}

func TestClusterGenerateMatchesReference(t *testing.T) {
	// The end-to-end claim: greedy decoding over the distributed cluster
	// emits the exact same tokens as the single-device reference.
	w, _ := NewWeights(Tiny(6))
	prompt := []int{2, 47, 19, 5, 31, 8}
	const steps = 6
	refTokens, err := w.GenerateReference(prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		c, err := NewCluster(w, ranks)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Generate(0, prompt, steps, perf.PassKV)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refTokens {
			if got[i] != refTokens[i] {
				t.Fatalf("ranks=%d: generated %v, reference %v", ranks, got, refTokens)
			}
		}
	}
}

func TestClusterDecodeRotatesOwnership(t *testing.T) {
	w, _ := NewWeights(Tiny(7))
	c, err := NewCluster(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prefill(0, []int{1, 2, 3, 4, 5, 6, 7, 8}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	base := c.RankCacheTokens()
	for step := 0; step < 8; step++ {
		if _, err := c.Decode(0, step%10); err != nil {
			t.Fatal(err)
		}
	}
	min, max := 1<<30, 0
	for r, tok := range c.RankCacheTokens() {
		g := tok - base[r]
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	// Growth is per-layer: 8 steps * 2 layers over 4 ranks = 4 per rank.
	if max-min > w.Cfg.Model.Layers {
		t.Fatalf("decode KV growth imbalance %d across ranks", max-min)
	}
}

func TestClusterErrors(t *testing.T) {
	w, _ := NewWeights(Tiny(8))
	if _, err := NewCluster(w, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
	c, _ := NewCluster(w, 2)
	if _, err := c.Prefill(0, nil, perf.PassKV); err == nil {
		t.Fatal("empty prefill accepted")
	}
	if _, err := c.Decode(0, 1); err == nil {
		t.Fatal("decode before prefill accepted")
	}
	if _, err := c.Prefill(0, []int{999}, perf.PassKV); err == nil {
		t.Fatal("out-of-vocab prefill accepted")
	}
}

func TestRoPEGlobalPositionsUnderSharding(t *testing.T) {
	// With 3 ranks the load-balanced shard positions are non-contiguous; if
	// the cluster rotated by local index instead of global position, logits
	// would diverge badly. Compare against reference at high precision.
	w, _ := NewWeights(Tiny(9))
	tokens := []int{13, 7, 22, 40, 9, 3, 18, 31, 25, 6, 12, 59}
	ref, err := w.Forward(tokens)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewCluster(w, 3)
	got, err := c.Prefill(0, tokens, perf.PassKV)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := range tokens {
		if d := maxDiff(ref[i], got[i]); d > worst {
			worst = d
		}
	}
	if worst > tol {
		t.Fatalf("sharded RoPE deviates by %v (global-position bug?)", worst)
	}
}

func TestPrefillBatchFusedSequences(t *testing.T) {
	// Two sequences fused into one ring pass per layer must each match their
	// independent reference forward.
	w, _ := NewWeights(Tiny(12))
	c, err := NewCluster(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]int{
		{3, 14, 15, 9, 26, 5, 35},
		{27, 18, 28},
	}
	out, err := c.PrefillBatch([]int{0, 1}, seqs, perf.PassKV)
	if err != nil {
		t.Fatal(err)
	}
	for i, toks := range seqs {
		ref, err := w.Forward(toks)
		if err != nil {
			t.Fatal(err)
		}
		for pos := range toks {
			if d := maxDiff(ref[pos], out[i][pos]); d > tol {
				t.Fatalf("sequence %d position %d deviates by %v", i, pos, d)
			}
		}
	}
	if c.SeqLen(0) != 7 || c.SeqLen(1) != 3 {
		t.Fatalf("lens = %d,%d", c.SeqLen(0), c.SeqLen(1))
	}
	// Mixed follow-up: one existing, one fresh sequence.
	out2, err := c.PrefillBatch([]int{1, 5}, [][]int{{7, 7}, {1, 2, 3, 4}}, perf.PassQ)
	if err != nil {
		t.Fatal(err)
	}
	full1 := append(append([]int{}, seqs[1]...), 7, 7)
	ref1, err := w.Forward(full1)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 2; pos++ {
		if d := maxDiff(ref1[3+pos], out2[0][pos]); d > tol {
			t.Fatalf("follow-up position %d deviates by %v", pos, d)
		}
	}
	ref5, err := w.Forward([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(ref5[3], out2[1][3]); d > tol {
		t.Fatalf("fresh fused sequence deviates by %v", d)
	}
}

func TestPrefillBatchValidation(t *testing.T) {
	w, _ := NewWeights(Tiny(13))
	c, _ := NewCluster(w, 2)
	if _, err := c.PrefillBatch(nil, nil, perf.PassKV); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.PrefillBatch([]int{0, 0}, [][]int{{1}, {2}}, perf.PassKV); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if _, err := c.PrefillBatch([]int{0}, [][]int{{}}, perf.PassKV); err == nil {
		t.Fatal("empty token list accepted")
	}
}

func TestCommBytesNonZeroOnlyForMultiRank(t *testing.T) {
	w, _ := NewWeights(Tiny(10))
	c1, _ := NewCluster(w, 1)
	if _, err := c1.Prefill(0, []int{1, 2, 3, 4}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if got := c1.CommStats().Bytes["sendrecv"]; got != 0 {
		t.Fatalf("single rank sent %v ring bytes", got)
	}
	c2, _ := NewCluster(w, 2)
	if _, err := c2.Prefill(0, []int{1, 2, 3, 4}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if got := c2.CommStats().Bytes["sendrecv"]; got <= 0 {
		t.Fatal("two ranks sent no ring bytes")
	}
}

func TestDecodeBatchBitIdenticalToSerial(t *testing.T) {
	// The continuous-batching contract: fusing sequences into one ring
	// pass-Q sweep must not change ANY bit of any sequence's logits versus
	// decoding it alone on a fresh cluster. Per-sequence owner rotation
	// pins each token's KV to the same rank either way, so the
	// floating-point merge order is identical.
	w, _ := NewWeights(Tiny(21))
	batch, err := NewCluster(w, 2) // 3 sequences on 2 ranks forces owner collisions
	if err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{
		{5, 9, 13, 21, 34},
		{2, 47, 19},
		{7, 3, 60, 12, 9, 33},
	}
	serial := make([]*Cluster, len(prompts))
	feed := make([]int, len(prompts))
	for i, p := range prompts {
		if _, err := batch.Prefill(i, p, perf.PassKV); err != nil {
			t.Fatal(err)
		}
		serial[i], _ = NewCluster(w, 2)
		if _, err := serial[i].Prefill(i, p, perf.PassKV); err != nil {
			t.Fatal(err)
		}
		feed[i] = (i*11 + 3) % w.Cfg.Model.VocabSize
	}
	seqs := []int{0, 1, 2}
	for step := 0; step < 5; step++ {
		got, err := batch.DecodeBatch(seqs, feed)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for i := range seqs {
			want, err := serial[i].Decode(i, feed[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("step %d sequence %d logit %d: batched %v != serial %v (not bit-identical)",
						step, i, j, got[i][j], want[j])
				}
			}
			feed[i] = Argmax(want)
		}
	}
}

func TestDecodeBatchSubsetAndRejoin(t *testing.T) {
	// Sequences may drop out of the batch (finished/stalled sessions) and
	// rejoin later; per-sequence rotation keeps each one bit-identical to
	// its own serial schedule throughout.
	w, _ := NewWeights(Tiny(22))
	batch, _ := NewCluster(w, 3)
	ref0, _ := NewCluster(w, 3)
	ref1, _ := NewCluster(w, 3)
	for _, c := range []*Cluster{batch, ref0, ref1} {
		if _, err := c.Prefill(0, []int{1, 2, 3, 4}, perf.PassKV); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := batch.Prefill(1, []int{9, 8, 7}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if _, err := ref1.Prefill(1, []int{9, 8, 7}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	// Step both together, then only seq 1, then both again.
	schedules := [][]int{{0, 1}, {1}, {0, 1}}
	steps := map[int]int{}
	for _, seqs := range schedules {
		toks := make([]int, len(seqs))
		for i, s := range seqs {
			toks[i] = (s*7 + steps[s]*13 + 2) % w.Cfg.Model.VocabSize
		}
		got, err := batch.DecodeBatch(seqs, toks)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range seqs {
			ref := ref0
			if s == 1 {
				ref = ref1
			}
			want, err := ref.Decode(s, toks[i])
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("seq %d step %d not bit-identical to serial", s, steps[s])
				}
			}
			steps[s]++
		}
	}
}

func TestDecodeBatchValidation(t *testing.T) {
	w, _ := NewWeights(Tiny(23))
	c, _ := NewCluster(w, 2)
	if _, err := c.DecodeBatch(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.DecodeBatch([]int{0}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := c.DecodeBatch([]int{0}, []int{1}); err == nil {
		t.Fatal("unknown sequence accepted")
	}
	if _, err := c.Prefill(0, []int{1, 2}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeBatch([]int{0, 0}, []int{1, 1}); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	if _, err := c.DecodeBatch([]int{0}, []int{9999}); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
}

func TestClusterDrop(t *testing.T) {
	w, _ := NewWeights(Tiny(24))
	c, _ := NewCluster(w, 2)
	if _, err := c.Prefill(5, []int{1, 2, 3}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if c.SeqLen(5) != 3 {
		t.Fatalf("len = %d", c.SeqLen(5))
	}
	c.Drop(5)
	if c.SeqLen(5) != 0 {
		t.Fatal("drop kept sequence length")
	}
	for _, n := range c.RankCacheTokens() {
		if n != 0 {
			t.Fatalf("drop left %d cached tokens", n)
		}
	}
	if _, err := c.Decode(5, 1); err == nil {
		t.Fatal("decode of dropped sequence accepted")
	}
}

func TestNegativeSequenceIDsRejectedUpfront(t *testing.T) {
	// The ring layer uses negative ids as padding markers; a negative id
	// must be rejected before any rank enters the ring, where a mid-pass
	// error would stall peers until the receive timeout.
	w, _ := NewWeights(Tiny(25))
	c, _ := NewCluster(w, 2)
	start := time.Now()
	if _, err := c.Prefill(-1, []int{1, 2}, perf.PassKV); err == nil {
		t.Fatal("negative prefill sequence id accepted")
	}
	if _, err := c.Prefill(0, []int{1, 2}, perf.PassKV); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeBatch([]int{-1}, []int{1}); err == nil {
		t.Fatal("negative decode sequence id accepted")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("rejection took %v — error surfaced mid-ring, not upfront", waited)
	}
}

func TestCongruentIDsSpreadOwners(t *testing.T) {
	// Session ids congruent mod N must not share one decode owner forever;
	// the hashed rotation offset spreads KV growth across ranks.
	w, _ := NewWeights(Tiny(30))
	c, _ := NewCluster(w, 4)
	ids := []int{100, 104, 108, 112}
	toks := make([]int, len(ids))
	for _, id := range ids {
		if _, err := c.Prefill(id, []int{1, 2, 3}, perf.PassKV); err != nil {
			t.Fatal(err)
		}
	}
	base := c.RankCacheTokens()
	for step := 0; step < 8; step++ {
		if _, err := c.DecodeBatch(ids, toks); err != nil {
			t.Fatal(err)
		}
	}
	grown := 0
	for r, n := range c.RankCacheTokens() {
		if n > base[r] {
			grown++
		}
	}
	if grown < 2 {
		t.Fatalf("congruent ids still pile onto %d rank(s)", grown)
	}
}
